package repro

import (
	"fmt"
	"testing"

	"repro/internal/fleet"
	"repro/internal/mmpu"
)

// --- E7: fleet-scale concurrent execution -------------------------------------
//
// The fleet benchmarks measure the multi-crossbar engine (internal/fleet):
// throughput scaling versus worker count on an evenly loaded memory, the
// cost of the ECC mechanism at fleet scale, and each built-in scenario's
// duty cycle. See DESIGN.md §E7.

// fleetBenchConfig is a 16-crossbar, 8-bank fleet of the minimum 45×45
// protected geometry — large enough that per-bank sharding has parallelism
// to exploit, small enough to iterate in a benchmark loop.
func fleetBenchConfig(workers int, ecc bool) fleet.Config {
	cfg := fleet.Config{
		Org: mmpu.Custom(45, 8, 2), K: 2, ECCEnabled: ecc,
		Workers: workers, Seed: 1,
	}
	if ecc {
		cfg.M = 15
	}
	return cfg
}

// BenchmarkFleetUniformWorkers measures throughput scaling of the same
// uniform multi-bank workload as the worker pool grows. The acceptance
// target is >2× from 1 to 4 workers.
func BenchmarkFleetUniformWorkers(b *testing.B) {
	w := fleet.Uniform{OpsPerCrossbar: 2}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := fleetBenchConfig(workers, true)
			for i := 0; i < b.N; i++ {
				res, err := fleet.Run(cfg, w)
				if err != nil {
					b.Fatal(err)
				}
				if res.SIMDOps != 32 {
					b.Fatalf("simd ops = %d", res.SIMDOps)
				}
			}
			b.ReportMetric(float64(32*b.N)/b.Elapsed().Seconds(), "simdops/s")
		})
	}
}

// BenchmarkFleetECCOverhead compares the protected fleet against the
// unprotected baseline on the same workload — the fleet-scale analogue of
// the paper's per-operation latency overhead (Table I).
func BenchmarkFleetECCOverhead(b *testing.B) {
	w := fleet.Uniform{OpsPerCrossbar: 2}
	for _, ecc := range []bool{true, false} {
		b.Run(fmt.Sprintf("ecc=%v", ecc), func(b *testing.B) {
			cfg := fleetBenchConfig(4, ecc)
			for i := 0; i < b.N; i++ {
				if _, err := fleet.Run(cfg, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFleetScenarios measures one pass of each built-in scenario at
// default intensity on the 4-worker fleet.
func BenchmarkFleetScenarios(b *testing.B) {
	for _, name := range fleet.ScenarioNames() {
		w, err := fleet.ScenarioByName(name, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			cfg := fleetBenchConfig(4, true)
			for i := 0; i < b.N; i++ {
				if _, err := fleet.Run(cfg, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
