// Example serve: the online face of the protected memory. A live server
// owns a small mMPU; concurrent clients write and read back records
// while background scrubs run under the admission budget — the
// steady-state duty cycle of a protected memory serving traffic, with
// the paper's Θ(1) diagonal ECC update paying for every write inline.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"repro/internal/mmpu"
	"repro/internal/pmem"
	"repro/internal/serve"
)

func main() {
	mem, err := pmem.New(pmem.Config{
		Org: mmpu.Custom(90, 8, 2), M: 15, K: 2, ECCEnabled: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := serve.New(serve.Config{Mem: mem, Workers: 4, ScrubEvery: 64})
	if err != nil {
		log.Fatal(err)
	}

	const clients, records = 6, 200
	span := mem.Config().Org.DataBits() / clients
	var wg sync.WaitGroup
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			base := int64(c) * span
			for k := 0; k < records; k++ {
				addr := base + int64(k)*61 // word-unaligned stride
				want := rng.Uint64() & (1<<48 - 1)
				if err := srv.Write(addr, 48, want); err != nil {
					log.Fatalf("client %d: %v", c, err)
				}
				got, err := srv.Read(addr, 48)
				if err != nil || got != want {
					log.Fatalf("client %d: read %#x, %v, want %#x", c, got, err, want)
				}
			}
		}(c)
	}
	wg.Wait()
	st := srv.Close()
	lat := st.Lat.Summary()

	fmt.Printf("served %d requests (%d reads, %d writes) from %d clients in %v\n",
		st.Requests, st.Reads, st.Writes, clients, time.Since(t0).Round(time.Millisecond))
	fmt.Printf("latency: p50 %s  p99 %s  max %s\n",
		time.Duration(lat.P50), time.Duration(lat.P99), time.Duration(lat.Max))
	fmt.Printf("background scrubs: %d (corrected %d, uncorrectable %d — zero means no false alarms)\n",
		st.Scrubs, st.Corrected, st.Uncorrectable)
	ok := true
	for i := 0; i < mem.Config().Org.Crossbars(); i++ {
		ok = ok && mem.Crossbar(i).CheckConsistent()
	}
	fmt.Printf("ECC state consistent across all %d crossbars: %v\n", mem.Config().Org.Crossbars(), ok)
}
