// Quickstart: create a protected crossbar, store data, corrupt it with a
// soft error, and watch the diagonal ECC locate and repair the exact bit.
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/bitmat"
	"repro/internal/core"
	"repro/internal/shifter"
)

func main() {
	// A 45×45 memristive crossbar with 15×15 ECC blocks and 2 processing
	// crossbars — the smallest geometry with a 3×3 grid of blocks.
	m, err := core.NewProtectedMachine(45, 15, 2)
	if err != nil {
		panic(err)
	}

	// Store random data through the controller write path; check bits are
	// maintained along the writes, as in a conventional ECC memory.
	rng := rand.New(rand.NewSource(7))
	for r := 0; r < 45; r++ {
		row := bitmat.NewVec(45)
		for c := 0; c < 45; c++ {
			row.Set(c, rng.Intn(2) == 0)
		}
		m.LoadRow(r, row)
	}
	fmt.Println("loaded 45×45 bits; CMEM consistent:", m.CheckConsistent())

	// A soft error flips a stored bit...
	before := m.MEM().Get(17, 31)
	m.InjectDataFault(17, 31)
	fmt.Printf("injected soft error at (17,31): %v → %v\n", before, m.MEM().Get(17, 31))

	// ...and the periodic scrub finds and repairs it, via syndromes
	// computed with MAGIC XOR3 inside the check memory.
	corrected, uncorrectable := m.Scrub()
	fmt.Printf("scrub: corrected=%d uncorrectable=%d; bit restored: %v\n",
		corrected, uncorrectable, m.MEM().Get(17, 31) == before)

	// Check bits are themselves memristive and protected too.
	m.InjectCheckFault(shifter.Leading, 3, 1, 1)
	corrected, _ = m.Scrub()
	fmt.Printf("check-bit fault repaired: corrected=%d, consistent=%v\n",
		corrected, m.CheckConsistent())
}
