// Fleet-scale execution: the paper's Fig 6 argues reliability at the scale
// of a memory built from thousands of crossbars, and internal/fleet is the
// engine that runs workloads against such an organization concurrently.
// This example runs all four built-in scenarios over a small 6-bank fleet
// and shows (1) the per-bank traffic shape each scenario produces and
// (2) that the aggregated result is identical for 1 worker and 4 workers —
// the engine's determinism-under-concurrency guarantee.
package main

import (
	"fmt"
	"reflect"

	"repro/internal/fleet"
	"repro/internal/mmpu"
)

func main() {
	org := mmpu.Custom(45, 6, 2) // 6 banks × 2 crossbars of 45×45

	scenarios := []fleet.Workload{
		fleet.Uniform{OpsPerCrossbar: 2},
		fleet.HotBank{Jobs: 48, Skew: 1.5},
		fleet.MixedScrub{Rounds: 1, SIMDPerRound: 1},
		fleet.FaultStorm{Bursts: 2, SER: 5e5, Hours: 1},
	}

	for _, w := range scenarios {
		cfg := fleet.Config{Org: org, M: 15, K: 2, ECCEnabled: true, Seed: 7, Workers: 1}
		serial, err := fleet.Run(cfg, w)
		if err != nil {
			panic(err)
		}
		cfg.Workers = 4
		concurrent, err := fleet.Run(cfg, w)
		if err != nil {
			panic(err)
		}

		fmt.Printf("%-11s jobs=%-4d simd=%-4d scrubs=%-3d injected=%-4d corrected=%-4d deterministic(1w==4w)=%v\n",
			w.Name(), serial.Jobs, serial.SIMDOps, serial.Scrubs,
			serial.Injected, serial.Corrected, reflect.DeepEqual(serial, concurrent))
		fmt.Print("            bank jobs:")
		for _, t := range serial.PerBank {
			fmt.Printf(" %3d", t.Jobs)
		}
		fmt.Println()
	}
}
