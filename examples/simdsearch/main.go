// SIMD associative search: the crossbar acts as a content-addressable
// memory. Every row stores a key; a query-specific match circuit
// (the AND of each key bit or its complement) is synthesized on the fly,
// mapped by SIMPLER, and executed in all rows at once — each row answers
// "is my key equal to the query?" in the same clock cycles. A soft error
// flips a stored key bit; the protected design repairs it during the
// pre-execution input check, so the search still returns exactly the
// right row set, while a baseline would return a wrong match set.
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/synth"
)

const (
	n    = 45 // crossbar side and number of stored keys
	keyW = 12 // key width in bits
)

func main() {
	// Synthesize the match circuit for a specific query.
	query := uint64(0xA5B & ((1 << keyW) - 1))
	mp := buildMatcher(query)
	fmt.Printf("query 0x%03X → matcher: %d NOR gates, %d cycles, SIMD over %d rows\n\n",
		query, mp.GateCycles, mp.Latency(), n)

	m, err := core.NewProtectedMachine(n, 15, 2)
	if err != nil {
		panic(err)
	}

	// Store keys: three rows intentionally hold the query value.
	rng := rand.New(rand.NewSource(5))
	keys := make([]uint64, n)
	inputs := make(map[int][]bool, n)
	expect := map[int]bool{}
	for r := 0; r < n; r++ {
		keys[r] = rng.Uint64() & ((1 << keyW) - 1)
		if r == 7 || r == 20 || r == 33 {
			keys[r] = query
		}
		expect[r] = keys[r] == query
		in := make([]bool, keyW)
		for i := 0; i < keyW; i++ {
			in[i] = keys[r]&(1<<uint(i)) != 0
		}
		inputs[r] = in
	}
	m.LoadInputs(mp, inputs)

	// A soft error corrupts one matching row's key in storage.
	m.InjectDataFault(20, 3)
	fmt.Println("injected a soft error into row 20's stored key (a matching row)")

	if err := m.ExecuteSIMD(mp, m.MEM().AllRows()); err != nil {
		panic(err)
	}

	var hits []int
	for r := 0; r < n; r++ {
		if m.ReadOutputs(mp, r)[0] {
			hits = append(hits, r)
		}
	}
	fmt.Printf("matches found: %v (corrections applied: %d)\n", hits, m.Stats().Corrections)

	exact := len(hits) == 3
	for _, h := range hits {
		exact = exact && expect[h]
	}
	if exact {
		fmt.Println("search is exact despite the fault — the input check repaired the key.")
	} else {
		fmt.Println("UNEXPECTED: match set wrong")
	}
}

// buildMatcher returns a SIMPLER mapping of `key == query` for a fixed
// query: each bit contributes the key bit or its complement to an AND
// reduction, which lowering turns into a NOR tree.
func buildMatcher(query uint64) *synth.Mapping {
	b := netlist.NewBuilder("matcher")
	key := b.InputBus(keyW)
	match := b.Const(true)
	for i := 0; i < keyW; i++ {
		lit := key[i]
		if query&(1<<uint(i)) == 0 {
			lit = b.Not(lit)
		}
		match = b.And(match, lit)
	}
	b.Output(match)
	mp, err := synth.Map(b.Build().LowerToNOR(), n)
	if err != nil {
		panic(err)
	}
	return mp
}
