// Reliability walk-through: reproduce the analysis behind Figure 6 at a
// few interesting SER points, validate the closed form against Monte
// Carlo on a small crossbar, sweep the block size m to show the
// reliability/overhead trade-off of Section III, and then put the claims
// on trial with the fault-campaign conformance engine — adjudicating
// injected faults against a golden reference machine, with and without
// the ECC mechanism, under both the paper's transient model and the
// adversarial stuck-at model.
package main

import (
	"fmt"

	"repro/internal/campaign"
	"repro/internal/ecc"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/reliability"
)

func main() {
	m := reliability.PaperModel()

	fmt.Println("== Fig 6 at selected SER points (1GB, n=1020, m=15, T=24h) ==")
	fmt.Printf("%12s %16s %16s %12s\n", "SER [FIT/b]", "baseline [h]", "proposed [h]", "improvement")
	for _, ser := range []float64{1e-5, 1e-3, 1e-1, 1e1, 1e3} {
		fmt.Printf("%12.0e %16.3g %16.3g %12.3g\n",
			ser, m.BaselineMTTF(ser), m.ProposedMTTF(ser), m.Improvement(ser))
	}
	fmt.Printf("\nheadline: %.3gx improvement at the Flash-like 1e-3 FIT/bit (paper: >3e8)\n\n",
		m.Improvement(1e-3))

	fmt.Println("== Monte Carlo cross-check of the analytic block model ==")
	geom := ecc.Params{N: 45, M: 15}
	res := reliability.MonteCarloCrossbarFailure(geom, 2e-3, true, 3000, 42)
	fmt.Printf("45x45 crossbar, p_bit=2e-3: empirical %.5f vs analytic %.5f (±%.5f)\n\n",
		res.Empirical, res.Analytic, res.StandardError)

	fmt.Println("== Block-size trade-off (Section III): smaller m, more reliable, more overhead ==")
	fmt.Printf("%4s %18s %16s\n", "m", "MTTF@1e-3 [h]", "storage overhead")
	for _, blockM := range []int{5, 15, 51} {
		mm := m
		mm.Geometry = ecc.Params{N: 1020, M: blockM}
		fmt.Printf("%4d %18.3g %15.1f%%\n", blockM, mm.ProposedMTTF(1e-3), 100*mm.Geometry.Overhead())
	}

	fmt.Println("\n== Fault-campaign conformance: the MTTF claim on trial ==")
	fmt.Println("300 inject→scrub rounds on a 45×45 machine, every fault adjudicated")
	fmt.Println("against a golden reference (cmd/campaign runs this fleet-wide):")
	runCampaign := func(label string, eccOn bool, model faults.Model) {
		mcfg := machine.Config{N: 45, ECCEnabled: eccOn}
		if eccOn {
			mcfg.M, mcfg.K = 15, 2
		}
		r, err := campaign.New(campaign.Config{Machine: mcfg, Model: model, Verify: true}, 42)
		if err != nil {
			panic(err)
		}
		for i := 0; i < 300; i++ {
			r.Round()
		}
		tl := r.Tally()
		fmt.Printf("  %-22s %4d faults: corrected %-4d detected %-3d masked %-3d silent %-3d miscorrected %-2d conformant=%v\n",
			label, tl.Injected, tl.Counts[campaign.Corrected], tl.Counts[campaign.DetectedUncorrectable],
			tl.Counts[campaign.Masked], tl.Counts[campaign.SilentCorruption], tl.Counts[campaign.Miscorrected],
			tl.Conformant())
	}
	runCampaign("transient + ECC", true, faults.Transient{SER: 3e5})
	runCampaign("transient, baseline", false, faults.Transient{SER: 3e5})
	runCampaign("stuck-at-1 + ECC", true, faults.StuckAt{SER: 3e4, Value: true})
	fmt.Println("  → the ECC upholds the single-error guarantee for transients; the")
	fmt.Println("    baseline silently corrupts; stuck-at defects can launder check bits")
	fmt.Println("    through the delta-update write path (see internal/campaign).")
}
