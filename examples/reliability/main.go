// Reliability walk-through: reproduce the analysis behind Figure 6 at a
// few interesting SER points, validate the closed form against Monte
// Carlo on a small crossbar, and sweep the block size m to show the
// reliability/overhead trade-off of Section III.
package main

import (
	"fmt"

	"repro/internal/ecc"
	"repro/internal/reliability"
)

func main() {
	m := reliability.PaperModel()

	fmt.Println("== Fig 6 at selected SER points (1GB, n=1020, m=15, T=24h) ==")
	fmt.Printf("%12s %16s %16s %12s\n", "SER [FIT/b]", "baseline [h]", "proposed [h]", "improvement")
	for _, ser := range []float64{1e-5, 1e-3, 1e-1, 1e1, 1e3} {
		fmt.Printf("%12.0e %16.3g %16.3g %12.3g\n",
			ser, m.BaselineMTTF(ser), m.ProposedMTTF(ser), m.Improvement(ser))
	}
	fmt.Printf("\nheadline: %.3gx improvement at the Flash-like 1e-3 FIT/bit (paper: >3e8)\n\n",
		m.Improvement(1e-3))

	fmt.Println("== Monte Carlo cross-check of the analytic block model ==")
	geom := ecc.Params{N: 45, M: 15}
	res := reliability.MonteCarloCrossbarFailure(geom, 2e-3, true, 3000, 42)
	fmt.Printf("45x45 crossbar, p_bit=2e-3: empirical %.5f vs analytic %.5f (±%.5f)\n\n",
		res.Empirical, res.Analytic, res.StandardError)

	fmt.Println("== Block-size trade-off (Section III): smaller m, more reliable, more overhead ==")
	fmt.Printf("%4s %18s %16s\n", "m", "MTTF@1e-3 [h]", "storage overhead")
	for _, blockM := range []int{5, 15, 51} {
		mm := m
		mm.Geometry = ecc.Params{N: 1020, M: blockM}
		fmt.Printf("%4d %18.3g %15.1f%%\n", blockM, mm.ProposedMTTF(1e-3), 100*mm.Geometry.Overhead())
	}
}
