// Fault injection: the paper's headline scenario. The same SIMD function
// runs on a protected and an unprotected crossbar while soft errors land
// in the function's input operands. The protected design checks input
// blocks before execution (Section IV) and every row computes correctly;
// the baseline silently produces wrong answers.
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/netlist"
	"repro/internal/synth"
)

const (
	n     = 45
	width = 8
)

func main() {
	// The function: an 8-bit adder, mapped to a single-row MAGIC program
	// by the SIMPLER reimplementation.
	b := netlist.NewBuilder("adder8")
	a := b.InputBus(width)
	x := b.InputBus(width)
	carry := b.Const(false)
	for i := 0; i < width; i++ {
		axb := b.Xor(a[i], x[i])
		b.Output(b.Xor(axb, carry))
		carry = b.Or(b.And(a[i], x[i]), b.And(axb, carry))
	}
	b.Output(carry)
	mp, err := synth.Map(b.Build().LowerToNOR(), n)
	if err != nil {
		panic(err)
	}
	fmt.Printf("mapped %d NOR gates into a %d-cell row: %d cycles\n\n",
		mp.GateCycles, mp.RowSize, mp.Latency())

	for _, protected := range []bool{true, false} {
		var mach *machine.Machine
		var err error
		if protected {
			mach, err = core.NewProtectedMachine(n, 15, 2)
		} else {
			mach, err = core.NewBaselineMachine(n)
		}
		if err != nil {
			panic(err)
		}

		// 45 independent additions, one per crossbar row.
		rng := rand.New(rand.NewSource(99))
		inputs := make(map[int][]bool, n)
		for r := 0; r < n; r++ {
			in := make([]bool, 2*width)
			for i := range in {
				in[i] = rng.Intn(2) == 0
			}
			inputs[r] = in
		}
		mach.LoadInputs(mp, inputs)

		// Three soft errors land in the operand region, one per block-row.
		mach.InjectDataFault(5, 3)
		mach.InjectDataFault(20, 11)
		mach.InjectDataFault(40, 7)

		if err := mach.ExecuteSIMD(mp, mach.MEM().AllRows()); err != nil {
			panic(err)
		}

		correct := 0
		for r := 0; r < n; r++ {
			want := mp.Netlist.Eval(inputs[r])
			got := mach.ReadOutputs(mp, r)
			ok := true
			for i := range want {
				ok = ok && got[i] == want[i]
			}
			if ok {
				correct++
			}
		}
		label := "baseline (no ECC)   "
		if protected {
			label = "proposed (diag ECC) "
		}
		fmt.Printf("%s rows correct %2d/%d, corrections %d, uncorrectable %d\n",
			label, correct, n, mach.Stats().Corrections, mach.Stats().Uncorrectable)
	}
}
