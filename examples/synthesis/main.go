// Synthesis walk-through: take a Table I benchmark, lower it to MAGIC's
// NOR basis, map it into a single 1020-cell row with the SIMPLER
// reimplementation, and schedule it under the proposed ECC architecture —
// printing every quantity that feeds a row of the paper's Table I.
package main

import (
	"fmt"
	"os"

	"repro/internal/circuits"
	"repro/internal/eccsched"
	"repro/internal/synth"
)

func main() {
	name := "dec" // the paper's most ECC-hostile benchmark
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	bm, ok := circuits.ByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q (try: adder, bar, dec, sin, voter, ...)\n", name)
		os.Exit(1)
	}

	nl := bm.Build()
	fmt.Printf("benchmark %q: %d inputs, %d outputs, %d mixed-basis gates\n",
		bm.Name, nl.NumInputs(), nl.NumOutputs(), nl.GateCount())

	nor := nl.LowerToNOR()
	_, depth := nor.Levels()
	fmt.Printf("lowered to NOR/NOT: %d gates, depth %d\n", nor.GateCount(), depth)

	mp, err := synth.MapWith(nor, 1020, synth.Opts{ReuseInputs: bm.ReuseInputs})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("SIMPLER mapping: %d gate cycles + %d init cycles = %d cycles; peak live cells %d/%d\n",
		mp.GateCycles, mp.InitCycles, mp.Latency(), mp.PeakLive, mp.RowSize)

	model := eccsched.DefaultModel(15, 8)
	events, r := eccsched.Timeline(mp, model)
	fmt.Printf("\nECC-extended schedule (m=15, k=8):\n")
	fmt.Printf("  input block-columns checked: %d (m MEM cycles each)\n", r.InputBlocks)
	fmt.Printf("  critical (output-writing) ops: %d (3 MEM cycles + PC pipeline each)\n", r.CriticalOps)
	fmt.Printf("  stall cycles waiting for PCs: %d\n", r.StallCycles)
	fmt.Printf("  baseline %d → proposed %d cycles (overhead %.2f%%), minimal PCs %d\n",
		r.Baseline, r.Proposed, r.OverheadPct, r.MinPCs)

	window := r.Proposed
	if window > 100 {
		window = 100
	}
	fmt.Printf("\nfirst %d cycles of the MEM/PC timeline:\n%s",
		window, eccsched.FormatTimeline(events, model.K, window))
}
