package repro

import (
	"fmt"
	"testing"

	"repro/internal/circuits"
	"repro/internal/ecc"
	"repro/internal/eccsched"
	"repro/internal/reliability"
	"repro/internal/synth"
)

// Ablation benchmarks for the design choices DESIGN.md calls out: block
// size m, processing-crossbar count k, and the refresh composition.

// BenchmarkAblationBlockSize sweeps the block side m (the paper's
// reliability/overhead trade-off, Section III) through the reliability
// model.
func BenchmarkAblationBlockSize(b *testing.B) {
	for _, m := range []int{5, 15, 51} {
		m := m
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			model := reliability.PaperModel()
			model.Geometry = ecc.Params{N: 1020, M: m}
			for i := 0; i < b.N; i++ {
				if model.ProposedMTTF(1e-3) <= model.BaselineMTTF(1e-3) {
					b.Fatal("ECC lost")
				}
			}
		})
	}
}

// BenchmarkAblationPCCount schedules the PC-hungriest benchmark (dec)
// with k = 1..8 processing crossbars, measuring the latency the greedy
// scheduler settles at.
func BenchmarkAblationPCCount(b *testing.B) {
	bm, _ := circuits.ByName("dec")
	nor := bm.Build().LowerToNOR()
	mp, err := synth.Map(nor, 1020)
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{1, 2, 4, 8} {
		k := k
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			model := eccsched.DefaultModel(15, k)
			var last int
			for i := 0; i < b.N; i++ {
				r := eccsched.Schedule(mp, model)
				last = r.Proposed
			}
			b.ReportMetric(float64(last), "cycles")
		})
	}
}

// BenchmarkAblationRefresh times the four-way mechanism comparison of
// cmd/refresh.
func BenchmarkAblationRefresh(b *testing.B) {
	r := reliability.DefaultRefreshModel()
	for i := 0; i < b.N; i++ {
		pts := r.Compare(1e-5, 1e3, 9)
		if pts[0].MTTF[reliability.ECCPlusRefresh] < pts[0].MTTF[reliability.ECCOnly] {
			b.Fatal("composition lost")
		}
	}
}

// BenchmarkAblationRowSize maps the 128-bit adder into shrinking rows,
// measuring SIMPLER's re-initialization overhead growth.
func BenchmarkAblationRowSize(b *testing.B) {
	nor := circuits.BuildAdder().LowerToNOR()
	min := synth.MinRowSize(nor, nor.NumInputs()+1, 1020)
	for _, rows := range []int{min, (min + 1020) / 2, 1020} {
		rows := rows
		b.Run(fmt.Sprintf("row=%d", rows), func(b *testing.B) {
			var inits int
			for i := 0; i < b.N; i++ {
				m, err := synth.Map(nor, rows)
				if err != nil {
					b.Fatal(err)
				}
				inits = m.InitCycles
			}
			b.ReportMetric(float64(inits), "init-cycles")
		})
	}
}

// BenchmarkAblationNORLowering times the lowering pass on the largest
// generator (voter).
func BenchmarkAblationNORLowering(b *testing.B) {
	nl := circuits.BuildVoter()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !nl.LowerToNOR().IsNORForm() {
			b.Fatal("lowering failed")
		}
	}
}
