package repro

import "testing"

// calibrationSink keeps the calibration loop observable.
var calibrationSink uint64

// BenchmarkHostCalibration is a fixed, pure-ALU workload that no code
// change in this repository can affect: a data-dependent LCG spin with
// no memory traffic. Its ns/op measures only how fast the host is
// running right now, which lets benchdiff -normalize cancel uniform
// host slowdowns (noisy CI runners, shared VMs) out of a snapshot
// comparison. Do not change this loop — its stability across commits is
// the point.
func BenchmarkHostCalibration(b *testing.B) {
	x := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < b.N; i++ {
		for j := 0; j < 4096; j++ {
			x = x*6364136223846793005 + 1442695040888963407
			x ^= x >> 29
		}
	}
	calibrationSink = x
}
