// Package netlist provides a combinational gate-level netlist IR: a DAG
// of two-input gates built through a Builder, evaluated directly, and
// lowerable to the {NOR2, NOT} basis that MAGIC executes natively.
//
// Node ids are topologically ordered by construction (a gate may only
// reference already-created nodes), which keeps evaluation and analysis
// passes simple single-sweep loops.
package netlist

import "fmt"

// Op is a gate operation.
type Op uint8

// Gate operations. Input/Const0/Const1 are sources; the rest are logic.
const (
	Input Op = iota
	Const0
	Const1
	Not
	Buf
	And
	Or
	Nand
	Nor
	Xor
	Xnor
)

// String names the op.
func (o Op) String() string {
	names := [...]string{"input", "const0", "const1", "not", "buf", "and",
		"or", "nand", "nor", "xor", "xnor"}
	if int(o) < len(names) {
		return names[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// arity returns the number of operands the op consumes.
func (o Op) arity() int {
	switch o {
	case Input, Const0, Const1:
		return 0
	case Not, Buf:
		return 1
	default:
		return 2
	}
}

// Gate is one node of the netlist.
type Gate struct {
	Op   Op
	A, B int // operand node ids (A valid when arity ≥ 1, B when arity = 2)
}

// Netlist is an immutable combinational circuit.
type Netlist struct {
	gates   []Gate
	inputs  []int // node ids of primary inputs, in declaration order
	outputs []int // node ids of primary outputs, in declaration order
	name    string
}

// Name returns the circuit's name.
func (n *Netlist) Name() string { return n.name }

// NumNodes returns the total node count (sources + gates).
func (n *Netlist) NumNodes() int { return len(n.gates) }

// NumInputs returns the primary input count.
func (n *Netlist) NumInputs() int { return len(n.inputs) }

// NumOutputs returns the primary output count.
func (n *Netlist) NumOutputs() int { return len(n.outputs) }

// Inputs returns the primary input node ids (shared slice; do not mutate).
func (n *Netlist) Inputs() []int { return n.inputs }

// Outputs returns the primary output node ids (shared slice; do not mutate).
func (n *Netlist) Outputs() []int { return n.outputs }

// Gate returns node id's gate.
func (n *Netlist) Gate(id int) Gate { return n.gates[id] }

// GateCount returns the number of logic gates (excluding sources).
func (n *Netlist) GateCount() int {
	c := 0
	for _, g := range n.gates {
		if g.Op.arity() > 0 {
			c++
		}
	}
	return c
}

// CountOp returns the number of nodes with the given op.
func (n *Netlist) CountOp(op Op) int {
	c := 0
	for _, g := range n.gates {
		if g.Op == op {
			c++
		}
	}
	return c
}

// IsNORForm reports whether the netlist uses only the MAGIC-native basis:
// sources plus NOR2 and NOT.
func (n *Netlist) IsNORForm() bool {
	for _, g := range n.gates {
		switch g.Op {
		case Input, Const0, Const1, Nor, Not:
		default:
			return false
		}
	}
	return true
}

// Eval computes the outputs for the given input assignment (ordered as
// Inputs()). It evaluates every node in one topological sweep.
func (n *Netlist) Eval(in []bool) []bool {
	if len(in) != len(n.inputs) {
		panic(fmt.Sprintf("netlist %q: %d inputs provided, want %d", n.name, len(in), len(n.inputs)))
	}
	val := make([]bool, len(n.gates))
	inIdx := 0
	for id, g := range n.gates {
		switch g.Op {
		case Input:
			val[id] = in[inIdx]
			inIdx++
		case Const0:
			val[id] = false
		case Const1:
			val[id] = true
		case Not:
			val[id] = !val[g.A]
		case Buf:
			val[id] = val[g.A]
		case And:
			val[id] = val[g.A] && val[g.B]
		case Or:
			val[id] = val[g.A] || val[g.B]
		case Nand:
			val[id] = !(val[g.A] && val[g.B])
		case Nor:
			val[id] = !(val[g.A] || val[g.B])
		case Xor:
			val[id] = val[g.A] != val[g.B]
		case Xnor:
			val[id] = val[g.A] == val[g.B]
		}
	}
	out := make([]bool, len(n.outputs))
	for i, id := range n.outputs {
		out[i] = val[id]
	}
	return out
}

// Fanout returns, for every node, how many gate operands reference it
// (primary-output uses are not counted; see FanoutWithOutputs).
func (n *Netlist) Fanout() []int {
	f := make([]int, len(n.gates))
	for _, g := range n.gates {
		switch g.Op.arity() {
		case 1:
			f[g.A]++
		case 2:
			f[g.A]++
			f[g.B]++
		}
	}
	return f
}

// Levels returns each node's depth (sources at 0), and the circuit depth.
func (n *Netlist) Levels() ([]int, int) {
	lv := make([]int, len(n.gates))
	max := 0
	for id, g := range n.gates {
		switch g.Op.arity() {
		case 1:
			lv[id] = lv[g.A] + 1
		case 2:
			a, b := lv[g.A], lv[g.B]
			if b > a {
				a = b
			}
			lv[id] = a + 1
		}
		if lv[id] > max {
			max = lv[id]
		}
	}
	return lv, max
}
