package netlist

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// buildFullAdder returns a 1-bit full adder: inputs a,b,cin; outputs sum,cout.
func buildFullAdder() *Netlist {
	b := NewBuilder("fa")
	a, x, cin := b.Input(), b.Input(), b.Input()
	axb := b.Xor(a, x)
	sum := b.Xor(axb, cin)
	cout := b.Or(b.And(a, x), b.And(axb, cin))
	b.Output(sum)
	b.Output(cout)
	return b.Build()
}

func TestFullAdderTruthTable(t *testing.T) {
	fa := buildFullAdder()
	for v := 0; v < 8; v++ {
		a, x, c := v&1 != 0, v&2 != 0, v&4 != 0
		out := fa.Eval([]bool{a, x, c})
		n := 0
		for _, bit := range []bool{a, x, c} {
			if bit {
				n++
			}
		}
		if out[0] != (n%2 == 1) || out[1] != (n >= 2) {
			t.Fatalf("FA(%v,%v,%v) = %v", a, x, c, out)
		}
	}
}

func TestAllOpsEval(t *testing.T) {
	b := NewBuilder("ops")
	x, y := b.Input(), b.Input()
	outs := []int{
		b.Not(x), b.And(x, y), b.Or(x, y), b.Nand(x, y),
		b.Nor(x, y), b.Xor(x, y), b.Xnor(x, y), b.Mux(x, y, b.Not(y)),
	}
	b.OutputBus(outs)
	nl := b.Build()
	for v := 0; v < 4; v++ {
		xv, yv := v&1 != 0, v&2 != 0
		got := nl.Eval([]bool{xv, yv})
		want := []bool{
			!xv, xv && yv, xv || yv, !(xv && yv),
			!(xv || yv), xv != yv, xv == yv,
			map[bool]bool{true: yv, false: !yv}[xv],
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("v=%d output %d: got %v want %v", v, i, got[i], want[i])
			}
		}
	}
}

func TestStructuralHashingDedupes(t *testing.T) {
	b := NewBuilder("cse")
	x, y := b.Input(), b.Input()
	g1 := b.And(x, y)
	g2 := b.And(x, y)
	g3 := b.And(y, x) // commutative normalization
	if g1 != g2 || g1 != g3 {
		t.Fatalf("CSE failed: %d %d %d", g1, g2, g3)
	}
}

func TestConstantFolding(t *testing.T) {
	b := NewBuilder("fold")
	x := b.Input()
	if b.And(x, b.Const(true)) != x {
		t.Error("x∧1 should fold to x")
	}
	if got := b.And(x, b.Const(false)); got != b.Const(false) {
		t.Error("x∧0 should fold to 0")
	}
	if b.Or(x, b.Const(false)) != x {
		t.Error("x∨0 should fold to x")
	}
	if got := b.Or(x, b.Const(true)); got != b.Const(true) {
		t.Error("x∨1 should fold to 1")
	}
	if b.Xor(x, b.Const(false)) != x {
		t.Error("x⊕0 should fold to x")
	}
	if b.Xor(x, b.Const(true)) != b.Not(x) {
		t.Error("x⊕1 should fold to ¬x")
	}
	if b.Not(b.Not(x)) != x {
		t.Error("¬¬x should fold to x")
	}
	if b.And(x, x) != x {
		t.Error("x∧x should fold to x")
	}
	if b.Xor(x, x) != b.Const(false) {
		t.Error("x⊕x should fold to 0")
	}
}

func TestBuildInsertsBufForInputOutput(t *testing.T) {
	b := NewBuilder("passthrough")
	x := b.Input()
	b.Output(x)
	b.Output(x)
	nl := b.Build()
	if nl.NumOutputs() != 2 {
		t.Fatal("lost an output")
	}
	o0, o1 := nl.Outputs()[0], nl.Outputs()[1]
	if o0 == o1 {
		t.Fatal("aliased outputs were not split")
	}
	for _, o := range []int{o0, o1} {
		if nl.Gate(o).Op != Buf {
			t.Fatalf("output driver is %v, want buf", nl.Gate(o).Op)
		}
	}
	out := nl.Eval([]bool{true})
	if !out[0] || !out[1] {
		t.Fatal("buffered outputs wrong")
	}
}

func TestLowerToNORPreservesSemantics(t *testing.T) {
	fa := buildFullAdder()
	nor := fa.LowerToNOR()
	if !nor.IsNORForm() {
		t.Fatal("lowered netlist is not NOR-form")
	}
	for v := 0; v < 8; v++ {
		in := []bool{v&1 != 0, v&2 != 0, v&4 != 0}
		a, b := fa.Eval(in), nor.Eval(in)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("input %d output %d differs after lowering", v, i)
			}
		}
	}
}

func TestLowerToNORRandomCircuitsProperty(t *testing.T) {
	// Random DAGs of mixed ops must survive lowering bit-exactly.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder("rand")
		nodes := b.InputBus(4 + rng.Intn(5))
		for i := 0; i < 30+rng.Intn(40); i++ {
			x := nodes[rng.Intn(len(nodes))]
			y := nodes[rng.Intn(len(nodes))]
			var id int
			switch rng.Intn(7) {
			case 0:
				id = b.And(x, y)
			case 1:
				id = b.Or(x, y)
			case 2:
				id = b.Xor(x, y)
			case 3:
				id = b.Nand(x, y)
			case 4:
				id = b.Nor(x, y)
			case 5:
				id = b.Xnor(x, y)
			default:
				id = b.Not(x)
			}
			nodes = append(nodes, id)
		}
		for i := 0; i < 5; i++ {
			b.Output(nodes[len(nodes)-1-i])
		}
		nl := b.Build()
		nor := nl.LowerToNOR()
		if !nor.IsNORForm() {
			return false
		}
		for trial := 0; trial < 20; trial++ {
			in := make([]bool, nl.NumInputs())
			for j := range in {
				in[j] = rng.Intn(2) == 0
			}
			a, c := nl.Eval(in), nor.Eval(in)
			for j := range a {
				if a[j] != c[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLowerToNOROutputsHaveDistinctDrivers(t *testing.T) {
	b := NewBuilder("alias")
	x, y := b.Input(), b.Input()
	g := b.And(x, y)
	b.Output(g)
	b.Output(g) // same driver twice
	b.Output(x) // input as output
	nor := b.Build().LowerToNOR()
	seen := make(map[int]bool)
	for _, o := range nor.Outputs() {
		if seen[o] {
			t.Fatal("two outputs share a driver after lowering")
		}
		seen[o] = true
		op := nor.Gate(o).Op
		if op != Nor && op != Not {
			t.Fatalf("output driver op = %v", op)
		}
	}
}

func TestXorLoweringGateBudget(t *testing.T) {
	// XOR should lower to 5 NOR-basis gates, XNOR to 4 (the counts the
	// paper's XOR3-in-8-NORs relies on).
	bx := NewBuilder("x")
	a, c := bx.Input(), bx.Input()
	bx.Output(bx.Xor(a, c))
	if got := bx.Build().LowerToNOR().GateCount(); got != 5 {
		t.Fatalf("XOR lowered to %d gates, want 5", got)
	}
	bn := NewBuilder("xn")
	a, c = bn.Input(), bn.Input()
	bn.Output(bn.Xnor(a, c))
	if got := bn.Build().LowerToNOR().GateCount(); got != 4 {
		t.Fatalf("XNOR lowered to %d gates, want 4", got)
	}
}

func TestFanout(t *testing.T) {
	b := NewBuilder("fan")
	x, y := b.Input(), b.Input()
	g := b.And(x, y)
	b.Output(b.Or(g, x))
	b.Output(b.Xor(g, y))
	nl := b.Build()
	f := nl.Fanout()
	if f[g] != 2 {
		t.Fatalf("fanout of shared gate = %d, want 2", f[g])
	}
	if f[x] != 2 { // used by And and Or
		t.Fatalf("fanout of input x = %d, want 2", f[x])
	}
}

func TestLevels(t *testing.T) {
	fa := buildFullAdder()
	_, depth := fa.Levels()
	if depth < 2 || depth > 6 {
		t.Fatalf("full-adder depth = %d, implausible", depth)
	}
}

func TestEvalWrongArityPanics(t *testing.T) {
	fa := buildFullAdder()
	defer func() {
		if recover() == nil {
			t.Fatal("Eval with wrong input count did not panic")
		}
	}()
	fa.Eval([]bool{true})
}

func TestOpString(t *testing.T) {
	if Nor.String() != "nor" || Input.String() != "input" {
		t.Fatal("op names")
	}
}

func TestGateAndOpCounts(t *testing.T) {
	fa := buildFullAdder()
	if fa.GateCount() == 0 || fa.CountOp(Xor) != 2 {
		t.Fatalf("GateCount=%d CountOp(Xor)=%d", fa.GateCount(), fa.CountOp(Xor))
	}
	if fa.NumInputs() != 3 || fa.NumOutputs() != 2 {
		t.Fatal("I/O counts")
	}
}
