package netlist

import (
	"strings"
	"testing"
)

func TestStatsSummary(t *testing.T) {
	fa := buildFullAdder()
	s := fa.Stats()
	if s.Inputs != 3 || s.Outputs != 2 {
		t.Fatalf("stats I/O: %+v", s)
	}
	if s.Gates == 0 || s.Depth == 0 || s.MaxFanout == 0 {
		t.Fatalf("stats zeroed: %+v", s)
	}
	if s.ByOp[Xor] != 2 {
		t.Fatalf("ByOp[Xor] = %d", s.ByOp[Xor])
	}
	str := s.String()
	if !strings.Contains(str, "in=3") || !strings.Contains(str, "xor:2") {
		t.Fatalf("stats string: %s", str)
	}
}

func TestDOTExport(t *testing.T) {
	fa := buildFullAdder()
	dot := fa.DOT()
	for _, want := range []string{"digraph", "rankdir=LR", "shape=box", "doublecircle", "->"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Every gate edge references declared nodes (syntactic smoke test):
	// count node declarations ≥ inputs + gates.
	decls := strings.Count(dot, "[shape=")
	if decls < fa.NumInputs()+fa.GateCount() {
		t.Fatalf("only %d node declarations", decls)
	}
}

func TestDOTConstants(t *testing.T) {
	b := NewBuilder("c")
	x := b.Input()
	b.Output(b.Or(x, b.Const(false))) // folds away; force a live const:
	b.Output(b.Const(true))
	nl := b.Build()
	dot := nl.DOT()
	if !strings.Contains(dot, "const1") {
		t.Fatalf("constant not rendered:\n%s", dot)
	}
}
