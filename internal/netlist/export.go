package netlist

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarizes a netlist for reports and sanity checks.
type Stats struct {
	Inputs, Outputs int
	Gates           int
	Depth           int
	ByOp            map[Op]int
	MaxFanout       int
}

// Stats computes summary statistics in one sweep.
func (n *Netlist) Stats() Stats {
	s := Stats{
		Inputs:  n.NumInputs(),
		Outputs: n.NumOutputs(),
		Gates:   n.GateCount(),
		ByOp:    make(map[Op]int),
	}
	_, s.Depth = n.Levels()
	for _, g := range n.gates {
		s.ByOp[g.Op]++
	}
	for _, f := range n.Fanout() {
		if f > s.MaxFanout {
			s.MaxFanout = f
		}
	}
	return s
}

// String renders the stats compactly, ops in a stable order.
func (s Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "in=%d out=%d gates=%d depth=%d maxFanout=%d [",
		s.Inputs, s.Outputs, s.Gates, s.Depth, s.MaxFanout)
	ops := make([]int, 0, len(s.ByOp))
	for op := range s.ByOp {
		ops = append(ops, int(op))
	}
	sort.Ints(ops)
	first := true
	for _, op := range ops {
		if Op(op) == Input || Op(op) == Const0 || Op(op) == Const1 {
			continue
		}
		if !first {
			sb.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&sb, "%v:%d", Op(op), s.ByOp[Op(op)])
	}
	sb.WriteByte(']')
	return sb.String()
}

// DOT renders the netlist in Graphviz format for inspection. Inputs are
// boxes, outputs double circles, gates labeled by op. Intended for the
// small control circuits; large netlists render but are unreadable.
func (n *Netlist) DOT() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=LR;\n", n.name)
	outSet := make(map[int]int)
	for i, id := range n.outputs {
		outSet[id] = i
	}
	inIdx := 0
	for id, g := range n.gates {
		switch g.Op {
		case Input:
			fmt.Fprintf(&sb, "  n%d [shape=box,label=\"in%d\"];\n", id, inIdx)
			inIdx++
		case Const0, Const1:
			fmt.Fprintf(&sb, "  n%d [shape=box,label=%q];\n", id, g.Op.String())
		default:
			shape := "ellipse"
			if _, ok := outSet[id]; ok {
				shape = "doublecircle"
			}
			fmt.Fprintf(&sb, "  n%d [shape=%s,label=%q];\n", id, shape, g.Op.String())
			fmt.Fprintf(&sb, "  n%d -> n%d;\n", g.A, id)
			if g.Op.arity() == 2 {
				fmt.Fprintf(&sb, "  n%d -> n%d;\n", g.B, id)
			}
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
