package netlist

import "fmt"

// Builder constructs a Netlist incrementally. It performs structural
// hashing (common-subexpression elimination) and light constant folding
// as gates are added, so generators can write naive structural code and
// still get reasonably sized netlists.
type Builder struct {
	gates   []Gate
	inputs  []int
	outputs []int
	name    string
	hash    map[Gate]int
	zero    int // node id of Const0, -1 until created
	one     int // node id of Const1, -1 until created
}

// NewBuilder returns an empty builder for a circuit with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, hash: make(map[Gate]int), zero: -1, one: -1}
}

func (b *Builder) add(g Gate) int {
	b.gates = append(b.gates, g)
	return len(b.gates) - 1
}

// Input declares a new primary input and returns its node id.
func (b *Builder) Input() int {
	id := b.add(Gate{Op: Input})
	b.inputs = append(b.inputs, id)
	return id
}

// InputBus declares w primary inputs and returns their ids (bit 0 first).
func (b *Builder) InputBus(w int) []int {
	ids := make([]int, w)
	for i := range ids {
		ids[i] = b.Input()
	}
	return ids
}

// Const returns the node id of the constant v, creating it on first use.
func (b *Builder) Const(v bool) int {
	if v {
		if b.one < 0 {
			b.one = b.add(Gate{Op: Const1})
		}
		return b.one
	}
	if b.zero < 0 {
		b.zero = b.add(Gate{Op: Const0})
	}
	return b.zero
}

func (b *Builder) isConst(id int) (bool, bool) {
	switch b.gates[id].Op {
	case Const0:
		return true, false
	case Const1:
		return true, true
	}
	return false, false
}

// gate adds a structurally hashed binary gate with folding.
func (b *Builder) gate(op Op, x, y int) int {
	b.checkID(x)
	b.checkID(y)
	// Normalize commutative operand order for hashing.
	if x > y {
		x, y = y, x
	}
	if cx, vx := b.isConst(x); cx {
		if cy, vy := b.isConst(y); cy {
			return b.Const(evalBinary(op, vx, vy))
		}
		return b.foldWithConst(op, y, vx)
	}
	if cy, vy := b.isConst(y); cy {
		return b.foldWithConst(op, x, vy)
	}
	if x == y {
		switch op {
		case And, Or:
			return x
		case Xor:
			return b.Const(false)
		case Xnor:
			return b.Const(true)
		case Nand, Nor:
			return b.Not(x)
		}
	}
	key := Gate{Op: op, A: x, B: y}
	if id, ok := b.hash[key]; ok {
		return id
	}
	id := b.add(key)
	b.hash[key] = id
	return id
}

// foldWithConst simplifies op(x, const v).
func (b *Builder) foldWithConst(op Op, x int, v bool) int {
	switch op {
	case And:
		if v {
			return x
		}
		return b.Const(false)
	case Or:
		if v {
			return b.Const(true)
		}
		return x
	case Nand:
		if v {
			return b.Not(x)
		}
		return b.Const(true)
	case Nor:
		if v {
			return b.Const(false)
		}
		return b.Not(x)
	case Xor:
		if v {
			return b.Not(x)
		}
		return x
	case Xnor:
		if v {
			return x
		}
		return b.Not(x)
	}
	panic("netlist: foldWithConst on non-binary op")
}

func evalBinary(op Op, a, bo bool) bool {
	switch op {
	case And:
		return a && bo
	case Or:
		return a || bo
	case Nand:
		return !(a && bo)
	case Nor:
		return !(a || bo)
	case Xor:
		return a != bo
	case Xnor:
		return a == bo
	}
	panic("netlist: evalBinary on non-binary op")
}

// Not returns ¬x, folding double negation and constants.
func (b *Builder) Not(x int) int {
	b.checkID(x)
	if c, v := b.isConst(x); c {
		return b.Const(!v)
	}
	if b.gates[x].Op == Not {
		return b.gates[x].A // ¬¬y = y
	}
	key := Gate{Op: Not, A: x}
	if id, ok := b.hash[key]; ok {
		return id
	}
	id := b.add(key)
	b.hash[key] = id
	return id
}

// And returns x∧y.
func (b *Builder) And(x, y int) int { return b.gate(And, x, y) }

// Or returns x∨y.
func (b *Builder) Or(x, y int) int { return b.gate(Or, x, y) }

// Nand returns ¬(x∧y).
func (b *Builder) Nand(x, y int) int { return b.gate(Nand, x, y) }

// Nor returns ¬(x∨y).
func (b *Builder) Nor(x, y int) int { return b.gate(Nor, x, y) }

// Xor returns x⊕y.
func (b *Builder) Xor(x, y int) int { return b.gate(Xor, x, y) }

// Xnor returns ¬(x⊕y).
func (b *Builder) Xnor(x, y int) int { return b.gate(Xnor, x, y) }

// Mux returns s ? a : b (a when s is true).
func (b *Builder) Mux(s, a, bb int) int {
	return b.Or(b.And(s, a), b.And(b.Not(s), bb))
}

// Output declares a primary output driven by node id.
func (b *Builder) Output(id int) {
	b.checkID(id)
	b.outputs = append(b.outputs, id)
}

// OutputBus declares a bus of outputs (bit 0 first).
func (b *Builder) OutputBus(ids []int) {
	for _, id := range ids {
		b.Output(id)
	}
}

func (b *Builder) checkID(id int) {
	if id < 0 || id >= len(b.gates) {
		panic(fmt.Sprintf("netlist: node id %d out of range", id))
	}
}

// Build finalizes the netlist. Outputs that are driven directly by a
// primary input or shared with another output get a Buf gate inserted so
// every output has a distinct driver gate — which the SIMPLER mapper
// needs, because each output must occupy its own writable cell.
func (b *Builder) Build() *Netlist {
	seen := make(map[int]bool)
	for i, id := range b.outputs {
		needsBuf := b.gates[id].Op == Input || b.gates[id].Op == Const0 ||
			b.gates[id].Op == Const1 || seen[id]
		if needsBuf {
			nid := b.add(Gate{Op: Buf, A: id})
			b.outputs[i] = nid
			id = nid
		}
		seen[id] = true
	}
	return &Netlist{gates: b.gates, inputs: b.inputs, outputs: b.outputs, name: b.name}
}
