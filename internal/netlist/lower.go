package netlist

import "fmt"

// LowerToNOR rewrites the netlist into the MAGIC-native {NOR2, NOT}
// basis, with structural hashing and double-negation folding applied
// during the rewrite. The standard decompositions are used:
//
//	AND(a,b)  = NOR(¬a, ¬b)
//	OR(a,b)   = ¬NOR(a,b)
//	NAND(a,b) = ¬NOR(¬a, ¬b)
//	XNOR(a,b) = NOR(NOR(a,t), NOR(b,t)),  t = NOR(a,b)   (4 gates)
//	XOR(a,b)  = ¬XNOR(a,b)                               (5 gates)
//
// Buf gates (inserted so each primary output has its own cell) become a
// raw double-NOT copy, since MAGIC has no buffer gate.
func (n *Netlist) LowerToNOR() *Netlist {
	lb := &lowerer{b: NewBuilder(n.name + "-nor")}
	mapped := make([]int, len(n.gates))
	for id, g := range n.gates {
		switch g.Op {
		case Input:
			mapped[id] = lb.b.Input()
		case Const0:
			mapped[id] = lb.b.Const(false)
		case Const1:
			mapped[id] = lb.b.Const(true)
		case Not:
			mapped[id] = lb.not(mapped[g.A])
		case Buf:
			// Copy through two raw NOTs; no folding, so the output keeps
			// a distinct driver gate.
			mapped[id] = lb.rawNot(lb.not(mapped[g.A]))
		case And:
			mapped[id] = lb.nor(lb.not(mapped[g.A]), lb.not(mapped[g.B]))
		case Or:
			mapped[id] = lb.not(lb.nor(mapped[g.A], mapped[g.B]))
		case Nand:
			mapped[id] = lb.not(lb.nor(lb.not(mapped[g.A]), lb.not(mapped[g.B])))
		case Nor:
			mapped[id] = lb.nor(mapped[g.A], mapped[g.B])
		case Xor:
			mapped[id] = lb.not(lb.xnor(mapped[g.A], mapped[g.B]))
		case Xnor:
			mapped[id] = lb.xnor(mapped[g.A], mapped[g.B])
		default:
			panic(fmt.Sprintf("netlist: cannot lower op %v", g.Op))
		}
	}
	// Re-declare outputs; ensure each has a distinct non-source driver.
	seen := make(map[int]bool)
	for _, id := range n.outputs {
		m := mapped[id]
		g := lb.b.gates[m]
		if g.Op == Input || g.Op == Const0 || g.Op == Const1 || seen[m] {
			m = lb.rawNot(lb.not(m))
		}
		seen[m] = true
		lb.b.outputs = append(lb.b.outputs, m)
	}
	return &Netlist{gates: lb.b.gates, inputs: lb.b.inputs, outputs: lb.b.outputs, name: lb.b.name}
}

// lowerer wraps a Builder restricted to the NOR basis.
type lowerer struct{ b *Builder }

func (l *lowerer) nor(x, y int) int { return l.b.gate(Nor, x, y) }
func (l *lowerer) not(x int) int    { return l.b.Not(x) }

// rawNot appends a NOT gate without hashing or double-negation folding.
func (l *lowerer) rawNot(x int) int {
	return l.b.add(Gate{Op: Not, A: x})
}

func (l *lowerer) xnor(x, y int) int {
	t := l.nor(x, y)
	return l.nor(l.nor(x, t), l.nor(y, t))
}
