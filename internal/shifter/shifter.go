// Package shifter models the barrel shifters that connect the MEM crossbar
// to the Check Memory (Fig 5 of the paper). Diagonal wires are infeasible
// in a crossbar (memristors have two terminals), so the diagonal effect is
// emulated by rerouting: the n wordlines (or bitlines) are divided into
// n/m groups of m lines — one group per block — and every group is rotated
// by the operation's row/column index modulo m. After rotation, output
// line i of each group carries the data bit lying on diagonal index i of
// that block, which is exactly the order the check-bit crossbars need.
//
// The shifters are pure routing (transistor switches + a CMOS decoder for
// the shift amount); data transfer through them behaves like an ordinary
// in-crossbar copy, preserving MAGIC's parallelism.
package shifter

import (
	"fmt"

	"repro/internal/bitmat"
)

// Family selects which diagonal family's ordering the shifter produces.
type Family int

const (
	// Leading selects (row+col) mod m diagonals (bottom-left to top-right).
	Leading Family = iota
	// Counter selects (row−col) mod m diagonals (bottom-right to top-left).
	Counter
)

// String names the family.
func (f Family) String() string {
	if f == Leading {
		return "leading"
	}
	return "counter"
}

// Orientation says which MEM interface the data arrived on.
type Orientation int

const (
	// RowParallel: the MEM op executed in-row across all rows; the
	// transferred vector is a column, indexed by global row, and the shift
	// amount is the written column index mod m.
	RowParallel Orientation = iota
	// ColParallel: the MEM op executed in-column across all columns; the
	// transferred vector is a row, indexed by global column, and the shift
	// amount is the written row index mod m.
	ColParallel
)

// String names the orientation.
func (o Orientation) String() string {
	if o == RowParallel {
		return "row-parallel"
	}
	return "col-parallel"
}

// Shifter routes length-n vectors between MEM line order and CMEM diagonal
// order for an n×n crossbar with m×m blocks.
type Shifter struct {
	N, M int
}

// New returns a shifter for geometry (n, m). n must be a multiple of m.
func New(n, m int) *Shifter {
	if m <= 0 || n <= 0 || n%m != 0 {
		panic(fmt.Sprintf("shifter: n=%d must be a positive multiple of m=%d", n, m))
	}
	return &Shifter{N: n, M: m}
}

// Groups returns n/m, the number of blocks a transferred vector spans.
func (s *Shifter) Groups() int { return s.N / s.M }

// sourceOffset returns the local line offset within each group that feeds
// diagonal-index output d, for the given family/orientation and shift
// amount (the fixed row/column index of the MEM operation, mod m).
//
// Derivations (lr/lc are local row/col inside a block):
//
//	leading, row-parallel:  d = (lr+lc) mod m, lc fixed = shift → lr = d−shift
//	leading, col-parallel:  d = (lr+lc) mod m, lr fixed = shift → lc = d−shift
//	counter, row-parallel:  d = (lr−lc) mod m, lc fixed = shift → lr = d+shift
//	counter, col-parallel:  d = (lr−lc) mod m, lr fixed = shift → lc = shift−d
func (s *Shifter) sourceOffset(d, shift int, f Family, o Orientation) int {
	m := s.M
	var off int
	switch {
	case f == Leading:
		off = d - shift
	case f == Counter && o == RowParallel:
		off = d + shift
	default: // Counter, ColParallel
		off = shift - d
	}
	return ((off % m) + m) % m
}

// Route converts a MEM-order vector (length n, indexed by global row for
// row-parallel ops or global column for column-parallel ops) into the m
// diagonal-order vectors d_0..d_{m−1}, each of length n/m, where
// out[d][g] is the data bit of group (block) g lying on diagonal d.
func (s *Shifter) Route(data *bitmat.Vec, shift int, f Family, o Orientation) []*bitmat.Vec {
	out := make([]*bitmat.Vec, s.M)
	g := s.Groups()
	packed := bitmat.NewVec(s.N)
	s.RoutePacked(packed, data, shift, f, o)
	for d := 0; d < s.M; d++ {
		out[d] = packed.Slice(d*g, (d+1)*g)
	}
	return out
}

// RoutePacked is the allocation-free core of Route: it writes the m
// diagonal-order vectors d-major into dst (bit d·groups+g of dst is the
// data bit of group g on diagonal d) — exactly the packing the check-bit
// crossbars consume, with no intermediate per-diagonal vectors. dst must
// not alias data (the permutation is applied while reading).
func (s *Shifter) RoutePacked(dst, data *bitmat.Vec, shift int, f Family, o Orientation) {
	if dst == data {
		panic("shifter: RoutePacked destination must not alias the data vector")
	}
	if data.Len() != s.N {
		panic(fmt.Sprintf("shifter: vector length %d, want %d", data.Len(), s.N))
	}
	if dst.Len() != s.N {
		panic(fmt.Sprintf("shifter: packed destination length %d, want %d", dst.Len(), s.N))
	}
	shift = ((shift % s.M) + s.M) % s.M
	g := s.Groups()
	for d := 0; d < s.M; d++ {
		off := s.sourceOffset(d, shift, f, o)
		for grp := 0; grp < g; grp++ {
			dst.Set(d*g+grp, data.Get(grp*s.M+off))
		}
	}
}

// Unroute is the inverse of Route: it reassembles the MEM-order vector
// from diagonal-order vectors. Route followed by Unroute is the identity,
// reflecting that the shifter is pure (bijective) wiring.
func (s *Shifter) Unroute(diag []*bitmat.Vec, shift int, f Family, o Orientation) *bitmat.Vec {
	if len(diag) != s.M {
		panic(fmt.Sprintf("shifter: got %d diagonal vectors, want %d", len(diag), s.M))
	}
	shift = ((shift % s.M) + s.M) % s.M
	out := bitmat.NewVec(s.N)
	g := s.Groups()
	for d := 0; d < s.M; d++ {
		if diag[d].Len() != g {
			panic("shifter: diagonal vector has wrong length")
		}
		off := s.sourceOffset(d, shift, f, o)
		for grp := 0; grp < g; grp++ {
			out.Set(grp*s.M+off, diag[d].Get(grp))
		}
	}
	return out
}

// Permutation returns, for validation, the source line index feeding each
// (diagonal, group) output: perm[d*groups+g] = source index in the MEM
// vector. The mapping must always be a bijection on [0,n).
func (s *Shifter) Permutation(shift int, f Family, o Orientation) []int {
	shift = ((shift % s.M) + s.M) % s.M
	g := s.Groups()
	perm := make([]int, s.N)
	for d := 0; d < s.M; d++ {
		off := s.sourceOffset(d, shift, f, o)
		for grp := 0; grp < g; grp++ {
			perm[d*g+grp] = grp*s.M + off
		}
	}
	return perm
}

// TransistorCount returns the switch-transistor budget of the crossbar's
// shifter complement per Table II: 4·n·m — each of the n lines fans out to
// m possible positions (an m-Shifter column of m pass transistors), and
// there are four shifter planes: {leading, counter} × {wordline-side,
// bitline-side}.
func TransistorCount(n, m int) int { return 4 * n * m }

// ShiftPattern renders the Fig 2(c) pattern: for an m×m block it returns
// rows of leading-diagonal indices, showing how the diagonal label shifts
// by one position per column. Row r, column c holds (r+c) mod m.
func ShiftPattern(m int) [][]int {
	out := make([][]int, m)
	for r := range out {
		out[r] = make([]int, m)
		for c := range out[r] {
			out[r][c] = (r + c) % m
		}
	}
	return out
}
