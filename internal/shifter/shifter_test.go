package shifter

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitmat"
	"repro/internal/ecc"
)

func randVec(rng *rand.Rand, n int) *bitmat.Vec {
	v := bitmat.NewVec(n)
	for i := 0; i < n; i++ {
		v.Set(i, rng.Intn(2) == 0)
	}
	return v
}

func TestRouteUnrouteIdentityProperty(t *testing.T) {
	f := func(seed int64, shiftRaw int, fam, orient bool) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 3 + 2*rng.Intn(8)
		groups := 1 + rng.Intn(6)
		s := New(m*groups, m)
		data := randVec(rng, s.N)
		family := Leading
		if fam {
			family = Counter
		}
		o := RowParallel
		if orient {
			o = ColParallel
		}
		diag := s.Route(data, shiftRaw, family, o)
		return s.Unroute(diag, shiftRaw, family, o).Equal(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPermutationIsBijection(t *testing.T) {
	s := New(45, 15)
	for shift := 0; shift < 15; shift++ {
		for _, f := range []Family{Leading, Counter} {
			for _, o := range []Orientation{RowParallel, ColParallel} {
				perm := s.Permutation(shift, f, o)
				seen := make([]bool, s.N)
				for _, src := range perm {
					if src < 0 || src >= s.N || seen[src] {
						t.Fatalf("shift=%d %v %v: not a bijection", shift, f, o)
					}
					seen[src] = true
				}
			}
		}
	}
}

// TestRouteMatchesDiagonalIndexing is the load-bearing test: the shifter
// output for a column transfer must agree with the ecc package's diagonal
// indexing of the cells that column passes through.
func TestRouteMatchesDiagonalIndexing(t *testing.T) {
	p := ecc.Params{N: 45, M: 15}
	s := New(p.N, p.M)
	rng := rand.New(rand.NewSource(7))
	mem := bitmat.NewMat(p.N, p.N)
	mem.Randomize(rng)

	for _, c := range []int{0, 1, 7, 14, 15, 29, 44} {
		col := mem.Col(c)
		shift := c % p.M
		lead := s.Route(col, shift, Leading, RowParallel)
		counter := s.Route(col, shift, Counter, RowParallel)
		for r := 0; r < p.N; r++ {
			br, _, lr, lc := p.BlockOf(r, c)
			want := mem.Get(r, c)
			if got := lead[p.LeadIdx(lr, lc)].Get(br); got != want {
				t.Fatalf("col %d row %d: leading route bit %v, want %v", c, r, got, want)
			}
			if got := counter[p.CounterIdx(lr, lc)].Get(br); got != want {
				t.Fatalf("col %d row %d: counter route bit %v, want %v", c, r, got, want)
			}
		}
	}
}

func TestRouteMatchesDiagonalIndexingColParallel(t *testing.T) {
	p := ecc.Params{N: 45, M: 15}
	s := New(p.N, p.M)
	rng := rand.New(rand.NewSource(8))
	mem := bitmat.NewMat(p.N, p.N)
	mem.Randomize(rng)

	for _, r := range []int{0, 3, 14, 15, 30, 44} {
		row := mem.Row(r).Clone()
		shift := r % p.M
		lead := s.Route(row, shift, Leading, ColParallel)
		counter := s.Route(row, shift, Counter, ColParallel)
		for c := 0; c < p.N; c++ {
			_, bc, lr, lc := p.BlockOf(r, c)
			want := mem.Get(r, c)
			if got := lead[p.LeadIdx(lr, lc)].Get(bc); got != want {
				t.Fatalf("row %d col %d: leading route bit %v, want %v", r, c, got, want)
			}
			if got := counter[p.CounterIdx(lr, lc)].Get(bc); got != want {
				t.Fatalf("row %d col %d: counter route bit %v, want %v", r, c, got, want)
			}
		}
	}
}

func TestShiftAmountIrrelevantBeyondModM(t *testing.T) {
	s := New(30, 15)
	rng := rand.New(rand.NewSource(3))
	data := randVec(rng, 30)
	a := s.Route(data, 2, Leading, RowParallel)
	b := s.Route(data, 17, Leading, RowParallel) // 17 mod 15 == 2
	for d := range a {
		if !a[d].Equal(b[d]) {
			t.Fatal("shift not taken modulo m")
		}
	}
}

func TestTransistorCountPaperCaseStudy(t *testing.T) {
	// Table II: shifters for n=1020, m=15 use 4·n·m = 61200 ≈ 6.12e4.
	if got := TransistorCount(1020, 15); got != 61200 {
		t.Fatalf("TransistorCount = %d, want 61200", got)
	}
}

func TestShiftPattern(t *testing.T) {
	// Fig 2(c): each row of the pattern is the previous rotated by one.
	pat := ShiftPattern(5)
	for r := 0; r < 5; r++ {
		for c := 0; c < 5; c++ {
			if pat[r][c] != (r+c)%5 {
				t.Fatalf("pattern[%d][%d] = %d", r, c, pat[r][c])
			}
		}
	}
	// Row r+1 is row r shifted left by one position.
	for r := 0; r+1 < 5; r++ {
		for c := 0; c < 5; c++ {
			if pat[r+1][c] != pat[r][(c+1)%5] {
				t.Fatal("rows do not shift by column index")
			}
		}
	}
}

func TestNewValidation(t *testing.T) {
	for _, bad := range [][2]int{{10, 3}, {0, 3}, {9, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			New(bad[0], bad[1])
		}()
	}
}

func TestRouteWrongLengthPanics(t *testing.T) {
	s := New(30, 15)
	defer func() {
		if recover() == nil {
			t.Fatal("Route with wrong vector length did not panic")
		}
	}()
	s.Route(bitmat.NewVec(29), 0, Leading, RowParallel)
}

func TestFamilyOrientationStrings(t *testing.T) {
	if Leading.String() != "leading" || Counter.String() != "counter" {
		t.Fatal("family strings")
	}
	if RowParallel.String() != "row-parallel" || ColParallel.String() != "col-parallel" {
		t.Fatal("orientation strings")
	}
}
