package circuits

import "testing"

// Exhaustive truth-table cross-checks for every benchmark small enough to
// enumerate, against both the mixed-basis and NOR-lowered netlists.

func exhaustiveCheck(t *testing.T, name string) {
	t.Helper()
	bm, ok := ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %s", name)
	}
	nl := bm.Build()
	nor := nl.LowerToNOR()
	nIn := nl.NumInputs()
	if nIn > 20 {
		t.Fatalf("%s has %d inputs — too wide for exhaustive check", name, nIn)
	}
	for v := uint64(0); v < 1<<uint(nIn); v++ {
		in := make([]bool, nIn)
		for i := 0; i < nIn; i++ {
			in[i] = v&(1<<uint(i)) != 0
		}
		want := bm.Ref(in)
		got := nl.Eval(in)
		gotNOR := nor.Eval(in)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("%s(%#x) output %d: netlist %v, ref %v", name, v, j, got[j], want[j])
			}
			if gotNOR[j] != want[j] {
				t.Fatalf("%s(%#x) output %d: NOR netlist %v, ref %v", name, v, j, gotNOR[j], want[j])
			}
		}
	}
}

func TestCavlcExhaustive(t *testing.T)     { exhaustiveCheck(t, "cavlc") }     // 2^10
func TestCtrlExhaustive(t *testing.T)      { exhaustiveCheck(t, "ctrl") }      // 2^7
func TestDecExhaustiveFull(t *testing.T)   { exhaustiveCheck(t, "dec") }       // 2^8
func TestInt2FloatExhaustive(t *testing.T) { exhaustiveCheck(t, "int2float") } // 2^11

// TestCtrlPatternsDeterministic pins the derived pattern table: the ctrl
// benchmark must be identical across builds (it stands in for a fixed
// EPFL netlist, so its function may never drift).
func TestCtrlPatternsDeterministic(t *testing.T) {
	a := ctrlPatterns()
	b := ctrlPatterns()
	if len(a) != 26 || len(b) != 26 {
		t.Fatal("pattern count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pattern %d differs between calls", i)
		}
	}
	// Pin a couple of spot values so accidental LCG changes are caught.
	if a[0].pos != b[0].pos {
		t.Fatal("unstable")
	}
}

// TestSinReferenceFixedVectors pins the sin core against precomputed
// values of the Horner-form polynomial (guarding both the circuit and
// the reference model against drift).
func TestSinReferenceFixedVectors(t *testing.T) {
	nl := BuildSin()
	for _, x12 := range []uint64{0, 1, 0x800, 0xFFF, 0x5A5} {
		q := (x12 * sinC2) & 0xFFFFFF
		r := ((q >> 12) + sinC1) & 0xFFF
		s := (x12 * r) & 0xFFFFFF
		yc := (s >> 12) + sinC0

		in := make([]bool, 24)
		for i := 0; i < 12; i++ {
			in[12+i] = x12&(1<<uint(i)) != 0
		}
		out := nl.Eval(in)
		y := bitsToUint(out[:12])
		carry := out[12]
		sLow := bitsToUint(out[13:25])
		if y != yc&0xFFF || carry != (yc>>12 != 0) || sLow != s&0xFFF {
			t.Fatalf("sin(x12=%#x): y=%#x carry=%v sLow=%#x; want y=%#x carry=%v sLow=%#x",
				x12, y, carry, sLow, yc&0xFFF, yc>>12 != 0, s&0xFFF)
		}
	}
}

// TestVoterMatchesPopcountReference drives the voter against dense,
// structured vote patterns that random testing under-samples.
func TestVoterMatchesPopcountReference(t *testing.T) {
	nl := BuildVoter()
	patterns := []struct {
		name  string
		votes func(i int) bool
	}{
		{"alternating", func(i int) bool { return i%2 == 0 }}, // 501 ones
		{"first-500", func(i int) bool { return i < 500 }},    // fails
		{"last-501", func(i int) bool { return i >= 500 }},    // passes
		{"every-third", func(i int) bool { return i%3 == 0 }}, // 334
		{"all-but-500", func(i int) bool { return i != 500 }}, // 1000
	}
	for _, p := range patterns {
		in := make([]bool, 1001)
		n := 0
		for i := range in {
			in[i] = p.votes(i)
			if in[i] {
				n++
			}
		}
		if got := nl.Eval(in)[0]; got != (n >= 501) {
			t.Fatalf("%s (%d votes): got %v", p.name, n, got)
		}
	}
}
