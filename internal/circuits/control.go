package circuits

import "repro/internal/netlist"

// This file holds the three control/arithmetic benchmarks whose EPFL
// originals implement application-specific logic we cannot redistribute
// (CAVLC coefficient coding, a bus controller, a sine core). Each is
// replaced by a concrete combinational function with the same I/O
// signature and comparable gate count; the Table I latency shape depends
// only on those quantities. Substitutions are catalogued in DESIGN.md.

// --- cavlc: coefficient-token-style arithmetic (10 in / 11 out) --------------

// BuildCavlc generates a mixed arithmetic block: a 5×3 product, a 5-bit
// sum, a magnitude compare and an input parity — ~600 NOR-basis gates,
// matching the EPFL cavlc's size class.
func BuildCavlc() *netlist.Netlist {
	b := netlist.NewBuilder("cavlc")
	t := b.InputBus(5) // totalcoeff-style field
	l := b.InputBus(3) // trailing-ones-style field
	c := b.InputBus(2) // context field

	prod := mulUnsigned(b, t, l) // 8 bits
	x := append(append([]int(nil), l...), c...)
	_, cout := addRCA(b, t, x, b.Const(false))
	ge := geUnsigned(b, t, x)
	parity := b.Const(false)
	for _, in := range append(append(append([]int(nil), t...), l...), c...) {
		parity = b.Xor(parity, in)
	}

	b.OutputBus(prod) // 8
	b.Output(cout)    // 1
	b.Output(ge)      // 1
	b.Output(parity)  // 1
	return b.Build()
}

// RefCavlc mirrors BuildCavlc.
func RefCavlc(in []bool) []bool {
	t := bitsToUint(in[:5])
	l := bitsToUint(in[5:8])
	x := bitsToUint(in[5:10]) // l ++ c as a 5-bit field
	prod := t * l
	sum := t + x
	parity := false
	for _, v := range in {
		parity = parity != v
	}
	out := make([]bool, 0, 11)
	out = append(out, uintToBits(prod, 8)...)
	out = append(out, sum >= 32)
	out = append(out, t >= x)
	out = append(out, parity)
	return out
}

// --- ctrl: opcode decoder (7 in / 26 out) ------------------------------------

// ctrlPattern describes one control output: an AND of three literals
// (input index + polarity) optionally XORed with the global parity.
type ctrlPattern struct {
	pos [3]int
	neg [3]bool
	xor bool
}

// ctrlPatterns derives the 26 deterministic patterns from a fixed linear
// congruential sequence, shared by the generator and the reference.
func ctrlPatterns() []ctrlPattern {
	ps := make([]ctrlPattern, 26)
	state := uint32(0x2A10CE13)
	next := func(n int) int {
		state = state*1664525 + 1013904223
		return int(state>>16) % n
	}
	for i := range ps {
		for j := 0; j < 3; j++ {
			ps[i].pos[j] = next(7)
			ps[i].neg[j] = next(2) == 1
		}
		ps[i].xor = next(4) == 0
	}
	return ps
}

// BuildCtrl generates the controller benchmark: 26 decoded control
// signals over a 7-bit opcode — a small, output-dense circuit like the
// EPFL ctrl (which is why its ECC overhead is among the highest).
func BuildCtrl() *netlist.Netlist {
	b := netlist.NewBuilder("ctrl")
	in := b.InputBus(7)
	parity := b.Const(false)
	for _, x := range in {
		parity = b.Xor(parity, x)
	}
	for _, p := range ctrlPatterns() {
		term := b.Const(true)
		for j := 0; j < 3; j++ {
			lit := in[p.pos[j]]
			if p.neg[j] {
				lit = b.Not(lit)
			}
			term = b.And(term, lit)
		}
		if p.xor {
			term = b.Xor(term, parity)
		}
		b.Output(term)
	}
	return b.Build()
}

// RefCtrl mirrors BuildCtrl.
func RefCtrl(in []bool) []bool {
	parity := false
	for _, v := range in {
		parity = parity != v
	}
	out := make([]bool, 26)
	for i, p := range ctrlPatterns() {
		term := true
		for j := 0; j < 3; j++ {
			lit := in[p.pos[j]]
			if p.neg[j] {
				lit = !lit
			}
			term = term && lit
		}
		if p.xor {
			term = term != parity
		}
		out[i] = term
	}
	return out
}

// --- sin: fixed-point polynomial sine core (24 in / 25 out) ------------------

// Fixed-point polynomial coefficients (12-bit).
const (
	sinC2 = 0xA3F
	sinC1 = 0x6B2
	sinC0 = 0x913
)

// BuildSin generates the sine benchmark: a Horner-form fixed-point
// quadratic y = c0 + x·(c1 + x·c2) with two 12×12 multipliers — the same
// multiplier-dominated structure and size class (~5k NOR gates) as the
// EPFL sin core.
func BuildSin() *netlist.Netlist {
	b := netlist.NewBuilder("sin")
	x := b.InputBus(24)
	x12 := x[12:] // top 12 bits

	constBus := func(v uint64, w int) []int {
		out := make([]int, w)
		for j := 0; j < w; j++ {
			out[j] = b.Const(v&(1<<uint(j)) != 0)
		}
		return out
	}

	q := mulUnsigned(b, x12, constBus(sinC2, 12)) // 24 bits
	q12 := q[12:]
	r, _ := addRCA(b, q12, constBus(sinC1, 12), b.Const(false)) // 12 bits, wraps
	s := mulUnsigned(b, x12, r)                                 // 24 bits
	s12 := s[12:]
	y, carry := addRCA(b, s12, constBus(sinC0, 12), b.Const(false))

	b.OutputBus(y)      // 12
	b.Output(carry)     // 1
	b.OutputBus(s[:12]) // 12 → 25 outputs total
	return b.Build()
}

// RefSin mirrors BuildSin.
func RefSin(in []bool) []bool {
	x12 := bitsToUint(in[12:24])
	q := (x12 * sinC2) & 0xFFFFFF
	q12 := q >> 12
	r := (q12 + sinC1) & 0xFFF
	s := (x12 * r) & 0xFFFFFF
	s12 := s >> 12
	yc := s12 + sinC0 // 13 bits
	out := make([]bool, 0, 25)
	out = append(out, uintToBits(yc&0xFFF, 12)...)
	out = append(out, yc>>12 != 0)
	out = append(out, uintToBits(s&0xFFF, 12)...)
	return out
}
