// Package circuits generates the benchmark suite the paper evaluates
// latency on (Table I uses the EPFL combinational benchmarks). The EPFL
// netlist files are not redistributable inside this offline build, so
// each benchmark is regenerated structurally with the same I/O signature
// and comparable gate counts, and — where the EPFL circuit has a crisp
// semantic (adder, bar, dec, max, priority, int2float, voter) — the same
// function. Every benchmark carries a bit-exact Go reference model used
// by the property tests. See DESIGN.md for the substitution rationale.
package circuits

import "repro/internal/netlist"

// --- builder-side helpers ---------------------------------------------------

// addRCA builds a ripple-carry adder over equal-width buses, returning
// the sum bus and the carry-out node.
func addRCA(b *netlist.Builder, a, x []int, cin int) (sum []int, cout int) {
	if len(a) != len(x) {
		panic("circuits: addRCA width mismatch")
	}
	sum = make([]int, len(a))
	carry := cin
	for i := range a {
		axb := b.Xor(a[i], x[i])
		sum[i] = b.Xor(axb, carry)
		carry = b.Or(b.And(a[i], x[i]), b.And(axb, carry))
	}
	return sum, carry
}

// incBus adds a single bit into a bus (counter += bit), returning the new
// bus and carry-out.
func incBus(b *netlist.Builder, bus []int, bit int) ([]int, int) {
	out := make([]int, len(bus))
	carry := bit
	for i := range bus {
		out[i] = b.Xor(bus[i], carry)
		carry = b.And(bus[i], carry)
	}
	return out, carry
}

// muxBus selects a (s=1) or x (s=0) element-wise.
func muxBus(b *netlist.Builder, s int, a, x []int) []int {
	if len(a) != len(x) {
		panic("circuits: muxBus width mismatch")
	}
	out := make([]int, len(a))
	for i := range a {
		out[i] = b.Mux(s, a[i], x[i])
	}
	return out
}

// geUnsigned returns a ≥ x for equal-width unsigned buses (bit 0 = LSB),
// via the LSB→MSB recurrence ge = (a_i > x_i) ∨ ((a_i = x_i) ∧ ge_prev).
func geUnsigned(b *netlist.Builder, a, x []int) int {
	if len(a) != len(x) {
		panic("circuits: geUnsigned width mismatch")
	}
	ge := b.Const(true) // a ≥ x over the empty prefix
	for i := 0; i < len(a); i++ {
		gt := b.And(a[i], b.Not(x[i]))
		eq := b.Xnor(a[i], x[i])
		ge = b.Or(gt, b.And(eq, ge))
	}
	return ge
}

// rotateLeft builds a logarithmic barrel rotator: out[i] = data[(i+shift)
// mod len(data)]. shift is a binary bus (LSB first); only the bits needed
// to cover the data length are consumed.
func rotateLeft(b *netlist.Builder, data []int, shift []int) []int {
	n := len(data)
	cur := append([]int(nil), data...)
	for s := 0; s < len(shift) && (1<<s) < n; s++ {
		amt := 1 << s
		next := make([]int, n)
		for i := 0; i < n; i++ {
			next[i] = b.Mux(shift[s], cur[(i+amt)%n], cur[i])
		}
		cur = next
	}
	return cur
}

// priorityEncode returns (index bus of width idxW, valid) for the
// lowest-index set bit of req.
func priorityEncode(b *netlist.Builder, req []int, idxW int) ([]int, int) {
	idx := make([]int, idxW)
	for i := range idx {
		idx[i] = b.Const(false)
	}
	valid := b.Const(false)
	// Walk from highest index down so lower indices override.
	for i := len(req) - 1; i >= 0; i-- {
		for j := 0; j < idxW; j++ {
			bit := b.Const(i&(1<<j) != 0)
			idx[j] = b.Mux(req[i], bit, idx[j])
		}
		valid = b.Or(valid, req[i])
	}
	return idx, valid
}

// popcount reduces bits to a binary count using a full-adder compressor
// tree (weight buckets, 3:2 compression) — the structure of the EPFL
// voter's counting core. Compression is interleaved round-robin across
// weights so that carries are consumed soon after they are produced,
// keeping the number of simultaneously live values (and hence the SIMPLER
// row pressure) low.
func popcount(b *netlist.Builder, bits []int, outW int) []int {
	buckets := make([][]int, outW+1)
	buckets[0] = append([]int(nil), bits...)
	for {
		progress := false
		for w := 0; w < outW; w++ {
			if len(buckets[w]) >= 3 {
				x, y, z := buckets[w][0], buckets[w][1], buckets[w][2]
				buckets[w] = buckets[w][3:]
				s, c := fullAdd(b, x, y, z)
				buckets[w] = append(buckets[w], s)
				buckets[w+1] = append(buckets[w+1], c)
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	// Final cleanup: halve any remaining pairs with half adders, lowest
	// weight first (a pair at weight w can create a carry at w+1).
	for w := 0; w < outW; w++ {
		for len(buckets[w]) >= 2 {
			x, y := buckets[w][0], buckets[w][1]
			buckets[w] = buckets[w][2:]
			s := b.Xor(x, y)
			c := b.And(x, y)
			buckets[w] = append(buckets[w], s)
			buckets[w+1] = append(buckets[w+1], c)
			if len(buckets[w]) >= 3 {
				x, y, z := buckets[w][0], buckets[w][1], buckets[w][2]
				buckets[w] = buckets[w][3:]
				s, c := fullAdd(b, x, y, z)
				buckets[w] = append(buckets[w], s)
				buckets[w+1] = append(buckets[w+1], c)
			}
		}
	}
	out := make([]int, outW)
	for w := 0; w < outW; w++ {
		if len(buckets[w]) > 0 {
			out[w] = buckets[w][0]
		} else {
			out[w] = b.Const(false)
		}
	}
	return out
}

func fullAdd(b *netlist.Builder, x, y, z int) (sum, carry int) {
	xy := b.Xor(x, y)
	sum = b.Xor(xy, z)
	carry = b.Or(b.And(x, y), b.And(xy, z))
	return sum, carry
}

// mulUnsigned builds an array multiplier: a (wA bits) × x (wX bits) →
// wA+wX bits.
func mulUnsigned(b *netlist.Builder, a, x []int) []int {
	w := len(a) + len(x)
	acc := make([]int, w)
	for i := range acc {
		acc[i] = b.Const(false)
	}
	for j := range x {
		pp := make([]int, w)
		for i := range pp {
			pp[i] = b.Const(false)
		}
		for i := range a {
			pp[i+j] = b.And(a[i], x[j])
		}
		acc, _ = addRCA(b, acc, pp, b.Const(false))
	}
	return acc
}

// --- reference-side helpers -------------------------------------------------

// bitsToUint interprets bs (LSB first, ≤64 bits) as an unsigned integer.
func bitsToUint(bs []bool) uint64 {
	var v uint64
	for i, b := range bs {
		if b {
			v |= 1 << uint(i)
		}
	}
	return v
}

// uintToBits expands v into w bits, LSB first.
func uintToBits(v uint64, w int) []bool {
	out := make([]bool, w)
	for i := 0; i < w && i < 64; i++ {
		out[i] = v&(1<<uint(i)) != 0
	}
	return out
}

// geBits compares two equal-width unsigned bit slices (LSB first).
func geBits(a, x []bool) bool {
	for i := len(a) - 1; i >= 0; i-- {
		if a[i] != x[i] {
			return a[i]
		}
	}
	return true
}

// addBits returns a+x (same width) and the carry-out.
func addBits(a, x []bool, cin bool) ([]bool, bool) {
	out := make([]bool, len(a))
	carry := cin
	for i := range a {
		s := a[i] != x[i] != carry
		carry = (a[i] && x[i]) || ((a[i] != x[i]) && carry)
		out[i] = s
	}
	return out, carry
}
