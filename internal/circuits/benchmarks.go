package circuits

import "repro/internal/netlist"

// Benchmark pairs a circuit generator with its reference model.
type Benchmark struct {
	Name        string
	Build       func() *netlist.Netlist
	Ref         func(in []bool) []bool
	ReuseInputs bool // mapper must free input cells (I/O ≈ row size)
}

// All returns the Table I benchmark suite in the paper's order.
func All() []Benchmark {
	return []Benchmark{
		{Name: "adder", Build: BuildAdder, Ref: RefAdder},
		{Name: "arbiter", Build: BuildArbiter, Ref: RefArbiter},
		{Name: "bar", Build: BuildBar, Ref: RefBar},
		{Name: "cavlc", Build: BuildCavlc, Ref: RefCavlc},
		{Name: "ctrl", Build: BuildCtrl, Ref: RefCtrl},
		{Name: "dec", Build: BuildDec, Ref: RefDec},
		{Name: "int2float", Build: BuildInt2Float, Ref: RefInt2Float},
		{Name: "max", Build: BuildMax, Ref: RefMax},
		{Name: "priority", Build: BuildPriority, Ref: RefPriority},
		{Name: "sin", Build: BuildSin, Ref: RefSin},
		{Name: "voter", Build: BuildVoter, Ref: RefVoter, ReuseInputs: true},
	}
}

// ByName returns the named benchmark.
func ByName(name string) (Benchmark, bool) {
	for _, b := range All() {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// --- adder: 128-bit ripple-carry adder (256 in / 129 out) -------------------

const adderW = 128

// BuildAdder generates the adder benchmark: s = a + b with carry-out.
func BuildAdder() *netlist.Netlist {
	b := netlist.NewBuilder("adder")
	a := b.InputBus(adderW)
	x := b.InputBus(adderW)
	sum, cout := addRCA(b, a, x, b.Const(false))
	b.OutputBus(sum)
	b.Output(cout)
	return b.Build()
}

// RefAdder is the adder's bit-exact reference.
func RefAdder(in []bool) []bool {
	a, x := in[:adderW], in[adderW:2*adderW]
	sum, carry := addBits(a, x, false)
	return append(sum, carry)
}

// --- arbiter: 128-client round-robin arbiter (256 in / 129 out) -------------

const arbW = 128

// BuildArbiter generates a round-robin arbiter: 128 request lines and a
// 128-bit one-hot priority pointer. The requests are rotated so the
// pointer position becomes index 0, a fixed priority encode picks the
// winner, and the one-hot grant is rotated back — the classic structure
// (rotate → priority → unrotate) that gives the EPFL arbiter its bulk.
func BuildArbiter() *netlist.Netlist {
	b := netlist.NewBuilder("arbiter")
	req := b.InputBus(arbW)
	ptr := b.InputBus(arbW) // one-hot pointer; all-zero behaves as index 0

	// Encode the one-hot pointer into binary (7 bits): bit j of the index
	// is the OR of ptr[i] for i with bit j set.
	const idxW = 7
	ptrIdx := make([]int, idxW)
	for j := 0; j < idxW; j++ {
		acc := b.Const(false)
		for i := 0; i < arbW; i++ {
			if i&(1<<j) != 0 {
				acc = b.Or(acc, ptr[i])
			}
		}
		ptrIdx[j] = acc
	}

	rot := rotateLeft(b, req, ptrIdx) // rot[i] = req[(i+ptr) mod 128]
	winIdx, valid := priorityEncode(b, rot, idxW)

	// One-hot decode of the winner, then rotate back by building each
	// grant output as: grant[g] = valid ∧ (winIdx == (g - ptrIdx) mod 128).
	// Equivalently rotate the one-hot right by ptrIdx — reuse rotateLeft
	// with the complemented index (+1): (g+x) where x = 128-ptr.
	onehot := make([]int, arbW)
	for i := 0; i < arbW; i++ {
		eq := b.Const(true)
		for j := 0; j < idxW; j++ {
			bit := b.Const(i&(1<<j) != 0)
			eq = b.And(eq, b.Xnor(winIdx[j], bit))
		}
		onehot[i] = b.And(eq, valid)
	}
	// Rotate right by ptrIdx == rotate left by (128 − ptrIdx) mod 128 ==
	// rotate left by (NOT ptrIdx) + 1 in 7 bits.
	inv := make([]int, idxW)
	for j := range inv {
		inv[j] = b.Not(ptrIdx[j])
	}
	one := make([]int, idxW)
	one[0] = b.Const(true)
	for j := 1; j < idxW; j++ {
		one[j] = b.Const(false)
	}
	backAmt, _ := addRCA(b, inv, one, b.Const(false))
	grants := rotateLeft(b, onehot, backAmt)

	b.OutputBus(grants)
	b.Output(valid)
	return b.Build()
}

// RefArbiter mirrors BuildArbiter.
func RefArbiter(in []bool) []bool {
	req, ptr := in[:arbW], in[arbW:2*arbW]
	// Pointer index = OR-encode of the one-hot (matches circuit for
	// non-one-hot inputs too).
	ptrIdx := 0
	for j := 0; j < 7; j++ {
		for i := 0; i < arbW; i++ {
			if i&(1<<j) != 0 && ptr[i] {
				ptrIdx |= 1 << j
				break
			}
		}
	}
	win, valid := -1, false
	for i := 0; i < arbW; i++ {
		if req[(i+ptrIdx)%arbW] {
			win, valid = i, true
			break
		}
	}
	out := make([]bool, arbW+1)
	if valid {
		// Grant position: the circuit rotates the one-hot at position
		// `win` left by (128-ptrIdx) mod 128: out[i] = onehot[(i+back)%128]
		// → grant at index (win − back) mod 128 = (win + ptrIdx) mod 128.
		out[(win+ptrIdx)%arbW] = true
	}
	out[arbW] = valid
	return out
}

// --- bar: 128-bit barrel rotator (135 in / 128 out) --------------------------

const barW = 128

// BuildBar generates the barrel-shifter benchmark: rotate-left of a
// 128-bit word by a 7-bit amount.
func BuildBar() *netlist.Netlist {
	b := netlist.NewBuilder("bar")
	data := b.InputBus(barW)
	shift := b.InputBus(7)
	b.OutputBus(rotateLeft(b, data, shift))
	return b.Build()
}

// RefBar mirrors BuildBar.
func RefBar(in []bool) []bool {
	data, shift := in[:barW], in[barW:barW+7]
	s := int(bitsToUint(shift)) % barW
	out := make([]bool, barW)
	for i := range out {
		out[i] = data[(i+s)%barW]
	}
	return out
}

// --- dec: 8→256 one-hot decoder (8 in / 256 out) -----------------------------

// BuildDec generates the decoder benchmark with two 4→16 pre-decoders
// feeding 256 AND2 gates — the canonical two-level structure.
func BuildDec() *netlist.Netlist {
	b := netlist.NewBuilder("dec")
	in := b.InputBus(8)
	pre := func(nib []int) []int {
		out := make([]int, 16)
		for v := 0; v < 16; v++ {
			term := b.Const(true)
			for j := 0; j < 4; j++ {
				if v&(1<<j) != 0 {
					term = b.And(term, nib[j])
				} else {
					term = b.And(term, b.Not(nib[j]))
				}
			}
			out[v] = term
		}
		return out
	}
	lo := pre(in[:4])
	hi := pre(in[4:])
	outs := make([]int, 256)
	for v := 0; v < 256; v++ {
		outs[v] = b.And(lo[v&15], hi[v>>4])
	}
	b.OutputBus(outs)
	return b.Build()
}

// RefDec mirrors BuildDec.
func RefDec(in []bool) []bool {
	v := int(bitsToUint(in))
	out := make([]bool, 256)
	out[v] = true
	return out
}

// --- int2float: 11-bit int → 7-bit minifloat (11 in / 7 out) -----------------

// BuildInt2Float converts a sign+10-bit-magnitude integer to a 7-bit
// minifloat: sign, 4-bit exponent (index of the leading one, biased by
// one; zero for v=0), 2-bit mantissa (the two bits below the leading
// one). Leading-one detection plus a mux-tree normalizer — the same
// structure as the EPFL int2float.
func BuildInt2Float() *netlist.Netlist {
	b := netlist.NewBuilder("int2float")
	mag := b.InputBus(10)
	sign := b.Input()

	exp := make([]int, 4)
	for j := range exp {
		exp[j] = b.Const(false)
	}
	m0 := b.Const(false)
	m1 := b.Const(false)
	// Walk from LSB to MSB so higher positions override lower ones.
	for i := 0; i < 10; i++ {
		e := i + 1 // biased exponent for leading one at position i
		for j := 0; j < 4; j++ {
			bit := b.Const(e&(1<<j) != 0)
			exp[j] = b.Mux(mag[i], bit, exp[j])
		}
		var lo, hi int
		if i >= 1 {
			lo = mag[i-1]
		} else {
			lo = b.Const(false)
		}
		if i >= 2 {
			hi = mag[i-2]
		} else {
			hi = b.Const(false)
		}
		m1 = b.Mux(mag[i], lo, m1)
		m0 = b.Mux(mag[i], hi, m0)
	}
	b.Output(sign)
	b.OutputBus(exp)
	b.Output(m1)
	b.Output(m0)
	return b.Build()
}

// RefInt2Float mirrors BuildInt2Float.
func RefInt2Float(in []bool) []bool {
	mag, sign := in[:10], in[10]
	lead := -1
	for i := 9; i >= 0; i-- {
		if mag[i] {
			lead = i
			break
		}
	}
	out := make([]bool, 7)
	out[0] = sign
	if lead >= 0 {
		e := lead + 1
		for j := 0; j < 4; j++ {
			out[1+j] = e&(1<<j) != 0
		}
		if lead >= 1 {
			out[5] = mag[lead-1]
		}
		if lead >= 2 {
			out[6] = mag[lead-2]
		}
	}
	return out
}

// --- max: maximum of four 128-bit words (512 in / 130 out) -------------------

const maxW = 128

// BuildMax generates the max benchmark: the largest of four unsigned
// 128-bit inputs plus its 2-bit index, via a comparator/mux tree.
func BuildMax() *netlist.Netlist {
	b := netlist.NewBuilder("max")
	words := make([][]int, 4)
	for i := range words {
		words[i] = b.InputBus(maxW)
	}
	ge01 := geUnsigned(b, words[0], words[1])
	m01 := muxBus(b, ge01, words[0], words[1])
	ge23 := geUnsigned(b, words[2], words[3])
	m23 := muxBus(b, ge23, words[2], words[3])
	geF := geUnsigned(b, m01, m23)
	m := muxBus(b, geF, m01, m23)

	// Index bits: idx1 = winner came from pair {2,3}; idx0 = loser of the
	// winning pair's compare.
	idx1 := b.Not(geF)
	idx0 := b.Mux(geF, b.Not(ge01), b.Not(ge23))
	b.OutputBus(m)
	b.Output(idx0)
	b.Output(idx1)
	return b.Build()
}

// RefMax mirrors BuildMax.
func RefMax(in []bool) []bool {
	w := make([][]bool, 4)
	for i := range w {
		w[i] = in[i*maxW : (i+1)*maxW]
	}
	ge01 := geBits(w[0], w[1])
	m01, i01 := w[1], 1
	if ge01 {
		m01, i01 = w[0], 0
	}
	ge23 := geBits(w[2], w[3])
	m23, i23 := w[3], 3
	if ge23 {
		m23, i23 = w[2], 2
	}
	m, idx := m23, i23
	if geBits(m01, m23) {
		m, idx = m01, i01
	}
	out := append(append([]bool(nil), m...), idx&1 != 0, idx&2 != 0)
	return out
}

// --- priority: 128-bit priority encoder (128 in / 8 out) ---------------------

// BuildPriority generates the priority benchmark: 7-bit index of the
// lowest-index set request plus a valid flag.
func BuildPriority() *netlist.Netlist {
	b := netlist.NewBuilder("priority")
	req := b.InputBus(128)
	idx, valid := priorityEncode(b, req, 7)
	b.OutputBus(idx)
	b.Output(valid)
	return b.Build()
}

// RefPriority mirrors BuildPriority.
func RefPriority(in []bool) []bool {
	out := make([]bool, 8)
	for i := 0; i < 128; i++ {
		if in[i] {
			for j := 0; j < 7; j++ {
				out[j] = i&(1<<j) != 0
			}
			out[7] = true
			break
		}
	}
	return out
}

// --- voter: 1001-input majority (1001 in / 1 out) ----------------------------

const voterW = 1001

// BuildVoter generates the voter benchmark: a full-adder compressor tree
// counts the set inputs and a comparator checks count ≥ 501.
func BuildVoter() *netlist.Netlist {
	b := netlist.NewBuilder("voter")
	in := b.InputBus(voterW)
	count := popcount(b, in, 10)
	threshold := make([]int, 10)
	for j := 0; j < 10; j++ {
		threshold[j] = b.Const(501&(1<<j) != 0)
	}
	b.Output(geUnsigned(b, count, threshold))
	return b.Build()
}

// RefVoter mirrors BuildVoter.
func RefVoter(in []bool) []bool {
	n := 0
	for _, v := range in {
		if v {
			n++
		}
	}
	return []bool{n >= 501}
}
