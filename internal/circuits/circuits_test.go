package circuits

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// epflIO pins the I/O signature of every benchmark to the EPFL suite's.
func TestIOSignaturesMatchEPFL(t *testing.T) {
	want := map[string][2]int{
		"adder":     {256, 129},
		"arbiter":   {256, 129},
		"bar":       {135, 128},
		"cavlc":     {10, 11},
		"ctrl":      {7, 26},
		"dec":       {8, 256},
		"int2float": {11, 7},
		"max":       {512, 130},
		"priority":  {128, 8},
		"sin":       {24, 25},
		"voter":     {1001, 1},
	}
	for _, bm := range All() {
		nl := bm.Build()
		w, ok := want[bm.Name]
		if !ok {
			t.Fatalf("unexpected benchmark %q", bm.Name)
		}
		if nl.NumInputs() != w[0] || nl.NumOutputs() != w[1] {
			t.Errorf("%s: I/O = (%d,%d), want (%d,%d)",
				bm.Name, nl.NumInputs(), nl.NumOutputs(), w[0], w[1])
		}
	}
	if len(All()) != len(want) {
		t.Fatalf("suite has %d benchmarks, want %d", len(All()), len(want))
	}
}

func randInputs(rng *rand.Rand, n int) []bool {
	in := make([]bool, n)
	for i := range in {
		in[i] = rng.Intn(2) == 0
	}
	return in
}

// TestNetlistsMatchReferences drives every benchmark's netlist against
// its Go reference model on random vectors — both the mixed-op netlist
// and its NOR-lowered form.
func TestNetlistsMatchReferences(t *testing.T) {
	for _, bm := range All() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			nl := bm.Build()
			nor := nl.LowerToNOR()
			if !nor.IsNORForm() {
				t.Fatal("lowering failed")
			}
			rng := rand.New(rand.NewSource(42))
			trials := 200
			if nl.NumInputs() > 300 {
				trials = 60
			}
			for i := 0; i < trials; i++ {
				in := randInputs(rng, nl.NumInputs())
				want := bm.Ref(in)
				if len(want) != nl.NumOutputs() {
					t.Fatalf("reference returned %d outputs, want %d", len(want), nl.NumOutputs())
				}
				got := nl.Eval(in)
				for j := range want {
					if got[j] != want[j] {
						t.Fatalf("vector %d output %d: netlist %v, ref %v", i, j, got[j], want[j])
					}
				}
				gotNOR := nor.Eval(in)
				for j := range want {
					if gotNOR[j] != want[j] {
						t.Fatalf("vector %d output %d: NOR netlist %v, ref %v", i, j, gotNOR[j], want[j])
					}
				}
			}
		})
	}
}

func TestAdderExhaustiveSmallValues(t *testing.T) {
	nl := BuildAdder()
	for a := uint64(0); a < 8; a++ {
		for b := uint64(0); b < 8; b++ {
			in := append(uintToBits(a, 128), uintToBits(b, 128)...)
			out := nl.Eval(in)
			if got := bitsToUint(out[:64]); got != a+b {
				t.Fatalf("%d+%d = %d", a, b, got)
			}
		}
	}
	// Carry-out: max+max.
	in := append(uintToBits(0, 128), uintToBits(0, 128)...)
	for i := 0; i < 256; i++ {
		in[i] = true
	}
	out := nl.Eval(in)
	if !out[128] {
		t.Fatal("carry-out missing for max+max")
	}
}

func TestDecExhaustive(t *testing.T) {
	nl := BuildDec()
	for v := 0; v < 256; v++ {
		out := nl.Eval(uintToBits(uint64(v), 8))
		for i, bit := range out {
			if bit != (i == v) {
				t.Fatalf("dec(%d): output %d = %v", v, i, bit)
			}
		}
	}
}

func TestPriorityProperties(t *testing.T) {
	nl := BuildPriority()
	// All-zero: invalid.
	out := nl.Eval(make([]bool, 128))
	if out[7] {
		t.Fatal("valid asserted with no requests")
	}
	// Single request at each position.
	for i := 0; i < 128; i++ {
		in := make([]bool, 128)
		in[i] = true
		out := nl.Eval(in)
		if !out[7] || int(bitsToUint(out[:7])) != i {
			t.Fatalf("priority(%d) = %d valid=%v", i, bitsToUint(out[:7]), out[7])
		}
	}
}

func TestVoterThresholdBoundary(t *testing.T) {
	nl := BuildVoter()
	in := make([]bool, 1001)
	for i := 0; i < 500; i++ {
		in[i] = true
	}
	if nl.Eval(in)[0] {
		t.Fatal("500 votes should not pass")
	}
	in[500] = true
	if !nl.Eval(in)[0] {
		t.Fatal("501 votes should pass")
	}
	all := make([]bool, 1001)
	for i := range all {
		all[i] = true
	}
	if !nl.Eval(all)[0] {
		t.Fatal("unanimous vote should pass")
	}
	if nl.Eval(make([]bool, 1001))[0] {
		t.Fatal("no votes should fail")
	}
}

func TestBarRotationProperty(t *testing.T) {
	nl := BuildBar()
	f := func(seed int64, shiftRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		data := randInputs(rng, 128)
		s := int(shiftRaw) % 128
		in := append(append([]bool(nil), data...), uintToBits(uint64(s), 7)...)
		out := nl.Eval(in)
		for i := range out {
			if out[i] != data[(i+s)%128] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxPicksLargest(t *testing.T) {
	nl := BuildMax()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		vals := make([]uint64, 4)
		in := make([]bool, 0, 512)
		for i := range vals {
			vals[i] = rng.Uint64() >> uint(rng.Intn(60)) // vary magnitudes
			in = append(in, uintToBits(vals[i], 128)...)
		}
		out := nl.Eval(in)
		got := bitsToUint(out[:64])
		want, wantIdx := vals[0], 0
		for i, v := range vals[1:] {
			if v > want {
				want, wantIdx = v, i+1
			}
		}
		if got != want {
			t.Fatalf("max(%v) = %d, want %d", vals, got, want)
		}
		gotIdx := 0
		if out[128] {
			gotIdx |= 1
		}
		if out[129] {
			gotIdx |= 2
		}
		if vals[gotIdx] != want {
			t.Fatalf("index %d does not hold the max (vals %v, want idx %d)", gotIdx, vals, wantIdx)
		}
	}
}

func TestArbiterRoundRobinFairness(t *testing.T) {
	nl := BuildArbiter()
	// With all requests asserted, the grant must follow the pointer.
	for _, p := range []int{0, 1, 17, 127} {
		in := make([]bool, 256)
		for i := 0; i < 128; i++ {
			in[i] = true
		}
		in[128+p] = true
		out := nl.Eval(in)
		if !out[128] {
			t.Fatal("valid not asserted")
		}
		granted := -1
		for i := 0; i < 128; i++ {
			if out[i] {
				if granted != -1 {
					t.Fatal("multiple grants")
				}
				granted = i
			}
		}
		if granted != p {
			t.Fatalf("pointer %d granted %d", p, granted)
		}
	}
	// No requests → no grant.
	in := make([]bool, 256)
	in[128] = true
	out := nl.Eval(in)
	if out[128] {
		t.Fatal("valid asserted without requests")
	}
}

func TestArbiterGrantsOnlyRequesters(t *testing.T) {
	nl := BuildArbiter()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		in := make([]bool, 256)
		for i := 0; i < 128; i++ {
			in[i] = rng.Intn(4) == 0
		}
		in[128+rng.Intn(128)] = true
		out := nl.Eval(in)
		grants := 0
		for i := 0; i < 128; i++ {
			if out[i] {
				grants++
				if !in[i] {
					t.Fatal("granted a non-requesting client")
				}
			}
		}
		anyReq := false
		for i := 0; i < 128; i++ {
			anyReq = anyReq || in[i]
		}
		if anyReq && grants != 1 {
			t.Fatalf("%d grants with requests pending", grants)
		}
	}
}

func TestInt2FloatRoundTripExhaustive(t *testing.T) {
	nl := BuildInt2Float()
	for v := 0; v < 1024; v++ {
		for _, sign := range []bool{false, true} {
			in := append(uintToBits(uint64(v), 10), sign)
			got := nl.Eval(in)
			want := RefInt2Float(in)
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("int2float(%d,%v) output %d mismatch", v, sign, j)
				}
			}
		}
	}
}

func TestGateCountsInEPFLSizeClass(t *testing.T) {
	// The latency shape of Table I depends on gate count relative to I/O;
	// keep each generator within a factor ~3 of the EPFL original's size.
	epfl := map[string]int{
		"adder": 1020, "arbiter": 11839, "bar": 3336, "cavlc": 693,
		"ctrl": 174, "dec": 304, "int2float": 260, "max": 2865,
		"priority": 978, "sin": 5416, "voter": 13758,
	}
	for _, bm := range All() {
		nor := bm.Build().LowerToNOR()
		got := nor.GateCount()
		ref := epfl[bm.Name]
		if got < ref/4 || got > ref*4 {
			t.Errorf("%s: %d NOR gates vs EPFL %d AIG nodes — outside size class",
				bm.Name, got, ref)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("adder"); !ok {
		t.Fatal("adder missing")
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Fatal("found nonexistent benchmark")
	}
}
