// Package faults models memristor soft errors: unintentional state flips
// caused by oxygen-vacancy diffusion (state drift), ion strikes, and
// environmental factors. Following the paper's reliability analysis
// (Section V-A), errors are uniform and independent across memristors with
// a constant Soft Error Rate (SER) λ expressed in FIT/bit, where 1 FIT/bit
// is one error per 10⁹ device-hours.
package faults

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/xbar"
)

// FITHours is the number of device-hours in one FIT unit.
const FITHours = 1e9

// FlashSERFITPerBit is the reference memristor SER the paper uses for its
// headline comparison: approximately the SER of Flash memory, 10⁻³ FIT/bit.
const FlashSERFITPerBit = 1e-3

// Flip identifies a single soft-error location.
type Flip struct {
	Row, Col int
}

// ErrorProbability returns the probability that a specific memristor
// suffers at least one soft error within `hours` hours at SER λ [FIT/bit]:
// p = 1 − exp(−λ·t/10⁹).
func ErrorProbability(serFITPerBit, hours float64) float64 {
	return -math.Expm1(-serFITPerBit * hours / FITHours)
}

// Injector draws soft errors over a crossbar according to the uniform,
// independent SER model. It is deterministic given its seed, which keeps
// campaigns reproducible.
type Injector struct {
	SER float64 // FIT/bit
	rng *rand.Rand
}

// NewInjector returns an injector at the given SER [FIT/bit] and seed.
func NewInjector(serFITPerBit float64, seed int64) *Injector {
	if serFITPerBit < 0 {
		panic("faults: negative SER")
	}
	return &Injector{SER: serFITPerBit, rng: rand.New(rand.NewSource(seed))}
}

// SampleCount draws the number of bit flips occurring in `bits` memristors
// over `hours` hours at the injector's SER.
func (in *Injector) SampleCount(bits int, hours float64) int {
	return sampleCount(in.rng, in.SER, bits, hours)
}

// sampleCount draws the number of fault events occurring across `bits`
// independent sites over `hours` hours at rate ser [FIT/site]. Each site
// fires with probability ErrorProbability; the count is binomial, sampled
// exactly site-by-site for small populations and via a Poisson
// approximation (λ_total = bits·p, valid when p ≪ 1) for large ones. It is
// the shared sampling core of the Injector and every fault Model.
func sampleCount(rng *rand.Rand, ser float64, bits int, hours float64) int {
	p := ErrorProbability(ser, hours)
	if p <= 0 || bits <= 0 {
		return 0
	}
	if bits <= 4096 {
		n := 0
		for i := 0; i < bits; i++ {
			if rng.Float64() < p {
				n++
			}
		}
		return n
	}
	return poissonSample(rng, float64(bits)*p)
}

// poissonSample draws Poisson(mean) with Knuth's method for small means
// and a normal approximation for large ones.
func poissonSample(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k, p := 0, 1.0
		for {
			p *= rng.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	n := int(math.Round(mean + math.Sqrt(mean)*rng.NormFloat64()))
	if n < 0 {
		n = 0
	}
	return n
}

// Inject flips soft-error bits in the crossbar corresponding to an exposure
// of `hours` hours, returning the flipped locations. Locations are drawn
// uniformly; a location hit twice flips twice (back to its original value),
// matching independent physical events. It is the Transient model driven by
// the injector's stream.
func (in *Injector) Inject(x *xbar.Crossbar, hours float64) []Flip {
	faults := Transient{SER: in.SER}.Apply(x, nil, in.rng, hours)
	flips := make([]Flip, len(faults))
	for i, f := range faults {
		flips[i] = Flip{Row: f.Row, Col: f.Col}
	}
	return flips
}

// InjectExactly flips exactly n uniformly-chosen distinct bits — the
// controlled campaign used by correction tests and examples.
func (in *Injector) InjectExactly(x *xbar.Crossbar, n int) []Flip {
	total := x.Rows() * x.Cols()
	if n > total {
		panic(fmt.Sprintf("faults: cannot place %d distinct flips in %d bits", n, total))
	}
	seen := make(map[int]bool, n)
	flips := make([]Flip, 0, n)
	for len(flips) < n {
		idx := in.rng.Intn(total)
		if seen[idx] {
			continue
		}
		seen[idx] = true
		f := Flip{Row: idx / x.Cols(), Col: idx % x.Cols()}
		x.Flip(f.Row, f.Col)
		flips = append(flips, f)
	}
	return flips
}

// UniformCell returns a uniformly random cell coordinate in an r×c array.
func (in *Injector) UniformCell(r, c int) (int, int) {
	return in.rng.Intn(r), in.rng.Intn(c)
}

// DeriveSeed mixes a campaign base seed with a (bank, crossbar) position
// into an independent per-crossbar stream seed (splitmix64 finalizer).
// Deterministic in its arguments, so a fleet campaign reproduces exactly
// regardless of how crossbars are scheduled across workers, and nearby
// positions get uncorrelated streams.
func DeriveSeed(base int64, bank, crossbar int) int64 {
	// Two full mixing rounds: base alone, then the position XORed into the
	// mixed base. A single additive round lets (base, crossbar) deltas
	// cancel, correlating neighbors.
	x := splitmix64(uint64(base))
	x = splitmix64(x ^ uint64(uint32(bank))<<32 ^ uint64(uint32(crossbar)))
	return int64(x)
}

// splitmix64 is the SplitMix64 finalizer: a bijective 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
