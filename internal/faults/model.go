package faults

// This file extends the uniform-transient error model of the original
// reliability analysis (Section V-A) into a fault taxonomy: the paper's
// correction guarantee is "any single error per block between scrubs", and
// proving that claim end-to-end requires adversarial models that stress the
// guarantee differently — point flips, permanently stuck cells that
// re-assert after every overwrite, and clustered wordline/bitline faults
// that concentrate many flips on one line. Each model is a stateless spec
// implementing Model; per-crossbar mutable state (the stuck-cell set) is
// owned by the caller so one model value can drive a whole fleet.

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/xbar"
)

// Kind enumerates the fault taxonomy.
type Kind int

const (
	// TransientFlip is a one-shot bit flip (state drift, particle strike).
	TransientFlip Kind = iota
	// Stuck0 is a cell permanently stuck at logic '0' (HRS): every write
	// is silently lost and the cell re-asserts 0.
	Stuck0
	// Stuck1 is a cell permanently stuck at logic '1' (LRS).
	Stuck1
	// RowLine is a clustered disturbance flipping a contiguous span of
	// cells along exactly one row (a wordline event).
	RowLine
	// ColLine is the bitline dual: a contiguous span within one column.
	ColLine

	// NumKinds is the number of fault kinds (for histogram sizing).
	NumKinds int = iota
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case TransientFlip:
		return "transient"
	case Stuck0:
		return "stuck0"
	case Stuck1:
		return "stuck1"
	case RowLine:
		return "rowline"
	case ColLine:
		return "colline"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Fault is one injected fault event. Point faults affect the single cell
// (Row,Col); line faults affect Span contiguous cells starting there and
// running along the row (RowLine) or column (ColLine) — never crossing
// into another line.
type Fault struct {
	Kind     Kind
	Row, Col int
	Span     int // affected cells; 1 for point faults
}

// Cells calls fn for every cell the fault touches, in line order.
func (f Fault) Cells(fn func(r, c int)) {
	span := f.Span
	if span < 1 {
		span = 1
	}
	for i := 0; i < span; i++ {
		switch f.Kind {
		case RowLine:
			fn(f.Row, f.Col+i)
		case ColLine:
			fn(f.Row+i, f.Col)
		default:
			fn(f.Row, f.Col)
			return
		}
	}
}

// StuckCell is one permanently stuck memristor.
type StuckCell struct {
	Row, Col int
	Value    bool
}

// StuckSet tracks the stuck cells of one crossbar. Iteration order is
// insertion order, so campaigns replay deterministically.
type StuckSet struct {
	cells []StuckCell
	idx   map[[2]int]int
}

// NewStuckSet returns an empty stuck-cell set.
func NewStuckSet() *StuckSet {
	return &StuckSet{idx: make(map[[2]int]int)}
}

// Add marks cell (r,c) stuck at v. The first fault wins: adding an
// already-stuck cell is a no-op returning false.
func (s *StuckSet) Add(r, c int, v bool) bool {
	k := [2]int{r, c}
	if _, dup := s.idx[k]; dup {
		return false
	}
	s.idx[k] = len(s.cells)
	s.cells = append(s.cells, StuckCell{Row: r, Col: c, Value: v})
	return true
}

// Evict removes cell (r,c) from the set so it stops re-asserting — the
// model-side half of repair: once the physical line is spared out
// (post-package-repair style remap), the defect is no longer in the data
// path and must not overwrite the replacement cell. Returns false if the
// cell was not stuck. Insertion order of the surviving cells is preserved,
// so campaigns with repair active still replay deterministically.
func (s *StuckSet) Evict(r, c int) bool {
	k := [2]int{r, c}
	i, ok := s.idx[k]
	if !ok {
		return false
	}
	s.cells = append(s.cells[:i], s.cells[i+1:]...)
	delete(s.idx, k)
	for j := i; j < len(s.cells); j++ {
		s.idx[[2]int{s.cells[j].Row, s.cells[j].Col}] = j
	}
	return true
}

// Stuck reports whether cell (r,c) is stuck, and at which value.
func (s *StuckSet) Stuck(r, c int) (v bool, ok bool) {
	i, ok := s.idx[[2]int{r, c}]
	if !ok {
		return false, false
	}
	return s.cells[i].Value, true
}

// Len returns the number of stuck cells.
func (s *StuckSet) Len() int { return len(s.cells) }

// Cells returns the stuck cells in insertion order. The slice is live;
// callers must not modify it.
func (s *StuckSet) Cells() []StuckCell { return s.cells }

// Reassert forces every stuck cell back to its stuck value — the physics
// of a stuck-at defect: writes land electrically but the device state
// never changes, so after any overwrite the stored bit reads back as the
// stuck value. It returns the number of cells whose content changed.
func (s *StuckSet) Reassert(x *xbar.Crossbar) int {
	changed := 0
	for _, c := range s.cells {
		if x.Get(c.Row, c.Col) != c.Value {
			x.Set(c.Row, c.Col, c.Value)
			changed++
		}
	}
	return changed
}

// ReassertRow re-asserts only the stuck cells lying in row r — the write
// path's view of the physics: committing a row drives every cell of that
// line, and the defective ones snap straight back. Returns the number of
// cells whose content changed.
func (s *StuckSet) ReassertRow(x *xbar.Crossbar, r int) int {
	changed := 0
	for _, c := range s.cells {
		if c.Row == r && x.Get(c.Row, c.Col) != c.Value {
			x.Set(c.Row, c.Col, c.Value)
			changed++
		}
	}
	return changed
}

// Model is a fault model: Apply injects the faults of one exposure window
// of `hours` hours into x, drawing randomness only from rng and recording
// any permanently stuck cells in stuck. Implementations must be stateless
// (safe to share across crossbars) and must consume rng deterministically,
// so fleet campaigns replay identically under any worker count.
type Model interface {
	Name() string
	Apply(x *xbar.Crossbar, stuck *StuckSet, rng *rand.Rand, hours float64) []Fault
}

// Transient is the paper's uniform independent model: each bit flips with
// probability 1−exp(−SER·t/10⁹), locations uniform, double hits cancel.
type Transient struct {
	SER float64 // FIT/bit
}

// Name implements Model.
func (m Transient) Name() string { return "transient" }

// Apply implements Model.
func (m Transient) Apply(x *xbar.Crossbar, _ *StuckSet, rng *rand.Rand, hours float64) []Fault {
	n := sampleCount(rng, m.SER, x.Rows()*x.Cols(), hours)
	faults := make([]Fault, 0, n)
	for i := 0; i < n; i++ {
		f := Fault{Kind: TransientFlip, Row: rng.Intn(x.Rows()), Col: rng.Intn(x.Cols()), Span: 1}
		x.Flip(f.Row, f.Col)
		faults = append(faults, f)
	}
	return faults
}

// StuckAt models permanent manufacturing or wear-out defects appearing at
// rate SER [FIT/bit]: an affected cell snaps to Value and stays there —
// the caller's StuckSet re-asserts it after every subsequent overwrite.
type StuckAt struct {
	SER   float64 // FIT/bit — rate at which cells become stuck
	Value bool
}

// Name implements Model.
func (m StuckAt) Name() string {
	if m.Value {
		return "stuck1"
	}
	return "stuck0"
}

// Kind returns the fault kind this model injects.
func (m StuckAt) Kind() Kind {
	if m.Value {
		return Stuck1
	}
	return Stuck0
}

// Apply implements Model.
func (m StuckAt) Apply(x *xbar.Crossbar, stuck *StuckSet, rng *rand.Rand, hours float64) []Fault {
	n := sampleCount(rng, m.SER, x.Rows()*x.Cols(), hours)
	faults := make([]Fault, 0, n)
	for i := 0; i < n; i++ {
		r, c := rng.Intn(x.Rows()), rng.Intn(x.Cols())
		if stuck == nil {
			panic("faults: StuckAt model needs a StuckSet")
		}
		if !stuck.Add(r, c, m.Value) {
			continue // already stuck; first defect wins
		}
		x.Set(r, c, m.Value)
		faults = append(faults, Fault{Kind: m.Kind(), Row: r, Col: c, Span: 1})
	}
	return faults
}

// LineCluster models clustered disturbances: a wordline or bitline event
// flips a contiguous span of cells along exactly one line. Events occur at
// rate SER [FIT/line] across the rows+cols line sites; each event picks a
// uniformly random line and a uniformly placed span within it.
type LineCluster struct {
	SER  float64 // FIT/line
	Span int     // cells flipped per event; <=0 = the full line
}

// Name implements Model.
func (m LineCluster) Name() string {
	if m.Span > 0 {
		return fmt.Sprintf("lines:%d", m.Span)
	}
	return "lines"
}

// Apply implements Model.
func (m LineCluster) Apply(x *xbar.Crossbar, _ *StuckSet, rng *rand.Rand, hours float64) []Fault {
	sites := x.Rows() + x.Cols()
	n := sampleCount(rng, m.SER, sites, hours)
	faults := make([]Fault, 0, n)
	for i := 0; i < n; i++ {
		site := rng.Intn(sites)
		var f Fault
		if site < x.Rows() { // wordline event along row `site`
			span := clampSpan(m.Span, x.Cols())
			f = Fault{Kind: RowLine, Row: site, Col: rng.Intn(x.Cols() - span + 1), Span: span}
		} else { // bitline event along column `site-rows`
			span := clampSpan(m.Span, x.Rows())
			f = Fault{Kind: ColLine, Row: rng.Intn(x.Rows() - span + 1), Col: site - x.Rows(), Span: span}
		}
		f.Cells(func(r, c int) { x.Flip(r, c) })
		faults = append(faults, f)
	}
	return faults
}

func clampSpan(span, lineLen int) int {
	if span <= 0 || span > lineLen {
		return lineLen
	}
	return span
}

// Skewed scales the effective exposure of an inner model by a constant
// factor — the building block for per-crossbar rate skew, where process
// variation makes some crossbars see a multiple of the nominal SER.
type Skewed struct {
	Inner  Model
	Factor float64
}

// Name implements Model.
func (m Skewed) Name() string { return fmt.Sprintf("skewed(%s,%g)", m.Inner.Name(), m.Factor) }

// Apply implements Model.
func (m Skewed) Apply(x *xbar.Crossbar, stuck *StuckSet, rng *rand.Rand, hours float64) []Fault {
	return m.Inner.Apply(x, stuck, rng, hours*m.Factor)
}

// ModelNames lists the named fault models for CLI usage text. "lines"
// additionally accepts a span suffix ("lines:<span>", resolved by
// ModelByName) bounding each line event to that many consecutive cells.
func ModelNames() []string { return []string{"transient", "stuck0", "stuck1", "lines"} }

// ModelByName resolves a named fault model at rate ser (FIT/bit for point
// models, FIT/line for "lines"). "lines:<span>" yields a LineCluster whose
// events touch at most span consecutive cells — the clustered-burst regime
// an interleaved code decomposes into per-sub-code singles.
func ModelByName(name string, ser float64) (Model, error) {
	if ser < 0 {
		return nil, fmt.Errorf("faults: negative SER %g", ser)
	}
	switch name {
	case "transient":
		return Transient{SER: ser}, nil
	case "stuck0":
		return StuckAt{SER: ser, Value: false}, nil
	case "stuck1":
		return StuckAt{SER: ser, Value: true}, nil
	case "lines":
		return LineCluster{SER: ser}, nil
	}
	if spanStr, ok := strings.CutPrefix(name, "lines:"); ok {
		span, err := strconv.Atoi(spanStr)
		if err != nil || span < 1 {
			return nil, fmt.Errorf("faults: bad line span in model %q (want lines:<span> with span ≥ 1)", name)
		}
		return LineCluster{SER: ser, Span: span}, nil
	}
	return nil, fmt.Errorf("faults: unknown fault model %q (have %v)", name, ModelNames())
}
