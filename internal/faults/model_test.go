package faults

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/xbar"
)

func TestModelByName(t *testing.T) {
	for _, name := range ModelNames() {
		m, err := ModelByName(name, 1e5)
		if err != nil {
			t.Fatal(err)
		}
		if m.Name() != name {
			t.Fatalf("%q resolved to %q", name, m.Name())
		}
	}
	// The span-bounded line model round-trips through its Name.
	m, err := ModelByName("lines:4", 1e5)
	if err != nil {
		t.Fatal(err)
	}
	lc, ok := m.(LineCluster)
	if !ok || lc.Span != 4 || m.Name() != "lines:4" {
		t.Fatalf("lines:4 resolved to %#v (name %q)", m, m.Name())
	}
	for _, bad := range []string{"nope", "lines:", "lines:0", "lines:-2", "lines:x"} {
		if _, err := ModelByName(bad, 1); err == nil {
			t.Fatalf("bad model %q accepted", bad)
		}
	}
	if _, err := ModelByName("transient", -1); err == nil {
		t.Fatal("negative SER accepted")
	}
}

// TestTransientMatchesInjector: the Transient model is the Injector's
// uniform flip model — same seed, same stream, same flips.
func TestTransientMatchesInjector(t *testing.T) {
	x1, x2 := xbar.New(64, 64), xbar.New(64, 64)
	in := NewInjector(5e5, 9)
	flips := in.Inject(x1, 24)
	faults := Transient{SER: 5e5}.Apply(x2, nil, rand.New(rand.NewSource(9)), 24)
	if len(flips) != len(faults) {
		t.Fatalf("injector made %d flips, model %d", len(flips), len(faults))
	}
	for i := range flips {
		if flips[i].Row != faults[i].Row || flips[i].Col != faults[i].Col {
			t.Fatalf("flip %d: injector %v, model %+v", i, flips[i], faults[i])
		}
	}
	if !x1.Mat().Equal(x2.Mat()) {
		t.Fatal("memories diverged")
	}
}

// TestStuckAtReassertsAfterOverwrite is the satellite contract: a stuck
// cell swallows every later write and re-asserts its stuck value.
func TestStuckAtReassertsAfterOverwrite(t *testing.T) {
	x := xbar.New(16, 16)
	stuck := NewStuckSet()
	rng := rand.New(rand.NewSource(3))
	m := StuckAt{SER: 5e6, Value: true}
	faults := m.Apply(x, stuck, rng, 24)
	if len(faults) == 0 {
		t.Fatal("no stuck cells injected — raise SER")
	}
	if stuck.Len() != len(faults) {
		t.Fatalf("stuck set has %d cells, %d faults reported", stuck.Len(), len(faults))
	}
	for _, f := range faults {
		if f.Kind != Stuck1 {
			t.Fatalf("fault kind %v, want %v", f.Kind, Stuck1)
		}
		if !x.Get(f.Row, f.Col) {
			t.Fatalf("cell (%d,%d) not forced to stuck value", f.Row, f.Col)
		}
		// Overwrite through the controller path; the defect must win.
		x.Write(f.Row, f.Col, false)
		if x.Get(f.Row, f.Col) {
			t.Fatal("write did not land in the simulated array")
		}
	}
	if changed := stuck.Reassert(x); changed != len(faults) {
		t.Fatalf("reassert changed %d cells, want %d", changed, len(faults))
	}
	for _, f := range faults {
		if !x.Get(f.Row, f.Col) {
			t.Fatalf("cell (%d,%d) did not re-assert", f.Row, f.Col)
		}
	}
	// Already-asserted cells are not rewritten.
	if changed := stuck.Reassert(x); changed != 0 {
		t.Fatalf("idempotent reassert changed %d cells", changed)
	}
}

// TestStuckSetEvictStopsReassertion is the repair-satellite contract:
// evicting a cell (the model-side effect of sparing out the physical
// line) stops its defect from re-asserting, while every unrepaired cell
// keeps re-asserting exactly as before.
func TestStuckSetEvictStopsReassertion(t *testing.T) {
	x := xbar.New(8, 8)
	s := NewStuckSet()
	s.Add(1, 1, true)
	s.Add(2, 2, true)
	s.Add(3, 3, true)

	if !s.Evict(2, 2) {
		t.Fatal("evicting a stuck cell must succeed")
	}
	if s.Evict(2, 2) || s.Evict(5, 5) {
		t.Fatal("evicting a non-stuck cell must return false")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d after evict, want 2", s.Len())
	}
	// Insertion order of survivors is preserved (determinism contract).
	cells := s.Cells()
	if cells[0].Row != 1 || cells[1].Row != 3 {
		t.Fatalf("survivor order corrupted: %+v", cells)
	}
	if _, ok := s.Stuck(2, 2); ok {
		t.Fatal("evicted cell still reported stuck")
	}
	if v, ok := s.Stuck(3, 3); !ok || !v {
		t.Fatal("unrepaired cell lost from the set")
	}

	// The evicted cell holds host data; unrepaired cells still re-assert.
	if changed := s.Reassert(x); changed != 2 {
		t.Fatalf("reassert changed %d cells, want 2", changed)
	}
	if x.Get(2, 2) {
		t.Fatal("evicted defect re-asserted")
	}
	if !x.Get(1, 1) || !x.Get(3, 3) {
		t.Fatal("unrepaired defects failed to re-assert")
	}

	// Eviction keeps the index consistent: re-adding and evicting the
	// head exercises the reindex path.
	s.Add(2, 2, false)
	if !s.Evict(1, 1) {
		t.Fatal("evicting head failed")
	}
	if v, ok := s.Stuck(2, 2); !ok || v {
		t.Fatal("index corrupted after head eviction")
	}
}

// TestStuckSetReassertRow pins the write-path physics: committing a row
// re-asserts only that row's defects.
func TestStuckSetReassertRow(t *testing.T) {
	x := xbar.New(8, 8)
	s := NewStuckSet()
	s.Add(4, 0, true)
	s.Add(4, 7, true)
	s.Add(5, 3, true)
	if changed := s.ReassertRow(x, 4); changed != 2 {
		t.Fatalf("ReassertRow(4) changed %d cells, want 2", changed)
	}
	if !x.Get(4, 0) || !x.Get(4, 7) {
		t.Fatal("row-4 defects not re-asserted")
	}
	if x.Get(5, 3) {
		t.Fatal("row-5 defect re-asserted by a row-4 write")
	}
	if changed := s.ReassertRow(x, 4); changed != 0 {
		t.Fatalf("idempotent ReassertRow changed %d cells", changed)
	}
}

func TestStuckSetFirstDefectWins(t *testing.T) {
	s := NewStuckSet()
	if !s.Add(1, 2, true) {
		t.Fatal("first add rejected")
	}
	if s.Add(1, 2, false) {
		t.Fatal("second defect at same cell accepted")
	}
	if s.Len() != 1 || !s.Cells()[0].Value {
		t.Fatalf("stuck set corrupted: %+v", s.Cells())
	}
}

// TestLineClusterSpansExactlyOneLine is the satellite contract: every
// clustered event stays within exactly one row or one column.
func TestLineClusterSpansExactlyOneLine(t *testing.T) {
	const rows, cols = 24, 40
	for _, span := range []int{0, 1, 5, 1000} {
		x := xbar.New(rows, cols)
		rng := rand.New(rand.NewSource(11))
		faults := LineCluster{SER: 2e7, Span: span}.Apply(x, nil, rng, 24)
		if len(faults) == 0 {
			t.Fatalf("span=%d: no line events — raise SER", span)
		}
		for _, f := range faults {
			lineLen := cols
			if f.Kind == ColLine {
				lineLen = rows
			} else if f.Kind != RowLine {
				t.Fatalf("unexpected kind %v", f.Kind)
			}
			wantSpan := span
			if span <= 0 || span > lineLen {
				wantSpan = lineLen
			}
			if f.Span != wantSpan {
				t.Fatalf("span=%d %v fault has span %d, want %d", span, f.Kind, f.Span, wantSpan)
			}
			cells := 0
			f.Cells(func(r, c int) {
				cells++
				if r < 0 || r >= rows || c < 0 || c >= cols {
					t.Fatalf("cell (%d,%d) out of bounds", r, c)
				}
				if f.Kind == RowLine && r != f.Row {
					t.Fatalf("row-line fault left row %d for %d", f.Row, r)
				}
				if f.Kind == ColLine && c != f.Col {
					t.Fatalf("col-line fault left column %d for %d", f.Col, c)
				}
			})
			if cells != wantSpan {
				t.Fatalf("fault visited %d cells, want %d", cells, wantSpan)
			}
		}
	}
}

// TestSkewedScalesExposure: the skew wrapper multiplies effective exposure,
// so mean injected counts scale with the factor.
func TestSkewedScalesExposure(t *testing.T) {
	mean := func(factor float64) float64 {
		rng := rand.New(rand.NewSource(5))
		total := 0
		for i := 0; i < 300; i++ {
			x := xbar.New(32, 32)
			total += len(Skewed{Inner: Transient{SER: 1e5}, Factor: factor}.Apply(x, nil, rng, 24))
		}
		return float64(total) / 300
	}
	m1, m4 := mean(1), mean(4)
	if m1 <= 0 {
		t.Fatal("baseline injected nothing")
	}
	if ratio := m4 / m1; math.Abs(ratio-4) > 1 {
		t.Fatalf("skew factor 4 scaled mean by %.2f, want ≈ 4", ratio)
	}
}

// TestInjectPoissonPathStatistics is the satellite coverage for the large-
// population Poisson path of Injector.Inject: on a crossbar big enough to
// bypass exact binomial sampling, the injected count must match the
// binomial mean and Poisson-like variance.
func TestInjectPoissonPathStatistics(t *testing.T) {
	const rows, cols = 128, 64 // 8192 bits > the 4096 exact-sampling cutoff
	in := NewInjector(1e6, 77)
	hours := 24.0
	want := float64(rows*cols) * ErrorProbability(in.SER, hours) // ≈ 196
	const trials = 400
	counts := make([]float64, trials)
	sum := 0.0
	for i := range counts {
		x := xbar.New(rows, cols)
		flips := in.Inject(x, hours)
		for _, f := range flips {
			if f.Row < 0 || f.Row >= rows || f.Col < 0 || f.Col >= cols {
				t.Fatalf("flip (%d,%d) out of range", f.Row, f.Col)
			}
		}
		counts[i] = float64(len(flips))
		sum += counts[i]
	}
	mean := sum / trials
	if math.Abs(mean-want) > 0.1*want {
		t.Fatalf("poisson-path mean %.1f, want ≈ %.1f", mean, want)
	}
	varSum := 0.0
	for _, c := range counts {
		varSum += (c - mean) * (c - mean)
	}
	variance := varSum / (trials - 1)
	// Poisson variance equals its mean; allow generous sampling slack.
	if variance < 0.5*want || variance > 1.6*want {
		t.Fatalf("poisson-path variance %.1f, want ≈ %.1f", variance, want)
	}
}
