package faults

import (
	"math"
	"testing"

	"repro/internal/xbar"
)

func TestErrorProbabilityBasics(t *testing.T) {
	if p := ErrorProbability(0, 24); p != 0 {
		t.Fatalf("SER=0 gives p=%g, want 0", p)
	}
	// λT/1e9 small: p ≈ λT/1e9.
	p := ErrorProbability(1e-3, 24)
	want := 1e-3 * 24 / 1e9
	if math.Abs(p-want)/want > 1e-6 {
		t.Fatalf("p = %g, want ≈ %g", p, want)
	}
	// Monotone in SER.
	if ErrorProbability(1, 24) <= ErrorProbability(1e-3, 24) {
		t.Fatal("probability not monotone in SER")
	}
	// Never exceeds 1.
	if p := ErrorProbability(1e12, 1e6); p > 1 {
		t.Fatalf("p = %g > 1", p)
	}
}

func TestErrorProbabilityNumericallyStable(t *testing.T) {
	// For tiny rates 1-exp(-x) must not round to zero.
	p := ErrorProbability(1e-5, 24)
	if p <= 0 {
		t.Fatalf("tiny-rate probability underflowed to %g", p)
	}
}

func TestInjectExactly(t *testing.T) {
	x := xbar.New(16, 16)
	in := NewInjector(1e-3, 42)
	flips := in.InjectExactly(x, 5)
	if len(flips) != 5 {
		t.Fatalf("got %d flips, want 5", len(flips))
	}
	if x.Mat().Popcount() != 5 {
		t.Fatalf("popcount = %d, want 5 distinct flips from zero state", x.Mat().Popcount())
	}
	for _, f := range flips {
		if !x.Get(f.Row, f.Col) {
			t.Fatalf("reported flip at (%d,%d) but bit is clear", f.Row, f.Col)
		}
	}
}

func TestInjectExactlyTooMany(t *testing.T) {
	x := xbar.New(2, 2)
	in := NewInjector(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for more flips than cells")
		}
	}()
	in.InjectExactly(x, 5)
}

func TestInjectZeroRate(t *testing.T) {
	x := xbar.New(32, 32)
	in := NewInjector(0, 7)
	flips := in.Inject(x, 1e9)
	if len(flips) != 0 || x.Mat().Popcount() != 0 {
		t.Fatal("zero SER produced flips")
	}
}

func TestInjectDeterministicWithSeed(t *testing.T) {
	run := func() []Flip {
		x := xbar.New(64, 64)
		in := NewInjector(5e5, 123) // high rate to guarantee flips
		return in.Inject(x, 24)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic flip count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flip %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSampleCountMatchesExpectation(t *testing.T) {
	// Mean of the sampled count should be close to bits·p over many trials.
	in := NewInjector(1e6, 99) // p = 1e6*24/1e9 = 0.024
	bits, hours := 1000, 24.0
	p := ErrorProbability(in.SER, hours)
	trials := 2000
	sum := 0
	for i := 0; i < trials; i++ {
		sum += in.SampleCount(bits, hours)
	}
	mean := float64(sum) / float64(trials)
	want := float64(bits) * p
	if math.Abs(mean-want) > 0.15*want {
		t.Fatalf("sampled mean %.2f, want ≈ %.2f", mean, want)
	}
}

func TestSampleCountLargePopulationPoissonPath(t *testing.T) {
	in := NewInjector(1e3, 5)
	bits := 1 << 20 // forces the Poisson path
	hours := 24.0
	want := float64(bits) * ErrorProbability(in.SER, hours) // ≈ 25
	trials := 500
	sum := 0
	for i := 0; i < trials; i++ {
		sum += in.SampleCount(bits, hours)
	}
	mean := float64(sum) / float64(trials)
	if math.Abs(mean-want) > 0.15*want {
		t.Fatalf("poisson-path mean %.2f, want ≈ %.2f", mean, want)
	}
}

func TestUniformCellInRange(t *testing.T) {
	in := NewInjector(1, 3)
	for i := 0; i < 100; i++ {
		r, c := in.UniformCell(7, 13)
		if r < 0 || r >= 7 || c < 0 || c >= 13 {
			t.Fatalf("cell (%d,%d) out of range", r, c)
		}
	}
}

func TestDeriveSeedDeterministic(t *testing.T) {
	if DeriveSeed(42, 3, 7) != DeriveSeed(42, 3, 7) {
		t.Fatal("DeriveSeed not deterministic")
	}
}

func TestDeriveSeedSeparatesStreams(t *testing.T) {
	// Nearby positions and bases must yield distinct seeds: a fleet gives
	// every crossbar its own stream, and collisions would correlate the
	// soft errors of neighboring crossbars.
	seen := make(map[int64][3]int64)
	for base := int64(0); base < 4; base++ {
		for bank := 0; bank < 16; bank++ {
			for xb := 0; xb < 16; xb++ {
				s := DeriveSeed(base, bank, xb)
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision: (%d,%d,%d) and %v → %d", base, bank, xb, prev, s)
				}
				seen[s] = [3]int64{base, int64(bank), int64(xb)}
			}
		}
	}
}
