package bitmat

import (
	"math/rand"
	"testing"
)

// Differential tests: every word-parallel primitive must agree bit-exactly
// with its retained bit-serial reference, across word-unaligned lengths and
// (where meaningful) aliased receivers. oddLengths deliberately straddles
// the 64-bit word boundaries.
var oddLengths = []int{1, 2, 63, 64, 65, 127, 128, 129, 255, 1020}

func randomVec(t testing.TB, n int, rng *rand.Rand) *Vec {
	t.Helper()
	v := NewVec(n)
	for i := range v.w {
		v.w[i] = rng.Uint64()
	}
	v.trim()
	return v
}

func TestRotateLeftMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range oddLengths {
		v := randomVec(t, n, rng)
		for _, k := range []int{0, 1, 7, n - 1, n, n + 3, -1, -n - 5, 3 * n} {
			got, want := v.RotateLeft(k), rotateLeftRef(v, k)
			if !got.Equal(want) {
				t.Fatalf("RotateLeft(n=%d, k=%d):\n got %s\nwant %s", n, k, got, want)
			}
		}
	}
}

func TestSliceMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range oddLengths {
		v := randomVec(t, n, rng)
		for trial := 0; trial < 20; trial++ {
			lo := rng.Intn(n + 1)
			hi := lo + rng.Intn(n+1-lo)
			got, want := v.Slice(lo, hi), sliceRef(v, lo, hi)
			if !got.Equal(want) {
				t.Fatalf("Slice(n=%d, [%d,%d)):\n got %s\nwant %s", n, lo, hi, got, want)
			}
		}
	}
}

func TestCopyRangeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range oddLengths {
		for trial := 0; trial < 20; trial++ {
			dst := randomVec(t, n, rng)
			src := randomVec(t, rng.Intn(n)+1, rng)
			cnt := rng.Intn(src.Len() + 1)
			srcLo := rng.Intn(src.Len() + 1 - cnt)
			dstLo := rng.Intn(n + 1 - cnt)

			got, want := dst.Clone(), dst.Clone()
			got.CopyRange(dstLo, src, srcLo, cnt)
			copyRangeRef(want, dstLo, src, srcLo, cnt)
			if !got.Equal(want) {
				t.Fatalf("CopyRange(n=%d, dstLo=%d, srcLo=%d, cnt=%d):\n got %s\nwant %s",
					n, dstLo, srcLo, cnt, got, want)
			}
		}
	}
}

func TestCopyRangeAliased(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, n := range oddLengths {
		for trial := 0; trial < 20; trial++ {
			v := randomVec(t, n, rng)
			cnt := rng.Intn(n + 1)
			srcLo := rng.Intn(n + 1 - cnt)
			dstLo := rng.Intn(n + 1 - cnt)

			got, want := v.Clone(), v.Clone()
			got.CopyRange(dstLo, got, srcLo, cnt)
			copyRangeRef(want, dstLo, want, srcLo, cnt)
			if !got.Equal(want) {
				t.Fatalf("aliased CopyRange(n=%d, dstLo=%d, srcLo=%d, cnt=%d):\n got %s\nwant %s",
					n, dstLo, srcLo, cnt, got, want)
			}
		}
	}
}

func TestMaskedMergeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, n := range oddLengths {
		v := randomVec(t, n, rng)
		a := randomVec(t, n, rng)
		mask := randomVec(t, n, rng)

		got, want := v.Clone(), v.Clone()
		got.MaskedMerge(a, mask)
		maskedMergeRef(want, a, mask)
		if !got.Equal(want) {
			t.Fatalf("MaskedMerge(n=%d):\n got %s\nwant %s", n, got, want)
		}

		// Aliased: v merged with itself is a no-op regardless of mask.
		self := v.Clone()
		self.MaskedMerge(self, mask)
		if !self.Equal(v) {
			t.Fatalf("self MaskedMerge(n=%d) changed the vector", n)
		}
	}
}

func TestNextOneMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for _, n := range oddLengths {
		v := randomVec(t, n, rng)
		v.And(v, randomVec(t, n, rng)) // sparser, so gaps are exercised
		for i := -1; i <= n+1; i++ {
			if got, want := v.NextOne(i), nextOneRef(v, i); got != want {
				t.Fatalf("NextOne(n=%d, %d) = %d, want %d", n, i, got, want)
			}
		}
	}
}

func TestForEachOneMatchesOnesIndices(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range oddLengths {
		v := randomVec(t, n, rng)
		var got []int
		v.ForEachOne(func(i int) { got = append(got, i) })
		want := v.OnesIndices()
		if len(got) != len(want) {
			t.Fatalf("ForEachOne(n=%d) visited %d bits, want %d", n, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("ForEachOne(n=%d)[%d] = %d, want %d", n, i, got[i], want[i])
			}
		}
	}
}

func TestUint64AtMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	for _, n := range oddLengths {
		v := randomVec(t, n, rng)
		for trial := 0; trial < 30; trial++ {
			k := rng.Intn(min(n, 64) + 1)
			lo := rng.Intn(n + 1 - k)
			if got, want := v.Uint64At(lo, k), uint64AtRef(v, lo, k); got != want {
				t.Fatalf("Uint64At(n=%d, lo=%d, k=%d) = %#x, want %#x", n, lo, k, got, want)
			}
		}
	}
}

func TestTransposeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	dims := []int{1, 3, 63, 64, 65, 127, 129, 200}
	for _, rows := range dims {
		for _, cols := range dims {
			m := NewMat(rows, cols)
			m.Randomize(rng)
			got, want := m.Transpose(), transposeRef(m)
			if !got.Equal(want) {
				t.Fatalf("Transpose(%dx%d) mismatch", rows, cols)
			}
		}
	}
}

func TestColSetColMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	m := NewMat(129, 200)
	m.Randomize(rng)
	for _, c := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		if !m.Col(c).Equal(colRef(m, c)) {
			t.Fatalf("Col(%d) mismatch", c)
		}
		src := randomVec(t, 129, rng)
		got, want := m.Clone(), m.Clone()
		got.SetCol(c, src)
		setColRef(want, c, src)
		if !got.Equal(want) {
			t.Fatalf("SetCol(%d) mismatch", c)
		}
	}
}

func TestBlockSetBlockMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m := NewMat(130, 130)
	m.Randomize(rng)
	cases := [][4]int{{0, 0, 130, 130}, {1, 1, 64, 64}, {63, 65, 66, 65}, {5, 7, 0, 0}, {100, 9, 30, 121}}
	for _, tc := range cases {
		r0, c0, h, w := tc[0], tc[1], tc[2], tc[3]
		got, want := m.Block(r0, c0, h, w), blockRef(m, r0, c0, h, w)
		if !got.Equal(want) {
			t.Fatalf("Block(%v) mismatch", tc)
		}
		src := NewMat(h, w)
		src.Randomize(rng)
		gm, wm := m.Clone(), m.Clone()
		gm.SetBlock(r0, c0, src)
		setBlockRef(wm, r0, c0, src)
		if !gm.Equal(wm) {
			t.Fatalf("SetBlock(%v) mismatch", tc)
		}
	}
}

// TestTrimPreserved asserts the packing invariant: no optimized op may
// leave garbage in the unused high bits of the last word (word-level
// Equal/Popcount depend on it).
func TestTrimPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, n := range oddLengths {
		if n%64 == 0 {
			continue
		}
		v := randomVec(t, n, rng)
		outs := []*Vec{
			v.RotateLeft(3),
			v.Slice(0, n),
			v.Clone(),
		}
		outs[2].MaskedMerge(v, v)
		for i, o := range outs {
			if o.w[len(o.w)-1]&^maskLow(n&63) != 0 {
				t.Fatalf("case %d (n=%d): high bits not trimmed", i, n)
			}
		}
	}
}
