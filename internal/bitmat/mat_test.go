package bitmat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randMat(rng *rand.Rand, rows, cols int) *Mat {
	m := NewMat(rows, cols)
	m.Randomize(rng)
	return m
}

func TestMatSetGet(t *testing.T) {
	m := NewMat(5, 7)
	m.Set(0, 0, true)
	m.Set(4, 6, true)
	m.Set(2, 3, true)
	if !m.Get(0, 0) || !m.Get(4, 6) || !m.Get(2, 3) {
		t.Fatal("set bits not readable")
	}
	if m.Popcount() != 3 {
		t.Fatalf("Popcount = %d, want 3", m.Popcount())
	}
	m.Flip(2, 3)
	if m.Get(2, 3) {
		t.Fatal("Flip did not clear")
	}
}

func TestRowColRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randMat(rng, 20, 33)
	for c := 0; c < 33; c++ {
		col := m.Col(c)
		for r := 0; r < 20; r++ {
			if col.Get(r) != m.Get(r, c) {
				t.Fatalf("Col(%d)[%d] mismatch", c, r)
			}
		}
	}
	v := NewVec(20)
	v.Fill(true)
	m.SetCol(5, v)
	if m.Col(5).Popcount() != 20 {
		t.Fatal("SetCol failed")
	}
}

func TestRowIsLive(t *testing.T) {
	m := NewMat(3, 4)
	m.Row(1).Set(2, true)
	if !m.Get(1, 2) {
		t.Fatal("Row should return a live view")
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(40), 1+rng.Intn(40)
		m := randMat(rng, rows, cols)
		return m.Transpose().Transpose().Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeElements(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randMat(rng, 17, 9)
	tr := m.Transpose()
	if tr.Rows() != 9 || tr.Cols() != 17 {
		t.Fatalf("Transpose dims %dx%d", tr.Rows(), tr.Cols())
	}
	for r := 0; r < 17; r++ {
		for c := 0; c < 9; c++ {
			if m.Get(r, c) != tr.Get(c, r) {
				t.Fatalf("transpose mismatch at (%d,%d)", r, c)
			}
		}
	}
}

func TestBlockRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := randMat(rng, 30, 30)
	b := m.Block(10, 5, 15, 15)
	if b.Rows() != 15 || b.Cols() != 15 {
		t.Fatal("block dims wrong")
	}
	for r := 0; r < 15; r++ {
		for c := 0; c < 15; c++ {
			if b.Get(r, c) != m.Get(10+r, 5+c) {
				t.Fatalf("block mismatch at (%d,%d)", r, c)
			}
		}
	}
	m2 := m.Clone()
	m2.SetBlock(10, 5, b)
	if !m2.Equal(m) {
		t.Fatal("SetBlock of own block changed matrix")
	}
}

func TestLeadingDiagonalIndexing(t *testing.T) {
	// Mark leading diagonal 2 of a 5x5 and verify extraction sees all ones.
	const n = 5
	m := NewMat(n, n)
	for r := 0; r < n; r++ {
		c := ((2-r)%n + n) % n
		m.Set(r, c, true)
	}
	d := m.LeadingDiagonal(2)
	if d.Popcount() != n {
		t.Fatalf("leading diagonal popcount = %d, want %d", d.Popcount(), n)
	}
	// All other leading diagonals must be empty.
	for k := 0; k < n; k++ {
		if k == 2 {
			continue
		}
		if m.LeadingDiagonal(k).Any() {
			t.Fatalf("leading diagonal %d unexpectedly non-empty", k)
		}
	}
}

func TestCounterDiagonalIndexing(t *testing.T) {
	const n = 7
	m := NewMat(n, n)
	for r := 0; r < n; r++ {
		c := ((r-3)%n + n) % n
		m.Set(r, c, true)
	}
	if m.CounterDiagonal(3).Popcount() != n {
		t.Fatal("counter diagonal 3 incomplete")
	}
	for k := 0; k < n; k++ {
		if k == 3 {
			continue
		}
		if m.CounterDiagonal(k).Any() {
			t.Fatalf("counter diagonal %d unexpectedly non-empty", k)
		}
	}
}

func TestDiagonalsPartitionMatrix(t *testing.T) {
	// Every cell lies on exactly one leading and one counter diagonal, so
	// summing popcounts over all diagonals equals the matrix popcount.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + 2*rng.Intn(8) // odd sizes like the paper's blocks
		m := randMat(rng, n, n)
		lead, counter := 0, 0
		for d := 0; d < n; d++ {
			lead += m.LeadingDiagonal(d).Popcount()
			counter += m.CounterDiagonal(d).Popcount()
		}
		return lead == m.Popcount() && counter == m.Popcount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMatEqualCloneZero(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randMat(rng, 10, 10)
	c := m.Clone()
	if !m.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Flip(0, 0)
	if m.Equal(c) {
		t.Fatal("Equal missed a difference")
	}
	c.Zero()
	if c.Popcount() != 0 {
		t.Fatal("Zero failed")
	}
	if m.Equal(NewMat(10, 11)) {
		t.Fatal("Equal ignored dimensions")
	}
}

func TestMatFill(t *testing.T) {
	m := NewMat(6, 70)
	m.Fill(true)
	if m.Popcount() != 6*70 {
		t.Fatalf("Fill popcount = %d", m.Popcount())
	}
}

func TestBlockOutOfRangePanics(t *testing.T) {
	m := NewMat(4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("Block out of range did not panic")
		}
	}()
	m.Block(2, 2, 3, 3)
}
