package bitmat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewVecZero(t *testing.T) {
	v := NewVec(130)
	if v.Len() != 130 {
		t.Fatalf("Len = %d, want 130", v.Len())
	}
	for i := 0; i < 130; i++ {
		if v.Get(i) {
			t.Fatalf("bit %d set in fresh vector", i)
		}
	}
	if v.Any() || v.Popcount() != 0 {
		t.Fatal("fresh vector not empty")
	}
}

func TestSetGetFlip(t *testing.T) {
	v := NewVec(100)
	v.Set(0, true)
	v.Set(63, true)
	v.Set(64, true)
	v.Set(99, true)
	for _, i := range []int{0, 63, 64, 99} {
		if !v.Get(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if v.Popcount() != 4 {
		t.Fatalf("Popcount = %d, want 4", v.Popcount())
	}
	if v.Flip(63) {
		t.Error("Flip(63) should clear the bit")
	}
	if !v.Flip(1) {
		t.Error("Flip(1) should set the bit")
	}
	if v.Popcount() != 4 {
		t.Fatalf("Popcount after flips = %d, want 4", v.Popcount())
	}
}

func TestIndexPanics(t *testing.T) {
	v := NewVec(10)
	for _, i := range []int{-1, 10, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Get(%d) did not panic", i)
				}
			}()
			v.Get(i)
		}()
	}
}

func TestFromBitsRoundTrip(t *testing.T) {
	bits := []bool{true, false, true, true, false, false, true}
	v := FromBits(bits)
	for i, b := range bits {
		if v.Get(i) != b {
			t.Errorf("bit %d = %v, want %v", i, v.Get(i), b)
		}
	}
	if v.String() != "1011001" {
		t.Errorf("String = %q", v.String())
	}
}

func TestFromUint64(t *testing.T) {
	v := FromUint64(0b1011, 6)
	if v.String() != "110100" {
		t.Errorf("String = %q, want 110100", v.String())
	}
	if v.Uint64() != 0b1011 {
		t.Errorf("Uint64 = %b", v.Uint64())
	}
	// Truncation of bits above n.
	v2 := FromUint64(^uint64(0), 3)
	if v2.Popcount() != 3 {
		t.Errorf("Popcount = %d, want 3", v2.Popcount())
	}
}

func TestFillAndZero(t *testing.T) {
	v := NewVec(70)
	v.Fill(true)
	if v.Popcount() != 70 {
		t.Fatalf("Popcount = %d, want 70 (trim of last word failed?)", v.Popcount())
	}
	v.Zero()
	if v.Any() {
		t.Fatal("Zero left bits set")
	}
}

func TestBooleanOps(t *testing.T) {
	a := FromBits([]bool{true, true, false, false})
	b := FromBits([]bool{true, false, true, false})

	x := NewVec(4)
	x.Xor(a, b)
	if x.String() != "0110" {
		t.Errorf("Xor = %s", x)
	}
	x.And(a, b)
	if x.String() != "1000" {
		t.Errorf("And = %s", x)
	}
	x.Or(a, b)
	if x.String() != "1110" {
		t.Errorf("Or = %s", x)
	}
	x.Nor(a, b)
	if x.String() != "0001" {
		t.Errorf("Nor = %s", x)
	}
	x.Not(a)
	if x.String() != "0011" {
		t.Errorf("Not = %s", x)
	}
	x.AndNot(a, b)
	if x.String() != "0100" {
		t.Errorf("AndNot = %s", x)
	}
}

func TestOpsAlias(t *testing.T) {
	a := FromBits([]bool{true, false, true})
	a.Xor(a, a)
	if a.Any() {
		t.Fatal("x^x should be zero even when aliased")
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	a, b := NewVec(4), NewVec(5)
	defer func() {
		if recover() == nil {
			t.Fatal("Xor with mismatched lengths did not panic")
		}
	}()
	NewVec(4).Xor(a, b)
}

func TestNorMatchesDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		a, b := NewVec(n), NewVec(n)
		for i := 0; i < n; i++ {
			a.Set(i, rng.Intn(2) == 0)
			b.Set(i, rng.Intn(2) == 0)
		}
		got := NewVec(n)
		got.Nor(a, b)
		for i := 0; i < n; i++ {
			want := !(a.Get(i) || b.Get(i))
			if got.Get(i) != want {
				t.Fatalf("n=%d bit %d: Nor=%v want %v", n, i, got.Get(i), want)
			}
		}
	}
}

func TestRotateLeft(t *testing.T) {
	v := FromBits([]bool{true, false, false, true, false})
	r := v.RotateLeft(1)
	// element i of result = element (i+1) mod 5 of v
	if r.String() != "00101" {
		t.Errorf("RotateLeft(1) = %s", r)
	}
	if !v.RotateLeft(0).Equal(v) {
		t.Error("RotateLeft(0) changed the vector")
	}
	if !v.RotateLeft(5).Equal(v) {
		t.Error("RotateLeft(n) changed the vector")
	}
	if !v.RotateLeft(-1).Equal(v.RotateLeft(4)) {
		t.Error("negative rotation mismatch")
	}
}

func TestRotateLeftInverseProperty(t *testing.T) {
	f := func(seed int64, kRaw int) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(150)
		v := NewVec(n)
		for i := 0; i < n; i++ {
			v.Set(i, rng.Intn(2) == 0)
		}
		k := kRaw % (3 * n)
		return v.RotateLeft(k).RotateLeft(-k).Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRotationPreservesPopcount(t *testing.T) {
	f := func(seed int64, k int) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(99)
		v := NewVec(n)
		for i := 0; i < n; i++ {
			v.Set(i, rng.Intn(3) == 0)
		}
		return v.RotateLeft(k%97).Popcount() == v.Popcount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSliceAndSetSlice(t *testing.T) {
	v := FromBits([]bool{true, false, true, true, false, true})
	s := v.Slice(2, 5)
	if s.String() != "110" {
		t.Errorf("Slice = %s", s)
	}
	w := NewVec(6)
	w.SetSlice(3, s)
	if w.String() != "000110" {
		t.Errorf("SetSlice = %s", w)
	}
}

func TestOnesIndices(t *testing.T) {
	v := NewVec(200)
	want := []int{0, 5, 63, 64, 65, 128, 199}
	for _, i := range want {
		v.Set(i, true)
	}
	got := v.OnesIndices()
	if len(got) != len(want) {
		t.Fatalf("OnesIndices = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("OnesIndices[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	v := NewVec(10)
	v.Set(3, true)
	c := v.Clone()
	c.Set(4, true)
	if v.Get(4) {
		t.Fatal("mutating clone affected the original")
	}
	if !c.Get(3) {
		t.Fatal("clone lost bit 3")
	}
}

func TestXorSelfInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		a, b := NewVec(n), NewVec(n)
		for i := 0; i < n; i++ {
			a.Set(i, rng.Intn(2) == 0)
			b.Set(i, rng.Intn(2) == 0)
		}
		x := NewVec(n)
		x.Xor(a, b)
		x.Xor(x, b)
		return x.Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDeMorganProperty(t *testing.T) {
	// NOR(a,b) == AND(NOT a, NOT b) — the identity MAGIC logic leans on.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		a, b := NewVec(n), NewVec(n)
		for i := 0; i < n; i++ {
			a.Set(i, rng.Intn(2) == 0)
			b.Set(i, rng.Intn(2) == 0)
		}
		nor := NewVec(n)
		nor.Nor(a, b)
		na, nb, and := NewVec(n), NewVec(n), NewVec(n)
		na.Not(a)
		nb.Not(b)
		and.And(na, nb)
		return nor.Equal(and)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
