// Package bitmat provides packed bit vectors and bit matrices tailored to
// bit-level hardware simulation: row/column parallel Boolean operations,
// modular rotations (barrel shifts), diagonal walks, and transposition.
//
// Go has no numeric/matrix ecosystem suited to bit-level crossbar
// simulation, so this package is the substrate everything else builds on.
// Vectors are packed 64 bits per word; all operations are word-parallel
// where possible.
package bitmat

import (
	"fmt"
	"math/bits"
	"strings"
)

// Vec is a fixed-length bit vector packed into uint64 words. The zero value
// is an empty vector; use NewVec to create one with a given length.
type Vec struct {
	n int
	w []uint64
}

// NewVec returns an all-zero bit vector of length n. It panics if n < 0.
func NewVec(n int) *Vec {
	if n < 0 {
		panic("bitmat: negative vector length")
	}
	return &Vec{n: n, w: make([]uint64, (n+63)/64)}
}

// FromBits builds a vector from a slice of booleans.
func FromBits(bits []bool) *Vec {
	v := NewVec(len(bits))
	for i, b := range bits {
		if b {
			v.Set(i, true)
		}
	}
	return v
}

// FromUint64 builds an n-bit vector (n <= 64) from the low n bits of x,
// bit i of x becoming element i.
func FromUint64(x uint64, n int) *Vec {
	if n < 0 || n > 64 {
		panic("bitmat: FromUint64 length out of range")
	}
	v := NewVec(n)
	if n > 0 {
		v.w[0] = x & maskLow(n)
	}
	return v
}

func maskLow(k int) uint64 {
	if k >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(k)) - 1
}

// Len returns the number of bits in the vector.
func (v *Vec) Len() int { return v.n }

// Get returns bit i.
func (v *Vec) Get(i int) bool {
	v.check(i)
	return v.w[i>>6]&(1<<uint(i&63)) != 0
}

// Set writes bit i.
func (v *Vec) Set(i int, b bool) {
	v.check(i)
	if b {
		v.w[i>>6] |= 1 << uint(i&63)
	} else {
		v.w[i>>6] &^= 1 << uint(i&63)
	}
}

// Flip inverts bit i and returns its new value.
func (v *Vec) Flip(i int) bool {
	v.check(i)
	v.w[i>>6] ^= 1 << uint(i&63)
	return v.Get(i)
}

func (v *Vec) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitmat: index %d out of range [0,%d)", i, v.n))
	}
}

// Clone returns a deep copy of v.
func (v *Vec) Clone() *Vec {
	c := NewVec(v.n)
	copy(c.w, v.w)
	return c
}

// CopyFrom overwrites v with the contents of src. The lengths must match.
func (v *Vec) CopyFrom(src *Vec) {
	v.sameLen(src)
	copy(v.w, src.w)
}

func (v *Vec) sameLen(o *Vec) {
	if v.n != o.n {
		panic(fmt.Sprintf("bitmat: length mismatch %d vs %d", v.n, o.n))
	}
}

// Zero clears all bits.
func (v *Vec) Zero() {
	for i := range v.w {
		v.w[i] = 0
	}
}

// Fill sets every bit to b.
func (v *Vec) Fill(b bool) {
	if !b {
		v.Zero()
		return
	}
	for i := range v.w {
		v.w[i] = ^uint64(0)
	}
	v.trim()
}

// trim clears the unused high bits of the last word so that word-level
// comparisons and popcounts stay exact.
func (v *Vec) trim() {
	if r := v.n & 63; r != 0 && len(v.w) > 0 {
		v.w[len(v.w)-1] &= maskLow(r)
	}
}

// Xor sets v = a ^ b. Any of the receivers/operands may alias.
func (v *Vec) Xor(a, b *Vec) {
	v.sameLen(a)
	v.sameLen(b)
	for i := range v.w {
		v.w[i] = a.w[i] ^ b.w[i]
	}
}

// And sets v = a & b.
func (v *Vec) And(a, b *Vec) {
	v.sameLen(a)
	v.sameLen(b)
	for i := range v.w {
		v.w[i] = a.w[i] & b.w[i]
	}
}

// Or sets v = a | b.
func (v *Vec) Or(a, b *Vec) {
	v.sameLen(a)
	v.sameLen(b)
	for i := range v.w {
		v.w[i] = a.w[i] | b.w[i]
	}
}

// Not sets v = ^a.
func (v *Vec) Not(a *Vec) {
	v.sameLen(a)
	for i := range v.w {
		v.w[i] = ^a.w[i]
	}
	v.trim()
}

// Nor sets v = ^(a | b). NOR is the native MAGIC gate, so it gets a
// dedicated word-parallel implementation.
func (v *Vec) Nor(a, b *Vec) {
	v.sameLen(a)
	v.sameLen(b)
	for i := range v.w {
		v.w[i] = ^(a.w[i] | b.w[i])
	}
	v.trim()
}

// AndNot sets v = a &^ b.
func (v *Vec) AndNot(a, b *Vec) {
	v.sameLen(a)
	v.sameLen(b)
	for i := range v.w {
		v.w[i] = a.w[i] &^ b.w[i]
	}
}

// Popcount returns the number of set bits.
func (v *Vec) Popcount() int {
	c := 0
	for _, w := range v.w {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether any bit is set.
func (v *Vec) Any() bool {
	for _, w := range v.w {
		if w != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether v and o hold identical bits.
func (v *Vec) Equal(o *Vec) bool {
	if v.n != o.n {
		return false
	}
	for i := range v.w {
		if v.w[i] != o.w[i] {
			return false
		}
	}
	return true
}

// OnesIndices returns the indices of all set bits in ascending order. It
// allocates the result slice; hot loops should use ForEachOne or NextOne
// instead.
func (v *Vec) OnesIndices() []int {
	var out []int
	for wi, w := range v.w {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*64+b)
			w &= w - 1
		}
	}
	return out
}

// ForEachOne calls fn for each set bit index in ascending order, without
// allocating.
func (v *Vec) ForEachOne(fn func(int)) {
	for wi, w := range v.w {
		for w != 0 {
			fn(wi*64 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// NextOne returns the smallest set bit index ≥ i, or -1 if there is none.
// Iterate all set bits allocation-free with
//
//	for i := v.NextOne(0); i >= 0; i = v.NextOne(i + 1) { ... }
func (v *Vec) NextOne(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= v.n {
		return -1
	}
	wi := i >> 6
	w := v.w[wi] &^ (1<<uint(i&63) - 1)
	for {
		if w != 0 {
			return wi*64 + bits.TrailingZeros64(w)
		}
		wi++
		if wi >= len(v.w) {
			return -1
		}
		w = v.w[wi]
	}
}

// Uint64At returns the k (0 ≤ k ≤ 64) bits starting at offset lo, packed
// into the low bits of the result — a window read that never allocates.
func (v *Vec) Uint64At(lo, k int) uint64 {
	if k < 0 || k > 64 || lo < 0 || lo+k > v.n {
		panic(fmt.Sprintf("bitmat: bad Uint64At(%d,%d) of %d", lo, k, v.n))
	}
	if k == 0 {
		return 0
	}
	return extractBits(v.w, lo, k)
}

// MaskedMerge sets v = (a & mask) | (v &^ mask): bits selected by mask are
// taken from a, the rest keep their current value. This is the single
// primitive behind masked gate execution — a whole-line operation merged
// into the destination under a selection mask. Operands may alias v.
func (v *Vec) MaskedMerge(a, mask *Vec) {
	v.sameLen(a)
	v.sameLen(mask)
	for i := range v.w {
		m := mask.w[i]
		v.w[i] = a.w[i]&m | v.w[i]&^m
	}
}

// extractBits returns the k (1..64) bits of src starting at bit lo, in the
// low bits of the result. Bits past the end of src read as zero.
func extractBits(src []uint64, lo, k int) uint64 {
	wi, b := lo>>6, uint(lo&63)
	w := src[wi] >> b
	if b != 0 && int(b)+k > 64 && wi+1 < len(src) {
		w |= src[wi+1] << (64 - b)
	}
	return w & maskLow(k)
}

// copyBits copies n bits from src starting at bit srcLo into dst starting
// at bit dstLo, proceeding one destination word per step (shift-and-stitch
// rather than per-bit Get/Set). dst and src must not be overlapping views
// of the same array unless the offsets are equal; callers resolve aliasing.
func copyBits(dst []uint64, dstLo int, src []uint64, srcLo, n int) {
	for n > 0 {
		dw, db := dstLo>>6, dstLo&63
		chunk := 64 - db
		if chunk > n {
			chunk = n
		}
		b := extractBits(src, srcLo, chunk)
		m := maskLow(chunk) << uint(db)
		dst[dw] = dst[dw]&^m | b<<uint(db)
		dstLo += chunk
		srcLo += chunk
		n -= chunk
	}
}

// RotateLeft returns a copy of v rotated left by k positions (element i of
// the result is element (i+k) mod n of v). k may be negative or exceed n.
func (v *Vec) RotateLeft(k int) *Vec {
	n := v.n
	out := NewVec(n)
	if n == 0 {
		return out
	}
	k = ((k % n) + n) % n
	copyBits(out.w, 0, v.w, k, n-k)
	copyBits(out.w, n-k, v.w, 0, k)
	return out
}

// Slice returns a copy of bits [lo, hi).
func (v *Vec) Slice(lo, hi int) *Vec {
	if lo < 0 || hi > v.n || lo > hi {
		panic(fmt.Sprintf("bitmat: bad slice [%d,%d) of %d", lo, hi, v.n))
	}
	out := NewVec(hi - lo)
	copyBits(out.w, 0, v.w, lo, hi-lo)
	return out
}

// SetSlice writes src into v starting at offset lo. If src is v itself the
// result is as if src had been copied first.
func (v *Vec) SetSlice(lo int, src *Vec) {
	if lo < 0 || lo+src.n > v.n {
		panic(fmt.Sprintf("bitmat: bad SetSlice at %d len %d into %d", lo, src.n, v.n))
	}
	v.CopyRange(lo, src, 0, src.n)
}

// CopyRange copies n bits from src starting at srcLo into v starting at
// dstLo. If src is v itself the result is as if src had been copied first.
func (v *Vec) CopyRange(dstLo int, src *Vec, srcLo, n int) {
	if n < 0 || srcLo < 0 || srcLo+n > src.n || dstLo < 0 || dstLo+n > v.n {
		panic(fmt.Sprintf("bitmat: bad CopyRange(%d, src[%d:%d+%d]) into %d", dstLo, srcLo, srcLo, n, v.n))
	}
	if v == src && dstLo != srcLo {
		src = src.Clone()
	}
	copyBits(v.w, dstLo, src.w, srcLo, n)
}

// Uint64 returns the low 64 bits of the vector as an integer (bit i of the
// vector becomes bit i of the result). Vectors longer than 64 bits are
// truncated.
func (v *Vec) Uint64() uint64 {
	if len(v.w) == 0 {
		return 0
	}
	return v.w[0]
}

// String renders the vector as a bit string, element 0 first.
func (v *Vec) String() string {
	var sb strings.Builder
	sb.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}
