package bitmat

import (
	"math/rand"
	"testing"
)

// Microbenchmarks for the word-parallel substrate. The paper's premise is
// that one MAGIC cycle touches a whole crossbar line, so these primitives
// bound the simulation throughput of everything above them. Geometries are
// chosen to be word-unaligned (1020 = 15×68, the paper case study) so the
// shift-and-stitch paths are exercised, not just the aligned fast path.

func benchVec(n int, seed int64) *Vec {
	v := NewVec(n)
	rng := rand.New(rand.NewSource(seed))
	for i := range v.w {
		v.w[i] = rng.Uint64()
	}
	v.trim()
	return v
}

func BenchmarkBitmatRotateLeft(b *testing.B) {
	v := benchVec(1020, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.RotateLeft(i%997 + 1)
	}
}

func BenchmarkBitmatSlice(b *testing.B) {
	v := benchVec(1020, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Slice(7, 1013)
	}
}

func BenchmarkBitmatSetSlice(b *testing.B) {
	v := benchVec(1020, 3)
	src := benchVec(1006, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.SetSlice(7, src)
	}
}

func BenchmarkBitmatTranspose(b *testing.B) {
	m := NewMat(1020, 1020)
	m.Randomize(rand.New(rand.NewSource(5)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Transpose()
	}
}

func BenchmarkBitmatCol(b *testing.B) {
	m := NewMat(1020, 1020)
	m.Randomize(rand.New(rand.NewSource(6)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Col(i % 1020)
	}
}

func BenchmarkBitmatBlock(b *testing.B) {
	m := NewMat(1020, 1020)
	m.Randomize(rand.New(rand.NewSource(7)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Block(15, 30, 255, 255)
	}
}

func BenchmarkBitmatOnesIteration(b *testing.B) {
	v := benchVec(1020, 8)
	sink := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, idx := range v.OnesIndices() {
			sink += idx
		}
	}
	_ = sink
}
