package bitmat

// This file retains the original bit-serial implementations of every
// primitive that was rewritten word-parallel. They are the semantic ground
// truth: the differential tests and the FuzzVecOpsEquivalence target run
// each optimized routine against its reference here and require bit-exact
// agreement. Keep them simple and obviously correct — they are allowed to
// be slow.

// rotateLeftRef is the bit-serial RotateLeft.
func rotateLeftRef(v *Vec, k int) *Vec {
	n := v.n
	out := NewVec(n)
	if n == 0 {
		return out
	}
	k = ((k % n) + n) % n
	for i := 0; i < n; i++ {
		out.Set(i, v.Get((i+k)%n))
	}
	return out
}

// sliceRef is the bit-serial Slice.
func sliceRef(v *Vec, lo, hi int) *Vec {
	out := NewVec(hi - lo)
	for i := lo; i < hi; i++ {
		out.Set(i-lo, v.Get(i))
	}
	return out
}

// copyRangeRef is the bit-serial CopyRange (reads src through a clone so
// that aliased calls have copy-first semantics, matching the optimized
// implementation).
func copyRangeRef(v *Vec, dstLo int, src *Vec, srcLo, n int) {
	from := src.Clone()
	for i := 0; i < n; i++ {
		v.Set(dstLo+i, from.Get(srcLo+i))
	}
}

// maskedMergeRef is the bit-serial MaskedMerge.
func maskedMergeRef(v, a, mask *Vec) {
	for i := 0; i < v.n; i++ {
		if mask.Get(i) {
			v.Set(i, a.Get(i))
		}
	}
}

// nextOneRef is the linear-scan NextOne.
func nextOneRef(v *Vec, i int) int {
	if i < 0 {
		i = 0
	}
	for ; i < v.n; i++ {
		if v.Get(i) {
			return i
		}
	}
	return -1
}

// uint64AtRef is the bit-serial Uint64At.
func uint64AtRef(v *Vec, lo, k int) uint64 {
	var out uint64
	for i := 0; i < k; i++ {
		if v.Get(lo + i) {
			out |= 1 << uint(i)
		}
	}
	return out
}

// transposeRef is the bit-serial Transpose.
func transposeRef(m *Mat) *Mat {
	out := NewMat(m.cols, m.rows)
	for r := 0; r < m.rows; r++ {
		for c := 0; c < m.cols; c++ {
			if m.Get(r, c) {
				out.Set(c, r, true)
			}
		}
	}
	return out
}

// colRef is the bit-serial Col.
func colRef(m *Mat, c int) *Vec {
	out := NewVec(m.rows)
	for r := 0; r < m.rows; r++ {
		out.Set(r, m.Get(r, c))
	}
	return out
}

// setColRef is the bit-serial SetCol.
func setColRef(m *Mat, c int, src *Vec) {
	for r := 0; r < m.rows; r++ {
		m.Set(r, c, src.Get(r))
	}
}

// blockRef is the bit-serial Block.
func blockRef(m *Mat, r0, c0, h, w int) *Mat {
	out := NewMat(h, w)
	for r := 0; r < h; r++ {
		for c := 0; c < w; c++ {
			out.Set(r, c, m.Get(r0+r, c0+c))
		}
	}
	return out
}

// setBlockRef is the bit-serial SetBlock.
func setBlockRef(m *Mat, r0, c0 int, src *Mat) {
	for r := 0; r < src.rows; r++ {
		for c := 0; c < src.cols; c++ {
			m.Set(r0+r, c0+c, src.Get(r, c))
		}
	}
}
