package bitmat

import (
	"testing"
)

// FuzzVecOpsEquivalence drives the word-parallel primitives against their
// bit-serial references over fuzzer-chosen (geometry, payload, mask, op)
// tuples, including aliased receivers. Lengths are folded into
// [1, 129] so the word-boundary cases (63/64/65/127/128/129) stay in
// reach of the fuzzer; payload bytes fill the vector cyclically.
func FuzzVecOpsEquivalence(f *testing.F) {
	for _, n := range []int{1, 63, 64, 65, 127, 129} {
		f.Add(uint16(n), uint16(3), uint16(7), []byte{0xA5, 0x3C}, []byte{0xFF, 0x0F})
		f.Add(uint16(n), uint16(n), uint16(0), []byte{0x00}, []byte{0xFF})
		f.Add(uint16(n), uint16(1), uint16(n), []byte{0xFF, 0x81, 0x42}, []byte{0x55})
	}

	f.Fuzz(func(t *testing.T, nRaw, kRaw, offRaw uint16, payload, maskBytes []byte) {
		n := int(nRaw)%129 + 1
		v := vecFromBytes(n, payload)
		mask := vecFromBytes(n, maskBytes)

		// RotateLeft, with negative and out-of-range amounts.
		k := int(kRaw) - 512
		if got, want := v.RotateLeft(k), rotateLeftRef(v, k); !got.Equal(want) {
			t.Fatalf("RotateLeft(n=%d, k=%d):\n got %s\nwant %s", n, k, got, want)
		}

		// Slice over a fuzzer-chosen window.
		lo := int(offRaw) % (n + 1)
		hi := lo + int(kRaw)%(n+1-lo)
		if got, want := v.Slice(lo, hi), sliceRef(v, lo, hi); !got.Equal(want) {
			t.Fatalf("Slice(n=%d, [%d,%d)):\n got %s\nwant %s", n, lo, hi, got, want)
		}

		// Aliased CopyRange: move [lo,hi) to a fuzzer-chosen offset in place.
		cnt := hi - lo
		dstLo := int(kRaw) % (n + 1 - cnt)
		got, want := v.Clone(), v.Clone()
		got.CopyRange(dstLo, got, lo, cnt)
		copyRangeRef(want, dstLo, want, lo, cnt)
		if !got.Equal(want) {
			t.Fatalf("aliased CopyRange(n=%d, dstLo=%d, srcLo=%d, cnt=%d):\n got %s\nwant %s",
				n, dstLo, lo, cnt, got, want)
		}

		// MaskedMerge, plain and with the operand aliasing the receiver.
		a := vecFromBytes(n, append(maskBytes, payload...))
		got, want = v.Clone(), v.Clone()
		got.MaskedMerge(a, mask)
		maskedMergeRef(want, a, mask)
		if !got.Equal(want) {
			t.Fatalf("MaskedMerge(n=%d):\n got %s\nwant %s", n, got, want)
		}
		got, want = v.Clone(), v.Clone()
		got.MaskedMerge(got, mask)
		maskedMergeRef(want, want, mask)
		if !got.Equal(want) {
			t.Fatalf("self MaskedMerge(n=%d):\n got %s\nwant %s", n, got, want)
		}

		// NextOne across the whole index range.
		for i := 0; i <= n; i++ {
			if g, w := mask.NextOne(i), nextOneRef(mask, i); g != w {
				t.Fatalf("NextOne(n=%d, %d) = %d, want %d", n, i, g, w)
			}
		}

		// Transpose of an n×m matrix built from the payload.
		m := int(offRaw)%129 + 1
		mt := NewMat(n, m)
		for r := 0; r < n; r++ {
			mt.SetRow(r, vecFromBytes(m, append(payload, byte(r))))
		}
		if g, w := mt.Transpose(), transposeRef(mt); !g.Equal(w) {
			t.Fatalf("Transpose(%dx%d) mismatch", n, m)
		}
	})
}

// vecFromBytes builds an n-bit vector by tiling the payload bytes (an
// empty payload gives the zero vector).
func vecFromBytes(n int, payload []byte) *Vec {
	v := NewVec(n)
	if len(payload) == 0 {
		return v
	}
	for i := 0; i < n; i++ {
		if payload[(i/8)%len(payload)]>>(uint(i)&7)&1 != 0 {
			v.Set(i, true)
		}
	}
	return v
}
