package bitmat

import (
	"fmt"
	"math/rand"
	"strings"
)

// Mat is a dense bit matrix stored row-major. All rows share one flat
// word array (each row Vec is a view into it), so building a matrix costs
// O(1) allocations and row walks are cache-sequential instead of chasing
// one heap object per row.
type Mat struct {
	rows, cols int
	r          []*Vec
}

// NewMat returns an all-zero rows×cols bit matrix.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic("bitmat: negative matrix dimension")
	}
	m := &Mat{rows: rows, cols: cols, r: make([]*Vec, rows)}
	wpr := (cols + 63) / 64
	flat := make([]uint64, rows*wpr)
	vs := make([]Vec, rows)
	for i := range vs {
		vs[i] = Vec{n: cols, w: flat[i*wpr : (i+1)*wpr : (i+1)*wpr]}
		m.r[i] = &vs[i]
	}
	return m
}

// Rows returns the number of rows.
func (m *Mat) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Mat) Cols() int { return m.cols }

// Get returns the bit at row r, column c.
func (m *Mat) Get(r, c int) bool {
	m.checkRow(r)
	return m.r[r].Get(c)
}

// Set writes the bit at row r, column c.
func (m *Mat) Set(r, c int, b bool) {
	m.checkRow(r)
	m.r[r].Set(c, b)
}

// Flip inverts the bit at row r, column c and returns the new value.
func (m *Mat) Flip(r, c int) bool {
	m.checkRow(r)
	return m.r[r].Flip(c)
}

func (m *Mat) checkRow(r int) {
	if r < 0 || r >= m.rows {
		panic(fmt.Sprintf("bitmat: row %d out of range [0,%d)", r, m.rows))
	}
}

func (m *Mat) checkCol(c int) {
	if c < 0 || c >= m.cols {
		panic(fmt.Sprintf("bitmat: column %d out of range [0,%d)", c, m.cols))
	}
}

// Row returns the live row vector (mutations are visible in the matrix).
func (m *Mat) Row(r int) *Vec {
	m.checkRow(r)
	return m.r[r]
}

// SetRow copies src into row r.
func (m *Mat) SetRow(r int, src *Vec) {
	m.checkRow(r)
	m.r[r].CopyFrom(src)
}

// Col returns a copy of column c as a vector of length Rows.
func (m *Mat) Col(c int) *Vec {
	m.checkCol(c)
	out := NewVec(m.rows)
	wi, sh := c>>6, uint(c&63)
	for r := 0; r < m.rows; r++ {
		out.w[r>>6] |= (m.r[r].w[wi] >> sh & 1) << uint(r&63)
	}
	return out
}

// SetCol writes src (length Rows) into column c.
func (m *Mat) SetCol(c int, src *Vec) {
	m.checkCol(c)
	if src.Len() != m.rows {
		panic("bitmat: SetCol length mismatch")
	}
	wi, bit := c>>6, uint64(1)<<uint(c&63)
	for r := 0; r < m.rows; r++ {
		if src.w[r>>6]>>uint(r&63)&1 != 0 {
			m.r[r].w[wi] |= bit
		} else {
			m.r[r].w[wi] &^= bit
		}
	}
}

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	out := NewMat(m.rows, m.cols)
	for i, v := range m.r {
		out.r[i].CopyFrom(v)
	}
	return out
}

// Equal reports whether two matrices hold identical bits.
func (m *Mat) Equal(o *Mat) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i := range m.r {
		if !m.r[i].Equal(o.r[i]) {
			return false
		}
	}
	return true
}

// Zero clears the matrix.
func (m *Mat) Zero() {
	for _, v := range m.r {
		v.Zero()
	}
}

// Fill sets every bit to b.
func (m *Mat) Fill(b bool) {
	for _, v := range m.r {
		v.Fill(b)
	}
}

// Popcount returns the number of set bits in the matrix.
func (m *Mat) Popcount() int {
	c := 0
	for _, v := range m.r {
		c += v.Popcount()
	}
	return c
}

// Transpose returns a new cols×rows matrix with axes swapped. It works in
// 64×64 tiles: each tile is loaded as 64 words, transposed in registers
// with the log₂64-step swap network, and stored as whole words — O(n²/64)
// word operations instead of one Get/Set round trip per set bit.
func (m *Mat) Transpose() *Mat {
	out := NewMat(m.cols, m.rows)
	var tile [64]uint64
	for tr := 0; tr < m.rows; tr += 64 {
		th := m.rows - tr
		if th > 64 {
			th = 64
		}
		for tc := 0; tc < m.cols; tc += 64 {
			tw := m.cols - tc
			if tw > 64 {
				tw = 64
			}
			wi := tc >> 6
			for i := 0; i < th; i++ {
				tile[i] = m.r[tr+i].w[wi]
			}
			for i := th; i < 64; i++ {
				tile[i] = 0
			}
			transpose64(&tile)
			wo := tr >> 6
			for i := 0; i < tw; i++ {
				out.r[tc+i].w[wo] = tile[i]
			}
		}
	}
	return out
}

// transpose64 transposes a 64×64 bit block held as 64 row words (bit c of
// word r is cell (r,c)) using the recursive block-swap network.
func transpose64(a *[64]uint64) {
	j := uint(32)
	mask := uint64(0x00000000FFFFFFFF)
	for ; j != 0; j, mask = j>>1, mask^(mask<<(j>>1)) {
		for k := uint(0); k < 64; k = (k + j + 1) &^ j {
			t := (a[k]>>j ^ a[k+j]) & mask
			a[k+j] ^= t
			a[k] ^= t << j
		}
	}
}

// Block returns a copy of the h×w submatrix whose top-left corner is (r0,c0).
func (m *Mat) Block(r0, c0, h, w int) *Mat {
	if r0 < 0 || c0 < 0 || r0+h > m.rows || c0+w > m.cols {
		panic(fmt.Sprintf("bitmat: block (%d,%d,%d,%d) out of %dx%d", r0, c0, h, w, m.rows, m.cols))
	}
	out := NewMat(h, w)
	for r := 0; r < h; r++ {
		copyBits(out.r[r].w, 0, m.r[r0+r].w, c0, w)
	}
	return out
}

// SetBlock writes src into m with top-left corner at (r0,c0).
func (m *Mat) SetBlock(r0, c0 int, src *Mat) {
	if r0 < 0 || c0 < 0 || r0+src.rows > m.rows || c0+src.cols > m.cols {
		panic("bitmat: SetBlock out of range")
	}
	for r := 0; r < src.rows; r++ {
		copyBits(m.r[r0+r].w, c0, src.r[r].w, 0, src.cols)
	}
}

// Randomize fills the matrix with uniform random bits from rng.
func (m *Mat) Randomize(rng *rand.Rand) {
	for _, v := range m.r {
		for i := range v.w {
			v.w[i] = rng.Uint64()
		}
		v.trim()
	}
}

// LeadingDiagonal returns, for an m×m square matrix, the cells of
// wrap-around leading diagonal d: all (r,c) with (r+c) mod m == d.
// The returned vector has element r equal to the bit at (r, (d-r) mod m).
func (m *Mat) LeadingDiagonal(d int) *Vec {
	if m.rows != m.cols {
		panic("bitmat: LeadingDiagonal requires a square matrix")
	}
	n := m.rows
	out := NewVec(n)
	for r := 0; r < n; r++ {
		c := ((d-r)%n + n) % n
		out.w[r>>6] |= (m.r[r].w[c>>6] >> uint(c&63) & 1) << uint(r&63)
	}
	return out
}

// CounterDiagonal returns, for an m×m square matrix, the cells of
// wrap-around counter diagonal d: all (r,c) with (r-c) mod m == d.
// The returned vector has element r equal to the bit at (r, (r-d) mod m).
func (m *Mat) CounterDiagonal(d int) *Vec {
	if m.rows != m.cols {
		panic("bitmat: CounterDiagonal requires a square matrix")
	}
	n := m.rows
	out := NewVec(n)
	for r := 0; r < n; r++ {
		c := ((r-d)%n + n) % n
		out.w[r>>6] |= (m.r[r].w[c>>6] >> uint(c&63) & 1) << uint(r&63)
	}
	return out
}

// String renders the matrix one row per line.
func (m *Mat) String() string {
	var sb strings.Builder
	for r := 0; r < m.rows; r++ {
		sb.WriteString(m.r[r].String())
		if r != m.rows-1 {
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
