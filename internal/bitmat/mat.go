package bitmat

import (
	"fmt"
	"math/rand"
	"strings"
)

// Mat is a dense bit matrix stored row-major, one packed Vec per row.
type Mat struct {
	rows, cols int
	r          []*Vec
}

// NewMat returns an all-zero rows×cols bit matrix.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic("bitmat: negative matrix dimension")
	}
	m := &Mat{rows: rows, cols: cols, r: make([]*Vec, rows)}
	for i := range m.r {
		m.r[i] = NewVec(cols)
	}
	return m
}

// Rows returns the number of rows.
func (m *Mat) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Mat) Cols() int { return m.cols }

// Get returns the bit at row r, column c.
func (m *Mat) Get(r, c int) bool {
	m.checkRow(r)
	return m.r[r].Get(c)
}

// Set writes the bit at row r, column c.
func (m *Mat) Set(r, c int, b bool) {
	m.checkRow(r)
	m.r[r].Set(c, b)
}

// Flip inverts the bit at row r, column c and returns the new value.
func (m *Mat) Flip(r, c int) bool {
	m.checkRow(r)
	return m.r[r].Flip(c)
}

func (m *Mat) checkRow(r int) {
	if r < 0 || r >= m.rows {
		panic(fmt.Sprintf("bitmat: row %d out of range [0,%d)", r, m.rows))
	}
}

// Row returns the live row vector (mutations are visible in the matrix).
func (m *Mat) Row(r int) *Vec {
	m.checkRow(r)
	return m.r[r]
}

// SetRow copies src into row r.
func (m *Mat) SetRow(r int, src *Vec) {
	m.checkRow(r)
	m.r[r].CopyFrom(src)
}

// Col returns a copy of column c as a vector of length Rows.
func (m *Mat) Col(c int) *Vec {
	out := NewVec(m.rows)
	for r := 0; r < m.rows; r++ {
		out.Set(r, m.Get(r, c))
	}
	return out
}

// SetCol writes src (length Rows) into column c.
func (m *Mat) SetCol(c int, src *Vec) {
	if src.Len() != m.rows {
		panic("bitmat: SetCol length mismatch")
	}
	for r := 0; r < m.rows; r++ {
		m.Set(r, c, src.Get(r))
	}
}

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	out := NewMat(m.rows, m.cols)
	for i, v := range m.r {
		out.r[i].CopyFrom(v)
	}
	return out
}

// Equal reports whether two matrices hold identical bits.
func (m *Mat) Equal(o *Mat) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i := range m.r {
		if !m.r[i].Equal(o.r[i]) {
			return false
		}
	}
	return true
}

// Zero clears the matrix.
func (m *Mat) Zero() {
	for _, v := range m.r {
		v.Zero()
	}
}

// Fill sets every bit to b.
func (m *Mat) Fill(b bool) {
	for _, v := range m.r {
		v.Fill(b)
	}
}

// Popcount returns the number of set bits in the matrix.
func (m *Mat) Popcount() int {
	c := 0
	for _, v := range m.r {
		c += v.Popcount()
	}
	return c
}

// Transpose returns a new cols×rows matrix with axes swapped.
func (m *Mat) Transpose() *Mat {
	out := NewMat(m.cols, m.rows)
	for r := 0; r < m.rows; r++ {
		row := m.r[r]
		for _, c := range row.OnesIndices() {
			out.Set(c, r, true)
		}
	}
	return out
}

// Block returns a copy of the h×w submatrix whose top-left corner is (r0,c0).
func (m *Mat) Block(r0, c0, h, w int) *Mat {
	if r0 < 0 || c0 < 0 || r0+h > m.rows || c0+w > m.cols {
		panic(fmt.Sprintf("bitmat: block (%d,%d,%d,%d) out of %dx%d", r0, c0, h, w, m.rows, m.cols))
	}
	out := NewMat(h, w)
	for r := 0; r < h; r++ {
		for c := 0; c < w; c++ {
			out.Set(r, c, m.Get(r0+r, c0+c))
		}
	}
	return out
}

// SetBlock writes src into m with top-left corner at (r0,c0).
func (m *Mat) SetBlock(r0, c0 int, src *Mat) {
	if r0 < 0 || c0 < 0 || r0+src.rows > m.rows || c0+src.cols > m.cols {
		panic("bitmat: SetBlock out of range")
	}
	for r := 0; r < src.rows; r++ {
		for c := 0; c < src.cols; c++ {
			m.Set(r0+r, c0+c, src.Get(r, c))
		}
	}
}

// Randomize fills the matrix with uniform random bits from rng.
func (m *Mat) Randomize(rng *rand.Rand) {
	for _, v := range m.r {
		for i := range v.w {
			v.w[i] = rng.Uint64()
		}
		v.trim()
	}
}

// LeadingDiagonal returns, for an m×m square matrix, the cells of
// wrap-around leading diagonal d: all (r,c) with (r+c) mod m == d.
// The returned vector has element r equal to the bit at (r, (d-r) mod m).
func (m *Mat) LeadingDiagonal(d int) *Vec {
	if m.rows != m.cols {
		panic("bitmat: LeadingDiagonal requires a square matrix")
	}
	n := m.rows
	out := NewVec(n)
	for r := 0; r < n; r++ {
		c := ((d-r)%n + n) % n
		out.Set(r, m.Get(r, c))
	}
	return out
}

// CounterDiagonal returns, for an m×m square matrix, the cells of
// wrap-around counter diagonal d: all (r,c) with (r-c) mod m == d.
// The returned vector has element r equal to the bit at (r, (r-d) mod m).
func (m *Mat) CounterDiagonal(d int) *Vec {
	if m.rows != m.cols {
		panic("bitmat: CounterDiagonal requires a square matrix")
	}
	n := m.rows
	out := NewVec(n)
	for r := 0; r < n; r++ {
		c := ((r-d)%n + n) % n
		out.Set(r, m.Get(r, c))
	}
	return out
}

// String renders the matrix one row per line.
func (m *Mat) String() string {
	var sb strings.Builder
	for r := 0; r < m.rows; r++ {
		sb.WriteString(m.r[r].String())
		if r != m.rows-1 {
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
