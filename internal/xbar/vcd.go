package xbar

import (
	"fmt"
	"io"
	"sort"
)

// Watch records the value of selected memristors at every clock cycle so
// the history can be exported as a VCD (Value Change Dump) waveform —
// the standard format EDA waveform viewers (GTKWave etc.) read. Enable
// watches before running operations; each watched cell becomes one
// 1-bit signal named cell_<row>_<col>.

// WatchCell starts sampling memristor (r,c) each cycle.
func (x *Crossbar) WatchCell(r, c int) {
	x.checkRow(r)
	x.checkCol(c)
	if x.watch == nil {
		x.watch = make(map[[2]int][]sample)
	}
	key := [2]int{r, c}
	if _, ok := x.watch[key]; !ok {
		// Record the initial value at the current cycle.
		x.watch[key] = []sample{{cycle: x.stats.Cycles, val: x.mem.Get(r, c)}}
	}
}

type sample struct {
	cycle int
	val   bool
}

// sampleWatches records changed watched cells; called after every
// cycle-consuming operation.
func (x *Crossbar) sampleWatches() {
	for key, hist := range x.watch {
		v := x.mem.Get(key[0], key[1])
		if hist[len(hist)-1].val != v {
			x.watch[key] = append(hist, sample{cycle: x.stats.Cycles, val: v})
		}
	}
}

// WriteVCD emits the recorded waveform for all watched cells.
func (x *Crossbar) WriteVCD(w io.Writer, module string) error {
	if len(x.watch) == 0 {
		return fmt.Errorf("xbar: no watched cells")
	}
	keys := make([][2]int, 0, len(x.watch))
	for k := range x.watch {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})

	if _, err := fmt.Fprintf(w, "$timescale 1ns $end\n$scope module %s $end\n", module); err != nil {
		return err
	}
	ids := make(map[[2]int]string, len(keys))
	for i, k := range keys {
		id := vcdID(i)
		ids[k] = id
		fmt.Fprintf(w, "$var wire 1 %s cell_%d_%d $end\n", id, k[0], k[1])
	}
	fmt.Fprintf(w, "$upscope $end\n$enddefinitions $end\n")

	// Merge all samples into a time-ordered change list.
	type change struct {
		cycle int
		id    string
		val   bool
	}
	var changes []change
	for _, k := range keys {
		for _, s := range x.watch[k] {
			changes = append(changes, change{s.cycle, ids[k], s.val})
		}
	}
	sort.SliceStable(changes, func(i, j int) bool { return changes[i].cycle < changes[j].cycle })

	last := -1
	for _, c := range changes {
		if c.cycle != last {
			fmt.Fprintf(w, "#%d\n", c.cycle)
			last = c.cycle
		}
		bit := '0'
		if c.val {
			bit = '1'
		}
		fmt.Fprintf(w, "%c%s\n", bit, c.id)
	}
	_, err := fmt.Fprintf(w, "#%d\n", x.stats.Cycles)
	return err
}

// vcdID generates compact printable VCD identifiers: !, ", #, ...
func vcdID(i int) string {
	const lo, hi = 33, 127
	if i < hi-lo {
		return string(rune(lo + i))
	}
	return string(rune(lo+i/(hi-lo))) + string(rune(lo+i%(hi-lo)))
}
