package xbar

import (
	"math/rand"
	"testing"

	"repro/internal/bitmat"
)

// BenchmarkXbarGates measures the MAGIC gate execution paths: one cycle of
// each gate family on a 512-column (rows) crossbar with every line
// selected — the configuration where the hardware does 512 gates in one
// cycle and the simulator should do ~8 word operations, not 512 bit
// round-trips. Tracing and watches are off, so these paths must also be
// allocation-free.
func BenchmarkXbarGates(b *testing.B) {
	const n = 512
	rng := rand.New(rand.NewSource(1))

	b.Run("NORCols", func(b *testing.B) {
		x := New(n, n)
		x.Mat().Randomize(rng)
		cols := x.AllCols()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			x.NORCols(1, 2, 3, cols)
		}
	})

	b.Run("NOTCols", func(b *testing.B) {
		x := New(n, n)
		x.Mat().Randomize(rng)
		cols := x.AllCols()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			x.NOTCols(1, 3, cols)
		}
	})

	b.Run("NORRows", func(b *testing.B) {
		x := New(n, n)
		x.Mat().Randomize(rng)
		rows := x.AllRows()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			x.NORRows(1, 2, 3, rows)
		}
	})

	b.Run("NOTRows", func(b *testing.B) {
		x := New(n, n)
		x.Mat().Randomize(rng)
		rows := x.AllRows()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			x.NOTRows(1, 3, rows)
		}
	})

	b.Run("InitRowsInCols", func(b *testing.B) {
		x := New(n, n)
		cols := x.AllCols()
		rowIdx := []int{4, 5, 6, 7}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			x.InitRowsInCols(rowIdx, cols)
		}
	})

	b.Run("InitColumnsInRows", func(b *testing.B) {
		x := New(n, n)
		rows := x.AllRows()
		colIdx := []int{4, 5, 6, 7}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			x.InitColumnsInRows(colIdx, rows)
		}
	})

	b.Run("WriteRow", func(b *testing.B) {
		x := New(n, n)
		v := bitmat.NewVec(n)
		v.Fill(true)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			x.WriteRow(i%n, v)
		}
	})

	b.Run("XOR3Cols", func(b *testing.B) {
		x := New(XOR3WorkRows, n)
		x.Mat().Randomize(rng)
		cols := x.AllCols()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			x.XOR3Cols(0, cols)
		}
	})
}
