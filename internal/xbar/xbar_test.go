package xbar

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitmat"
)

func TestNORRowsParallel(t *testing.T) {
	// Fig 1(a): the same in-row NOR executes across many rows in one cycle.
	x := New(8, 8)
	rng := rand.New(rand.NewSource(1))
	x.Mat().Randomize(rng)
	before := x.Snapshot()

	rows := x.AllRows()
	x.InitColumnsInRows([]int{5}, rows)
	x.NORRows(0, 1, 5, rows)

	st := x.Stats()
	if st.Cycles != 2 { // 1 init + 1 gate
		t.Fatalf("Cycles = %d, want 2", st.Cycles)
	}
	if st.GateCount != 8 {
		t.Fatalf("GateCount = %d, want 8 (one gate per row)", st.GateCount)
	}
	for r := 0; r < 8; r++ {
		want := !(before.Get(r, 0) || before.Get(r, 1))
		if x.Get(r, 5) != want {
			t.Fatalf("row %d: NOR=%v want %v", r, x.Get(r, 5), want)
		}
		// Other columns untouched.
		for c := 0; c < 8; c++ {
			if c == 5 {
				continue
			}
			if x.Get(r, c) != before.Get(r, c) {
				t.Fatalf("cell (%d,%d) changed unexpectedly", r, c)
			}
		}
	}
}

func TestNORColsParallel(t *testing.T) {
	// Fig 1(b): in-column NOR across all columns in one cycle.
	x := New(8, 8)
	rng := rand.New(rand.NewSource(2))
	x.Mat().Randomize(rng)
	before := x.Snapshot()

	cols := x.AllCols()
	x.InitRowsInCols([]int{7}, cols)
	x.NORCols(2, 3, 7, cols)

	for c := 0; c < 8; c++ {
		want := !(before.Get(2, c) || before.Get(3, c))
		if x.Get(7, c) != want {
			t.Fatalf("col %d: NOR=%v want %v", c, x.Get(7, c), want)
		}
	}
}

func TestRowMaskSubset(t *testing.T) {
	x := New(4, 4)
	x.Set(0, 0, true)
	x.Set(1, 0, true)
	rows := x.RowMask()
	rows.Set(1, true) // only row 1 selected
	x.InitColumnsInRows([]int{3}, rows)
	x.NORRows(0, 1, 3, rows)
	if x.Get(1, 3) != false { // NOR(1,0)=0
		t.Fatal("selected row wrong result")
	}
	if x.Get(0, 3) != false { // untouched, still HRS=0
		t.Fatal("unselected row changed")
	}
	if x.Stats().GateCount != 1 {
		t.Fatalf("GateCount = %d, want 1", x.Stats().GateCount)
	}
}

func TestNOTGate(t *testing.T) {
	x := New(2, 3)
	x.Set(0, 0, true)
	x.Set(1, 0, false)
	rows := x.AllRows()
	x.InitColumnsInRows([]int{2}, rows)
	x.NOTRows(0, 2, rows)
	if x.Get(0, 2) != false || x.Get(1, 2) != true {
		t.Fatal("NOT gate incorrect")
	}
}

func TestStrictModeCatchesUninitializedOutput(t *testing.T) {
	x := New(2, 3)
	x.SetStrict(true)
	rows := x.AllRows()
	defer func() {
		if recover() == nil {
			t.Fatal("strict mode did not panic on uninitialized output")
		}
	}()
	x.NORRows(0, 1, 2, rows) // no init first
}

func TestStrictModeCatchesDoubleUse(t *testing.T) {
	x := New(1, 4)
	x.SetStrict(true)
	rows := x.AllRows()
	x.InitColumnsInRows([]int{2}, rows)
	x.NORRows(0, 1, 2, rows) // consumes the init
	defer func() {
		if recover() == nil {
			t.Fatal("strict mode did not panic on reused output without re-init")
		}
	}()
	x.NORRows(0, 1, 2, rows)
}

func TestInitIsSingleCycleForManyCells(t *testing.T) {
	x := New(100, 100)
	rows := x.AllRows()
	x.InitColumnsInRows([]int{0, 1, 2, 3, 4, 5, 6, 7}, rows)
	if x.Stats().Cycles != 1 {
		t.Fatalf("batched init took %d cycles, want 1", x.Stats().Cycles)
	}
	if x.Mat().Popcount() != 8*100 {
		t.Fatal("init did not set cells to LRS")
	}
}

func TestReadWriteRow(t *testing.T) {
	x := New(3, 5)
	v := bitmat.FromBits([]bool{true, false, true, true, false})
	x.WriteRow(1, v)
	got := x.ReadRow(1)
	if !got.Equal(v) {
		t.Fatalf("ReadRow = %s, want %s", got, v)
	}
	if x.Stats().Reads != 1 || x.Stats().Writes != 1 {
		t.Fatal("read/write stats wrong")
	}
}

func TestFlipInjectsError(t *testing.T) {
	x := New(2, 2)
	cyclesBefore := x.Stats().Cycles
	x.Flip(0, 1)
	if !x.Get(0, 1) {
		t.Fatal("flip did not change state")
	}
	if x.Stats().Cycles != cyclesBefore {
		t.Fatal("fault injection consumed a cycle")
	}
}

func TestXOR3ColsTruthTable(t *testing.T) {
	// Exhaustive 3-input truth table, one column per input combination.
	x := New(XOR3WorkRows, 8)
	for c := 0; c < 8; c++ {
		x.Set(XOR3RowA, c, c&1 != 0)
		x.Set(XOR3RowB, c, c&2 != 0)
		x.Set(XOR3RowC, c, c&4 != 0)
	}
	x.SetStrict(true)
	x.XOR3Cols(0, x.AllCols())
	for c := 0; c < 8; c++ {
		a, b, cc := c&1 != 0, c&2 != 0, c&4 != 0
		want := a != b != cc
		if x.Get(XOR3RowOut, c) != want {
			t.Fatalf("XOR3(%v,%v,%v) = %v, want %v", a, b, cc, x.Get(XOR3RowOut, c), want)
		}
	}
	// 1 init + 8 NOR cycles.
	if got := x.Stats().Cycles; got != 1+XOR3CyclesPerBit {
		t.Fatalf("XOR3 cycles = %d, want %d", got, 1+XOR3CyclesPerBit)
	}
	if got := x.Stats().NORs; got != XOR3CyclesPerBit {
		t.Fatalf("XOR3 NOR count = %d, want %d (paper: XOR3 = 8 MAGIC NORs)", got, XOR3CyclesPerBit)
	}
}

func TestXOR3ColsWideProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := 1 + rng.Intn(200)
		x := New(XOR3WorkRows, w)
		for c := 0; c < w; c++ {
			x.Set(XOR3RowA, c, rng.Intn(2) == 0)
			x.Set(XOR3RowB, c, rng.Intn(2) == 0)
			x.Set(XOR3RowC, c, rng.Intn(2) == 0)
		}
		a, b, cc := x.Mat().Row(XOR3RowA).Clone(), x.Mat().Row(XOR3RowB).Clone(), x.Mat().Row(XOR3RowC).Clone()
		x.XOR3Cols(0, x.AllCols())
		want := bitmat.NewVec(w)
		want.Xor(a, b)
		want.Xor(want, cc)
		return x.Mat().Row(XOR3RowOut).Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestXOR2ViaXOR3(t *testing.T) {
	x := New(XOR3WorkRows, 4)
	for c := 0; c < 4; c++ {
		x.Set(XOR3RowA, c, c&1 != 0)
		x.Set(XOR3RowB, c, c&2 != 0)
	}
	x.ClearRowInCols(XOR3RowC, x.AllCols())
	x.XOR2Cols(0, x.AllCols())
	for c := 0; c < 4; c++ {
		want := (c&1 != 0) != (c&2 != 0)
		if x.Get(XOR3RowOut, c) != want {
			t.Fatalf("XOR2 col %d = %v, want %v", c, x.Get(XOR3RowOut, c), want)
		}
	}
}

func TestCopyRowToRow(t *testing.T) {
	x := New(4, 50)
	rng := rand.New(rand.NewSource(9))
	x.Mat().Randomize(rng)
	src := x.Mat().Row(0).Clone()
	x.CopyRowToRow(0, 1, 2, x.AllCols())
	if !x.Mat().Row(2).Equal(src) {
		t.Fatal("CopyRowToRow did not copy")
	}
	if x.Stats().NORs != 2 {
		t.Fatalf("copy used %d NOR cycles, want 2 (double NOT)", x.Stats().NORs)
	}
}

func TestNOTRowInto(t *testing.T) {
	x := New(3, 20)
	rng := rand.New(rand.NewSource(4))
	x.Mat().Randomize(rng)
	src := x.Mat().Row(0).Clone()
	x.NOTRowInto(0, 2, x.AllCols())
	want := bitmat.NewVec(20)
	want.Not(src)
	if !x.Mat().Row(2).Equal(want) {
		t.Fatal("NOTRowInto incorrect")
	}
}

func TestTickAdvancesClockOnly(t *testing.T) {
	x := New(2, 2)
	before := x.Snapshot()
	x.Tick()
	x.Tick()
	if x.Stats().Cycles != 2 {
		t.Fatal("Tick did not advance clock")
	}
	if !x.Snapshot().Equal(before) {
		t.Fatal("Tick changed memory")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	x := New(4, 4)
	cases := []func(){
		func() { x.NORRows(0, 1, 4, x.AllRows()) },
		func() { x.NORCols(0, 1, 9, x.AllCols()) },
		func() { x.ReadRow(-1) },
		func() { x.Write(0, 4, true) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestResetStats(t *testing.T) {
	x := New(2, 2)
	x.Tick()
	x.ResetStats()
	if x.Stats().Cycles != 0 {
		t.Fatal("ResetStats failed")
	}
}
