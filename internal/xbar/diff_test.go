package xbar

import (
	"math/rand"
	"testing"

	"repro/internal/bitmat"
)

// refCrossbar is a bit-serial model of the crossbar's gate semantics,
// mirroring the original per-cell implementation. The word-parallel gate
// paths must leave the memory AND the initialization state bit-identical
// to this model after any operation sequence.
type refCrossbar struct {
	rows, cols int
	mem, init  [][]bool
}

func newRefCrossbar(rows, cols int) *refCrossbar {
	r := &refCrossbar{rows: rows, cols: cols}
	r.mem = make([][]bool, rows)
	r.init = make([][]bool, rows)
	for i := range r.mem {
		r.mem[i] = make([]bool, cols)
		r.init[i] = make([]bool, cols)
	}
	return r
}

func (r *refCrossbar) initColumnsInRows(cols []int, rows *bitmat.Vec) {
	for _, row := range rows.OnesIndices() {
		for _, c := range cols {
			r.mem[row][c] = true
			r.init[row][c] = true
		}
	}
}

func (r *refCrossbar) initRowsInCols(rowIdx []int, cols *bitmat.Vec) {
	for _, c := range cols.OnesIndices() {
		for _, row := range rowIdx {
			r.mem[row][c] = true
			r.init[row][c] = true
		}
	}
}

func (r *refCrossbar) norRows(a, b, out int, rows *bitmat.Vec) {
	for _, row := range rows.OnesIndices() {
		r.mem[row][out] = !(r.mem[row][a] || r.mem[row][b])
		r.init[row][out] = false
	}
}

func (r *refCrossbar) norCols(a, b, out int, cols *bitmat.Vec) {
	for _, c := range cols.OnesIndices() {
		r.mem[out][c] = !(r.mem[a][c] || r.mem[b][c])
		r.init[out][c] = false
	}
}

func (r *refCrossbar) clearRowInCols(row int, cols *bitmat.Vec) {
	for _, c := range cols.OnesIndices() {
		r.mem[row][c] = false
		r.init[row][c] = false
	}
}

func (r *refCrossbar) writeRow(row int, v *bitmat.Vec) {
	for c := 0; c < r.cols; c++ {
		r.mem[row][c] = v.Get(c)
		r.init[row][c] = false
	}
}

// initConsistent compares the crossbar's initialization tracking with the
// reference by probing strict-mode behavior cell by cell.
func checkState(t *testing.T, x *Crossbar, ref *refCrossbar, step int) {
	t.Helper()
	for r := 0; r < ref.rows; r++ {
		for c := 0; c < ref.cols; c++ {
			if x.Get(r, c) != ref.mem[r][c] {
				t.Fatalf("step %d: mem (%d,%d) = %v, ref %v", step, r, c, x.Get(r, c), ref.mem[r][c])
			}
		}
	}
	if got, want := x.init.Popcount(), popcount2d(ref.init); got != want {
		t.Fatalf("step %d: init popcount = %d, ref %d", step, got, want)
	}
	for r := 0; r < ref.rows; r++ {
		for c := 0; c < ref.cols; c++ {
			if x.init.Get(r, c) != ref.init[r][c] {
				t.Fatalf("step %d: init (%d,%d) = %v, ref %v", step, r, c, x.init.Get(r, c), ref.init[r][c])
			}
		}
	}
}

func popcount2d(b [][]bool) int {
	n := 0
	for _, row := range b {
		for _, v := range row {
			if v {
				n++
			}
		}
	}
	return n
}

// TestGatesMatchBitSerialReference runs a randomized operation sequence on
// a word-unaligned crossbar through both implementations and requires
// bit-exact memory and init state after every step. Masks are random
// (including empty and full), and gate operands may alias outputs.
func TestGatesMatchBitSerialReference(t *testing.T) {
	const rows, cols = 67, 131
	rng := rand.New(rand.NewSource(99))
	x := New(rows, cols)
	ref := newRefCrossbar(rows, cols)

	randRowMask := func() *bitmat.Vec {
		v := bitmat.NewVec(rows)
		for i := 0; i < rows; i++ {
			v.Set(i, rng.Intn(4) != 0)
		}
		return v
	}
	randColMask := func() *bitmat.Vec {
		v := bitmat.NewVec(cols)
		for i := 0; i < cols; i++ {
			v.Set(i, rng.Intn(4) != 0)
		}
		return v
	}

	for step := 0; step < 2000; step++ {
		switch rng.Intn(7) {
		case 0:
			idx := []int{rng.Intn(cols), rng.Intn(cols)}
			m := randRowMask()
			x.InitColumnsInRows(idx, m)
			ref.initColumnsInRows(idx, m)
		case 1:
			idx := []int{rng.Intn(rows), rng.Intn(rows)}
			m := randColMask()
			x.InitRowsInCols(idx, m)
			ref.initRowsInCols(idx, m)
		case 2:
			a, b, out := rng.Intn(cols), rng.Intn(cols), rng.Intn(cols)
			m := randRowMask()
			x.NORRows(a, b, out, m)
			ref.norRows(a, b, out, m)
		case 3:
			a, b, out := rng.Intn(rows), rng.Intn(rows), rng.Intn(rows)
			m := randColMask()
			x.NORCols(a, b, out, m)
			ref.norCols(a, b, out, m)
		case 4:
			a, out := rng.Intn(rows), rng.Intn(rows)
			m := randColMask()
			x.NOTCols(a, out, m)
			ref.norCols(a, a, out, m)
		case 5:
			r := rng.Intn(rows)
			m := randColMask()
			x.ClearRowInCols(r, m)
			ref.clearRowInCols(r, m)
		case 6:
			r := rng.Intn(rows)
			v := bitmat.NewVec(cols)
			for i := 0; i < cols; i++ {
				v.Set(i, rng.Intn(2) == 0)
			}
			x.WriteRow(r, v)
			ref.writeRow(r, v)
		}
		if step%97 == 0 || step == 1999 {
			checkState(t, x, ref, step)
		}
	}
	checkState(t, x, ref, 2000)
}

// TestGateExecutionZeroAllocs proves the satellite requirement: with
// tracing and watches disabled, every gate/init/write path performs zero
// heap allocations per operation.
func TestGateExecutionZeroAllocs(t *testing.T) {
	const n = 256
	x := New(n, n)
	rows := x.AllRows()
	cols := x.AllCols()
	v := bitmat.NewVec(n)
	v.Fill(true)
	colIdx := []int{3, 4}
	rowIdx := []int{5, 6}

	cases := map[string]func(){
		"InitColumnsInRows": func() { x.InitColumnsInRows(colIdx, rows) },
		"InitRowsInCols":    func() { x.InitRowsInCols(rowIdx, cols) },
		"NORRows":           func() { x.NORRows(1, 2, 3, rows) },
		"NOTRows":           func() { x.NOTRows(1, 3, rows) },
		"NORCols":           func() { x.NORCols(1, 2, 3, cols) },
		"NOTCols":           func() { x.NOTCols(1, 3, cols) },
		"ClearRowInCols":    func() { x.ClearRowInCols(2, cols) },
		"WriteRow":          func() { x.WriteRow(7, v) },
		"Tick":              func() { x.Tick() },
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(200, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op with tracing disabled, want 0", name, allocs)
		}
	}
}

// TestReadRowSamplesWatches covers the observability fix: a watched cell
// whose value changes must be sampled when the only subsequent
// cycle-consuming operation is a read.
func TestReadRowSamplesWatches(t *testing.T) {
	x := New(4, 4)
	x.WatchCell(1, 1)
	x.Set(1, 1, true) // drift the cell without consuming a cycle
	x.ReadRow(1)      // read-heavy schedule: only reads consume cycles

	hist := x.watch[[2]int{1, 1}]
	if len(hist) != 2 {
		t.Fatalf("watch history has %d samples, want 2 (initial + read-cycle sample)", len(hist))
	}
	if !hist[1].val {
		t.Fatal("read-cycle sample did not capture the drifted value")
	}
}
