package xbar

import "repro/internal/bitmat"

// This file provides composite MAGIC routines built from NOR/NOT gate
// cycles. The key macro is XOR3, which the paper's CMEM executes in 8
// MAGIC NOR operations using the decomposition
//
//	XOR3(a,b,c) = XNOR(XNOR(a,b), c)
//
// where XNOR(x,y) costs 4 NORs: t1=NOR(x,y); t2=NOR(x,t1); t3=NOR(y,t1);
// out=NOR(t2,t3). Two XNORs give 8 NOR cycles and 7 intermediate cells —
// with 3 inputs and 1 output that is the 11 work rows per bit that Table II
// charges each processing crossbar for (2·11·k·n).

// XOR3CyclesPerBit is the number of NOR gate cycles a MAGIC XOR3 takes.
const XOR3CyclesPerBit = 8

// XOR3WorkRows is the number of crossbar rows a column-parallel XOR3
// occupies: 3 inputs + 7 intermediates + 1 output.
const XOR3WorkRows = 11

// XOR3RowLayout names the row roles inside an 11-row processing strip.
const (
	XOR3RowA = iota // input a
	XOR3RowB        // input b
	XOR3RowC        // input c
	xor3RowT1
	xor3RowT2
	xor3RowT3
	xor3RowD // XNOR(a,b)
	xor3RowT4
	xor3RowT5
	xor3RowT6
	XOR3RowOut // XOR3(a,b,c)
)

// XOR3Cols computes out-row = XOR3(row a, row b, row c) in parallel across
// the selected columns, using the 11-row strip starting at row base. Rows
// base+XOR3RowA.. must already hold the inputs. The routine spends one
// batched initialization cycle followed by 8 NOR cycles (9 cycles total).
func (x *Crossbar) XOR3Cols(base int, cols *bitmat.Vec) {
	r := func(role int) int { return base + role }
	x.InitRowsInCols([]int{
		r(xor3RowT1), r(xor3RowT2), r(xor3RowT3), r(xor3RowD),
		r(xor3RowT4), r(xor3RowT5), r(xor3RowT6), r(XOR3RowOut),
	}, cols)

	// XNOR(a, b) -> d
	x.NORCols(r(XOR3RowA), r(XOR3RowB), r(xor3RowT1), cols)
	x.NORCols(r(XOR3RowA), r(xor3RowT1), r(xor3RowT2), cols)
	x.NORCols(r(XOR3RowB), r(xor3RowT1), r(xor3RowT3), cols)
	x.NORCols(r(xor3RowT2), r(xor3RowT3), r(xor3RowD), cols)
	// XNOR(d, c) -> out
	x.NORCols(r(xor3RowD), r(XOR3RowC), r(xor3RowT4), cols)
	x.NORCols(r(xor3RowD), r(xor3RowT4), r(xor3RowT5), cols)
	x.NORCols(r(XOR3RowC), r(xor3RowT4), r(xor3RowT6), cols)
	x.NORCols(r(xor3RowT5), r(xor3RowT6), r(XOR3RowOut), cols)
}

// XOR2Cols computes out = XOR(row a, row b) across the selected columns in
// a strip at base (uses the same 11-row layout with input c zeroed; XOR3
// with c=0 is XOR2). Callers must ensure row base+XOR3RowC is all zeros in
// the selected columns, e.g. via ClearRowInCols.
func (x *Crossbar) XOR2Cols(base int, cols *bitmat.Vec) {
	x.XOR3Cols(base, cols)
}

// ClearRowInCols force-writes zeros into row r at the selected columns via
// the write drivers (one cycle).
func (x *Crossbar) ClearRowInCols(r int, cols *bitmat.Vec) {
	x.checkRow(r)
	x.stats.Cycles++
	x.stats.Writes++
	mr, ir := x.mem.Row(r), x.init.Row(r)
	if cols.Len() == x.cols {
		mr.AndNot(mr, cols)
		ir.AndNot(ir, cols)
	} else { // short selection mask: per-bit fallback
		for c := cols.NextOne(0); c >= 0; c = cols.NextOne(c + 1) {
			mr.Set(c, false)
			ir.Set(c, false)
		}
	}
	if x.watch != nil {
		x.sampleWatches()
	}
}

// CopyRowToRow copies src row to dst row across the selected columns using
// two MAGIC NOT gates (copy = NOT(NOT(x))) through an intermediate row.
// Costs one init cycle plus two NOT cycles.
func (x *Crossbar) CopyRowToRow(src, tmp, dst int, cols *bitmat.Vec) {
	x.InitRowsInCols([]int{tmp, dst}, cols)
	x.NOTCols(src, tmp, cols)
	x.NOTCols(tmp, dst, cols)
}

// NOTRowInto computes dst = NOT(src) across the selected columns, spending
// an init cycle then the NOT cycle.
func (x *Crossbar) NOTRowInto(src, dst int, cols *bitmat.Vec) {
	x.InitRowsInCols([]int{dst}, cols)
	x.NOTCols(src, dst, cols)
}
