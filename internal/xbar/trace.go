package xbar

import (
	"fmt"
	"strings"

	"repro/internal/bitmat"
)

// OpKind labels one traced crossbar operation.
type OpKind uint8

// Trace operation kinds.
const (
	OpInit OpKind = iota
	OpNORRows
	OpNOTRows
	OpNORCols
	OpNOTCols
	OpRead
	OpWrite
	OpStall
)

// String names the op kind.
func (k OpKind) String() string {
	names := [...]string{"init", "nor-rows", "not-rows", "nor-cols",
		"not-cols", "read", "write", "stall"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// OpRecord is one entry of the operation trace.
type OpRecord struct {
	Cycle   int // clock cycle at which the operation completed
	Kind    OpKind
	A, B, O int // operand/output line indices (−1 when not applicable)
	Lines   int // number of parallel lines (gates) the op covered
}

// String renders the record compactly.
func (r OpRecord) String() string {
	switch r.Kind {
	case OpInit:
		return fmt.Sprintf("@%-6d init ×%d", r.Cycle, r.Lines)
	case OpNORRows, OpNORCols:
		return fmt.Sprintf("@%-6d %s %d,%d->%d ×%d", r.Cycle, r.Kind, r.A, r.B, r.O, r.Lines)
	case OpNOTRows, OpNOTCols:
		return fmt.Sprintf("@%-6d %s %d->%d ×%d", r.Cycle, r.Kind, r.A, r.O, r.Lines)
	default:
		return fmt.Sprintf("@%-6d %s line %d", r.Cycle, r.Kind, r.O)
	}
}

// EnableTrace starts recording operations into a bounded ring buffer of
// the given capacity (older records are dropped first). Capacity ≤ 0
// disables tracing.
func (x *Crossbar) EnableTrace(capacity int) {
	if capacity <= 0 {
		x.trace = nil
		return
	}
	x.trace = &traceRing{cap: capacity}
}

// Trace returns the recorded operations, oldest first.
func (x *Crossbar) Trace() []OpRecord {
	if x.trace == nil {
		return nil
	}
	return x.trace.records()
}

// TraceString renders the trace one record per line.
func (x *Crossbar) TraceString() string {
	var sb strings.Builder
	for _, r := range x.Trace() {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

type traceRing struct {
	cap   int
	buf   []OpRecord
	start int
}

func (t *traceRing) add(r OpRecord) {
	if len(t.buf) < t.cap {
		t.buf = append(t.buf, r)
		return
	}
	t.buf[t.start] = r
	t.start = (t.start + 1) % t.cap
}

func (t *traceRing) records() []OpRecord {
	out := make([]OpRecord, 0, len(t.buf))
	out = append(out, t.buf[t.start:]...)
	out = append(out, t.buf[:t.start]...)
	return out
}

// record appends to the trace if enabled.
func (x *Crossbar) record(kind OpKind, a, b, o int, mask *bitmat.Vec) {
	if x.trace == nil {
		return
	}
	lines := 0
	if mask != nil {
		lines = mask.Popcount()
	}
	x.trace.add(OpRecord{Cycle: x.stats.Cycles, Kind: kind, A: a, B: b, O: o, Lines: lines})
}
