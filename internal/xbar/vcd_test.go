package xbar

import (
	"strings"
	"testing"
)

func TestVCDExport(t *testing.T) {
	x := New(XOR3WorkRows, 4)
	// Drive the XOR3 macro and watch its inputs and output.
	for c := 0; c < 4; c++ {
		x.Set(XOR3RowA, c, c&1 != 0)
		x.Set(XOR3RowB, c, c&2 != 0)
	}
	x.WatchCell(XOR3RowA, 1)
	x.WatchCell(XOR3RowOut, 1)
	x.WatchCell(XOR3RowOut, 3)
	x.XOR3Cols(0, x.AllCols())

	var sb strings.Builder
	if err := x.WriteVCD(&sb, "pim"); err != nil {
		t.Fatal(err)
	}
	vcd := sb.String()
	for _, want := range []string{
		"$timescale", "$scope module pim", "$var wire 1",
		"cell_0_1", "cell_10_1", "cell_10_3", "$enddefinitions",
	} {
		if !strings.Contains(vcd, want) {
			t.Fatalf("VCD missing %q:\n%s", want, vcd)
		}
	}
	// The output cell must show at least two changes: init to 1, then the
	// final NOR writes the XOR3 value (0 for column 1: 1⊕0⊕0... column 1
	// has a=1,b=0,c=0 → XOR3=1; column 3 has a=1,b=1 → 0).
	if !strings.Contains(vcd, "#") {
		t.Fatal("no timestamps in VCD")
	}
	// Final values must match the crossbar state.
	if x.Get(XOR3RowOut, 1) != true || x.Get(XOR3RowOut, 3) != false {
		t.Fatal("XOR3 state unexpected; test premise broken")
	}
}

func TestVCDNoWatches(t *testing.T) {
	x := New(2, 2)
	var sb strings.Builder
	if err := x.WriteVCD(&sb, "m"); err == nil {
		t.Fatal("expected error with no watched cells")
	}
}

func TestWatchRecordsOnlyChanges(t *testing.T) {
	x := New(2, 2)
	x.WatchCell(0, 0)
	for i := 0; i < 10; i++ {
		x.Tick() // value never changes
	}
	if n := len(x.watch[[2]int{0, 0}]); n != 1 {
		t.Fatalf("recorded %d samples for a constant signal, want 1", n)
	}
	x.Write(0, 0, true)
	if n := len(x.watch[[2]int{0, 0}]); n != 2 {
		t.Fatalf("change not recorded (%d samples)", n)
	}
}

func TestVCDIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		id := vcdID(i)
		if seen[id] {
			t.Fatalf("duplicate VCD id %q at %d", id, i)
		}
		seen[id] = true
	}
}
