package xbar

import (
	"strings"
	"testing"
)

func TestTraceRecordsOps(t *testing.T) {
	x := New(4, 4)
	x.EnableTrace(16)
	rows := x.AllRows()
	x.InitColumnsInRows([]int{3}, rows)
	x.NORRows(0, 1, 3, rows)
	x.InitColumnsInRows([]int{2}, rows)
	x.NOTRows(0, 2, rows)
	x.ReadRow(1)

	tr := x.Trace()
	if len(tr) != 5 {
		t.Fatalf("trace has %d records, want 5", len(tr))
	}
	wantKinds := []OpKind{OpInit, OpNORRows, OpInit, OpNOTRows, OpRead}
	for i, k := range wantKinds {
		if tr[i].Kind != k {
			t.Fatalf("record %d kind = %v, want %v", i, tr[i].Kind, k)
		}
	}
	if tr[1].A != 0 || tr[1].B != 1 || tr[1].O != 3 || tr[1].Lines != 4 {
		t.Fatalf("NOR record malformed: %+v", tr[1])
	}
	// Cycles must be monotone.
	for i := 1; i < len(tr); i++ {
		if tr[i].Cycle < tr[i-1].Cycle {
			t.Fatal("trace cycles not monotone")
		}
	}
}

func TestTraceRingDropsOldest(t *testing.T) {
	x := New(2, 4)
	x.EnableTrace(3)
	rows := x.AllRows()
	for i := 0; i < 10; i++ {
		x.InitColumnsInRows([]int{3}, rows)
	}
	tr := x.Trace()
	if len(tr) != 3 {
		t.Fatalf("ring kept %d records, want 3", len(tr))
	}
	// The retained records are the newest three (cycles 8,9,10).
	if tr[0].Cycle != 8 || tr[2].Cycle != 10 {
		t.Fatalf("ring retained wrong window: %+v", tr)
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	x := New(2, 2)
	x.InitColumnsInRows([]int{0}, x.AllRows())
	if x.Trace() != nil {
		t.Fatal("trace recorded without EnableTrace")
	}
	x.EnableTrace(4)
	x.Tick()
	x.EnableTrace(0) // disable again
	x.InitColumnsInRows([]int{1}, x.AllRows())
	if x.Trace() != nil {
		t.Fatal("trace still active after disable")
	}
}

func TestTraceString(t *testing.T) {
	x := New(2, 3)
	x.EnableTrace(8)
	rows := x.AllRows()
	x.InitColumnsInRows([]int{2}, rows)
	x.NORRows(0, 1, 2, rows)
	s := x.TraceString()
	if !strings.Contains(s, "init") || !strings.Contains(s, "nor-rows 0,1->2") {
		t.Fatalf("trace rendering:\n%s", s)
	}
}

func TestOpKindString(t *testing.T) {
	if OpNORCols.String() != "nor-cols" || OpKind(99).String() == "" {
		t.Fatal("op kind names")
	}
}

func TestColumnOpsTraced(t *testing.T) {
	x := New(4, 4)
	x.EnableTrace(8)
	cols := x.AllCols()
	x.InitRowsInCols([]int{3}, cols)
	x.NORCols(0, 1, 3, cols)
	x.NOTCols(0, 2, cols) // not initialized, but strict is off
	tr := x.Trace()
	if tr[1].Kind != OpNORCols || tr[2].Kind != OpNOTCols {
		t.Fatalf("column ops not traced: %+v", tr)
	}
}
