// Package xbar simulates a memristive crossbar array executing stateful
// logic with MAGIC (Memristor-Aided loGIC) gates.
//
// A crossbar holds one bit per memristor: logic '1' is the Low Resistive
// State (LRS) and logic '0' is the High Resistive State (HRS). MAGIC NOR
// and NOT gates execute between memristors sharing a row (in-row gates,
// operand/output named by column index) or sharing a column (in-column
// gates, named by row index). The same gate executes simultaneously across
// any set of rows (columns) in a single clock cycle — the massive
// parallelism the paper's ECC scheme is built around (Fig 1).
//
// MAGIC requires output memristors to be initialized to LRS ('1') before a
// gate executes; the gate then conditionally switches the output to HRS.
// The simulator tracks initialization and, in strict mode, rejects gates
// whose outputs were not initialized — catching the class of scheduling
// bugs SIMPLER-style mappers must avoid.
package xbar

import (
	"fmt"

	"repro/internal/bitmat"
)

// Stats accumulates cycle and operation counts for a crossbar.
type Stats struct {
	Cycles    int // total clock cycles consumed
	NORs      int // NOR gate cycles (NOT counts here too: NOT(a) = NOR(a,a))
	Inits     int // initialization cycles
	Reads     int // controller read cycles
	Writes    int // controller write cycles
	GateCount int // individual gates executed (one per selected line)
}

// Crossbar is an R×C memristive crossbar array.
type Crossbar struct {
	rows, cols int
	mem        *bitmat.Mat
	init       *bitmat.Mat // which cells are initialized (LRS) and unconsumed
	strict     bool
	stats      Stats
	trace      *traceRing          // nil unless EnableTrace was called
	watch      map[[2]int][]sample // nil unless WatchCell was called

	// Scratch vectors for word-parallel gate execution; owned by the
	// crossbar so the hot paths are allocation-free. A crossbar is not
	// safe for concurrent use (it never was — every op mutates stats).
	rowScratch *bitmat.Vec // length cols: whole-row NOR/NOT result
	colFill    *bitmat.Vec // length cols: column-index fill mask
}

// New returns a crossbar with all memristors in HRS ('0'), uninitialized.
func New(rows, cols int) *Crossbar {
	return &Crossbar{
		rows:       rows,
		cols:       cols,
		mem:        bitmat.NewMat(rows, cols),
		init:       bitmat.NewMat(rows, cols),
		rowScratch: bitmat.NewVec(cols),
		colFill:    bitmat.NewVec(cols),
	}
}

// SetStrict toggles verification that every gate output was initialized to
// LRS beforehand. Strict mode panics on violations; it is meant for tests
// and scheduler validation.
func (x *Crossbar) SetStrict(b bool) { x.strict = b }

// Rows returns the number of wordlines.
func (x *Crossbar) Rows() int { return x.rows }

// Cols returns the number of bitlines.
func (x *Crossbar) Cols() int { return x.cols }

// Stats returns a copy of the accumulated statistics.
func (x *Crossbar) Stats() Stats { return x.stats }

// ResetStats zeroes the statistics counters.
func (x *Crossbar) ResetStats() { x.stats = Stats{} }

// Tick advances the clock by one cycle without performing an operation
// (used to model stalls imposed by an external controller).
func (x *Crossbar) Tick() {
	x.stats.Cycles++
	if x.watch != nil {
		x.sampleWatches()
	}
}

// Get reads the logical state of memristor (r,c) without consuming a cycle
// (observability for tests and models; controller reads use ReadRow).
func (x *Crossbar) Get(r, c int) bool { return x.mem.Get(r, c) }

// Set writes memristor (r,c) directly without consuming a cycle. Intended
// for test setup and fault injection; functional writes should go through
// Write/WriteRow.
func (x *Crossbar) Set(r, c int, b bool) { x.mem.Set(r, c, b) }

// Flip inverts memristor (r,c) in place — the primitive used by soft-error
// injection. No cycle is consumed and initialization state is unchanged,
// matching a physical state drift or particle strike.
func (x *Crossbar) Flip(r, c int) { x.mem.Flip(r, c) }

// Mat returns the live underlying bit matrix (mutations are visible).
func (x *Crossbar) Mat() *bitmat.Mat { return x.mem }

// Snapshot returns a deep copy of the memory contents.
func (x *Crossbar) Snapshot() *bitmat.Mat { return x.mem.Clone() }

// RowMask returns a fresh all-zero selection mask over rows.
func (x *Crossbar) RowMask() *bitmat.Vec { return bitmat.NewVec(x.rows) }

// ColMask returns a fresh all-zero selection mask over columns.
func (x *Crossbar) ColMask() *bitmat.Vec { return bitmat.NewVec(x.cols) }

// AllRows returns a mask selecting every row.
func (x *Crossbar) AllRows() *bitmat.Vec {
	m := x.RowMask()
	m.Fill(true)
	return m
}

// AllCols returns a mask selecting every column.
func (x *Crossbar) AllCols() *bitmat.Vec {
	m := x.ColMask()
	m.Fill(true)
	return m
}

// --- Initialization -------------------------------------------------------

// InitColumnsInRows initializes (sets to LRS, '1') the memristors at the
// given column indices in every selected row. All named cells initialize in
// parallel in a single cycle, matching MAGIC's batched initialization.
// Implemented as a masked word fill: the column indices become a fill mask
// OR-ed into every selected row.
func (x *Crossbar) InitColumnsInRows(cols []int, rows *bitmat.Vec) {
	x.stats.Cycles++
	x.stats.Inits++
	x.colFill.Zero()
	for _, c := range cols {
		x.colFill.Set(c, true)
	}
	for r := rows.NextOne(0); r >= 0; r = rows.NextOne(r + 1) {
		mr, ir := x.mem.Row(r), x.init.Row(r)
		mr.Or(mr, x.colFill)
		ir.Or(ir, x.colFill)
	}
	if x.trace != nil {
		x.record(OpInit, -1, -1, -1, rows)
	}
	if x.watch != nil {
		x.sampleWatches()
	}
}

// InitRowsInCols initializes the memristors at the given row indices in
// every selected column, in one cycle: each named row is a single masked
// word fill under the column-selection mask.
func (x *Crossbar) InitRowsInCols(rowIdx []int, cols *bitmat.Vec) {
	x.stats.Cycles++
	x.stats.Inits++
	for _, r := range rowIdx {
		x.checkRow(r)
		mr, ir := x.mem.Row(r), x.init.Row(r)
		if cols.Len() == x.cols {
			mr.Or(mr, cols)
			ir.Or(ir, cols)
		} else { // short selection mask: per-bit fallback
			for c := cols.NextOne(0); c >= 0; c = cols.NextOne(c + 1) {
				mr.Set(c, true)
				ir.Set(c, true)
			}
		}
	}
	if x.trace != nil {
		x.record(OpInit, -1, -1, -1, cols)
	}
	if x.watch != nil {
		x.sampleWatches()
	}
}

// --- In-row gates (parallel across rows, Fig 1a) ---------------------------

// NORRows executes out = NOR(a, b) within each selected row, where a, b and
// out are column indices. One clock cycle regardless of how many rows are
// selected. Each gate touches three bits of one row, so the loop walks the
// selection mask allocation-free rather than materializing an index slice.
func (x *Crossbar) NORRows(a, b, out int, rows *bitmat.Vec) {
	x.checkCol(a)
	x.checkCol(b)
	x.checkCol(out)
	x.stats.Cycles++
	x.stats.NORs++
	for r := rows.NextOne(0); r >= 0; r = rows.NextOne(r + 1) {
		x.gateRow(r, a, b, out)
	}
	if x.trace != nil {
		x.record(OpNORRows, a, b, out, rows)
	}
	if x.watch != nil {
		x.sampleWatches()
	}
}

// NOTRows executes out = NOT(a) within each selected row. In MAGIC, NOT is
// a single-input gate with the same initialized-output discipline.
func (x *Crossbar) NOTRows(a, out int, rows *bitmat.Vec) {
	x.checkCol(a)
	x.checkCol(out)
	x.stats.Cycles++
	x.stats.NORs++
	for r := rows.NextOne(0); r >= 0; r = rows.NextOne(r + 1) {
		x.gateRow(r, a, a, out)
	}
	if x.trace != nil {
		x.record(OpNOTRows, a, -1, out, rows)
	}
	if x.watch != nil {
		x.sampleWatches()
	}
}

// --- In-column gates (parallel across columns, Fig 1b) ---------------------

// NORCols executes out = NOR(a, b) within each selected column, where a, b
// and out are row indices. One clock cycle total.
//
// This is the word-parallel hot path: the whole-row NOR of rows a and b is
// computed into a scratch vector and merged into row out under the
// column-selection mask — a handful of word operations for any number of
// selected columns, mirroring the single-cycle parallelism of the gate
// itself.
func (x *Crossbar) NORCols(a, b, out int, cols *bitmat.Vec) {
	x.checkRow(a)
	x.checkRow(b)
	x.checkRow(out)
	x.stats.Cycles++
	x.stats.NORs++
	x.gateCols(a, b, out, cols)
	if x.trace != nil {
		x.record(OpNORCols, a, b, out, cols)
	}
	if x.watch != nil {
		x.sampleWatches()
	}
}

// NOTCols executes out = NOT(a) within each selected column.
func (x *Crossbar) NOTCols(a, out int, cols *bitmat.Vec) {
	x.checkRow(a)
	x.checkRow(out)
	x.stats.Cycles++
	x.stats.NORs++
	x.gateCols(a, a, out, cols)
	if x.trace != nil {
		x.record(OpNOTCols, a, -1, out, cols)
	}
	if x.watch != nil {
		x.sampleWatches()
	}
}

// gateCols executes out-row = NOR(row a, row b) in every column selected by
// cols: three whole-row word operations (NOR, masked merge, init clear)
// instead of one Get/Set round trip per selected column. NOT(a) is
// NOR(a,a). In strict mode the gate panics before mutating anything if any
// selected output cell is uninitialized.
func (x *Crossbar) gateCols(a, b, out int, cols *bitmat.Vec) {
	if cols.Len() != x.cols { // short selection mask: per-bit fallback
		for c := cols.NextOne(0); c >= 0; c = cols.NextOne(c + 1) {
			x.gate(a, c, b, c, out, c)
		}
		return
	}
	initOut := x.init.Row(out)
	if x.strict {
		// Violation mask: selected columns whose output is uninitialized.
		v := x.rowScratch
		v.AndNot(cols, initOut)
		if c := v.NextOne(0); c >= 0 {
			panic(fmt.Sprintf("xbar: gate output (%d,%d) not initialized", out, c))
		}
	}
	s := x.rowScratch
	s.Nor(x.mem.Row(a), x.mem.Row(b))
	x.mem.Row(out).MaskedMerge(s, cols)
	initOut.AndNot(initOut, cols) // outputs consumed; re-init before reuse
	x.stats.GateCount += cols.Popcount()
}

// gateRow applies one in-row NOR: within row r, out-col = NOR(a-col,
// b-col). The row vectors are looked up once and the three bit accesses go
// through them directly.
func (x *Crossbar) gateRow(r, a, b, out int) {
	mr := x.mem.Row(r)
	ir := x.init.Row(r)
	if x.strict && !ir.Get(out) {
		panic(fmt.Sprintf("xbar: gate output (%d,%d) not initialized", r, out))
	}
	mr.Set(out, !(mr.Get(a) || mr.Get(b)))
	ir.Set(out, false) // output consumed; must re-init before reuse
	x.stats.GateCount++
}

// gate applies a single NOR between (ra,ca),(rb,cb) into (ro,co).
func (x *Crossbar) gate(ra, ca, rb, cb, ro, co int) {
	if x.strict && !x.init.Get(ro, co) {
		panic(fmt.Sprintf("xbar: gate output (%d,%d) not initialized", ro, co))
	}
	va := x.mem.Get(ra, ca)
	vb := x.mem.Get(rb, cb)
	x.mem.Set(ro, co, !(va || vb))
	x.init.Set(ro, co, false) // output consumed; must re-init before reuse
	x.stats.GateCount++
}

// --- Controller access ------------------------------------------------------

// ReadRow returns a copy of row r through the sensing circuitry (one cycle).
func (x *Crossbar) ReadRow(r int) *bitmat.Vec {
	x.checkRow(r)
	x.stats.Cycles++
	x.stats.Reads++
	if x.trace != nil {
		x.record(OpRead, -1, -1, r, nil)
	}
	// Reads consume a cycle like any other operation, so watched cells
	// must be sampled here too or read-heavy schedules lose VCD samples.
	if x.watch != nil {
		x.sampleWatches()
	}
	return x.mem.Row(r).Clone()
}

// WriteRow writes v into row r through the write drivers (one cycle). The
// written cells are treated as data, not as initialized gate outputs.
func (x *Crossbar) WriteRow(r int, v *bitmat.Vec) {
	x.checkRow(r)
	x.stats.Cycles++
	x.stats.Writes++
	if x.trace != nil {
		x.record(OpWrite, -1, -1, r, nil)
	}
	x.mem.SetRow(r, v)
	x.init.Row(r).Zero()
	if x.watch != nil {
		x.sampleWatches()
	}
}

// Write stores a single bit through the write drivers (one cycle).
func (x *Crossbar) Write(r, c int, b bool) {
	x.checkRow(r)
	x.checkCol(c)
	x.stats.Cycles++
	x.stats.Writes++
	x.mem.Set(r, c, b)
	x.init.Set(r, c, false)
	if x.watch != nil {
		x.sampleWatches()
	}
}

func (x *Crossbar) checkRow(r int) {
	if r < 0 || r >= x.rows {
		panic(fmt.Sprintf("xbar: row %d out of range [0,%d)", r, x.rows))
	}
}

func (x *Crossbar) checkCol(c int) {
	if c < 0 || c >= x.cols {
		panic(fmt.Sprintf("xbar: column %d out of range [0,%d)", c, x.cols))
	}
}
