// Package netfleet scales the serving layer past one process: a fleet of
// node processes (cmd/served), each owning a contiguous bank shard of one
// mmpu.Organization, behind a client-side router with deterministic
// bank→node routing (mmpu.NodeMap), request batching and pipelining per
// connection, and per-node backpressure. On top of the data plane, nodes
// run a PraSLE-style self-stabilizing election (internal/election) that
// rotates fleet-wide scrub ownership: the leader grants one
// crossbar-scrub epoch per round, and a node crash/rejoin converges back
// to single-ownership without double-scrubbing.
//
// # Wire protocol
//
// One TCP connection carries length-prefixed frames:
//
//	uint32 LE  frame length (type + seq + payload)
//	uint8      message type
//	uint64 LE  sequence number (echoed in the response; 0 for one-way)
//	...        payload
//
// Request/response batches — the hot path — use a fixed binary layout;
// control messages (hello, snapshot, stats, gossip, grant) are JSON, so
// they stay debuggable and can grow fields without a version dance.
// Responses may arrive out of order: the sequence number, not arrival
// order, matches them to callers — that is what per-connection
// pipelining rides on.
package netfleet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/pmem"
	"repro/internal/serve"
)

// Message types.
const (
	msgHello        = 1  // JSON hello → msgHelloResp
	msgHelloResp    = 2  // JSON hello (the node's view)
	msgBatch        = 3  // binary request batch → msgBatchResp
	msgBatchResp    = 4  // binary response batch
	msgSnapshotReq  = 5  // empty → msgSnapshotResp
	msgSnapshotResp = 6  // JSON telemetry.WireSnapshot
	msgStatsReq     = 7  // empty → msgStatsResp
	msgStatsResp    = 8  // JSON NodeStats
	msgGossip       = 9  // JSON gossipMsg (one-way, per election round)
	msgGrant        = 10 // JSON grantMsg (one-way, leader → crossbar owner)
	msgErr          = 11 // JSON wireError (terminal failure of the request)
)

// maxFrame bounds a frame's length: garbage on the wire must fail fast,
// not allocate gigabytes. 1MiB fits ~57k batched requests — far above
// any sane batch size.
const maxFrame = 1 << 20

// maxBatch bounds the requests per batch frame.
const maxBatch = 1 << 14

// frame header: length prefix excluded.
const headerLen = 1 + 8

// writeFrame writes one frame. Callers serialize writes per connection.
func writeFrame(w io.Writer, typ byte, seq uint64, payload []byte) error {
	if len(payload) > maxFrame-headerLen {
		return fmt.Errorf("netfleet: frame payload %d exceeds %d", len(payload), maxFrame-headerLen)
	}
	buf := make([]byte, 4+headerLen+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(headerLen+len(payload)))
	buf[4] = typ
	binary.LittleEndian.PutUint64(buf[5:], seq)
	copy(buf[4+headerLen:], payload)
	_, err := w.Write(buf)
	return err
}

// readFrame reads one frame, rejecting oversized or truncated input.
func readFrame(r io.Reader) (typ byte, seq uint64, payload []byte, err error) {
	var lenBuf [4]byte
	if _, err = io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n < headerLen || n > maxFrame {
		return 0, 0, nil, fmt.Errorf("netfleet: frame length %d outside [%d,%d]", n, headerLen, maxFrame)
	}
	buf := make([]byte, n)
	if _, err = io.ReadFull(r, buf); err != nil {
		return 0, 0, nil, err
	}
	return buf[0], binary.LittleEndian.Uint64(buf[1:9]), buf[headerLen:], nil
}

// Request batch layout: uint32 count, then per request
// uint8 op | uint64 addr | uint8 width | uint64 data — 18 bytes each.
const reqSize = 1 + 8 + 1 + 8

// encodeBatch renders requests into a batch payload. OpCompute does not
// cross the wire: compute plans are process-local pointers, and the fleet
// serves memory traffic — the router rejects compute requests with a
// typed error before they reach here.
func encodeBatch(reqs []serve.Request) ([]byte, error) {
	if len(reqs) > maxBatch {
		return nil, fmt.Errorf("netfleet: batch of %d exceeds %d", len(reqs), maxBatch)
	}
	buf := make([]byte, 4+reqSize*len(reqs))
	binary.LittleEndian.PutUint32(buf, uint32(len(reqs)))
	off := 4
	for _, r := range reqs {
		switch r.Op {
		case serve.OpRead, serve.OpWrite:
		default:
			return nil, fmt.Errorf("netfleet: op %d not transportable", r.Op)
		}
		if r.Width < 0 || r.Width > 255 {
			return nil, fmt.Errorf("netfleet: width %d not transportable", r.Width)
		}
		buf[off] = byte(r.Op)
		binary.LittleEndian.PutUint64(buf[off+1:], uint64(r.Addr))
		buf[off+9] = byte(r.Width)
		binary.LittleEndian.PutUint64(buf[off+10:], r.Data)
		off += reqSize
	}
	return buf, nil
}

// decodeBatch parses a batch payload.
func decodeBatch(b []byte) ([]serve.Request, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("netfleet: batch truncated at %d bytes", len(b))
	}
	n := binary.LittleEndian.Uint32(b)
	if n > maxBatch {
		return nil, fmt.Errorf("netfleet: batch of %d exceeds %d", n, maxBatch)
	}
	if len(b) != 4+int(n)*reqSize {
		return nil, fmt.Errorf("netfleet: batch of %d wants %d bytes, got %d", n, 4+int(n)*reqSize, len(b))
	}
	reqs := make([]serve.Request, n)
	off := 4
	for i := range reqs {
		op := serve.OpKind(b[off])
		if op != serve.OpRead && op != serve.OpWrite {
			return nil, fmt.Errorf("netfleet: request %d has op %d", i, op)
		}
		reqs[i] = serve.Request{
			Op:    op,
			Addr:  int64(binary.LittleEndian.Uint64(b[off+1:])),
			Width: int(b[off+9]),
			Data:  binary.LittleEndian.Uint64(b[off+10:]),
		}
		off += reqSize
	}
	return reqs, nil
}

// Response error codes. The wire carries a code, not a Go error; the
// client rehydrates the matching typed error so errors.Is works across
// the network the way it does in-process.
const (
	codeOK byte = iota
	codeRange
	codeSpan
	codeClosed
	codeOther
)

// Response batch layout: uint32 count, then per response
// uint8 code | uint64 data | uint16 msgLen | msg — the message is empty
// except for codeOther, which carries the error text verbatim.
func encodeResponses(resps []serve.Response) ([]byte, error) {
	size := 4
	msgs := make([]string, len(resps))
	for i, r := range resps {
		size += 1 + 8 + 2
		if r.Err != nil && codeFor(r.Err) == codeOther {
			msg := r.Err.Error()
			if len(msg) > 1<<12 {
				msg = msg[:1<<12]
			}
			msgs[i] = msg
			size += len(msg)
		}
	}
	if size > maxFrame-headerLen {
		return nil, fmt.Errorf("netfleet: response batch of %d bytes exceeds frame limit", size)
	}
	buf := make([]byte, size)
	binary.LittleEndian.PutUint32(buf, uint32(len(resps)))
	off := 4
	for i, r := range resps {
		code := codeOK
		if r.Err != nil {
			code = codeFor(r.Err)
		}
		buf[off] = code
		binary.LittleEndian.PutUint64(buf[off+1:], r.Data)
		binary.LittleEndian.PutUint16(buf[off+9:], uint16(len(msgs[i])))
		copy(buf[off+11:], msgs[i])
		off += 11 + len(msgs[i])
	}
	return buf, nil
}

// codeFor maps a serving error onto its wire code.
func codeFor(err error) byte {
	switch {
	case errors.Is(err, pmem.ErrRange):
		return codeRange
	case errors.Is(err, pmem.ErrSpan):
		return codeSpan
	case errors.Is(err, serve.ErrServerClosed):
		return codeClosed
	default:
		return codeOther
	}
}

// errFor is the client-side inverse of codeFor: range/span/closed
// responses come back as the same sentinel errors in-process callers
// match on.
func errFor(code byte, msg string) error {
	switch code {
	case codeOK:
		return nil
	case codeRange:
		return fmt.Errorf("netfleet: remote: %w", pmem.ErrRange)
	case codeSpan:
		return fmt.Errorf("netfleet: remote: %w", pmem.ErrSpan)
	case codeClosed:
		return fmt.Errorf("netfleet: remote: %w", serve.ErrServerClosed)
	default:
		if msg == "" {
			msg = "unknown remote error"
		}
		return fmt.Errorf("netfleet: remote: %s", msg)
	}
}

// decodeResponses parses a response batch payload.
func decodeResponses(b []byte) ([]serve.Response, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("netfleet: response batch truncated at %d bytes", len(b))
	}
	n := binary.LittleEndian.Uint32(b)
	if n > maxBatch {
		return nil, fmt.Errorf("netfleet: response batch of %d exceeds %d", n, maxBatch)
	}
	resps := make([]serve.Response, 0, n)
	off := 4
	for i := uint32(0); i < n; i++ {
		if off+11 > len(b) {
			return nil, fmt.Errorf("netfleet: response %d truncated", i)
		}
		code := b[off]
		data := binary.LittleEndian.Uint64(b[off+1:])
		msgLen := int(binary.LittleEndian.Uint16(b[off+9:]))
		off += 11
		if off+msgLen > len(b) {
			return nil, fmt.Errorf("netfleet: response %d message truncated", i)
		}
		msg := string(b[off : off+msgLen])
		off += msgLen
		resps = append(resps, serve.Response{Data: data, Err: errFor(code, msg)})
	}
	if off != len(b) {
		return nil, fmt.Errorf("netfleet: %d trailing bytes after %d responses", len(b)-off, n)
	}
	return resps, nil
}

// hello is the connection preamble: both sides state the fleet shape they
// were configured with, and the client refuses a node whose view
// disagrees — a mis-started fleet fails loudly at dial time instead of
// silently routing to the wrong banks.
type hello struct {
	Node    int   `json:"node"`  // responding node's index
	Nodes   int   `json:"nodes"` // fleet size
	N       int   `json:"n"`     // crossbar side
	Banks   int   `json:"banks"`
	PerBank int   `json:"perbank"`
	BankLo  int   `json:"bank_lo"`
	BankHi  int   `json:"bank_hi"`
	Epoch   int64 `json:"epoch"` // rotation epoch at response time
}

// wireError is the JSON payload of msgErr.
type wireError struct {
	Error string `json:"error"`
}
