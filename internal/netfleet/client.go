package netfleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/serve"
	"repro/internal/telemetry"
)

// ErrFleetClosed reports an operation on a closed Fleet. It mirrors
// serve.ErrServerClosed's discipline: a racing call either completes
// before the close or returns this error.
var ErrFleetClosed = errors.New("netfleet: fleet closed")

// ErrNodeUnavailable reports that a node stayed unreachable past the
// retry deadline. Transient failures — a node restarting, a dropped
// connection — are retried with backoff and surface as latency, not as
// this error; only a node down for the whole deadline produces it.
var ErrNodeUnavailable = errors.New("netfleet: node unavailable")

// ErrNotTransportable reports a request the wire cannot carry (compute
// plans are process-local pointers; the fleet serves memory traffic).
var ErrNotTransportable = errors.New("netfleet: request not transportable")

// wireResp is one matched response frame or the connection failure that
// preempted it.
type wireResp struct {
	typ     byte
	payload []byte
	err     error
}

// liveConn is one established connection: a shared reader matching
// responses to callers by sequence number, so any number of frames may
// be in flight (pipelining), with completion order free.
type liveConn struct {
	conn net.Conn
	wmu  sync.Mutex // serializes frame writes

	pmu     sync.Mutex
	pending map[uint64]chan wireResp
	dead    bool
	reason  error
}

func (lc *liveConn) register(seq uint64) (chan wireResp, error) {
	lc.pmu.Lock()
	defer lc.pmu.Unlock()
	if lc.dead {
		return nil, lc.reason
	}
	ch := make(chan wireResp, 1)
	lc.pending[seq] = ch
	return ch, nil
}

func (lc *liveConn) deliver(seq uint64, typ byte, payload []byte) {
	lc.pmu.Lock()
	ch := lc.pending[seq]
	delete(lc.pending, seq)
	lc.pmu.Unlock()
	if ch != nil {
		ch <- wireResp{typ: typ, payload: payload}
	}
}

// fail kills the connection and answers every in-flight caller with err;
// callers then retry on a fresh connection (reads and writes are
// idempotent, so re-sending is safe).
func (lc *liveConn) fail(err error) {
	lc.pmu.Lock()
	if lc.dead {
		lc.pmu.Unlock()
		return
	}
	lc.dead = true
	lc.reason = err
	pending := lc.pending
	lc.pending = nil
	lc.pmu.Unlock()
	_ = lc.conn.Close()
	for _, ch := range pending {
		ch <- wireResp{err: err}
	}
}

func (lc *liveConn) isDead() bool {
	lc.pmu.Lock()
	defer lc.pmu.Unlock()
	return lc.dead
}

// connOpts are the per-node transport knobs, defaulted by FleetConfig.
type connOpts struct {
	window        int
	dialTimeout   time.Duration
	callTimeout   time.Duration
	retryDeadline time.Duration
}

// nodeConn is the client's handle on one node: a (re)dialed connection,
// a window semaphore bounding in-flight frames (per-node backpressure —
// a slow node queues its own callers without starving the others), and
// the retry/backoff loop that turns node restarts into latency.
type nodeConn struct {
	addr   string
	opts   connOpts
	window chan struct{}

	mu     sync.Mutex
	lc     *liveConn
	seq    uint64
	closed bool
}

func newNodeConn(addr string, opts connOpts) *nodeConn {
	return &nodeConn{addr: addr, opts: opts, window: make(chan struct{}, opts.window)}
}

// live returns the current connection, dialing if needed, and the
// sequence number allotted to the caller's frame.
func (c *nodeConn) live() (*liveConn, uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, 0, ErrFleetClosed
	}
	if c.lc == nil || c.lc.isDead() {
		conn, err := net.DialTimeout("tcp", c.addr, c.opts.dialTimeout)
		if err != nil {
			return nil, 0, err
		}
		lc := &liveConn{conn: conn, pending: make(map[uint64]chan wireResp)}
		c.lc = lc
		go c.readLoop(lc)
	}
	c.seq++
	return c.lc, c.seq, nil
}

func (c *nodeConn) readLoop(lc *liveConn) {
	for {
		typ, seq, payload, err := readFrame(lc.conn)
		if err != nil {
			lc.fail(fmt.Errorf("netfleet: connection to %s lost: %w", c.addr, err))
			return
		}
		lc.deliver(seq, typ, payload)
	}
}

// attempt sends one frame and waits for its response on the current
// connection. Any transport failure is returned for the caller to retry.
func (c *nodeConn) attempt(typ byte, payload []byte) (byte, []byte, error) {
	lc, seq, err := c.live()
	if err != nil {
		return 0, nil, err
	}
	ch, err := lc.register(seq)
	if err != nil {
		return 0, nil, err
	}
	lc.wmu.Lock()
	err = writeFrame(lc.conn, typ, seq, payload)
	lc.wmu.Unlock()
	if err != nil {
		err = fmt.Errorf("netfleet: write to %s: %w", c.addr, err)
		lc.fail(err)
		return 0, nil, err
	}
	t := time.NewTimer(c.opts.callTimeout)
	defer t.Stop()
	select {
	case r := <-ch:
		if r.err != nil {
			return 0, nil, r.err
		}
		return r.typ, r.payload, nil
	case <-t.C:
		err := fmt.Errorf("netfleet: %s did not answer within %s", c.addr, c.opts.callTimeout)
		lc.fail(err)
		return 0, nil, err
	}
}

// call sends one frame with retry: transient transport failures back off
// exponentially (2ms doubling, 250ms cap) until the retry deadline, then
// surface as ErrNodeUnavailable. The window semaphore is held across the
// whole call, including retries — a struggling node is never hammered by
// more than `window` concurrent callers.
func (c *nodeConn) call(typ byte, payload []byte) (byte, []byte, error) {
	c.window <- struct{}{}
	defer func() { <-c.window }()
	deadline := time.Now().Add(c.opts.retryDeadline)
	backoff := 2 * time.Millisecond
	var lastErr error
	for {
		rtyp, rp, err := c.attempt(typ, payload)
		if err == nil {
			return rtyp, rp, nil
		}
		if errors.Is(err, ErrFleetClosed) {
			return 0, nil, err
		}
		lastErr = err
		if time.Now().Add(backoff).After(deadline) {
			return 0, nil, fmt.Errorf("%w: %s: %v", ErrNodeUnavailable, c.addr, lastErr)
		}
		time.Sleep(backoff)
		backoff *= 2
		if backoff > 250*time.Millisecond {
			backoff = 250 * time.Millisecond
		}
	}
}

// expect unwraps a call into the expected response type, decoding a
// server-reported msgErr (deterministic, not retried) into an error.
func (c *nodeConn) expect(typ byte, payload []byte, want byte) ([]byte, error) {
	rtyp, rp, err := c.call(typ, payload)
	if err != nil {
		return nil, err
	}
	if rtyp == msgErr {
		var we wireError
		if json.Unmarshal(rp, &we) == nil && we.Error != "" {
			return nil, fmt.Errorf("netfleet: remote: %s", we.Error)
		}
		return nil, errors.New("netfleet: remote error")
	}
	if rtyp != want {
		return nil, fmt.Errorf("netfleet: %s answered type %d, want %d", c.addr, rtyp, want)
	}
	return rp, nil
}

// batch executes one request batch on the node.
func (c *nodeConn) batch(reqs []serve.Request) ([]serve.Response, error) {
	payload, err := encodeBatch(reqs)
	if err != nil {
		return nil, err
	}
	rp, err := c.expect(msgBatch, payload, msgBatchResp)
	if err != nil {
		return nil, err
	}
	resps, err := decodeResponses(rp)
	if err != nil {
		return nil, err
	}
	if len(resps) != len(reqs) {
		return nil, fmt.Errorf("netfleet: %d responses for %d requests", len(resps), len(reqs))
	}
	return resps, nil
}

// hello performs the geometry handshake.
func (c *nodeConn) hello() (hello, error) {
	var h hello
	rp, err := c.expect(msgHello, []byte("{}"), msgHelloResp)
	if err != nil {
		return h, err
	}
	if err := json.Unmarshal(rp, &h); err != nil {
		return h, fmt.Errorf("netfleet: bad hello from %s: %w", c.addr, err)
	}
	return h, nil
}

// snapshot fetches the node's telemetry snapshot.
func (c *nodeConn) snapshot() (telemetry.Snapshot, error) {
	rp, err := c.expect(msgSnapshotReq, nil, msgSnapshotResp)
	if err != nil {
		return telemetry.Snapshot{}, err
	}
	var w telemetry.WireSnapshot
	if err := json.Unmarshal(rp, &w); err != nil {
		return telemetry.Snapshot{}, fmt.Errorf("netfleet: bad snapshot from %s: %w", c.addr, err)
	}
	return w.Snapshot(), nil
}

// stats fetches the node's introspection document.
func (c *nodeConn) stats() (NodeStats, error) {
	var s NodeStats
	rp, err := c.expect(msgStatsReq, nil, msgStatsResp)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(rp, &s); err != nil {
		return s, fmt.Errorf("netfleet: bad stats from %s: %w", c.addr, err)
	}
	return s, nil
}

// close fails in-flight calls and refuses new ones.
func (c *nodeConn) close() {
	c.mu.Lock()
	c.closed = true
	lc := c.lc
	c.lc = nil
	c.mu.Unlock()
	if lc != nil {
		lc.fail(ErrFleetClosed)
	}
}
