package netfleet

import (
	"sync"

	"repro/internal/election"
)

// gossipMsg is the per-round election broadcast, carrying the sender's
// (min, leader) pair plus the highest rotation epoch it has seen — the
// piggyback that re-synchronizes epoch counters across leader failover
// and node rejoin.
type gossipMsg struct {
	election.Message
	Epoch int64 `json:"epoch"`
}

// grantMsg assigns one scrub epoch: the leader names the epoch and the
// global crossbar it owns (Xbar = Epoch mod crossbar count — the mapping
// is deterministic, so a re-delivered or duplicated grant re-targets the
// same crossbar and execution stays idempotent).
type grantMsg struct {
	From  int64 `json:"from"`
	Epoch int64 `json:"epoch"`
	Xbar  int   `json:"xbar"` // global crossbar id (mmpu.CrossbarID order)
}

// GrantRec is one executed scrub grant, kept for introspection and for
// the crash/rejoin safety tests: collecting every node's log and
// asserting epoch uniqueness is the no-double-scrub proof.
type GrantRec struct {
	Epoch int64 `json:"epoch"`
	Xbar  int   `json:"xbar"`
}

// rotationLog caps the in-memory grant history.
const rotationLog = 4096

// rotation is the node's scrub-rotation state: the election state machine
// plus the epoch bookkeeping layered on it.
//
// Safety is deliberately local and unconditional: a node executes a grant
// only when its epoch exceeds everything the node has executed or
// adopted, whoever sent it. The election provides liveness and fairness —
// a single stable leader advancing one epoch per round — while transient
// dual leadership during stabilization can at worst produce duplicate
// grants that the monotone epoch check drops. A rejoining node adopts the
// first epoch it hears as its floor before executing anything, so grants
// from before its crash cannot replay. The one window this leaves open is
// a simultaneous crash of the granting leader and the grantee before any
// third node hears the epoch; the re-executed scrub is idempotent
// (documented in DESIGN.md E15).
type rotation struct {
	mu     sync.Mutex
	st     *election.State
	solo   bool  // single-node fleet: no gossip will ever arrive
	epoch  int64 // highest epoch seen fleet-wide (leader: last granted)
	last   int64 // highest epoch executed or adopted as floor
	synced bool  // floor adopted from first peer contact
	stable int   // consecutive rounds of self-leadership
	log    []GrantRec
}

func newRotation(id int64, k int, solo bool) *rotation {
	return &rotation{st: election.New(id, k), solo: solo}
}

// observe folds one received gossip message in.
func (r *rotation) observe(g gossipMsg) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.st.Observe(g.Message)
	if g.Epoch > r.epoch {
		r.epoch = g.Epoch
	}
	if !r.synced {
		// First contact after boot/rejoin: everything up to the fleet's
		// current epoch happened without us — never execute below it.
		if g.Epoch > r.last {
			r.last = g.Epoch
		}
		r.synced = true
	}
}

// tick advances one election round. It returns the gossip to broadcast
// and, when this node is the stable leader, the grant to issue this
// round. Requiring two consecutive leadership rounds before granting
// damps the transient dual-leader window while the election stabilizes.
//
// In a multi-node fleet a node additionally may not grant until it has
// synced its epoch floor from at least one gossip message: a rejoining
// minimum-ID node boots believing itself leader with epoch 0, and
// without the sync gate it could re-grant (and, on its own shard,
// re-execute) epochs the fleet already scrubbed before its first gossip
// arrives. Liveness cost: a node rejoining an otherwise-dead fleet
// never scrubs — safety over liveness, documented in DESIGN.md E15.
func (r *rotation) tick(totalXbars int) (gossipMsg, *grantMsg) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.st.Tick()
	if r.st.IsLeader() {
		r.stable++
	} else {
		r.stable = 0
	}
	var g *grantMsg
	if r.st.IsLeader() && r.stable >= 2 && (r.synced || r.solo) && totalXbars > 0 {
		r.epoch++
		g = &grantMsg{From: r.st.ID(), Epoch: r.epoch, Xbar: int(r.epoch % int64(totalXbars))}
	}
	return gossipMsg{Message: m, Epoch: r.epoch}, g
}

// admit decides whether a grant executes: strictly monotone epochs only.
// The caller performs the scrub after a true return — the decision and
// the bookkeeping are atomic, so two racing grants can never both pass.
func (r *rotation) admit(g grantMsg) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g.Epoch <= r.last {
		return false
	}
	r.last = g.Epoch
	if g.Epoch > r.epoch {
		r.epoch = g.Epoch
	}
	r.log = append(r.log, GrantRec{Epoch: g.Epoch, Xbar: g.Xbar})
	if len(r.log) > rotationLog {
		r.log = r.log[len(r.log)-rotationLog:]
	}
	return true
}

// snapshot returns the rotation's introspection state.
func (r *rotation) snapshot() (leader int64, epoch int64, isLeader bool, log []GrantRec) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.st.Leader(), r.epoch, r.st.IsLeader(), append([]GrantRec(nil), r.log...)
}
