package netfleet

import (
	"encoding/json"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"repro/internal/election"
	"repro/internal/mmpu"
	"repro/internal/pmem"
	"repro/internal/repair"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

// NodeConfig sizes one fleet node: which shard of the global organization
// it owns, how to reach its peers, and the serving knobs threaded through
// from the single-process layer (-ecc, -repair, -admit, -workers all keep
// their meaning per node).
type NodeConfig struct {
	Org   mmpu.Organization // the GLOBAL geometry, identical fleet-wide
	Nodes int               // fleet size
	Index int               // this node's index in [0, Nodes)

	// Addr is the listen address. Tests that need a kernel-assigned port
	// may pass an existing Listener instead; Addr is then ignored.
	Addr     string
	Listener net.Listener
	// Peers holds every node's address, indexed by node; the entry at
	// Index is this node itself (ignored for sends). Election gossip and
	// scrub grants flow over these links.
	Peers []string

	// Memory configuration, as in pmem.Config / the shared CLI flags.
	M, K   int
	ECC    bool
	Scheme string
	Repair repair.Config

	// Serving knobs (serve.Config semantics, per node).
	Workers      int
	QueueDepth   int
	BatchSize    int
	ScrubEvery   int // node-local scrub admission; 0 leaves scrubbing to the fleet rotation
	ComputeAdmit int64

	// Round is the election round period (default 25ms); ElectionK the
	// hearsay lease in rounds (default election.DefaultK).
	Round     time.Duration
	ElectionK int

	// ChannelNs models the node's memory channel: every served request
	// occupies the channel for this many wall nanoseconds, serialized
	// node-wide — the live-server analogue of replay's virtual service
	// clocks. Per-node throughput is then device-bound rather than
	// host-bound, which is what makes fleet scaling measurable (and
	// reproducible) on any host. 0 serves as fast as the host allows.
	ChannelNs int64

	// Telemetry receives the node's series; nil creates a private
	// registry — a network node is always introspectable.
	Telemetry *telemetry.Registry
}

// NodeStats is the introspection document a node serves over msgStatsReq.
type NodeStats struct {
	Node     int   `json:"node"`
	BankLo   int   `json:"bank_lo"`
	BankHi   int   `json:"bank_hi"`
	Leader   int64 `json:"leader"`
	Epoch    int64 `json:"epoch"`
	IsLeader bool  `json:"is_leader"`

	Requests    int64 `json:"requests"`
	Batches     int64 `json:"batches"`
	Scrubs      int64 `json:"scrubs"`
	StaleGrants int64 `json:"stale_grants"`

	// Grants is the node's executed-scrub log (epoch, crossbar) — the
	// evidence the no-double-scrub assertions read.
	Grants []GrantRec `json:"grants,omitempty"`
}

// peerLink is a lazily dialed, best-effort, one-way link for gossip and
// grants. Send failures drop the message and back off: the election is
// built to survive lost rounds, so the link never blocks a round on a
// dead peer.
type peerLink struct {
	addr    string
	timeout time.Duration

	mu        sync.Mutex
	conn      net.Conn
	failUntil time.Time
}

func (p *peerLink) send(typ byte, payload []byte) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Now()
	if p.conn == nil {
		if now.Before(p.failUntil) {
			return false
		}
		c, err := net.DialTimeout("tcp", p.addr, p.timeout)
		if err != nil {
			p.failUntil = now.Add(4 * p.timeout)
			return false
		}
		p.conn = c
	}
	_ = p.conn.SetWriteDeadline(now.Add(p.timeout))
	if err := writeFrame(p.conn, typ, 0, payload); err != nil {
		_ = p.conn.Close()
		p.conn = nil
		p.failUntil = now.Add(4 * p.timeout)
		return false
	}
	return true
}

func (p *peerLink) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn != nil {
		_ = p.conn.Close()
		p.conn = nil
	}
}

// pacer enforces ChannelNs: one schedule clock per node, advanced by
// every served batch, so aggregate service never outruns the modeled
// channel no matter how many connections or workers are active.
type pacer struct {
	perReq time.Duration
	mu     sync.Mutex
	next   time.Time
}

func (p *pacer) charge(n int) {
	if p == nil || p.perReq <= 0 || n <= 0 {
		return
	}
	p.mu.Lock()
	now := time.Now()
	if p.next.Before(now) {
		p.next = now
	}
	p.next = p.next.Add(time.Duration(n) * p.perReq)
	d := p.next.Sub(now)
	p.mu.Unlock()
	time.Sleep(d)
}

// Node is one running shard server.
type Node struct {
	cfg  NodeConfig
	nm   mmpu.NodeMap
	lo   int // first owned bank (global index)
	hi   int
	mem  *pmem.Memory
	srv  *serve.Server
	reg  *telemetry.Registry
	ln   net.Listener
	rot  *rotation
	pace *pacer

	peers []*peerLink

	reads, writes, batches  *telemetry.Counter
	scrubs, stale, grantsRx *telemetry.Counter
	gossipRx, gossipTx      *telemetry.Counter
	scrubCorr, scrubUncorr  *telemetry.Counter

	wg    sync.WaitGroup
	done  chan struct{}
	mu    sync.Mutex
	conns map[net.Conn]struct{}
	open  bool
}

// NewNode builds the shard memory, starts the serve workers, the
// listener, and the election loop.
func NewNode(cfg NodeConfig) (*Node, error) {
	if err := cfg.Org.Validate(); err != nil {
		return nil, err
	}
	if cfg.Nodes <= 0 || cfg.Index < 0 || cfg.Index >= cfg.Nodes {
		return nil, fmt.Errorf("netfleet: node %d of %d out of range", cfg.Index, cfg.Nodes)
	}
	if len(cfg.Peers) != 0 && len(cfg.Peers) != cfg.Nodes {
		return nil, fmt.Errorf("netfleet: %d peer addresses for %d nodes", len(cfg.Peers), cfg.Nodes)
	}
	if cfg.Round <= 0 {
		cfg.Round = 25 * time.Millisecond
	}
	nm := cfg.Org.ShardNodes(cfg.Nodes)
	if nm.Nodes() != cfg.Nodes {
		return nil, fmt.Errorf("netfleet: %d nodes over %d banks leaves empty shards", cfg.Nodes, cfg.Org.Banks)
	}
	lo, hi := nm.Range(cfg.Index)
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.New()
	}
	mem, err := pmem.New(pmem.Config{
		Org: nm.LocalOrg(cfg.Index), M: cfg.M, K: cfg.K,
		ECCEnabled: cfg.ECC, Scheme: cfg.Scheme, Repair: cfg.Repair,
	})
	if err != nil {
		return nil, err
	}
	mem.Instrument(reg)
	srv, err := serve.New(serve.Config{
		Mem: mem, Workers: cfg.Workers, QueueDepth: cfg.QueueDepth,
		BatchSize: cfg.BatchSize, ScrubEvery: cfg.ScrubEvery,
		ComputeAdmit: cfg.ComputeAdmit, Telemetry: reg,
	})
	if err != nil {
		return nil, err
	}
	ln := cfg.Listener
	if ln == nil {
		ln, err = net.Listen("tcp", cfg.Addr)
		if err != nil {
			srv.Close()
			return nil, err
		}
	}
	k := cfg.ElectionK
	if k <= 0 {
		k = election.DefaultK
	}
	n := &Node{
		cfg: cfg, nm: nm, lo: lo, hi: hi, mem: mem, srv: srv, reg: reg, ln: ln,
		rot:  newRotation(int64(cfg.Index), k, cfg.Nodes == 1),
		pace: &pacer{perReq: time.Duration(cfg.ChannelNs)},
		done: make(chan struct{}), conns: make(map[net.Conn]struct{}), open: true,
	}
	n.reads = reg.Counter("netfleet_requests_total", "node", strconv.Itoa(cfg.Index), "op", "read")
	n.writes = reg.Counter("netfleet_requests_total", "node", strconv.Itoa(cfg.Index), "op", "write")
	n.batches = reg.Counter("netfleet_batches_total", "node", strconv.Itoa(cfg.Index))
	n.scrubs = reg.Counter("netfleet_scrubs_total", "node", strconv.Itoa(cfg.Index))
	n.stale = reg.Counter("netfleet_scrub_stale_total", "node", strconv.Itoa(cfg.Index))
	n.grantsRx = reg.Counter("netfleet_grants_rx_total", "node", strconv.Itoa(cfg.Index))
	n.gossipRx = reg.Counter("netfleet_gossip_rx_total", "node", strconv.Itoa(cfg.Index))
	n.gossipTx = reg.Counter("netfleet_gossip_tx_total", "node", strconv.Itoa(cfg.Index))
	n.scrubCorr = reg.Counter("netfleet_scrub_corrected_total", "node", strconv.Itoa(cfg.Index))
	n.scrubUncorr = reg.Counter("netfleet_scrub_uncorrectable_total", "node", strconv.Itoa(cfg.Index))
	peerTimeout := cfg.Round / 2
	if peerTimeout < 5*time.Millisecond {
		peerTimeout = 5 * time.Millisecond
	}
	for i, addr := range cfg.Peers {
		if i == cfg.Index {
			n.peers = append(n.peers, nil)
			continue
		}
		n.peers = append(n.peers, &peerLink{addr: addr, timeout: peerTimeout})
	}
	n.wg.Add(2)
	go n.acceptLoop()
	go n.electionLoop()
	return n, nil
}

// Addr returns the bound listen address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Registry returns the node's telemetry registry.
func (n *Node) Registry() *telemetry.Registry { return n.reg }

// Banks returns the global bank range [lo, hi) this node owns.
func (n *Node) Banks() (lo, hi int) { return n.lo, n.hi }

// ScrubLog returns the executed-grant log.
func (n *Node) ScrubLog() []GrantRec {
	_, _, _, log := n.rot.snapshot()
	return log
}

// Rotation returns the node's current election/rotation view.
func (n *Node) Rotation() (leader, epoch int64, isLeader bool) {
	leader, epoch, isLeader, _ = n.rot.snapshot()
	return leader, epoch, isLeader
}

// Stats assembles the introspection document.
func (n *Node) Stats() NodeStats {
	leader, epoch, isLeader, log := n.rot.snapshot()
	return NodeStats{
		Node: n.cfg.Index, BankLo: n.lo, BankHi: n.hi,
		Leader: leader, Epoch: epoch, IsLeader: isLeader,
		Requests:    n.reads.Value() + n.writes.Value(),
		Batches:     n.batches.Value(),
		Scrubs:      n.scrubs.Value(),
		StaleGrants: n.stale.Value(),
		Grants:      log,
	}
}

// Close stops the listener, the election loop, and the serve workers,
// returning the merged serving statistics.
func (n *Node) Close() serve.Stats {
	n.mu.Lock()
	if !n.open {
		n.mu.Unlock()
		return serve.Stats{}
	}
	n.open = false
	close(n.done)
	_ = n.ln.Close()
	for c := range n.conns {
		_ = c.Close()
	}
	n.mu.Unlock()
	for _, p := range n.peers {
		if p != nil {
			p.close()
		}
	}
	n.wg.Wait()
	return n.srv.Close()
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.mu.Lock()
		if !n.open {
			n.mu.Unlock()
			_ = conn.Close()
			return
		}
		n.conns[conn] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go n.handle(conn)
	}
}

// handle serves one connection: batches execute concurrently (pipelining
// across in-flight frames), bounded by a per-connection semaphore;
// responses are matched by sequence number, so completion order is free.
func (n *Node) handle(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		n.mu.Lock()
		delete(n.conns, conn)
		n.mu.Unlock()
		_ = conn.Close()
	}()
	var wmu sync.Mutex
	var inflight sync.WaitGroup
	defer inflight.Wait()
	sem := make(chan struct{}, 16)
	for {
		typ, seq, payload, err := readFrame(conn)
		if err != nil {
			return
		}
		switch typ {
		case msgBatch:
			sem <- struct{}{}
			inflight.Add(1)
			go func(seq uint64, payload []byte) {
				defer inflight.Done()
				defer func() { <-sem }()
				n.serveBatch(conn, &wmu, seq, payload)
			}(seq, payload)
		case msgHello:
			n.reply(conn, &wmu, msgHelloResp, seq, n.helloDoc())
		case msgSnapshotReq:
			n.reply(conn, &wmu, msgSnapshotResp, seq, n.reg.Snapshot().Wire())
		case msgStatsReq:
			n.reply(conn, &wmu, msgStatsResp, seq, n.Stats())
		case msgGossip:
			var g gossipMsg
			if json.Unmarshal(payload, &g) == nil {
				n.gossipRx.Inc()
				n.rot.observe(g)
			}
		case msgGrant:
			var g grantMsg
			if json.Unmarshal(payload, &g) == nil {
				n.grantsRx.Inc()
				n.execGrant(g)
			}
		default:
			n.reply(conn, &wmu, msgErr, seq, wireError{Error: fmt.Sprintf("unknown message type %d", typ)})
		}
	}
}

// reply writes one JSON-payload response frame.
func (n *Node) reply(conn net.Conn, wmu *sync.Mutex, typ byte, seq uint64, doc any) {
	payload, err := json.Marshal(doc)
	if err != nil {
		return
	}
	wmu.Lock()
	defer wmu.Unlock()
	_ = writeFrame(conn, typ, seq, payload)
}

func (n *Node) helloDoc() hello {
	_, epoch, _, _ := n.rot.snapshot()
	return hello{
		Node: n.cfg.Index, Nodes: n.cfg.Nodes,
		N: n.cfg.Org.CrossbarN, Banks: n.cfg.Org.Banks, PerBank: n.cfg.Org.PerBank,
		BankLo: n.lo, BankHi: n.hi, Epoch: epoch,
	}
}

// serveBatch decodes, translates, executes, paces, and answers one
// request batch. Addresses arrive in the global flat space; the node
// rebases them into its shard. A request routed to the wrong node lands
// outside the local address space and fails with the range error — loud,
// never silently served from the wrong bank.
func (n *Node) serveBatch(conn net.Conn, wmu *sync.Mutex, seq uint64, payload []byte) {
	reqs, err := decodeBatch(payload)
	if err != nil {
		n.reply(conn, wmu, msgErr, seq, wireError{Error: err.Error()})
		return
	}
	resps := make([]serve.Response, len(reqs))
	chans := make([]<-chan serve.Response, len(reqs))
	for i := range reqs {
		reqs[i].Addr = n.nm.ToLocal(n.cfg.Index, reqs[i].Addr)
		if reqs[i].Op == serve.OpWrite {
			n.writes.Inc()
		} else {
			n.reads.Inc()
		}
		ch, err := n.srv.Submit(reqs[i])
		if err != nil {
			resps[i] = serve.Response{Err: err}
			continue
		}
		chans[i] = ch
	}
	for i, ch := range chans {
		if ch != nil {
			resps[i] = <-ch
		}
	}
	n.batches.Inc()
	n.pace.charge(len(reqs))
	out, err := encodeResponses(resps)
	if err != nil {
		n.reply(conn, wmu, msgErr, seq, wireError{Error: err.Error()})
		return
	}
	wmu.Lock()
	defer wmu.Unlock()
	_ = writeFrame(conn, msgBatchResp, seq, out)
}

// electionLoop drives the rotation: one Tick per Round, gossip to every
// peer, and — while stable leader — one scrub grant per round.
func (n *Node) electionLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.Round)
	defer t.Stop()
	for {
		select {
		case <-n.done:
			return
		case <-t.C:
		}
		gossip, grant := n.rot.tick(n.cfg.Org.Crossbars())
		payload, err := json.Marshal(gossip)
		if err == nil {
			for i, p := range n.peers {
				if p == nil || i == n.cfg.Index {
					continue
				}
				if p.send(msgGossip, payload) {
					n.gossipTx.Inc()
				}
			}
		}
		if grant == nil {
			continue
		}
		bank, _ := n.cfg.Org.CrossbarAt(grant.Xbar)
		owner := n.nm.NodeOf(bank)
		if owner == n.cfg.Index {
			n.execGrant(*grant)
			continue
		}
		if gp, err := json.Marshal(grant); err == nil && n.peers != nil && owner < len(n.peers) && n.peers[owner] != nil {
			n.peers[owner].send(msgGrant, gp)
		}
	}
}

// execGrant runs one admitted scrub grant against the owned crossbar.
func (n *Node) execGrant(g grantMsg) {
	bank, xb := n.cfg.Org.CrossbarAt(g.Xbar)
	if bank < n.lo || bank >= n.hi {
		n.stale.Inc() // misrouted: not ours
		return
	}
	if !n.rot.admit(g) {
		n.stale.Inc()
		return
	}
	c, u := n.mem.ScrubCrossbar(bank-n.lo, xb)
	n.scrubs.Inc()
	n.scrubCorr.Add(int64(c))
	n.scrubUncorr.Add(int64(u))
	if ring := n.reg.Events(); ring != nil {
		ring.Emit(telemetry.EvAdmission, time.Now().UnixNano(), bank, xb, g.Epoch, 0)
	}
}
