package netfleet

import (
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal(msg)
}

// grantTotal sums executed grants across the given nodes.
func grantTotal(nodes ...*Node) int {
	total := 0
	for _, n := range nodes {
		if n != nil {
			total += len(n.ScrubLog())
		}
	}
	return total
}

// TestScrubRotationCrashRejoin is the fleet's no-double-scrub proof,
// meant to run under -race: a three-node fleet rotates scrubs under the
// elected leader; the leader is killed mid-rotation; the survivors
// re-elect and keep rotating; the dead node rejoins with empty state and
// eventually retakes leadership (it holds the minimum ID). Across every
// node incarnation's executed-grant log, scrub epochs must be globally
// unique — no crossbar is ever scrubbed twice for the same epoch — and
// data written to surviving shards before the crash must read back
// unchanged after the dust settles.
func TestScrubRotationCrashRejoin(t *testing.T) {
	org := testOrg()
	start := time.Now()
	nodes, addrs := startFleet(t, org, 3, nil)
	f := dialFleet(t, org, addrs)
	t.Logf("t=%v fleet of 3 up (round 5ms, election K=4)", time.Since(start).Round(time.Millisecond))

	// Sentinels in the two shards that will survive the crash.
	type probe struct {
		addr int64
		val  uint64
	}
	var probes []probe
	for node := 1; node <= 2; node++ {
		lo, _ := f.NodeMap().Range(node)
		addr := int64(lo)*org.BankBits() + 128
		val := uint64(0xC0FFEE00 + node)
		if err := f.Write(addr, 32, val); err != nil {
			t.Fatal(err)
		}
		probes = append(probes, probe{addr, val})
	}

	// Phase 1: the minimum ID leads and one full rotation lands.
	xbars := org.Crossbars()
	waitFor(t, 10*time.Second, func() bool {
		return grantTotal(nodes...) >= xbars
	}, "no full scrub rotation under the initial leader")
	if _, _, isLeader := nodes[0].Rotation(); !isLeader {
		t.Fatal("node 0 (minimum ID) is not the leader")
	}
	t.Logf("t=%v node 0 leads, first full rotation done (%d grants)",
		time.Since(start).Round(time.Millisecond), grantTotal(nodes...))

	// Phase 2: kill the leader. Its executed-grant log is evidence even
	// after death.
	log0 := nodes[0].ScrubLog()
	nodes[0].Close()
	dead := nodes[0]
	nodes[0] = nil
	t.Logf("t=%v leader killed", time.Since(start).Round(time.Millisecond))

	base := grantTotal(nodes[1], nodes[2])
	waitFor(t, 10*time.Second, func() bool {
		return grantTotal(nodes[1], nodes[2]) >= base+6
	}, "rotation did not resume after leader crash")
	if _, _, isLeader := nodes[1].Rotation(); !isLeader {
		t.Fatal("node 1 did not take over leadership")
	}
	_, epoch1, _ := nodes[1].Rotation()
	t.Logf("t=%v node 1 leads, rotation resumed (epoch %d)",
		time.Since(start).Round(time.Millisecond), epoch1)

	// Phase 3: rejoin with fresh state on the same address. The minimum
	// ID must retake leadership and its own shard must be scrubbed again
	// — which only happens after it has synced its epoch floor.
	cfg := NodeConfig{
		Org: org, Nodes: 3, Index: 0,
		Addr: addrs[0], Peers: addrs,
		M: 15, K: 2, ECC: true,
		Workers: 2, Round: 5 * time.Millisecond, ElectionK: 4,
	}
	rejoined, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nodes[0] = rejoined
	t.Logf("t=%v node 0 rejoined with empty state", time.Since(start).Round(time.Millisecond))
	waitFor(t, 10*time.Second, func() bool {
		_, _, isLeader := rejoined.Rotation()
		return isLeader && len(rejoined.ScrubLog()) >= 4
	}, "rejoined node did not retake leadership and scrub its shard")
	_, epoch0, _ := rejoined.Rotation()
	t.Logf("t=%v node 0 leads again after epoch sync (epoch %d), own shard rescrubbed",
		time.Since(start).Round(time.Millisecond), epoch0)

	// Surviving shards kept their data across the whole episode.
	for _, p := range probes {
		got, err := f.Read(p.addr, 32)
		if err != nil {
			t.Fatalf("probe read at %d: %v", p.addr, err)
		}
		if got != p.val {
			t.Fatalf("probe at %d read %#x, wrote %#x", p.addr, got, p.val)
		}
	}

	// The proof: across every incarnation, each epoch executed at most
	// once fleet-wide.
	type exec struct {
		who string
		rec GrantRec
	}
	var all []exec
	for _, r := range log0 {
		all = append(all, exec{"node0-pre-crash", r})
	}
	for _, r := range rejoined.ScrubLog() {
		all = append(all, exec{"node0-rejoined", r})
	}
	for i, n := range nodes[1:] {
		for _, r := range n.ScrubLog() {
			all = append(all, exec{[]string{"node1", "node2"}[i], r})
		}
	}
	seen := map[int64]string{}
	xbarSeen := map[int]bool{}
	for _, e := range all {
		if prev, dup := seen[e.rec.Epoch]; dup {
			t.Fatalf("epoch %d double-scrubbed: %s and %s", e.rec.Epoch, prev, e.who)
		}
		seen[e.rec.Epoch] = e.who
		xbarSeen[e.rec.Xbar] = true
	}
	// Rotation fairness: the epoch→crossbar mapping walked every
	// crossbar in the fleet, including the rejoined shard's.
	if len(xbarSeen) != xbars {
		t.Fatalf("rotation covered %d of %d crossbars", len(xbarSeen), xbars)
	}

	// With no faults injected, not one scrub may cry wolf.
	for _, n := range []*Node{rejoined, nodes[1], nodes[2]} {
		snap := n.Registry().Snapshot()
		for _, c := range snap.Counters {
			if c.Name == "netfleet_scrub_uncorrectable_total" && c.Value != 0 {
				t.Fatalf("node reported %d uncorrectable scrub words on a clean memory", c.Value)
			}
		}
	}
	_ = dead
}
