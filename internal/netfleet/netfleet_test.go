package netfleet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"reflect"
	"testing"
	"time"

	"repro/internal/mmpu"
	"repro/internal/pmem"
	"repro/internal/serve"
)

// testOrg is a small fleet-worthy geometry: 6 banks × 2 crossbars.
func testOrg() mmpu.Organization { return mmpu.Custom(45, 6, 2) }

// listenLoopback opens n kernel-assigned loopback listeners up front so
// every node can know the full peer address list before any node starts.
func listenLoopback(t *testing.T, n int) ([]net.Listener, []string) {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	return lns, addrs
}

// startFleet boots n nodes over loopback and returns them with their
// addresses. mut may adjust each node's config before start.
func startFleet(t *testing.T, org mmpu.Organization, n int, mut func(i int, c *NodeConfig)) ([]*Node, []string) {
	t.Helper()
	lns, addrs := listenLoopback(t, n)
	nodes := make([]*Node, n)
	for i := range nodes {
		cfg := NodeConfig{
			Org: org, Nodes: n, Index: i,
			Listener: lns[i], Peers: addrs,
			M: 15, K: 2, ECC: true,
			Workers: 2, Round: 5 * time.Millisecond, ElectionK: 4,
		}
		if mut != nil {
			mut(i, &cfg)
		}
		node, err := NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			if n != nil {
				n.Close()
			}
		}
	})
	return nodes, addrs
}

func dialFleet(t *testing.T, org mmpu.Organization, addrs []string) *Fleet {
	t.Helper()
	f, err := Dial(FleetConfig{Org: org, Addrs: addrs, RetryDeadline: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	if err := f.Check(); err != nil {
		t.Fatal(err)
	}
	return f
}

// TestFleetLoopbackReadWrite proves the data plane end to end: random
// writes across every shard read back exactly, through routing, global→
// local rebasing, batching, and the binary codecs.
func TestFleetLoopbackReadWrite(t *testing.T) {
	org := testOrg()
	nodes, addrs := startFleet(t, org, 3, nil)
	f := dialFleet(t, org, addrs)

	// Disjoint 64-bit slots: requests in one batch ship concurrently, so
	// overlapping spans would race. Disjointness is the client's contract
	// here, as it is for the single-process server's worker pool.
	const count = 250
	rng := rand.New(rand.NewSource(7))
	slots := org.DataBits() / 64
	reqs := make([]serve.Request, 0, count)
	want := make([]uint64, 0, count)
	slotSeen := map[int64]bool{}
	for len(reqs) < count {
		slot := rng.Int63n(slots - 1)
		if slotSeen[slot] {
			continue
		}
		slotSeen[slot] = true
		off := rng.Int63n(3)
		width := 1 + rng.Intn(64-int(off))
		v := rng.Uint64() & (1<<width - 1)
		reqs = append(reqs, serve.Request{Op: serve.OpWrite, Addr: slot*64 + off, Width: width, Data: v})
		want = append(want, v)
	}
	for i, r := range f.Do(reqs) {
		if r.Err != nil {
			t.Fatalf("write %d (addr %d): %v", i, reqs[i].Addr, r.Err)
		}
	}
	reads := make([]serve.Request, len(reqs))
	for i, r := range reqs {
		reads[i] = serve.Request{Op: serve.OpRead, Addr: r.Addr, Width: r.Width}
	}
	for i, r := range f.Do(reads) {
		if r.Err != nil {
			t.Fatalf("read %d: %v", i, r.Err)
		}
		if r.Data != want[i] {
			t.Fatalf("addr %d width %d: read %#x, wrote %#x", reqs[i].Addr, reqs[i].Width, r.Data, want[i])
		}
	}

	// Every node served some of the traffic — the router really fanned out.
	for i, n := range nodes {
		if s := n.Stats(); s.Requests == 0 {
			t.Fatalf("node %d served no requests", i)
		}
	}

	// A span straddling the node-0/node-1 shard boundary is split, served
	// by both owners, and stitched back — same semantics as one process.
	_, hi := f.NodeMap().Range(0)
	cut := int64(hi) * org.BankBits()
	const spanVal = 0x5A5A_F00D_BEEF_CAFE
	if err := f.Write(cut-13, 64, spanVal); err != nil {
		t.Fatalf("cross-node write: %v", err)
	}
	got, err := f.Read(cut-13, 64)
	if err != nil {
		t.Fatalf("cross-node read: %v", err)
	}
	if got != spanVal {
		t.Fatalf("cross-node span read %#x, wrote %#x", got, uint64(spanVal))
	}
}

// TestFleetErrorsSurviveTheWire proves the typed-error discipline: range,
// span, and closed errors come back as the same sentinels in-process
// callers match on, and compute requests are refused client-side.
func TestFleetErrorsSurviveTheWire(t *testing.T) {
	org := testOrg()
	nodes, addrs := startFleet(t, org, 2, nil)
	f := dialFleet(t, org, addrs)

	if _, err := f.Read(org.DataBits()+5, 8); err == nil {
		t.Fatal("out-of-range read routed")
	}
	// Width 100 crosses the wire (width is a byte) and must fail remotely
	// with the same ErrSpan the local server returns.
	if _, err := f.Read(0, 100); !errors.Is(err, pmem.ErrSpan) {
		t.Fatalf("remote span error = %v, want pmem.ErrSpan", err)
	}
	if r := f.Do([]serve.Request{{Op: serve.OpCompute, Addr: 0}})[0]; !errors.Is(r.Err, ErrNotTransportable) {
		t.Fatalf("compute request = %v, want ErrNotTransportable", r.Err)
	}

	// A closed node inside the retry deadline surfaces ErrNodeUnavailable,
	// not a hang: use a short deadline fleet against a dead address.
	nodes[1].Close()
	short, err := Dial(FleetConfig{Org: org, Addrs: addrs, RetryDeadline: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer short.Close()
	lo, _ := short.NodeMap().Range(1)
	deadAddr := int64(lo) * org.BankBits()
	if _, err := short.Read(deadAddr, 8); !errors.Is(err, ErrNodeUnavailable) {
		t.Fatalf("dead node read = %v, want ErrNodeUnavailable", err)
	}

	// Fleet close: further calls refuse with ErrFleetClosed.
	short.Close()
	if _, err := short.Read(0, 8); !errors.Is(err, ErrFleetClosed) {
		t.Fatalf("closed fleet read = %v, want ErrFleetClosed", err)
	}
}

// TestFleetGeometryMismatchRefused proves the hello handshake: a node
// configured with a different fleet shape is refused at Check time.
func TestFleetGeometryMismatchRefused(t *testing.T) {
	org := testOrg()
	_, addrs := startFleet(t, org, 2, nil)
	// Client believes the same addresses form a fleet of a different
	// geometry (more banks).
	wrong := mmpu.Custom(45, 8, 2)
	f, err := Dial(FleetConfig{Org: wrong, Addrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Check(); err == nil {
		t.Fatal("geometry mismatch not detected")
	}
}

// TestFleetSnapshotMerges proves fleet-wide observability: the merged
// snapshot carries every node's series, with counts summing exactly.
func TestFleetSnapshotMerges(t *testing.T) {
	org := testOrg()
	_, addrs := startFleet(t, org, 3, nil)
	f := dialFleet(t, org, addrs)

	const count = 300
	rng := rand.New(rand.NewSource(11))
	// Single-bit requests cannot straddle a shard boundary, so none get
	// split and the fleet-wide request count must equal exactly `count`.
	reqs := make([]serve.Request, count)
	for i := range reqs {
		reqs[i] = serve.Request{Op: serve.OpWrite, Addr: rng.Int63n(org.DataBits()), Width: 1, Data: uint64(i) & 1}
	}
	for i, r := range f.Do(reqs) {
		if r.Err != nil {
			t.Fatalf("write %d: %v", i, r.Err)
		}
	}
	snap, err := f.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var served int64
	for _, c := range snap.Counters {
		if c.Name == "netfleet_requests_total" {
			served += c.Value
		}
	}
	if served != count {
		t.Fatalf("fleet snapshot counts %d served requests, want %d", served, count)
	}
	// The serve-layer histograms crossed the wire with full buckets: the
	// merged summary must hold all observations.
	var latency int64
	for _, h := range snap.Hists {
		if h.Name == "serve_latency_ns" || h.Name == "serve_wait_ns" {
			latency += h.Count
		}
	}
	if latency == 0 {
		t.Fatal("fleet snapshot lost the serve-layer histograms")
	}
}

// TestFleetNodeRestartIsLatencyNotLoss proves the retry discipline: a
// request issued while its node is down completes when the node returns
// — the restart costs latency, never an error.
func TestFleetNodeRestartIsLatencyNotLoss(t *testing.T) {
	org := testOrg()
	lns, addrs := listenLoopback(t, 1)
	cfg := NodeConfig{
		Org: org, Nodes: 1, Index: 0, Listener: lns[0], Peers: addrs,
		M: 15, K: 2, Workers: 2, Round: 5 * time.Millisecond,
	}
	node, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := dialFleet(t, org, addrs)
	if err := f.Write(10, 16, 0xABCD); err != nil {
		t.Fatal(err)
	}
	node.Close()

	done := make(chan error, 1)
	go func() {
		_, err := f.Read(10, 16)
		done <- err
	}()
	// Hold the node down long enough that the read must ride the retry
	// loop, then bring it back on the same address.
	time.Sleep(250 * time.Millisecond)
	select {
	case err := <-done:
		t.Fatalf("read finished while node was down: %v", err)
	default:
	}
	cfg.Listener = nil
	cfg.Addr = addrs[0]
	node2, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer node2.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("read across restart failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("read did not complete after node restart")
	}
}

// TestWireBatchRoundTrip pins the binary request codec.
func TestWireBatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	reqs := make([]serve.Request, 257)
	for i := range reqs {
		op := serve.OpRead
		if i%2 == 0 {
			op = serve.OpWrite
		}
		reqs[i] = serve.Request{Op: op, Addr: rng.Int63(), Width: rng.Intn(65), Data: rng.Uint64()}
	}
	enc, err := encodeBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeBatch(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, reqs) {
		t.Fatal("batch round trip diverged")
	}
	if _, err := encodeBatch([]serve.Request{{Op: serve.OpCompute}}); err == nil {
		t.Fatal("compute encoded")
	}
	if _, err := decodeBatch(enc[:len(enc)-3]); err == nil {
		t.Fatal("truncated batch decoded")
	}
}

// TestWireResponseRoundTrip pins the response codec and its error-code
// mapping: sentinels survive, free-form errors keep their text.
func TestWireResponseRoundTrip(t *testing.T) {
	resps := []serve.Response{
		{Data: 42},
		{Err: fmt.Errorf("wrapped: %w", pmem.ErrRange)},
		{Err: fmt.Errorf("wrapped: %w", pmem.ErrSpan)},
		{Err: serve.ErrServerClosed},
		{Err: errors.New("disk on fire")},
	}
	enc, err := encodeResponses(resps)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeResponses(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Err != nil || got[0].Data != 42 {
		t.Fatalf("ok response mangled: %+v", got[0])
	}
	if !errors.Is(got[1].Err, pmem.ErrRange) {
		t.Fatalf("range error lost: %v", got[1].Err)
	}
	if !errors.Is(got[2].Err, pmem.ErrSpan) {
		t.Fatalf("span error lost: %v", got[2].Err)
	}
	if !errors.Is(got[3].Err, serve.ErrServerClosed) {
		t.Fatalf("closed error lost: %v", got[3].Err)
	}
	if got[4].Err == nil || got[4].Err.Error() != "netfleet: remote: disk on fire" {
		t.Fatalf("free-form error mangled: %v", got[4].Err)
	}
}
