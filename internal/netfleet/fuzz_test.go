package netfleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/pmem"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

// respCode classifies a response error the way the wire does, with nil
// as codeOK.
func respCode(err error) byte {
	if err == nil {
		return codeOK
	}
	return codeFor(err)
}

// FuzzWireRoundTrip drives every codec a fleet depends on: the framing
// layer and the request/response batch decoders must never panic or
// over-allocate on arbitrary bytes, anything they do accept must
// round-trip exactly, and the telemetry snapshot codec must keep
// snapshots byte-identical and merge-exact across the trip.
func FuzzWireRoundTrip(f *testing.F) {
	goodBatch, _ := encodeBatch([]serve.Request{
		{Op: serve.OpWrite, Addr: 12345, Width: 17, Data: 0xDEAD},
		{Op: serve.OpRead, Addr: 99, Width: 64},
	})
	goodResp, _ := encodeResponses([]serve.Response{
		{Data: 7},
		{Err: fmt.Errorf("x: %w", pmem.ErrRange)},
		{Err: errors.New("boom")},
	})
	f.Add([]byte{}, uint64(0))
	f.Add(goodBatch, uint64(1))
	f.Add(goodResp, uint64(2))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3}, uint64(3))

	f.Fuzz(func(t *testing.T, data []byte, seed uint64) {
		// Garbage in: clean rejection, no panic, no unbounded allocation.
		// Anything the batch decoder accepts re-encodes byte-identically.
		if reqs, err := decodeBatch(data); err == nil {
			enc, err := encodeBatch(reqs)
			if err != nil {
				t.Fatalf("decoded batch does not re-encode: %v", err)
			}
			if !bytes.Equal(enc, data) {
				t.Fatal("batch re-encode diverged from wire bytes")
			}
		}
		// Responses canonicalize error text, so the invariant is semantic:
		// data and error class survive a re-encode round trip.
		if resps, err := decodeResponses(data); err == nil {
			if enc, err := encodeResponses(resps); err == nil {
				back, err := decodeResponses(enc)
				if err != nil {
					t.Fatalf("re-encoded responses do not decode: %v", err)
				}
				for i := range back {
					if back[i].Data != resps[i].Data || respCode(back[i].Err) != respCode(resps[i].Err) {
						t.Fatalf("response %d diverged: %+v vs %+v", i, back[i], resps[i])
					}
				}
			}
		}
		if _, _, _, err := readFrame(bytes.NewReader(data)); err == nil {
			// A whole valid frame in the fuzz input is fine — just must
			// not panic, which reaching here proves.
			_ = err
		}

		// Structured round trip: requests built from the seed must come
		// back exactly.
		rng := rand.New(rand.NewSource(int64(seed)))
		reqs := make([]serve.Request, seed%64)
		for i := range reqs {
			op := serve.OpRead
			if rng.Intn(2) == 1 {
				op = serve.OpWrite
			}
			reqs[i] = serve.Request{Op: op, Addr: rng.Int63(), Width: rng.Intn(256), Data: rng.Uint64()}
		}
		enc, err := encodeBatch(reqs)
		if err != nil {
			t.Fatalf("valid batch refused: %v", err)
		}
		got, err := decodeBatch(enc)
		if err != nil {
			t.Fatalf("encoded batch refused: %v", err)
		}
		if len(got) != len(reqs) || (len(reqs) > 0 && !reflect.DeepEqual(got, reqs)) {
			t.Fatal("structured batch round trip diverged")
		}

		// Telemetry snapshot codec: a registry shaped by the fuzz input
		// must survive the JSON wire trip byte-identically, and merging
		// the two halves must commute across the codec.
		regA, regB := telemetry.New(), telemetry.New()
		half := len(data) / 2
		for i, b := range data {
			reg := regA
			if i >= half {
				reg = regB
			}
			reg.Counter("fuzz_total", "lane", string(rune('a'+int(b)%4))).Add(int64(b) + 1)
			reg.Histogram("fuzz_ns").Observe(int64(b) * (int64(seed%97) + 1))
		}
		for _, reg := range []*telemetry.Registry{regA, regB} {
			snap := reg.Snapshot()
			raw, err := json.Marshal(snap.Wire())
			if err != nil {
				t.Fatal(err)
			}
			var w telemetry.WireSnapshot
			if err := json.Unmarshal(raw, &w); err != nil {
				t.Fatal(err)
			}
			a, _ := json.Marshal(snap)
			b, _ := json.Marshal(w.Snapshot())
			if !bytes.Equal(a, b) {
				t.Fatalf("snapshot changed across the wire:\n%s\nvs\n%s", a, b)
			}
		}
		sa, sb := regA.Snapshot(), regB.Snapshot()
		ab, _ := json.Marshal(sa.Merge(sb))
		ba, _ := json.Marshal(sb.Merge(sa))
		if !bytes.Equal(ab, ba) {
			t.Fatal("snapshot merge is order-dependent")
		}
	})
}
