package netfleet

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/mmpu"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

// FleetConfig describes the fleet from the client's side: the global
// organization (identical to every node's) and one address per node, in
// node order. Routing is a pure function of the organization and the
// address list — no metadata service, no discovery round-trip: bank b
// lives on node Org.ShardNodes(len(Addrs)).NodeOf(b), always.
type FleetConfig struct {
	Org   mmpu.Organization
	Addrs []string

	// BatchSize caps requests per frame (default 256). Window caps
	// in-flight frames per node (default 8) — the per-node backpressure
	// bound.
	BatchSize int
	Window    int

	// DialTimeout bounds one connection attempt (default 1s).
	// CallTimeout bounds one request round-trip (default 10s).
	// RetryDeadline bounds the total retry budget per call (default 5s):
	// a node restarting within it costs latency, not errors.
	DialTimeout   time.Duration
	CallTimeout   time.Duration
	RetryDeadline time.Duration
}

// Fleet is the client-side router: it splits request batches by owning
// node, ships the shards concurrently over pipelined connections, and
// stitches responses back into request order.
type Fleet struct {
	cfg   FleetConfig
	nm    mmpu.NodeMap
	conns []*nodeConn

	mu     sync.Mutex
	closed bool
}

// Dial builds a fleet handle. Connections are established lazily on
// first use, so Dial succeeds even while nodes are still starting; the
// per-call retry deadline absorbs the race.
func Dial(cfg FleetConfig) (*Fleet, error) {
	if err := cfg.Org.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("netfleet: no node addresses")
	}
	nm := cfg.Org.ShardNodes(len(cfg.Addrs))
	if nm.Nodes() != len(cfg.Addrs) {
		return nil, fmt.Errorf("netfleet: %d nodes over %d banks leaves empty shards", len(cfg.Addrs), cfg.Org.Banks)
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 256
	}
	if cfg.BatchSize > maxBatch {
		cfg.BatchSize = maxBatch
	}
	if cfg.Window <= 0 {
		cfg.Window = 8
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = time.Second
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 10 * time.Second
	}
	if cfg.RetryDeadline <= 0 {
		cfg.RetryDeadline = 5 * time.Second
	}
	opts := connOpts{
		window:        cfg.Window,
		dialTimeout:   cfg.DialTimeout,
		callTimeout:   cfg.CallTimeout,
		retryDeadline: cfg.RetryDeadline,
	}
	f := &Fleet{cfg: cfg, nm: nm}
	for _, addr := range cfg.Addrs {
		f.conns = append(f.conns, newNodeConn(addr, opts))
	}
	return f, nil
}

// Nodes returns the fleet size.
func (f *Fleet) Nodes() int { return f.nm.Nodes() }

// NodeMap returns the routing map.
func (f *Fleet) NodeMap() mmpu.NodeMap { return f.nm }

// Check hellos every node and verifies its view of the fleet — geometry,
// fleet size, own index, owned bank range — against the client's. A
// mis-started fleet (wrong -nodes, swapped addresses, different
// geometry) fails here, loudly, before any request is routed.
func (f *Fleet) Check() error {
	for i, c := range f.conns {
		h, err := c.hello()
		if err != nil {
			return fmt.Errorf("netfleet: node %d (%s): %w", i, c.addr, err)
		}
		lo, hi := f.nm.Range(i)
		switch {
		case h.Node != i:
			return fmt.Errorf("netfleet: address %d (%s) answered as node %d", i, c.addr, h.Node)
		case h.Nodes != f.nm.Nodes():
			return fmt.Errorf("netfleet: node %d sized for %d-node fleet, client for %d", i, h.Nodes, f.nm.Nodes())
		case h.N != f.cfg.Org.CrossbarN || h.Banks != f.cfg.Org.Banks || h.PerBank != f.cfg.Org.PerBank:
			return fmt.Errorf("netfleet: node %d geometry %dx%d banks=%d perbank=%d differs from client %dx%d banks=%d perbank=%d",
				i, h.N, h.N, h.Banks, h.PerBank,
				f.cfg.Org.CrossbarN, f.cfg.Org.CrossbarN, f.cfg.Org.Banks, f.cfg.Org.PerBank)
		case h.BankLo != lo || h.BankHi != hi:
			return fmt.Errorf("netfleet: node %d owns banks [%d,%d), client routes [%d,%d)", i, h.BankLo, h.BankHi, lo, hi)
		}
	}
	return nil
}

// routed is one wire-bound sub-request: which node serves it, which
// original request it answers, and where its bits land in the stitched
// result (LSB-first, as everywhere in pmem).
type routed struct {
	origIdx int
	node    int
	req     serve.Request
	shift   int
}

// Do executes a batch of requests across the fleet and returns responses
// in request order. Requests are grouped by owning node, chunked to
// BatchSize, and shipped concurrently; per-node windows apply
// backpressure independently, so one slow node does not stall traffic to
// the others. Addresses stay global on the wire — nodes rebase them.
//
// A request whose bit span crosses a shard boundary is split at the
// boundary and served by both owners, then stitched back LSB-first —
// the fleet keeps the single-process server's spanning semantics (width
// is at most 64 bits and shards are whole banks, so a span touches at
// most two nodes).
func (f *Fleet) Do(reqs []serve.Request) []serve.Response {
	resps := make([]serve.Response, len(reqs))
	items := make([]routed, 0, len(reqs))
	for i, r := range reqs {
		if r.Op != serve.OpRead && r.Op != serve.OpWrite {
			resps[i] = serve.Response{Err: ErrNotTransportable}
			continue
		}
		node, err := f.nm.NodeOfBit(r.Addr)
		if err != nil {
			resps[i] = serve.Response{Err: err}
			continue
		}
		endNode := node
		if r.Width > 1 {
			endNode, err = f.nm.NodeOfBit(r.Addr + int64(r.Width) - 1)
			if err != nil {
				resps[i] = serve.Response{Err: err}
				continue
			}
		}
		if endNode == node {
			items = append(items, routed{origIdx: i, node: node, req: r})
			continue
		}
		_, hi := f.nm.Range(node)
		cut := int64(hi) * f.cfg.Org.BankBits()
		w1 := int(cut - r.Addr)
		r1, r2 := r, r
		r1.Width = w1
		r2.Addr, r2.Width = cut, r.Width-w1
		if r.Op == serve.OpWrite {
			r1.Data = r.Data & (1<<w1 - 1)
			r2.Data = r.Data >> w1
		}
		items = append(items,
			routed{origIdx: i, node: node, req: r1},
			routed{origIdx: i, node: endNode, req: r2, shift: w1})
	}
	out := make([]serve.Response, len(items))
	groups := make([][]int, f.nm.Nodes())
	for j, it := range items {
		groups[it.node] = append(groups[it.node], j)
	}
	var wg sync.WaitGroup
	for node, idxs := range groups {
		for len(idxs) > 0 {
			n := len(idxs)
			if n > f.cfg.BatchSize {
				n = f.cfg.BatchSize
			}
			chunk := idxs[:n]
			idxs = idxs[n:]
			wg.Add(1)
			go func(node int, chunk []int) {
				defer wg.Done()
				batch := make([]serve.Request, len(chunk))
				for k, j := range chunk {
					batch[k] = items[j].req
				}
				resp, err := f.conns[node].batch(batch)
				if err != nil {
					for _, j := range chunk {
						out[j] = serve.Response{Err: err}
					}
					return
				}
				for k, j := range chunk {
					out[j] = resp[k]
				}
			}(node, chunk)
		}
	}
	wg.Wait()
	for j, it := range items {
		if out[j].Err != nil {
			if resps[it.origIdx].Err == nil {
				resps[it.origIdx].Err = out[j].Err
			}
			continue
		}
		resps[it.origIdx].Data |= out[j].Data << it.shift
	}
	return resps
}

// Read serves one blocking read of up to 64 bits at a global bit address.
func (f *Fleet) Read(addr int64, width int) (uint64, error) {
	r := f.Do([]serve.Request{{Op: serve.OpRead, Addr: addr, Width: width}})[0]
	return r.Data, r.Err
}

// Write serves one blocking write of up to 64 bits at a global bit address.
func (f *Fleet) Write(addr int64, width int, data uint64) error {
	return f.Do([]serve.Request{{Op: serve.OpWrite, Addr: addr, Width: width, Data: data}})[0].Err
}

// Snapshot fetches every node's telemetry snapshot and merges them into
// one fleet-wide view. Merge is commutative and associative, so the
// result is independent of node order — the same guarantee the
// in-process shards have, preserved across the network by the wire
// codec (telemetry.WireSnapshot).
func (f *Fleet) Snapshot() (telemetry.Snapshot, error) {
	var merged telemetry.Snapshot
	for i, c := range f.conns {
		s, err := c.snapshot()
		if err != nil {
			return telemetry.Snapshot{}, fmt.Errorf("netfleet: node %d snapshot: %w", i, err)
		}
		merged = merged.Merge(s)
	}
	return merged, nil
}

// Stats fetches every node's introspection document, in node order.
func (f *Fleet) Stats() ([]NodeStats, error) {
	out := make([]NodeStats, len(f.conns))
	for i, c := range f.conns {
		s, err := c.stats()
		if err != nil {
			return nil, fmt.Errorf("netfleet: node %d stats: %w", i, err)
		}
		out[i] = s
	}
	return out, nil
}

// Close releases every connection. In-flight calls fail with
// ErrFleetClosed; subsequent calls refuse immediately.
func (f *Fleet) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	f.mu.Unlock()
	for _, c := range f.conns {
		c.close()
	}
}
