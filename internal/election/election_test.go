package election

import (
	"math/rand"
	"testing"
)

// cluster simulates synchronous all-to-all rounds over a set of states,
// with per-node liveness control.
type cluster struct {
	nodes map[int64]*State
	live  map[int64]bool
}

func newCluster(k int, ids ...int64) *cluster {
	c := &cluster{nodes: make(map[int64]*State), live: make(map[int64]bool)}
	for _, id := range ids {
		c.nodes[id] = New(id, k)
		c.live[id] = true
	}
	return c
}

// round runs one synchronous round: every live node ticks, then every
// live node observes every other live node's broadcast.
func (c *cluster) round() {
	msgs := make([]Message, 0, len(c.nodes))
	for id, s := range c.nodes {
		if c.live[id] {
			msgs = append(msgs, s.Tick())
		}
	}
	for id, s := range c.nodes {
		if !c.live[id] {
			continue
		}
		for _, m := range msgs {
			if m.From != id {
				s.Observe(m)
			}
		}
	}
}

// agreedLeader returns the common leader of all live nodes, or -1 while
// they disagree.
func (c *cluster) agreedLeader() int64 {
	leader := int64(-1)
	for id, s := range c.nodes {
		if !c.live[id] {
			continue
		}
		if leader == -1 {
			leader = s.Leader()
		} else if s.Leader() != leader {
			return -1
		}
	}
	return leader
}

func (c *cluster) settle(t *testing.T, rounds int, want int64) {
	t.Helper()
	for i := 0; i < rounds; i++ {
		c.round()
		if c.agreedLeader() == want {
			return
		}
	}
	for id, s := range c.nodes {
		if c.live[id] {
			t.Logf("node %d: %v", id, s)
		}
	}
	t.Fatalf("no agreement on leader %d within %d rounds", want, rounds)
}

func TestElectsMinimumID(t *testing.T) {
	c := newCluster(8, 3, 0, 7, 1, 5)
	// All-to-all: the minimum propagates in one round, agreement in two.
	c.settle(t, 3, 0)
	if !c.nodes[0].IsLeader() {
		t.Fatal("node 0 does not believe it leads")
	}
	for _, id := range []int64{1, 3, 5, 7} {
		if c.nodes[id].IsLeader() {
			t.Fatalf("node %d believes it leads", id)
		}
	}
}

func TestLeaderCrashRecoversWithinBound(t *testing.T) {
	const k = 8
	c := newCluster(k, 0, 1, 2, 3)
	c.settle(t, 3, 0)
	c.live[0] = false
	// The dead leader's pair must drain within K rounds and the next
	// minimum takes over one round later.
	c.settle(t, k+2, 1)
}

func TestCrashedLeaderRejoinRetakesLeadership(t *testing.T) {
	const k = 8
	c := newCluster(k, 0, 1, 2)
	c.settle(t, 3, 0)
	c.live[0] = false
	c.settle(t, k+2, 1)
	// Rejoin with fresh (booted) state: the smaller ID wins again.
	c.nodes[0] = New(0, k)
	c.live[0] = true
	c.settle(t, 3, 0)
}

func TestStabilizesFromArbitraryState(t *testing.T) {
	// Corrupt every node with adversarial pairs — minima smaller than any
	// live ID, forged TTLs far beyond K — and require convergence to the
	// true minimum within the K+1 bound plus the clamp margin.
	const k = 8
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		c := newCluster(k, 2, 4, 6, 9)
		for _, s := range c.nodes {
			s.best = Pair{Min: rng.Int63n(20) - 10, Leader: rng.Int63n(20) - 10}
			s.ttl = int(rng.Int63n(1 << 20)) // forged lease
		}
		limit := 2*k + 2
		ok := false
		for i := 0; i < limit; i++ {
			c.round()
			if c.agreedLeader() == 2 {
				ok = true
				break
			}
		}
		if !ok {
			for id, s := range c.nodes {
				t.Logf("node %d: %v", id, s)
			}
			t.Fatalf("trial %d: no convergence to 2 within %d rounds", trial, limit)
		}
	}
}

func TestForgedTTLClamped(t *testing.T) {
	s := New(5, 4)
	s.Observe(Message{From: 1, Pair: Pair{Min: 1, Leader: 1}, TTL: 1 << 30})
	if s.Leader() != 1 {
		t.Fatal("did not adopt smaller pair")
	}
	// Without refresh the adopted pair must expire in at most K rounds.
	for i := 0; i < 4; i++ {
		s.Tick()
	}
	if s.Leader() != 5 {
		t.Fatalf("forged lease survived K rounds: %v", s)
	}
}

func TestExpiredMessagesIgnored(t *testing.T) {
	s := New(5, 8)
	s.Observe(Message{From: 1, Pair: Pair{Min: 1, Leader: 1}, TTL: 0})
	if s.Leader() != 5 {
		t.Fatal("adopted a dead message")
	}
}

func TestRelayShortensLease(t *testing.T) {
	// A pair relayed through a chain must carry a strictly shrinking TTL:
	// origin broadcasts K, each relay hop hands on at most one less.
	a, b := New(7, 8), New(9, 8)
	b.Observe(Message{From: 7, Pair: Pair{Min: 7, Leader: 7}, TTL: 8})
	m := b.Tick()
	if m.Pair != (Pair{Min: 7, Leader: 7}) {
		t.Fatalf("relay broadcasts %+v", m)
	}
	if m.TTL >= 8 {
		t.Fatalf("relayed TTL %d not shortened", m.TTL)
	}
	_ = a
}

func TestPairOrdering(t *testing.T) {
	cases := []struct {
		p, q Pair
		less bool
	}{
		{Pair{0, 0}, Pair{1, 1}, true},
		{Pair{1, 1}, Pair{0, 0}, false},
		{Pair{1, 0}, Pair{1, 1}, true},
		{Pair{1, 1}, Pair{1, 1}, false},
		{Pair{-3, 5}, Pair{0, 0}, true},
	}
	for _, c := range cases {
		if got := c.p.Less(c.q); got != c.less {
			t.Fatalf("Less(%+v, %+v) = %v", c.p, c.q, got)
		}
	}
}
