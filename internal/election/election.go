// Package election is a practical self-stabilizing leader election in the
// style of PraSLE (Conard & Ebnenasir, 2021): nodes repeatedly exchange
// lexicographically ordered (min, leader) pairs, adopt any strictly
// smaller pair they hear, and bound how long hearsay survives so the
// algorithm recovers from *arbitrary* state — a crashed leader, a
// corrupted pair smaller than any live node, or a node rejoining with
// stale beliefs all converge back to "everyone agrees on the smallest
// live ID" within a bounded number of rounds.
//
// The package is the pure round-based state machine: no network, no
// clock. A transport (internal/netfleet) drives it by calling Tick once
// per round, broadcasting the returned Message to all peers, and feeding
// received Messages to Observe. With an all-to-all topology the
// stabilization bound is K+1 rounds: hearsay a live origin no longer
// backs expires after at most K rounds (the TTL drains by one per round),
// and one more round propagates the true minimum everywhere.
//
// Self-stabilization comes from the TTL discipline rather than a
// synchronized restart: a node's *own* pair is always (ID, ID) and is
// broadcast with a fresh TTL of K every round, while an adopted pair ages
// every round and is discarded when its TTL reaches zero. A pair with no
// live origin therefore cannot circulate forever — relays forward it with
// their remaining (decremented) TTL, so every hop strictly shortens its
// life. This is the lease-shaped variant of PraSLE's periodic
// re-initialization: both flush unsupported minima in O(K) rounds; the
// lease form avoids the fleet-wide agreement on when to restart.
package election

import "fmt"

// Pair is the (min, leader) tuple nodes exchange, ordered
// lexicographically as in PraSLE Algorithm 1. With node IDs as ranking
// values the two fields coincide in steady state; keeping both preserves
// the paper's shape and lets a ranking function diverge from identity
// later without a wire change.
type Pair struct {
	Min    int64 `json:"min"`
	Leader int64 `json:"leader"`
}

// Less is the lexicographic order: (m1,l1) < (m2,l2) iff m1 < m2, or
// m1 == m2 and l1 < l2.
func (p Pair) Less(q Pair) bool {
	return p.Min < q.Min || (p.Min == q.Min && p.Leader < q.Leader)
}

// Message is one round's broadcast: the sender's best-known pair and the
// remaining rounds it may be relayed (TTL). A message whose TTL has
// drained to zero carries no authority.
type Message struct {
	From int64 `json:"from"`
	Pair Pair  `json:"pair"`
	TTL  int   `json:"ttl"`
}

// DefaultK is the hearsay lease in rounds. All-to-all fleets converge in
// at most K+1 rounds after a failure; larger K tolerates more missed
// rounds (slow peers, dropped datagrams) before a live leader is
// spuriously flushed.
const DefaultK = 8

// State is one node's election state. It is not safe for concurrent use;
// the transport serializes Tick and Observe (netfleet runs both under the
// node's rotation lock).
type State struct {
	id   int64
	k    int
	best Pair // smallest pair currently believed, own pair if none adopted
	ttl  int  // remaining lease on an adopted pair; unused while best is own
}

// New returns a state believing in itself. K <= 0 selects DefaultK.
func New(id int64, k int) *State {
	if k <= 0 {
		k = DefaultK
	}
	s := &State{id: id, k: k}
	s.Restart()
	return s
}

// Restart resets the node to its initial belief (self as minimum and
// leader) — the state a node boots or rejoins with.
func (s *State) Restart() {
	s.best = Pair{Min: s.id, Leader: s.id}
	s.ttl = 0
}

// ID returns the node's identifier.
func (s *State) ID() int64 { return s.id }

// K returns the hearsay lease in rounds.
func (s *State) K() int { return s.k }

// own reports whether the current belief is the node's own pair.
func (s *State) own() bool {
	return s.best == (Pair{Min: s.id, Leader: s.id})
}

// Observe folds one received message into the state: adopt a strictly
// smaller live pair, or refresh the lease when the same pair arrives with
// more life left. Messages with no TTL are ignored — they are hearsay
// whose origin may be gone.
func (s *State) Observe(m Message) {
	if m.TTL <= 0 {
		return
	}
	ttl := m.TTL
	if ttl > s.k {
		// Clamp forged or corrupted leases: no pair may outlive K rounds of
		// silence, whatever a peer claims — this is what makes recovery
		// from arbitrary state O(K) rather than O(corrupted TTL).
		ttl = s.k
	}
	switch {
	case m.Pair.Less(s.best):
		s.best = m.Pair
		s.ttl = ttl
	case m.Pair == s.best && !s.own() && ttl > s.ttl:
		s.ttl = ttl
	}
}

// Tick advances one round: adopted pairs age by one and expire back to
// self-belief when their lease drains. It returns the message to
// broadcast this round — the node's own pair always carries a fresh TTL
// of K; a relayed pair carries the sender's remaining lease, so every
// relay hop strictly shortens a pair's life.
func (s *State) Tick() Message {
	if !s.own() {
		if s.ttl > s.k {
			s.ttl = s.k // corrupted local lease: same clamp as Observe
		}
		s.ttl--
		if s.ttl <= 0 {
			s.Restart()
		}
	}
	ttl := s.k
	if !s.own() {
		ttl = s.ttl
	}
	return Message{From: s.id, Pair: s.best, TTL: ttl}
}

// Leader returns the node currently believed to lead.
func (s *State) Leader() int64 { return s.best.Leader }

// IsLeader reports whether this node believes itself the leader. During
// stabilization two nodes may transiently both answer true; protocols
// building on the election must keep their safety local (netfleet's scrub
// rotation executes each epoch at most once per node regardless of who
// granted it).
func (s *State) IsLeader() bool { return s.best.Leader == s.id }

// Best returns the currently believed (min, leader) pair.
func (s *State) Best() Pair { return s.best }

func (s *State) String() string {
	return fmt.Sprintf("election{id=%d best=(%d,%d) ttl=%d}", s.id, s.best.Min, s.best.Leader, s.ttl)
}
