package eccsched

import (
	"strings"
	"testing"

	"repro/internal/circuits"
	"repro/internal/netlist"
	"repro/internal/synth"
)

// tinyMapping builds a mapping with a known critical structure.
func tinyMapping(t *testing.T, inputs, gatesBetween, outputs int) *synth.Mapping {
	t.Helper()
	b := netlist.NewBuilder("tiny")
	in := b.InputBus(inputs)
	cur := in[0]
	for i := 0; i < gatesBetween; i++ {
		cur = b.Nor(cur, in[(i+1)%inputs])
	}
	outs := make([]int, outputs)
	for i := range outs {
		outs[i] = b.Nor(cur, in[i%inputs])
		cur = outs[i]
	}
	b.OutputBus(outs)
	m, err := synth.Map(b.Build().LowerToNOR(), 4*(inputs+gatesBetween+outputs)+8)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestScheduleBasicAccounting(t *testing.T) {
	m := tinyMapping(t, 4, 10, 2)
	model := DefaultModel(15, 8)
	r := Schedule(m, model)
	if r.Baseline != m.Latency() {
		t.Fatalf("baseline %d, want %d", r.Baseline, m.Latency())
	}
	if r.InputBlocks != 1 { // 4 inputs fit one 15-wide block
		t.Fatalf("input blocks = %d, want 1", r.InputBlocks)
	}
	if r.CriticalOps != 2 {
		t.Fatalf("critical ops = %d, want 2", r.CriticalOps)
	}
	// Proposed = baseline + m (input check) + 2 extra MEM cycles per
	// critical op, absent stalls.
	want := r.Baseline + model.CheckMEMCycles + 2*r.CriticalOps + r.StallCycles
	if r.Proposed != want {
		t.Fatalf("proposed %d, want %d", r.Proposed, want)
	}
	if r.OverheadPct <= 0 {
		t.Fatal("overhead must be positive")
	}
}

func TestInputBlockCount(t *testing.T) {
	for _, tc := range []struct{ inputs, blocks int }{
		{1, 1}, {15, 1}, {16, 2}, {256, 18}, {1001, 67},
	} {
		m := tinyMapping(t, tc.inputs, 5, 1)
		r := Schedule(m, DefaultModel(15, 8))
		if r.InputBlocks != tc.blocks {
			t.Fatalf("%d inputs → %d blocks, want %d", tc.inputs, r.InputBlocks, tc.blocks)
		}
	}
}

func TestDenseCriticalStreamNeedsEightPCs(t *testing.T) {
	// Back-to-back critical ops at 3 MEM cycles each against 24-cycle PC
	// occupancy require ⌈24/3⌉ = 8 PCs for zero stalls — the paper's
	// "at most eight processing crossbars".
	m := tinyMapping(t, 4, 2, 120) // long dense critical tail
	model := DefaultModel(15, 8)
	r := Schedule(m, model)
	if r.MinPCs != 8 {
		t.Fatalf("dense stream MinPCs = %d, want 8", r.MinPCs)
	}
	if r.StallCycles != 0 {
		t.Fatalf("at k=8 a dense stream should not stall, got %d", r.StallCycles)
	}
	// With fewer PCs the same stream must stall.
	model.K = 3
	if r2 := Schedule(m, model); r2.StallCycles == 0 {
		t.Fatal("k=3 should stall on a dense critical stream")
	}
}

func TestSparseCriticalStreamNeedsFewPCs(t *testing.T) {
	// A long non-critical body with only two (adjacent) output writes
	// needs at most two PCs — the regime of the paper's arbiter/voter
	// rows (PC# = 2).
	m := tinyMapping(t, 4, 400, 2)
	r := Schedule(m, DefaultModel(15, 8))
	if r.MinPCs > 2 {
		t.Fatalf("sparse stream MinPCs = %d, want ≤ 2", r.MinPCs)
	}
}

func TestMorePCsNeverSlower(t *testing.T) {
	m := tinyMapping(t, 8, 30, 40)
	prev := -1
	for k := 1; k <= 10; k++ {
		model := DefaultModel(15, k)
		r := Schedule(m, model)
		if prev >= 0 && r.Proposed > prev {
			t.Fatalf("k=%d latency %d worse than k-1's %d", k, r.Proposed, prev)
		}
		prev = r.Proposed
	}
}

func TestValidateModel(t *testing.T) {
	if err := DefaultModel(15, 3).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []CostModel{
		{M: 14, K: 3, CriticalMEMCycles: 3, PCUpdateBusy: 24, PCCheckBusy: 30, CheckMEMCycles: 15},
		{M: 15, K: 0, CriticalMEMCycles: 3, PCUpdateBusy: 24, PCCheckBusy: 30, CheckMEMCycles: 15},
		{M: 15, K: 3, CriticalMEMCycles: 0, PCUpdateBusy: 24, PCCheckBusy: 30, CheckMEMCycles: 15},
	}
	for i, mod := range bad {
		if mod.Validate() == nil {
			t.Errorf("model %d should be invalid", i)
		}
	}
}

// TestTable1Reproduction runs the full Table I flow and checks the
// paper's qualitative findings. Absolute cycle counts differ (our circuit
// generators are substitutions for the unredistributable EPFL netlists —
// see DESIGN.md), but every structural claim of the table must hold.
func TestTable1Reproduction(t *testing.T) {
	rs, err := RunTable1(DefaultTable1Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 11 {
		t.Fatalf("%d rows, want 11", len(rs))
	}
	byName := map[string]Result{}
	for _, r := range rs {
		byName[r.Name] = r
		if r.Proposed <= r.Baseline {
			t.Errorf("%s: proposed %d not above baseline %d", r.Name, r.Proposed, r.Baseline)
		}
		if r.MinPCs < 1 || r.MinPCs > 8 {
			t.Errorf("%s: MinPCs = %d outside the paper's [1,8] bound", r.Name, r.MinPCs)
		}
	}
	// dec is the worst benchmark (dense critical operations), > 100%.
	dec := byName["dec"]
	if dec.OverheadPct < 100 {
		t.Errorf("dec overhead = %.1f%%, want > 100%% (paper: 205.8%%)", dec.OverheadPct)
	}
	for name, r := range byName {
		if name != "dec" && r.OverheadPct >= dec.OverheadPct {
			t.Errorf("%s overhead %.1f%% ≥ dec's %.1f%% — dec must be worst", name, r.OverheadPct, dec.OverheadPct)
		}
	}
	// sin is the best benchmark, ~1-3% (paper: 0.96%).
	sin := byName["sin"]
	if sin.OverheadPct > 5 {
		t.Errorf("sin overhead = %.2f%%, want < 5%% (paper: 0.96%%)", sin.OverheadPct)
	}
	// Long serial benchmarks stay cheap (paper: arbiter 4.05%, voter 7.81%).
	for _, name := range []string{"arbiter", "voter"} {
		if o := byName[name].OverheadPct; o > 12 {
			t.Errorf("%s overhead = %.2f%%, want ≈ 4-8%%", name, o)
		}
	}
	// dec needs the full 8 PCs; voter and priority only 2 (paper values).
	if dec.MinPCs != 8 {
		t.Errorf("dec MinPCs = %d, want 8", dec.MinPCs)
	}
	if byName["voter"].MinPCs != 2 {
		t.Errorf("voter MinPCs = %d, want 2", byName["voter"].MinPCs)
	}
	// Geometric mean lands in the paper's band (~15-30%).
	if gm := GeoMeanOverhead(rs); gm < 8 || gm > 40 {
		t.Errorf("geo-mean overhead = %.2f%%, want in the paper's ~26%% band", gm)
	}
	// voter's overhead is dominated by its 67 input-block checks: the
	// arithmetic the paper's +995 cycles exhibits (67·15 ≈ 1005).
	voter := byName["voter"]
	extra := voter.Proposed - voter.Baseline
	checks := voter.InputBlocks * 15
	if extra < checks || extra > checks+3*voter.CriticalOps+voter.StallCycles {
		t.Errorf("voter extra cycles %d inconsistent with %d check cycles", extra, checks)
	}
}

func TestFormatTable(t *testing.T) {
	m := tinyMapping(t, 4, 10, 2)
	r := Schedule(m, DefaultModel(15, 8))
	s := FormatTable([]Result{r})
	if !strings.Contains(s, "tiny") || !strings.Contains(s, "Geo. Mean") {
		t.Fatalf("table rendering:\n%s", s)
	}
}

func TestRunBenchmarkSingle(t *testing.T) {
	bm, _ := circuits.ByName("ctrl")
	r, err := RunBenchmark(bm, DefaultTable1Config())
	if err != nil {
		t.Fatal(err)
	}
	// ctrl: tiny circuit, dense outputs → among the highest overheads
	// (paper: 50%).
	if r.OverheadPct < 25 {
		t.Fatalf("ctrl overhead = %.2f%%, want ≳ 50%%", r.OverheadPct)
	}
}

func TestGeoMeanHelpers(t *testing.T) {
	rs := []Result{{OverheadPct: 10, MinPCs: 2}, {OverheadPct: 40, MinPCs: 8}}
	if gm := GeoMeanOverhead(rs); gm < 19.9 || gm > 20.1 {
		t.Fatalf("GeoMeanOverhead = %f, want 20", gm)
	}
	if gm := GeoMeanMinPCs(rs); gm < 3.9 || gm > 4.1 {
		t.Fatalf("GeoMeanMinPCs = %f, want 4", gm)
	}
	if GeoMeanOverhead(nil) != 0 || GeoMeanMinPCs(nil) != 0 {
		t.Fatal("empty geo means should be 0")
	}
}
