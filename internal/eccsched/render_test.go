package eccsched

import (
	"strings"
	"testing"
)

func TestFormatTimeline(t *testing.T) {
	m := tinyMapping(t, 20, 30, 6)
	model := DefaultModel(15, 2)
	events, r := Timeline(m, model)
	s := FormatTimeline(events, model.K, r.Proposed)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 2+model.K+1 { // header + MEM + k PCs + legend
		t.Fatalf("timeline has %d lines:\n%s", len(lines), s)
	}
	for _, g := range []string{"c", "g", "C", "#"} {
		if !strings.Contains(s, g) {
			t.Fatalf("timeline missing glyph %q:\n%s", g, s)
		}
	}
	// The MEM lane must have no blanks inside the window.
	memLane := lines[1]
	body := memLane[strings.Index(memLane, "|")+1 : strings.LastIndex(memLane, "|")]
	if strings.Contains(body, " ") {
		t.Fatalf("gap in MEM lane:\n%s", s)
	}
}

func TestFormatTimelineEmptyWindow(t *testing.T) {
	if FormatTimeline(nil, 2, 0) != "" {
		t.Fatal("zero window should render empty")
	}
}
