// Package eccsched implements the paper's extension of the SIMPLER tool
// (Section V-B): given a single-row MAGIC schedule, it adds the
// operations the proposed ECC architecture requires and computes the
// resulting latency with a greedy scheduler that checks MEM/CMEM
// availability, "adding cycles if they are not available when an
// operation needs to occur".
//
// Cost model (full rationale in DESIGN.md):
//
//   - Input checking. Function inputs occupy the first NumInputs cells of
//     the row; under SIMD execution (the same function in every row) the
//     inputs span ⌈inputs/m⌉ block-columns, and each block-column is
//     verified by copying its m columns through the shifters into a
//     processing crossbar — m MEM cycles per input block-column. The
//     XOR3 syndrome tree, checking-crossbar compare and any correction
//     then proceed inside the CMEM pipeline, occupying the chosen PC but
//     not the MEM.
//   - Critical operations. A step that writes a primary output must keep
//     the CMEM in sync: MEM is occupied 3 cycles (copy old value out,
//     execute the gate, copy new value out) and a processing crossbar is
//     occupied for the update pipeline (receive check bits, 8-cycle XOR3
//     and write-back for the leading then the counter family). If every
//     PC is busy, MEM stalls until one frees.
//   - Everything else (plain gates, batched initializations, constant
//     writes) costs its baseline single cycle.
package eccsched

import (
	"fmt"
	"math"

	"repro/internal/synth"
)

// CostModel parameterizes the greedy scheduler.
type CostModel struct {
	M                 int // block side length
	K                 int // processing crossbars available
	CriticalMEMCycles int // MEM occupancy per critical op
	PCUpdateBusy      int // PC occupancy per critical update
	PCCheckBusy       int // PC occupancy per input-block check
	CheckMEMCycles    int // MEM occupancy per input-block check (the m copies)
}

// DefaultModel returns the cost model used for the Table I reproduction:
// m = 15, 3-cycle critical ops, 24-cycle PC updates (so a fully dense
// critical stream needs ⌈24/3⌉ = 8 PCs — the paper's "at most eight"),
// and a 2m-cycle PC occupancy per input check: the XOR3 syndrome tree is
// pipelined against the m line copies, so the PC is engaged for roughly
// two copy batches. (The voter row of Table I confirms this scale: 67
// input blocks are checked with PC(#) = 2 and essentially no stall
// cycles, which requires PC occupancy ≲ 2m.)
func DefaultModel(m, k int) CostModel {
	return CostModel{
		M:                 m,
		K:                 k,
		CriticalMEMCycles: 3,
		PCUpdateBusy:      24,
		PCCheckBusy:       2 * m,
		CheckMEMCycles:    m,
	}
}

// Validate checks the model.
func (c CostModel) Validate() error {
	if c.M < 3 || c.M%2 == 0 {
		return fmt.Errorf("eccsched: invalid block size m=%d", c.M)
	}
	if c.K < 1 {
		return fmt.Errorf("eccsched: need at least one PC")
	}
	if c.CriticalMEMCycles < 1 || c.PCUpdateBusy < 1 || c.PCCheckBusy < 1 || c.CheckMEMCycles < 1 {
		return fmt.Errorf("eccsched: non-positive cost in %+v", c)
	}
	return nil
}

// Result is one row of the Table I reproduction.
type Result struct {
	Name        string
	Baseline    int     // SIMPLER latency without ECC
	Proposed    int     // latency with the ECC mechanism
	OverheadPct float64 // (Proposed-Baseline)/Baseline · 100
	MinPCs      int     // minimal k for which no stall cycles occur
	InputBlocks int     // block-columns checked before execution
	CriticalOps int     // output-writing operations
	StallCycles int     // MEM cycles lost waiting for a free PC at K
}

// Schedule runs the greedy availability scheduler over a SIMPLER mapping.
func Schedule(m *synth.Mapping, model CostModel) Result {
	if err := model.Validate(); err != nil {
		panic(err)
	}
	base := m.Latency()
	proposed, stalls := simulate(m, model, model.K, nil)

	res := Result{
		Name:        m.Netlist.Name(),
		Baseline:    base,
		Proposed:    proposed,
		OverheadPct: 100 * float64(proposed-base) / float64(base),
		InputBlocks: (m.Netlist.NumInputs() + model.M - 1) / model.M,
		CriticalOps: m.CriticalOps(),
		StallCycles: stalls,
	}
	res.MinPCs = minPCs(m, model)
	return res
}

// EventKind labels a timeline event.
type EventKind uint8

// Timeline event kinds.
const (
	EvInputCheck EventKind = iota // MEM copies + PC check pipeline
	EvGate                        // plain MEM gate or init cycle
	EvCritical                    // critical op: MEM protocol + PC update
	EvStall                       // MEM idle waiting for a PC
)

// String names the event kind.
func (k EventKind) String() string {
	return [...]string{"input-check", "gate", "critical", "stall"}[k]
}

// Event is one occupancy interval of the schedule timeline.
type Event struct {
	Kind     EventKind
	Start    int // MEM cycle the event begins
	MEMDur   int // cycles MEM is occupied
	PC       int // processing crossbar engaged (−1 for none)
	PCBusyTo int // cycle the PC frees (when PC ≥ 0)
}

// simulate returns the proposed latency and stall cycles with k PCs,
// optionally recording timeline events.
func simulate(m *synth.Mapping, model CostModel, k int, rec func(Event)) (latency, stalls int) {
	pcFree := make([]int, k)
	t := 0

	acquirePC := func(now int) (int, int) {
		best := 0
		for i := 1; i < k; i++ {
			if pcFree[i] < pcFree[best] {
				best = i
			}
		}
		start := now
		if pcFree[best] > start {
			start = pcFree[best]
		}
		return best, start
	}

	emit := func(e Event) {
		if rec != nil {
			rec(e)
		}
	}

	// Phase 1: verify every input block-column before execution.
	inputBlocks := (m.Netlist.NumInputs() + model.M - 1) / model.M
	for b := 0; b < inputBlocks; b++ {
		pc, start := acquirePC(t)
		if start > t {
			emit(Event{Kind: EvStall, Start: t, MEMDur: start - t, PC: -1})
			stalls += start - t
			t = start
		}
		pcFree[pc] = t + model.PCCheckBusy
		emit(Event{Kind: EvInputCheck, Start: t, MEMDur: model.CheckMEMCycles, PC: pc, PCBusyTo: pcFree[pc]})
		t += model.CheckMEMCycles
	}

	// Phase 2: the function itself, with CMEM updates on critical steps.
	gateRun := 0
	flushGates := func(end int) {
		if gateRun > 0 {
			emit(Event{Kind: EvGate, Start: end - gateRun, MEMDur: gateRun, PC: -1})
			gateRun = 0
		}
	}
	for _, s := range m.Steps {
		critical := (s.Kind == synth.StepGate || s.Kind == synth.StepConst) && s.Critical
		if !critical {
			t++
			gateRun++
			continue
		}
		flushGates(t)
		pc, start := acquirePC(t)
		if start > t {
			emit(Event{Kind: EvStall, Start: t, MEMDur: start - t, PC: -1})
			stalls += start - t
			t = start
		}
		pcFree[pc] = t + model.PCUpdateBusy
		emit(Event{Kind: EvCritical, Start: t, MEMDur: model.CriticalMEMCycles, PC: pc, PCBusyTo: pcFree[pc]})
		t += model.CriticalMEMCycles
	}
	flushGates(t)
	return t, stalls
}

// Timeline runs the scheduler and returns the occupancy events alongside
// the result — the data behind a Gantt view of MEM/PC overlap.
func Timeline(m *synth.Mapping, model CostModel) ([]Event, Result) {
	var events []Event
	r := Schedule(m, model)
	simulate(m, model, model.K, func(e Event) { events = append(events, e) })
	return events, r
}

// minPCs finds the smallest PC count whose latency equals the
// infinite-resource latency (i.e. no stalls), which is what the paper's
// PC(#) column reports. The search is capped at maxPCSearch.
const maxPCSearch = 32

func minPCs(m *synth.Mapping, model CostModel) int {
	ref, _ := simulate(m, model, maxPCSearch, nil)
	for k := 1; k < maxPCSearch; k++ {
		if lat, _ := simulate(m, model, k, nil); lat == ref {
			return k
		}
	}
	return maxPCSearch
}

// GeoMeanOverhead returns the geometric mean of the overhead percentages
// across results — the paper's summary row (≈26%).
func GeoMeanOverhead(rs []Result) float64 {
	if len(rs) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range rs {
		if r.OverheadPct <= 0 {
			return math.NaN()
		}
		sum += math.Log(r.OverheadPct)
	}
	return math.Exp(sum / float64(len(rs)))
}

// GeoMeanMinPCs returns the geometric mean of the PC(#) column.
func GeoMeanMinPCs(rs []Result) float64 {
	if len(rs) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range rs {
		sum += math.Log(float64(r.MinPCs))
	}
	return math.Exp(sum / float64(len(rs)))
}
