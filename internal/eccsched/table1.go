package eccsched

import (
	"fmt"
	"strings"

	"repro/internal/circuits"
	"repro/internal/synth"
)

// Table1Config parameterizes the Table I reproduction.
type Table1Config struct {
	RowSize int // MEM row length (the paper's n = 1020)
	M       int // block side (15)
	K       int // PCs available during scheduling (8 covers every benchmark)
}

// DefaultTable1Config returns the paper's case-study parameters.
func DefaultTable1Config() Table1Config {
	return Table1Config{RowSize: 1020, M: 15, K: 8}
}

// RunTable1 synthesizes every benchmark with the SIMPLER mapper and runs
// the ECC-extended greedy scheduler, reproducing Table I. It returns one
// Result per benchmark in the paper's row order.
func RunTable1(cfg Table1Config) ([]Result, error) {
	var out []Result
	for _, bm := range circuits.All() {
		r, err := RunBenchmark(bm, cfg)
		if err != nil {
			return nil, fmt.Errorf("table1: %s: %w", bm.Name, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// RunBenchmark maps and schedules a single benchmark.
func RunBenchmark(bm circuits.Benchmark, cfg Table1Config) (Result, error) {
	nor := bm.Build().LowerToNOR()
	m, err := synth.MapWith(nor, cfg.RowSize, synth.Opts{ReuseInputs: bm.ReuseInputs})
	if err != nil {
		return Result{}, err
	}
	r := Schedule(m, DefaultModel(cfg.M, cfg.K))
	r.Name = bm.Name // drop the "-nor" suffix the lowering pass appends
	return r, nil
}

// FormatTable renders results in the paper's Table I layout.
func FormatTable(rs []Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-11s %10s %10s %13s %7s\n", "Benchmark", "Baseline", "Proposed", "Overhead (%)", "PC (#)")
	for _, r := range rs {
		fmt.Fprintf(&sb, "%-11s %10d %10d %13.2f %7d\n",
			r.Name, r.Baseline, r.Proposed, r.OverheadPct, r.MinPCs)
	}
	fmt.Fprintf(&sb, "%-11s %10s %10s %13.2f %7.2f\n", "Geo. Mean", "", "",
		GeoMeanOverhead(rs), GeoMeanMinPCs(rs))
	return sb.String()
}
