package eccsched

import "testing"

func TestTimelineCoversLatency(t *testing.T) {
	m := tinyMapping(t, 20, 30, 10)
	model := DefaultModel(15, 2)
	events, r := Timeline(m, model)
	if len(events) == 0 {
		t.Fatal("no events")
	}
	// Events are time-ordered, non-overlapping on MEM, and their MEM
	// durations sum to the proposed latency.
	total := 0
	prevEnd := 0
	for i, e := range events {
		if e.Start < prevEnd {
			t.Fatalf("event %d starts at %d before previous end %d", i, e.Start, prevEnd)
		}
		if e.Start != prevEnd {
			t.Fatalf("event %d leaves a MEM gap [%d,%d)", i, prevEnd, e.Start)
		}
		if e.MEMDur <= 0 {
			t.Fatalf("event %d has non-positive duration", i)
		}
		prevEnd = e.Start + e.MEMDur
		total += e.MEMDur
	}
	if total != r.Proposed {
		t.Fatalf("timeline covers %d cycles, latency is %d", total, r.Proposed)
	}
}

func TestTimelineEventKinds(t *testing.T) {
	m := tinyMapping(t, 20, 30, 10)
	events, r := Timeline(m, DefaultModel(15, 2))
	counts := map[EventKind]int{}
	stallCycles := 0
	for _, e := range events {
		counts[e.Kind]++
		if e.Kind == EvStall {
			stallCycles += e.MEMDur
		}
		if (e.Kind == EvInputCheck || e.Kind == EvCritical) && e.PC < 0 {
			t.Fatalf("%v event without a PC", e.Kind)
		}
		if e.Kind == EvCritical && e.PCBusyTo <= e.Start {
			t.Fatal("critical event frees its PC before starting")
		}
	}
	if counts[EvInputCheck] != r.InputBlocks {
		t.Fatalf("input-check events %d, want %d", counts[EvInputCheck], r.InputBlocks)
	}
	if counts[EvCritical] != r.CriticalOps {
		t.Fatalf("critical events %d, want %d", counts[EvCritical], r.CriticalOps)
	}
	if stallCycles != r.StallCycles {
		t.Fatalf("stall cycles %d, want %d", stallCycles, r.StallCycles)
	}
	// 10 back-to-back criticals on k=2 must stall somewhere.
	if counts[EvStall] == 0 {
		t.Fatal("expected stalls with k=2 and a dense critical tail")
	}
}

func TestEventKindString(t *testing.T) {
	if EvInputCheck.String() != "input-check" || EvStall.String() != "stall" {
		t.Fatal("event kind names")
	}
}
