package eccsched

import (
	"fmt"
	"strings"
)

// FormatTimeline renders a schedule's first `window` MEM cycles as an
// ASCII Gantt strip: one lane for the MEM and one per processing
// crossbar. MEM glyphs: c = input-check copy, g = gate/init, C =
// critical-op protocol, . = stall. PC lanes show # while the PC is busy.
func FormatTimeline(events []Event, k, window int) string {
	if window <= 0 {
		return ""
	}
	memLane := make([]byte, window)
	for i := range memLane {
		memLane[i] = ' '
	}
	pcLanes := make([][]byte, k)
	for p := range pcLanes {
		pcLanes[p] = make([]byte, window)
		for i := range pcLanes[p] {
			pcLanes[p][i] = ' '
		}
	}
	glyph := map[EventKind]byte{
		EvInputCheck: 'c', EvGate: 'g', EvCritical: 'C', EvStall: '.',
	}
	for _, e := range events {
		for t := e.Start; t < e.Start+e.MEMDur && t < window; t++ {
			if t >= 0 {
				memLane[t] = glyph[e.Kind]
			}
		}
		if e.PC >= 0 && e.PC < k {
			for t := e.Start; t < e.PCBusyTo && t < window; t++ {
				if t >= 0 {
					pcLanes[e.PC][t] = '#'
				}
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "cycle 0%*s%d\n", window-len(fmt.Sprint(window))-6, "", window)
	fmt.Fprintf(&sb, "MEM  |%s|\n", memLane)
	for p := range pcLanes {
		fmt.Fprintf(&sb, "PC %d |%s|\n", p, pcLanes[p])
	}
	sb.WriteString("      c=input-check  g=gate/init  C=critical  .=stall  #=PC busy\n")
	return sb.String()
}
