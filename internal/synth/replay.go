package synth

import (
	"fmt"

	"repro/internal/netlist"
)

// Replay simulates a mapping's step sequence on an abstract row of cells
// and returns the primary output values for the given input assignment.
// It enforces MAGIC's initialization discipline: a gate writing a cell
// that was not initialized since its last use is an error. Replay is the
// reference executor used to validate mappings; the cycle-accurate
// machine package executes the same steps on a simulated crossbar.
func (m *Mapping) Replay(in []bool) ([]bool, error) {
	nl := m.Netlist
	if len(in) != nl.NumInputs() {
		return nil, fmt.Errorf("synth: replay got %d inputs, want %d", len(in), nl.NumInputs())
	}
	row := make([]bool, m.RowSize)
	inited := make([]bool, m.RowSize)
	for i, v := range in {
		row[i] = v
	}
	for si, s := range m.Steps {
		switch s.Kind {
		case StepInit:
			for _, c := range s.Init {
				row[c] = true
				inited[c] = true
			}
		case StepConst:
			row[s.Cell] = s.Value
			inited[s.Cell] = false
		case StepGate:
			if !inited[s.Cell] {
				return nil, fmt.Errorf("synth: step %d writes cell %d without initialization", si, s.Cell)
			}
			row[s.Cell] = !(row[s.A] || row[s.B])
			inited[s.Cell] = false
		}
	}
	out := make([]bool, nl.NumOutputs())
	for i, id := range nl.Outputs() {
		cell, ok := m.CellOf[id]
		if !ok {
			return nil, fmt.Errorf("synth: output node %d has no cell", id)
		}
		out[i] = row[cell]
	}
	return out, nil
}

// Validate replays the mapping against the netlist on the given input
// vectors and reports the first mismatch.
func (m *Mapping) Validate(vectors [][]bool) error {
	for vi, in := range vectors {
		got, err := m.Replay(in)
		if err != nil {
			return fmt.Errorf("vector %d: %w", vi, err)
		}
		want := m.Netlist.Eval(in)
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("vector %d: output %d = %v, want %v", vi, i, got[i], want[i])
			}
		}
	}
	return nil
}

// MinRowSize binary-searches for the smallest row size in [lo, hi] that
// the netlist maps into (fit is monotone in row size because extra cells
// only enlarge the reuse pool). It returns hi+1 if even hi cells do not
// suffice.
func MinRowSize(nl *netlist.Netlist, lo, hi int) int {
	if lo < nl.NumInputs()+1 {
		lo = nl.NumInputs() + 1
	}
	ans := hi + 1
	for lo <= hi {
		mid := (lo + hi) / 2
		if _, err := Map(nl, mid); err == nil {
			ans = mid
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	return ans
}
