package synth

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/netlist"
)

// adderNetlist builds a w-bit ripple-carry adder and lowers it to NOR form.
func adderNetlist(w int) *netlist.Netlist {
	b := netlist.NewBuilder("adder")
	a := b.InputBus(w)
	x := b.InputBus(w)
	carry := b.Const(false)
	sum := make([]int, w)
	for i := 0; i < w; i++ {
		axb := b.Xor(a[i], x[i])
		sum[i] = b.Xor(axb, carry)
		carry = b.Or(b.And(a[i], x[i]), b.And(axb, carry))
	}
	b.OutputBus(sum)
	b.Output(carry)
	return b.Build().LowerToNOR()
}

func randVectors(rng *rand.Rand, n, count int) [][]bool {
	vs := make([][]bool, count)
	for i := range vs {
		v := make([]bool, n)
		for j := range v {
			v[j] = rng.Intn(2) == 0
		}
		vs[i] = v
	}
	return vs
}

func TestMapSmallAdderCorrect(t *testing.T) {
	nl := adderNetlist(8)
	m, err := Map(nl, 256)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if err := m.Validate(randVectors(rng, nl.NumInputs(), 200)); err != nil {
		t.Fatal(err)
	}
}

func TestMapRejectsNonNORForm(t *testing.T) {
	b := netlist.NewBuilder("raw")
	x, y := b.Input(), b.Input()
	b.Output(b.Xor(x, y))
	if _, err := Map(b.Build(), 64); err == nil {
		t.Fatal("expected error for non-NOR netlist")
	}
}

func TestMapRejectsTooManyInputs(t *testing.T) {
	nl := adderNetlist(8) // 16 inputs
	if _, err := Map(nl, 16); err == nil {
		t.Fatal("expected error when inputs alone fill the row")
	}
}

func TestRowOverflowDetected(t *testing.T) {
	// A 16-bit adder cannot execute in a row with almost no working cells.
	nl := adderNetlist(16)
	if _, err := Map(nl, nl.NumInputs()+2); err == nil {
		t.Fatal("expected row-overflow error")
	}
}

func TestCellReuseKeepsRowSmall(t *testing.T) {
	// The whole point of SIMPLER: a circuit with hundreds of gates fits a
	// row not much larger than its I/O, thanks to cell reuse.
	nl := adderNetlist(16) // ~200+ NOR gates
	min := MinRowSize(nl, nl.NumInputs()+1, nl.NumInputs()+nl.GateCount())
	if min > nl.NumInputs()+60 {
		t.Fatalf("min row size %d — cell reuse not effective (inputs=%d, gates=%d)",
			min, nl.NumInputs(), nl.GateCount())
	}
	// And the minimal mapping is still correct.
	m, err := Map(nl, min)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	if err := m.Validate(randVectors(rng, nl.NumInputs(), 100)); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyAccounting(t *testing.T) {
	nl := adderNetlist(8)
	m, err := Map(nl, 128)
	if err != nil {
		t.Fatal(err)
	}
	gates, inits, consts := 0, 0, 0
	for _, s := range m.Steps {
		switch s.Kind {
		case StepGate:
			gates++
		case StepInit:
			inits++
		case StepConst:
			consts++
		}
	}
	if gates != m.GateCycles || inits != m.InitCycles || consts != m.ConstCycles {
		t.Fatal("cycle counters disagree with steps")
	}
	if m.Latency() != gates+inits+consts {
		t.Fatal("Latency() mismatch")
	}
	if gates != nl.GateCount() {
		t.Fatalf("executed %d gates, netlist has %d — every gate must run exactly once",
			gates, nl.GateCount())
	}
	if inits < 1 {
		t.Fatal("expected at least the initial batch-init cycle")
	}
}

func TestSmallerRowsMoreInitCycles(t *testing.T) {
	// Shrinking the row forces more frequent batch re-initializations —
	// the latency/area trade-off SIMPLER exposes.
	nl := adderNetlist(32)
	big, err := Map(nl, 2048)
	if err != nil {
		t.Fatal(err)
	}
	min := MinRowSize(nl, nl.NumInputs()+1, 2048)
	small, err := Map(nl, min)
	if err != nil {
		t.Fatal(err)
	}
	if small.InitCycles <= big.InitCycles {
		t.Fatalf("init cycles: small row %d, big row %d — expected more in small row",
			small.InitCycles, big.InitCycles)
	}
	if small.GateCycles != big.GateCycles {
		t.Fatal("gate count must not depend on row size")
	}
}

func TestCriticalStepsAreExactlyOutputs(t *testing.T) {
	nl := adderNetlist(8)
	m, err := Map(nl, 128)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.CriticalOps(); got != nl.NumOutputs() {
		t.Fatalf("critical ops = %d, want %d (one per primary output)", got, nl.NumOutputs())
	}
	// And the critical steps' nodes are exactly the output set.
	outSet := make(map[int]bool)
	for _, o := range nl.Outputs() {
		outSet[o] = true
	}
	for _, s := range m.Steps {
		if s.Critical && !outSet[s.Node] {
			t.Fatalf("non-output node %d marked critical", s.Node)
		}
	}
}

func TestInputsPinnedToPrefixCells(t *testing.T) {
	nl := adderNetlist(8)
	m, err := Map(nl, 128)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range nl.Inputs() {
		if m.CellOf[id] != i {
			t.Fatalf("input %d at cell %d, want %d", i, m.CellOf[id], i)
		}
	}
	// No step may ever write an input cell.
	for si, s := range m.Steps {
		switch s.Kind {
		case StepGate, StepConst:
			if s.Cell < nl.NumInputs() {
				t.Fatalf("step %d writes input cell %d", si, s.Cell)
			}
		case StepInit:
			for _, c := range s.Init {
				if c < nl.NumInputs() {
					t.Fatalf("init step %d touches input cell %d", si, c)
				}
			}
		}
	}
}

func TestPeakLiveWithinRow(t *testing.T) {
	nl := adderNetlist(16)
	m, err := Map(nl, 100)
	if err != nil {
		t.Fatal(err)
	}
	if m.PeakLive > 100 {
		t.Fatalf("peak live cells %d exceeds row size", m.PeakLive)
	}
}

func TestMapRandomCircuitsProperty(t *testing.T) {
	// Random NOR DAGs must map and replay correctly at both generous and
	// minimal row sizes.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := netlist.NewBuilder("rand")
		nodes := b.InputBus(3 + rng.Intn(6))
		for i := 0; i < 20+rng.Intn(60); i++ {
			x := nodes[rng.Intn(len(nodes))]
			y := nodes[rng.Intn(len(nodes))]
			if rng.Intn(4) == 0 {
				nodes = append(nodes, b.Not(x))
			} else {
				nodes = append(nodes, b.Nor(x, y))
			}
		}
		for i := 0; i < 1+rng.Intn(4); i++ {
			b.Output(nodes[rng.Intn(len(nodes))])
		}
		nl := b.Build().LowerToNOR()
		min := MinRowSize(nl, nl.NumInputs()+1, nl.NumInputs()+nl.GateCount()+2)
		for _, rows := range []int{min, min + 17} {
			m, err := Map(nl, rows)
			if err != nil {
				return false
			}
			if err := m.Validate(randVectors(rng, nl.NumInputs(), 30)); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestConstantNodesHandled(t *testing.T) {
	// A netlist that retains a constant after lowering must still map:
	// the constant is written via the driver (StepConst).
	b := netlist.NewBuilder("const")
	x := b.Input()
	b.Output(b.Const(true)) // output tied to 1 → Buf(const) after Build
	b.Output(b.Not(x))
	nl := b.Build().LowerToNOR()
	m, err := Map(nl, 16)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Replay([]bool{false})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != true || out[1] != true {
		t.Fatalf("outputs = %v", out)
	}
}

func TestReplayDetectsUninitializedWrite(t *testing.T) {
	nl := adderNetlist(4)
	m, err := Map(nl, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the schedule: drop all init steps.
	var bad []Step
	for _, s := range m.Steps {
		if s.Kind != StepInit {
			bad = append(bad, s)
		}
	}
	m.Steps = bad
	if _, err := m.Replay(make([]bool, nl.NumInputs())); err == nil {
		t.Fatal("replay accepted a schedule with no initialization")
	}
}
