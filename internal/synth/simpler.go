// Package synth reimplements the SIMPLER MAGIC flow (Ben-Hur et al., IEEE
// TCAD 2020), which the paper uses to generate its latency benchmarks: a
// logic function expressed as a NOR/NOT netlist is mapped to a sequence of
// MAGIC operations executed entirely within a single crossbar row, reusing
// cells by re-initializing them once their value is dead.
//
// The mapper follows the published algorithm's structure:
//
//  1. A Cell-Usage (CU) estimate is computed per node — a Sethi-Ullman
//     style register count generalized to the gate DAG — and children are
//     visited in decreasing-CU order so the subtree needing more live
//     cells runs while fewer siblings are held.
//  2. Gates execute in that order, each allocating one output cell.
//     When a node's last consumer has executed its cell is released.
//  3. Released cells need re-initialization (MAGIC outputs must start at
//     LRS). Re-initializations are batched: when the allocator runs out
//     of initialized cells, all released cells are initialized together
//     in a single cycle — SIMPLER's "initialization cycles".
//
// Total latency = gate cycles + initialization cycles, the quantity
// reported as "Baseline" in the paper's Table I.
package synth

import (
	"fmt"
	"sort"

	"repro/internal/netlist"
)

// StepKind discriminates schedule steps.
type StepKind uint8

const (
	// StepGate executes one MAGIC NOR/NOT, writing one cell.
	StepGate StepKind = iota
	// StepInit is a batched initialization cycle: all listed cells are
	// set to LRS simultaneously.
	StepInit
	// StepConst writes a constant into a cell via the write driver.
	StepConst
)

// Step is one clock cycle of the mapped program.
type Step struct {
	Kind     StepKind
	Node     int   // netlist node id (StepGate/StepConst)
	Cell     int   // output cell (StepGate/StepConst)
	A, B     int   // operand cells (StepGate; B == A for NOT)
	IsNot    bool  // StepGate: single-input NOT
	Critical bool  // StepGate/StepConst: writes a primary output
	Init     []int // StepInit: cells initialized this cycle
	Value    bool  // StepConst: the constant value
}

// Mapping is the result of mapping a netlist onto one crossbar row.
type Mapping struct {
	Netlist  *netlist.Netlist
	RowSize  int
	Steps    []Step
	CellOf   map[int]int // node id → cell index (inputs and outputs pinned)
	PeakLive int         // maximum simultaneously live cells (incl. inputs)

	GateCycles  int
	InitCycles  int
	ConstCycles int
}

// Latency returns the total cycle count — SIMPLER's figure of merit.
func (m *Mapping) Latency() int { return m.GateCycles + m.InitCycles + m.ConstCycles }

// CriticalOps returns the number of output-writing (ECC-critical) steps.
func (m *Mapping) CriticalOps() int {
	n := 0
	for _, s := range m.Steps {
		if s.Critical {
			n++
		}
	}
	return n
}

// Order selects the gate execution order.
type Order uint8

const (
	// OrderAuto tries OrderCU and falls back to OrderTopo on overflow.
	OrderAuto Order = iota
	// OrderCU is SIMPLER's published heuristic: outputs and children are
	// visited in decreasing cell-usage order (depth-first). Best for
	// tree-like circuits.
	OrderCU
	// OrderTopo executes gates in topological creation order, which for
	// layered circuits (barrel shifters, compressor trees) frees whole
	// layers at a time and needs far fewer live cells than the DFS.
	OrderTopo
)

// Opts tunes the mapper.
type Opts struct {
	// ReuseInputs allows input cells to be released (and re-initialized)
	// once their last consumer has executed, as the published SIMPLER
	// algorithm does. With it false inputs stay pinned for the whole
	// function — required when the caller must preserve the input data in
	// place. Benchmarks whose input count approaches the row size (e.g.
	// voter's 1001 inputs in a 1020-cell row) need ReuseInputs.
	ReuseInputs bool
	// Order selects the scheduling order (default OrderAuto).
	Order Order
}

// Map schedules the netlist into a single row of rowSize cells with
// default options (inputs pinned). See MapWith.
func Map(nl *netlist.Netlist, rowSize int) (*Mapping, error) {
	return MapWith(nl, rowSize, Opts{})
}

// MapWith schedules the netlist into a single row of rowSize cells. The
// netlist must be in NOR form (see Netlist.LowerToNOR). Inputs are pinned
// to cells [0, NumInputs); all other cells are working cells. An error is
// returned if the circuit cannot fit.
func MapWith(nl *netlist.Netlist, rowSize int, opts Opts) (*Mapping, error) {
	if opts.Order == OrderAuto {
		cuOpts := opts
		cuOpts.Order = OrderCU
		if m, err := MapWith(nl, rowSize, cuOpts); err == nil {
			return m, nil
		}
		opts.Order = OrderTopo
	}
	return mapWith(nl, rowSize, opts)
}

func mapWith(nl *netlist.Netlist, rowSize int, opts Opts) (*Mapping, error) {
	if !nl.IsNORForm() {
		return nil, fmt.Errorf("synth: netlist %q is not in NOR form", nl.Name())
	}
	if nl.NumInputs() >= rowSize {
		return nil, fmt.Errorf("synth: %d inputs do not fit in a %d-cell row", nl.NumInputs(), rowSize)
	}

	m := &mapper{
		nl:        nl,
		opts:      opts,
		out:       &Mapping{Netlist: nl, RowSize: rowSize, CellOf: make(map[int]int)},
		cellOf:    make([]int, nl.NumNodes()),
		computed:  make([]bool, nl.NumNodes()),
		isOutput:  make([]bool, nl.NumNodes()),
		reachable: markReachable(nl),
	}
	// Liveness counts only reachable consumers: a value is dead once the
	// last gate that will actually execute has consumed it.
	m.refs = make([]int, nl.NumNodes())
	for id := 0; id < nl.NumNodes(); id++ {
		if !m.reachable[id] {
			continue
		}
		g := nl.Gate(id)
		switch g.Op {
		case netlist.Not, netlist.Buf:
			m.refs[g.A]++
		case netlist.Nor:
			m.refs[g.A]++
			m.refs[g.B]++
		}
	}
	for i := range m.cellOf {
		m.cellOf[i] = -1
	}
	for _, id := range nl.Outputs() {
		m.isOutput[id] = true
	}
	// Pin inputs.
	for i, id := range nl.Inputs() {
		m.cellOf[id] = i
		m.computed[id] = true
	}
	// Working cells start dirty (unknown state): the first allocation
	// triggers one batch init covering the whole working region.
	for c := nl.NumInputs(); c < rowSize; c++ {
		m.dirty = append(m.dirty, c)
	}

	m.computeCU()
	if err := m.run(); err != nil {
		return nil, err
	}

	m.out.CellOf = make(map[int]int, nl.NumInputs()+nl.NumOutputs())
	for _, id := range nl.Inputs() {
		m.out.CellOf[id] = m.cellOf[id]
	}
	for _, id := range nl.Outputs() {
		m.out.CellOf[id] = m.cellOf[id]
	}
	return m.out, nil
}

type mapper struct {
	nl        *netlist.Netlist
	opts      Opts
	out       *Mapping
	cu        []int
	cellOf    []int
	refs      []int // remaining reachable consumers per node
	computed  []bool
	isOutput  []bool
	reachable []bool

	free  []int // initialized, ready-to-write cells
	dirty []int // released cells awaiting batch init
	live  int
}

// markReachable flags every node on a path to a primary output.
func markReachable(nl *netlist.Netlist) []bool {
	reach := make([]bool, nl.NumNodes())
	stack := append([]int(nil), nl.Outputs()...)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if reach[id] {
			continue
		}
		reach[id] = true
		g := nl.Gate(id)
		switch g.Op {
		case netlist.Not, netlist.Buf:
			stack = append(stack, g.A)
		case netlist.Nor:
			stack = append(stack, g.A, g.B)
		}
	}
	return reach
}

// computeCU fills the Sethi-Ullman-style cell-usage estimate. Sources
// cost 0 (inputs are pinned, constants are written on demand); a gate's
// CU is max over its CU-descending-sorted children of (CU(child)+index),
// but at least 1 for its own output cell.
func (m *mapper) computeCU() {
	m.cu = make([]int, m.nl.NumNodes())
	for id := 0; id < m.nl.NumNodes(); id++ {
		g := m.nl.Gate(id)
		switch g.Op {
		case netlist.Input, netlist.Const0, netlist.Const1:
			m.cu[id] = 0
		case netlist.Not, netlist.Buf:
			m.cu[id] = maxInt(m.cu[g.A], 1)
		default: // Nor
			a, b := m.cu[g.A], m.cu[g.B]
			if a < b {
				a, b = b, a
			}
			m.cu[id] = maxInt(maxInt(a, b+1), 1)
		}
	}
}

// run executes the scheduling pass in the configured order.
func (m *mapper) run() error {
	if m.opts.Order == OrderTopo {
		for id := 0; id < m.nl.NumNodes(); id++ {
			if !m.reachable[id] || m.computed[id] {
				continue
			}
			if op := m.nl.Gate(id).Op; op == netlist.Input {
				continue
			}
			if err := m.execute(id); err != nil {
				return err
			}
		}
		return nil
	}
	// OrderCU: outputs in decreasing-CU order, each evaluated by an
	// explicit-stack DFS that visits higher-CU children first.
	outs := append([]int(nil), m.nl.Outputs()...)
	sort.SliceStable(outs, func(i, j int) bool { return m.cu[outs[i]] > m.cu[outs[j]] })

	for _, root := range outs {
		if err := m.eval(root); err != nil {
			return err
		}
	}
	return nil
}

// eval computes node root and everything it depends on.
func (m *mapper) eval(root int) error {
	type frame struct {
		node    int
		visited bool
	}
	stack := []frame{{node: root}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if m.computed[f.node] {
			stack = stack[:len(stack)-1]
			continue
		}
		g := m.nl.Gate(f.node)
		if !f.visited {
			f.visited = true
			// Push children, higher-CU child evaluated first.
			switch g.Op {
			case netlist.Not, netlist.Buf:
				if !m.computed[g.A] {
					stack = append(stack, frame{node: g.A})
				}
			case netlist.Nor:
				a, b := g.A, g.B
				if m.cu[a] < m.cu[b] {
					a, b = b, a
				}
				// Pushed in reverse so `a` (higher CU) pops first.
				if !m.computed[b] {
					stack = append(stack, frame{node: b})
				}
				if !m.computed[a] {
					stack = append(stack, frame{node: a})
				}
			}
			continue
		}
		// Children ready: execute this node.
		if err := m.execute(f.node); err != nil {
			return err
		}
		stack = stack[:len(stack)-1]
	}
	return nil
}

// execute emits the step computing node id and updates liveness.
func (m *mapper) execute(id int) error {
	g := m.nl.Gate(id)
	cell, err := m.alloc()
	if err != nil {
		return err
	}
	m.cellOf[id] = cell
	m.computed[id] = true

	switch g.Op {
	case netlist.Const0, netlist.Const1:
		m.out.Steps = append(m.out.Steps, Step{
			Kind: StepConst, Node: id, Cell: cell,
			Value: g.Op == netlist.Const1, Critical: m.isOutput[id],
		})
		m.out.ConstCycles++
	case netlist.Not, netlist.Buf:
		m.out.Steps = append(m.out.Steps, Step{
			Kind: StepGate, Node: id, Cell: cell,
			A: m.cellOf[g.A], B: m.cellOf[g.A], IsNot: true,
			Critical: m.isOutput[id],
		})
		m.out.GateCycles++
		m.release(g.A)
	case netlist.Nor:
		m.out.Steps = append(m.out.Steps, Step{
			Kind: StepGate, Node: id, Cell: cell,
			A: m.cellOf[g.A], B: m.cellOf[g.B],
			Critical: m.isOutput[id],
		})
		m.out.GateCycles++
		m.release(g.A)
		m.release(g.B)
	default:
		return fmt.Errorf("synth: unexpected op %v at node %d", g.Op, id)
	}
	return nil
}

// release notes one consumer of node id has executed, freeing its cell
// when the last consumer is done (inputs and outputs stay pinned).
func (m *mapper) release(id int) {
	m.refs[id]--
	if m.refs[id] > 0 {
		return
	}
	g := m.nl.Gate(id)
	if (g.Op == netlist.Input && !m.opts.ReuseInputs) || m.isOutput[id] {
		return
	}
	if c := m.cellOf[id]; c >= 0 {
		m.dirty = append(m.dirty, c)
		m.cellOf[id] = -1
		m.live--
	}
}

// alloc returns an initialized cell, emitting a batched init cycle when
// the initialized pool is exhausted.
func (m *mapper) alloc() (int, error) {
	if len(m.free) == 0 {
		if len(m.dirty) == 0 {
			return 0, fmt.Errorf("synth: row of %d cells exhausted (circuit needs more live cells)", m.out.RowSize)
		}
		batch := append([]int(nil), m.dirty...)
		sort.Ints(batch)
		m.out.Steps = append(m.out.Steps, Step{Kind: StepInit, Init: batch})
		m.out.InitCycles++
		m.free, m.dirty = m.dirty, nil
	}
	c := m.free[len(m.free)-1]
	m.free = m.free[:len(m.free)-1]
	m.live++
	if used := m.nl.NumInputs() + m.live; used > m.out.PeakLive {
		m.out.PeakLive = used
	}
	return c, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
