// Package machine assembles the full proposed architecture (Fig 3): a MEM
// crossbar executing SIMPLER-mapped functions with SIMD row parallelism,
// a CMEM keeping diagonal ECC check bits continuously up to date through
// the critical-operation protocol, shifter-routed transfers, and the
// controller behaviors (input checking before execution, periodic
// scrubbing, single-error correction).
//
// It is the end-to-end integration: the same Mapping the latency
// scheduler costs out is *actually executed* on simulated crossbars, with
// soft errors injected and corrected, so tests can confirm the mechanism
// — not just its cycle model — works.
package machine

import (
	"fmt"

	"repro/internal/bitmat"
	"repro/internal/cmem"
	"repro/internal/ecc"
	"repro/internal/faults"
	"repro/internal/repair"
	"repro/internal/shifter"
	"repro/internal/synth"
	"repro/internal/telemetry"
	"repro/internal/xbar"
)

// Config parameterizes a protected processing unit.
type Config struct {
	N          int  // crossbar side
	M          int  // ECC block side
	K          int  // processing crossbars
	ECCEnabled bool // false = the paper's baseline (no protection)

	// Scheme selects the protection code (ecc.SchemeByName). Empty or
	// "diagonal" is the paper's code, executed on the cycle-accurate CMEM
	// pipeline exactly as before the scheme layer existed; any other
	// registered scheme runs through the generic ecc.Scheme path.
	Scheme string

	// Repair configures the self-healing layer (write-verify read-backs,
	// spare remapping, scrub-triggered retirement — see internal/repair).
	// The zero value is off: the write path behaves exactly as before the
	// repair layer existed.
	Repair repair.Config
}

// SchemeName resolves the configured protection code name ("" defaults to
// the paper's diagonal code).
func (cfg Config) SchemeName() string {
	if cfg.Scheme == "" {
		return ecc.SchemeDiagonal
	}
	return cfg.Scheme
}

// ComputeCost models the MEM-occupancy cost, in cycles, of executing one
// SIMPLER mapping on a crossbar of this configuration — the currency the
// serving layer's virtual-time replay charges per compute request. It
// counts only cycles during which the data crossbar itself is busy
// (grounded in the cmem pipeline constants): the mapping's own latency,
// plus with ECC enabled the pre-execution input checks (one block-line
// check per input block-column, CheckLineMEMCycles each per block row),
// the per-critical-op old/new transfers (the XOR3 fold runs in the PC
// pipeline for the diagonal code; generic schemes charge their
// LineUpdateReads hook), and the post-execution working-region reconcile
// (every working block-column's check bits rebuilt from the image).
func (cfg Config) ComputeCost(mp *synth.Mapping) int64 {
	cost := int64(mp.Latency())
	if !cfg.ECCEnabled {
		return cost
	}
	m := cfg.M
	blocks := cfg.N / m
	inputBlocks := (mp.Netlist.NumInputs() + m - 1) / m
	upd := int64(cmem.CriticalUpdateMEMCycles)
	firstBC := mp.Netlist.NumInputs() / m
	lastBC := (mp.RowSize - 1) / m
	inputSpan := inputBlocks
	if cfg.SchemeName() != ecc.SchemeDiagonal {
		if spec, err := ecc.SchemeByName(cfg.SchemeName()); err == nil {
			sch := spec.New(ecc.Params{N: cfg.N, M: m}, nil)
			upd = int64(sch.LineUpdateReads(1))
			// Striped codes check/reconcile whole column groups, so the
			// charged spans widen to the scheme's home-column envelope.
			if inputBlocks > 0 {
				f, l := sch.HomeColumns(0, inputBlocks-1)
				inputSpan = l - f + 1
			}
			firstBC, lastBC = sch.HomeColumns(firstBC, lastBC)
		}
	}
	cost += int64(inputSpan * blocks * cmem.CheckLineMEMCycles(m))
	cost += int64(mp.CriticalOps()) * upd
	cost += int64((lastBC - firstBC + 1) * blocks * cmem.CheckLineMEMCycles(m))
	return cost
}

// Machine is one crossbar plus its check memory.
type Machine struct {
	cfg Config
	mem *xbar.Crossbar
	cm  *cmem.CMEM // diagonal scheme; nil otherwise

	// Non-diagonal schemes run through the generic scheme layer: sch holds
	// the live check-bit state, spec rebuilds it (heal / consistency).
	sch  ecc.Scheme
	spec ecc.SchemeSpec
	ones *bitmat.Vec // all-columns mask for whole-row delta updates

	// statistics
	criticalOps   int
	inputChecks   int
	corrections   int
	uncorrectable int

	// tel holds the live telemetry probes (zero value = disabled: every
	// handle is nil and no-ops). updateReads is the scheme's
	// LineUpdateReads(1) cost, resolved once so the hot path charges it
	// with one counter add.
	tel         Telemetry
	updateReads int64

	// rt is the self-healing state (nil = repair off); defects is the
	// attached stuck-cell set whose faults the write path re-asserts and
	// retirement evicts; repairLog collects RepairReports while enabled
	// (see repair.go).
	rt         *repair.Table
	defects    *faults.StuckSet
	repairLog  []RepairReport
	logRepairs bool
}

// Telemetry is the machine's probe set: per-scheme ECC outcome counters,
// the update-read cost meter, and the shared event ring. Resolve one
// with TelemetryFor and attach it with Instrument; the zero value is the
// disabled layer. Bank and Xbar locate the machine's events in the
// organization (counters are shared per scheme; events are per machine).
type Telemetry struct {
	InputChecks   *telemetry.Counter
	CriticalOps   *telemetry.Counter
	Corrections   *telemetry.Counter
	Uncorrectable *telemetry.Counter
	// UpdateReads accumulates the stored-bit reads spent keeping check
	// bits current (the scheme cost hook ecc.Scheme.LineUpdateReads
	// applied per protected line write) — the "reads stolen from
	// compute" axis of the paper's cost claim, now observable live.
	UpdateReads *telemetry.Counter
	// Repair-layer probes: committed-line read-backs, persistent verify
	// mismatches, spare remaps, and budget-exhausted refusals.
	VerifyReads      *telemetry.Counter
	VerifyMismatches *telemetry.Counter
	CellsRetired     *telemetry.Counter
	SparesExhausted  *telemetry.Counter
	Events           *telemetry.Ring
	Bank, Xbar       int
}

// TelemetryFor resolves the per-scheme machine probe set from a registry
// (nil registry resolves the disabled zero value). Machines of the same
// scheme share series; give each machine its Bank/Xbar for event
// attribution.
func TelemetryFor(reg *telemetry.Registry, scheme string) Telemetry {
	if reg == nil {
		return Telemetry{}
	}
	return Telemetry{
		InputChecks:   reg.Counter("ecc_input_checks_total", "scheme", scheme),
		CriticalOps:   reg.Counter("ecc_critical_ops_total", "scheme", scheme),
		Corrections:   reg.Counter("ecc_corrections_total", "scheme", scheme),
		Uncorrectable: reg.Counter("ecc_uncorrectable_total", "scheme", scheme),
		UpdateReads:   reg.Counter("ecc_update_reads_total", "scheme", scheme),

		VerifyReads:      reg.Counter("repair_verify_reads_total", "scheme", scheme),
		VerifyMismatches: reg.Counter("repair_verify_mismatch_total", "scheme", scheme),
		CellsRetired:     reg.Counter("repair_cells_retired_total", "scheme", scheme),
		SparesExhausted:  reg.Counter("repair_spares_exhausted_total", "scheme", scheme),

		Events: reg.Events(),
	}
}

// Instrument attaches telemetry probes to the machine (zero value
// detaches). Attach before serving; the probes are read on every
// protected write and scrub.
func (m *Machine) Instrument(t Telemetry) { m.tel = t }

// Validate checks the configuration is buildable.
func (cfg Config) Validate() error {
	if cfg.N <= 0 {
		return fmt.Errorf("machine: non-positive crossbar side %d", cfg.N)
	}
	if err := cfg.Repair.Validate(); err != nil {
		return fmt.Errorf("machine: %w", err)
	}
	if cfg.ECCEnabled {
		if cfg.SchemeName() == ecc.SchemeDiagonal {
			if err := (cmem.Config{N: cfg.N, M: cfg.M, K: cfg.K}).Validate(); err != nil {
				return fmt.Errorf("machine: %w", err)
			}
			return nil
		}
		spec, err := ecc.SchemeByName(cfg.SchemeName())
		if err != nil {
			return fmt.Errorf("machine: %w", err)
		}
		if err := spec.Validate(ecc.Params{N: cfg.N, M: cfg.M}); err != nil {
			return fmt.Errorf("machine: %w", err)
		}
	}
	return nil
}

// New builds a machine with an all-zero memory. The configuration may come
// from user input (CLI flags, fleet descriptions), so invalid geometry is
// reported as an error rather than a panic.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{cfg: cfg, mem: xbar.New(cfg.N, cfg.N)}
	if cfg.Repair.Enabled() {
		m.rt = repair.NewTable(cfg.Repair, cfg.N)
	}
	if cfg.ECCEnabled {
		if cfg.SchemeName() == ecc.SchemeDiagonal {
			m.cm = cmem.New(cmem.Config{N: cfg.N, M: cfg.M, K: cfg.K})
			m.updateReads = 2 // the diagonal code's Θ(1) old/new copy per line
		} else {
			m.spec, _ = ecc.SchemeByName(cfg.SchemeName()) // validated above
			m.sch = m.spec.New(ecc.Params{N: cfg.N, M: cfg.M}, nil)
			m.ones = bitmat.NewVec(cfg.N)
			m.ones.Fill(true)
			m.updateReads = int64(m.sch.LineUpdateReads(1))
		}
	}
	return m, nil
}

// MustNew is New for known-good configurations; it panics on error.
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// MEM exposes the data crossbar (for inspection and fault injection).
func (m *Machine) MEM() *xbar.Crossbar { return m.mem }

// CMEM exposes the check memory, or nil for a baseline machine or a
// non-diagonal scheme.
func (m *Machine) CMEM() *cmem.CMEM { return m.cm }

// Scheme exposes the live generic scheme state, or nil for a baseline or
// diagonal (CMEM-backed) machine.
func (m *Machine) Scheme() ecc.Scheme { return m.sch }

// Protected reports whether any protection code is active.
func (m *Machine) Protected() bool { return m.cm != nil || m.sch != nil }

// ECCImage returns a snapshot of the logical check-bit state as an
// ecc.Scheme — the input scheme-generic consumers (above all the fault
// campaign's bit-serial reference decoder) diagnose against. Nil for a
// baseline machine.
func (m *Machine) ECCImage() ecc.Scheme {
	switch {
	case m.cm != nil:
		return ecc.DiagonalFromCheckBits(m.cm.Image())
	case m.sch != nil:
		return m.sch.Clone()
	}
	return nil
}

// RebuildChecks re-establishes the whole check-bit state from the current
// memory image — the controller path for freshly (re)programmed data. A
// no-op on a baseline machine.
func (m *Machine) RebuildChecks() {
	switch {
	case m.cm != nil:
		m.cm.LoadFrom(m.mem.Mat())
	case m.sch != nil:
		m.sch = m.spec.New(ecc.Params{N: m.cfg.N, M: m.cfg.M}, m.mem.Mat())
	}
}

// Stats summarizes machine activity. Stats from different machines can be
// combined with Add, so a fleet of crossbars aggregates into one total.
type Stats struct {
	MEMCycles     int
	CriticalOps   int
	InputChecks   int
	Corrections   int
	Uncorrectable int

	// Repair-layer activity (all zero with the repair policy off).
	VerifyReads      int
	VerifyMismatches int
	CellsRetired     int
	SparesExhausted  int
}

// Add returns the field-wise sum of two stats. It is commutative and
// associative, so aggregation order (e.g. across concurrent shards) does
// not affect the result.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		MEMCycles:     s.MEMCycles + o.MEMCycles,
		CriticalOps:   s.CriticalOps + o.CriticalOps,
		InputChecks:   s.InputChecks + o.InputChecks,
		Corrections:   s.Corrections + o.Corrections,
		Uncorrectable: s.Uncorrectable + o.Uncorrectable,

		VerifyReads:      s.VerifyReads + o.VerifyReads,
		VerifyMismatches: s.VerifyMismatches + o.VerifyMismatches,
		CellsRetired:     s.CellsRetired + o.CellsRetired,
		SparesExhausted:  s.SparesExhausted + o.SparesExhausted,
	}
}

// Stats returns accumulated statistics.
func (m *Machine) Stats() Stats {
	s := Stats{
		MEMCycles:     m.mem.Stats().Cycles,
		CriticalOps:   m.criticalOps,
		InputChecks:   m.inputChecks,
		Corrections:   m.corrections,
		Uncorrectable: m.uncorrectable,
	}
	if m.rt != nil {
		rs := m.rt.Stats()
		s.VerifyReads = int(rs.VerifyReads)
		s.VerifyMismatches = int(rs.Mismatches)
		s.CellsRetired = int(rs.Retired)
		s.SparesExhausted = int(rs.Exhausted)
	}
	return s
}

// LoadRow writes data into MEM row r through the controller write path
// and brings the check bits up to date (ECC is computed along writes, as
// in a conventional protected memory). With a repair policy configured
// the committed line immediately re-asserts any attached defects (the
// device physics) and is read back and verified; the returned error is a
// *VerifyError (errors.Is-able against ErrVerify) when cells persistently
// refuse the write and the policy cannot (or may not) retire them. With
// repair off the error is always nil.
func (m *Machine) LoadRow(r int, v *bitmat.Vec) error {
	if m.rt != nil {
		// Pre-write metadata sync: the delta fold below cancels the OLD
		// row's contribution as read from the array, so any cell where
		// the stored checks disagree with the physical state (a defect
		// scrub corrected and the device re-asserted) would fold a
		// phantom delta and leave the checks stale. Sync them to the
		// physical row first; write-verify governs this row from here.
		m.syncRowChecks(r)
	}
	old := m.mem.Mat().Row(r).Clone()
	m.mem.WriteRow(r, v)
	if m.cm != nil {
		m.cm.UpdateCritical(0, cmem.CriticalUpdate{
			Orientation: shifter.ColParallel, Index: r, Old: old, New: v.Clone(),
		})
	} else if m.sch != nil {
		m.sch.UpdateRowWrite(r, old, m.mem.Mat().Row(r), m.ones)
	}
	if m.Protected() {
		m.tel.UpdateReads.Add(m.updateReads)
	}
	if m.defects != nil {
		// Device physics: the driven line's stuck cells snap straight
		// back, whether or not anyone is checking.
		m.defects.ReassertRow(m.mem, r)
	}
	if m.rt == nil {
		return nil
	}
	return m.verifyRow(r, v)
}

// UpdateRow is the read-modify-write primitive of the serving layer: it
// hands mutate a copy of MEM row r and, if mutate reports the row dirty,
// commits it through the protected write path (one ECC delta update for
// the whole mutation, however many bits changed). A clean row costs no
// write and no ECC work. Reports whether the row was written; the error
// is LoadRow's write-verify verdict (always nil with repair off).
func (m *Machine) UpdateRow(r int, mutate func(*bitmat.Vec) bool) (bool, error) {
	row := m.mem.Mat().Row(r).Clone()
	if !mutate(row) {
		return false, nil
	}
	return true, m.LoadRow(r, row)
}

// InjectDataFault flips a memristor in MEM — a soft error.
func (m *Machine) InjectDataFault(r, c int) { m.mem.Flip(r, c) }

// InjectCheckFault flips a stored check bit (ECC state is memristive
// too). Family/diagonal addressing is specific to the diagonal code, so
// this is a CMEM-only path.
func (m *Machine) InjectCheckFault(f shifter.Family, d, br, bc int) {
	if m.cm == nil {
		panic("machine: check-bit injection needs the diagonal CMEM")
	}
	m.cm.FlipCheckBit(f, d, br, bc)
}

// CheckConsistent reports whether the stored check-bit state matches a
// from-scratch rebuild over the current memory image (true for a healthy
// machine) — the machine-level Verify, scheme-generic.
func (m *Machine) CheckConsistent() bool {
	switch {
	case m.cm != nil:
		want := ecc.Build(ecc.Params{N: m.cfg.N, M: m.cfg.M}, m.mem.Mat())
		return m.cm.Image().Equal(want)
	case m.sch != nil:
		return m.sch.Equal(m.spec.New(ecc.Params{N: m.cfg.N, M: m.cfg.M}, m.mem.Mat()))
	}
	return true
}

// Finding is one non-clean block from a detailed scrub: its block
// coordinates and the diagnosis the controller acted on (single errors are
// already repaired in place when the finding is returned).
type Finding struct {
	BR, BC int
	Diag   ecc.Diagnosis
}

// DataCell returns the global coordinates of the repaired data cell; valid
// only when Diag.Kind is ecc.DataError.
func (f Finding) DataCell(m int) (r, c int) {
	return f.BR*m + f.Diag.LR, f.BC*m + f.Diag.LC
}

// ScrubFindings performs the periodic full-memory ECC check and returns
// every non-clean block with its diagnosis, in deterministic (block-row,
// block-column) order — the evidence stream a fault-campaign adjudicator
// matches against injected faults. Single errors are corrected in place;
// uncorrectable blocks are flagged untouched.
func (m *Machine) ScrubFindings() []Finding {
	if !m.Protected() {
		return nil
	}
	var out []Finding
	blocks := m.cfg.N / m.cfg.M
	for br := 0; br < blocks; br++ {
		if m.sch != nil {
			// Generic scheme path: per-block check-and-correct. A scheme
			// with sub-block structure (Hamming words) may report several
			// findings for one block, in the scheme's deterministic order.
			for bc := 0; bc < blocks; bc++ {
				for _, d := range m.sch.CorrectBlock(m.mem.Mat(), br, bc) {
					m.tallyDiag(d)
					out = append(out, Finding{BR: br, BC: bc, Diag: d})
				}
			}
			continue
		}
		diags := m.cm.CheckLine(m.mem, shifter.ColParallel, br, br%m.cfg.K)
		for bc := 0; bc < blocks; bc++ { // map iteration would be nondeterministic
			d, ok := diags[bc]
			if !ok {
				continue
			}
			m.tallyDiag(d)
			out = append(out, Finding{BR: br, BC: bc, Diag: d})
		}
	}
	if m.rt != nil {
		// Scrub-triggered retirement: every repaired data cell takes a
		// strike in the bounded offender table; repeat offenders crossing
		// the threshold are remapped onto spares right here, online —
		// the scan is complete, so rebuilding a retired cell's block
		// checks cannot perturb the findings above.
		for _, f := range out {
			if f.Diag.Kind == ecc.DataError {
				r, c := f.DataCell(m.cfg.M)
				m.noteScrubRepair(r, c)
			}
		}
	}
	return out
}

// tallyDiag bumps the correction counters for one non-clean diagnosis
// (and mirrors it into the telemetry layer when probes are attached).
func (m *Machine) tallyDiag(d ecc.Diagnosis) {
	if d.Kind == ecc.Uncorrectable {
		m.uncorrectable++
		m.tel.Uncorrectable.Inc()
		m.tel.Events.Emit(telemetry.EvDetection, int64(m.mem.Stats().Cycles),
			m.tel.Bank, m.tel.Xbar, int64(d.LR), int64(d.LC))
	} else if d.Kind != ecc.NoError {
		m.corrections++
		m.tel.Corrections.Inc()
		m.tel.Events.Emit(telemetry.EvCorrection, int64(m.mem.Stats().Cycles),
			m.tel.Bank, m.tel.Xbar, int64(d.LR), int64(d.LC))
	}
}

// Scrub performs the periodic full-memory ECC check: every block line is
// verified and single errors are corrected. Returns the number of
// corrections applied and of uncorrectable blocks found.
func (m *Machine) Scrub() (corrected, uncorrectable int) {
	for _, f := range m.ScrubFindings() {
		if f.Diag.Kind == ecc.Uncorrectable {
			uncorrectable++
		} else if f.Diag.Kind != ecc.NoError {
			corrected++
		}
	}
	return corrected, uncorrectable
}

// ExecuteSIMD runs a SIMPLER mapping in every selected row simultaneously
// (the same in-row gate sequence applied with MAGIC's row parallelism,
// Fig 1a). Each row computes the function on its own input data, which
// must already be loaded in cells [0, NumInputs) of that row.
//
// With ECC enabled the controller first checks every block-column that
// holds function inputs (correcting single soft errors), then executes,
// wrapping every output-writing step in the critical-operation protocol
// so the check bits stay in sync.
func (m *Machine) ExecuteSIMD(mp *synth.Mapping, rows *bitmat.Vec) error {
	if mp.RowSize > m.cfg.N {
		return fmt.Errorf("machine: mapping needs %d cells, crossbar row has %d", mp.RowSize, m.cfg.N)
	}
	if m.Protected() {
		inputBlocks := (mp.Netlist.NumInputs() + m.cfg.M - 1) / m.cfg.M
		if m.sch != nil && inputBlocks > 0 {
			// Generic scheme path: check (and correct) every code unit
			// covering the input columns. Units are addressed by home
			// block; striped codes home the covering units across the
			// whole enclosing column group, so the sweep must go through
			// HomeColumns — checking only the input block-columns would
			// miss units whose home lies beyond them.
			first, last := m.sch.HomeColumns(0, inputBlocks-1)
			for bc := first; bc <= last; bc++ {
				m.inputChecks++
				m.tel.InputChecks.Inc()
				for br := 0; br < m.cfg.N/m.cfg.M; br++ {
					for _, d := range m.sch.CorrectBlock(m.mem.Mat(), br, bc) {
						m.tallyDiag(d)
					}
				}
			}
		} else if m.cm != nil {
			for bc := 0; bc < inputBlocks; bc++ {
				m.inputChecks++
				m.tel.InputChecks.Inc()
				diags := m.cm.CheckLine(m.mem, shifter.RowParallel, bc, bc%m.cfg.K)
				for _, d := range diags {
					m.tallyDiag(d)
				}
			}
		}
	}

	pc := 0
	for _, s := range mp.Steps {
		switch s.Kind {
		case synth.StepInit:
			m.mem.InitColumnsInRows(s.Init, rows)
		case synth.StepConst:
			m.writeColumn(s.Cell, s.Value, rows, s.Critical, &pc)
		case synth.StepGate:
			m.gate(s, rows, &pc)
		}
	}
	m.reconcileWorkingRegion(mp)
	return nil
}

// reconcileWorkingRegion re-establishes check bits over the block-columns
// the function's working cells occupy. The paper keeps the ECC current
// only for output-writing (critical) operations and leaves intermediate
// cells uncovered ("left for future work"); after execution the
// intermediate cells hold dead values whose blocks' parity is stale, so
// the controller recomputes those check bits from the memory image before
// the region is treated as protected data again. Output blocks were kept
// in sync by the critical protocol; recomputing them is idempotent.
func (m *Machine) reconcileWorkingRegion(mp *synth.Mapping) {
	if !m.Protected() {
		return
	}
	firstBC := mp.Netlist.NumInputs() / m.cfg.M
	lastBC := (mp.RowSize - 1) / m.cfg.M
	if m.sch != nil {
		// Every unit whose coverage intersects the working columns is
		// stale and must be rebuilt; HomeColumns names exactly those
		// units' home blocks. For striped codes this widens the sweep to
		// the enclosing column group — a unit straddling the region
		// boundary has no narrower sound rebuild (the scheme docs note
		// that scratch regions are best allocated group-aligned).
		firstBC, lastBC = m.sch.HomeColumns(firstBC, lastBC)
		for bc := firstBC; bc <= lastBC; bc++ {
			for br := 0; br < m.cfg.N/m.cfg.M; br++ {
				m.sch.RebuildBlock(m.mem.Mat(), br, bc)
			}
		}
		return
	}
	p := ecc.Params{N: m.cfg.N, M: m.cfg.M}
	want := ecc.Build(p, m.mem.Mat())
	for bc := firstBC; bc <= lastBC; bc++ {
		for br := 0; br < p.BlocksPerSide(); br++ {
			for d := 0; d < m.cfg.M; d++ {
				m.cm.SetCheckBit(shifter.Leading, d, br, bc, want.Lead(d, br, bc))
				m.cm.SetCheckBit(shifter.Counter, d, br, bc, want.Counter(d, br, bc))
			}
		}
	}
}

// gate executes one (possibly critical) MAGIC step.
func (m *Machine) gate(s synth.Step, rows *bitmat.Vec, pc *int) {
	critical := s.Critical && m.Protected()
	var old *bitmat.Vec
	if critical {
		old = m.mem.Mat().Col(s.Cell)
		m.mem.Tick() // copy-old transfer occupies MEM
	}
	if s.IsNot {
		m.mem.NOTRows(s.A, s.Cell, rows)
	} else {
		m.mem.NORRows(s.A, s.B, s.Cell, rows)
	}
	if critical {
		newCol := m.mem.Mat().Col(s.Cell)
		m.mem.Tick() // copy-new transfer occupies MEM
		m.criticalUpdate(shifter.RowParallel, s.Cell, old, newCol, rows, pc)
	}
}

// criticalUpdate commits one critical operation's check-bit delta through
// the active backend: the CMEM's pipelined XOR3 protocol for the diagonal
// code, the scheme's masked line-delta update otherwise. sel is the
// row/column selection mask of the parallel operation.
func (m *Machine) criticalUpdate(o shifter.Orientation, index int, old, cur, sel *bitmat.Vec, pc *int) {
	if m.cm != nil {
		m.cm.UpdateCritical(*pc, cmem.CriticalUpdate{
			Orientation: o, Index: index, Old: old, New: cur,
		})
	} else if o == shifter.RowParallel {
		m.sch.UpdateColumnWrite(index, old, cur, sel)
	} else {
		m.sch.UpdateRowWrite(index, old, cur, sel)
	}
	m.criticalOps++
	m.tel.CriticalOps.Inc()
	m.tel.UpdateReads.Add(m.updateReads)
	if m.cfg.K > 1 {
		*pc = (*pc + 1) % m.cfg.K
	} else {
		*pc = 0 // generic schemes don't require processing crossbars
	}
}

// writeColumn drives a constant into column c of every selected row.
func (m *Machine) writeColumn(c int, v bool, rows *bitmat.Vec, criticalStep bool, pc *int) {
	critical := criticalStep && m.Protected()
	var old *bitmat.Vec
	if critical {
		old = m.mem.Mat().Col(c)
		m.mem.Tick()
	}
	for r := rows.NextOne(0); r >= 0; r = rows.NextOne(r + 1) {
		m.mem.Set(r, c, v)
	}
	m.mem.Tick() // one write-driver cycle
	if critical {
		newCol := m.mem.Mat().Col(c)
		m.mem.Tick()
		m.criticalUpdate(shifter.RowParallel, c, old, newCol, rows, pc)
	}
}

// ReadOutputs returns the function outputs computed in row r.
func (m *Machine) ReadOutputs(mp *synth.Mapping, r int) []bool {
	out := make([]bool, mp.Netlist.NumOutputs())
	for i, id := range mp.Netlist.Outputs() {
		out[i] = m.mem.Get(r, mp.CellOf[id])
	}
	return out
}

// LoadInputs writes each row's function inputs into cells [0, NumInputs).
// inputs[r] supplies row r; rows without an entry keep their contents.
func (m *Machine) LoadInputs(mp *synth.Mapping, inputs map[int][]bool) {
	for r, in := range inputs {
		if len(in) != mp.Netlist.NumInputs() {
			panic("machine: wrong input width")
		}
		row := m.mem.Mat().Row(r).Clone()
		for i, v := range in {
			row.Set(i, v)
		}
		m.LoadRow(r, row)
	}
}
