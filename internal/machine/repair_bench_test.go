package machine

import (
	"testing"

	"repro/internal/bitmat"
	"repro/internal/repair"
)

// BenchmarkUpdateRowRepair measures the write-verify tax on the hot write
// path across the repair policies, on a healthy machine — the common case
// every serve request takes. Sub-benchmark names carry the /repair= tag
// cmd/benchjson parses into the snapshot's repair field.
func BenchmarkUpdateRowRepair(b *testing.B) {
	for _, p := range []repair.Policy{repair.Off, repair.Verify, repair.VerifySpare} {
		b.Run("repair="+p.String(), func(b *testing.B) {
			m := MustNew(repairCfg(p, repair.DefaultSpares))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := i % testCfg.N
				_, err := m.UpdateRow(r, func(v *bitmat.Vec) bool {
					v.Set(i%testCfg.N, i&1 == 0)
					return true
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
