package machine

import (
	"math/rand"
	"testing"

	"repro/internal/bitmat"
	"repro/internal/ecc"
	"repro/internal/netlist"
	"repro/internal/shifter"
	"repro/internal/synth"
)

var testCfg = Config{N: 45, M: 15, K: 2, ECCEnabled: true}

// adder8 returns an 8-bit adder mapping that fits the 45-cell test row.
func adder8(t *testing.T) *synth.Mapping {
	t.Helper()
	b := netlist.NewBuilder("adder8")
	a := b.InputBus(8)
	x := b.InputBus(8)
	carry := b.Const(false)
	for i := 0; i < 8; i++ {
		axb := b.Xor(a[i], x[i])
		b.Output(b.Xor(axb, carry))
		carry = b.Or(b.And(a[i], x[i]), b.And(axb, carry))
	}
	b.Output(carry)
	m, err := synth.Map(b.Build().LowerToNOR(), 45)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func loadRandomInputs(t *testing.T, m *Machine, mp *synth.Mapping, seed int64) map[int][]bool {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	inputs := make(map[int][]bool)
	for r := 0; r < m.Config().N; r++ {
		in := make([]bool, mp.Netlist.NumInputs())
		for i := range in {
			in[i] = rng.Intn(2) == 0
		}
		inputs[r] = in
	}
	m.LoadInputs(mp, inputs)
	return inputs
}

func checkAllRows(t *testing.T, m *Machine, mp *synth.Mapping, inputs map[int][]bool) {
	t.Helper()
	for r, in := range inputs {
		want := mp.Netlist.Eval(in)
		got := m.ReadOutputs(mp, r)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("row %d output %d: got %v want %v", r, i, got[i], want[i])
			}
		}
	}
}

func TestSIMDExecutionAllRows(t *testing.T) {
	// Fig 1a end-to-end: 45 independent 8-bit additions in one pass.
	m := MustNew(testCfg)
	mp := adder8(t)
	inputs := loadRandomInputs(t, m, mp, 1)
	if err := m.ExecuteSIMD(mp, m.MEM().AllRows()); err != nil {
		t.Fatal(err)
	}
	checkAllRows(t, m, mp, inputs)
	if !m.CheckConsistent() {
		t.Fatal("CMEM inconsistent after execution")
	}
	if m.Stats().CriticalOps == 0 {
		t.Fatal("no critical operations recorded")
	}
}

func TestBaselineMachineAlsoComputes(t *testing.T) {
	cfg := testCfg
	cfg.ECCEnabled = false
	m := MustNew(cfg)
	mp := adder8(t)
	inputs := loadRandomInputs(t, m, mp, 2)
	if err := m.ExecuteSIMD(mp, m.MEM().AllRows()); err != nil {
		t.Fatal(err)
	}
	checkAllRows(t, m, mp, inputs)
	if m.CMEM() != nil {
		t.Fatal("baseline machine should have no CMEM")
	}
}

func TestInputFaultCorrectedBeforeExecution(t *testing.T) {
	// E6 headline: a soft error in a function input is detected and
	// corrected by the pre-execution check, so every row still computes
	// the right answer.
	m := MustNew(testCfg)
	mp := adder8(t)
	inputs := loadRandomInputs(t, m, mp, 3)

	m.InjectDataFault(20, 5) // input region: column 5 < 16 inputs
	inputs[20][5] = !inputs[20][5]
	// The stored (faulted) bit is wrong; ECC must restore the original.
	inputs[20][5] = !inputs[20][5]

	if err := m.ExecuteSIMD(mp, m.MEM().AllRows()); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Corrections != 1 {
		t.Fatalf("corrections = %d, want 1", m.Stats().Corrections)
	}
	checkAllRows(t, m, mp, inputs)
}

func TestInputFaultCorruptsBaseline(t *testing.T) {
	// The same fault on the unprotected baseline silently corrupts the
	// affected row's result — the failure mode motivating the paper.
	cfg := testCfg
	cfg.ECCEnabled = false
	m := MustNew(cfg)
	mp := adder8(t)
	inputs := loadRandomInputs(t, m, mp, 3)

	m.InjectDataFault(20, 0) // flip input bit a[0] of row 20
	if err := m.ExecuteSIMD(mp, m.MEM().AllRows()); err != nil {
		t.Fatal(err)
	}
	want := mp.Netlist.Eval(inputs[20])
	got := m.ReadOutputs(mp, 20)
	same := true
	for i := range want {
		if got[i] != want[i] {
			same = false
		}
	}
	if same {
		t.Fatal("baseline produced correct output despite corrupted input — test is vacuous")
	}
}

func TestMultipleInputFaultsDifferentBlocksCorrected(t *testing.T) {
	m := MustNew(testCfg)
	mp := adder8(t)
	inputs := loadRandomInputs(t, m, mp, 4)
	// One fault per block-row of input block-column 0.
	m.InjectDataFault(3, 2)
	m.InjectDataFault(18, 9)
	m.InjectDataFault(40, 14)
	if err := m.ExecuteSIMD(mp, m.MEM().AllRows()); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Corrections != 3 {
		t.Fatalf("corrections = %d, want 3", m.Stats().Corrections)
	}
	checkAllRows(t, m, mp, inputs)
}

func TestScrubRepairsIdleData(t *testing.T) {
	m := MustNew(testCfg)
	mp := adder8(t)
	inputs := loadRandomInputs(t, m, mp, 5)
	_ = inputs
	before := m.MEM().Snapshot()
	m.InjectDataFault(30, 30) // outside the input region
	corrected, unc := m.Scrub()
	if corrected != 1 || unc != 0 {
		t.Fatalf("scrub: corrected=%d uncorrectable=%d", corrected, unc)
	}
	if !m.MEM().Snapshot().Equal(before) {
		t.Fatal("scrub did not restore memory")
	}
}

func TestScrubRepairsCheckBitFault(t *testing.T) {
	m := MustNew(testCfg)
	mp := adder8(t)
	loadRandomInputs(t, m, mp, 6)
	m.InjectCheckFault(shifter.Leading, 4, 1, 2)
	corrected, unc := m.Scrub()
	if corrected != 1 || unc != 0 {
		t.Fatalf("scrub: corrected=%d uncorrectable=%d", corrected, unc)
	}
	if !m.CheckConsistent() {
		t.Fatal("check bits still inconsistent")
	}
}

func TestScrubFlagsUncorrectableBlock(t *testing.T) {
	m := MustNew(testCfg)
	mp := adder8(t)
	loadRandomInputs(t, m, mp, 7)
	// Two faults in one block with disjoint diagonals.
	m.InjectDataFault(0, 0)
	m.InjectDataFault(1, 3)
	_, unc := m.Scrub()
	if unc != 1 {
		t.Fatalf("uncorrectable = %d, want 1", unc)
	}
}

func TestPartialRowMask(t *testing.T) {
	// Execute in only half the rows; others must be untouched outside the
	// working region.
	m := MustNew(testCfg)
	mp := adder8(t)
	inputs := loadRandomInputs(t, m, mp, 8)
	rows := m.MEM().RowMask()
	active := map[int]bool{}
	for r := 0; r < testCfg.N; r += 2 {
		rows.Set(r, true)
		active[r] = true
	}
	if err := m.ExecuteSIMD(mp, rows); err != nil {
		t.Fatal(err)
	}
	for r := range inputs {
		if !active[r] {
			continue
		}
		want := mp.Netlist.Eval(inputs[r])
		got := m.ReadOutputs(mp, r)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("active row %d output %d wrong", r, i)
			}
		}
	}
	// Inputs of inactive rows are untouched.
	for r := 1; r < testCfg.N; r += 2 {
		for i := 0; i < mp.Netlist.NumInputs(); i++ {
			if m.MEM().Get(r, i) != inputs[r][i] {
				t.Fatalf("inactive row %d input %d changed", r, i)
			}
		}
	}
	if !m.CheckConsistent() {
		t.Fatal("CMEM inconsistent after masked execution")
	}
}

func TestCMEMStaysInSyncThroughLoadRows(t *testing.T) {
	m := MustNew(testCfg)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 30; i++ {
		v := bitmat.NewVec(testCfg.N)
		for j := 0; j < testCfg.N; j++ {
			v.Set(j, rng.Intn(2) == 0)
		}
		m.LoadRow(rng.Intn(testCfg.N), v)
	}
	if !m.CheckConsistent() {
		t.Fatal("LoadRow lost CMEM sync")
	}
}

func TestExecuteRejectsOversizedMapping(t *testing.T) {
	m := MustNew(testCfg)
	b := netlist.NewBuilder("wide")
	in := b.InputBus(4)
	b.Output(b.Nor(in[0], in[1]))
	mp, err := synth.Map(b.Build().LowerToNOR(), 64) // wider than N=45
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ExecuteSIMD(mp, m.MEM().AllRows()); err == nil {
		t.Fatal("expected row-size error")
	}
}

func TestStatsAccumulation(t *testing.T) {
	m := MustNew(testCfg)
	mp := adder8(t)
	loadRandomInputs(t, m, mp, 10)
	if err := m.ExecuteSIMD(mp, m.MEM().AllRows()); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.MEMCycles == 0 || st.InputChecks != 2 { // 16 inputs → 2 block-columns
		t.Fatalf("stats: %+v", st)
	}
	if st.CriticalOps != mp.CriticalOps() {
		t.Fatalf("critical ops %d, want %d", st.CriticalOps, mp.CriticalOps())
	}
}

func TestECCDetectsUncorrectableInputCorruption(t *testing.T) {
	m := MustNew(testCfg)
	mp := adder8(t)
	loadRandomInputs(t, m, mp, 11)
	// Two faults in one input block: flagged, not silently accepted.
	m.InjectDataFault(0, 0)
	m.InjectDataFault(1, 3)
	if err := m.ExecuteSIMD(mp, m.MEM().AllRows()); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Uncorrectable == 0 {
		t.Fatal("double input error not flagged")
	}
}

func TestConsistencyIsNontrivial(t *testing.T) {
	// Sanity for CheckConsistent itself: a deliberately skewed check bit
	// must break consistency.
	m := MustNew(testCfg)
	mp := adder8(t)
	loadRandomInputs(t, m, mp, 12)
	if !m.CheckConsistent() {
		t.Fatal("fresh machine inconsistent")
	}
	m.InjectCheckFault(shifter.Counter, 0, 0, 0)
	if m.CheckConsistent() {
		t.Fatal("CheckConsistent missed an injected inconsistency")
	}
}

func TestEndToEndWithECCvsParamsBuild(t *testing.T) {
	// After a full execute, CMEM must equal ecc.Build of the final image
	// (reconciliation + critical updates together cover everything).
	m := MustNew(testCfg)
	mp := adder8(t)
	loadRandomInputs(t, m, mp, 13)
	if err := m.ExecuteSIMD(mp, m.MEM().AllRows()); err != nil {
		t.Fatal(err)
	}
	want := ecc.Build(ecc.Params{N: testCfg.N, M: testCfg.M}, m.MEM().Mat())
	if !m.CMEM().Image().Equal(want) {
		t.Fatal("CMEM image diverged from rebuilt check bits")
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	bad := []Config{
		{N: 0, ECCEnabled: false},              // empty crossbar
		{N: 45, M: 14, K: 2, ECCEnabled: true}, // even block side
		{N: 45, M: 7, K: 2, ECCEnabled: true},  // m does not divide n
		{N: 45, M: 15, K: 0, ECCEnabled: true}, // no processing crossbars
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
	if m, err := New(testCfg); err != nil || m == nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestMustNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on invalid config")
		}
	}()
	MustNew(Config{N: 45, M: 14, K: 2, ECCEnabled: true})
}

func TestStatsAdd(t *testing.T) {
	a := Stats{MEMCycles: 1, CriticalOps: 2, InputChecks: 3, Corrections: 4, Uncorrectable: 5}
	b := Stats{MEMCycles: 10, CriticalOps: 20, InputChecks: 30, Corrections: 40, Uncorrectable: 50}
	want := Stats{MEMCycles: 11, CriticalOps: 22, InputChecks: 33, Corrections: 44, Uncorrectable: 55}
	if got := a.Add(b); got != want {
		t.Fatalf("a.Add(b) = %+v, want %+v", got, want)
	}
	if a.Add(b) != b.Add(a) {
		t.Fatal("Add not commutative")
	}
	if (Stats{}).Add(a) != a {
		t.Fatal("zero Stats is not the identity")
	}
}

// TestScrubFindingsLocateFaults: the detailed scrub reports each faulty
// block with the exact diagnosis, in deterministic block order, repairing
// single errors and leaving uncorrectable blocks untouched.
func TestScrubFindingsLocateFaults(t *testing.T) {
	m := MustNew(testCfg)
	rng := rand.New(rand.NewSource(8))
	for r := 0; r < 45; r++ {
		row := bitmat.NewVec(45)
		for c := 0; c < 45; c++ {
			row.Set(c, rng.Intn(2) == 0)
		}
		m.LoadRow(r, row)
	}
	want := m.MEM().Snapshot()

	// One correctable data fault in block (0,1), a double fault in (2,2).
	m.InjectDataFault(3, 20)
	m.InjectDataFault(31, 31)
	m.InjectDataFault(32, 33)

	findings := m.ScrubFindings()
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2: %+v", len(findings), findings)
	}
	f0, f1 := findings[0], findings[1]
	if f0.BR != 0 || f0.BC != 1 || f0.Diag.Kind != ecc.DataError {
		t.Fatalf("first finding %+v, want data error in block (0,1)", f0)
	}
	if r, c := f0.DataCell(15); r != 3 || c != 20 {
		t.Fatalf("repaired cell (%d,%d), want (3,20)", r, c)
	}
	if f1.BR != 2 || f1.BC != 2 || f1.Diag.Kind != ecc.Uncorrectable {
		t.Fatalf("second finding %+v, want uncorrectable block (2,2)", f1)
	}

	// The single error is repaired; the double fault remains in memory.
	diff := 0
	for r := 0; r < 45; r++ {
		for c := 0; c < 45; c++ {
			if m.MEM().Get(r, c) != want.Get(r, c) {
				diff++
			}
		}
	}
	if diff != 2 {
		t.Fatalf("%d cells differ after scrub, want the 2 uncorrectable ones", diff)
	}
	if m.MEM().Get(3, 20) != want.Get(3, 20) {
		t.Fatal("single fault not repaired")
	}

	// Scrub() sees the same counts through the findings path.
	corrected, uncorrectable := m.Scrub()
	if corrected != 0 || uncorrectable != 1 {
		t.Fatalf("re-scrub corrected=%d uncorrectable=%d, want 0/1", corrected, uncorrectable)
	}
	st := m.Stats()
	if st.Corrections != 1 || st.Uncorrectable != 2 {
		t.Fatalf("stats %+v, want 1 correction and 2 uncorrectable flags", st)
	}
}

func TestUpdateRowKeepsECCConsistent(t *testing.T) {
	m := MustNew(testCfg)
	wrote, err := m.UpdateRow(7, func(v *bitmat.Vec) bool {
		v.Set(3, true)
		v.Set(44, true)
		v.Set(20, true)
		return true
	})
	if err != nil {
		t.Fatalf("UpdateRow: %v", err)
	}
	if !wrote {
		t.Fatal("dirty mutation not written")
	}
	if !m.MEM().Get(7, 3) || !m.MEM().Get(7, 44) || !m.MEM().Get(7, 20) {
		t.Fatal("mutation lost")
	}
	if !m.CheckConsistent() {
		t.Fatal("check bits stale after UpdateRow")
	}
	// A multi-bit mutation commits as one protected write, not one per bit.
	before := m.Stats()
	m.UpdateRow(8, func(v *bitmat.Vec) bool { v.Fill(true); return true })
	if !m.CheckConsistent() {
		t.Fatal("check bits stale after full-row mutation")
	}
	if cycles := m.Stats().MEMCycles - before.MEMCycles; cycles > 8 {
		t.Fatalf("full-row UpdateRow cost %d MEM cycles — not a single write", cycles)
	}
}

func TestUpdateRowCleanSkipsWrite(t *testing.T) {
	m := MustNew(testCfg)
	before := m.Stats()
	if wrote, _ := m.UpdateRow(3, func(v *bitmat.Vec) bool { v.Set(1, true); return false }); wrote {
		t.Fatal("clean mutation reported written")
	}
	if m.MEM().Get(3, 1) {
		t.Fatal("clean mutation leaked into memory")
	}
	if m.Stats() != before {
		t.Fatal("clean UpdateRow consumed machine work")
	}
}
