package machine

// This file is the machine half of the self-healing layer (see
// internal/repair): write-verify on the protected write path, spare
// remapping, and scrub-triggered retirement. The repair.Table owns the
// bookkeeping (budget, offender counts, stats); this file owns the
// physics — re-asserting attached defects when a row is driven, reading
// committed lines back, evicting a defect from the fault model when its
// cell is spared out, and re-deriving the check bits that the laundering
// write path left encoding the defect instead of the data.

import (
	"errors"
	"fmt"

	"repro/internal/bitmat"
	"repro/internal/ecc"
	"repro/internal/faults"
	"repro/internal/repair"
	"repro/internal/shifter"
	"repro/internal/telemetry"
)

// ErrVerify is the sentinel all write-verify failures wrap; test for it
// with errors.Is(err, machine.ErrVerify).
var ErrVerify = errors.New("write-verify mismatch")

// VerifyError reports a persistent write-verify mismatch: after the
// commit, a rewrite retry, and a second read-back, the listed cells of
// the row still differ from the intended data — the signature of stuck-at
// defects that the delta-update ECC alone would have laundered into
// silent corruption. Under the verify+spare policy the error lists only
// the cells that could not be retired (spare budget exhausted).
type VerifyError struct {
	Row  int
	Cols []int // persistently mismatching columns, ascending
}

// Error implements error.
func (e *VerifyError) Error() string {
	return fmt.Sprintf("machine: row %d: %d cell(s) %v failed write-verify", e.Row, len(e.Cols), e.Cols)
}

// Unwrap makes the error errors.Is-able against ErrVerify.
func (e *VerifyError) Unwrap() error { return ErrVerify }

// RepairKind classifies one repair-log entry.
type RepairKind int

const (
	// RepairMismatch is a persistent write-verify mismatch; the cell is
	// reported but stays in service (verify-only policy, or pending the
	// retirement decision recorded alongside).
	RepairMismatch RepairKind = iota
	// RepairRetired is a cell remapped onto a spare — by the write path or
	// by scrub-triggered repeat-offender retirement.
	RepairRetired
	// RepairExhausted is a retirement refused for lack of spare budget.
	RepairExhausted
)

// String names the repair-log entry kind.
func (k RepairKind) String() string {
	switch k {
	case RepairMismatch:
		return "verify-mismatch"
	case RepairRetired:
		return "retired"
	case RepairExhausted:
		return "spares-exhausted"
	}
	return fmt.Sprintf("RepairKind(%d)", int(k))
}

// RepairReport is one repair-log entry. Stuck records the value the cell
// was observed holding against the intended write (for retired cells, the
// defect value the spare replaced), so an adjudicator can reconstruct the
// fault kind after the defect has been evicted from the model.
type RepairReport struct {
	Kind     RepairKind
	Row, Col int
	Stuck    bool
}

// AttachDefects couples a stuck-cell set to the machine's write path: a
// committed row immediately re-asserts its defects (the device physics —
// writes land electrically, the stuck state wins), which is what the
// write-verify read-back then observes, and a retired cell is evicted
// from the set because its physical line leaves the data path. The campaign
// attaches its model-owned set; pmem attaches one per crossbar. Nil
// detaches.
func (m *Machine) AttachDefects(s *faults.StuckSet) { m.defects = s }

// Defects returns the attached stuck-cell set (nil when none).
func (m *Machine) Defects() *faults.StuckSet { return m.defects }

// RepairTable exposes the live repair state, or nil when the repair
// policy is off.
func (m *Machine) RepairTable() *repair.Table { return m.rt }

// RepairStats returns the accumulated repair statistics (zero when the
// policy is off).
func (m *Machine) RepairStats() repair.Stats {
	if m.rt == nil {
		return repair.Stats{}
	}
	return m.rt.Stats()
}

// RecordRepairs enables (or disables) the repair log: with it on, every
// verify mismatch, retirement, and exhausted-budget refusal appends a
// RepairReport until DrainRepairs is called. The log is unbounded while
// enabled, so only enable it from drivers that drain it each round (the
// fault campaign); live serving reads counters and ring events instead.
func (m *Machine) RecordRepairs(on bool) {
	m.logRepairs = on
	if !on {
		m.repairLog = nil
	}
}

// DrainRepairs returns and clears the accumulated repair log.
func (m *Machine) DrainRepairs() []RepairReport {
	log := m.repairLog
	m.repairLog = nil
	return log
}

func (m *Machine) logRepair(k RepairKind, r, c int, stuck bool) {
	if m.logRepairs {
		m.repairLog = append(m.repairLog, RepairReport{Kind: k, Row: r, Col: c, Stuck: stuck})
	}
}

// verifyRow is the write-verify protocol for a just-committed row: the
// data half reads the line back and escalates persistent mismatches per
// policy; the metadata half sweeps the row's covering check units for
// stale syndromes the delta protocol left behind. Returns nil when the
// row verified (possibly after retirement healed it).
func (m *Machine) verifyRow(r int, want *bitmat.Vec) error {
	err := m.verifyData(r, want)
	m.verifyChecks(r, want)
	return err
}

// verifyData reads the committed row back and compares against intent; on
// mismatch it retries the failed cells with a raw write-driver rewrite (no
// second ECC delta — the delta for the intended data was already
// committed) and re-reads; cells that still differ are persistent defects,
// escalated per policy.
func (m *Machine) verifyData(r int, want *bitmat.Vec) error {
	m.rt.NoteVerifyRead()
	m.tel.VerifyReads.Inc()
	bad := m.mismatchCols(r, want)
	if len(bad) == 0 {
		return nil
	}

	// Retry: a transient write glitch resolves here; a stuck cell
	// re-asserts and fails the second read-back too.
	for _, c := range bad {
		m.mem.Set(r, c, want.Get(c))
	}
	if m.defects != nil {
		m.defects.ReassertRow(m.mem, r)
	}
	m.rt.NoteVerifyRead()
	m.tel.VerifyReads.Inc()
	bad = m.mismatchCols(r, want)
	if len(bad) == 0 {
		return nil
	}

	cycles := int64(m.mem.Stats().Cycles)
	remaining := bad[:0]
	for _, c := range bad {
		stuckVal := m.mem.Get(r, c)
		m.rt.NoteMismatch()
		m.tel.VerifyMismatches.Inc()
		m.tel.Events.Emit(telemetry.EvVerifyMismatch, cycles, m.tel.Bank, m.tel.Xbar, int64(r), int64(c))
		m.logRepair(RepairMismatch, r, c, stuckVal)
		if m.rt.Config().Policy == repair.VerifySpare && m.retireCell(r, c, want.Get(c), stuckVal) {
			continue // healed: remapped onto a spare, data landed
		}
		remaining = append(remaining, c)
	}
	if len(remaining) == 0 {
		return nil
	}
	return &VerifyError{Row: r, Cols: append([]int(nil), remaining...)}
}

// verifyChecks is the metadata half of write-verify: the delta-update
// protocol computes each write's check-bit delta from the PHYSICAL old
// row, so a cell whose stored value had diverged from the value the check
// bits encode (a stuck cell the scrub corrected, a flip landing between
// writes) poisons the fold. When the new data then happens to match the
// defect — writing the stuck value — the data read-back is clean but the
// checks are left encoding the stale logical image, and the next scrub
// would "correct" verified-good data. The sweep decodes the written row's
// covering blocks and, for any data diagnosis pointing INTO this row at a
// cell the read-back just proved correct, patches the stored check bits
// with a one-hot delta: within the written row, verified data outranks
// metadata. Diagnoses pointing at other rows are real errors and stay for
// the scrub.
func (m *Machine) verifyChecks(r int, want *bitmat.Vec) {
	if !m.Protected() {
		return
	}
	mm := m.cfg.M
	for bc := 0; bc < m.cfg.N/mm; bc++ {
		for _, d := range m.diagnoseBlock(r/mm, bc) {
			if d.LR != r%mm {
				continue
			}
			// Word-based codes: the unit sits entirely inside the verified
			// row, so if every data bit it covers read back as intended the
			// stored bits are what's wrong — re-encode the one word. An
			// unverified segment (a reported, unretired defect) is left
			// alone: its mismatch must stay visible.
			if m.sch != nil && m.rowSegmentVerified(r, bc, want) &&
				m.sch.RebuildRowWords(m.mem.Mat(), r, bc) {
				break
			}
			if d.Kind != ecc.DataError {
				continue
			}
			if c := bc*mm + d.LC; m.mem.Get(r, c) == want.Get(c) {
				m.clearStaleSyndrome(r, c)
			}
		}
	}
}

// rowSegmentVerified reports whether row r's data across block column bc
// matches the intent the read-back verified against.
func (m *Machine) rowSegmentVerified(r, bc int, want *bitmat.Vec) bool {
	for c := bc * m.cfg.M; c < (bc+1)*m.cfg.M; c++ {
		if m.mem.Get(r, c) != want.Get(c) {
			return false
		}
	}
	return true
}

// diagnoseBlock decodes block (br,bc) against the current memory image
// without correcting anything — the read-only diagnosis the verify sweep
// needs (scrub corrections must stay scrub's, visible in its findings).
func (m *Machine) diagnoseBlock(br, bc int) []ecc.Diagnosis {
	if m.sch != nil {
		return m.sch.CheckBlock(m.mem.Mat(), br, bc)
	}
	p := ecc.Params{N: m.cfg.N, M: m.cfg.M}
	lead, counter := bitmat.NewVec(p.M), bitmat.NewVec(p.M)
	for d := 0; d < p.M; d++ {
		lead.Set(d, m.cm.CheckBit(shifter.Leading, d, br, bc))
		counter.Set(d, m.cm.CheckBit(shifter.Counter, d, br, bc))
	}
	r0, c0 := br*p.M, bc*p.M
	for lr := 0; lr < p.M; lr++ {
		for lc := 0; lc < p.M; lc++ {
			if m.mem.Mat().Get(r0+lr, c0+lc) {
				lead.Flip(p.LeadIdx(lr, lc))
				counter.Flip(p.CounterIdx(lr, lc))
			}
		}
	}
	if d := ecc.Decode(p, lead, counter); d.Kind != ecc.NoError {
		return []ecc.Diagnosis{d}
	}
	return nil
}

// clearStaleSyndrome folds a one-hot delta at cell (r,c) into the stored
// check bits — re-synchronizing metadata with data the read-back proved
// correct, without touching the data itself.
func (m *Machine) clearStaleSyndrome(r, c int) {
	switch {
	case m.cm != nil:
		p := ecc.Params{N: m.cfg.N, M: m.cfg.M}
		br, bc, lr, lc := p.BlockOf(r, c)
		m.cm.FlipCheckBit(shifter.Leading, p.LeadIdx(lr, lc), br, bc)
		m.cm.FlipCheckBit(shifter.Counter, p.CounterIdx(lr, lc), br, bc)
	case m.sch != nil:
		old := m.mem.Mat().Row(r).Clone()
		old.Flip(c)
		m.sch.UpdateRowWrite(r, old, m.mem.Mat().Row(r), m.ones)
	}
}

// mismatchCols returns the columns of row r whose stored bits differ from
// want, ascending.
func (m *Machine) mismatchCols(r int, want *bitmat.Vec) []int {
	var bad []int
	got := m.mem.Mat().Row(r)
	for c := 0; c < m.cfg.N; c++ {
		if got.Get(c) != want.Get(c) {
			bad = append(bad, c)
		}
	}
	return bad
}

// retireCell remaps cell (r,c) onto a spare (post-package-repair style):
// the defect is evicted from the attached fault model — the stuck line
// leaves the data path — and the replacement cell is programmed with the
// intended value. Returns false when the spare budget is exhausted; the
// defect then stays in service (reported, never silent).
func (m *Machine) retireCell(r, c int, want, stuckVal bool) bool {
	cycles := int64(m.mem.Stats().Cycles)
	if _, ok := m.rt.Retire(r, c); !ok {
		m.tel.SparesExhausted.Inc()
		m.tel.Events.Emit(telemetry.EvSpareExhausted, cycles, m.tel.Bank, m.tel.Xbar, int64(r), int64(c))
		m.logRepair(RepairExhausted, r, c, stuckVal)
		return false
	}
	if m.defects != nil {
		m.defects.Evict(r, c)
	}
	// Only the data moves here: the covering checks are NOT rebuilt from
	// the image (that would launder every other defect asserting in the
	// same block into the metadata — the co-located defect would go
	// silent). Any one-cell staleness the laundering fold left behind is
	// cleared surgically by the metadata sweeps around the write.
	m.mem.Set(r, c, want)
	m.tel.CellsRetired.Inc()
	m.tel.Events.Emit(telemetry.EvCellRetired, cycles, m.tel.Bank, m.tel.Xbar, int64(r), int64(c))
	m.logRepair(RepairRetired, r, c, stuckVal)
	return true
}

// syncRowChecks is the pre-write metadata sync: before the delta fold
// reads the physical old row, any single-cell disagreement between the
// stored checks and THIS row's physical state is folded into the metadata,
// so the commit's "cancel the old effect" term is computed from a state
// the checks actually describe — no phantom delta, no laundering. The
// scrub loses nothing it owns: diagnoses pointing at other rows are left
// alone, and the row's own cells are about to be overwritten and then
// read back by write-verify, which outranks a stale parity vote.
func (m *Machine) syncRowChecks(r int) {
	if !m.Protected() {
		return
	}
	mm := m.cfg.M
	for bc := 0; bc < m.cfg.N/mm; bc++ {
		for _, d := range m.diagnoseBlock(r/mm, bc) {
			if d.LR != r%mm {
				continue
			}
			// Word-based codes: the mismatching unit lies entirely inside
			// the row being overwritten — re-encode it from the physical
			// image (detect-only parity included; no localization needed).
			if m.sch != nil && m.sch.RebuildRowWords(m.mem.Mat(), r, bc) {
				break
			}
			// Diagonal code: only a localized single data error pointing
			// into this row can be synced; anything else is left for scrub.
			if d.Kind == ecc.DataError {
				m.clearStaleSyndrome(r, bc*mm+d.LC)
			}
		}
	}
}

// noteScrubRepair is the scrub-triggered retirement hook, called for
// every data cell a scrub repaired: the cell's strike count accumulates
// in the bounded offender table, and a repeat offender crossing the
// configured threshold is retired on the spot — online, between the
// scrub's correction and the next access. The scrub already restored the
// data, so retirement here only remaps and evicts.
func (m *Machine) noteScrubRepair(r, c int) {
	if !m.rt.NoteOffender(r, c) {
		return
	}
	want := m.mem.Get(r, c) // the scrub's corrected value
	stuckVal := !want
	if m.defects != nil {
		if v, ok := m.defects.Stuck(r, c); ok {
			stuckVal = v
		}
	}
	m.retireCell(r, c, want, stuckVal)
}
