package machine

// Hamming (and parity) as full machine backends: the satellite tests of
// the scheme layer. Everything a protected machine does with the diagonal
// CMEM — consistent write paths, scrub findings, input checks before SIMD
// execution — must hold under `Scheme: "hamming"` too, with Hamming's own
// guarantee shape: single flips corrected, same-word doubles detected,
// never miscorrected.

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bitmat"
	"repro/internal/ecc"
)

// hammingMachine builds a 45×45 machine protected by the Hamming backend.
func hammingMachine(t *testing.T) *Machine {
	t.Helper()
	m, err := New(Config{N: 45, M: 15, K: 2, ECCEnabled: true, Scheme: ecc.SchemeHamming})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSchemeConfigValidation: unknown scheme names are rejected with the
// registry's known-scheme list; hamming accepts geometries the diagonal
// code cannot (even block sides).
func TestSchemeConfigValidation(t *testing.T) {
	err := (Config{N: 45, M: 15, ECCEnabled: true, Scheme: "bogus"}).Validate()
	if err == nil || !strings.Contains(err.Error(), "known schemes") {
		t.Fatalf("bogus scheme error = %v", err)
	}
	if err := (Config{N: 48, M: 12, ECCEnabled: true, Scheme: ecc.SchemeHamming}).Validate(); err != nil {
		t.Fatalf("hamming rejects even block side: %v", err)
	}
	if err := (Config{N: 48, M: 12, K: 2, ECCEnabled: true}).Validate(); err == nil {
		t.Fatal("diagonal accepted an even block side")
	}
}

// TestHammingMachineVerify: the write paths (LoadRow, UpdateRow) keep the
// Hamming check bits continuously consistent — machine.CheckConsistent is
// the scheme-generic Verify.
func TestHammingMachineVerify(t *testing.T) {
	m := hammingMachine(t)
	if !m.CheckConsistent() {
		t.Fatal("fresh machine inconsistent")
	}
	rng := rand.New(rand.NewSource(1))
	row := bitmat.NewVec(45)
	for i := 0; i < 32; i++ {
		for j := 0; j < 45; j++ {
			row.Set(j, rng.Intn(2) == 0)
		}
		m.LoadRow(rng.Intn(45), row)
	}
	for i := 0; i < 16; i++ {
		m.UpdateRow(rng.Intn(45), func(v *bitmat.Vec) bool {
			v.Flip(rng.Intn(45))
			return true
		})
	}
	if !m.CheckConsistent() {
		t.Fatal("write paths desynchronized the Hamming state")
	}
	// An unannounced flip must break consistency (Verify really looks).
	m.InjectDataFault(3, 7)
	if m.CheckConsistent() {
		t.Fatal("fault invisible to CheckConsistent")
	}
}

// TestHammingScrubSingleFlipCorrected: ScrubFindings locates and repairs
// a single flipped cell, reporting the exact coordinates.
func TestHammingScrubSingleFlipCorrected(t *testing.T) {
	m := hammingMachine(t)
	rng := rand.New(rand.NewSource(2))
	row := bitmat.NewVec(45)
	for r := 0; r < 45; r++ {
		for j := 0; j < 45; j++ {
			row.Set(j, rng.Intn(2) == 0)
		}
		m.LoadRow(r, row)
	}
	want := m.MEM().Snapshot()

	m.InjectDataFault(17, 31)
	findings := m.ScrubFindings()
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want exactly one", findings)
	}
	f := findings[0]
	if f.Diag.Kind != ecc.DataError {
		t.Fatalf("finding kind %v, want data-error", f.Diag.Kind)
	}
	if r, c := f.DataCell(15); r != 17 || c != 31 {
		t.Fatalf("repaired cell (%d,%d), want (17,31)", r, c)
	}
	if !m.MEM().Snapshot().Equal(want) {
		t.Fatal("memory not restored exactly")
	}
	if !m.CheckConsistent() {
		t.Fatal("state inconsistent after repair")
	}
	st := m.Stats()
	if st.Corrections != 1 || st.Uncorrectable != 0 {
		t.Fatalf("stats %+v, want one correction", st)
	}
}

// TestHammingScrubDoubleFlipDetected: two flips in one word are flagged
// uncorrectable and the memory is left untouched — SEC-DED's double-error
// detection through the whole machine path.
func TestHammingScrubDoubleFlipDetected(t *testing.T) {
	m := hammingMachine(t)
	want := m.MEM().Snapshot()
	m.InjectDataFault(8, 16) // word 1 of row 8
	m.InjectDataFault(8, 22) // same word
	findings := m.ScrubFindings()
	if len(findings) != 1 || findings[0].Diag.Kind != ecc.Uncorrectable {
		t.Fatalf("findings = %v, want one uncorrectable", findings)
	}
	after := m.MEM().Snapshot()
	after.Flip(8, 16)
	after.Flip(8, 22)
	if !after.Equal(want) {
		t.Fatal("uncorrectable word was mutated — miscorrection")
	}
	st := m.Stats()
	if st.Corrections != 0 || st.Uncorrectable != 1 {
		t.Fatalf("stats %+v, want one uncorrectable", st)
	}

	// Two flips in different words of one block are both repaired.
	m2 := hammingMachine(t)
	m2.InjectDataFault(0, 3)
	m2.InjectDataFault(14, 8)
	findings = m2.ScrubFindings()
	if len(findings) != 2 {
		t.Fatalf("cross-word double: findings %v", findings)
	}
	for _, f := range findings {
		if f.Diag.Kind != ecc.DataError {
			t.Fatalf("cross-word double: finding %v", f)
		}
	}
	if !m2.CheckConsistent() {
		t.Fatal("state inconsistent after cross-word repairs")
	}
}

// TestHammingSIMDExecution: SIMPLER kernels compute correctly on a
// Hamming-protected machine in both orientations, the working region is
// reconciled afterwards, and a pre-execution input fault is corrected by
// the input check.
func TestHammingSIMDExecution(t *testing.T) {
	mp := adder8(t)
	m := hammingMachine(t)
	inputs := loadRandomInputs(t, m, mp, 3)

	// A soft error in the input region is repaired before execution.
	m.InjectDataFault(5, 2)
	if err := m.ExecuteSIMD(mp, m.MEM().AllRows()); err != nil {
		t.Fatal(err)
	}
	checkAllRows(t, m, mp, inputs)
	if !m.CheckConsistent() {
		t.Fatal("state inconsistent after SIMD execution")
	}
	st := m.Stats()
	if st.InputChecks == 0 || st.Corrections == 0 {
		t.Fatalf("input check did not run or correct: %+v", st)
	}
	if st.CriticalOps == 0 {
		t.Fatal("no critical operations recorded")
	}
}

// TestHammingSIMDColsExecution: the transposed executor — inputs loaded
// per column (single-cell deltas), column-parallel gates, row-oriented
// reconciliation — stays consistent on a Hamming-protected machine.
func TestHammingSIMDColsExecution(t *testing.T) {
	mp := adder8(t)
	m := hammingMachine(t)
	rng := rand.New(rand.NewSource(8))
	inputs := make(map[int][]bool)
	for c := 0; c < 45; c++ {
		in := make([]bool, mp.Netlist.NumInputs())
		for i := range in {
			in[i] = rng.Intn(2) == 0
		}
		inputs[c] = in
	}
	m.LoadInputsCols(mp, inputs)
	if !m.CheckConsistent() {
		t.Fatal("column input loading desynchronized the scheme state")
	}
	if err := m.ExecuteSIMDCols(mp, m.MEM().AllRows()); err != nil {
		t.Fatal(err)
	}
	for c, in := range inputs {
		want := mp.Netlist.Eval(in)
		got := m.ReadOutputsCol(mp, c)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("column %d output %d: got %v want %v", c, i, got[i], want[i])
			}
		}
	}
	if !m.CheckConsistent() {
		t.Fatal("state inconsistent after column-parallel execution")
	}
}

// TestParityMachineDetectsButNeverCorrects: the detect-only baseline
// through the machine path — findings are uncorrectable, memory is
// untouched, corrections stay zero.
func TestParityMachineDetectsButNeverCorrects(t *testing.T) {
	m, err := New(Config{N: 45, M: 15, ECCEnabled: true, Scheme: ecc.SchemeParity})
	if err != nil {
		t.Fatal(err)
	}
	m.InjectDataFault(9, 9)
	findings := m.ScrubFindings()
	if len(findings) != 1 || findings[0].Diag.Kind != ecc.Uncorrectable {
		t.Fatalf("findings = %v, want one uncorrectable", findings)
	}
	if !m.MEM().Get(9, 9) {
		t.Fatal("detect-only scheme mutated memory")
	}
	st := m.Stats()
	if st.Corrections != 0 || st.Uncorrectable != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestSchemeRebuildChecksHeals: RebuildChecks restores consistency from
// the memory image for every backend (the campaign's heal step).
func TestSchemeRebuildChecksHeals(t *testing.T) {
	for _, scheme := range []string{"", ecc.SchemeHamming, ecc.SchemeParity} {
		m, err := New(Config{N: 45, M: 15, K: 2, ECCEnabled: true, Scheme: scheme})
		if err != nil {
			t.Fatal(err)
		}
		m.InjectDataFault(1, 1)
		m.InjectDataFault(2, 2) // different rows: visible to every scheme
		if m.CheckConsistent() {
			t.Fatalf("scheme %q: faults invisible", scheme)
		}
		m.RebuildChecks()
		if !m.CheckConsistent() {
			t.Fatalf("scheme %q: RebuildChecks did not heal", scheme)
		}
	}
}

// TestHammingECCImageSnapshot: ECCImage is a true snapshot — later writes
// do not leak into it (the campaign's pre-scrub reference state).
func TestHammingECCImageSnapshot(t *testing.T) {
	m := hammingMachine(t)
	img := m.ECCImage()
	if img == nil || img.Name() != ecc.SchemeHamming {
		t.Fatalf("ECCImage = %v", img)
	}
	pre := m.MEM().Snapshot()
	row := bitmat.NewVec(45)
	row.Fill(true)
	m.LoadRow(0, row)
	if len(img.ReferenceCheck(pre, 0, 0)) != 0 {
		t.Fatal("snapshot drifted with the live machine")
	}
}
