package machine

import (
	"fmt"

	"repro/internal/bitmat"
	"repro/internal/cmem"
	"repro/internal/ecc"
	"repro/internal/shifter"
	"repro/internal/synth"
)

// This file is the transposed execution path: the SIMPLER program lives
// in a single *column* and runs simultaneously across the selected
// columns (Fig 1b). Everything dualizes — gates become in-column NORs,
// the inputs occupy block-rows, critical updates arrive at the CMEM with
// ColParallel orientation, and the pre-execution check walks input
// block-rows. The paper's diagonal placement exists precisely so that
// both orientations update check bits with the same Θ(1) discipline;
// this executor (with its tests) demonstrates that symmetry on the
// integrated machine rather than just in the code's mathematics.

// ExecuteSIMDCols runs a SIMPLER mapping in every selected column
// simultaneously. Cell i of the mapping is row i of the crossbar; each
// column computes the function on its own inputs, which must already be
// loaded in rows [0, NumInputs) of that column.
func (m *Machine) ExecuteSIMDCols(mp *synth.Mapping, cols *bitmat.Vec) error {
	if mp.RowSize > m.cfg.N {
		return fmt.Errorf("machine: mapping needs %d cells, crossbar column has %d", mp.RowSize, m.cfg.N)
	}
	if m.Protected() {
		inputBlocks := (mp.Netlist.NumInputs() + m.cfg.M - 1) / m.cfg.M
		for br := 0; br < inputBlocks; br++ {
			m.inputChecks++
			if m.sch != nil {
				for bc := 0; bc < m.cfg.N/m.cfg.M; bc++ {
					for _, d := range m.sch.CorrectBlock(m.mem.Mat(), br, bc) {
						m.tallyDiag(d)
					}
				}
				continue
			}
			diags := m.cm.CheckLine(m.mem, shifter.ColParallel, br, br%m.cfg.K)
			for _, d := range diags {
				m.tallyDiag(d)
			}
		}
	}

	pc := 0
	for _, s := range mp.Steps {
		switch s.Kind {
		case synth.StepInit:
			m.mem.InitRowsInCols(s.Init, cols)
		case synth.StepConst:
			m.writeRowUniform(s.Cell, s.Value, cols, s.Critical, &pc)
		case synth.StepGate:
			m.gateCols(s, cols, &pc)
		}
	}
	m.reconcileWorkingRows(mp)
	return nil
}

// gateCols executes one (possibly critical) column-parallel MAGIC step.
func (m *Machine) gateCols(s synth.Step, cols *bitmat.Vec, pc *int) {
	critical := s.Critical && m.Protected()
	var old *bitmat.Vec
	if critical {
		old = m.mem.Mat().Row(s.Cell).Clone()
		m.mem.Tick()
	}
	if s.IsNot {
		m.mem.NOTCols(s.A, s.Cell, cols)
	} else {
		m.mem.NORCols(s.A, s.B, s.Cell, cols)
	}
	if critical {
		newRow := m.mem.Mat().Row(s.Cell).Clone()
		m.mem.Tick()
		m.criticalUpdate(shifter.ColParallel, s.Cell, old, newRow, cols, pc)
	}
}

// writeRowUniform drives a constant into row r of every selected column.
func (m *Machine) writeRowUniform(r int, v bool, cols *bitmat.Vec, criticalStep bool, pc *int) {
	critical := criticalStep && m.Protected()
	var old *bitmat.Vec
	if critical {
		old = m.mem.Mat().Row(r).Clone()
		m.mem.Tick()
	}
	// Masked word fill: drive the constant into the selected columns of
	// the row in whole-word operations (Set bypasses gate bookkeeping, so
	// writing the live row directly is equivalent to the per-cell loop).
	row := m.mem.Mat().Row(r)
	if cols.Len() == row.Len() {
		if v {
			row.Or(row, cols)
		} else {
			row.AndNot(row, cols)
		}
	} else {
		for c := cols.NextOne(0); c >= 0; c = cols.NextOne(c + 1) {
			m.mem.Set(r, c, v)
		}
	}
	m.mem.Tick()
	if critical {
		newRow := m.mem.Mat().Row(r).Clone()
		m.mem.Tick()
		m.criticalUpdate(shifter.ColParallel, r, old, newRow, cols, pc)
	}
}

// reconcileWorkingRows is the transposed working-region reconciliation:
// block-rows spanning the working cells get their check bits
// re-established from the memory image.
func (m *Machine) reconcileWorkingRows(mp *synth.Mapping) {
	if !m.Protected() {
		return
	}
	firstBR := mp.Netlist.NumInputs() / m.cfg.M
	lastBR := (mp.RowSize - 1) / m.cfg.M
	if m.sch != nil {
		for br := firstBR; br <= lastBR; br++ {
			for bc := 0; bc < m.cfg.N/m.cfg.M; bc++ {
				m.sch.RebuildBlock(m.mem.Mat(), br, bc)
			}
		}
		return
	}
	p := ecc.Params{N: m.cfg.N, M: m.cfg.M}
	want := ecc.Build(p, m.mem.Mat())
	for br := firstBR; br <= lastBR; br++ {
		for bc := 0; bc < p.BlocksPerSide(); bc++ {
			for d := 0; d < m.cfg.M; d++ {
				m.cm.SetCheckBit(shifter.Leading, d, br, bc, want.Lead(d, br, bc))
				m.cm.SetCheckBit(shifter.Counter, d, br, bc, want.Counter(d, br, bc))
			}
		}
	}
}

// LoadInputsCols writes each column's function inputs into rows
// [0, NumInputs). inputs[c] supplies column c.
func (m *Machine) LoadInputsCols(mp *synth.Mapping, inputs map[int][]bool) {
	for c, in := range inputs {
		if len(in) != mp.Netlist.NumInputs() {
			panic("machine: wrong input width")
		}
		for i, v := range in {
			old := m.mem.Mat().Row(i).Clone()
			cur := old.Clone()
			cur.Set(c, v)
			m.mem.WriteRow(i, cur)
			if m.cm != nil {
				m.cm.UpdateCritical(0, cmem.CriticalUpdate{
					Orientation: shifter.ColParallel, Index: i, Old: old, New: cur,
				})
			} else if m.sch != nil {
				// Exactly one cell changed: the Θ(1) single-cell delta.
				m.sch.UpdateWrite(i, c, old.Get(c), v)
			}
		}
	}
}

// ReadOutputsCol returns the function outputs computed in column c.
func (m *Machine) ReadOutputsCol(mp *synth.Mapping, c int) []bool {
	out := make([]bool, mp.Netlist.NumOutputs())
	for i, id := range mp.Netlist.Outputs() {
		out[i] = m.mem.Get(mp.CellOf[id], c)
	}
	return out
}
