package machine

import (
	"math/rand"
	"testing"

	"repro/internal/ecc"
)

func TestSIMDColsExecution(t *testing.T) {
	// Fig 1b end-to-end: the adder program in a column, SIMD across all
	// 45 columns, with continuous ECC maintenance in the transposed
	// orientation.
	m := MustNew(testCfg)
	mp := adder8(t)

	rng := rand.New(rand.NewSource(21))
	inputs := make(map[int][]bool, testCfg.N)
	for c := 0; c < testCfg.N; c++ {
		in := make([]bool, mp.Netlist.NumInputs())
		for i := range in {
			in[i] = rng.Intn(2) == 0
		}
		inputs[c] = in
	}
	m.LoadInputsCols(mp, inputs)
	if !m.CheckConsistent() {
		t.Fatal("inconsistent after column loads")
	}

	if err := m.ExecuteSIMDCols(mp, m.MEM().AllCols()); err != nil {
		t.Fatal(err)
	}
	for c, in := range inputs {
		want := mp.Netlist.Eval(in)
		got := m.ReadOutputsCol(mp, c)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("column %d output %d: got %v want %v", c, i, got[i], want[i])
			}
		}
	}
	if !m.CheckConsistent() {
		t.Fatal("CMEM inconsistent after column execution")
	}
	if m.Stats().CriticalOps == 0 {
		t.Fatal("no critical ops in column orientation")
	}
}

func TestSIMDColsInputFaultCorrected(t *testing.T) {
	m := MustNew(testCfg)
	mp := adder8(t)
	rng := rand.New(rand.NewSource(22))
	inputs := make(map[int][]bool, testCfg.N)
	for c := 0; c < testCfg.N; c++ {
		in := make([]bool, mp.Netlist.NumInputs())
		for i := range in {
			in[i] = rng.Intn(2) == 0
		}
		inputs[c] = in
	}
	m.LoadInputsCols(mp, inputs)

	// Fault in the input region: rows [0,16) hold inputs.
	m.InjectDataFault(5, 30)
	if err := m.ExecuteSIMDCols(mp, m.MEM().AllCols()); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Corrections != 1 {
		t.Fatalf("corrections = %d, want 1", m.Stats().Corrections)
	}
	for c, in := range inputs {
		want := mp.Netlist.Eval(in)
		got := m.ReadOutputsCol(mp, c)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("column %d wrong after corrected fault", c)
			}
		}
	}
}

func TestOrientationSymmetry(t *testing.T) {
	// The same program on the same per-lane operands must produce the
	// same results row-wise and column-wise, and both must leave the
	// CMEM equal to a from-scratch rebuild — the architectural symmetry
	// the diagonal placement buys.
	mp := adder8(t)
	rng := rand.New(rand.NewSource(23))
	lane := make(map[int][]bool, testCfg.N)
	for i := 0; i < testCfg.N; i++ {
		in := make([]bool, mp.Netlist.NumInputs())
		for j := range in {
			in[j] = rng.Intn(2) == 0
		}
		lane[i] = in
	}

	mr := MustNew(testCfg)
	mr.LoadInputs(mp, lane)
	if err := mr.ExecuteSIMD(mp, mr.MEM().AllRows()); err != nil {
		t.Fatal(err)
	}
	mc := MustNew(testCfg)
	mc.LoadInputsCols(mp, lane)
	if err := mc.ExecuteSIMDCols(mp, mc.MEM().AllCols()); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < testCfg.N; i++ {
		r := mr.ReadOutputs(mp, i)
		c := mc.ReadOutputsCol(mp, i)
		for j := range r {
			if r[j] != c[j] {
				t.Fatalf("lane %d output %d differs between orientations", i, j)
			}
		}
	}
	for _, m := range []*Machine{mr, mc} {
		want := ecc.Build(ecc.Params{N: testCfg.N, M: testCfg.M}, m.MEM().Mat())
		if !m.CMEM().Image().Equal(want) {
			t.Fatal("CMEM diverged in one orientation")
		}
	}
	// The memory images are transposes of each other.
	if !mr.MEM().Mat().Transpose().Equal(mc.MEM().Mat()) {
		t.Fatal("row and column executions are not transposes")
	}
}

func TestSIMDColsOversizedMapping(t *testing.T) {
	m := MustNew(Config{N: 45, M: 15, K: 2, ECCEnabled: true})
	mp := adder8(t) // rowSize 45 — fine
	_ = mp
	big := *mp
	big.RowSize = 46
	if err := m.ExecuteSIMDCols(&big, m.MEM().AllCols()); err == nil {
		t.Fatal("oversized mapping accepted")
	}
}
