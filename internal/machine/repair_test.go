package machine

import (
	"errors"
	"testing"

	"repro/internal/bitmat"
	"repro/internal/faults"
	"repro/internal/repair"
	"repro/internal/telemetry"
)

// repairCfg returns the test geometry with the given repair policy.
func repairCfg(p repair.Policy, spares int) Config {
	cfg := testCfg
	cfg.Repair = repair.Config{Policy: p, Spares: spares}
	return cfg
}

// stuckMachine builds a protected machine with repair policy p and one
// cell stuck at 1, defects attached.
func stuckMachine(t *testing.T, p repair.Policy, spares int, cells ...[2]int) (*Machine, *faults.StuckSet) {
	t.Helper()
	m := MustNew(repairCfg(p, spares))
	s := faults.NewStuckSet()
	for _, rc := range cells {
		s.Add(rc[0], rc[1], true)
		m.MEM().Set(rc[0], rc[1], true)
	}
	m.AttachDefects(s)
	return m, s
}

// TestUpdateRowVerifyErrorPaths is the table-driven error-path satellite:
// every (policy, defect, budget) combination lands in the documented
// verdict.
func TestUpdateRowVerifyErrorPaths(t *testing.T) {
	cases := []struct {
		name      string
		policy    repair.Policy
		spares    int
		stuck     [][2]int // cells stuck at 1 before the write
		row       int
		wantErr   bool
		wantCols  []int // VerifyError.Cols when wantErr
		wantTired int   // cells retired after the write
	}{
		{name: "off/no-defect", policy: repair.Off, row: 3},
		{name: "off/stuck-silent", policy: repair.Off,
			stuck: [][2]int{{3, 9}}, row: 3}, // the laundering hole: no error
		{name: "verify/clean-row", policy: repair.Verify, row: 4},
		{name: "verify/stuck-reported", policy: repair.Verify,
			stuck: [][2]int{{3, 9}}, row: 3, wantErr: true, wantCols: []int{9}},
		{name: "verify/two-cells", policy: repair.Verify,
			stuck: [][2]int{{3, 2}, {3, 40}}, row: 3, wantErr: true, wantCols: []int{2, 40}},
		{name: "verify/defect-other-row", policy: repair.Verify,
			stuck: [][2]int{{7, 9}}, row: 3},
		{name: "spare/stuck-retired", policy: repair.VerifySpare, spares: 4,
			stuck: [][2]int{{3, 9}}, row: 3, wantTired: 1},
		{name: "spare/two-retired", policy: repair.VerifySpare, spares: 4,
			stuck: [][2]int{{3, 2}, {3, 40}}, row: 3, wantTired: 2},
		{name: "spare/budget-exhausted", policy: repair.VerifySpare, spares: 1,
			stuck: [][2]int{{3, 2}, {3, 40}}, row: 3, wantErr: true, wantCols: []int{40}, wantTired: 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m, s := stuckMachine(t, c.policy, c.spares, c.stuck...)
			zeros := bitmat.NewVec(testCfg.N)
			wrote, err := m.UpdateRow(c.row, func(v *bitmat.Vec) bool {
				v.CopyFrom(zeros)
				return true
			})
			if !wrote {
				t.Fatal("dirty mutation not written")
			}
			if (err != nil) != c.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, c.wantErr)
			}
			if err != nil {
				if !errors.Is(err, ErrVerify) {
					t.Fatalf("error %v is not errors.Is(ErrVerify)", err)
				}
				var ve *VerifyError
				if !errors.As(err, &ve) {
					t.Fatalf("error %T is not a *VerifyError", err)
				}
				if ve.Row != c.row {
					t.Errorf("VerifyError.Row = %d, want %d", ve.Row, c.row)
				}
				if len(ve.Cols) != len(c.wantCols) {
					t.Fatalf("VerifyError.Cols = %v, want %v", ve.Cols, c.wantCols)
				}
				for i := range ve.Cols {
					if ve.Cols[i] != c.wantCols[i] {
						t.Fatalf("VerifyError.Cols = %v, want %v", ve.Cols, c.wantCols)
					}
				}
			}
			if got := m.Stats().CellsRetired; got != c.wantTired {
				t.Errorf("CellsRetired = %d, want %d", got, c.wantTired)
			}
			// Retired cells hold the intended data, left the defect set,
			// and the machine's check bits are coherent again.
			if c.wantTired > 0 && !c.wantErr {
				for _, rc := range c.stuck {
					if m.MEM().Get(rc[0], rc[1]) {
						t.Errorf("retired cell (%d,%d) still holds the stuck value", rc[0], rc[1])
					}
					if _, stillStuck := s.Stuck(rc[0], rc[1]); stillStuck {
						t.Errorf("retired cell (%d,%d) still in the defect set", rc[0], rc[1])
					}
				}
				if !m.CheckConsistent() {
					t.Error("check bits stale after retirement")
				}
			}
		})
	}
}

// TestWriteVerifyCatchesLaundering pins the mechanism at machine level:
// with repair off a stuck cell's laundering write leaves the machine
// check-consistent while the data is wrong (the PR 3 hole); with verify
// the same write errors; with verify+spare it self-heals.
func TestWriteVerifyCatchesLaundering(t *testing.T) {
	launder := func(m *Machine) error {
		// The laundering sequence: checks rebuilt over golden data, the
		// defect re-asserts, then the host writes the non-stuck value.
		m.RebuildChecks()
		m.MEM().Set(7, 9, true) // defect re-asserts
		zeros := bitmat.NewVec(testCfg.N)
		return m.LoadRow(7, zeros)
	}

	m := MustNew(repairCfg(repair.Off, 0))
	if err := launder(m); err != nil {
		t.Fatalf("repair-off LoadRow: %v", err)
	}
	m.MEM().Set(7, 9, true) // the defect re-asserts; nothing observes it
	if !m.CheckConsistent() {
		t.Fatal("laundering should leave checks consistent — that is the hole")
	}

	mv, _ := stuckMachine(t, repair.Verify, 0, [2]int{7, 9})
	if err := launder(mv); !errors.Is(err, ErrVerify) {
		t.Fatalf("verify policy: err = %v, want ErrVerify", err)
	}

	ms, _ := stuckMachine(t, repair.VerifySpare, 4, [2]int{7, 9})
	if err := launder(ms); err != nil {
		t.Fatalf("verify+spare policy: %v", err)
	}
	if ms.MEM().Get(7, 9) {
		t.Fatal("retired cell did not take the intended value")
	}
	if !ms.CheckConsistent() {
		t.Fatal("check bits stale after write-verify retirement")
	}
	if ms.Stats().CellsRetired != 1 {
		t.Fatalf("CellsRetired = %d, want 1", ms.Stats().CellsRetired)
	}
}

// TestScrubTriggeredRetirement drives a repeat-offender cell through
// scrubs until the threshold retires it online.
func TestScrubTriggeredRetirement(t *testing.T) {
	cfg := repairCfg(repair.VerifySpare, 4)
	cfg.Repair.RetireAfter = 2
	m := MustNew(cfg)
	s := faults.NewStuckSet()
	s.Add(5, 6, true)
	m.AttachDefects(s)

	// Scrub 1: the defect flips the healthy cell; the scrub corrects it
	// (strike 1), the defect re-asserts afterwards.
	s.Reassert(m.MEM())
	if c, u := m.Scrub(); c != 1 || u != 0 {
		t.Fatalf("scrub 1 corrected=%d uncorrectable=%d, want 1/0", c, u)
	}
	if m.Stats().CellsRetired != 0 {
		t.Fatal("retired before crossing the threshold")
	}
	s.Reassert(m.MEM())

	// Scrub 2: strike 2 crosses RetireAfter=2 — retired on the spot.
	if c, _ := m.Scrub(); c != 1 {
		t.Fatalf("scrub 2 corrected=%d, want 1", c)
	}
	if m.Stats().CellsRetired != 1 {
		t.Fatalf("CellsRetired = %d, want 1", m.Stats().CellsRetired)
	}
	if _, stillStuck := s.Stuck(5, 6); stillStuck {
		t.Fatal("retired cell still in the defect set")
	}
	if m.MEM().Get(5, 6) {
		t.Fatal("retired cell holds the stuck value")
	}
	if !m.CheckConsistent() {
		t.Fatal("check bits stale after scrub-triggered retirement")
	}
	// The defect no longer re-asserts: subsequent scrubs stay clean.
	s.Reassert(m.MEM())
	if c, u := m.Scrub(); c != 0 || u != 0 {
		t.Fatalf("post-retirement scrub corrected=%d uncorrectable=%d, want 0/0", c, u)
	}
}

// TestRepairLogAndTelemetry checks the repair log entries and the
// telemetry counters/ring events the CI smoke asserts on.
func TestRepairLogAndTelemetry(t *testing.T) {
	reg := telemetry.New()
	m, _ := stuckMachine(t, repair.VerifySpare, 1, [2]int{3, 2}, [2]int{3, 40})
	tel := TelemetryFor(reg, "diagonal")
	tel.Bank, tel.Xbar = 2, 1
	m.Instrument(tel)
	m.RecordRepairs(true)

	zeros := bitmat.NewVec(testCfg.N)
	_, err := m.UpdateRow(3, func(v *bitmat.Vec) bool { v.CopyFrom(zeros); return true })
	if !errors.Is(err, ErrVerify) {
		t.Fatalf("err = %v, want ErrVerify (budget 1 < 2 defects)", err)
	}

	log := m.DrainRepairs()
	var mism, retired, exhausted int
	for _, r := range log {
		if !r.Stuck {
			t.Errorf("log entry %+v lost the observed stuck value", r)
		}
		switch r.Kind {
		case RepairMismatch:
			mism++
		case RepairRetired:
			retired++
		case RepairExhausted:
			exhausted++
		}
	}
	if mism != 2 || retired != 1 || exhausted != 1 {
		t.Fatalf("log mismatch/retired/exhausted = %d/%d/%d, want 2/1/1 (%+v)", mism, retired, exhausted, log)
	}
	if got := m.DrainRepairs(); got != nil {
		t.Fatal("drain did not clear the log")
	}

	st := m.Stats()
	if st.VerifyMismatches != 2 || st.CellsRetired != 1 || st.SparesExhausted != 1 {
		t.Fatalf("stats %+v, want 2 mismatches / 1 retired / 1 exhausted", st)
	}
	if st.VerifyReads == 0 {
		t.Fatal("verify read-backs not counted")
	}

	var sawMismatch, sawRetired, sawExhausted bool
	for _, e := range reg.Events().Recent(0) {
		if e.Bank != 2 || e.Xbar != 1 {
			continue
		}
		switch e.Kind {
		case telemetry.EvVerifyMismatch:
			sawMismatch = true
		case telemetry.EvCellRetired:
			sawRetired = true
		case telemetry.EvSpareExhausted:
			sawExhausted = true
		}
	}
	if !sawMismatch || !sawRetired || !sawExhausted {
		t.Fatalf("ring events mismatch/retired/exhausted seen = %v/%v/%v, want all true",
			sawMismatch, sawRetired, sawExhausted)
	}
}

// TestVerifyClearsStaleSyndrome pins the inverse laundering case: after a
// scrub corrects a stuck cell the checks encode the corrected value while
// the defect re-asserts; a host write of the STUCK value then reads back
// clean — the data is exactly what was intended — but the delta fold
// (computed from the physical old value) leaves the checks encoding the
// pre-write logical image. With repair off the next scrub "corrects"
// verified-good data; with verify on the metadata sweep re-syncs the
// checks and the scrub stays quiet.
func TestVerifyClearsStaleSyndrome(t *testing.T) {
	stuckValueRow := bitmat.NewVec(testCfg.N)
	stuckValueRow.Set(9, true)

	// Repair off: the stale syndrome survives the write and the scrub
	// miscorrects the freshly written data.
	m := MustNew(repairCfg(repair.Off, 0))
	m.MEM().Set(7, 9, true) // defect asserts over the all-zero image
	m.Scrub()               // corrected: checks and data both say 0
	m.MEM().Set(7, 9, true) // defect re-asserts
	if err := m.LoadRow(7, stuckValueRow); err != nil {
		t.Fatalf("repair-off LoadRow: %v", err)
	}
	if m.CheckConsistent() {
		t.Fatal("stale syndrome expected with repair off — that is the hazard")
	}
	if c, _ := m.Scrub(); c != 1 || m.MEM().Get(7, 9) {
		t.Fatalf("scrub corrected=%d cell=%v: expected the miscorrection of good data", c, m.MEM().Get(7, 9))
	}

	// Verify on: the metadata sweep patches the checks at write time.
	mv, _ := stuckMachine(t, repair.Verify, 0, [2]int{7, 9})
	mv.Scrub() // corrects the defect against the all-zero image
	mv.Defects().Reassert(mv.MEM())
	if err := mv.LoadRow(7, stuckValueRow); err != nil {
		t.Fatalf("writing the stuck value should verify clean: %v", err)
	}
	if !mv.CheckConsistent() {
		t.Fatal("metadata sweep left a stale syndrome")
	}
	if c, u := mv.Scrub(); c != 0 || u != 0 {
		t.Fatalf("scrub corrected=%d uncorrectable=%d after a verified write, want 0/0", c, u)
	}
	if !mv.MEM().Get(7, 9) {
		t.Fatal("verified data was disturbed")
	}
}

// TestRepairGenericSchemes runs the retirement path under the pluggable
// scheme backends: write-verify and sparing are code-agnostic, and the
// covering-unit rebuild must leave each scheme's own check state coherent.
func TestRepairGenericSchemes(t *testing.T) {
	for _, scheme := range []string{"hamming", "parity", "dec", "diagonal-x4"} {
		t.Run(scheme, func(t *testing.T) {
			cfg := repairCfg(repair.VerifySpare, 4)
			cfg.Scheme = scheme
			if scheme == "diagonal-x4" {
				cfg.N = 60 // the default 45 is not divisible by the interleave width
			}
			m := MustNew(cfg)
			s := faults.NewStuckSet()
			s.Add(7, 9, true)
			m.MEM().Set(7, 9, true)
			m.AttachDefects(s)

			zeros := bitmat.NewVec(cfg.N)
			if err := m.LoadRow(7, zeros); err != nil {
				t.Fatalf("laundering write should retire within budget: %v", err)
			}
			if got := m.Stats().CellsRetired; got != 1 {
				t.Fatalf("CellsRetired = %d, want 1", got)
			}
			if m.MEM().Get(7, 9) {
				t.Fatal("retired cell did not take the intended value")
			}
			if !m.CheckConsistent() {
				t.Fatalf("%s check state stale after retirement", scheme)
			}
		})
	}

	// The stale-metadata sweep through the generic CheckBlock path: the
	// correcting word schemes (hamming, dec) and the striped diagonal all
	// need the write-time re-sync when the host writes the stuck value —
	// a corrector with stale metadata is a miscorrector.
	for _, scheme := range []string{"hamming", "dec", "diagonal-x4"} {
		cfg := repairCfg(repair.Verify, 0)
		cfg.Scheme = scheme
		if scheme == "diagonal-x4" {
			cfg.N = 60
		}
		m := MustNew(cfg)
		s := faults.NewStuckSet()
		s.Add(12, 30, true)
		m.MEM().Set(12, 30, true)
		m.AttachDefects(s)
		m.Scrub() // corrects the defect against the all-zero image
		s.Reassert(m.MEM())
		row := bitmat.NewVec(cfg.N)
		row.Set(30, true) // host writes the stuck value
		if err := m.LoadRow(12, row); err != nil {
			t.Fatalf("%s: writing the stuck value should verify clean: %v", scheme, err)
		}
		if !m.CheckConsistent() {
			t.Fatalf("%s metadata sweep left a stale syndrome", scheme)
		}
		if c, u := m.Scrub(); c != 0 || u != 0 {
			t.Fatalf("%s: scrub corrected=%d uncorrectable=%d after a verified write, want 0/0", scheme, c, u)
		}
	}
}

// TestVerifyNoDefectsNoCost pins that a repair-enabled machine with no
// defects verifies cleanly and never errors — the common case every
// serve request takes.
func TestVerifyNoDefectsNoCost(t *testing.T) {
	m := MustNew(repairCfg(repair.Verify, 0))
	row := bitmat.NewVec(testCfg.N)
	row.Fill(true)
	if err := m.LoadRow(11, row); err != nil {
		t.Fatalf("LoadRow on a healthy machine: %v", err)
	}
	st := m.Stats()
	if st.VerifyReads != 1 {
		t.Fatalf("VerifyReads = %d, want 1 (single read-back, no retry)", st.VerifyReads)
	}
	if st.VerifyMismatches != 0 || st.CellsRetired != 0 {
		t.Fatalf("healthy write produced repair activity: %+v", st)
	}
}
