package machine

import (
	"math/rand"
	"testing"

	"repro/internal/bitmat"
	"repro/internal/netlist"
	"repro/internal/synth"
)

// TestStressCampaign runs a long random campaign against the protected
// machine — interleaved loads, SIMD executions, single-fault injections
// and scrubs — and asserts the system-level invariant the paper's
// reliability model rests on: as long as at most one soft error lands in
// any block between checks, no data is ever silently lost and the CMEM
// returns to full consistency after every scrub.
func TestStressCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("long stress campaign")
	}
	const rounds = 40
	rng := rand.New(rand.NewSource(2024))
	m := MustNew(testCfg)
	mp := adder8(t)

	// Track expected input words per row (the protected data).
	inputs := loadRandomInputs(t, m, mp, 999)

	for round := 0; round < rounds; round++ {
		switch rng.Intn(4) {
		case 0: // rewrite some rows with fresh operands
			for i := 0; i < 5; i++ {
				r := rng.Intn(testCfg.N)
				in := make([]bool, mp.Netlist.NumInputs())
				for j := range in {
					in[j] = rng.Intn(2) == 0
				}
				inputs[r] = in
			}
			m.LoadInputs(mp, inputs)
		case 1: // inject exactly one fault into a random block, then scrub
			br, bc := rng.Intn(3), rng.Intn(3)
			m.InjectDataFault(br*15+rng.Intn(15), bc*15+rng.Intn(15))
			corrected, unc := m.Scrub()
			if unc != 0 {
				t.Fatalf("round %d: single fault reported uncorrectable", round)
			}
			if corrected != 1 {
				t.Fatalf("round %d: corrected=%d, want 1", round, corrected)
			}
		case 2: // execute the SIMD function, possibly with one input fault
			faulted := rng.Intn(2) == 0
			if faulted {
				m.InjectDataFault(rng.Intn(testCfg.N), rng.Intn(mp.Netlist.NumInputs()))
			}
			if err := m.ExecuteSIMD(mp, m.MEM().AllRows()); err != nil {
				t.Fatal(err)
			}
			checkAllRows(t, m, mp, inputs)
		case 3: // idle scrub on clean memory must find nothing
			if corrected, unc := m.Scrub(); corrected != 0 || unc != 0 {
				t.Fatalf("round %d: clean scrub found corrected=%d unc=%d", round, corrected, unc)
			}
		}
		if !m.CheckConsistent() {
			t.Fatalf("round %d: CMEM inconsistent", round)
		}
		// The stored operands must always be intact after each round.
		for r, in := range inputs {
			for i, v := range in {
				if m.MEM().Get(r, i) != v {
					t.Fatalf("round %d: stored operand (%d,%d) corrupted", round, r, i)
				}
			}
		}
	}
}

// TestBackToBackExecutions runs several different functions on the same
// machine sequentially, confirming the working-region reconciliation
// composes across functions.
func TestBackToBackExecutions(t *testing.T) {
	m := MustNew(testCfg)

	build := func(f func(b *netlist.Builder, in []int) []int, nin int) *synth.Mapping {
		b := netlist.NewBuilder("fn")
		in := b.InputBus(nin)
		b.OutputBus(f(b, in))
		mp, err := synth.Map(b.Build().LowerToNOR(), testCfg.N)
		if err != nil {
			t.Fatal(err)
		}
		return mp
	}

	xorTree := build(func(b *netlist.Builder, in []int) []int {
		acc := in[0]
		for _, x := range in[1:] {
			acc = b.Xor(acc, x)
		}
		return []int{acc}
	}, 10)
	andOr := build(func(b *netlist.Builder, in []int) []int {
		var outs []int
		for i := 0; i+1 < len(in); i += 2 {
			outs = append(outs, b.And(in[i], in[i+1]), b.Or(in[i], in[i+1]))
		}
		return outs
	}, 10)

	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 6; iter++ {
		mp := xorTree
		if iter%2 == 1 {
			mp = andOr
		}
		inputs := make(map[int][]bool)
		for r := 0; r < testCfg.N; r++ {
			in := make([]bool, mp.Netlist.NumInputs())
			for i := range in {
				in[i] = rng.Intn(2) == 0
			}
			inputs[r] = in
		}
		m.LoadInputs(mp, inputs)
		if err := m.ExecuteSIMD(mp, m.MEM().AllRows()); err != nil {
			t.Fatal(err)
		}
		checkAllRows(t, m, mp, inputs)
		if !m.CheckConsistent() {
			t.Fatalf("iteration %d: CMEM inconsistent", iter)
		}
	}
}

// TestWiderGeometry runs the integration on a larger crossbar (75×75,
// 5×5 grid of blocks) to catch geometry assumptions hidden by the 45×45
// default.
func TestWiderGeometry(t *testing.T) {
	cfg := Config{N: 75, M: 15, K: 3, ECCEnabled: true}
	m := MustNew(cfg)
	b := netlist.NewBuilder("adder16")
	a := b.InputBus(16)
	x := b.InputBus(16)
	carry := b.Const(false)
	for i := 0; i < 16; i++ {
		axb := b.Xor(a[i], x[i])
		b.Output(b.Xor(axb, carry))
		carry = b.Or(b.And(a[i], x[i]), b.And(axb, carry))
	}
	b.Output(carry)
	mp, err := synth.Map(b.Build().LowerToNOR(), 75)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(55))
	inputs := make(map[int][]bool)
	for r := 0; r < cfg.N; r++ {
		in := make([]bool, 32)
		for i := range in {
			in[i] = rng.Intn(2) == 0
		}
		inputs[r] = in
	}
	m.LoadInputs(mp, inputs)
	m.InjectDataFault(50, 20) // input region, block (3,1)
	if err := m.ExecuteSIMD(mp, m.MEM().AllRows()); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Corrections != 1 {
		t.Fatalf("corrections = %d", m.Stats().Corrections)
	}
	for r, in := range inputs {
		want := mp.Netlist.Eval(in)
		got := m.ReadOutputs(mp, r)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("row %d output %d wrong", r, i)
			}
		}
	}
	if !m.CheckConsistent() {
		t.Fatal("CMEM inconsistent on 75×75 geometry")
	}
}

// TestLoadRowUpdatesThroughProtocol ensures LoadRow's check-bit
// maintenance uses the same critical-update path the executor uses
// (catching any asymmetry between orientations).
func TestLoadRowUpdatesThroughProtocol(t *testing.T) {
	m := MustNew(testCfg)
	rng := rand.New(rand.NewSource(66))
	for i := 0; i < 60; i++ {
		v := bitmat.NewVec(testCfg.N)
		for j := 0; j < testCfg.N; j++ {
			v.Set(j, rng.Intn(2) == 0)
		}
		m.LoadRow(rng.Intn(testCfg.N), v)
		if !m.CheckConsistent() {
			t.Fatalf("inconsistent after load %d", i)
		}
	}
}
