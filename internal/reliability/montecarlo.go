package reliability

import (
	"math"
	"math/rand"

	"repro/internal/bitmat"
	"repro/internal/ecc"
)

// Monte Carlo cross-validation of the analytic model: place binomial
// errors on a small crossbar geometry with an exaggerated per-bit error
// probability and measure how often a block exceeds the single-error
// budget. The analytic and empirical block-failure probabilities must
// agree within sampling error — this validates the closed form the Fig 6
// curves are built from.

// MCResult summarizes a Monte Carlo block-failure experiment.
type MCResult struct {
	Trials        int
	Failures      int     // trials where ≥1 block had ≥2 errors
	Empirical     float64 // failure fraction
	Analytic      float64 // model prediction for the same geometry/p
	StandardError float64 // binomial standard error of Empirical
}

// MonteCarloCrossbarFailure estimates the probability that an n×n
// crossbar (geometry p, including check bits when countCheck) accumulates
// an uncorrectable pattern in one window, with per-bit error probability
// pBit, over `trials` trials seeded deterministically.
func MonteCarloCrossbarFailure(geom ecc.Params, pBit float64, countCheck bool, trials int, seed int64) MCResult {
	rng := rand.New(rand.NewSource(seed))
	blockBits := geom.DataBitsPerBlock()
	if countCheck {
		blockBits += geom.CheckBitsPerBlock()
	}
	nBlocks := geom.NumBlocks()

	failures := 0
	for t := 0; t < trials; t++ {
		failed := false
		for b := 0; b < nBlocks && !failed; b++ {
			errs := 0
			for i := 0; i < blockBits; i++ {
				if rng.Float64() < pBit {
					errs++
					if errs >= 2 {
						failed = true
						break
					}
				}
			}
		}
		if failed {
			failures++
		}
	}

	// Analytic prediction for the same setup.
	b := float64(blockBits)
	logSBlock := (b-1)*math.Log1p(-pBit) + math.Log1p((b-1)*pBit)
	analytic := -math.Expm1(float64(nBlocks) * logSBlock)

	emp := float64(failures) / float64(trials)
	return MCResult{
		Trials:        trials,
		Failures:      failures,
		Empirical:     emp,
		Analytic:      analytic,
		StandardError: math.Sqrt(emp * (1 - emp) / float64(trials)),
	}
}

// MonteCarloCorrectionRoundTrip goes one level deeper than counting: it
// actually injects k errors into a simulated block's data+check bits and
// runs the real decoder, returning the fraction of trials where the block
// state was fully restored. For k=1 this must be 1.0 (single-error
// correction is exact); for k=2 it must be 0 restored but also 0 silently
// missed — every double error is flagged.
type RoundTripResult struct {
	Trials        int
	Restored      int
	Flagged       int // trials ending in an Uncorrectable diagnosis
	SilentlyWrong int // trials where state is wrong but no flag was raised
}

// MonteCarloCorrectionRoundTrip injects exactly k errors per trial into a
// single m×m block (uniformly across data and check bits) and exercises
// the decoder.
func MonteCarloCorrectionRoundTrip(m int, k int, trials int, seed int64) RoundTripResult {
	rng := rand.New(rand.NewSource(seed))
	geom := ecc.Params{N: m, M: m}
	res := RoundTripResult{Trials: trials}

	for t := 0; t < trials; t++ {
		mem := randomBits(rng, geom.N)
		cb := ecc.Build(geom, mem)
		wantMem := mem.Clone()
		wantCB := cb.Clone()

		// Choose k distinct positions among m²+2m bits.
		total := geom.DataBitsPerBlock() + geom.CheckBitsPerBlock()
		chosen := map[int]bool{}
		for len(chosen) < k {
			chosen[rng.Intn(total)] = true
		}
		for pos := range chosen {
			switch {
			case pos < geom.DataBitsPerBlock():
				mem.Flip(pos/m, pos%m)
			case pos < geom.DataBitsPerBlock()+m:
				cb.FlipLead(pos-geom.DataBitsPerBlock(), 0, 0)
			default:
				cb.FlipCounter(pos-geom.DataBitsPerBlock()-m, 0, 0)
			}
		}

		d := cb.CorrectBlock(mem, 0, 0)
		restored := mem.Equal(wantMem) && cb.Equal(wantCB)
		switch {
		case restored:
			res.Restored++
		case d.Kind == ecc.Uncorrectable:
			res.Flagged++
		default:
			res.SilentlyWrong++
		}
	}
	return res
}

func randomBits(rng *rand.Rand, n int) *bitmat.Mat {
	m := bitmat.NewMat(n, n)
	m.Randomize(rng)
	return m
}
