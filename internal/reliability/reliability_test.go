package reliability

import (
	"math"
	"testing"

	"repro/internal/ecc"
	"repro/internal/mmpu"
)

func TestPaperModelGeometry(t *testing.T) {
	m := PaperModel()
	if m.Geometry.N != 1020 || m.Geometry.M != 15 || m.CheckPeriodH != 24 {
		t.Fatalf("PaperModel = %+v", m)
	}
	if m.blockBits() != 225 { // 15² data bits (paper's binomial population)
		t.Fatalf("blockBits = %d, want 225", m.blockBits())
	}
	withCheck := m
	withCheck.CountCheck = true
	if withCheck.blockBits() != 255 { // 15² + 2·15 in the ablation
		t.Fatalf("blockBits with check = %d, want 255", withCheck.blockBits())
	}
	// 1GB needs ceil(2³³/1020²) = 8257 crossbars.
	if got := m.Org.Crossbars(); got < 8257 || got > 8272 {
		t.Fatalf("crossbars = %d, want ≈8257 (bank rounding allowed)", got)
	}
}

func TestHeadlineImprovementAtFlashSER(t *testing.T) {
	// The paper's headline: at SER = 10⁻³ FIT/bit (Flash-like), the MTTF
	// improvement exceeds 3·10⁸ — "over eight orders of magnitude".
	m := PaperModel()
	imp := m.Improvement(1e-3)
	if imp < 3e8 {
		t.Fatalf("improvement at 1e-3 FIT/bit = %.3g, want > 3e8 (paper's claim)", imp)
	}
	if imp > 1e10 {
		t.Fatalf("improvement = %.3g is implausibly high — model broken?", imp)
	}
}

func TestBaselineMTTFMagnitudeAtFlashSER(t *testing.T) {
	// Fig 6 shows the baseline near 10² hours at SER 10⁻³: 1GB ≈ 8.6e9
	// bits × 1e-3 FIT/bit ≈ 8.6e6 FIT → MTTF ≈ 116 h.
	m := PaperModel()
	mttf := m.BaselineMTTF(1e-3)
	if mttf < 50 || mttf > 300 {
		t.Fatalf("baseline MTTF = %.1f h, want ≈116 h", mttf)
	}
}

func TestProposedMTTFMagnitudeAtFlashSER(t *testing.T) {
	// Proposed design at 10⁻³: ≈3·10¹⁰ hours (Fig 6's ~10¹⁰·⁵ point).
	m := PaperModel()
	mttf := m.ProposedMTTF(1e-3)
	if mttf < 1e10 || mttf > 1e11 {
		t.Fatalf("proposed MTTF = %.3g h, want ~3e10 h", mttf)
	}
}

func TestMTTFMonotoneDecreasingInSER(t *testing.T) {
	m := PaperModel()
	prevB, prevP := math.Inf(1), math.Inf(1)
	for _, ser := range []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 100, 1000} {
		b, p := m.BaselineMTTF(ser), m.ProposedMTTF(ser)
		if b >= prevB || p >= prevP {
			t.Fatalf("MTTF not strictly decreasing at SER %g", ser)
		}
		if p <= b {
			t.Fatalf("proposed MTTF %.3g ≤ baseline %.3g at SER %g", p, b, ser)
		}
		prevB, prevP = b, p
	}
}

func TestProposedSlopeIsDoubleErrorDominated(t *testing.T) {
	// On the log-log plot the proposed curve falls with slope ≈ −2 in the
	// low-SER regime (failures need two errors per block), while the
	// baseline falls with slope ≈ −1. This is the visual signature of
	// Fig 6; verify both slopes numerically.
	m := PaperModel()
	slope := func(f func(float64) float64, ser float64) float64 {
		return (math.Log10(f(ser*10)) - math.Log10(f(ser))) // per decade
	}
	if s := slope(m.ProposedMTTF, 1e-4); math.Abs(s+2) > 0.05 {
		t.Fatalf("proposed log-log slope = %.3f, want ≈ −2", s)
	}
	if s := slope(m.BaselineMTTF, 1e-4); math.Abs(s+1) > 0.05 {
		t.Fatalf("baseline log-log slope = %.3f, want ≈ −1", s)
	}
}

func TestFailureProbabilityBounds(t *testing.T) {
	m := PaperModel()
	for _, ser := range []float64{1e-6, 1e-3, 1, 1e3, 1e6} {
		for _, p := range []float64{m.ProposedFailureProbability(ser), m.BaselineFailureProbability(ser)} {
			if p < 0 || p > 1 || math.IsNaN(p) {
				t.Fatalf("failure probability %g out of [0,1] at SER %g", p, ser)
			}
		}
		if ser <= 1 && m.ProposedFailureProbability(ser) >= m.BaselineFailureProbability(ser) {
			t.Fatalf("proposed not more reliable at SER %g", ser)
		}
	}
}

func TestTinySERNoUnderflow(t *testing.T) {
	// At SER 10⁻⁵ the per-bit probability is ~2.4e-19; the failure
	// probability of the proposed design is ~1e-25 — log-space math must
	// keep it positive and finite.
	m := PaperModel()
	p := m.ProposedFailureProbability(1e-5)
	if p <= 0 {
		t.Fatalf("proposed failure probability underflowed: %g", p)
	}
	if mttf := m.ProposedMTTF(1e-5); math.IsInf(mttf, 1) || mttf < 1e14 {
		t.Fatalf("proposed MTTF at 1e-5 = %g, want finite and > 1e14 h", mttf)
	}
}

func TestFig6SweepShape(t *testing.T) {
	m := PaperModel()
	pts := m.Fig6Sweep(2)
	if len(pts) != 17 {
		t.Fatalf("sweep has %d points, want 17", len(pts))
	}
	if pts[0].SER != 1e-5 {
		t.Fatalf("sweep starts at %g, want 1e-5", pts[0].SER)
	}
	if math.Abs(pts[len(pts)-1].SER-1e3)/1e3 > 1e-9 {
		t.Fatalf("sweep ends at %g, want 1e3", pts[len(pts)-1].SER)
	}
	for i, pt := range pts {
		if pt.ProposedMTTF <= pt.BaselineMTTF {
			t.Fatalf("point %d: proposed %.3g ≤ baseline %.3g", i, pt.ProposedMTTF, pt.BaselineMTTF)
		}
		if pt.Improvement <= 1 {
			t.Fatalf("point %d: improvement %.3g ≤ 1", i, pt.Improvement)
		}
	}
}

func TestSweepPanicsOnBadRange(t *testing.T) {
	m := PaperModel()
	for _, bad := range [][3]interface{}{} {
		_ = bad
	}
	cases := []func(){
		func() { m.Sweep(0, 1, 10) },
		func() { m.Sweep(1, 1, 10) },
		func() { m.Sweep(1e-5, 1e3, 1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestSmallerBlocksMoreReliable(t *testing.T) {
	// Design-space check from Section III: smaller blocks → higher
	// reliability (at more overhead). m=5 must beat m=15 at equal SER.
	base := PaperModel()
	small := base
	small.Geometry = ecc.Params{N: 1020, M: 5}
	if small.ProposedMTTF(1e-3) <= base.ProposedMTTF(1e-3) {
		t.Fatal("smaller blocks should improve MTTF")
	}
	// And the storage overhead correspondingly grows: 2/5 > 2/15.
	if small.Geometry.Overhead() <= base.Geometry.Overhead() {
		t.Fatal("smaller blocks should cost more overhead")
	}
}

func TestShorterCheckPeriodMoreReliable(t *testing.T) {
	base := PaperModel()
	freq := base
	freq.CheckPeriodH = 1
	if freq.ProposedMTTF(1e-3) <= base.ProposedMTTF(1e-3) {
		t.Fatal("more frequent checks should improve MTTF")
	}
}

func TestMTTFFromFIT(t *testing.T) {
	if got := MTTFFromFIT(1e9); got != 1 {
		t.Fatalf("MTTFFromFIT(1e9) = %g, want 1 h", got)
	}
	if !math.IsInf(MTTFFromFIT(0), 1) {
		t.Fatal("zero FIT should give infinite MTTF")
	}
}

func TestCountCheckBitsMatters(t *testing.T) {
	// Excluding check bits from the vulnerable population should slightly
	// improve the predicted MTTF (fewer bits can fail) — and the ratio
	// should be modest (≈(255/225)² for double-error-dominated failures).
	without := PaperModel()
	with := without
	with.CountCheck = true
	ratio := without.ProposedMTTF(1e-3) / with.ProposedMTTF(1e-3)
	if ratio <= 1 || ratio > 2 {
		t.Fatalf("check-bit population effect ratio = %.3f, want in (1,2]", ratio)
	}
}

func TestGBMemoryOrganization(t *testing.T) {
	org := mmpu.GBMemory(1020, 16)
	if err := org.Validate(); err != nil {
		t.Fatal(err)
	}
	if org.DataBits() < 1<<33 {
		t.Fatal("1GB organization holds less than 2³³ bits")
	}
}
