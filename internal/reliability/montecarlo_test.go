package reliability

import (
	"math"
	"testing"

	"repro/internal/ecc"
)

func TestMonteCarloMatchesAnalytic(t *testing.T) {
	// Small geometry (45×45, nine 15×15 blocks), inflated per-bit error
	// probability so failures are common enough to measure.
	geom := ecc.Params{N: 45, M: 15}
	pBit := 2e-3
	res := MonteCarloCrossbarFailure(geom, pBit, true, 4000, 1)
	diff := math.Abs(res.Empirical - res.Analytic)
	tol := 4*res.StandardError + 1e-4
	if diff > tol {
		t.Fatalf("Monte Carlo %.5f vs analytic %.5f (diff %.5f > tol %.5f)",
			res.Empirical, res.Analytic, diff, tol)
	}
	if res.Failures == 0 {
		t.Fatal("experiment produced no failures — not a meaningful validation")
	}
}

func TestMonteCarloLowProbabilityRegime(t *testing.T) {
	geom := ecc.Params{N: 15, M: 15}
	res := MonteCarloCrossbarFailure(geom, 1e-4, true, 20000, 2)
	// Analytic ≈ C(255,2)·p² ≈ 3.2e-4; empirical must be within noise.
	if math.Abs(res.Empirical-res.Analytic) > 5*res.StandardError+5e-4 {
		t.Fatalf("empirical %.6f vs analytic %.6f", res.Empirical, res.Analytic)
	}
}

func TestRoundTripSingleErrorAlwaysRestored(t *testing.T) {
	res := MonteCarloCorrectionRoundTrip(15, 1, 500, 3)
	if res.Restored != res.Trials {
		t.Fatalf("single-error round trip restored %d/%d", res.Restored, res.Trials)
	}
	if res.SilentlyWrong != 0 {
		t.Fatalf("%d silent corruptions with one error", res.SilentlyWrong)
	}
}

func TestRoundTripDoubleErrorNeverRestoredMostlyFlagged(t *testing.T) {
	// Two errors are never correctable, so Restored must be 0. Most double
	// errors are flagged Uncorrectable; a small fraction alias to a
	// correctable signature (e.g. a data error plus a check-bit error on
	// one of its own diagonals, or a leading+counter check-bit pair that
	// mimics a data error at their intersection) and are miscorrected —
	// exactly why the reliability model counts every ≥2-error block as a
	// failure rather than assuming detection.
	res := MonteCarloCorrectionRoundTrip(15, 2, 1000, 4)
	if res.Restored != 0 {
		t.Fatalf("impossible: %d double-error trials restored", res.Restored)
	}
	if res.Flagged < res.Trials*85/100 {
		t.Fatalf("only %d/%d double errors flagged", res.Flagged, res.Trials)
	}
	// Aliasing exists but must stay rare (< 10% for m=15).
	if res.SilentlyWrong > res.Trials/10 {
		t.Fatalf("%d/%d silent miscorrections — far above the aliasing rate",
			res.SilentlyWrong, res.Trials)
	}
}

func TestRoundTripTripleErrorsMostlyFlagged(t *testing.T) {
	// With ≥3 errors, parity can alias: some triples mimic a single error
	// and get miscorrected (documented limitation of single-error codes).
	// The decoder must still flag the majority and never claim "restored".
	res := MonteCarloCorrectionRoundTrip(15, 3, 500, 5)
	if res.Restored != 0 {
		t.Fatalf("%d triple-error trials claimed restored", res.Restored)
	}
	if res.Flagged == 0 {
		t.Fatal("no triple errors flagged at all")
	}
}
