package reliability

import (
	"math"
	"testing"
)

func TestMechanismOrdering(t *testing.T) {
	// For drift-dominated errors the paper's qualitative story must hold:
	// none < refresh-only < ecc-only < ecc+refresh.
	r := DefaultRefreshModel()
	ser := 1e-3
	none := r.MTTF(NoProtection, ser)
	refresh := r.MTTF(RefreshOnly, ser)
	eccOnly := r.MTTF(ECCOnly, ser)
	both := r.MTTF(ECCPlusRefresh, ser)
	if !(none < refresh && refresh < eccOnly && eccOnly < both) {
		t.Fatalf("ordering violated: none=%.3g refresh=%.3g ecc=%.3g both=%.3g",
			none, refresh, eccOnly, both)
	}
}

func TestRefreshCannotFixAbruptErrors(t *testing.T) {
	// With purely abrupt errors, refresh buys nothing (the paper's point:
	// "refresh also does not address abrupt soft errors").
	r := DefaultRefreshModel()
	r.DriftFraction = 0
	ser := 1e-3
	if r.MTTF(RefreshOnly, ser) != r.MTTF(NoProtection, ser) {
		t.Fatal("refresh improved MTTF with zero drift fraction")
	}
	// ECC still helps by many orders of magnitude.
	if r.MTTF(ECCOnly, ser)/r.MTTF(NoProtection, ser) < 1e8 {
		t.Fatal("ECC lost its advantage under abrupt errors")
	}
}

func TestFasterRefreshMonotone(t *testing.T) {
	r := DefaultRefreshModel()
	prev := 0.0
	for _, tr := range []float64{100, 10, 1, 0.1} {
		r.RefreshPeriod = tr
		mttf := r.MTTF(RefreshOnly, 1e-3)
		if mttf <= prev {
			t.Fatalf("MTTF not improving as refresh period shrinks (Tr=%g)", tr)
		}
		prev = mttf
	}
}

func TestPerfectRefreshLeavesAbruptFloor(t *testing.T) {
	// Even an infinitely fast refresh only removes drift errors; the MTTF
	// saturates at the abrupt-only level.
	r := DefaultRefreshModel()
	r.RefreshPeriod = 0 // ideal
	ser := 1e-3
	abruptOnly := r.Base.BaselineMTTF(ser * (1 - r.DriftFraction))
	got := r.MTTF(RefreshOnly, ser)
	if math.Abs(got-abruptOnly)/abruptOnly > 1e-9 {
		t.Fatalf("ideal refresh MTTF %.6g, want abrupt-only %.6g", got, abruptOnly)
	}
}

func TestConjunctionBeatsBothIndividually(t *testing.T) {
	// The paper's composition claim, quantified across the Fig 6 range.
	r := DefaultRefreshModel()
	for _, p := range r.Compare(1e-5, 1e3, 9) {
		both := p.MTTF[ECCPlusRefresh]
		if both < p.MTTF[ECCOnly] || both < p.MTTF[RefreshOnly] {
			t.Fatalf("at SER %g, conjunction is not best: %+v", p.SER, p.MTTF)
		}
	}
}

func TestEffectiveSERBounds(t *testing.T) {
	r := DefaultRefreshModel()
	ser := 2e-2
	eff := r.EffectiveSER(ser)
	if eff <= 0 || eff > ser {
		t.Fatalf("effective SER %g outside (0, %g]", eff, ser)
	}
	// With no drift at all, refresh must not change the SER.
	r.DriftFraction = 0
	if r.EffectiveSER(ser) != ser {
		t.Fatal("effective SER changed with no drift")
	}
}

func TestMechanismString(t *testing.T) {
	want := map[Mechanism]string{
		NoProtection: "none", RefreshOnly: "refresh-only",
		ECCOnly: "ecc-only", ECCPlusRefresh: "ecc+refresh",
		Mechanism(9): "unknown",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("Mechanism(%d) = %q, want %q", int(m), m.String(), s)
		}
	}
}

func TestCompareGrid(t *testing.T) {
	r := DefaultRefreshModel()
	pts := r.Compare(1e-4, 1e-2, 5)
	if len(pts) != 5 {
		t.Fatalf("%d points", len(pts))
	}
	for _, p := range pts {
		for m := NoProtection; m <= ECCPlusRefresh; m++ {
			if p.MTTF[m] <= 0 || math.IsNaN(p.MTTF[m]) {
				t.Fatalf("bad MTTF for %v at %g", m, p.SER)
			}
		}
	}
}
