package reliability

// This file quantifies the refresh mechanism the paper discusses as
// related work (Section II-B, Tosson et al.): periodically rewriting
// every cell resets accumulated oxygen-vacancy drift, but does nothing
// for abrupt soft errors (ion strikes, environmental upsets) and cannot
// catch drift that completes between two refreshes. The paper notes the
// two mechanisms compose ("refresh can still be used in conjunction with
// the mechanism proposed in this paper"); this model lets that claim be
// evaluated numerically.
//
// Error model: the memristor SER λ splits into a drift component λ_d and
// an abrupt component λ_a. A refresh of period T_r suppresses drift
// errors by the residual factor η = T_r/(T_r+τ), where τ is the
// characteristic drift-completion time: refreshing much faster than the
// drift time scale (T_r ≪ τ) eliminates almost all drift errors, while
// refreshing slowly (T_r ≫ τ) leaves them untouched.

// RefreshModel extends the Fig 6 model with a drift/abrupt split and a
// refresh mechanism.
type RefreshModel struct {
	Base          Model
	DriftFraction float64 // share of the SER that is drift (0..1)
	RefreshPeriod float64 // T_r, hours between refreshes
	DriftTau      float64 // τ, characteristic drift-completion time, hours
}

// DefaultRefreshModel returns a configuration with drift-dominated
// errors (90% drift, as HfO₂ retention studies suggest for the drift
// regime) refreshed every hour against a 100-hour drift time constant.
func DefaultRefreshModel() RefreshModel {
	return RefreshModel{
		Base:          PaperModel(),
		DriftFraction: 0.9,
		RefreshPeriod: 1,
		DriftTau:      100,
	}
}

// residual returns the fraction of drift errors a refresh of period Tr
// fails to suppress.
func (r RefreshModel) residual() float64 {
	if r.RefreshPeriod <= 0 {
		return 0
	}
	return r.RefreshPeriod / (r.RefreshPeriod + r.DriftTau)
}

// EffectiveSER returns the SER that survives refresh: the abrupt
// component plus the residual drift component.
func (r RefreshModel) EffectiveSER(ser float64) float64 {
	drift := ser * r.DriftFraction
	abrupt := ser - drift
	return abrupt + drift*r.residual()
}

// Mechanism identifies a protection scheme in the comparison.
type Mechanism int

// The four corners of the mechanism space.
const (
	NoProtection Mechanism = iota
	RefreshOnly
	ECCOnly
	ECCPlusRefresh
)

// String names the mechanism.
func (m Mechanism) String() string {
	switch m {
	case NoProtection:
		return "none"
	case RefreshOnly:
		return "refresh-only"
	case ECCOnly:
		return "ecc-only"
	case ECCPlusRefresh:
		return "ecc+refresh"
	}
	return "unknown"
}

// MTTF returns the memory MTTF in hours under the given mechanism at raw
// SER λ [FIT/bit].
func (r RefreshModel) MTTF(m Mechanism, ser float64) float64 {
	switch m {
	case NoProtection:
		return r.Base.BaselineMTTF(ser)
	case RefreshOnly:
		// Still zero-error-tolerant, but drift is suppressed.
		return r.Base.BaselineMTTF(r.EffectiveSER(ser))
	case ECCOnly:
		return r.Base.ProposedMTTF(ser)
	case ECCPlusRefresh:
		return r.Base.ProposedMTTF(r.EffectiveSER(ser))
	}
	panic("reliability: unknown mechanism")
}

// ComparePoint is one SER sample of the four-way comparison.
type ComparePoint struct {
	SER  float64
	MTTF [4]float64 // indexed by Mechanism
}

// Compare sweeps all four mechanisms over a logarithmic SER grid.
func (r RefreshModel) Compare(serLo, serHi float64, points int) []ComparePoint {
	base := r.Base.Sweep(serLo, serHi, points)
	out := make([]ComparePoint, len(base))
	for i, b := range base {
		out[i].SER = b.SER
		for m := NoProtection; m <= ECCPlusRefresh; m++ {
			out[i].MTTF[m] = r.MTTF(m, b.SER)
		}
	}
	return out
}
