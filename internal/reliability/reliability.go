// Package reliability implements the paper's Section V-A analysis: the
// Mean-Time-To-Failure of a 1GB memristive memory with and without the
// proposed diagonal ECC, as a function of the memristor Soft Error Rate
// (Fig 6).
//
// Model (verbatim from the paper):
//
//   - Soft errors are uniform and independent with constant rate λ
//     [FIT/bit]; the probability a specific memristor errs within the
//     T-hour checking period is p = 1 − exp(−λT/10⁹).
//   - A block succeeds if it accumulates zero or one errors (single-error
//     correction); blocks are independent; an n×n crossbar succeeds iff
//     all its blocks do; the 1GB memory succeeds iff all crossbars do.
//   - The memory failure rate is P(failure in T)·10⁹/T [FIT] and
//     MTTF = 10⁹/FIT = T/P(failure in T) hours.
//
// The probabilities involved span ~30 orders of magnitude, so everything
// is computed in log space: ln S_block = (B−1)·ln(1−p) + ln(1+(B−1)p)
// for a block of B bits, summed over blocks and crossbars, with
// P(fail) = −expm1(ln S_total).
package reliability

import (
	"math"

	"repro/internal/ecc"
	"repro/internal/faults"
	"repro/internal/mmpu"
)

// Model holds the parameters of the Fig 6 sensitivity analysis.
type Model struct {
	Geometry     ecc.Params // per-crossbar geometry (n, m)
	CheckPeriodH float64    // T, hours between full-memory ECC checks
	Org          mmpu.Organization
	CountCheck   bool // include the 2m check bits per block in the error population
}

// PaperModel returns the paper's configuration: n=1020, m=15, T=24h, 1GB
// memory. CountCheck is false: the paper's block-success binomial counts
// the m² = 225 data memristors (back-solving its ">3·10⁸ at 10⁻³ FIT/bit"
// improvement gives 225, not 255); including the 2m check bits is kept as
// an ablation switch.
func PaperModel() Model {
	return Model{
		Geometry:     ecc.PaperParams(),
		CheckPeriodH: 24,
		Org:          mmpu.GBMemory(1020, 16),
		CountCheck:   false,
	}
}

// blockBits returns the number of memristors whose failure matters for one
// block: m² data bits, plus 2m check bits when CountCheck is set (a single
// check-bit error is also corrected by the code, so it belongs in the
// ≤1-error budget).
func (m Model) blockBits() int {
	b := m.Geometry.DataBitsPerBlock()
	if m.CountCheck {
		b += m.Geometry.CheckBitsPerBlock()
	}
	return b
}

// totalBlocks returns the number of independent blocks in the memory.
func (m Model) totalBlocks() float64 {
	return float64(m.Geometry.NumBlocks()) * float64(m.Org.Crossbars())
}

// totalBits returns the total vulnerable memristor population.
func (m Model) totalBits() float64 {
	return float64(m.blockBits()) * m.totalBlocks()
}

// logBlockSuccess returns ln P(block accumulates ≤1 error in T hours):
// ln[(1−p)^B + B·p·(1−p)^(B−1)] = (B−1)·ln(1−p) + ln(1 + (B−1)·p).
func (m Model) logBlockSuccess(ser float64) float64 {
	p := faults.ErrorProbability(ser, m.CheckPeriodH)
	b := float64(m.blockBits())
	return (b-1)*math.Log1p(-p) + math.Log1p((b-1)*p)
}

// ProposedFailureProbability returns P(the protected memory has an
// uncorrectable error within one checking period) at SER λ [FIT/bit].
func (m Model) ProposedFailureProbability(ser float64) float64 {
	logS := m.totalBlocks() * m.logBlockSuccess(ser)
	return -math.Expm1(logS)
}

// BaselineFailureProbability returns P(any soft error within one checking
// period) for the unprotected memory of the same data capacity.
func (m Model) BaselineFailureProbability(ser float64) float64 {
	p := faults.ErrorProbability(ser, m.CheckPeriodH)
	bits := float64(m.Geometry.DataBitsPerBlock()) * m.totalBlocks()
	return -math.Expm1(bits * math.Log1p(-p))
}

// BaselineFIT returns the unprotected memory's failure rate. Without ECC
// the memory fails at its first soft error, a memoryless Poisson process
// with rate bits·λ — no checking window is involved, so the baseline
// curve of Fig 6 is an unbroken straight line (slope −1) across the whole
// SER range rather than saturating at T.
func (m Model) BaselineFIT(ser float64) float64 {
	bits := float64(m.Geometry.DataBitsPerBlock()) * m.totalBlocks()
	return bits * ser
}

// FITFromFailureProbability converts a per-window failure probability into
// a failure rate in FIT (failures per 10⁹ hours): P·10⁹/T.
func (m Model) FITFromFailureProbability(p float64) float64 {
	return p * faults.FITHours / m.CheckPeriodH
}

// MTTFFromFIT converts a failure rate to MTTF in hours: 10⁹/FIT.
func MTTFFromFIT(fit float64) float64 {
	if fit <= 0 {
		return math.Inf(1)
	}
	return faults.FITHours / fit
}

// ProposedMTTF returns the protected memory's MTTF in hours at SER λ.
func (m Model) ProposedMTTF(ser float64) float64 {
	return MTTFFromFIT(m.FITFromFailureProbability(m.ProposedFailureProbability(ser)))
}

// BaselineMTTF returns the unprotected memory's MTTF in hours at SER λ.
func (m Model) BaselineMTTF(ser float64) float64 {
	return MTTFFromFIT(m.BaselineFIT(ser))
}

// Improvement returns the MTTF ratio proposed/baseline at SER λ — the
// paper's headline metric (over 3·10⁸ at λ = 10⁻³ FIT/bit).
func (m Model) Improvement(ser float64) float64 {
	return m.ProposedMTTF(ser) / m.BaselineMTTF(ser)
}

// Point is one sample of the Fig 6 curves.
type Point struct {
	SER              float64 // FIT/bit
	BaselineMTTF     float64 // hours
	ProposedMTTF     float64 // hours
	Improvement      float64
	BaselineFailProb float64
	ProposedFailProb float64
}

// Sweep evaluates the model over a logarithmic SER grid from serLo to
// serHi (inclusive) with `points` samples — the Fig 6 x-axis is
// 10⁻⁵…10³ FIT/bit.
func (m Model) Sweep(serLo, serHi float64, points int) []Point {
	if points < 2 || serLo <= 0 || serHi <= serLo {
		panic("reliability: bad sweep range")
	}
	out := make([]Point, points)
	logLo, logHi := math.Log10(serLo), math.Log10(serHi)
	for i := range out {
		ser := math.Pow(10, logLo+(logHi-logLo)*float64(i)/float64(points-1))
		out[i] = Point{
			SER:              ser,
			BaselineMTTF:     m.BaselineMTTF(ser),
			ProposedMTTF:     m.ProposedMTTF(ser),
			Improvement:      m.Improvement(ser),
			BaselineFailProb: m.BaselineFailureProbability(ser),
			ProposedFailProb: m.ProposedFailureProbability(ser),
		}
	}
	return out
}

// Fig6Sweep returns the paper's exact axis range: SER from 10⁻⁵ to 10³.
func (m Model) Fig6Sweep(pointsPerDecade int) []Point {
	return m.Sweep(1e-5, 1e3, 8*pointsPerDecade+1)
}
