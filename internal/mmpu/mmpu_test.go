package mmpu

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGBMemoryCapacity(t *testing.T) {
	org := GBMemory(1020, 16)
	if err := org.Validate(); err != nil {
		t.Fatal(err)
	}
	if org.DataBits() < 1<<33 {
		t.Fatalf("capacity %d bits < 2^33", org.DataBits())
	}
	// ceil(2^33/1020²) = 8257 crossbars before bank rounding.
	if org.Crossbars() < 8257 {
		t.Fatalf("crossbars = %d, want ≥ 8257", org.Crossbars())
	}
	if org.Banks != 16 {
		t.Fatalf("banks = %d", org.Banks)
	}
}

func TestLocateRoundTripProperty(t *testing.T) {
	org := GBMemory(1020, 16)
	f := func(raw int64) bool {
		bit := raw % org.DataBits()
		if bit < 0 {
			bit = -bit
		}
		a, err := org.Locate(bit)
		if err != nil {
			return false
		}
		return org.FlatIndex(a) == bit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLocateBounds(t *testing.T) {
	org := GBMemory(1020, 4)
	if _, err := org.Locate(-1); err == nil {
		t.Fatal("negative bit accepted")
	}
	if _, err := org.Locate(org.DataBits()); err == nil {
		t.Fatal("out-of-range bit accepted")
	}
	a, err := org.Locate(org.DataBits() - 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Bank >= org.Banks || a.Crossbar >= org.PerBank ||
		a.Row >= org.CrossbarN || a.Col >= org.CrossbarN {
		t.Fatalf("address out of range: %+v", a)
	}
}

func TestLocateFieldsConsistent(t *testing.T) {
	org := Organization{CrossbarN: 4, Banks: 2, PerBank: 3, TotalBytes: 0}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		bit := int64(rng.Intn(int(org.DataBits())))
		a, err := org.Locate(bit)
		if err != nil {
			t.Fatal(err)
		}
		if got := org.FlatIndex(a); got != bit {
			t.Fatalf("round trip %d → %+v → %d", bit, a, got)
		}
	}
}

// TestLocateBoundaryCrossings pins the addresses straddling crossbar and
// bank boundaries: the last bit of one unit and the first bit of the next
// must land in adjacent physical locations and round-trip exactly.
func TestLocateBoundaryCrossings(t *testing.T) {
	org := Organization{CrossbarN: 4, Banks: 3, PerBank: 2}
	per := int64(org.CrossbarN) * int64(org.CrossbarN)

	cases := []struct {
		bit  int64
		want Address
	}{
		{per - 1, Address{Bank: 0, Crossbar: 0, Row: 3, Col: 3}},            // last bit of crossbar 0
		{per, Address{Bank: 0, Crossbar: 1, Row: 0, Col: 0}},                // first bit of crossbar 1
		{2*per - 1, Address{Bank: 0, Crossbar: 1, Row: 3, Col: 3}},          // last bit of bank 0
		{2 * per, Address{Bank: 1, Crossbar: 0, Row: 0, Col: 0}},            // first bit of bank 1
		{org.DataBits() - 1, Address{Bank: 2, Crossbar: 1, Row: 3, Col: 3}}, // last bit of memory
	}
	for _, c := range cases {
		a, err := org.Locate(c.bit)
		if err != nil {
			t.Fatalf("bit %d: %v", c.bit, err)
		}
		if a != c.want {
			t.Fatalf("bit %d → %+v, want %+v", c.bit, a, c.want)
		}
		if back := org.FlatIndex(a); back != c.bit {
			t.Fatalf("bit %d round-tripped to %d", c.bit, back)
		}
	}
}

func TestCrossbarIDRoundTrip(t *testing.T) {
	org := Custom(8, 5, 7)
	seen := make(map[int]bool)
	org.ForEachCrossbar(func(bank, xb int) {
		id := org.CrossbarID(bank, xb)
		if id < 0 || id >= org.Crossbars() {
			t.Fatalf("id %d out of range", id)
		}
		if seen[id] {
			t.Fatalf("id %d visited twice", id)
		}
		seen[id] = true
		b, x := org.CrossbarAt(id)
		if b != bank || x != xb {
			t.Fatalf("id %d → (%d,%d), want (%d,%d)", id, b, x, bank, xb)
		}
	})
	if len(seen) != org.Crossbars() {
		t.Fatalf("visited %d crossbars, want %d", len(seen), org.Crossbars())
	}
}

func TestShardBanksPartition(t *testing.T) {
	org := Custom(8, 10, 1)
	for _, shards := range []int{1, 2, 3, 7, 10, 13} {
		got := org.ShardBanks(shards)
		if len(got) != shards {
			t.Fatalf("shards=%d: %d groups", shards, len(got))
		}
		var all []int
		min, max := org.Banks, 0
		for _, g := range got {
			if len(g) < min {
				min = len(g)
			}
			if len(g) > max {
				max = len(g)
			}
			all = append(all, g...)
		}
		if len(all) != org.Banks {
			t.Fatalf("shards=%d: %d banks covered", shards, len(all))
		}
		for i, b := range all {
			if b != i {
				t.Fatalf("shards=%d: bank sequence broken at %d: %v", shards, i, all)
			}
		}
		if shards <= org.Banks && max-min > 1 {
			t.Fatalf("shards=%d: unbalanced group sizes [%d,%d]", shards, min, max)
		}
	}
	if got := org.ShardBanks(0); len(got) != 1 || len(got[0]) != org.Banks {
		t.Fatalf("ShardBanks(0) = %v", got)
	}
}

func TestValidateRejectsUndersized(t *testing.T) {
	bad := Organization{CrossbarN: 8, Banks: 1, PerBank: 1, TotalBytes: 1 << 30}
	if bad.Validate() == nil {
		t.Fatal("undersized organization accepted")
	}
	if (Organization{}).Validate() == nil {
		t.Fatal("zero organization accepted")
	}
}

func TestForEachSegmentExactCover(t *testing.T) {
	org := Organization{CrossbarN: 45, Banks: 2, PerBank: 2}
	per := int64(45 * 45)
	spans := []struct{ bit, nbits int64 }{
		{0, 0},               // empty
		{0, 1},               // single bit
		{0, 45},              // exactly one row
		{40, 10},             // crosses a row boundary
		{per - 3, 7},         // crosses a crossbar boundary
		{2*per - 5, 11},      // crosses the bank boundary
		{0, 4 * per},         // the whole memory
		{per - 1, 2*per + 2}, // spans three crossbars
	}
	for _, s := range spans {
		var covered int64
		prevEnd := s.bit
		err := org.ForEachSegment(s.bit, s.nbits, func(seg Segment) error {
			if seg.Bits <= 0 || seg.Col+seg.Bits > org.CrossbarN {
				t.Fatalf("span %+v: bad segment %+v", s, seg)
			}
			start := org.FlatIndex(Address{Bank: seg.Bank, Crossbar: seg.Crossbar, Row: seg.Row, Col: seg.Col})
			if start != s.bit+seg.Off {
				t.Fatalf("span %+v: segment %+v starts at flat %d, want %d", s, seg, start, s.bit+seg.Off)
			}
			if start != prevEnd {
				t.Fatalf("span %+v: gap before segment %+v (prev end %d)", s, seg, prevEnd)
			}
			prevEnd = start + int64(seg.Bits)
			covered += int64(seg.Bits)
			return nil
		})
		if err != nil {
			t.Fatalf("span %+v: %v", s, err)
		}
		if covered != s.nbits {
			t.Fatalf("span %+v: covered %d bits", s, covered)
		}
	}
}

func TestForEachSegmentRejectsBadRanges(t *testing.T) {
	org := Organization{CrossbarN: 45, Banks: 2, PerBank: 2}
	nop := func(Segment) error { return nil }
	if err := org.ForEachSegment(-1, 4, nop); err == nil {
		t.Fatal("negative start accepted")
	}
	if err := org.ForEachSegment(0, -1, nop); err == nil {
		t.Fatal("negative width accepted")
	}
	if err := org.ForEachSegment(org.DataBits()-1, 2, nop); err == nil {
		t.Fatal("overrunning range accepted")
	}
	// bit+nbits near MaxInt64 must not wrap negative past the guard.
	if err := org.ForEachSegment(math.MaxInt64-4, 8, nop); err == nil {
		t.Fatal("overflowing range accepted")
	}
	if err := org.ForEachSegment(math.MaxInt64, 1, nop); err == nil {
		t.Fatal("MaxInt64 start accepted")
	}
}

func TestForEachSegmentStopsOnError(t *testing.T) {
	org := Organization{CrossbarN: 45, Banks: 2, PerBank: 2}
	calls := 0
	sentinel := fmt.Errorf("stop")
	err := org.ForEachSegment(40, 100, func(Segment) error {
		calls++
		return sentinel
	})
	if err != sentinel || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestBankOf(t *testing.T) {
	org := Organization{CrossbarN: 45, Banks: 2, PerBank: 2}
	per := int64(45 * 45)
	if b, err := org.BankOf(0); err != nil || b != 0 {
		t.Fatalf("BankOf(0) = %d, %v", b, err)
	}
	if b, err := org.BankOf(2 * per); err != nil || b != 1 {
		t.Fatalf("BankOf(2·per) = %d, %v", b, err)
	}
	if _, err := org.BankOf(org.DataBits()); err == nil {
		t.Fatal("out-of-range bit accepted")
	}
}

func TestBankBits(t *testing.T) {
	org := Organization{CrossbarN: 45, Banks: 2, PerBank: 2}
	if got := org.BankBits(); got != 2*45*45 {
		t.Fatalf("BankBits = %d", got)
	}
	if org.BankBits()*int64(org.Banks) != org.DataBits() {
		t.Fatal("banks do not tile the memory")
	}
}

func TestShardNodesPartition(t *testing.T) {
	for _, banks := range []int{1, 2, 3, 7, 16, 33} {
		org := Custom(60, banks, 2)
		for _, nodes := range []int{1, 2, 3, 4, 16, 40} {
			nm := org.ShardNodes(nodes)
			want := nodes
			if want > banks {
				want = banks
			}
			if nm.Nodes() != want {
				t.Fatalf("banks=%d nodes=%d: Nodes()=%d want %d", banks, nodes, nm.Nodes(), want)
			}
			// Ranges are contiguous, disjoint, cover all banks, and sizes
			// differ by at most one (balanced).
			next, minSz, maxSz := 0, banks, 0
			for i := 0; i < nm.Nodes(); i++ {
				lo, hi := nm.Range(i)
				if lo != next || hi <= lo {
					t.Fatalf("banks=%d nodes=%d node %d: range [%d,%d) not contiguous from %d", banks, nodes, i, lo, hi, next)
				}
				if sz := hi - lo; sz < minSz {
					minSz = sz
				} else if sz > maxSz {
					maxSz = sz
				}
				for b := lo; b < hi; b++ {
					if nm.NodeOf(b) != i {
						t.Fatalf("NodeOf(%d)=%d want %d", b, nm.NodeOf(b), i)
					}
				}
				next = hi
			}
			if next != banks {
				t.Fatalf("banks=%d nodes=%d: ranges cover %d banks", banks, nodes, next)
			}
			if maxSz > 0 && maxSz-minSz > 1 {
				t.Fatalf("banks=%d nodes=%d: unbalanced split min=%d max=%d", banks, nodes, minSz, maxSz)
			}
		}
	}
}

func TestShardNodesMatchesShardBanks(t *testing.T) {
	// The network split must agree with the in-process worker split: the
	// consistent-routing contract is that both derive from one function.
	org := Custom(90, 16, 2)
	for _, nodes := range []int{1, 2, 3, 4, 5, 16} {
		nm := org.ShardNodes(nodes)
		shards := org.ShardBanks(nodes)
		for i := 0; i < nm.Nodes(); i++ {
			lo, hi := nm.Range(i)
			if len(shards[i]) != hi-lo {
				t.Fatalf("nodes=%d node %d: ShardBanks size %d vs range [%d,%d)", nodes, i, len(shards[i]), lo, hi)
			}
			for j, b := range shards[i] {
				if b != lo+j {
					t.Fatalf("nodes=%d node %d: ShardBanks[%d]=%d want %d", nodes, i, j, b, lo+j)
				}
			}
		}
	}
}

func TestNodeMapLocalTranslation(t *testing.T) {
	org := Custom(60, 6, 2)
	nm := org.ShardNodes(4) // ranges [0,2) [2,4) [4,5) [5,6)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		bit := rng.Int63n(org.DataBits())
		node, err := nm.NodeOfBit(bit)
		if err != nil {
			t.Fatal(err)
		}
		bank, err := org.BankOf(bit)
		if err != nil {
			t.Fatal(err)
		}
		if got := nm.NodeOf(bank); got != node {
			t.Fatalf("NodeOfBit=%d NodeOf(bank)=%d", node, got)
		}
		local := nm.ToLocal(node, bit)
		lorg := nm.LocalOrg(node)
		if local < 0 || local >= lorg.DataBits() {
			t.Fatalf("bit %d → node %d local %d outside [0,%d)", bit, node, local, lorg.DataBits())
		}
		if back := nm.ToGlobal(node, local); back != bit {
			t.Fatalf("ToGlobal(ToLocal(%d)) = %d", bit, back)
		}
		// The local address resolves to the same crossbar geometry: row and
		// column are invariant under translation, and the bank shifts by
		// exactly the range start.
		ga, err := org.Locate(bit)
		if err != nil {
			t.Fatal(err)
		}
		la, err := lorg.Locate(local)
		if err != nil {
			t.Fatal(err)
		}
		lo, _ := nm.Range(node)
		if la.Bank != ga.Bank-lo || la.Crossbar != ga.Crossbar || la.Row != ga.Row || la.Col != ga.Col {
			t.Fatalf("bit %d: global %+v local %+v (range start %d)", bit, ga, la, lo)
		}
	}
}
