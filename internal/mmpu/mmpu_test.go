package mmpu

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGBMemoryCapacity(t *testing.T) {
	org := GBMemory(1020, 16)
	if err := org.Validate(); err != nil {
		t.Fatal(err)
	}
	if org.DataBits() < 1<<33 {
		t.Fatalf("capacity %d bits < 2^33", org.DataBits())
	}
	// ceil(2^33/1020²) = 8257 crossbars before bank rounding.
	if org.Crossbars() < 8257 {
		t.Fatalf("crossbars = %d, want ≥ 8257", org.Crossbars())
	}
	if org.Banks != 16 {
		t.Fatalf("banks = %d", org.Banks)
	}
}

func TestLocateRoundTripProperty(t *testing.T) {
	org := GBMemory(1020, 16)
	f := func(raw int64) bool {
		bit := raw % org.DataBits()
		if bit < 0 {
			bit = -bit
		}
		a, err := org.Locate(bit)
		if err != nil {
			return false
		}
		return org.FlatIndex(a) == bit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLocateBounds(t *testing.T) {
	org := GBMemory(1020, 4)
	if _, err := org.Locate(-1); err == nil {
		t.Fatal("negative bit accepted")
	}
	if _, err := org.Locate(org.DataBits()); err == nil {
		t.Fatal("out-of-range bit accepted")
	}
	a, err := org.Locate(org.DataBits() - 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Bank >= org.Banks || a.Crossbar >= org.PerBank ||
		a.Row >= org.CrossbarN || a.Col >= org.CrossbarN {
		t.Fatalf("address out of range: %+v", a)
	}
}

func TestLocateFieldsConsistent(t *testing.T) {
	org := Organization{CrossbarN: 4, Banks: 2, PerBank: 3, TotalBytes: 0}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		bit := int64(rng.Intn(int(org.DataBits())))
		a, err := org.Locate(bit)
		if err != nil {
			t.Fatal(err)
		}
		if got := org.FlatIndex(a); got != bit {
			t.Fatalf("round trip %d → %+v → %d", bit, a, got)
		}
	}
}

func TestValidateRejectsUndersized(t *testing.T) {
	bad := Organization{CrossbarN: 8, Banks: 1, PerBank: 1, TotalBytes: 1 << 30}
	if bad.Validate() == nil {
		t.Fatal("undersized organization accepted")
	}
	if (Organization{}).Validate() == nil {
		t.Fatal("zero organization accepted")
	}
}
