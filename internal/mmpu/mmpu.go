// Package mmpu models the memory-level organization the paper assumes: a
// memristive Memory Processing Unit divided into banks, each consisting of
// many n×n crossbar arrays (Section II-A). The proposed ECC extensions are
// applied per crossbar; this package provides the counting and addressing
// glue used to scale per-crossbar reliability to a full memory (the 1GB
// memory of Fig 6).
package mmpu

import "fmt"

// Organization describes a memory built from identical crossbars.
type Organization struct {
	CrossbarN  int // crossbar side length (bits)
	Banks      int // number of banks
	PerBank    int // crossbars per bank
	TotalBytes int64
}

// GBMemory returns the paper's Fig 6 configuration: enough n×n crossbars
// to hold 1GB (2³³ bits) of data, split across `banks` banks.
func GBMemory(n, banks int) Organization {
	const bits = int64(1) << 33
	per := int64(n) * int64(n)
	count := int((bits + per - 1) / per)
	perBank := (count + banks - 1) / banks
	return Organization{CrossbarN: n, Banks: banks, PerBank: perBank, TotalBytes: 1 << 30}
}

// Crossbars returns the total crossbar count.
func (o Organization) Crossbars() int { return o.Banks * o.PerBank }

// DataBits returns the total data capacity in bits.
func (o Organization) DataBits() int64 {
	return int64(o.Crossbars()) * int64(o.CrossbarN) * int64(o.CrossbarN)
}

// Validate checks the organization is well formed.
func (o Organization) Validate() error {
	if o.CrossbarN <= 0 || o.Banks <= 0 || o.PerBank <= 0 {
		return fmt.Errorf("mmpu: non-positive organization field: %+v", o)
	}
	if o.DataBits() < 8*o.TotalBytes {
		return fmt.Errorf("mmpu: %d crossbars of %d² bits cannot hold %d bytes",
			o.Crossbars(), o.CrossbarN, o.TotalBytes)
	}
	return nil
}

// Address locates a bit within the memory.
type Address struct {
	Bank, Crossbar int // crossbar index within its bank
	Row, Col       int
}

// Locate maps a flat bit index to its physical location, filling crossbars
// row-major, banks outermost.
func (o Organization) Locate(bit int64) (Address, error) {
	if bit < 0 || bit >= o.DataBits() {
		return Address{}, fmt.Errorf("mmpu: bit %d out of range [0,%d)", bit, o.DataBits())
	}
	per := int64(o.CrossbarN) * int64(o.CrossbarN)
	xb := bit / per
	off := bit % per
	return Address{
		Bank:     int(xb) / o.PerBank,
		Crossbar: int(xb) % o.PerBank,
		Row:      int(off) / o.CrossbarN,
		Col:      int(off) % o.CrossbarN,
	}, nil
}

// FlatIndex is the inverse of Locate.
func (o Organization) FlatIndex(a Address) int64 {
	per := int64(o.CrossbarN) * int64(o.CrossbarN)
	xb := int64(a.Bank)*int64(o.PerBank) + int64(a.Crossbar)
	return xb*per + int64(a.Row)*int64(o.CrossbarN) + int64(a.Col)
}

// BankBits returns one bank's data capacity in bits — the span of flat
// addresses each bank owns (banks are outermost in the layout).
func (o Organization) BankBits() int64 {
	return int64(o.PerBank) * int64(o.CrossbarN) * int64(o.CrossbarN)
}

// BankOf returns the bank holding the given flat bit index.
func (o Organization) BankOf(bit int64) (int, error) {
	a, err := o.Locate(bit)
	if err != nil {
		return 0, err
	}
	return a.Bank, nil
}

// Segment is a contiguous run of bits that lies within a single crossbar
// row — the unit at which a flat address range touches physical storage.
type Segment struct {
	Bank, Crossbar int   // crossbar within its bank
	Row, Col       int   // start position within the crossbar
	Bits           int   // run length; Col+Bits <= CrossbarN
	Off            int64 // offset of the run within the requested range
}

// ForEachSegment decomposes the bit range [bit, bit+nbits) into its
// crossbar-row segments, in address order, invoking fn for each. The
// decomposition is exact: segments are disjoint, contiguous, and their
// lengths sum to nbits. Iteration stops early if fn returns an error.
func (o Organization) ForEachSegment(bit, nbits int64, fn func(Segment) error) error {
	if nbits < 0 {
		return fmt.Errorf("mmpu: negative range width %d", nbits)
	}
	// bit > DataBits()-nbits is the overflow-safe form of bit+nbits >
	// DataBits(): adversarial near-MaxInt64 starts must not wrap negative
	// and skate past the guard.
	if bit < 0 || nbits > o.DataBits() || bit > o.DataBits()-nbits {
		return fmt.Errorf("mmpu: range %d+%d outside [0,%d)", bit, nbits, o.DataBits())
	}
	var off int64
	for off < nbits {
		a, err := o.Locate(bit + off)
		if err != nil {
			return err
		}
		run := int64(o.CrossbarN - a.Col) // to the end of this row
		if rem := nbits - off; run > rem {
			run = rem
		}
		if err := fn(Segment{
			Bank: a.Bank, Crossbar: a.Crossbar,
			Row: a.Row, Col: a.Col, Bits: int(run), Off: off,
		}); err != nil {
			return err
		}
		off += run
	}
	return nil
}

// CrossbarID returns the flat crossbar index of (bank, crossbar-in-bank),
// banks outermost — the ordering Locate uses.
func (o Organization) CrossbarID(bank, xb int) int { return bank*o.PerBank + xb }

// CrossbarAt is the inverse of CrossbarID.
func (o Organization) CrossbarAt(id int) (bank, xb int) {
	return id / o.PerBank, id % o.PerBank
}

// ForEachCrossbar invokes fn for every crossbar in flat order.
func (o Organization) ForEachCrossbar(fn func(bank, xb int)) {
	for b := 0; b < o.Banks; b++ {
		for x := 0; x < o.PerBank; x++ {
			fn(b, x)
		}
	}
}

// ShardBanks partitions the bank indices into `shards` balanced contiguous
// groups for per-bank worker pools: every bank appears in exactly one
// shard, so one worker owns all crossbars of its banks and no locking is
// needed. More shards than banks yields trailing empty shards.
func (o Organization) ShardBanks(shards int) [][]int {
	if shards <= 0 {
		shards = 1
	}
	out := make([][]int, shards)
	base, extra := o.Banks/shards, o.Banks%shards
	next := 0
	for s := 0; s < shards; s++ {
		n := base
		if s < extra {
			n++
		}
		for i := 0; i < n; i++ {
			out[s] = append(out[s], next)
			next++
		}
	}
	return out
}

// Custom returns an organization with explicit bank/crossbar counts (no
// capacity target), for fleet simulations at arbitrary scale.
func Custom(n, banks, perBank int) Organization {
	return Organization{CrossbarN: n, Banks: banks, PerBank: perBank}
}

// NodeMap assigns the organization's banks to fleet nodes in balanced
// contiguous ranges — the network-level analogue of ShardBanks. Routing is
// a pure function of (organization, node count): every client and every
// node derives the identical map from the shared geometry flags, so the
// fleet needs no routing metadata service. Contiguity is the invariant
// the address translation leans on: node i owns banks [Range(i)), and a
// global flat bit translates to the node-local address space by
// subtracting the range start's bit offset.
type NodeMap struct {
	org    Organization
	starts []int // starts[i] = first bank of node i; len = nodes+1
}

// ShardNodes splits the banks across `nodes` fleet nodes using the same
// balanced-contiguous split ShardBanks uses for worker pools, so the two
// layers of sharding (banks→nodes across the network, banks→workers
// within a node) compose without overlap.
func (o Organization) ShardNodes(nodes int) NodeMap {
	if nodes <= 0 {
		nodes = 1
	}
	if nodes > o.Banks {
		nodes = o.Banks
	}
	m := NodeMap{org: o, starts: make([]int, nodes+1)}
	base, extra := o.Banks/nodes, o.Banks%nodes
	next := 0
	for i := 0; i < nodes; i++ {
		m.starts[i] = next
		next += base
		if i < extra {
			next++
		}
	}
	m.starts[nodes] = next
	return m
}

// Nodes returns the node count.
func (m NodeMap) Nodes() int { return len(m.starts) - 1 }

// Org returns the global organization the map shards.
func (m NodeMap) Org() Organization { return m.org }

// Range returns the contiguous bank range [lo, hi) node i owns.
func (m NodeMap) Range(node int) (lo, hi int) {
	return m.starts[node], m.starts[node+1]
}

// NodeOf returns the node owning the given bank.
func (m NodeMap) NodeOf(bank int) int {
	// Linear scan: node counts are small (a handful of processes), and the
	// starts slice is cache-resident.
	for i := 1; i < len(m.starts); i++ {
		if bank < m.starts[i] {
			return i - 1
		}
	}
	return len(m.starts) - 2
}

// NodeOfBit returns the node owning the given global flat bit index.
func (m NodeMap) NodeOfBit(bit int64) (int, error) {
	bank, err := m.org.BankOf(bit)
	if err != nil {
		return 0, err
	}
	return m.NodeOf(bank), nil
}

// LocalOrg returns the organization of one node's shard: the same
// crossbar geometry over only the banks the node owns. The shard drops
// the capacity target — it is a slice of the global memory, not a full
// one.
func (m NodeMap) LocalOrg(node int) Organization {
	lo, hi := m.Range(node)
	return Organization{CrossbarN: m.org.CrossbarN, Banks: hi - lo, PerBank: m.org.PerBank}
}

// ToLocal translates a global flat bit index into node-local address
// space. The caller must route to the correct node first (NodeOfBit);
// spans that start in the node's range may still leak past its end — the
// node's own bounds checks reject those.
func (m NodeMap) ToLocal(node int, bit int64) int64 {
	lo, _ := m.Range(node)
	return bit - int64(lo)*m.org.BankBits()
}

// ToGlobal is the inverse of ToLocal.
func (m NodeMap) ToGlobal(node int, local int64) int64 {
	lo, _ := m.Range(node)
	return local + int64(lo)*m.org.BankBits()
}
