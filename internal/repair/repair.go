// Package repair is the self-healing layer over protected crossbars: it
// closes the stuck-at silent-corruption hole the fault campaign pinned
// (TestStuckWriteLaunderingEscapesECC) by pairing the paper's delta-update
// ECC with the two mechanisms real memory controllers deploy against
// permanent defects — write-verify and post-package-repair-style sparing.
//
// The campaign's negative result: a permanently stuck cell defeats any
// purely parity-based scheme, because a host write of the non-stuck value
// reads the stuck cell as "old", folds a phantom delta into the check
// bits, and leaves them consistent with the defect instead of the data.
// No code over the stored image can see this — the information that the
// write did not land exists only at write time. Write-verify captures
// exactly that information (re-read the committed line, compare against
// intent), and sparing removes the defective cell from the data path so
// the laundering can never recur.
//
// This package owns the bookkeeping: the repair policy, the per-crossbar
// spare-allocation table consulted on every row access, and the bounded
// repeat-offender table that drives scrub-triggered retirement. The
// physics — re-asserting defects, evicting them once spared
// (faults.StuckSet.Evict), fixing the committed line — lives in
// internal/machine, which drives a Table from its write and scrub paths.
package repair

import (
	"fmt"
	"strings"
)

// Policy selects how much self-healing the write and scrub paths perform.
type Policy int

const (
	// Off is the paper's baseline: writes commit unverified, stuck cells
	// launder check bits into silent corruption.
	Off Policy = iota
	// Verify enables write-verify only: every committed line is re-read
	// and persistent mismatches are escalated as defect reports (typed
	// machine.VerifyError, telemetry events) — corruption is detected at
	// the write, never silent, but the defective cell stays in service.
	Verify
	// VerifySpare adds remapping: persistent write-verify mismatches and
	// scrub repeat-offenders are retired onto spare lines (DRAM
	// post-package-repair style) from a bounded per-crossbar budget.
	VerifySpare
)

// String names the policy with its CLI spelling.
func (p Policy) String() string {
	switch p {
	case Off:
		return "off"
	case Verify:
		return "verify"
	case VerifySpare:
		return "verify+spare"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// PolicyNames lists the policies for CLI usage text.
func PolicyNames() []string { return []string{"off", "verify", "verify+spare"} }

// ParsePolicy resolves a -repair flag value.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "off", "false", "none":
		return Off, nil
	case "verify", "verify-only":
		return Verify, nil
	case "verify+spare", "spare", "full", "true":
		return VerifySpare, nil
	}
	return Off, fmt.Errorf("repair: unknown policy %q (have %v)", s, PolicyNames())
}

// Default knob values. A handful of spares per crossbar mirrors real
// post-package repair (a few spare rows per bank); two strikes before
// scrub-triggered retirement tolerates one transient masquerading as a
// defect while still retiring a genuinely stuck cell within two scrubs.
const (
	DefaultSpares       = 8
	DefaultRetireAfter  = 2
	DefaultMaxOffenders = 64
)

// Config parameterizes the repair subsystem of one crossbar (and, threaded
// through machine/pmem/fleet configuration, of a whole organization). The
// zero value is the Off policy. All fields are plain integers so configs
// stay comparable and mergeable through the existing fleet plumbing.
type Config struct {
	Policy Policy

	// Spares is the per-crossbar spare-cell budget (0 = DefaultSpares;
	// negative = explicitly none, every retirement refused — the
	// spelling the CLIs use for -spares 0). Beyond it, retirement
	// requests are tallied as exhausted and the defect stays in service —
	// detected by verify, never silent.
	Spares int

	// RetireAfter is the scrub-triggered retirement threshold: a cell the
	// scrub repairs this many times is declared a repeat offender and
	// remapped (<=0 = DefaultRetireAfter). Write-verify mismatches that
	// survive a rewrite retire immediately — the read-back is direct
	// evidence of a stuck cell, no repetition needed.
	RetireAfter int

	// MaxOffenders bounds the per-crossbar offender table (<=0 =
	// DefaultMaxOffenders). When full, the oldest entry is evicted —
	// tracking stays O(1) memory over arbitrarily long runs.
	MaxOffenders int
}

// Enabled reports whether any repair mechanism is active.
func (c Config) Enabled() bool { return c.Policy != Off }

// SpareBudget resolves the effective spare budget.
func (c Config) SpareBudget() int {
	if c.Spares == 0 {
		return DefaultSpares
	}
	if c.Spares < 0 {
		return 0
	}
	return c.Spares
}

// RetireThreshold resolves the effective scrub-retirement threshold.
func (c Config) RetireThreshold() int {
	if c.RetireAfter <= 0 {
		return DefaultRetireAfter
	}
	return c.RetireAfter
}

// OffenderCap resolves the effective offender-table bound.
func (c Config) OffenderCap() int {
	if c.MaxOffenders <= 0 {
		return DefaultMaxOffenders
	}
	return c.MaxOffenders
}

// Validate rejects malformed configurations (unknown policy values).
func (c Config) Validate() error {
	if c.Policy < Off || c.Policy > VerifySpare {
		return fmt.Errorf("repair: invalid policy %d", int(c.Policy))
	}
	return nil
}

// Stats is the mergeable repair activity summary of one or more crossbars.
type Stats struct {
	// VerifyReads counts committed-line read-backs performed.
	VerifyReads int64
	// Mismatches counts persistent write-verify mismatches (post-rewrite).
	Mismatches int64
	// Retired counts cells remapped onto spares (write-verify and
	// scrub-triggered retirements both land here).
	Retired int64
	// Exhausted counts retirement requests refused for lack of spares.
	Exhausted int64
}

// Add returns the field-wise sum — commutative and associative, so
// per-crossbar stats aggregate in any order.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		VerifyReads: s.VerifyReads + o.VerifyReads,
		Mismatches:  s.Mismatches + o.Mismatches,
		Retired:     s.Retired + o.Retired,
		Exhausted:   s.Exhausted + o.Exhausted,
	}
}

// Table is one crossbar's repair state: the spare remap table and the
// bounded repeat-offender tracker. It is pure bookkeeping — the caller
// performs the physical eviction and data fix — and is not safe for
// concurrent use (machine access is already serialized per bank).
type Table struct {
	cfg Config

	// remap records retired cells and the spare each occupies. rowMask is
	// the per-row "any cell of this row is remapped" bitmap the access
	// path consults: one word test per row access, so lookup cost stays
	// O(1) regardless of how many cells were retired.
	remap   map[[2]int]int
	rowMask []uint64

	// offenders is the bounded scrub-repeat tracker: counts per cell with
	// FIFO eviction of the oldest entry once cap is reached, so the order
	// (and therefore every retirement decision) is deterministic.
	offenders map[[2]int]int
	order     [][2]int

	stats Stats
}

// NewTable builds the repair state for one rows-high crossbar.
func NewTable(cfg Config, rows int) *Table {
	return &Table{
		cfg:       cfg,
		remap:     make(map[[2]int]int),
		rowMask:   make([]uint64, (rows+63)/64),
		offenders: make(map[[2]int]int),
	}
}

// Config returns the table's configuration.
func (t *Table) Config() Config { return t.cfg }

// Stats returns the accumulated repair statistics.
func (t *Table) Stats() Stats { return t.stats }

// NoteVerifyRead charges one committed-line read-back.
func (t *Table) NoteVerifyRead() { t.stats.VerifyReads++ }

// NoteMismatch records one persistent write-verify mismatch.
func (t *Table) NoteMismatch() { t.stats.Mismatches++ }

// SparesUsed returns the number of spares allocated so far.
func (t *Table) SparesUsed() int { return len(t.remap) }

// SparesLeft returns the remaining spare budget.
func (t *Table) SparesLeft() int { return t.cfg.SpareBudget() - len(t.remap) }

// Retired reports whether cell (r,c) has been remapped to a spare.
func (t *Table) Retired(r, c int) bool {
	_, ok := t.remap[[2]int{r, c}]
	return ok
}

// RowRemapped is the per-access remap-table lookup: whether any cell of
// row r has been spared out. One shift and mask — the cost the E12 design
// note budgets for consulting the table on every row access.
func (t *Table) RowRemapped(r int) bool {
	if w := r >> 6; w >= 0 && w < len(t.rowMask) {
		return t.rowMask[w]>>(uint(r)&63)&1 != 0
	}
	return false
}

// Retire allocates a spare for cell (r,c). It returns the spare index and
// true on success; on a duplicate it returns the existing mapping without
// consuming budget, and with the budget exhausted it returns (-1, false)
// and tallies the refusal — the caller escalates but does not remap.
func (t *Table) Retire(r, c int) (spare int, ok bool) {
	key := [2]int{r, c}
	if s, dup := t.remap[key]; dup {
		return s, true
	}
	if len(t.remap) >= t.cfg.SpareBudget() {
		t.stats.Exhausted++
		return -1, false
	}
	spare = len(t.remap)
	t.remap[key] = spare
	if w := r >> 6; w >= 0 && w < len(t.rowMask) {
		t.rowMask[w] |= 1 << (uint(r) & 63)
	}
	t.stats.Retired++
	delete(t.offenders, key) // a retired cell needs no further tracking
	return spare, true
}

// NoteOffender records one scrub repair of cell (r,c) and reports whether
// the cell has crossed the retirement threshold (only ever true under the
// VerifySpare policy; already-retired cells are never re-flagged). The
// offender table is bounded: at capacity the oldest tracked cell is
// evicted first.
func (t *Table) NoteOffender(r, c int) (retire bool) {
	key := [2]int{r, c}
	if _, retired := t.remap[key]; retired {
		return false
	}
	if _, tracked := t.offenders[key]; !tracked {
		if cap := t.cfg.OffenderCap(); len(t.order) >= cap {
			oldest := t.order[0]
			t.order = t.order[1:]
			delete(t.offenders, oldest)
		}
		t.order = append(t.order, key)
	}
	t.offenders[key]++
	return t.cfg.Policy == VerifySpare && t.offenders[key] >= t.cfg.RetireThreshold()
}

// OffenderCount returns the tracked scrub-repair count for cell (r,c).
func (t *Table) OffenderCount(r, c int) int { return t.offenders[[2]int{r, c}] }
