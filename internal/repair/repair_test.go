package repair

import (
	"fmt"
	"testing"
)

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in      string
		want    Policy
		wantErr bool
	}{
		{"off", Off, false},
		{"", Off, false},
		{"none", Off, false},
		{"false", Off, false},
		{"verify", Verify, false},
		{"Verify", Verify, false},
		{"verify-only", Verify, false},
		{"verify+spare", VerifySpare, false},
		{"spare", VerifySpare, false},
		{"true", VerifySpare, false},
		{" verify+spare ", VerifySpare, false},
		{"bogus", Off, true},
		{"verify spare", Off, true},
	}
	for _, c := range cases {
		got, err := ParsePolicy(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParsePolicy(%q) err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if !c.wantErr && got != c.want {
			t.Errorf("ParsePolicy(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestPolicyStringRoundTrip(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := ParsePolicy(name)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", name, err)
		}
		if p.String() != name {
			t.Errorf("Policy %q round-trips to %q", name, p.String())
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	if c.Enabled() {
		t.Error("zero Config must be Off")
	}
	if got := c.SpareBudget(); got != DefaultSpares {
		t.Errorf("SpareBudget default = %d, want %d", got, DefaultSpares)
	}
	if got := (Config{Spares: -1}).SpareBudget(); got != 0 {
		t.Errorf("SpareBudget explicit-none = %d, want 0", got)
	}
	if got := c.RetireThreshold(); got != DefaultRetireAfter {
		t.Errorf("RetireThreshold default = %d, want %d", got, DefaultRetireAfter)
	}
	if got := c.OffenderCap(); got != DefaultMaxOffenders {
		t.Errorf("OffenderCap default = %d, want %d", got, DefaultMaxOffenders)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("zero Config must validate: %v", err)
	}
	if err := (Config{Policy: Policy(9)}).Validate(); err == nil {
		t.Error("invalid policy must fail Validate")
	}
}

func TestRetireBudgetAndRemapLookup(t *testing.T) {
	tbl := NewTable(Config{Policy: VerifySpare, Spares: 2}, 128)
	if tbl.RowRemapped(7) || tbl.Retired(7, 3) {
		t.Fatal("fresh table must have no remaps")
	}
	if _, ok := tbl.Retire(7, 3); !ok {
		t.Fatal("first retire must succeed")
	}
	if _, ok := tbl.Retire(70, 5); !ok {
		t.Fatal("second retire must succeed within budget")
	}
	// Duplicate retire: returns existing mapping, consumes no budget.
	if s, ok := tbl.Retire(7, 3); !ok || s != 0 {
		t.Fatalf("duplicate retire = (%d,%v), want (0,true)", s, ok)
	}
	if tbl.SparesUsed() != 2 || tbl.SparesLeft() != 0 {
		t.Fatalf("used=%d left=%d, want 2/0", tbl.SparesUsed(), tbl.SparesLeft())
	}
	// Budget exhausted: refused and tallied.
	if _, ok := tbl.Retire(9, 9); ok {
		t.Fatal("retire beyond budget must be refused")
	}
	st := tbl.Stats()
	if st.Retired != 2 || st.Exhausted != 1 {
		t.Fatalf("stats = %+v, want Retired=2 Exhausted=1", st)
	}
	// Remap lookups.
	if !tbl.Retired(7, 3) || !tbl.Retired(70, 5) || tbl.Retired(9, 9) {
		t.Error("Retired lookups wrong")
	}
	if !tbl.RowRemapped(7) || !tbl.RowRemapped(70) {
		t.Error("RowRemapped must cover retired rows")
	}
	if tbl.RowRemapped(8) || tbl.RowRemapped(9) || tbl.RowRemapped(71) {
		t.Error("RowRemapped must not cover untouched rows")
	}
}

func TestNoteOffenderThreshold(t *testing.T) {
	tbl := NewTable(Config{Policy: VerifySpare, RetireAfter: 3}, 64)
	if tbl.NoteOffender(4, 4) || tbl.NoteOffender(4, 4) {
		t.Fatal("below threshold must not retire")
	}
	if !tbl.NoteOffender(4, 4) {
		t.Fatal("third strike must cross RetireAfter=3")
	}
	if got := tbl.OffenderCount(4, 4); got != 3 {
		t.Fatalf("OffenderCount = %d, want 3", got)
	}
	// Once retired, the cell is dropped from tracking and never re-flagged.
	if _, ok := tbl.Retire(4, 4); !ok {
		t.Fatal("retire after threshold must succeed")
	}
	if tbl.OffenderCount(4, 4) != 0 {
		t.Error("retired cell must leave the offender table")
	}
	if tbl.NoteOffender(4, 4) {
		t.Error("retired cell must never be re-flagged")
	}
}

func TestNoteOffenderVerifyOnlyNeverRetires(t *testing.T) {
	tbl := NewTable(Config{Policy: Verify, RetireAfter: 1}, 64)
	for i := 0; i < 5; i++ {
		if tbl.NoteOffender(1, 1) {
			t.Fatal("verify-only policy must never request retirement")
		}
	}
	if got := tbl.OffenderCount(1, 1); got != 5 {
		t.Fatalf("OffenderCount = %d, want 5 (tracking still active)", got)
	}
}

func TestOffenderTableBounded(t *testing.T) {
	tbl := NewTable(Config{Policy: VerifySpare, MaxOffenders: 3, RetireAfter: 100}, 64)
	for c := 0; c < 5; c++ {
		tbl.NoteOffender(0, c)
	}
	// FIFO eviction: cells 0 and 1 were evicted to admit 3 and 4.
	for c, want := range []int{0, 0, 1, 1, 1} {
		if got := tbl.OffenderCount(0, c); got != want {
			t.Errorf("OffenderCount(0,%d) = %d, want %d", c, got, want)
		}
	}
	// Eviction resets the strike count: the evicted cell re-enters fresh.
	tbl.NoteOffender(0, 0)
	if got := tbl.OffenderCount(0, 0); got != 1 {
		t.Errorf("re-admitted cell count = %d, want 1", got)
	}
}

func TestStatsAddCommutative(t *testing.T) {
	a := Stats{VerifyReads: 10, Mismatches: 3, Retired: 2, Exhausted: 1}
	b := Stats{VerifyReads: 7, Mismatches: 1, Retired: 4, Exhausted: 0}
	ab, ba := a.Add(b), b.Add(a)
	if ab != ba {
		t.Fatalf("Add not commutative: %+v vs %+v", ab, ba)
	}
	want := Stats{VerifyReads: 17, Mismatches: 4, Retired: 6, Exhausted: 1}
	if ab != want {
		t.Fatalf("Add = %+v, want %+v", ab, want)
	}
}

func TestTableStatsCounters(t *testing.T) {
	tbl := NewTable(Config{Policy: Verify}, 64)
	tbl.NoteVerifyRead()
	tbl.NoteVerifyRead()
	tbl.NoteMismatch()
	st := tbl.Stats()
	if st.VerifyReads != 2 || st.Mismatches != 1 {
		t.Fatalf("stats = %+v, want VerifyReads=2 Mismatches=1", st)
	}
}

func ExamplePolicy_String() {
	fmt.Println(Off, Verify, VerifySpare)
	// Output: off verify verify+spare
}
