package area

import (
	"testing"

	"repro/internal/ecc"
)

// TestAllPointsCoverRegistry: every registered scheme gets exactly one
// row, sorted by name, and at the universal 60×60 geometry every row is
// complete (no Err, positive overhead, update reads matching the
// scheme's discipline).
func TestAllPointsCoverRegistry(t *testing.T) {
	c := Config{N: 60, M: 15, K: 2}
	pts := c.AllPoints()
	names := ecc.SchemeNames()
	if len(pts) != len(names) {
		t.Fatalf("got %d points for %d registered schemes", len(pts), len(names))
	}
	for i, pt := range pts {
		if pt.Scheme != names[i] {
			t.Errorf("point %d: scheme %q, want %q (sorted registry order)", i, pt.Scheme, names[i])
		}
		if pt.Err != "" {
			t.Errorf("%s rejected the universal geometry: %s", pt.Scheme, pt.Err)
			continue
		}
		if pt.OverheadBits <= 0 || pt.UpdateReads <= 0 {
			t.Errorf("%s point incomplete: %+v", pt.Scheme, pt)
		}
		wantFrac := float64(pt.OverheadBits) / float64(60*60)
		if pt.OverheadFrac != wantFrac {
			t.Errorf("%s: overhead frac %v, want %v", pt.Scheme, pt.OverheadFrac, wantFrac)
		}
	}
}

// TestPointForFabricAccounting pins the Table II split: the diagonal
// family carries the in-array pipeline budget (processing + checking
// crossbar memristors, shifter + connection-unit transistors) on top of
// its stored checks, while the controller-decoded word schemes count
// check storage only.
func TestPointForFabricAccounting(t *testing.T) {
	c := Config{N: 60, M: 15, K: 2}
	fabricMem := c.ProcessingXBs().Memristors + c.CheckingXB().Memristors
	fabricTr := c.Shifters().Transistors + c.ConnectionUnit().Transistors
	if fabricMem <= 0 || fabricTr <= 0 {
		t.Fatalf("degenerate fabric budget: mem=%d tr=%d", fabricMem, fabricTr)
	}
	for _, tc := range []struct {
		scheme  string
		inArray bool
	}{
		{"diagonal", true},
		{"diagonal-x2", true},
		{"diagonal-x4", true},
		{"parity", false},
		{"hamming", false},
		{"dec", false},
	} {
		pt, err := c.PointFor(tc.scheme)
		if err != nil {
			t.Fatal(err)
		}
		wantMem, wantTr := pt.OverheadBits, 0
		if tc.inArray {
			wantMem += fabricMem
			wantTr = fabricTr
		}
		if pt.ExtraMemristors != wantMem || pt.ExtraTransistors != wantTr {
			t.Errorf("%s: devices (%d mem, %d tr), want (%d, %d)",
				tc.scheme, pt.ExtraMemristors, pt.ExtraTransistors, wantMem, wantTr)
		}
	}
}

// TestPointForInvalidGeometry: a scheme that rejects the geometry keeps
// its matrix row, with the reason in Err and the numeric fields zero.
func TestPointForInvalidGeometry(t *testing.T) {
	// 45 is not a multiple of the interleave width 2.
	pt, err := (Config{N: 45, M: 15, K: 2}).PointFor("diagonal-x2")
	if err != nil {
		t.Fatal(err)
	}
	if pt.Err == "" {
		t.Fatal("diagonal-x2 accepted n=45")
	}
	if pt.OverheadBits != 0 || pt.ExtraMemristors != 0 || pt.UpdateReads != 0 {
		t.Errorf("rejected point carries numbers: %+v", pt)
	}
	if pt.Corrects != 1 || pt.Detects != 2 {
		t.Errorf("rejected point loses its budget: %+v", pt)
	}
	// An unregistered name is a caller error, not a matrix row.
	if _, err := (Config{N: 60, M: 15, K: 2}).PointFor("nope"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}
