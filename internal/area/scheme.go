// Per-scheme cost points: the bridge between the registered protection
// codes (internal/ecc) and the paper's Table II device-count model. Every
// scheme in the registry reports one SchemePoint — stored check bits, the
// in-array device budget, and the per-line update cost — so the campaign's
// scheme-comparison matrix can put coverage and cost side by side.
//
// The accounting follows the paper's convention of counting in-situ fabric
// only. The diagonal family (plain and interleaved) computes its checks
// inside the array, so its points carry the full Table II support budget:
// processing and checking crossbars, shifters, and the connection unit.
// An interleaved code time-multiplexes the same pipelines across its k
// sub-codes — same fabric, same stored bits, k× the clustered-fault
// budget. The horizontal word schemes (parity, hamming, dec) decode in
// the controller; their in-array cost is check storage alone, and their
// real price surfaces in UpdateReads: a word code re-reads all M data
// bits of every crossed word per line write, where the diagonal placement
// pays only the old/new copy of the written cells.
package area

import (
	"sort"

	"repro/internal/ecc"
)

// SchemePoint is one scheme's row in the area/coverage comparison matrix.
type SchemePoint struct {
	Scheme   string `json:"scheme"`
	Corrects int    `json:"corrects"` // per-unit correction budget between scrubs
	Detects  int    `json:"detects"`  // per-unit detection (never miscorrect) budget

	OverheadBits int     `json:"overhead_bits"` // stored check bits for this geometry
	OverheadFrac float64 `json:"overhead_frac"` // OverheadBits / n² data bits

	// ExtraMemristors counts check storage plus any in-array compute
	// fabric; ExtraTransistors counts steering support (shifters and the
	// connection unit). Controller-side decode logic of the word schemes
	// is outside the Table II model and not counted.
	ExtraMemristors  int `json:"extra_memristors"`
	ExtraTransistors int `json:"extra_transistors"`

	// UpdateReads is the stored-bit reads needed to maintain the checks
	// across a single-line MAGIC write (ecc.Scheme.LineUpdateReads(1)).
	UpdateReads int `json:"update_reads"`

	// Err is non-empty when the scheme rejects this geometry; the numeric
	// fields are zero in that case.
	Err string `json:"err,omitempty"`
}

// PointFor builds the cost point of one registered scheme at this
// geometry. An invalid geometry is reported in the point's Err field, not
// as an error — the matrix keeps a row for every registered scheme.
func (c Config) PointFor(name string) (SchemePoint, error) {
	spec, err := ecc.SchemeByName(name)
	if err != nil {
		return SchemePoint{}, err
	}
	pt := SchemePoint{Scheme: spec.Name, Corrects: spec.Corrects, Detects: spec.Detects}
	p := ecc.Params{N: c.N, M: c.M}
	if err := spec.Validate(p); err != nil {
		pt.Err = err.Error()
		return pt, nil
	}
	sch := spec.New(p, nil)
	pt.OverheadBits = sch.OverheadBits()
	pt.OverheadFrac = float64(pt.OverheadBits) / float64(c.N*c.N)
	pt.UpdateReads = sch.LineUpdateReads(1)
	pt.ExtraMemristors = pt.OverheadBits
	if ecc.IsDiagonalFamily(spec.Name) {
		// In-array check pipelines: processing + checking crossbar
		// memristors, shifter + connection-unit transistors (Table II).
		pt.ExtraMemristors += c.ProcessingXBs().Memristors + c.CheckingXB().Memristors
		pt.ExtraTransistors = c.Shifters().Transistors + c.ConnectionUnit().Transistors
	}
	return pt, nil
}

// AllPoints returns one point per registered scheme, sorted by name —
// the raw material of the scheme-comparison matrix.
func (c Config) AllPoints() []SchemePoint {
	names := ecc.SchemeNames()
	sort.Strings(names)
	pts := make([]SchemePoint, 0, len(names))
	for _, name := range names {
		pt, err := c.PointFor(name)
		if err != nil { // registry names always resolve; keep the row anyway
			pt = SchemePoint{Scheme: name, Err: err.Error()}
		}
		pts = append(pts, pt)
	}
	return pts
}
