// Package area implements the paper's Table II device-count model: the
// memristor and transistor budget of one protected crossbar for the case
// study n = 1020, m = 15, k = 3 processing crossbars. The paper leaves
// physical layout to future work and reports device counts only; this
// package reproduces those expressions exactly.
package area

import "fmt"

// Config parameterizes the device-count expressions.
type Config struct {
	N int // crossbar side length
	M int // block side length
	K int // number of processing crossbars
}

// PaperConfig is Table II's case study: n=1020, m=15, k=3.
func PaperConfig() Config { return Config{N: 1020, M: 15, K: 3} }

// Unit is one row of Table II.
type Unit struct {
	Name        string
	Memristors  int
	Transistors int
	Expression  string
}

// DataMEM returns the data crossbar row: n × n memristors.
func (c Config) DataMEM() Unit {
	return Unit{"Data (MEM)", c.N * c.N, 0, "n × n"}
}

// CheckBits returns the check-bit crossbar row: 2·m·(n/m)² memristors
// (two diagonal families, m crossbars each, (n/m)² cells per crossbar).
func (c Config) CheckBits() Unit {
	g := c.N / c.M
	return Unit{"Check-Bits", 2 * c.M * g * g, 0, "2 × m × (n/m)²"}
}

// ProcessingXBs returns the processing crossbar row: 2·11·k·n memristors —
// k PCs, each with an 11-row XOR3 strip (3 inputs + 7 intermediates + 1
// output) of width n, duplicated for the two diagonal families.
func (c Config) ProcessingXBs() Unit {
	return Unit{"Processing XBs", 2 * 11 * c.K * c.N, 0, "2 × 11 × k × n"}
}

// CheckingXB returns the checking crossbar row: 2·n memristors, one
// syndrome bit per diagonal per block line for both families.
func (c Config) CheckingXB() Unit {
	return Unit{"Checking XB", 2 * c.N, 0, "2 × n"}
}

// Shifters returns the shifter row: 4·n·m transistors — each of n lines
// fans out to m positions, with four shifter planes ({leading, counter} ×
// {wordline side, bitline side}).
func (c Config) Shifters() Unit {
	return Unit{"Shifters", 0, 4 * c.N * c.M, "4 × n × m"}
}

// ConnectionUnit returns the connection-unit row: 2·n·(k+4) transistors —
// routing each of 2n CMEM lines to the k processing crossbars plus the
// check-bit crossbars, the checking crossbar, and the two controller
// ports.
func (c Config) ConnectionUnit() Unit {
	return Unit{"Connection Unit", 0, 2 * c.N * (c.K + 4), "2 × n × (k + 4)"}
}

// Table returns all Table II rows in the paper's order, plus the total.
func (c Config) Table() []Unit {
	units := []Unit{
		c.DataMEM(), c.CheckBits(), c.ProcessingXBs(),
		c.CheckingXB(), c.Shifters(), c.ConnectionUnit(),
	}
	var total Unit
	total.Name = "Total"
	for _, u := range units {
		total.Memristors += u.Memristors
		total.Transistors += u.Transistors
	}
	return append(units, total)
}

// MemristorOverhead returns the fraction of extra memristors the proposed
// design adds over the bare data array.
func (c Config) MemristorOverhead() float64 {
	t := c.Table()
	total := t[len(t)-1].Memristors
	data := c.DataMEM().Memristors
	return float64(total-data) / float64(data)
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.N <= 0 || c.M <= 0 || c.N%c.M != 0 || c.K <= 0 {
		return fmt.Errorf("area: invalid config %+v", c)
	}
	return nil
}
