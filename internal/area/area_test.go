package area

import "testing"

// TestTableIIExactValues pins every row of Table II for the paper's case
// study n=1020, m=15, k=3.
func TestTableIIExactValues(t *testing.T) {
	c := PaperConfig()
	cases := []struct {
		unit        Unit
		memristors  int
		transistors int
	}{
		{c.DataMEM(), 1040400, 0},      // 1.04·10⁶
		{c.CheckBits(), 138720, 0},     // 1.39·10⁵
		{c.ProcessingXBs(), 67320, 0},  // 6.73·10⁴
		{c.CheckingXB(), 2040, 0},      // 2.04·10³
		{c.Shifters(), 0, 61200},       // 6.12·10⁴
		{c.ConnectionUnit(), 0, 14280}, // 1.43·10⁴
	}
	for _, tc := range cases {
		if tc.unit.Memristors != tc.memristors {
			t.Errorf("%s memristors = %d, want %d", tc.unit.Name, tc.unit.Memristors, tc.memristors)
		}
		if tc.unit.Transistors != tc.transistors {
			t.Errorf("%s transistors = %d, want %d", tc.unit.Name, tc.unit.Transistors, tc.transistors)
		}
	}
}

func TestTableIITotals(t *testing.T) {
	// Paper totals: 1.25·10⁶ memristors, 7.55·10⁴ transistors.
	tab := PaperConfig().Table()
	total := tab[len(tab)-1]
	if total.Name != "Total" {
		t.Fatal("last row should be the total")
	}
	if total.Memristors != 1040400+138720+67320+2040 {
		t.Fatalf("total memristors = %d", total.Memristors)
	}
	if total.Memristors < 1240000 || total.Memristors > 1260000 {
		t.Fatalf("total memristors = %d, want ≈1.25e6", total.Memristors)
	}
	if total.Transistors != 61200+14280 {
		t.Fatalf("total transistors = %d", total.Transistors)
	}
	if total.Transistors < 75000 || total.Transistors > 76000 {
		t.Fatalf("total transistors = %d, want ≈7.55e4", total.Transistors)
	}
}

func TestMemristorOverheadModest(t *testing.T) {
	// The ECC structures add about 20% memristors over the bare array.
	ovh := PaperConfig().MemristorOverhead()
	if ovh < 0.15 || ovh > 0.25 {
		t.Fatalf("memristor overhead = %.3f, want ≈0.20", ovh)
	}
}

func TestOverheadScalesWithBlockSize(t *testing.T) {
	// Smaller blocks → more check bits → more memristor overhead
	// (the reliability/overhead trade-off of Section III).
	big := Config{N: 1020, M: 15, K: 3}
	small := Config{N: 1020, M: 5, K: 3}
	if small.MemristorOverhead() <= big.MemristorOverhead() {
		t.Fatal("smaller blocks should cost more area")
	}
}

func TestProcessingXBsScaleWithK(t *testing.T) {
	k3 := Config{N: 1020, M: 15, K: 3}.ProcessingXBs().Memristors
	k8 := Config{N: 1020, M: 15, K: 8}.ProcessingXBs().Memristors
	if k8 != k3*8/3 {
		t.Fatalf("PC memristors: k=3 → %d, k=8 → %d; want linear in k", k3, k8)
	}
}

func TestValidate(t *testing.T) {
	if err := PaperConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Config{{0, 15, 3}, {1020, 0, 3}, {1020, 14, 3}, {1020, 15, 0}} {
		if bad.Validate() == nil {
			t.Errorf("config %+v should be invalid", bad)
		}
	}
}

func TestTableRowCount(t *testing.T) {
	if got := len(PaperConfig().Table()); got != 7 {
		t.Fatalf("table has %d rows, want 7 (6 units + total)", got)
	}
}
