package cmem

import (
	"math/rand"
	"testing"

	"repro/internal/ecc"
	"repro/internal/shifter"
	"repro/internal/xbar"
)

// Cross-geometry coverage: the CMEM must stay exact for every odd block
// size and grid shape, not just the paper's m=15 — the diagonal algebra
// (intersection uniqueness, shifter routing) is the part most sensitive
// to geometry.

func TestUpdateAndCheckAcrossGeometries(t *testing.T) {
	geoms := []Config{
		{N: 9, M: 3, K: 1},
		{N: 15, M: 5, K: 2},
		{N: 21, M: 7, K: 1},
		{N: 27, M: 9, K: 3},
		{N: 35, M: 7, K: 2},
		{N: 45, M: 9, K: 2},
	}
	for _, cfg := range geoms {
		cfg := cfg
		rng := rand.New(rand.NewSource(int64(cfg.N * cfg.M)))
		mem := xbar.New(cfg.N, cfg.N)
		mem.Mat().Randomize(rng)
		c := New(cfg)
		c.LoadFrom(mem.Mat())

		// A few random masked ops in both orientations with updates.
		for op := 0; op < 6; op++ {
			if op%2 == 0 {
				out := rng.Intn(cfg.N)
				rows := mem.RowMask()
				for r := 0; r < cfg.N; r++ {
					rows.Set(r, rng.Intn(2) == 0)
				}
				oldCol := mem.Mat().Col(out)
				mem.InitColumnsInRows([]int{out}, rows)
				mem.NORRows(rng.Intn(cfg.N), rng.Intn(cfg.N), out, rows)
				c.UpdateCritical(rng.Intn(cfg.K), CriticalUpdate{
					Orientation: shifter.RowParallel, Index: out,
					Old: oldCol, New: mem.Mat().Col(out),
				})
			} else {
				out := rng.Intn(cfg.N)
				cols := mem.ColMask()
				for cc := 0; cc < cfg.N; cc++ {
					cols.Set(cc, rng.Intn(2) == 0)
				}
				oldRow := mem.Mat().Row(out).Clone()
				mem.InitRowsInCols([]int{out}, cols)
				mem.NORCols(rng.Intn(cfg.N), rng.Intn(cfg.N), out, cols)
				c.UpdateCritical(rng.Intn(cfg.K), CriticalUpdate{
					Orientation: shifter.ColParallel, Index: out,
					Old: oldRow, New: mem.Mat().Row(out).Clone(),
				})
			}
		}
		if !c.Image().Equal(ecc.Build(c.Geometry(), mem.Mat())) {
			t.Fatalf("geometry %+v: CMEM out of sync after updates", cfg)
		}

		// Single error anywhere: corrected through a line check.
		r, cc := rng.Intn(cfg.N), rng.Intn(cfg.N)
		want := mem.Snapshot()
		mem.Flip(r, cc)
		diags := c.CheckLine(mem, shifter.ColParallel, r/cfg.M, 0)
		if len(diags) != 1 {
			t.Fatalf("geometry %+v: %d diagnoses", cfg, len(diags))
		}
		if !mem.Snapshot().Equal(want) {
			t.Fatalf("geometry %+v: error not repaired", cfg)
		}
	}
}

func TestShifterExhaustiveTinyGeometry(t *testing.T) {
	// m=3, two blocks per side: enumerate every cell against ecc indexing
	// through the real shifter for both families and orientations.
	p := ecc.Params{N: 6, M: 3}
	s := shifter.New(p.N, p.M)
	rng := rand.New(rand.NewSource(5))
	mem := xbar.New(p.N, p.N)
	mem.Mat().Randomize(rng)

	for c := 0; c < p.N; c++ {
		col := mem.Mat().Col(c)
		lead := s.Route(col, c%p.M, shifter.Leading, shifter.RowParallel)
		counter := s.Route(col, c%p.M, shifter.Counter, shifter.RowParallel)
		for r := 0; r < p.N; r++ {
			br, _, lr, lc := p.BlockOf(r, c)
			if lead[p.LeadIdx(lr, lc)].Get(br) != mem.Get(r, c) {
				t.Fatalf("leading mismatch at (%d,%d)", r, c)
			}
			if counter[p.CounterIdx(lr, lc)].Get(br) != mem.Get(r, c) {
				t.Fatalf("counter mismatch at (%d,%d)", r, c)
			}
		}
	}
	for r := 0; r < p.N; r++ {
		row := mem.Mat().Row(r).Clone()
		lead := s.Route(row, r%p.M, shifter.Leading, shifter.ColParallel)
		counter := s.Route(row, r%p.M, shifter.Counter, shifter.ColParallel)
		for c := 0; c < p.N; c++ {
			_, bc, lr, lc := p.BlockOf(r, c)
			if lead[p.LeadIdx(lr, lc)].Get(bc) != mem.Get(r, c) {
				t.Fatalf("leading col-parallel mismatch at (%d,%d)", r, c)
			}
			if counter[p.CounterIdx(lr, lc)].Get(bc) != mem.Get(r, c) {
				t.Fatalf("counter col-parallel mismatch at (%d,%d)", r, c)
			}
		}
	}
}
