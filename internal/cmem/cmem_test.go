package cmem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ecc"
	"repro/internal/shifter"
	"repro/internal/xbar"
)

var testCfg = Config{N: 45, M: 15, K: 2}

func newLoaded(seed int64) (*CMEM, *xbar.Crossbar) {
	rng := rand.New(rand.NewSource(seed))
	mem := xbar.New(testCfg.N, testCfg.N)
	mem.Mat().Randomize(rng)
	c := New(testCfg)
	c.LoadFrom(mem.Mat())
	return c, mem
}

func TestConfigValidate(t *testing.T) {
	if err := PaperConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{N: 45, M: 15, K: 0},
		{N: 44, M: 15, K: 1},
		{N: 45, M: 14, K: 1},
	}
	for _, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("config %+v should be invalid", cfg)
		}
	}
}

func TestLoadFromMatchesECCBuild(t *testing.T) {
	c, mem := newLoaded(1)
	want := ecc.Build(c.Geometry(), mem.Mat())
	if !c.Image().Equal(want) {
		t.Fatal("CMEM image differs from mathematical check bits after load")
	}
}

func TestUpdateCriticalRowParallel(t *testing.T) {
	// Simulate a row-parallel MAGIC NOR writing column 7 across all rows,
	// then verify the CMEM equals a from-scratch rebuild.
	c, mem := newLoaded(2)
	oldCol := mem.Mat().Col(7)
	rows := mem.AllRows()
	mem.InitColumnsInRows([]int{7}, rows)
	mem.NORRows(2, 4, 7, rows)
	newCol := mem.Mat().Col(7)

	c.UpdateCritical(0, CriticalUpdate{
		Orientation: shifter.RowParallel, Index: 7, Old: oldCol, New: newCol,
	})
	want := ecc.Build(c.Geometry(), mem.Mat())
	if !c.Image().Equal(want) {
		t.Fatal("check bits stale after row-parallel critical update")
	}
}

func TestUpdateCriticalColParallel(t *testing.T) {
	c, mem := newLoaded(3)
	oldRow := mem.Mat().Row(20).Clone()
	cols := mem.AllCols()
	mem.InitRowsInCols([]int{20}, cols)
	mem.NORCols(1, 3, 20, cols)
	newRow := mem.Mat().Row(20).Clone()

	c.UpdateCritical(1, CriticalUpdate{
		Orientation: shifter.ColParallel, Index: 20, Old: oldRow, New: newRow,
	})
	want := ecc.Build(c.Geometry(), mem.Mat())
	if !c.Image().Equal(want) {
		t.Fatal("check bits stale after col-parallel critical update")
	}
}

func TestUpdateCriticalSequenceProperty(t *testing.T) {
	// A random sequence of masked row/col MAGIC ops with continuous CMEM
	// updates must keep the CMEM exactly in sync — across both families,
	// all shifts, and partial row/column masks.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, mem := newLoaded(seed)
		for op := 0; op < 12; op++ {
			if rng.Intn(2) == 0 {
				out := rng.Intn(testCfg.N)
				a, b := rng.Intn(testCfg.N), rng.Intn(testCfg.N)
				rows := mem.RowMask()
				for r := 0; r < testCfg.N; r++ {
					rows.Set(r, rng.Intn(2) == 0)
				}
				oldCol := mem.Mat().Col(out)
				mem.InitColumnsInRows([]int{out}, rows)
				mem.NORRows(a, b, out, rows)
				c.UpdateCritical(rng.Intn(testCfg.K), CriticalUpdate{
					Orientation: shifter.RowParallel, Index: out,
					Old: oldCol, New: mem.Mat().Col(out),
				})
			} else {
				out := rng.Intn(testCfg.N)
				a, b := rng.Intn(testCfg.N), rng.Intn(testCfg.N)
				cols := mem.ColMask()
				for cc := 0; cc < testCfg.N; cc++ {
					cols.Set(cc, rng.Intn(2) == 0)
				}
				oldRow := mem.Mat().Row(out).Clone()
				mem.InitRowsInCols([]int{out}, cols)
				mem.NORCols(a, b, out, cols)
				c.UpdateCritical(rng.Intn(testCfg.K), CriticalUpdate{
					Orientation: shifter.ColParallel, Index: out,
					Old: oldRow, New: mem.Mat().Row(out).Clone(),
				})
			}
		}
		return c.Image().Equal(ecc.Build(c.Geometry(), mem.Mat()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckLineCleanBlockRow(t *testing.T) {
	c, mem := newLoaded(4)
	diags := c.CheckLine(mem, shifter.ColParallel, 1, 0)
	if len(diags) != 0 {
		t.Fatalf("clean block-row reported %v", diags)
	}
}

func TestCheckLineCorrectsDataError(t *testing.T) {
	c, mem := newLoaded(5)
	want := mem.Snapshot()
	mem.Flip(17, 32) // block-row 1, block-col 2
	diags := c.CheckLine(mem, shifter.ColParallel, 1, 0)
	if len(diags) != 1 {
		t.Fatalf("diagnoses: %v", diags)
	}
	d, ok := diags[2]
	if !ok || d.Kind != ecc.DataError {
		t.Fatalf("block 2 diagnosis: %+v", diags)
	}
	if !mem.Snapshot().Equal(want) {
		t.Fatal("data error not repaired by CheckLine")
	}
	// CMEM must still be consistent afterwards.
	if !c.Image().Equal(ecc.Build(c.Geometry(), mem.Mat())) {
		t.Fatal("check bits inconsistent after correction")
	}
}

func TestCheckLineCorrectsCheckBitError(t *testing.T) {
	c, mem := newLoaded(6)
	c.FlipCheckBit(shifter.Leading, 4, 0, 2) // block (0,2), leading diag 4
	diags := c.CheckLine(mem, shifter.ColParallel, 0, 1)
	d, ok := diags[2]
	if !ok || d.Kind != ecc.LeadCheckError || d.Diag != 4 {
		t.Fatalf("diagnoses: %+v", diags)
	}
	if !c.Image().Equal(ecc.Build(c.Geometry(), mem.Mat())) {
		t.Fatal("check-bit error not repaired")
	}
}

func TestCheckLineBlockColumn(t *testing.T) {
	// RowParallel orientation checks a block-column.
	c, mem := newLoaded(7)
	want := mem.Snapshot()
	mem.Flip(40, 16) // block-row 2, block-col 1
	diags := c.CheckLine(mem, shifter.RowParallel, 1, 0)
	d, ok := diags[2] // line position = block-row 2
	if !ok || d.Kind != ecc.DataError {
		t.Fatalf("diagnoses: %+v", diags)
	}
	if !mem.Snapshot().Equal(want) {
		t.Fatal("block-column check did not repair")
	}
}

func TestCheckLineDetectsUncorrectable(t *testing.T) {
	c, mem := newLoaded(8)
	mem.Flip(0, 0)
	mem.Flip(1, 3) // same block, disjoint diagonals
	diags := c.CheckLine(mem, shifter.ColParallel, 0, 0)
	d, ok := diags[0]
	if !ok || d.Kind != ecc.Uncorrectable {
		t.Fatalf("diagnoses: %+v", diags)
	}
}

func TestCheckLineMultipleBlocksOneErrorEach(t *testing.T) {
	c, mem := newLoaded(9)
	want := mem.Snapshot()
	mem.Flip(2, 2)   // block (0,0)
	mem.Flip(5, 20)  // block (0,1)
	mem.Flip(11, 40) // block (0,2)
	diags := c.CheckLine(mem, shifter.ColParallel, 0, 0)
	if len(diags) != 3 {
		t.Fatalf("got %d diagnoses, want 3", len(diags))
	}
	if !mem.Snapshot().Equal(want) {
		t.Fatal("not all blocks repaired")
	}
}

func TestXOR3CycleCost(t *testing.T) {
	// Each critical update runs XOR3 once per family: 8 NOR cycles each,
	// matching the paper's "XOR3 is performed with 8 MAGIC NOR operations".
	c, mem := newLoaded(10)
	oldCol := mem.Mat().Col(0)
	mem.InitColumnsInRows([]int{0}, mem.AllRows())
	mem.NORRows(1, 2, 0, mem.AllRows())
	c.UpdateCritical(0, CriticalUpdate{
		Orientation: shifter.RowParallel, Index: 0, Old: oldCol, New: mem.Mat().Col(0),
	})
	leadNORs := c.pcs[0].lead.Stats().NORs
	if leadNORs != xbar.XOR3CyclesPerBit {
		t.Fatalf("leading strip used %d NORs, want %d", leadNORs, xbar.XOR3CyclesPerBit)
	}
}

func TestPCBusyCyclesConstant(t *testing.T) {
	// 2 families × (3 transfers + init + 8 NOR + write-back) = 26.
	if PCBusyCycles != 26 {
		t.Fatalf("PCBusyCycles = %d, want 26", PCBusyCycles)
	}
}

func TestStatsAccumulate(t *testing.T) {
	c, mem := newLoaded(11)
	before := c.Stats()
	c.CheckLine(mem, shifter.ColParallel, 0, 0)
	after := c.Stats()
	if after.PCCycles <= before.PCCycles {
		t.Fatal("CheckLine consumed no PC cycles")
	}
	if after.CheckingCycles <= before.CheckingCycles {
		t.Fatal("CheckLine consumed no checking-crossbar cycles")
	}
	if after.TransferCycles <= before.TransferCycles {
		t.Fatal("CheckLine consumed no transfer cycles")
	}
}

func TestUpdateCriticalBadPCPanics(t *testing.T) {
	c, mem := newLoaded(12)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range PC id")
		}
	}()
	c.UpdateCritical(99, CriticalUpdate{
		Orientation: shifter.RowParallel, Index: 0,
		Old: mem.Mat().Col(0), New: mem.Mat().Col(0),
	})
}

func TestCheckLineMEMCycles(t *testing.T) {
	if CheckLineMEMCycles(15) != 15 {
		t.Fatal("input check should occupy MEM for m cycles (the m line copies)")
	}
}

func TestBitsCapacityMatchesTableII(t *testing.T) {
	// The m+m check-bit crossbars hold 2·m·(n/m)² bits total.
	c := New(Config{N: 1020, M: 15, K: 3})
	bits := 0
	for d := 0; d < 15; d++ {
		bits += c.lead[d].Rows()*c.lead[d].Cols() + c.counter[d].Rows()*c.counter[d].Cols()
	}
	if bits != 138720 {
		t.Fatalf("check-bit capacity = %d, want 138720 (Table II)", bits)
	}
	if c.checking.Cols() != 2*1020 {
		t.Fatalf("checking crossbar = %d cells, want 2n", c.checking.Cols())
	}
}
