// Package cmem simulates the Check Memory of the proposed architecture
// (Fig 3 and Fig 4 of the paper): the memory-side half of the diagonal ECC
// mechanism.
//
// Components, mirroring the paper's Section IV:
//
//   - Check-bit crossbars: m crossbar arrays per diagonal family, each
//     (n/m)×(n/m). Cell (br,bc) of crossbar d stores the parity of
//     diagonal d of the block in block-row br, block-column bc. The split
//     into m crossbars is forced by MEM supporting both in-row and
//     in-column operations.
//   - Processing crossbars (PCs): dedicated 11×n crossbar pairs (one per
//     family) that execute XOR3 = 8 MAGIC NORs, pipelined so MEM and the
//     check-bit crossbars stay free during the computation.
//   - Checking crossbar: a 2n-cell row that holds block syndromes during
//     an ECC check and flags non-zero ones for the controller.
//   - Connection unit + shifters: routing between all of the above
//     (modeled by internal/shifter; the connection unit adds transistor
//     cost only, see internal/area).
//
// The simulation is functional *and* cycle-counted: data actually moves
// through simulated MAGIC operations, and each component accumulates the
// cycles it spends, so tests can verify both that the CMEM state matches
// the mathematical code (internal/ecc) and that operation costs match the
// architecture's claims.
package cmem

import (
	"fmt"

	"repro/internal/bitmat"
	"repro/internal/ecc"
	"repro/internal/shifter"
	"repro/internal/xbar"
)

// Config sizes a CMEM.
type Config struct {
	N int // MEM side length
	M int // block side length (odd, divides N)
	K int // number of processing crossbars
}

// PaperConfig returns the case-study configuration n=1020, m=15, k=3.
func PaperConfig() Config { return Config{N: 1020, M: 15, K: 3} }

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := (ecc.Params{N: c.N, M: c.M}).Validate(); err != nil {
		return err
	}
	if c.K < 1 {
		return fmt.Errorf("cmem: need at least one processing crossbar, got %d", c.K)
	}
	return nil
}

// ProcessingCrossbar is one XOR3 engine: an 11-row strip per diagonal
// family, n columns wide, executing XOR3 column-parallel in 8 NOR cycles.
type ProcessingCrossbar struct {
	lead, counter *xbar.Crossbar
}

func newPC(n int) *ProcessingCrossbar {
	return &ProcessingCrossbar{
		lead:    xbar.New(xbar.XOR3WorkRows, n),
		counter: xbar.New(xbar.XOR3WorkRows, n),
	}
}

// Cycles returns the total cycles this PC has consumed (both strips run in
// lockstep, so the leading strip's clock is the PC clock).
func (pc *ProcessingCrossbar) Cycles() int { return pc.lead.Stats().Cycles }

// CMEM is the simulated check memory for one MEM crossbar.
type CMEM struct {
	cfg      Config
	geom     ecc.Params
	sh       *shifter.Shifter
	lead     []*xbar.Crossbar // [M] check-bit crossbars, leading family
	counter  []*xbar.Crossbar // [M] counter family
	pcs      []*ProcessingCrossbar
	checking *xbar.Crossbar // 1×2n syndrome row
	xferCyc  int            // connection-unit / shifter transfer cycles

	// Scratch state for the hot operations (a CMEM serves one MEM and is
	// driven sequentially, so reuse is safe): routed/check-bit staging
	// vectors, the XOR3 parity accumulator, and the all-columns PC mask.
	routeScratch *bitmat.Vec
	accScratch   *bitmat.Vec
	allCols      *bitmat.Vec
}

// New builds an all-zero CMEM (correct for an all-zero MEM).
func New(cfg Config) *CMEM {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	geom := ecc.Params{N: cfg.N, M: cfg.M}
	s := geom.BlocksPerSide()
	c := &CMEM{
		cfg:      cfg,
		geom:     geom,
		sh:       shifter.New(cfg.N, cfg.M),
		lead:     make([]*xbar.Crossbar, cfg.M),
		counter:  make([]*xbar.Crossbar, cfg.M),
		pcs:      make([]*ProcessingCrossbar, cfg.K),
		checking: xbar.New(1, 2*cfg.N),

		routeScratch: bitmat.NewVec(cfg.N),
		accScratch:   bitmat.NewVec(cfg.N),
		allCols:      bitmat.NewVec(cfg.N),
	}
	c.allCols.Fill(true)
	for d := 0; d < cfg.M; d++ {
		c.lead[d] = xbar.New(s, s)
		c.counter[d] = xbar.New(s, s)
	}
	for i := range c.pcs {
		c.pcs[i] = newPC(cfg.N)
	}
	return c
}

// Config returns the CMEM configuration.
func (c *CMEM) Config() Config { return c.cfg }

// Geometry returns the ECC geometry the CMEM protects.
func (c *CMEM) Geometry() ecc.Params { return c.geom }

// LoadFrom initializes the check-bit crossbars for an existing MEM image —
// the write path of a freshly programmed protected memory.
func (c *CMEM) LoadFrom(mem *bitmat.Mat) {
	cb := ecc.Build(c.geom, mem)
	s := c.geom.BlocksPerSide()
	for d := 0; d < c.cfg.M; d++ {
		for br := 0; br < s; br++ {
			for bc := 0; bc < s; bc++ {
				c.lead[d].Set(br, bc, cb.Lead(d, br, bc))
				c.counter[d].Set(br, bc, cb.Counter(d, br, bc))
			}
		}
	}
}

// Image exports the logical check-bit state, for comparison against the
// mathematical code in internal/ecc.
func (c *CMEM) Image() *ecc.CheckBits {
	cb := ecc.NewCheckBits(c.geom)
	s := c.geom.BlocksPerSide()
	for d := 0; d < c.cfg.M; d++ {
		for br := 0; br < s; br++ {
			for bc := 0; bc < s; bc++ {
				cb.SetLead(d, br, bc, c.lead[d].Get(br, bc))
				cb.SetCounter(d, br, bc, c.counter[d].Get(br, bc))
			}
		}
	}
	return cb
}

// FlipCheckBit injects a soft error into a stored check bit.
func (c *CMEM) FlipCheckBit(f shifter.Family, d, br, bc int) {
	if f == shifter.Leading {
		c.lead[d].Flip(br, bc)
	} else {
		c.counter[d].Flip(br, bc)
	}
}

// CheckBit reads one stored check bit (controller maintenance path — the
// write-verify metadata sweep reads a block's stored state through this).
func (c *CMEM) CheckBit(f shifter.Family, d, br, bc int) bool {
	if f == shifter.Leading {
		return c.lead[d].Get(br, bc)
	}
	return c.counter[d].Get(br, bc)
}

// SetCheckBit writes a stored check bit directly (controller maintenance
// path, e.g. re-establishing parity over a scratch region).
func (c *CMEM) SetCheckBit(f shifter.Family, d, br, bc int, v bool) {
	if f == shifter.Leading {
		c.lead[d].Set(br, bc, v)
	} else {
		c.counter[d].Set(br, bc, v)
	}
}

// Stats aggregates cycle counts across CMEM components.
type Stats struct {
	CheckXbarCycles int // cycles spent by check-bit crossbars (read/write)
	PCCycles        int // total processing-crossbar cycles (summed over PCs)
	CheckingCycles  int // checking-crossbar cycles
	TransferCycles  int // shifter/connection-unit transfer cycles
}

// Stats returns the accumulated cycle counts.
func (c *CMEM) Stats() Stats {
	var st Stats
	for d := 0; d < c.cfg.M; d++ {
		st.CheckXbarCycles += c.lead[d].Stats().Cycles + c.counter[d].Stats().Cycles
	}
	for _, pc := range c.pcs {
		st.PCCycles += pc.lead.Stats().Cycles + pc.counter.Stats().Cycles
	}
	st.CheckingCycles = c.checking.Stats().Cycles
	st.TransferCycles = c.xferCyc
	return st
}

// --- check-bit crossbar vector access (through the connection unit) -------

// checkVecInto reads, for a row-parallel op on block-column bc, the n check
// bits {family, d, br, bc} for all d and br into dst, packed d-major (index
// d·(n/m)+br) — the order the shifters produce. Costs one read cycle per
// check-bit crossbar (they are read in parallel; the clock advance is
// modeled on each crossbar independently).
func (c *CMEM) checkVecInto(dst *bitmat.Vec, f shifter.Family, o shifter.Orientation, blockIdx int) {
	xs := c.family(f)
	g := c.geom.BlocksPerSide()
	for d := 0; d < c.cfg.M; d++ {
		if o == shifter.RowParallel {
			// Column blockIdx, rows = block-rows: a strided gather.
			for i := 0; i < g; i++ {
				dst.Set(d*g+i, xs[d].Get(i, blockIdx))
			}
		} else {
			// Row blockIdx, cols = block-cols: one word-level range copy.
			dst.CopyRange(d*g, xs[d].Mat().Row(blockIdx), 0, g)
		}
		xs[d].Tick() // one access cycle per crossbar
	}
}

// writeCheckVec writes the packed d-major vector back (dual of checkVec).
func (c *CMEM) writeCheckVec(f shifter.Family, o shifter.Orientation, blockIdx int, v *bitmat.Vec) {
	xs := c.family(f)
	g := c.geom.BlocksPerSide()
	for d := 0; d < c.cfg.M; d++ {
		for i := 0; i < g; i++ {
			bit := v.Get(d*g + i)
			if o == shifter.RowParallel {
				xs[d].Set(i, blockIdx, bit)
			} else {
				xs[d].Set(blockIdx, i, bit)
			}
		}
		xs[d].Tick()
	}
}

func (c *CMEM) family(f shifter.Family) []*xbar.Crossbar {
	if f == shifter.Leading {
		return c.lead
	}
	return c.counter
}

// routePacked runs a MEM-order vector through the shifter and packs the m
// diagonal vectors d-major into the CMEM's routing scratch vector (valid
// until the next routePacked call).
func (c *CMEM) routePacked(data *bitmat.Vec, shift int, f shifter.Family, o shifter.Orientation) *bitmat.Vec {
	c.sh.RoutePacked(c.routeScratch, data, shift, f, o)
	return c.routeScratch
}
