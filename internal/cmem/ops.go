package cmem

import (
	"fmt"

	"repro/internal/bitmat"
	"repro/internal/ecc"
	"repro/internal/shifter"
	"repro/internal/xbar"
)

// This file implements the two CMEM operations the paper defines:
//
//   - UpdateCritical — steps 1 and 3 of the critical-operation protocol:
//     cancel the old data's effect on the check bits and add the new
//     data's effect, computed as check ⊕ old ⊕ new with one XOR3 per
//     family in a processing crossbar.
//   - CheckLine — the before-execution ECC check of a whole row (column)
//     of blocks: copy the m constituent MEM lines into a processing
//     crossbar, XOR them down to recomputed parities, fold in the stored
//     check bits to form syndromes, flag non-zero syndromes in the
//     checking crossbar, and let the controller decode + correct.

// CriticalUpdate captures the data movement of one critical MEM operation
// for the CMEM: the written line's old and new contents.
type CriticalUpdate struct {
	Orientation shifter.Orientation
	Index       int         // the written column (RowParallel) or row (ColParallel)
	Old, New    *bitmat.Vec // full line contents before/after (length n)
}

// UpdateCritical performs the check-bit update for one critical operation
// on processing crossbar pc. The PC receives the old data, new data and
// current check bits (routed through the shifters / connection unit),
// computes XOR3 in 8 NOR cycles per family, and writes the result back to
// the check-bit crossbars.
func (c *CMEM) UpdateCritical(pcID int, u CriticalUpdate) {
	if pcID < 0 || pcID >= len(c.pcs) {
		panic(fmt.Sprintf("cmem: processing crossbar %d out of range [0,%d)", pcID, len(c.pcs)))
	}
	if u.Old.Len() != c.cfg.N || u.New.Len() != c.cfg.N {
		panic("cmem: critical update vectors must have length n")
	}
	pc := c.pcs[pcID]
	shift := u.Index % c.cfg.M
	blockIdx := u.Index / c.cfg.M

	for _, f := range []shifter.Family{shifter.Leading, shifter.Counter} {
		strip := pc.lead
		if f == shifter.Counter {
			strip = pc.counter
		}
		// Transfers into the PC: old data, new data, check bits. Each is a
		// parallel line transfer through the shifters (MAGIC-NOT-like, one
		// cycle each). Routing stages through a single scratch vector, so
		// each routed line is written to the strip before the next route.
		strip.WriteRow(xbar.XOR3RowA, c.routePacked(u.Old, shift, f, u.Orientation))
		strip.WriteRow(xbar.XOR3RowB, c.routePacked(u.New, shift, f, u.Orientation))
		c.checkVecInto(c.routeScratch, f, u.Orientation, blockIdx)
		strip.WriteRow(xbar.XOR3RowC, c.routeScratch)
		c.xferCyc += 3

		strip.XOR3Cols(0, c.allCols)

		// Write-back through the connection unit (read-only, so the live
		// strip row needs no defensive copy).
		c.writeCheckVec(f, u.Orientation, blockIdx, strip.Mat().Row(xbar.XOR3RowOut))
		c.xferCyc++
	}
}

// PCBusyCycles is the number of cycles a processing crossbar is occupied
// per critical operation under the sequential-family schedule: per family,
// 3 transfer-in cycles + 1 init + 8 NOR cycles + 1 write-back.
const PCBusyCycles = 2 * (3 + 1 + xbar.XOR3CyclesPerBit + 1)

// CriticalUpdateMEMCycles is the number of cycles MEM itself is occupied
// by one critical operation: the old-value and new-value transfers into
// the processing crossbar. The XOR3 delta fold runs inside the PC
// pipeline (PCBusyCycles), overlapped with subsequent MEM operations, so
// from the memory's point of view a critical update costs only the two
// copies — the Θ(1) claim the serving layer's compute cost model charges.
const CriticalUpdateMEMCycles = 2

// CheckLine verifies and repairs one row of blocks (orientation
// RowParallel checks block-column `blockIdx`; ColParallel checks block-row
// `blockIdx`... following the paper we describe the block-row case). The
// m MEM lines of the block line are copied into processing crossbar pcID
// (m MAGIC NOT transfers — the only cycles during which MEM is occupied),
// parities are recomputed with an XOR3 accumulation tree, stored check
// bits are folded in to give syndromes, non-zero block syndromes are
// flagged via the checking crossbar, and single errors are corrected
// directly in mem and in the check-bit crossbars.
//
// It returns the per-block diagnoses for blocks that were not clean.
func (c *CMEM) CheckLine(mem *xbar.Crossbar, o shifter.Orientation, blockIdx int, pcID int) map[int]ecc.Diagnosis {
	if pcID < 0 || pcID >= len(c.pcs) {
		panic(fmt.Sprintf("cmem: processing crossbar %d out of range", pcID))
	}
	m, g := c.cfg.M, c.geom.BlocksPerSide()
	pc := c.pcs[pcID]

	// Recompute parities per family by accumulating the m routed lines.
	var synLead, synCounter *bitmat.Vec
	for _, f := range []shifter.Family{shifter.Leading, shifter.Counter} {
		strip := pc.lead
		if f == shifter.Counter {
			strip = pc.counter
		}
		acc := c.accScratch // parity accumulator (starts zero)
		acc.Zero()
		for l := 0; l < m; l++ {
			var line *bitmat.Vec
			if o == shifter.ColParallel {
				// Checking block-row blockIdx: copy MEM row blockIdx·m+l.
				line = mem.ReadRow(blockIdx*m + l)
			} else {
				// Checking block-column blockIdx: copy MEM column.
				line = mem.Mat().Col(blockIdx*m + l)
				mem.Tick() // column transfer occupies MEM one cycle
			}
			routed := c.routePacked(line, l, f, o)
			c.xferCyc++

			// Fold into the accumulator with XOR3(acc, routed, 0) executed
			// in the PC strip; pairs of lines could share one XOR3, which
			// the cycle model below accounts for.
			strip.WriteRow(xbar.XOR3RowA, acc)
			strip.WriteRow(xbar.XOR3RowB, routed)
			strip.ClearRowInCols(xbar.XOR3RowC, c.allCols)
			strip.XOR3Cols(0, c.allCols)
			acc.CopyFrom(strip.Mat().Row(xbar.XOR3RowOut))
		}
		// Fold in the stored check bits: syndrome = parity ⊕ check.
		c.checkVecInto(c.routeScratch, f, o, blockIdx)
		strip.WriteRow(xbar.XOR3RowA, acc)
		strip.WriteRow(xbar.XOR3RowB, c.routeScratch)
		strip.ClearRowInCols(xbar.XOR3RowC, c.allCols)
		strip.XOR3Cols(0, c.allCols)
		if f == shifter.Leading {
			synLead = strip.Mat().Row(xbar.XOR3RowOut).Clone()
		} else {
			synCounter = strip.Mat().Row(xbar.XOR3RowOut).Clone()
		}
	}

	// Transfer syndromes to the checking crossbar (leading family in cells
	// [0,n), counter in [n,2n)) as two word-level range copies.
	checkRow := c.checking.Mat().Row(0)
	checkRow.CopyRange(0, synLead, 0, c.cfg.N)
	checkRow.CopyRange(c.cfg.N, synCounter, 0, c.cfg.N)
	c.checking.Tick() // syndrome transfer cycle
	// Zero-compare of each block's 2m syndrome bits via a MAGIC NOR
	// reduction tree; modeled as ceil(log2(2m))+1 cycles.
	for k := 1; k < 2*m; k *= 2 {
		c.checking.Tick()
	}
	c.checking.Tick()

	// Controller: decode flagged blocks and correct (Section IV-A4).
	out := make(map[int]ecc.Diagnosis)
	for b := 0; b < g; b++ {
		lead := bitmat.NewVec(m)
		counter := bitmat.NewVec(m)
		for d := 0; d < m; d++ {
			lead.Set(d, synLead.Get(d*g+b))
			counter.Set(d, synCounter.Get(d*g+b))
		}
		if !lead.Any() && !counter.Any() {
			continue
		}
		diag := ecc.Decode(c.geom, lead, counter)
		c.correct(mem, o, blockIdx, b, diag)
		out[b] = diag
	}
	return out
}

// correct applies a decoded repair for the block at line position b of the
// checked block line.
func (c *CMEM) correct(mem *xbar.Crossbar, o shifter.Orientation, blockIdx, b int, d ecc.Diagnosis) {
	var br, bc int
	if o == shifter.ColParallel {
		br, bc = blockIdx, b
	} else {
		br, bc = b, blockIdx
	}
	switch d.Kind {
	case ecc.DataError:
		mem.Write(br*c.cfg.M+d.LR, bc*c.cfg.M+d.LC, !mem.Get(br*c.cfg.M+d.LR, bc*c.cfg.M+d.LC))
	case ecc.LeadCheckError:
		c.lead[d.Diag].Write(br, bc, !c.lead[d.Diag].Get(br, bc))
	case ecc.CounterCheckError:
		c.counter[d.Diag].Write(br, bc, !c.counter[d.Diag].Get(br, bc))
	}
}

// CheckLineMEMCycles is the number of cycles MEM is occupied by one
// CheckLine: the m line copies out of MEM. Everything afterwards runs in
// the CMEM pipeline while MEM proceeds with non-critical work.
func CheckLineMEMCycles(m int) int { return m }
