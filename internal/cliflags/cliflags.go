// Package cliflags unifies the flag surface shared by the repro CLIs
// (cmd/campaign, cmd/loadgen, cmd/fleetbench): the mMPU geometry, the
// -ecc scheme selector, -seed, -workers, and the telemetry pair
// (-telemetry for the in-report snapshot, -listen for the live
// /metrics + /trace + pprof endpoint). Each CLI keeps its own defaults —
// the geometries genuinely differ — but the flag names, usage strings,
// parsing, and error behavior stay identical everywhere, so a flag
// learned on one tool works unchanged on the others.
package cliflags

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/ecc"
	"repro/internal/repair"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

// Geometry is the mMPU sizing every CLI exposes.
type Geometry struct {
	N, M, K, Banks, PerBank int
}

// RegisterGeometry binds the geometry flags with the CLI's defaults.
func RegisterGeometry(fs *flag.FlagSet, g *Geometry, def Geometry) {
	fs.IntVar(&g.N, "n", def.N, "crossbar side (multiple of m)")
	fs.IntVar(&g.M, "m", def.M, "ECC block side (odd)")
	fs.IntVar(&g.K, "k", def.K, "processing crossbars per machine")
	fs.IntVar(&g.Banks, "banks", def.Banks, "number of banks")
	fs.IntVar(&g.PerBank, "perbank", def.PerBank, "crossbars per bank")
}

// ECC is the -ecc flag: a scheme name or a bool-compatible value,
// resolved after parsing.
type ECC struct {
	raw     string
	Scheme  string // resolved scheme name ("" only before Resolve)
	Enabled bool   // false = the unprotected baseline
}

// RegisterECC binds the -ecc flag.
func RegisterECC(fs *flag.FlagSet, e *ECC) {
	fs.StringVar(&e.raw, "ecc", "diagonal",
		"protection scheme: "+strings.Join(ecc.SchemeNames(), ", ")+
			" (true = diagonal; false/none = unprotected baseline)")
}

// ResolveErr parses the raw -ecc value (call after fs.Parse).
func (e *ECC) ResolveErr() error {
	scheme, on, err := ecc.ParseSchemeFlag(e.raw)
	if err != nil {
		return err
	}
	e.Scheme, e.Enabled = scheme, on
	return nil
}

// Resolve is ResolveErr with the CLIs' historical usage-error behavior:
// print to stderr and exit 2.
func (e *ECC) Resolve() {
	if err := e.ResolveErr(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}

// Repair is the shared self-healing flag pair: -repair selects the
// policy, -spares the per-crossbar spare budget. The zero value (flags
// unset) resolves to the Off policy, whose repair.Config zero value flows
// through machine/pmem/fleet as the fully disabled state — default
// reports stay byte-identical.
type Repair struct {
	raw    string
	spares int
	Config repair.Config // valid after Resolve
}

// RegisterRepair binds -repair and -spares.
func RegisterRepair(fs *flag.FlagSet, r *Repair) {
	fs.StringVar(&r.raw, "repair", "off",
		"self-healing policy: "+strings.Join(repair.PolicyNames(), ", "))
	fs.IntVar(&r.spares, "spares", repair.DefaultSpares,
		"per-crossbar spare-cell budget for -repair verify+spare (0 = refuse every retirement)")
}

// ResolveErr parses the raw -repair value (call after fs.Parse).
func (r *Repair) ResolveErr() error {
	p, err := repair.ParsePolicy(r.raw)
	if err != nil {
		return err
	}
	spares := r.spares
	if spares <= 0 {
		spares = -1 // -spares 0: an explicitly empty budget, not the default
	}
	r.Config = repair.Config{Policy: p, Spares: spares}
	return nil
}

// Resolve is ResolveErr with the CLIs' usage-error behavior.
func (r *Repair) Resolve() {
	if err := r.ResolveErr(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}

// Traffic is the serve-traffic flag trio of the compute-capable CLIs:
// -compute selects the SIMD kernel, -tenants the multi-tenant mix spec,
// -admit the per-round compute admission budget. The zero value (flags
// unset) is fully off — single-tenant legacy traffic, no compute, FIFO
// admission — so default reports stay byte-identical.
type Traffic struct {
	Compute string
	Tenants string
	Admit   int64

	Mixes []serve.TenantMix // valid after Resolve
}

// RegisterTraffic binds -compute, -tenants, and -admit.
func RegisterTraffic(fs *flag.FlagSet, t *Traffic) {
	fs.StringVar(&t.Compute, "compute", "",
		"SIMD compute kernel for OpCompute traffic: "+strings.Join(serve.ComputeKernelNames(), ", ")+
			" (empty = none; implies a default mixed tenant unless -tenants is set)")
	fs.StringVar(&t.Tenants, "tenants", "",
		`multi-tenant traffic spec "name=read/write/compute,..." — relative weights, normalized per tenant (empty = single tenant)`)
	fs.Int64Var(&t.Admit, "admit", 0,
		"per-round compute admission budget in model ticks; bounds how long a compute burst may starve client requests (0 = FIFO)")
}

// ResolveErr parses the tenant spec (call after fs.Parse). A -compute
// kernel without a -tenants spec resolves to one default mixed tenant
// (40/40/20), so the flag generates compute traffic on its own.
func (t *Traffic) ResolveErr() error {
	spec := t.Tenants
	if spec == "" && t.Compute != "" {
		spec = "mixed=40/40/20"
	}
	mixes, err := serve.ParseTenants(spec)
	if err != nil {
		return err
	}
	t.Mixes = mixes
	return nil
}

// Resolve is ResolveErr with the CLIs' usage-error behavior.
func (t *Traffic) Resolve() {
	if err := t.ResolveErr(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}

// RegisterSeed binds the -seed flag (default 1 everywhere).
func RegisterSeed(fs *flag.FlagSet, seed *int64, usage string) {
	fs.Int64Var(seed, "seed", 1, usage)
}

// RegisterWorkers binds the -workers flag.
func RegisterWorkers(fs *flag.FlagSet, workers *int, usage string) {
	fs.IntVar(workers, "workers", 0, usage)
}

// Telemetry is the shared observability flag pair. The zero value (no
// flag set) is fully off: Registry returns nil, and that nil flows
// through every instrumented layer as the disabled state, keeping
// default reports byte-identical and hot paths at a nil check.
type Telemetry struct {
	Snapshot bool   // -telemetry: embed the snapshot in the report
	Listen   string // -listen: live HTTP endpoint address

	reg *telemetry.Registry
}

// RegisterTelemetry binds -telemetry and -listen.
func RegisterTelemetry(fs *flag.FlagSet, t *Telemetry) {
	fs.BoolVar(&t.Snapshot, "telemetry", false,
		"embed the telemetry snapshot in the report (deterministic at fixed seeds)")
	fs.StringVar(&t.Listen, "listen", "",
		"serve live /metrics (Prometheus), /trace (events), and /debug/pprof on this address, e.g. 127.0.0.1:9090")
}

// Active reports whether any telemetry consumer is configured.
func (t *Telemetry) Active() bool { return t.Snapshot || t.Listen != "" }

// Registry returns the run's registry, created on first use — or nil
// while no consumer is configured.
func (t *Telemetry) Registry() *telemetry.Registry {
	if !t.Active() {
		return nil
	}
	if t.reg == nil {
		t.reg = telemetry.New()
	}
	return t.reg
}

// Serve starts the -listen endpoint (a no-op returning a nil-op stop
// function when -listen is unset) and notes the bound address on stderr.
func (t *Telemetry) Serve() (stop func() error, err error) {
	if t.Listen == "" {
		return func() error { return nil }, nil
	}
	addr, stop, err := telemetry.ListenAndServe(t.Listen, t.Registry())
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "telemetry: serving /metrics, /trace, /debug/pprof on http://%s\n", addr)
	return stop, nil
}

// Wait blocks until SIGINT/SIGTERM when -listen is set, so a finished
// run keeps its live endpoint up for inspection; without -listen it
// returns immediately.
func (t *Telemetry) Wait() {
	if t.Listen == "" {
		return
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	fmt.Fprintln(os.Stderr, "telemetry: run complete; endpoint stays up — interrupt to exit")
	<-ch
}
