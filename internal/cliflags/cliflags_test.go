package cliflags

import (
	"flag"
	"io"
	"testing"

	repairpkg "repro/internal/repair"
)

// newFS returns a quiet FlagSet so usage errors don't pollute test output.
func newFS() *flag.FlagSet {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

// TestGeometryFlags: the geometry flags parse into the struct and fall
// back to the caller's per-CLI defaults.
func TestGeometryFlags(t *testing.T) {
	fs := newFS()
	var g Geometry
	RegisterGeometry(fs, &g, Geometry{N: 90, M: 15, K: 2, Banks: 16, PerBank: 2})
	if err := fs.Parse([]string{"-n", "45", "-banks", "4"}); err != nil {
		t.Fatal(err)
	}
	want := Geometry{N: 45, M: 15, K: 2, Banks: 4, PerBank: 2}
	if g != want {
		t.Fatalf("parsed geometry %+v, want %+v", g, want)
	}
}

// TestECCResolve: the -ecc flag accepts scheme names and bool-compatible
// values, defaults to diagonal, and rejects unknown schemes.
func TestECCResolve(t *testing.T) {
	cases := []struct {
		args    []string
		scheme  string
		enabled bool
		wantErr bool
	}{
		{nil, "diagonal", true, false}, // default
		{[]string{"-ecc", "hamming"}, "hamming", true, false},
		{[]string{"-ecc", "false"}, "", false, false},
		{[]string{"-ecc", "none"}, "", false, false},
		{[]string{"-ecc", "true"}, "diagonal", true, false},
		{[]string{"-ecc", "bogus"}, "", false, true},
	}
	for _, c := range cases {
		fs := newFS()
		var e ECC
		RegisterECC(fs, &e)
		if err := fs.Parse(c.args); err != nil {
			t.Fatalf("%v: parse: %v", c.args, err)
		}
		err := e.ResolveErr()
		if (err != nil) != c.wantErr {
			t.Fatalf("%v: err = %v, wantErr = %v", c.args, err, c.wantErr)
		}
		if err != nil {
			continue
		}
		if e.Scheme != c.scheme || e.Enabled != c.enabled {
			t.Errorf("%v: resolved (%q, %v), want (%q, %v)",
				c.args, e.Scheme, e.Enabled, c.scheme, c.enabled)
		}
	}
}

// TestRepairResolve: the -repair/-spares pair resolves policy spellings,
// keeps the default fully off, and maps -spares 0 to an explicitly empty
// budget (distinct from the unset default).
func TestRepairResolve(t *testing.T) {
	cases := []struct {
		args    []string
		policy  repairpkg.Policy
		budget  int
		wantErr bool
	}{
		{nil, repairpkg.Off, repairpkg.DefaultSpares, false}, // default
		{[]string{"-repair", "verify"}, repairpkg.Verify, repairpkg.DefaultSpares, false},
		{[]string{"-repair", "verify+spare", "-spares", "3"}, repairpkg.VerifySpare, 3, false},
		{[]string{"-repair", "verify+spare", "-spares", "0"}, repairpkg.VerifySpare, 0, false},
		{[]string{"-repair", "bogus"}, repairpkg.Off, 0, true},
	}
	for _, c := range cases {
		fs := newFS()
		var r Repair
		RegisterRepair(fs, &r)
		if err := fs.Parse(c.args); err != nil {
			t.Fatalf("%v: parse: %v", c.args, err)
		}
		err := r.ResolveErr()
		if (err != nil) != c.wantErr {
			t.Fatalf("%v: err = %v, wantErr = %v", c.args, err, c.wantErr)
		}
		if err != nil {
			continue
		}
		if r.Config.Policy != c.policy || r.Config.SpareBudget() != c.budget {
			t.Errorf("%v: resolved (%v, budget %d), want (%v, %d)",
				c.args, r.Config.Policy, r.Config.SpareBudget(), c.policy, c.budget)
		}
	}
	var zero Repair
	if zero.Config.Enabled() {
		t.Fatal("zero-value Repair must resolve to the Off policy")
	}
}

// TestSeedWorkersDefaults: the shared defaults every CLI inherits.
func TestSeedWorkersDefaults(t *testing.T) {
	fs := newFS()
	var seed int64
	var workers int
	RegisterSeed(fs, &seed, "rng seed")
	RegisterWorkers(fs, &workers, "worker count")
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if seed != 1 || workers != 0 {
		t.Fatalf("defaults seed=%d workers=%d, want 1 and 0", seed, workers)
	}
	if err := fs.Parse([]string{"-seed", "7", "-workers", "3"}); err != nil {
		t.Fatal(err)
	}
	if seed != 7 || workers != 3 {
		t.Fatalf("parsed seed=%d workers=%d, want 7 and 3", seed, workers)
	}
}

// TestTelemetryInactive: with neither -telemetry nor -listen, the pair
// stays fully off — a nil registry is the disabled state everywhere
// downstream, and Serve/Wait are no-ops.
func TestTelemetryInactive(t *testing.T) {
	fs := newFS()
	var tel Telemetry
	RegisterTelemetry(fs, &tel)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if tel.Active() {
		t.Fatal("zero-value Telemetry reports active")
	}
	if tel.Registry() != nil {
		t.Fatal("inactive Telemetry built a registry")
	}
	stop, err := tel.Serve()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	tel.Wait() // must return immediately without -listen
}

// TestTelemetryActive: either flag activates the pair and the registry
// is created once and shared.
func TestTelemetryActive(t *testing.T) {
	fs := newFS()
	var tel Telemetry
	RegisterTelemetry(fs, &tel)
	if err := fs.Parse([]string{"-telemetry"}); err != nil {
		t.Fatal(err)
	}
	if !tel.Active() {
		t.Fatal("-telemetry did not activate")
	}
	reg := tel.Registry()
	if reg == nil {
		t.Fatal("active Telemetry returned nil registry")
	}
	if tel.Registry() != reg {
		t.Fatal("Registry not stable across calls")
	}

	fs = newFS()
	tel = Telemetry{}
	RegisterTelemetry(fs, &tel)
	if err := fs.Parse([]string{"-listen", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	if !tel.Active() || tel.Registry() == nil {
		t.Fatal("-listen did not activate telemetry")
	}
}

// TestTelemetryServe: -listen binds a real endpoint and stop shuts it
// down; port 0 keeps the test free of fixed-port collisions.
func TestTelemetryServe(t *testing.T) {
	fs := newFS()
	var tel Telemetry
	RegisterTelemetry(fs, &tel)
	if err := fs.Parse([]string{"-listen", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	stop, err := tel.Serve()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}
