package serve

import (
	"fmt"
	"math/rand"

	"repro/internal/mmpu"
)

// TimedReq is one request of a generated trace. In an open-loop trace At
// is the arrival tick of the Poisson process; in a closed-loop trace At
// is the client round index (a client's round-r request becomes eligible
// when its round r−1 request completes).
type TimedReq struct {
	At     int64
	Client int
	Tenant int // index into the trace's tenant list (0 for legacy traffic)
	Req    Request
}

// Trace is a deterministic request schedule, pre-partitioned by bank.
// Traffic is bank-confined: every request lies within one bank's address
// range (the interleaving a channel-partitioned memory controller
// produces), which is what makes per-bank virtual-time replay exact under
// any worker count — no request's outcome depends on another bank's
// progress.
type Trace struct {
	Mode    string // "open" | "closed"
	PerBank [][]TimedReq

	// Tenants names the trace's tenant streams, index-aligned with
	// TimedReq.Tenant; nil for single-tenant legacy traffic.
	Tenants []string
	// Plan is the shared compute pipeline every OpCompute request of the
	// trace executes; nil when no tenant issues compute.
	Plan *ComputePlan
}

// Requests returns the total request count across banks.
func (t *Trace) Requests() int {
	n := 0
	for _, b := range t.PerBank {
		n += len(b)
	}
	return n
}

// TraceOpts parameterizes trace generation. The trace is a pure function
// of (organization, opts): the same seed reproduces it bit for bit.
type TraceOpts struct {
	Mode      string  // "open" (Poisson arrivals, default) or "closed" (lockstep clients)
	Mix       string  // address mix: "uniform" (default), "zipf", "scan"
	Requests  int     // total requests (default 1024)
	Clients   int     // client streams (default 4)
	Rate      float64 // open loop: mean arrivals per tick (default 0.05)
	WriteFrac float64 // fraction of writes (default 0.5)
	Width     int     // request width in bits, 1..64 (default 64)
	Seed      int64

	// Tenants, when non-empty, generates multi-tenant traffic: clients
	// round-robin over the tenant list (client c belongs to tenant
	// c % len(Tenants)) and each tenant draws its op from its own
	// read/write/compute mix. Empty keeps the legacy single-tenant
	// traffic byte-identical.
	Tenants []TenantMix
	// Compute names the kernel compute requests execute
	// (BuildComputePlan; default "search" when any tenant computes).
	Compute string
}

// withDefaults resolves zero values.
func (o TraceOpts) withDefaults() TraceOpts {
	if o.Mode == "" {
		o.Mode = "open"
	}
	if o.Mix == "" {
		o.Mix = "uniform"
	}
	if o.Requests <= 0 {
		o.Requests = 1024
	}
	if o.Clients <= 0 {
		o.Clients = 4
	}
	if o.Rate <= 0 {
		o.Rate = 0.05
	}
	if o.WriteFrac < 0 || o.WriteFrac > 1 {
		o.WriteFrac = 0.5
	}
	if o.Width == 0 {
		o.Width = 64
	}
	return o
}

// MixNames lists the built-in address mixes for CLI usage text.
func MixNames() []string { return []string{"uniform", "zipf", "scan"} }

// ModeNames lists the client models for CLI usage text.
func ModeNames() []string { return []string{"open", "closed"} }

// addrGen draws bank-confined addresses for one traffic mix.
type addrGen struct {
	org      mmpu.Organization
	width    int64
	zipf     *rand.Zipf
	bankZipf *rand.Zipf // zipf over one bank's word range (closed loop)
	cursors  []int64    // scan: per-client position
}

func newAddrGen(org mmpu.Organization, o TraceOpts, rng *rand.Rand) *addrGen {
	g := &addrGen{org: org, width: int64(o.Width)}
	switch o.Mix {
	case "zipf":
		// Hot 64-bit slots, heaviest first — hot-row (and hot-bank) traffic.
		g.zipf = rand.NewZipf(rng, 1.2, 8, uint64(org.DataBits()/64-1))
		// Bank-confined variant for closed-loop home addressing: the zipf
		// support is one bank's word range, so the head concentrates at
		// each bank's start instead of a global-range sample smeared
		// mod-bankBits across the bank. (NewZipf draws nothing from rng,
		// so open-loop streams are unchanged by the extra generator.)
		g.bankZipf = rand.NewZipf(rng, 1.2, 8, uint64(org.BankBits()/64-1))
	case "scan":
		g.cursors = make([]int64, o.Clients)
		span := org.DataBits() / int64(o.Clients)
		for c := range g.cursors {
			if start := int64(c) * span; start+g.width <= org.DataBits() {
				g.cursors[c] = start
			}
		}
	}
	return g
}

// clampBank pulls the span [addr, addr+width) inside its bank.
func (g *addrGen) clampBank(addr int64) int64 {
	end := (addr/g.org.BankBits() + 1) * g.org.BankBits()
	if addr+g.width > end {
		addr = end - g.width
	}
	return addr
}

// next draws the next address for a client.
func (g *addrGen) next(client int, rng *rand.Rand) int64 {
	switch {
	case g.zipf != nil:
		return g.clampBank(int64(g.zipf.Uint64()) * 64)
	case g.cursors != nil:
		a := g.cursors[client]
		g.cursors[client] += g.width
		if g.cursors[client]+g.width > g.org.DataBits() {
			g.cursors[client] = 0
		}
		return g.clampBank(a)
	default:
		return g.clampBank(rng.Int63n(g.org.DataBits() - g.width + 1))
	}
}

// homeAddr draws a bank-b-confined address for closed-loop clients.
func (g *addrGen) homeAddr(client, bank int, rng *rand.Rand) int64 {
	bankBits := g.org.BankBits()
	lo := int64(bank) * bankBits
	switch {
	case g.zipf != nil:
		return g.clampBank(lo + int64(g.bankZipf.Uint64())*64)
	case g.cursors != nil:
		a := g.cursors[client] % bankBits
		g.cursors[client] += g.width
		return g.clampBank(lo + a)
	default:
		return g.clampBank(lo + rng.Int63n(bankBits-g.width+1))
	}
}

// GenTrace builds a deterministic request trace over the organization.
func GenTrace(org mmpu.Organization, o TraceOpts) (*Trace, error) {
	o = o.withDefaults()
	if err := org.Validate(); err != nil {
		return nil, err
	}
	if o.Width < 1 || o.Width > 64 {
		return nil, fmt.Errorf("serve: trace width %d not in [1,64]", o.Width)
	}
	switch o.Mix {
	case "uniform", "zipf", "scan":
	default:
		return nil, fmt.Errorf("serve: unknown mix %q (have %v)", o.Mix, MixNames())
	}
	tr := &Trace{Mode: o.Mode, PerBank: make([][]TimedReq, org.Banks)}

	// Resolve the tenant streams. Legacy single-tenant traffic is the
	// one-element read/write mix below: its op draw (one Float64 against
	// WriteFrac, one Uint64 per write) reproduces the historical rng
	// sequence exactly, so traces without TraceOpts.Tenants stay
	// byte-identical to pre-tenant generations.
	var tenants []TenantMix
	if len(o.Tenants) == 0 {
		tenants = []TenantMix{{ReadFrac: 1 - o.WriteFrac, WriteFrac: o.WriteFrac}}
	} else {
		tenants = append(tenants, o.Tenants...) // normalize a copy, not the caller's slice
		for i := range tenants {
			if tenants[i].ReadFrac+tenants[i].WriteFrac+tenants[i].ComputeFrac <= 0 {
				return nil, fmt.Errorf("serve: tenant %q has no positive weights", tenants[i].Name)
			}
			tenants[i] = tenants[i].normalized()
		}
		tr.Tenants = make([]string, len(tenants))
		computes := false
		for i, t := range tenants {
			tr.Tenants[i] = t.Name
			computes = computes || t.ComputeFrac > 0
		}
		if computes {
			kernel := o.Compute
			if kernel == "" {
				kernel = "search"
			}
			plan, err := BuildComputePlan(kernel, org.CrossbarN, o.Seed)
			if err != nil {
				return nil, err
			}
			tr.Plan = plan
		}
	}

	rng := rand.New(rand.NewSource(o.Seed))
	gen := newAddrGen(org, o, rng)
	// draw builds one request for a client: address first, then the op
	// split (read below WriteFrac+...: the single Float64 keeps the
	// legacy stream), payload only for writes.
	draw := func(tenant int, addr int64) Request {
		mix := tenants[tenant]
		req := Request{Op: OpRead, Addr: addr, Width: o.Width}
		u := rng.Float64()
		switch {
		case u < mix.WriteFrac:
			req.Op = OpWrite
			req.Data = rng.Uint64()
		case u < mix.WriteFrac+mix.ComputeFrac:
			req.Op = OpCompute
			req.Width = 0
			req.Plan = tr.Plan
		}
		return req
	}
	switch o.Mode {
	case "open":
		// Poisson arrivals: exponential inter-arrival gaps at the target
		// rate, one global clock, requests landing in their bank's queue.
		var t float64
		for i := 0; i < o.Requests; i++ {
			t += rng.ExpFloat64() / o.Rate
			client := i % o.Clients
			tenant := client % len(tenants)
			req := draw(tenant, gen.next(client, rng))
			bank := req.Addr / org.BankBits()
			tr.PerBank[bank] = append(tr.PerBank[bank], TimedReq{
				At: int64(t), Client: client, Tenant: tenant, Req: req,
			})
		}
	case "closed":
		// Lockstep closed loop: each client is pinned to a home bank and
		// issues its round-r request when round r−1 completes.
		rounds := (o.Requests + o.Clients - 1) / o.Clients
		for r := 0; r < rounds; r++ {
			for c := 0; c < o.Clients; c++ {
				if r*o.Clients+c >= o.Requests {
					break
				}
				bank := c % org.Banks
				tenant := c % len(tenants)
				req := draw(tenant, gen.homeAddr(c, bank, rng))
				tr.PerBank[bank] = append(tr.PerBank[bank], TimedReq{
					At: int64(r), Client: c, Tenant: tenant, Req: req,
				})
			}
		}
	default:
		return nil, fmt.Errorf("serve: unknown mode %q (have %v)", o.Mode, ModeNames())
	}
	return tr, nil
}
