package serve

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/bitmat"
	"repro/internal/circuits"
	"repro/internal/fleet"
	"repro/internal/machine"
	"repro/internal/netlist"
	"repro/internal/pmem"
	"repro/internal/synth"
)

// ComputePlan is a prepared SIMD compute pipeline: a SIMPLER mapping plus
// the row-selection mask it executes over. One plan is shared by every
// OpCompute request of a trace — the mapping is immutable after synthesis
// and machine.ExecuteSIMD only reads it, so sharing is safe across banks
// and workers. The request's address selects the target crossbar; the
// crossbar's cells [0, Mapping.RowSize) in the selected rows are the
// pipeline's working region (treated as scratch by the serving layer).
type ComputePlan struct {
	Kernel  string
	Mapping *synth.Mapping
	Rows    *bitmat.Vec // row-selection mask (all rows by default)
}

// searchKeyW is the key width of the built-in associative-search kernel
// (the examples/simdsearch matcher).
const searchKeyW = 12

// ComputeKernelNames lists the built-in compute kernels for CLI usage
// text: "search" plus every Table I circuit small enough to be useful.
func ComputeKernelNames() []string {
	names := []string{"search"}
	for _, b := range circuits.All() {
		names = append(names, b.Name)
	}
	return names
}

// BuildComputePlan synthesizes the named kernel for n-cell crossbar rows.
// "search" builds the associative-search matcher (key == query, the query
// derived deterministically from seed); any other name resolves a Table I
// benchmark circuit (circuits.ByName), lowered to NOR and SIMPLER-mapped.
// Circuits that do not fit an n-cell row fail with the mapper's error.
func BuildComputePlan(name string, n int, seed int64) (*ComputePlan, error) {
	var nl *netlist.Netlist
	switch name {
	case "":
		return nil, fmt.Errorf("serve: empty compute kernel name")
	case "search":
		// splitmix64 of the seed → a fixed query; NewZipf-style stateless
		// derivation keeps the plan a pure function of (name, n, seed).
		x := uint64(seed) + 0x9e3779b97f4a7c15
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		nl = buildMatcher((x ^ (x >> 31)) & ((1 << searchKeyW) - 1))
	default:
		b, ok := circuits.ByName(name)
		if !ok {
			return nil, fmt.Errorf("serve: unknown compute kernel %q (have %v)",
				name, ComputeKernelNames())
		}
		nl = b.Build()
	}
	mp, err := synth.Map(nl.LowerToNOR(), n)
	if err != nil {
		return nil, fmt.Errorf("serve: kernel %q does not fit %d-cell rows: %w", name, n, err)
	}
	rows := bitmat.NewVec(n)
	rows.Fill(true)
	return &ComputePlan{Kernel: name, Mapping: mp, Rows: rows}, nil
}

// buildMatcher builds `key == query`: each key bit contributes itself or
// its complement to an AND reduction (the simdsearch matcher circuit).
func buildMatcher(query uint64) *netlist.Netlist {
	b := netlist.NewBuilder("matcher")
	key := b.InputBus(searchKeyW)
	match := b.Const(true)
	for i := 0; i < searchKeyW; i++ {
		lit := key[i]
		if query&(1<<uint(i)) == 0 {
			lit = b.Not(lit)
		}
		match = b.And(match, lit)
	}
	b.Output(match)
	return b.Build()
}

// computeCostFor resolves the modeled per-plan compute cost for a memory
// configuration (machine.Config.ComputeCost, memoized per distinct plan).
// It is the shared currency of the live server's and the replay's
// admission budgets, so -admit means the same thing in both regimes.
func computeCostFor(cfg pmem.Config) func(*ComputePlan) int64 {
	mc := machine.Config{
		N: cfg.Org.CrossbarN, M: cfg.M, K: cfg.K,
		ECCEnabled: cfg.ECCEnabled, Scheme: cfg.Scheme,
	}
	cache := map[*ComputePlan]int64{}
	return func(p *ComputePlan) int64 {
		if p == nil || p.Mapping == nil {
			return 1
		}
		c, ok := cache[p]
		if !ok {
			c = mc.ComputeCost(p.Mapping)
			cache[p] = c
		}
		return c
	}
}

// TenantMix is one tenant's traffic composition. The weights are relative
// (any non-negative numbers; they are normalized over their sum), so
// "50/50/0" and "1/1/0" describe the same read/write tenant.
type TenantMix struct {
	Name        string
	ReadFrac    float64
	WriteFrac   float64
	ComputeFrac float64
}

// normalized returns the mix with weights scaled to sum to 1.
func (t TenantMix) normalized() TenantMix {
	sum := t.ReadFrac + t.WriteFrac + t.ComputeFrac
	t.ReadFrac /= sum
	t.WriteFrac /= sum
	t.ComputeFrac /= sum
	return t
}

// ParseTenants parses a multi-tenant traffic spec of the form
// "name=read/write/compute,name=read/write/compute,..." — e.g.
// "web=60/40/0,batch=10/10/80". Weights are relative non-negative
// numbers normalized per tenant; names must be unique and non-empty.
// An empty spec yields nil (single-tenant legacy traffic).
func ParseTenants(spec string) ([]TenantMix, error) {
	if spec == "" {
		return nil, nil
	}
	var out []TenantMix
	seen := map[string]bool{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.IndexByte(part, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("serve: tenant %q: want name=read/write/compute", part)
		}
		name := strings.TrimSpace(part[:eq])
		if seen[name] {
			return nil, fmt.Errorf("serve: duplicate tenant %q", name)
		}
		seen[name] = true
		ws := strings.Split(part[eq+1:], "/")
		if len(ws) != 3 {
			return nil, fmt.Errorf("serve: tenant %q: want three /-separated weights, got %d", name, len(ws))
		}
		var w [3]float64
		sum := 0.0
		for i, s := range ws {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("serve: tenant %q: bad weight %q", name, s)
			}
			w[i] = v
			sum += v
		}
		if sum == 0 {
			return nil, fmt.Errorf("serve: tenant %q: all weights zero", name)
		}
		out = append(out, TenantMix{Name: name, ReadFrac: w[0], WriteFrac: w[1], ComputeFrac: w[2]})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("serve: empty tenant spec %q", spec)
	}
	return out, nil
}

// TenantStats is one tenant's served-traffic tally. Index-aligned slices
// of TenantStats merge field-wise (Stats.Merge), so per-worker tallies
// combine into a per-tenant total in any order.
type TenantStats struct {
	Name     string
	Requests int64
	Reads    int64
	Writes   int64
	Computes int64
	Errors   int64
	Lat      fleet.Hist // same time base as Stats.Lat
}

// mergeTenants combines index-aligned per-tenant tallies field-wise.
func mergeTenants(a, b []TenantStats) []TenantStats {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		a = make([]TenantStats, len(b))
	}
	for i := range b {
		if a[i].Name == "" {
			a[i].Name = b[i].Name
		}
		a[i].Requests += b[i].Requests
		a[i].Reads += b[i].Reads
		a[i].Writes += b[i].Writes
		a[i].Computes += b[i].Computes
		a[i].Errors += b[i].Errors
		a[i].Lat = a[i].Lat.Merge(b[i].Lat)
	}
	return a
}
