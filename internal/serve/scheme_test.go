package serve

// The serving layer over non-diagonal schemes: pmem.Config.Scheme threads
// the backend through every machine, and the deterministic replay — the
// loadgen report's engine — must reproduce exactly and keep correcting
// (hamming) or merely flagging (parity) the fault overlay's soft errors.

import (
	"reflect"
	"testing"

	"repro/internal/ecc"
	"repro/internal/mmpu"
	"repro/internal/pmem"
)

// schemeMem builds a protected memory over a named scheme. The 60×60
// geometry is accepted by every registered scheme, interleaved widths
// included.
func schemeMem(t *testing.T, scheme string) *pmem.Memory {
	t.Helper()
	mem, err := pmem.New(pmem.Config{
		Org: mmpu.Custom(60, 8, 2), M: 15, K: 2, ECCEnabled: true, Scheme: scheme,
	})
	if err != nil {
		t.Fatal(err)
	}
	return mem
}

// TestWriteSurcharge pins the serving clock's scheme pricing: delta
// schemes (the diagonal family, parity) ride the historical costWrite
// unchanged — surcharge exactly zero, so default replays and their golden
// reports stay byte-identical — while word-recode schemes pay their
// M−2 extra update reads at the open-row rate.
func TestWriteSurcharge(t *testing.T) {
	for _, tc := range []struct {
		scheme string
		want   int64
	}{
		{"", 0}, // default = diagonal
		{ecc.SchemeDiagonal, 0},
		{ecc.SchemeParity, 0},
		{"diagonal-x2", 0},
		{"diagonal-x4", 0},
		{ecc.SchemeHamming, 13}, // (M−2)·costCoalRead at M=15
		{ecc.SchemeDEC, 13},
	} {
		got := writeSurcharge(pmem.Config{
			Org: mmpu.Custom(60, 2, 1), M: 15, K: 2, ECCEnabled: true, Scheme: tc.scheme,
		})
		if got != tc.want {
			t.Errorf("writeSurcharge(%q) = %d, want %d", tc.scheme, got, tc.want)
		}
	}
	// ECC off: no check bits to maintain, no surcharge.
	if got := writeSurcharge(pmem.Config{Org: mmpu.Custom(60, 2, 1), M: 15}); got != 0 {
		t.Errorf("writeSurcharge(ecc off) = %d, want 0", got)
	}
}

// TestReplaySchemesDeterministicUnderFaults: the same seed reproduces the
// identical Result for each backend, and the backends behave per their
// guarantee under the fault overlay.
func TestReplaySchemesDeterministicUnderFaults(t *testing.T) {
	run := func(scheme string) Result {
		mem := schemeMem(t, scheme)
		tr, err := GenTrace(mem.Config().Org, TraceOpts{
			Mode: "open", Mix: "uniform", Requests: 4000, Clients: 4,
			Rate: 0.5, WriteFrac: 0.5, Width: 30, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Replay(ReplayConfig{
			Mem: mem, Workers: 4, ScrubPeriod: 400, FaultSER: 3e5, Seed: 5,
		}, tr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, scheme := range []string{
		ecc.SchemeDiagonal, ecc.SchemeHamming, ecc.SchemeParity,
		ecc.SchemeDEC, "diagonal-x2", "diagonal-x4",
	} {
		a, b := run(scheme), run(scheme)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: same seed diverged", scheme)
		}
		if a.Stats.Requests != 4000 || a.Stats.Errors != 0 {
			t.Fatalf("%s: served %+v", scheme, a.Stats)
		}
		if a.Stats.Scrubs == 0 || a.Stats.Injected == 0 {
			t.Fatalf("%s: overlay inert: %+v", scheme, a.Stats)
		}
		switch scheme {
		case ecc.SchemeParity:
			if a.Stats.Corrected != 0 {
				t.Fatalf("parity claims corrections: %+v", a.Stats)
			}
			if a.Stats.Uncorrectable == 0 {
				t.Fatalf("parity never flagged the overlay: %+v", a.Stats)
			}
		default:
			if a.Stats.Corrected == 0 {
				t.Fatalf("%s: scrubs never corrected the overlay: %+v", scheme, a.Stats)
			}
		}
	}
}
