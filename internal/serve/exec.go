package serve

import (
	"fmt"

	"repro/internal/bitmat"
	"repro/internal/mmpu"
	"repro/internal/pmem"
)

// execInfo describes how one request was physically served — the facts
// the cost model and the statistics both derive from.
type execInfo struct {
	write     bool
	compute   bool // an OpCompute SIMD pipeline (never coalesced)
	coalesced bool // served from the previous request's open row
	segments  int  // crossbar-row segments touched (1 for in-row requests)
}

// executor turns request streams into pmem accesses. It is the shared
// service core of the live Server and the deterministic Replay engine:
// requests execute strictly in arrival order, but consecutive requests
// hitting the same crossbar row are coalesced into one row
// activation — one AccessRow with a single ECC delta update however many
// requests share the row (the row-buffer model of a DRAM controller,
// here paying off through the paper's Θ(1) diagonal check-bit update).
type executor struct {
	mem *pmem.Memory
	org mmpu.Organization

	// coalesce, when set, observes each multi-request row activation:
	// merged requests served by one open row (the telemetry EvCoalesce
	// hook; nil when tracing is off).
	coalesce func(bank, xb, row, merged int)
}

// singleRow reports whether the request lies entirely within one crossbar
// row, returning its segment. Malformed requests and row-crossing spans
// both take the spanning path, which produces the validation error.
func (ex *executor) singleRow(r Request) (mmpu.Segment, bool) {
	// Addr > DataBits()-Width is the overflow-safe form of Addr+Width >
	// DataBits(): a near-MaxInt64 address must not wrap negative and
	// skate past the guard into Locate. (Width is already in [1,64], so
	// the subtraction cannot itself underflow.)
	if r.Width <= 0 || r.Width > 64 || r.Addr < 0 || r.Addr > ex.org.DataBits()-int64(r.Width) {
		return mmpu.Segment{}, false
	}
	a, err := ex.org.Locate(r.Addr)
	if err != nil || a.Col+r.Width > ex.org.CrossbarN {
		return mmpu.Segment{}, false
	}
	return mmpu.Segment{Bank: a.Bank, Crossbar: a.Crossbar, Row: a.Row, Col: a.Col, Bits: r.Width}, true
}

// runSpanning serves one request through pmem's word path (which walks
// the range segment by segment under the bank locks).
func (ex *executor) runSpanning(r Request) (Response, execInfo) {
	info := execInfo{write: r.Op == OpWrite, segments: 1}
	var resp Response
	if r.Op == OpWrite {
		resp.Err = ex.mem.WriteWord(r.Addr, r.Data, r.Width)
	} else {
		resp.Data, resp.Err = ex.mem.ReadWord(r.Addr, r.Width)
	}
	if resp.Err == nil && r.Width > 0 {
		// Segments break at row ends, every CrossbarN bits: one for the
		// head run plus one per further (possibly partial) row.
		n := ex.org.CrossbarN
		head := n - int(r.Addr%int64(n))
		info.segments = 1
		if rem := r.Width - head; rem > 0 {
			info.segments += (rem + n - 1) / n
		}
	}
	return resp, info
}

// runCompute serves one OpCompute request: the plan's SIMD pipeline runs
// on the crossbar owning the request's address, under that bank's lock.
// Compute never coalesces — each pipeline is its own row-region pass.
func (ex *executor) runCompute(r Request) (Response, execInfo) {
	info := execInfo{compute: true, segments: 1}
	if r.Plan == nil || r.Plan.Mapping == nil {
		return Response{Err: fmt.Errorf("serve: compute request without a plan")}, info
	}
	a, err := ex.org.Locate(r.Addr)
	if err != nil {
		return Response{Err: fmt.Errorf("serve: %w", err)}, info
	}
	rows := r.Plan.Rows
	if rows == nil {
		return Response{Err: fmt.Errorf("serve: compute plan without a row set")}, info
	}
	if err := ex.mem.ExecuteSIMD(a.Bank, a.Crossbar, r.Plan.Mapping, rows); err != nil {
		return Response{Err: err}, info
	}
	return Response{}, info
}

// run executes reqs in arrival order, emitting each request's response
// and execution facts in that same order.
func (ex *executor) run(reqs []Request, emit func(i int, resp Response, info execInfo)) {
	for i := 0; i < len(reqs); {
		if reqs[i].Op == OpCompute {
			resp, info := ex.runCompute(reqs[i])
			emit(i, resp, info)
			i++
			continue
		}
		seg, ok := ex.singleRow(reqs[i])
		if !ok {
			resp, info := ex.runSpanning(reqs[i])
			emit(i, resp, info)
			i++
			continue
		}
		// Extend the run while requests keep hitting the open row.
		cols := []int{seg.Col}
		j := i + 1
		for j < len(reqs) {
			s, ok := ex.singleRow(reqs[j])
			if !ok || s.Bank != seg.Bank || s.Crossbar != seg.Crossbar || s.Row != seg.Row {
				break
			}
			cols = append(cols, s.Col)
			j++
		}
		group := reqs[i:j]
		resps := make([]Response, len(group))
		err := ex.mem.AccessRow(seg.Bank, seg.Crossbar, seg.Row, func(v *bitmat.Vec) bool {
			dirty := false
			for k, r := range group {
				col := cols[k]
				if r.Op == OpWrite {
					for b := 0; b < r.Width; b++ {
						v.Set(col+b, r.Data>>uint(b)&1 != 0)
					}
					dirty = true
				} else {
					// Reads see the group's earlier writes: the row buffer
					// serves read-your-write within the batch.
					resps[k].Data = v.Uint64At(col, r.Width)
				}
			}
			return dirty
		})
		for k := range group {
			if err != nil {
				resps[k] = Response{Err: err}
			}
			emit(i+k, resps[k], execInfo{write: group[k].Op == OpWrite, coalesced: k > 0, segments: 1})
		}
		if len(group) > 1 && ex.coalesce != nil {
			ex.coalesce(seg.Bank, seg.Crossbar, seg.Row, len(group))
		}
		i = j
	}
}
