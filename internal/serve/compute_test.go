package serve

import (
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"

	"repro/internal/mmpu"
	"repro/internal/pmem"
)

// computeMix is the two-tenant contention scenario the admission tests
// share: an interactive read/write tenant and a compute-only batch tenant.
var computeMix = []TenantMix{
	{Name: "client", ReadFrac: 50, WriteFrac: 50},
	{Name: "batch", ComputeFrac: 100},
}

// TestComputeKernels proves every advertised kernel builds a runnable
// plan at the paper geometry (n=90): positive latency, at least one
// critical op, and a full row set.
func TestComputeKernels(t *testing.T) {
	for _, name := range ComputeKernelNames() {
		plan, err := BuildComputePlan(name, 90, 1)
		if err != nil {
			// Kernels wider than the crossbar are allowed to refuse mapping;
			// they must do so loudly, not panic or mis-map.
			t.Logf("kernel %s: %v (unmappable at n=90)", name, err)
			continue
		}
		if plan.Kernel != name || plan.Mapping == nil || plan.Rows == nil {
			t.Fatalf("kernel %s: incomplete plan %+v", name, plan)
		}
		if plan.Mapping.Latency() <= 0 || plan.Mapping.CriticalOps() <= 0 {
			t.Fatalf("kernel %s: degenerate mapping (latency %d, critical %d)",
				name, plan.Mapping.Latency(), plan.Mapping.CriticalOps())
		}
	}
	if _, err := BuildComputePlan("no-such-kernel", 90, 1); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

// TestParseTenants covers the spec grammar and its rejections.
func TestParseTenants(t *testing.T) {
	mixes, err := ParseTenants("client=50/50/0, batch=0/0/100")
	if err != nil {
		t.Fatal(err)
	}
	if len(mixes) != 2 || mixes[0].Name != "client" || mixes[1].Name != "batch" {
		t.Fatalf("parsed %+v", mixes)
	}
	if mixes[1].ComputeFrac <= 0 {
		t.Fatalf("batch compute weight lost: %+v", mixes[1])
	}
	for _, bad := range []string{
		"noequals", "=1/1/1", "a=1/1", "a=1/1/1/1", "a=x/1/1", "a=-1/1/1",
		"a=0/0/0", "a=1/1/1,a=1/1/1",
	} {
		if _, err := ParseTenants(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
	if mixes, err := ParseTenants(""); err != nil || mixes != nil {
		t.Fatalf("empty spec: %v, %+v", err, mixes)
	}
}

// TestMultiTenantReplayDeterministic extends the replay determinism
// contract to compute traffic: at 1, 8, and 32 workers a multi-tenant
// trace with admission control replays byte-identically from the seed,
// and the *served traffic* — total and per-tenant op counts — is
// invariant across worker counts (only queueing may move).
func TestMultiTenantReplayDeterministic(t *testing.T) {
	topts := TraceOpts{
		Mode: "open", Mix: "uniform", Requests: 3000, Clients: 6, Seed: 7,
		Tenants: []TenantMix{
			{Name: "client", ReadFrac: 60, WriteFrac: 30},
			{Name: "etl", ReadFrac: 20, WriteFrac: 20, ComputeFrac: 10},
			{Name: "batch", ComputeFrac: 100},
		},
	}
	rcfg := ReplayConfig{ScrubPeriod: 500, ComputeAdmit: 700}
	var ref Result
	for i, workers := range []int{1, 8, 32} {
		a := replayOnce(t, workers, topts, rcfg)
		b := replayOnce(t, workers, topts, rcfg)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("workers=%d: replay not reproducible", workers)
		}
		if a.Stats.Errors != 0 {
			t.Fatalf("workers=%d: %d errors", workers, a.Stats.Errors)
		}
		if len(a.Stats.Tenants) != 3 {
			t.Fatalf("workers=%d: %d tenant blocks", workers, len(a.Stats.Tenants))
		}
		if i == 0 {
			ref = a
			continue
		}
		if a.Stats.Requests != ref.Stats.Requests || a.Stats.Computes != ref.Stats.Computes {
			t.Fatalf("workers=%d: served traffic moved: %d/%d vs %d/%d computes",
				workers, a.Stats.Requests, a.Stats.Computes, ref.Stats.Requests, ref.Stats.Computes)
		}
		for j := range ref.Stats.Tenants {
			x, y := a.Stats.Tenants[j], ref.Stats.Tenants[j]
			if x.Name != y.Name || x.Requests != y.Requests || x.Reads != y.Reads ||
				x.Writes != y.Writes || x.Computes != y.Computes || x.Errors != y.Errors {
				t.Fatalf("workers=%d: tenant %q counts moved: %+v vs %+v", workers, x.Name, x, y)
			}
		}
	}
	if ref.Stats.Computes == 0 || ref.Stats.ComputeTicks == 0 {
		t.Fatalf("no compute served: %+v", ref.Stats)
	}
}

// TestComputeStormECCConformance replays a compute-heavy mix (no fault
// overlay) under every registered protection scheme, then audits the
// memory: the critical-update protocol plus the post-pipeline reconcile
// must leave check bits consistent everywhere, so a full scrub finds
// nothing to correct.
func TestComputeStormECCConformance(t *testing.T) {
	for _, scheme := range []string{"diagonal", "hamming", "parity"} {
		t.Run(scheme, func(t *testing.T) {
			mem, err := pmem.New(pmem.Config{
				Org: mmpu.Custom(90, 8, 2), M: 15, K: 2, ECCEnabled: true, Scheme: scheme,
			})
			if err != nil {
				t.Fatal(err)
			}
			tr, err := GenTrace(mem.Config().Org, TraceOpts{
				Mode: "open", Mix: "uniform", Requests: 1200, Seed: 11,
				Tenants: computeMix,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := Replay(ReplayConfig{Mem: mem, Workers: 8, ComputeAdmit: 600}, tr)
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.Errors != 0 || res.Stats.Computes == 0 {
				t.Fatalf("served %+v", res.Stats)
			}
			org := mem.Config().Org
			for i := 0; i < org.Banks*org.PerBank; i++ {
				if !mem.Crossbar(i).CheckConsistent() {
					t.Fatalf("crossbar %d inconsistent after compute storm", i)
				}
			}
			if c, u := mem.ScrubAll(); c != 0 || u != 0 {
				t.Fatalf("scrub after compute storm: corrected %d, uncorrectable %d", c, u)
			}
		})
	}
}

// TestAdmissionBoundsClientTail is the tentpole's SLO claim: with a
// compute-monopolizing tenant sharing banks with an interactive tenant,
// the admission budget bounds the client tail. FIFO (budget 0) lets
// client p99 absorb whole compute bursts; a budget two pipelines wide
// must cut it by at least an order of magnitude here.
func TestAdmissionBoundsClientTail(t *testing.T) {
	topts := TraceOpts{
		Mode: "open", Mix: "uniform", Requests: 4000, Clients: 8, Seed: 1,
		Tenants: computeMix,
	}
	clientP99 := func(admit int64) int64 {
		res := replayOnce(t, 8, topts, ReplayConfig{ComputeAdmit: admit})
		if res.Stats.Errors != 0 {
			t.Fatalf("admit=%d: %d errors", admit, res.Stats.Errors)
		}
		return res.Stats.Tenants[0].Lat.Summary().P99
	}
	fifo, bounded := clientP99(0), clientP99(400)
	if bounded*10 > fifo {
		t.Fatalf("admission did not protect the client tail: p99 %d (FIFO) vs %d (admit=400)",
			fifo, bounded)
	}
}

// TestServeComputeUnderClientTraffic is the live-path race proof for
// compute-as-traffic: client goroutines keep read-after-write
// consistency on banks 1..N while a compute tenant streams SIMD
// pipelines into bank 0 through the same workers, under admission
// control. Run with -race this exercises the deferred-compute queue
// discipline; afterward the memory must scrub clean.
func TestServeComputeUnderClientTraffic(t *testing.T) {
	mem := testMem(t, 90, 15, 8, 2)
	org := mem.Config().Org
	plan, err := BuildComputePlan("search", org.CrossbarN, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Mem: mem, Workers: 2, BatchSize: 8, ScrubEvery: 64, ComputeAdmit: 900})
	if err != nil {
		t.Fatal(err)
	}
	const clients, iters = 4, 60
	var wg sync.WaitGroup
	errCh := make(chan error, clients+1)
	wg.Add(1)
	go func() { // the compute tenant, pinned to bank 0
		defer wg.Done()
		for k := 0; k < iters; k++ {
			r := srv.Do(Request{Op: OpCompute, Addr: 0, Plan: plan})
			if r.Err != nil {
				errCh <- r.Err
				return
			}
		}
	}()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) { // client tenants, on banks 1.. (away from the scratch region)
			defer wg.Done()
			base := int64(1+c) * org.BankBits()
			for k := 0; k < iters; k++ {
				addr := base + int64(k*61)
				want := uint64(k)*0x9e3779b9 + uint64(c)
				if err := srv.Write(addr, 32, want); err != nil {
					errCh <- err
					return
				}
				got, err := srv.Read(addr, 32)
				if err != nil {
					errCh <- err
					return
				}
				if got != want&(1<<32-1) {
					errCh <- fmt.Errorf("client %d: read-back mismatch at %d: got %x want %x",
						c, addr, got, want&(1<<32-1))
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st := srv.Close()
	if st.Computes != iters || st.Errors != 0 {
		t.Fatalf("served %d computes, %d errors", st.Computes, st.Errors)
	}
	if c, u := mem.ScrubAll(); c != 0 || u != 0 {
		t.Fatalf("scrub after live compute: corrected %d, uncorrectable %d", c, u)
	}
}

// TestServerSubmitCloseRace hammers Submit from many goroutines racing
// one Close: every submission must either serve normally or fail with
// the typed ErrServerClosed — never panic on a closed queue, never
// deadlock, never return a third kind of error. Run with -race this
// pins the lock discipline the error's doc comment promises.
func TestServerSubmitCloseRace(t *testing.T) {
	for round := 0; round < 20; round++ {
		mem := testMem(t, 45, 15, 4, 1)
		srv, err := New(Config{Mem: mem, Workers: 2, QueueDepth: 4})
		if err != nil {
			t.Fatal(err)
		}
		const submitters = 8
		var wg sync.WaitGroup
		errCh := make(chan error, submitters)
		start := make(chan struct{})
		for g := 0; g < submitters; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				for k := 0; ; k++ {
					addr := int64((g*131 + k*37) % int(mem.Config().Org.DataBits()-64))
					ch, err := srv.Submit(Request{Op: OpRead, Addr: addr, Width: 32})
					if err != nil {
						if err != ErrServerClosed {
							errCh <- err
						}
						return
					}
					if r := <-ch; r.Err != nil {
						errCh <- r.Err
						return
					}
				}
			}(g)
		}
		close(start)
		srv.Close()
		wg.Wait()
		close(errCh)
		for err := range errCh {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

// TestExecutorRejectsOverflowingSpans is the regression net for the
// executor's overflow-safe range guard: a near-MaxInt64 address must be
// rejected as a validation error, not wrap negative past the guard.
func TestExecutorRejectsOverflowingSpans(t *testing.T) {
	mem := testMem(t, 45, 15, 2, 1)
	ex := executor{mem: mem, org: mem.Config().Org}
	cases := []struct {
		name string
		req  Request
	}{
		{"max-addr", Request{Op: OpRead, Addr: math.MaxInt64, Width: 64}},
		{"near-max-addr", Request{Op: OpRead, Addr: math.MaxInt64 - 63, Width: 64}},
		{"write-near-max", Request{Op: OpWrite, Addr: math.MaxInt64 - 1, Width: 2}},
		{"negative", Request{Op: OpRead, Addr: -1, Width: 8}},
		{"end-past-range", Request{Op: OpRead, Addr: mem.Config().Org.DataBits() - 8, Width: 16}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, ok := ex.singleRow(tc.req); ok {
				t.Fatal("singleRow accepted an out-of-range span")
			}
			var got Response
			ex.run([]Request{tc.req}, func(_ int, resp Response, _ execInfo) { got = resp })
			if got.Err == nil {
				t.Fatal("executor served an out-of-range span")
			}
		})
	}
}

// TestGenTraceZipfBankHead pins the bank-confined zipf bugfix: in a
// closed-loop zipf trace each client's hot set must concentrate at its
// home bank's start (the per-bank zipf head), not be a global-range
// sample smeared across the bank. The old fold produced ≈19% of
// requests in each bank's first 8 words; the per-bank generator
// concentrates ≳27% there.
func TestGenTraceZipfBankHead(t *testing.T) {
	org := mmpu.Custom(90, 16, 2)
	tr, err := GenTrace(org, TraceOpts{
		Mode: "closed", Mix: "zipf", Requests: 8000, Clients: 16, Width: 32, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	head, total := 0, 0
	const headBits = 8 * 64 // the first 8 hot words of each bank
	for bank, reqs := range tr.PerBank {
		lo := int64(bank) * org.BankBits()
		for _, tq := range reqs {
			if off := tq.Req.Addr - lo; off < 0 || off >= org.BankBits() {
				t.Fatalf("bank %d request at %d leaks its bank", bank, tq.Req.Addr)
			} else if off < headBits {
				head++
			}
			total++
		}
	}
	if frac := float64(head) / float64(total); frac < 0.24 {
		t.Fatalf("zipf head concentration %.3f < 0.24 — bank-confined zipf regressed", frac)
	}
}
