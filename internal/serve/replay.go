package serve

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/ecc"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/mmpu"
	"repro/internal/pmem"
	"repro/internal/telemetry"
)

// The virtual-time cost model, in model ticks. The constants are a
// queueing abstraction calibrated to the shape of the paper's cycle
// accounting, not a cycle-accurate trace: a write costs more than a read
// (write drivers plus the Θ(1) diagonal ECC delta update), a request
// served from an already-open row costs a fraction of a fresh activation,
// and a scrub pays per checked block. What matters for the experiments is
// the *structure* — relative costs, queueing, worker contention, and
// scrub interference — which is what the E9 latency distributions and
// throughput curves exercise.
const (
	costRead      = 2 // row activation + sense
	costWrite     = 6 // write drivers + diagonal ECC delta update
	costCoalRead  = 1 // read served from the open row
	costCoalWrite = 2 // write merged into the open row's single commit
	costScrubBlk  = 8 // per ECC block checked during a scrub
	costVerify    = 1 // committed-line read-back per written segment (repair ≥ verify)
)

// reqCost charges one served request. verify adds the write-verify
// read-back tax: one tick per committed row segment (a coalesced write
// shares its row's single commit and single read-back). wSur is the
// scheme's per-segment write surcharge (writeSurcharge): coalesced writes
// share their row's single check-bit update, so only full commits pay it.
func reqCost(info execInfo, verify bool, wSur int64) int64 {
	if info.coalesced {
		if info.write {
			return costCoalWrite
		}
		return costCoalRead
	}
	base := int64(costRead)
	if info.write {
		base = costWrite + wSur
		if verify {
			base += costVerify
		}
	}
	segs := int64(info.segments)
	if segs < 1 {
		segs = 1
	}
	return base * segs
}

// writeSurcharge prices the protection scheme's line-update discipline
// relative to the Θ(1) diagonal delta already folded into costWrite: a
// scheme that must re-read the whole M-bit word to re-encode its check
// bits (LineUpdateReads = M per written line, e.g. hamming or dec) pays
// the reads beyond the delta pair at the open-row rate. Exactly zero for
// the diagonal family and parity (2-read delta), so default replays stay
// byte-identical to the historical cost model.
func writeSurcharge(cfg pmem.Config) int64 {
	if !cfg.ECCEnabled || cfg.M <= 0 {
		return 0
	}
	spec, err := ecc.SchemeByName((machine.Config{Scheme: cfg.Scheme}).SchemeName())
	if err != nil {
		return 0
	}
	p := ecc.Params{N: cfg.Org.CrossbarN, M: cfg.M}
	if spec.Validate(p) != nil {
		return 0
	}
	extra := int64(spec.New(p, nil).LineUpdateReads(1)) - 2
	if extra <= 0 {
		return 0
	}
	return extra * costCoalRead
}

// scrubCost charges one crossbar scrub.
func scrubCost(cfg pmem.Config) int64 {
	if !cfg.ECCEnabled || cfg.M <= 0 {
		return 1
	}
	blocks := int64(cfg.Org.CrossbarN / cfg.M)
	return blocks * blocks * costScrubBlk
}

// ReplayConfig sizes a deterministic replay run.
type ReplayConfig struct {
	Mem *pmem.Memory // the served memory (required)

	// Workers is the modeled bank-worker count: banks are partitioned
	// across workers (mmpu.ShardBanks) and banks sharing a worker share
	// one service clock, so fewer workers means more queueing — the
	// serving-layer scaling knob of the E9 experiment. <=0 models one
	// worker per bank. Execution always parallelizes across the modeled
	// workers; the Result is a pure function of (memory, trace, config).
	Workers int
	// BatchSize caps the requests coalesced per virtual batch (<=0 → 32).
	BatchSize int
	// ScrubPeriod is the admission budget in ticks: each worker admits at
	// most one crossbar scrub per period, between batches, round-robin
	// over its crossbars. 0 disables.
	ScrubPeriod int64
	// FaultSER enables the fault-injection overlay: each admitted scrub
	// is preceded by a soft-error window over the scrubbed crossbar at
	// this rate [FIT/bit] for FaultHours (default 1) of exposure, from a
	// per-crossbar stream derived from Seed.
	FaultSER   float64
	FaultHours float64
	// ComputeAdmit is the admission-control budget bounding how long a
	// bank's compute burst may starve pending client requests: per service
	// round a worker admits compute requests only while their modeled cost
	// (machine.Config.ComputeCost, in ticks — the same currency the clock
	// advances by) stays under this budget, deferring the rest behind the
	// next client drain. A client request arriving behind a compute burst
	// therefore waits at most ~one budget plus one in-flight pipeline; at
	// least one compute is admitted per round so a compute-only bank still
	// drains. 0 — the default — is pure FIFO: computes serve strictly in
	// arrival order, byte-identical to pre-admission replays.
	ComputeAdmit int64
	// FaultModel selects the overlay's fault model (faults.ModelByName).
	// Empty keeps the historical transient-flip stream byte-identical;
	// stuck-at models land in each crossbar's defect set, so the defects
	// re-assert against live traffic and the repair layer (the memory's
	// pmem/machine Repair config) can observe and retire them online.
	FaultModel string
	// Seed derives the per-crossbar fault streams.
	Seed int64

	// Telemetry, when non-nil, receives the replay's virtual-time series
	// (tick-based latency/wait/service histograms, the per-batch backlog
	// distribution) plus admission and coalescing events. The snapshot is
	// as deterministic as the Result: all workers share one probe set and
	// every update commutes, so totals are a pure function of (memory,
	// trace, config) — only the event ring's interleaving is
	// scheduling-dependent.
	Telemetry *telemetry.Registry
}

// modelWorkers resolves the modeled worker count: <=0 means one worker
// per bank (the fully-parallel controller).
func modelWorkers(w, banks int) int {
	if w <= 0 || w > banks {
		return banks
	}
	return w
}

// BankLoad is one bank's deterministic replay outcome.
type BankLoad struct {
	Requests int64 `json:"requests"`
	Scrubs   int64 `json:"scrubs"`
}

// Result aggregates a replay. Every field is a pure function of the
// (memory, trace, replay config) — never of host scheduling — so the
// same inputs reproduce the identical Result on any machine.
type Result struct {
	Stats   Stats
	Workers int   // modeled bank workers
	Ticks   int64 // makespan: the slowest worker's clock

	PerBank   []BankLoad // indexed by bank
	PerWorker []int64    // each modeled worker's final clock
}

// Merge combines two results field-wise (slices align by index; clocks —
// per-worker and the makespan — take the max, so max(PerWorker) == Ticks
// stays true). Commutative and associative, like fleet.Result.
func (r Result) Merge(o Result) Result {
	m := Result{Stats: r.Stats.Merge(o.Stats), Workers: r.Workers, Ticks: r.Ticks}
	if o.Workers > m.Workers {
		m.Workers = o.Workers
	}
	if o.Ticks > m.Ticks {
		m.Ticks = o.Ticks
	}
	nb := len(r.PerBank)
	if len(o.PerBank) > nb {
		nb = len(o.PerBank)
	}
	if nb > 0 {
		m.PerBank = make([]BankLoad, nb)
		copy(m.PerBank, r.PerBank)
		for i, b := range o.PerBank {
			m.PerBank[i].Requests += b.Requests
			m.PerBank[i].Scrubs += b.Scrubs
		}
	}
	nw := len(r.PerWorker)
	if len(o.PerWorker) > nw {
		nw = len(o.PerWorker)
	}
	if nw > 0 {
		m.PerWorker = make([]int64, nw)
		copy(m.PerWorker, r.PerWorker)
		for i, c := range o.PerWorker {
			if c > m.PerWorker[i] {
				m.PerWorker[i] = c
			}
		}
	}
	return m
}

// Replay executes a trace against the memory in deterministic virtual
// time. Each modeled worker serves the arrival-ordered merge of its
// banks' traces on one clock: the clock jumps to the next arrival when
// idle, a batch is every eligible request up to BatchSize (coalesced by
// the executor), each request's completion advances the clock by its
// cost, and its latency is completion minus arrival — queueing delay,
// worker contention, and scrub interference included. Between batches at
// most one crossbar scrub is admitted per ScrubPeriod ticks, optionally
// preceded by the fault overlay.
//
// Workers are simulated concurrently (they own disjoint banks, and
// traces are bank-confined), so real parallelism changes only how fast
// the simulation runs, never its Result.
func Replay(cfg ReplayConfig, tr *Trace) (Result, error) {
	if cfg.Mem == nil {
		return Result{}, fmt.Errorf("serve: nil memory")
	}
	org := cfg.Mem.Config().Org
	if len(tr.PerBank) != org.Banks {
		return Result{}, fmt.Errorf("serve: trace has %d banks, memory has %d", len(tr.PerBank), org.Banks)
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	closed := tr.Mode == "closed"
	var model faults.Model
	if cfg.FaultSER > 0 && cfg.FaultModel != "" {
		var err error
		if model, err = faults.ModelByName(cfg.FaultModel, cfg.FaultSER); err != nil {
			return Result{}, err
		}
	}
	workers := modelWorkers(cfg.Workers, org.Banks)
	res := Result{
		Workers:   workers,
		PerBank:   make([]BankLoad, org.Banks),
		PerWorker: make([]int64, workers),
	}
	stats := make([]Stats, workers)
	if len(tr.Tenants) > 0 {
		// Pre-size every worker's tenant tally so merges align by index
		// whichever workers a tenant's traffic lands on.
		for w := range stats {
			stats[w].Tenants = make([]TenantStats, len(tr.Tenants))
			for t, name := range tr.Tenants {
				stats[w].Tenants[t].Name = name
			}
		}
	}
	scrubs := make([][]int64, workers) // per worker: scrubs per owned bank
	shards := org.ShardBanks(workers)
	tel := replayProbes(cfg.Telemetry)
	tel.bindTenants(cfg.Telemetry, tr.Tenants)
	var wg sync.WaitGroup
	for w, banks := range shards {
		for _, b := range banks {
			res.PerBank[b].Requests = int64(len(tr.PerBank[b]))
		}
		wg.Add(1)
		go func(w int, banks []int) {
			defer wg.Done()
			res.PerWorker[w], scrubs[w] = replayWorker(cfg, model, org, banks, tr, closed, &stats[w], tel)
		}(w, banks)
	}
	wg.Wait()
	for w := range stats {
		res.Stats = res.Stats.Merge(stats[w])
		if res.PerWorker[w] > res.Ticks {
			res.Ticks = res.PerWorker[w]
		}
		for i, b := range shards[w] {
			res.PerBank[b].Scrubs = scrubs[w][i]
		}
	}
	return res, nil
}

// mergeStreams k-way-merges the banks' traces into one arrival-ordered
// stream (ties break by bank then position, so the merge is total and
// deterministic).
func mergeStreams(tr *Trace, banks []int) []TimedReq {
	if len(banks) == 1 {
		return tr.PerBank[banks[0]]
	}
	total := 0
	for _, b := range banks {
		total += len(tr.PerBank[b])
	}
	out := make([]TimedReq, 0, total)
	idx := make([]int, len(banks))
	for len(out) < total {
		best := -1
		for i, b := range banks {
			if idx[i] >= len(tr.PerBank[b]) {
				continue
			}
			if best < 0 || tr.PerBank[b][idx[i]].At < tr.PerBank[banks[best]][idx[best]].At {
				best = i
			}
		}
		out = append(out, tr.PerBank[banks[best]][idx[best]])
		idx[best]++
	}
	return out
}

// replayWorker simulates one modeled worker's service timeline over its
// banks, returning its final clock and per-owned-bank scrub counts.
func replayWorker(cfg ReplayConfig, model faults.Model, org mmpu.Organization, banks []int, tr *Trace, closed bool, st *Stats, tel probes) (int64, []int64) {
	reqs := mergeStreams(tr, banks)
	ex := executor{mem: cfg.Mem, org: org}
	sCost := scrubCost(cfg.Mem.Config())
	verify := cfg.Mem.Config().Repair.Enabled()
	wSur := writeSurcharge(cfg.Mem.Config())
	cost := computeCostFor(cfg.Mem.Config())
	bankSlot := make(map[int]int, len(banks)) // bank → index in banks
	var xbs [][2]int                          // scrub rotation over the worker's crossbars
	for i, b := range banks {
		bankSlot[b] = i
		for x := 0; x < org.PerBank; x++ {
			xbs = append(xbs, [2]int{b, x})
		}
	}
	var (
		clock      int64
		nextScrub  = cfg.ScrubPeriod
		cursor     int
		bankScrubs = make([]int64, len(banks))
		injs       map[[2]int]*faults.Injector
		rngs       map[[2]int]*rand.Rand // model-based overlay streams
		prevDone   map[int]int64         // closed loop: client → completion of previous round
		batch      = make([]Request, 0, cfg.BatchSize)
		btq        = make([]TimedReq, 0, cfg.BatchSize) // the round actually served, in service order
		deferred   []TimedReq                           // computes held over under the admission budget
	)
	if closed {
		prevDone = make(map[int]int64)
	}
	if tel.enabled {
		ex.coalesce = func(bank, xb, row, merged int) {
			tel.ring.Emit(telemetry.EvCoalesce, clock, bank, xb, int64(merged), int64(row))
		}
	}
	if cfg.FaultSER > 0 {
		if model != nil {
			rngs = make(map[[2]int]*rand.Rand)
		} else {
			injs = make(map[[2]int]*faults.Injector)
		}
	}
	hours := cfg.FaultHours
	if hours <= 0 {
		hours = 1
	}
	for i := 0; i < len(reqs) || len(deferred) > 0; {
		// The clock jumps to the next arrival only when no deferred work
		// is pending — deferred computes are already past their arrival
		// and must keep draining at the current time.
		if !closed && len(deferred) == 0 && reqs[i].At > clock {
			clock = reqs[i].At // idle until the next arrival
		}
		// The eligible new-arrival window [i, j). With no deferral this
		// reproduces the historical batching exactly (the first request is
		// always eligible: closed trivially, open via the clock jump).
		j := i
		if i < len(reqs) {
			if closed {
				for j < len(reqs) && j-i < cfg.BatchSize && reqs[j].At == reqs[i].At {
					j++ // same client round
				}
			} else {
				for j < len(reqs) && j-i < cfg.BatchSize && reqs[j].At <= clock {
					j++ // arrived
				}
			}
		}
		// Assemble the service round. Admission control serves the
		// window's client requests first, then admits computes (oldest
		// deferred first) while the budget lasts — at least one per round,
		// so a compute-monopolized bank still drains. The loop re-checks
		// arrivals each round, so a client request arriving behind a
		// compute burst waits at most ~one budget plus one pipeline.
		btq = btq[:0]
		if cfg.ComputeAdmit <= 0 {
			btq = append(btq, reqs[i:j]...)
		} else {
			comps := deferred
			for _, tq := range reqs[i:j] {
				if tq.Req.Op == OpCompute {
					comps = append(comps, tq)
				} else {
					btq = append(btq, tq)
				}
			}
			var spent int64
			adm := 0
			for adm < len(comps) && (adm == 0 || spent < cfg.ComputeAdmit) {
				spent += cost(comps[adm].Req.Plan)
				adm++
			}
			btq = append(btq, comps[:adm]...)
			deferred = comps[adm:]
		}
		i = j
		batch = batch[:0]
		for _, tq := range btq {
			batch = append(batch, tq.Req)
		}
		st.Batches++
		tel.batches.Inc()
		tel.backlog.Observe(int64(len(btq)))
		ex.run(batch, func(k int, resp Response, info execInfo) {
			var charge int64
			if info.compute {
				charge = cost(btq[k].Req.Plan)
				st.ComputeTicks += charge
			} else {
				charge = reqCost(info, verify, wSur)
			}
			clock += charge
			tq := btq[k]
			arrived := tq.At
			if closed {
				arrived = prevDone[tq.Client]
				prevDone[tq.Client] = clock
			}
			st.tally(resp, info)
			lat := clock - arrived
			st.Lat.Observe(lat)
			st.tallyTenant(tq.Tenant, resp, info, lat)
			tel.tally(resp, info)
			tel.tallyTenant(tq.Tenant, lat)
			tel.latency.Observe(lat)
			tel.service.Observe(charge)
			tel.wait.Observe(lat - charge)
		})
		if cfg.ScrubPeriod > 0 && clock >= nextScrub && len(xbs) > 0 {
			bx := xbs[cursor]
			cursor = (cursor + 1) % len(xbs)
			switch {
			case model != nil:
				rng := rngs[bx]
				if rng == nil {
					rng = rand.New(rand.NewSource(
						faults.DeriveSeed(cfg.Seed^0x5e7e, bx[0], bx[1])))
					rngs[bx] = rng
				}
				st.Injected += int64(cfg.Mem.InjectModel(bx[0], bx[1], model, rng, hours))
			case cfg.FaultSER > 0:
				inj := injs[bx]
				if inj == nil {
					inj = faults.NewInjector(cfg.FaultSER,
						faults.DeriveSeed(cfg.Seed^0x5e7e, bx[0], bx[1]))
					injs[bx] = inj
				}
				st.Injected += int64(cfg.Mem.InjectWindow(bx[0], bx[1], inj, hours))
			}
			c, u := cfg.Mem.ScrubCrossbar(bx[0], bx[1])
			clock += sCost
			st.Scrubs++
			bankScrubs[bankSlot[bx[0]]]++
			st.Corrected += int64(c)
			st.Uncorrectable += int64(u)
			tel.scrubAdm.Inc()
			tel.ring.Emit(telemetry.EvAdmission, clock, bx[0], bx[1], clock, 0)
			nextScrub = clock + cfg.ScrubPeriod
		}
	}
	return clock, bankScrubs
}
