package serve

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"repro/internal/telemetry"
)

// TestLiveServerTelemetryUnderRace attaches a live registry to a
// concurrent server and hammers it from many clients: under -race this
// proves the counter/histogram/ring update discipline, and afterwards
// the series must agree exactly with the server's own Stats — the same
// work accounted twice through independent paths.
func TestLiveServerTelemetryUnderRace(t *testing.T) {
	const clients, iters, width = 8, 80, 37
	mem := testMem(t, 45, 15, 32, 1)
	reg := telemetry.New()
	mem.Instrument(reg)
	srv, err := New(Config{Mem: mem, Workers: 8, ScrubEvery: 16, BatchSize: 8, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	span := mem.Config().Org.DataBits() / clients
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			base := int64(c) * span
			for k := 0; k < iters; k++ {
				addr := base + int64(k)*97%max64(span-width, 1)
				if err := srv.Write(addr, width, uint64(k)); err != nil {
					t.Error(err)
					return
				}
				if _, err := srv.Read(addr, width); err != nil {
					t.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	st := srv.Close()
	snap := reg.Snapshot()

	if got := snap.CounterFamily("serve_requests_total"); got != st.Requests {
		t.Errorf("serve_requests_total = %d, want %d", got, st.Requests)
	}
	if got := snap.Counter(`serve_requests_total{op="write"}`); got != st.Writes {
		t.Errorf("write requests = %d, want %d", got, st.Writes)
	}
	if got := snap.Counter("serve_batches_total"); got != st.Batches {
		t.Errorf("serve_batches_total = %d, want %d", got, st.Batches)
	}
	if got := snap.Counter("serve_coalesced_total"); got != st.Coalesced {
		t.Errorf("serve_coalesced_total = %d, want %d", got, st.Coalesced)
	}
	if got := snap.Counter("serve_segments_total"); got != st.Segments {
		t.Errorf("serve_segments_total = %d, want %d", got, st.Segments)
	}
	if got := snap.Counter("serve_scrub_admissions_total"); got != st.Scrubs {
		t.Errorf("serve_scrub_admissions_total = %d, want %d", got, st.Scrubs)
	}
	if got := snap.Counter("pmem_scrubs_total"); got != 0 {
		t.Errorf("unlabeled pmem_scrubs_total present: %d", got)
	}
	if got := snap.CounterFamily("pmem_scrubs_total"); got != st.Scrubs {
		t.Errorf("per-bank pmem_scrubs_total sum = %d, want %d", got, st.Scrubs)
	}
	// The latency histogram saw every request; wall-clock values are
	// nondeterministic but the count is exact.
	var latCount int64
	for _, h := range snap.Hists {
		if h.Name == "serve_latency_ns" {
			latCount = h.Count
		}
	}
	if latCount != st.Requests {
		t.Errorf("serve_latency_ns count = %d, want %d", latCount, st.Requests)
	}
	// Admission events were traced (EvAdmission per admitted scrub, ring
	// capacity permitting).
	if st.Scrubs > 0 && reg.Events().Total() == 0 {
		t.Error("no events traced despite admitted scrubs")
	}
}

// TestReplayTelemetryDeterministic: two replays of the same trace over
// fresh memories produce byte-identical telemetry snapshots — the CLI
// -telemetry reproducibility contract, exercised at the package level.
func TestReplayTelemetryDeterministic(t *testing.T) {
	snapshot := func() []byte {
		mem := testMem(t, 45, 15, 8, 2)
		reg := telemetry.New()
		mem.Instrument(reg)
		tr, err := GenTrace(mem.Config().Org, TraceOpts{
			Mode: "open", Mix: "zipf", Requests: 3000, Clients: 4,
			Rate: 0.5, WriteFrac: 0.5, Width: 30, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Replay(ReplayConfig{
			Mem: mem, Workers: 4, ScrubPeriod: 500, FaultSER: 3e5, Seed: 11,
			Telemetry: reg,
		}, tr); err != nil {
			t.Fatal(err)
		}
		out, err := json.Marshal(reg.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := snapshot(), snapshot()
	if !bytes.Equal(a, b) {
		t.Fatalf("replay telemetry not reproducible:\n%s\n---\n%s", a, b)
	}
}
