// Package serve is the online face of the protected memory: a concurrent,
// request-driven service over internal/pmem in which client reads and
// writes race with the background scrub work that keeps the paper's
// diagonal-ECC guarantee alive. The ROADMAP's north star is a memory
// *serving* heavy traffic, not replaying offline workloads — this package
// is that regime, and it is where the Θ(1) per-write check-bit update
// actually pays: every write commits its ECC delta inline, so scrubbing
// can be admission-controlled background work instead of a stop-the-world
// pass.
//
// # Architecture
//
// Requests route by the bank that owns their starting address into
// per-worker queues; a configurable number of bank workers
// (mmpu.ShardBanks) each own a disjoint set of banks. A worker drains its
// queue in batches, coalescing consecutive same-row requests into one row
// activation (executor), and between batches admits background scrub work
// under a budget: one crossbar scrub per ScrubEvery served requests.
// Requests whose span leaks into a neighboring bank stay correct —
// pmem's per-bank locks, not worker ownership, are the safety boundary.
//
// Latency is accounted per request (submit to response) into a mergeable
// fleet.Hist. For the deterministic virtual-time counterpart used by
// cmd/loadgen, see Replay.
package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/fleet"
	"repro/internal/mmpu"
	"repro/internal/pmem"
	"repro/internal/telemetry"
)

// OpKind enumerates request operations.
type OpKind int

const (
	// OpRead returns up to 64 bits starting at a bit address.
	OpRead OpKind = iota
	// OpWrite stores up to 64 bits starting at a bit address.
	OpWrite
	// OpCompute executes the request's ComputePlan on the crossbar owning
	// Addr (SIMD over the plan's row set). Width and Data are unused; the
	// crossbar's working region [0, plan.Mapping.RowSize) is scratch.
	OpCompute
)

// Request is one client memory operation.
type Request struct {
	Op    OpKind
	Addr  int64  // starting bit address (OpCompute: selects the crossbar)
	Width int    // bits, 1..64 (0 is a valid no-op; unused by OpCompute)
	Data  uint64 // OpWrite payload, LSB first

	// Plan is the prepared SIMD pipeline an OpCompute request executes
	// (required for OpCompute, ignored otherwise). Plans are immutable and
	// shared: every compute request of a trace points at the same plan.
	Plan *ComputePlan
}

// Response answers one request.
type Response struct {
	Data uint64 // OpRead result, LSB first
	Err  error
}

// ErrServerClosed reports a submission to a server that has shut down.
// Submit checks the closed flag under the same lock Close closes the
// queues under, so a racing Submit either enqueues before the close or
// returns this error — it can never send on a closed queue.
var ErrServerClosed = errors.New("serve: server closed")

// ErrClosed is the historical name of ErrServerClosed.
var ErrClosed = ErrServerClosed

// Config sizes a server.
type Config struct {
	Mem *pmem.Memory // the served memory (required)

	// Workers is the bank-worker count; banks are partitioned across
	// workers so each bank has exactly one worker. <=0 uses GOMAXPROCS,
	// capped at the bank count.
	Workers int
	// QueueDepth is each worker's request-queue capacity (<=0 → 128).
	QueueDepth int
	// BatchSize caps the requests drained and coalesced per service
	// round (<=0 → 32).
	BatchSize int
	// ScrubEvery is the scrub admission budget: each worker runs one
	// crossbar scrub per this many served requests, round-robin over its
	// crossbars. 0 disables background scrubbing.
	ScrubEvery int

	// ComputeAdmit bounds how long a compute burst may starve pending
	// client requests: per service round a worker admits compute requests
	// only while their modeled cost (machine.Config.ComputeCost, in
	// cycles) stays under this budget, deferring the rest until after the
	// next client drain — so a client request arriving behind a compute
	// burst waits at most ~one budget plus one in-flight pipeline. At
	// least one compute is admitted per round (progress). 0 = FIFO: no
	// deferral, computes serve strictly in arrival order.
	ComputeAdmit int64

	// Telemetry, when non-nil, receives the live service series
	// (serve_requests_total, wall-clock latency/wait histograms, the
	// queue-depth gauge) and admission/coalescing events. Nil — the
	// default — keeps the hot path at one nil check per probe.
	Telemetry *telemetry.Registry
}

// Stats aggregates service activity. Merge is commutative and
// associative, like fleet.Result — per-worker tallies combine into one
// total in any order.
type Stats struct {
	Requests int64
	Reads    int64
	Writes   int64
	Computes int64
	Errors   int64
	Batches  int64

	// ComputeTicks is the total virtual time charged to compute requests
	// (Replay only; the live server accounts wall time in Lat).
	ComputeTicks int64

	// Tenants is the per-tenant breakdown, index-aligned with the trace's
	// tenant list; nil for single-tenant (legacy) traffic.
	Tenants []TenantStats

	Coalesced int64 // requests served from an already-open row
	Spanning  int64 // requests crossing a row boundary
	Segments  int64 // crossbar-row segments touched

	Scrubs        int64
	Corrected     int64
	Uncorrectable int64
	Injected      int64 // fault-overlay flips (Replay only)

	Lat fleet.Hist // live server: wall nanoseconds; Replay: model ticks
}

// Merge returns the field-wise combination of two stats.
func (s Stats) Merge(o Stats) Stats {
	return Stats{
		Requests:      s.Requests + o.Requests,
		Reads:         s.Reads + o.Reads,
		Writes:        s.Writes + o.Writes,
		Computes:      s.Computes + o.Computes,
		ComputeTicks:  s.ComputeTicks + o.ComputeTicks,
		Tenants:       mergeTenants(append([]TenantStats(nil), s.Tenants...), o.Tenants),
		Errors:        s.Errors + o.Errors,
		Batches:       s.Batches + o.Batches,
		Coalesced:     s.Coalesced + o.Coalesced,
		Spanning:      s.Spanning + o.Spanning,
		Segments:      s.Segments + o.Segments,
		Scrubs:        s.Scrubs + o.Scrubs,
		Corrected:     s.Corrected + o.Corrected,
		Uncorrectable: s.Uncorrectable + o.Uncorrectable,
		Injected:      s.Injected + o.Injected,
		Lat:           s.Lat.Merge(o.Lat),
	}
}

// tally records one served request into the stats (latency excluded —
// the live and replay paths account time differently).
func (s *Stats) tally(resp Response, info execInfo) {
	s.Requests++
	switch {
	case info.compute:
		s.Computes++
	case info.write:
		s.Writes++
	default:
		s.Reads++
	}
	if resp.Err != nil {
		s.Errors++
	}
	if info.coalesced {
		s.Coalesced++
	}
	if info.segments > 1 {
		s.Spanning++
	}
	s.Segments += int64(info.segments)
}

// tallyTenant records one served request into the tenant breakdown
// (no-op when the index is outside the trace's tenant list).
func (s *Stats) tallyTenant(tenant int, resp Response, info execInfo, lat int64) {
	if tenant < 0 || tenant >= len(s.Tenants) {
		return
	}
	ts := &s.Tenants[tenant]
	ts.Requests++
	switch {
	case info.compute:
		ts.Computes++
	case info.write:
		ts.Writes++
	default:
		ts.Reads++
	}
	if resp.Err != nil {
		ts.Errors++
	}
	ts.Lat.Observe(lat)
}

// call carries a request through a worker queue.
type call struct {
	req  Request
	t0   time.Time
	resp chan Response
}

// Server is the live concurrent service. Clients may Submit from any
// number of goroutines; each bank's requests serialize through its one
// owning worker in FIFO order, so a client that awaits each response
// observes read-after-write consistency for its addresses.
type Server struct {
	cfg        Config
	org        mmpu.Organization
	workers    int
	bankWorker []int // bank → owning worker
	queues     []chan *call
	stats      []Stats // per worker; written only by the owner until Close
	tel        probes  // shared across workers (atomic); zero value = off
	wg         sync.WaitGroup

	mu     sync.RWMutex
	closed bool
}

// effectiveWorkers resolves a worker count against a bank count.
func effectiveWorkers(w, banks int) int {
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > banks {
		w = banks
	}
	if w < 1 {
		w = 1
	}
	return w
}

// New starts the server's bank workers.
func New(cfg Config) (*Server, error) {
	if cfg.Mem == nil {
		return nil, fmt.Errorf("serve: nil memory")
	}
	org := cfg.Mem.Config().Org
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 128
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	workers := effectiveWorkers(cfg.Workers, org.Banks)
	s := &Server{
		cfg:        cfg,
		org:        org,
		workers:    workers,
		bankWorker: make([]int, org.Banks),
		queues:     make([]chan *call, workers),
		stats:      make([]Stats, workers),
		tel:        liveProbes(cfg.Telemetry),
	}
	shards := org.ShardBanks(workers)
	for w, banks := range shards {
		for _, b := range banks {
			s.bankWorker[b] = w
		}
	}
	for w := 0; w < workers; w++ {
		s.queues[w] = make(chan *call, cfg.QueueDepth)
		s.wg.Add(1)
		go s.worker(w, shards[w])
	}
	return s, nil
}

// EffectiveWorkers returns the bank-worker count actually running.
func (s *Server) EffectiveWorkers() int { return s.workers }

// Submit enqueues a request and returns the channel its response will
// arrive on. Routing is by the bank owning the starting address.
func (s *Server) Submit(req Request) (<-chan Response, error) {
	bank, err := s.org.BankOf(req.Addr)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	c := &call{req: req, t0: time.Now(), resp: make(chan Response, 1)}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	s.queues[s.bankWorker[bank]] <- c
	return c.resp, nil
}

// Do submits a request and awaits its response.
func (s *Server) Do(req Request) Response {
	ch, err := s.Submit(req)
	if err != nil {
		return Response{Err: err}
	}
	return <-ch
}

// Read serves a blocking read of up to 64 bits.
func (s *Server) Read(addr int64, width int) (uint64, error) {
	r := s.Do(Request{Op: OpRead, Addr: addr, Width: width})
	return r.Data, r.Err
}

// Write serves a blocking write of up to 64 bits.
func (s *Server) Write(addr int64, width int, data uint64) error {
	return s.Do(Request{Op: OpWrite, Addr: addr, Width: width, Data: data}).Err
}

// Close drains the queues, stops the workers, and returns the merged
// service statistics. Further submissions fail with ErrClosed.
func (s *Server) Close() Stats {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		for _, q := range s.queues {
			close(q)
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
	var total Stats
	for _, st := range s.stats {
		total = total.Merge(st)
	}
	return total
}

// worker owns a set of banks: it serves its queue in coalesced batches
// and admits scrub work between batches under the ScrubEvery budget.
func (s *Server) worker(w int, banks []int) {
	defer s.wg.Done()
	st := &s.stats[w]
	ex := executor{mem: s.cfg.Mem, org: s.org}
	if s.tel.enabled {
		ex.coalesce = func(bank, xb, row, merged int) {
			s.tel.ring.Emit(telemetry.EvCoalesce, time.Now().UnixNano(),
				bank, xb, int64(merged), int64(row))
		}
	}
	var xbs [][2]int // scrub rotation over this worker's crossbars
	for _, b := range banks {
		for x := 0; x < s.org.PerBank; x++ {
			xbs = append(xbs, [2]int{b, x})
		}
	}
	cursor, credit := 0, 0
	calls := make([]*call, 0, s.cfg.BatchSize)
	reqs := make([]Request, 0, s.cfg.BatchSize)
	var deferred []*call // computes held over under the admission budget
	cost := computeCostFor(s.cfg.Mem.Config())
	q := s.queues[w]
	for {
		open := true
		if len(deferred) == 0 {
			c, ok := <-q
			if !ok {
				return
			}
			calls = append(calls[:0], c)
		} else {
			// Deferred compute work is pending: pick up arrivals without
			// blocking so the held-back pipelines keep making progress.
			calls = calls[:0]
			select {
			case c, ok := <-q:
				if !ok {
					open = false
				} else {
					calls = append(calls, c)
				}
			default:
			}
		}
		if open {
		drain:
			for len(calls) < s.cfg.BatchSize {
				select {
				case c2, ok2 := <-q:
					if !ok2 {
						open = false
						break drain
					}
					calls = append(calls, c2)
				default:
					break drain
				}
			}
		}
		round := calls
		if s.cfg.ComputeAdmit > 0 {
			// Admission control: this round's client requests go first,
			// then computes (oldest deferred first) while their modeled
			// cost stays under the budget — at least one per round, so a
			// compute-monopolized bank still drains.
			var clients, comps []*call
			for _, c := range calls {
				if c.req.Op == OpCompute {
					comps = append(comps, c)
				} else {
					clients = append(clients, c)
				}
			}
			comps = append(deferred, comps...)
			var spent int64
			adm := 0
			for adm < len(comps) && (adm == 0 || spent < s.cfg.ComputeAdmit) {
				spent += cost(comps[adm].req.Plan)
				adm++
			}
			deferred = comps[adm:]
			round = append(clients, comps[:adm]...)
		}
		if len(round) == 0 {
			if !open && len(deferred) == 0 {
				return
			}
			continue
		}
		reqs = reqs[:0]
		for _, c := range round {
			reqs = append(reqs, c.req)
		}
		st.Batches++
		s.tel.batches.Inc()
		if s.tel.enabled {
			s.tel.queueDepth.Set(int64(len(q)))
			start := time.Now()
			for _, c := range round {
				s.tel.wait.Observe(start.Sub(c.t0).Nanoseconds())
			}
		}
		ex.run(reqs, func(i int, resp Response, info execInfo) {
			st.tally(resp, info)
			lat := time.Since(round[i].t0).Nanoseconds()
			st.Lat.Observe(lat)
			s.tel.tally(resp, info)
			s.tel.latency.Observe(lat)
			round[i].resp <- resp
		})
		if s.cfg.ScrubEvery > 0 && len(xbs) > 0 {
			credit += len(round)
			for credit >= s.cfg.ScrubEvery {
				credit -= s.cfg.ScrubEvery
				bx := xbs[cursor]
				cursor = (cursor + 1) % len(xbs)
				c, u := s.cfg.Mem.ScrubCrossbar(bx[0], bx[1])
				st.Scrubs++
				st.Corrected += int64(c)
				st.Uncorrectable += int64(u)
				s.tel.scrubAdm.Inc()
				if s.tel.enabled {
					now := time.Now().UnixNano()
					s.tel.ring.Emit(telemetry.EvAdmission, now, bx[0], bx[1], now, 0)
				}
			}
		}
	}
}
