package serve

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/faults"
	"repro/internal/mmpu"
	"repro/internal/pmem"
	"repro/internal/repair"
)

// testMemRepair builds a protected memory with the self-healing layer on.
func testMemRepair(t testing.TB, n, m, banks, perBank, spares int) *pmem.Memory {
	return testMemRepairScheme(t, "", n, m, banks, perBank, spares)
}

// testMemRepairScheme is testMemRepair with an explicit protection scheme
// ("" selects the default diagonal code).
func testMemRepairScheme(t testing.TB, scheme string, n, m, banks, perBank, spares int) *pmem.Memory {
	t.Helper()
	mem, err := pmem.New(pmem.Config{
		Org: mmpu.Custom(n, banks, perBank), M: m, K: 2, ECCEnabled: true, Scheme: scheme,
		Repair: repair.Config{Policy: repair.VerifySpare, Spares: spares},
	})
	if err != nil {
		t.Fatal(err)
	}
	return mem
}

// TestReplayRepairRetiresStuckOnline: with the stuck-at overlay selected
// and verify+spare active, replayed client writes hit re-asserting
// defects, write-verify catches them, and cells are retired online — with
// zero request errors while the spare budget holds. The whole run stays
// deterministic: two identical replays produce the same Result and the
// same repair tally.
func TestReplayRepairRetiresStuckOnline(t *testing.T) {
	topts := TraceOpts{Mode: "open", Mix: "uniform", Requests: 3000, WriteFrac: 0.7, Seed: 7}
	run := func(workers int) (Result, repair.Stats) {
		mem := testMemRepair(t, 45, 15, 8, 2, 64)
		tr, err := GenTrace(mem.Config().Org, topts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Replay(ReplayConfig{
			Mem: mem, Workers: workers, ScrubPeriod: 200,
			FaultSER: 1e5, FaultModel: "stuck1", Seed: 11,
		}, tr)
		if err != nil {
			t.Fatal(err)
		}
		return res, mem.RepairStats()
	}
	for _, workers := range []int{1, 8} {
		res, rs := run(workers)
		if res.Stats.Injected == 0 {
			t.Fatalf("workers=%d: stuck overlay injected nothing", workers)
		}
		if rs.Retired == 0 {
			t.Fatalf("workers=%d: no cells retired despite stuck defects under write traffic (stats %+v)", workers, rs)
		}
		if rs.Exhausted > 0 {
			t.Fatalf("workers=%d: spare budget exhausted mid-test (stats %+v); raise spares", workers, rs)
		}
		if res.Stats.Errors != 0 {
			t.Fatalf("workers=%d: %d request errors within spare budget", workers, res.Stats.Errors)
		}
		if rs.VerifyReads == 0 || rs.Mismatches < rs.Retired {
			t.Fatalf("workers=%d: implausible repair tally %+v", workers, rs)
		}
		res2, rs2 := run(workers)
		if !reflect.DeepEqual(res, res2) || rs != rs2 {
			t.Fatalf("workers=%d: identical replays diverged (repair %+v vs %+v)", workers, rs, rs2)
		}
	}
}

// TestReplayRepairUnknownModelRejected: a bogus -faults-model name is a
// configuration error, not a silent fallback to the transient stream.
func TestReplayRepairUnknownModelRejected(t *testing.T) {
	mem := testMem(t, 45, 15, 2, 1)
	tr, err := GenTrace(mem.Config().Org, TraceOpts{Mode: "open", Requests: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(ReplayConfig{
		Mem: mem, FaultSER: 1e5, FaultModel: "nope", Seed: 1,
	}, tr); err == nil {
		t.Fatal("unknown fault model accepted")
	}
}

// TestServeRepairRetirementUnderTraffic is the live-server race proof of
// the self-healing layer: stuck-at defects are seeded into every
// crossbar, then client goroutines hammer read-after-write traffic while
// background scrubs run. Write-verify must retire the defects the clients
// trip over — racing the scrub's own retirement path — without ever
// breaking read-after-write consistency or surfacing an error while the
// spare budget holds. Run under -race this also proves the repair table's
// lock discipline against concurrent bank workers.
func TestServeRepairRetirementUnderTraffic(t *testing.T) {
	runServeRetirement(t, testMemRepair(t, 45, 15, 8, 1, 64))
}

// TestServeRepairRetirementNewSchemes runs the identical live-server race
// scenario over the DEC and interleaved backends (60×60: a geometry the
// interleave widths accept) — online retirement and the repair table's
// lock discipline must be scheme-independent.
func TestServeRepairRetirementNewSchemes(t *testing.T) {
	for _, scheme := range []string{"dec", "diagonal-x4"} {
		t.Run(scheme, func(t *testing.T) {
			runServeRetirement(t, testMemRepairScheme(t, scheme, 60, 15, 8, 1, 64))
		})
	}
}

func runServeRetirement(t *testing.T, mem *pmem.Memory) {
	const (
		clients = 8
		iters   = 150
		width   = 41 // word-unaligned, crosses row boundaries
	)
	org := mem.Config().Org
	model, err := faults.ModelByName("stuck1", 3e5)
	if err != nil {
		t.Fatal(err)
	}
	seeded := 0
	org.ForEachCrossbar(func(bank, xb int) {
		rng := rand.New(rand.NewSource(faults.DeriveSeed(99, bank, xb)))
		seeded += mem.InjectModel(bank, xb, model, rng, 1)
	})
	if seeded == 0 {
		t.Fatal("no stuck defects seeded")
	}

	srv, err := New(Config{Mem: mem, Workers: 8, ScrubEvery: 12, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	total := org.DataBits()
	span := total / clients
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(2000 + c)))
			base := int64(c) * span
			for k := 0; k < iters; k++ {
				addr := base + int64(k)*89%max64(span-width, 1)
				want := rng.Uint64() & (1<<width - 1)
				if err := srv.Write(addr, width, want); err != nil {
					errCh <- err
					return
				}
				got, err := srv.Read(addr, width)
				if err != nil {
					errCh <- err
					return
				}
				if got != want {
					errCh <- fmt.Errorf("client=%d addr=%d: read %#x after writing %#x past a stuck cell", c, addr, got, want)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	st := srv.Close()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if st.Errors != 0 {
		t.Fatalf("%d request errors within spare budget", st.Errors)
	}
	if st.Scrubs == 0 {
		t.Fatal("background scrubs never ran")
	}
	rs := mem.RepairStats()
	if rs.Retired == 0 {
		t.Fatalf("no cells retired under live traffic (seeded %d defect cells, stats %+v)", seeded, rs)
	}
	if rs.Exhausted > 0 {
		t.Fatalf("spare budget exhausted mid-test (stats %+v); raise spares", rs)
	}
}
