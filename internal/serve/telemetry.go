package serve

import "repro/internal/telemetry"

// probes is the serving layer's telemetry handle set. The zero value is
// the disabled layer: every handle is nil and no-ops, so the hot loops
// update them unconditionally. One probe set is shared by all workers —
// counter adds and histogram bucket increments commute, so the snapshot
// totals are invariant to worker count and scheduling (the event ring,
// arrival-ordered, is deliberately outside that contract).
type probes struct {
	enabled bool

	readReqs    *telemetry.Counter
	writeReqs   *telemetry.Counter
	computeReqs *telemetry.Counter
	errors      *telemetry.Counter
	batches     *telemetry.Counter
	coalesced   *telemetry.Counter
	spanning    *telemetry.Counter
	segments    *telemetry.Counter
	scrubAdm    *telemetry.Counter

	queueDepth *telemetry.Gauge     // live server: backlog after a drain
	backlog    *telemetry.Histogram // replay: eligible requests per batch

	latency *telemetry.Histogram // submit → response
	wait    *telemetry.Histogram // submit → start of service
	service *telemetry.Histogram // replay only: ticks charged per request

	// tenants holds per-tenant series, index-aligned with the trace's
	// tenant list (bindTenants); empty for single-tenant traffic, so
	// default snapshots carry no tenant series.
	tenants []tenantProbes

	ring *telemetry.Ring
}

// tenantProbes is one tenant's series pair.
type tenantProbes struct {
	reqs *telemetry.Counter
	lat  *telemetry.Histogram
}

// bindTenants resolves per-tenant series (serve_tenant_requests_total and
// serve_tenant_latency_ticks, labeled tenant=name) for a tenant-named
// trace. No-op without a registry or tenants.
func (p *probes) bindTenants(reg *telemetry.Registry, names []string) {
	if reg == nil || len(names) == 0 {
		return
	}
	for _, n := range names {
		p.tenants = append(p.tenants, tenantProbes{
			reqs: reg.Counter("serve_tenant_requests_total", "tenant", n),
			lat:  reg.Histogram("serve_tenant_latency_ticks", "tenant", n),
		})
	}
}

// tallyTenant mirrors Stats.tallyTenant onto the tenant series.
func (p probes) tallyTenant(t int, lat int64) {
	if t < 0 || t >= len(p.tenants) {
		return
	}
	p.tenants[t].reqs.Inc()
	p.tenants[t].lat.Observe(lat)
}

// commonProbes resolves the series shared by the live and replay paths.
func commonProbes(reg *telemetry.Registry) probes {
	return probes{
		enabled:     true,
		readReqs:    reg.Counter("serve_requests_total", "op", "read"),
		writeReqs:   reg.Counter("serve_requests_total", "op", "write"),
		computeReqs: reg.Counter("serve_requests_total", "op", "compute"),
		errors:      reg.Counter("serve_errors_total"),
		batches:     reg.Counter("serve_batches_total"),
		coalesced:   reg.Counter("serve_coalesced_total"),
		spanning:    reg.Counter("serve_spanning_total"),
		segments:    reg.Counter("serve_segments_total"),
		scrubAdm:    reg.Counter("serve_scrub_admissions_total"),
		ring:        reg.Events(),
	}
}

// liveProbes resolves the live server's probe set: wall-clock timings in
// nanoseconds and a last-write-wins queue-depth gauge (live view only —
// gauges are outside the determinism contract by construction).
func liveProbes(reg *telemetry.Registry) probes {
	if reg == nil {
		return probes{}
	}
	p := commonProbes(reg)
	p.queueDepth = reg.Gauge("serve_queue_depth")
	p.latency = reg.Histogram("serve_latency_ns")
	p.wait = reg.Histogram("serve_wait_ns")
	return p
}

// replayProbes resolves the deterministic replay's probe set: virtual-time
// timings in model ticks, plus the per-batch eligible backlog as a
// histogram (a distribution is mergeable and deterministic where a gauge
// is not).
func replayProbes(reg *telemetry.Registry) probes {
	if reg == nil {
		return probes{}
	}
	p := commonProbes(reg)
	p.backlog = reg.Histogram("serve_batch_backlog")
	p.latency = reg.Histogram("serve_latency_ticks")
	p.wait = reg.Histogram("serve_wait_ticks")
	p.service = reg.Histogram("serve_service_ticks")
	return p
}

// tally mirrors Stats.tally onto the live series.
func (p probes) tally(resp Response, info execInfo) {
	switch {
	case info.compute:
		p.computeReqs.Inc()
	case info.write:
		p.writeReqs.Inc()
	default:
		p.readReqs.Inc()
	}
	if resp.Err != nil {
		p.errors.Inc()
	}
	if info.coalesced {
		p.coalesced.Inc()
	}
	if info.segments > 1 {
		p.spanning.Inc()
	}
	p.segments.Add(int64(info.segments))
}
