package serve

import (
	"reflect"
	"testing"

	"repro/internal/mmpu"
)

// replayOnce builds a fresh memory, generates the trace, and replays it.
func replayOnce(t *testing.T, workers int, topts TraceOpts, rcfg ReplayConfig) Result {
	t.Helper()
	mem := testMem(t, 90, 15, 16, 2)
	tr, err := GenTrace(mem.Config().Org, topts)
	if err != nil {
		t.Fatal(err)
	}
	rcfg.Mem = mem
	rcfg.Workers = workers
	res, err := Replay(rcfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestReplayDeterministic is the serving-layer mirror of the fleet
// determinism tests: at every modeled worker count the full Result —
// counts, per-bank loads, worker clocks, makespan, and the complete
// latency histogram — reproduces exactly from the seed, for every client
// model, address mix, and the fault overlay. Across worker counts the
// *served traffic* is invariant: only queueing (latency, makespan,
// scrub interleaving) may move.
func TestReplayDeterministic(t *testing.T) {
	scenarios := []struct {
		name  string
		topts TraceOpts
		rcfg  ReplayConfig
	}{
		{"open-uniform", TraceOpts{Mode: "open", Mix: "uniform", Requests: 2000, Seed: 7},
			ReplayConfig{ScrubPeriod: 500}},
		{"open-zipf", TraceOpts{Mode: "open", Mix: "zipf", Requests: 2000, Width: 32, Seed: 7},
			ReplayConfig{}},
		{"open-scan", TraceOpts{Mode: "open", Mix: "scan", Requests: 2000, Width: 32, Seed: 9},
			ReplayConfig{ScrubPeriod: 300}},
		{"closed-uniform", TraceOpts{Mode: "closed", Mix: "uniform", Requests: 2000, Clients: 24, Seed: 3},
			ReplayConfig{ScrubPeriod: 400}},
		{"open-faults", TraceOpts{Mode: "open", Mix: "uniform", Requests: 1500, Seed: 5},
			ReplayConfig{ScrubPeriod: 200, FaultSER: 3e5, Seed: 11}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			perWorker := map[int]Result{}
			for _, workers := range []int{1, 8, 32} {
				ref := replayOnce(t, workers, sc.topts, sc.rcfg)
				if ref.Stats.Requests != int64(sc.topts.Requests) {
					t.Fatalf("workers=%d: served %d of %d requests", workers, ref.Stats.Requests, sc.topts.Requests)
				}
				if ref.Stats.Lat.N != ref.Stats.Requests {
					t.Fatalf("workers=%d: %d latencies for %d requests", workers, ref.Stats.Lat.N, ref.Stats.Requests)
				}
				if ref.Ticks == 0 {
					t.Fatal("zero makespan")
				}
				got := replayOnce(t, workers, sc.topts, sc.rcfg)
				if !reflect.DeepEqual(ref, got) {
					t.Fatalf("workers=%d: two identical replays diverged", workers)
				}
				perWorker[workers] = ref
			}
			// Traffic served is invariant across worker counts; queueing
			// (makespan) only improves with more workers.
			one, eight := perWorker[1], perWorker[8]
			if one.Stats.Reads != eight.Stats.Reads || one.Stats.Writes != eight.Stats.Writes ||
				one.Stats.Errors != eight.Stats.Errors {
				t.Fatal("served traffic depends on worker count")
			}
			if perWorker[8].Stats.Requests != perWorker[32].Stats.Requests {
				t.Fatal("request count depends on worker count")
			}
			// (Makespan monotonicity holds under saturating load — see
			// TestReplayThroughputScalesWithWorkers; in idle-dominated
			// regimes extra workers admit extra scrub budgets, so the
			// tail can lengthen slightly.)
		})
	}
}

// TestReplayThroughputScalesWithWorkers: under saturating open-loop load,
// modeled throughput (requests per tick) increases monotonically from 1
// through 8 workers — the E9 scaling claim, asserted, not just tabled.
func TestReplayThroughputScalesWithWorkers(t *testing.T) {
	topts := TraceOpts{Mode: "open", Mix: "uniform", Requests: 8000, Rate: 50, Seed: 29}
	rcfg := ReplayConfig{ScrubPeriod: 1000}
	prev := int64(1 << 62)
	for _, workers := range []int{1, 2, 4, 8} {
		res := replayOnce(t, workers, topts, rcfg)
		if res.Workers != workers {
			t.Fatalf("modeled %d workers, want %d", res.Workers, workers)
		}
		if res.Ticks >= prev {
			t.Fatalf("workers=%d: makespan %d did not improve on %d", workers, res.Ticks, prev)
		}
		if len(res.PerWorker) != workers {
			t.Fatalf("workers=%d: %d worker clocks", workers, len(res.PerWorker))
		}
		prev = res.Ticks
	}
}

// TestReplayFaultOverlayCorrects: with the overlay on, faults are
// injected and the admitted scrubs correct them — and with it off, the
// scrubs raise zero ECC alarms.
func TestReplayFaultOverlayCorrects(t *testing.T) {
	topts := TraceOpts{Mode: "open", Mix: "uniform", Requests: 2000, Seed: 5}
	clean := replayOnce(t, 4, topts, ReplayConfig{ScrubPeriod: 200})
	if clean.Stats.Scrubs == 0 {
		t.Fatal("no scrubs admitted")
	}
	if clean.Stats.Corrected != 0 || clean.Stats.Uncorrectable != 0 || clean.Stats.Injected != 0 {
		t.Fatalf("clean run raised ECC alarms: %+v", clean.Stats)
	}
	scrubsPerBank := int64(0)
	for _, b := range clean.PerBank {
		scrubsPerBank += b.Scrubs
	}
	if scrubsPerBank != clean.Stats.Scrubs {
		t.Fatalf("per-bank scrubs %d != total %d", scrubsPerBank, clean.Stats.Scrubs)
	}
	faulty := replayOnce(t, 4, topts, ReplayConfig{
		ScrubPeriod: 200, FaultSER: 3e5, Seed: 11,
	})
	if faulty.Stats.Injected == 0 {
		t.Fatal("overlay injected nothing")
	}
	if faulty.Stats.Corrected == 0 {
		t.Fatalf("scrubs corrected nothing despite %d injected flips", faulty.Stats.Injected)
	}
}

// TestReplayScrubInterferenceShowsInTail: admitted scrub work delays
// queued requests, so the high quantiles with scrubbing dominate the
// scrub-free run — the queueing effect E9 measures.
func TestReplayScrubInterferenceShowsInTail(t *testing.T) {
	topts := TraceOpts{Mode: "open", Mix: "uniform", Requests: 4000, Rate: 0.5, Seed: 21}
	quiet := replayOnce(t, 8, topts, ReplayConfig{})
	noisy := replayOnce(t, 8, topts, ReplayConfig{ScrubPeriod: 50})
	if noisy.Stats.Scrubs == 0 {
		t.Fatal("no scrub interference generated")
	}
	if noisy.Stats.Lat.Quantile(0.999) <= quiet.Stats.Lat.Quantile(0.999) {
		t.Fatalf("p999 with scrubs (%d) not above scrub-free (%d)",
			noisy.Stats.Lat.Quantile(0.999), quiet.Stats.Lat.Quantile(0.999))
	}
}

// TestReplayClosedLoopLatencyCoversWait: in the lockstep closed loop a
// client's request waits for its bank's whole round, so mean latency must
// exceed the bare service cost — and every request still completes.
func TestReplayClosedLoopLatencyCoversWait(t *testing.T) {
	res := replayOnce(t, 4, TraceOpts{
		Mode: "closed", Mix: "uniform", Requests: 3200, Clients: 64, Seed: 13,
	}, ReplayConfig{})
	if res.Stats.Requests != 3200 {
		t.Fatalf("served %d of 3200", res.Stats.Requests)
	}
	if res.Stats.Lat.Mean() <= float64(costRead) {
		t.Fatalf("closed-loop mean latency %.1f does not include queueing", res.Stats.Lat.Mean())
	}
}

// TestReplayResultMergeOrderIndependent: Result merging (used to fold
// per-worker shards and to combine runs) is commutative — the shared
// property the latency histograms inherit from fleet.Hist.
func TestReplayResultMergeOrderIndependent(t *testing.T) {
	a := replayOnce(t, 2, TraceOpts{Mode: "open", Requests: 500, Seed: 1}, ReplayConfig{})
	b := replayOnce(t, 3, TraceOpts{Mode: "open", Mix: "scan", Requests: 700, Width: 32, Seed: 2}, ReplayConfig{ScrubPeriod: 100})
	ab, ba := a.Merge(b), b.Merge(a)
	if !reflect.DeepEqual(ab, ba) {
		t.Fatal("Result.Merge not commutative")
	}
	if ab.Stats.Requests != 1200 || ab.Stats.Lat.N != 1200 {
		t.Fatalf("merged counts wrong: %+v", ab.Stats)
	}
	// The makespan invariant survives merging: no worker clock exceeds it.
	for i, c := range ab.PerWorker {
		if c > ab.Ticks {
			t.Fatalf("merged worker %d clock %d exceeds makespan %d", i, c, ab.Ticks)
		}
	}
}

// TestReplayScanCoalesces: a scanning client stream on wide rows hits the
// open row repeatedly, so the executor must report coalesced service.
func TestReplayScanCoalesces(t *testing.T) {
	res := replayOnce(t, 4, TraceOpts{
		Mode: "open", Mix: "scan", Requests: 2000, Width: 30, Rate: 2, Clients: 2, Seed: 17,
	}, ReplayConfig{})
	if res.Stats.Coalesced == 0 {
		t.Fatal("scan stream never coalesced")
	}
	if res.Stats.Coalesced < res.Stats.Requests/10 {
		t.Fatalf("scan coalesced only %d of %d", res.Stats.Coalesced, res.Stats.Requests)
	}
}

// TestGenTraceDeterministicAndBankConfined: the trace is a pure function
// of (org, opts), requests stay inside their bank, and arrival times are
// non-decreasing per bank.
func TestGenTraceDeterministicAndBankConfined(t *testing.T) {
	org := mmpu.Custom(90, 16, 2)
	bankBits := int64(2) * 90 * 90
	for _, mode := range ModeNames() {
		for _, mix := range MixNames() {
			o := TraceOpts{Mode: mode, Mix: mix, Requests: 800, Width: 32, Seed: 42}
			a, err := GenTrace(org, o)
			if err != nil {
				t.Fatal(err)
			}
			b, err := GenTrace(org, o)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s/%s: trace not deterministic", mode, mix)
			}
			if a.Requests() != 800 {
				t.Fatalf("%s/%s: generated %d requests", mode, mix, a.Requests())
			}
			for bank, reqs := range a.PerBank {
				lo, hi := int64(bank)*bankBits, int64(bank+1)*bankBits
				prev := int64(0)
				for _, tq := range reqs {
					if tq.Req.Addr < lo || tq.Req.Addr+int64(tq.Req.Width) > hi {
						t.Fatalf("%s/%s: request %+v leaks out of bank %d", mode, mix, tq.Req, bank)
					}
					if tq.At < prev {
						t.Fatalf("%s/%s: arrivals not sorted in bank %d", mode, mix, bank)
					}
					prev = tq.At
				}
			}
		}
	}
	if _, err := GenTrace(org, TraceOpts{Mix: "nope"}); err == nil {
		t.Fatal("unknown mix accepted")
	}
	if _, err := GenTrace(org, TraceOpts{Mode: "nope"}); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if _, err := GenTrace(org, TraceOpts{Width: 70}); err == nil {
		t.Fatal("width 70 accepted")
	}
}

// TestReplayMatchesDirectMemoryState: replaying a write-only scan leaves
// the memory holding exactly the trace's data — the replay engine serves
// real storage, not a model of it.
func TestReplayMatchesDirectMemoryState(t *testing.T) {
	mem := testMem(t, 90, 15, 4, 1)
	org := mem.Config().Org
	tr, err := GenTrace(org, TraceOpts{
		Mode: "open", Mix: "scan", Requests: 400, Width: 32, WriteFrac: 1, Clients: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(ReplayConfig{Mem: mem, Workers: 2}, tr); err != nil {
		t.Fatal(err)
	}
	// Walk each bank's trace backwards so only the last write to any
	// overlapping span (bank-edge clamping can overlap spans) is checked.
	for _, reqs := range tr.PerBank {
		claimed := make(map[int64]bool)
		for i := len(reqs) - 1; i >= 0; i-- {
			tq := reqs[i]
			fresh := true
			for b := int64(0); b < int64(tq.Req.Width); b++ {
				if claimed[tq.Req.Addr+b] {
					fresh = false
				}
				claimed[tq.Req.Addr+b] = true
			}
			if !fresh {
				continue
			}
			got, err := mem.ReadWord(tq.Req.Addr, tq.Req.Width)
			if err != nil {
				t.Fatal(err)
			}
			want := tq.Req.Data & (1<<uint(tq.Req.Width) - 1)
			if got != want {
				t.Fatalf("addr %d holds %#x, trace wrote %#x", tq.Req.Addr, got, want)
			}
		}
	}
}
