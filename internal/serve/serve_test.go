package serve

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/mmpu"
	"repro/internal/pmem"
)

// testMem builds a fresh protected memory for serving tests.
func testMem(t testing.TB, n, m, banks, perBank int) *pmem.Memory {
	t.Helper()
	mem, err := pmem.New(pmem.Config{
		Org: mmpu.Custom(n, banks, perBank), M: m, K: 2, ECCEnabled: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return mem
}

// TestServeRaceStress is the concurrency proof of the serving layer: N
// client goroutines hammer reads and writes over disjoint address sets
// while background scrubs run, at 1, 8, and 32 bank workers. Every
// client must observe read-after-write consistency (a server response is
// the serialization point), and with no faults injected the scrubs must
// raise zero ECC alarms. Run under -race this also proves the
// channel/lock discipline.
func TestServeRaceStress(t *testing.T) {
	const (
		clients = 8
		iters   = 120
		width   = 37 // word-unaligned, crosses row boundaries
	)
	for _, workers := range []int{1, 8, 32} {
		mem := testMem(t, 45, 15, 32, 1)
		total := mem.Config().Org.DataBits()
		srv, err := New(Config{Mem: mem, Workers: workers, ScrubEvery: 16, BatchSize: 8})
		if err != nil {
			t.Fatal(err)
		}
		span := total / clients
		var wg sync.WaitGroup
		errCh := make(chan error, clients)
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(1000 + c)))
				base := int64(c) * span
				for k := 0; k < iters; k++ {
					// Stride through the client's region, including spots
					// that straddle crossbar (= bank, PerBank 1) boundaries.
					addr := base + int64(k)*97%max64(span-width, 1)
					want := rng.Uint64() & (1<<width - 1)
					if err := srv.Write(addr, width, want); err != nil {
						errCh <- err
						return
					}
					got, err := srv.Read(addr, width)
					if err != nil {
						errCh <- err
						return
					}
					if got != want {
						errCh <- fmt.Errorf("workers=%d client=%d addr=%d: read %#x after writing %#x", workers, c, addr, got, want)
						return
					}
				}
			}(c)
		}
		wg.Wait()
		st := srv.Close()
		close(errCh)
		for err := range errCh {
			t.Fatal(err)
		}
		if st.Requests != clients*iters*2 {
			t.Fatalf("workers=%d: served %d of %d requests", workers, st.Requests, clients*iters*2)
		}
		if st.Errors != 0 {
			t.Fatalf("workers=%d: %d request errors", workers, st.Errors)
		}
		if st.Scrubs == 0 {
			t.Fatalf("workers=%d: background scrubs never ran", workers)
		}
		// Zero ECC false alarms: nothing injected faults, so nothing may
		// be "corrected" and nothing may be uncorrectable.
		if st.Corrected != 0 || st.Uncorrectable != 0 {
			t.Fatalf("workers=%d: ECC false alarms: corrected=%d uncorrectable=%d",
				workers, st.Corrected, st.Uncorrectable)
		}
		if st.Lat.N != st.Requests {
			t.Fatalf("workers=%d: %d latencies for %d requests", workers, st.Lat.N, st.Requests)
		}
		// The quiesced memory is fully ECC-consistent.
		for i := 0; i < mem.Config().Org.Crossbars(); i++ {
			if !mem.Crossbar(i).CheckConsistent() {
				t.Fatalf("workers=%d: crossbar %d inconsistent after serving", workers, i)
			}
		}
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// TestServerCrossBankSpans: requests whose span crosses a bank boundary
// are owned by the starting bank's worker but write into the neighbor
// under pmem's locks — they must still round-trip while both banks'
// workers serve other traffic.
func TestServerCrossBankSpans(t *testing.T) {
	mem := testMem(t, 45, 15, 4, 1)
	per := int64(45 * 45)
	srv, err := New(Config{Mem: mem, Workers: 4, ScrubEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			addr := int64(c+1)*per - 31 // straddles into bank c+1 (wraps: last clamps)
			if c == 3 {
				addr = 4*per - 64
			}
			for k := 0; k < 60; k++ {
				want := uint64(k)<<32 | uint64(c)
				if err := srv.Write(addr, 64, want); err != nil {
					t.Error(err)
					return
				}
				got, err := srv.Read(addr, 64)
				if err != nil || got != want {
					t.Errorf("c=%d k=%d: got %#x, %v, want %#x", c, k, got, err, want)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

func TestServerValidatesRequests(t *testing.T) {
	mem := testMem(t, 45, 15, 2, 1)
	srv, err := New(Config{Mem: mem, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(Request{Op: OpRead, Addr: -1, Width: 8}); err == nil {
		t.Fatal("negative address accepted")
	}
	if _, err := srv.Submit(Request{Op: OpRead, Addr: mem.Config().Org.DataBits(), Width: 8}); err == nil {
		t.Fatal("out-of-range address accepted")
	}
	if _, err := srv.Read(0, 65); !errors.Is(err, pmem.ErrSpan) {
		t.Fatalf("width 65 error = %v, want ErrSpan", err)
	}
	if err := srv.Write(0, -1, 0); !errors.Is(err, pmem.ErrSpan) {
		t.Fatalf("negative width error = %v, want ErrSpan", err)
	}
	st := srv.Close()
	if st.Errors != 2 {
		t.Fatalf("error tally = %d, want 2", st.Errors)
	}
	if _, err := srv.Submit(Request{Op: OpRead, Addr: 0, Width: 8}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close submit error = %v, want ErrClosed", err)
	}
	if st2 := srv.Close(); st2.Requests != st.Requests {
		t.Fatal("second Close diverged")
	}
}

// TestExecutorCoalescesSameRowRuns pins the row-buffer behavior at the
// executor level, where it is deterministic: consecutive same-row
// requests share one activation, reads see the group's earlier writes,
// and a row change breaks the run.
func TestExecutorCoalescesSameRowRuns(t *testing.T) {
	mem := testMem(t, 45, 15, 2, 2)
	ex := executor{mem: mem, org: mem.Config().Org}
	reqs := []Request{
		{Op: OpWrite, Addr: 0, Width: 16, Data: 0xBEEF},
		{Op: OpRead, Addr: 0, Width: 16},            // same row, coalesced, sees the write
		{Op: OpWrite, Addr: 20, Width: 16, Data: 7}, // same row, coalesced
		{Op: OpRead, Addr: 45, Width: 16},           // next row: new activation
		{Op: OpRead, Addr: 40, Width: 10},           // crosses rows: spanning
		{Op: OpRead, Addr: 0, Width: 16},            // back to row 0: new activation
	}
	var got []execInfo
	var resps []Response
	ex.run(reqs, func(i int, resp Response, info execInfo) {
		if i != len(got) {
			t.Fatalf("emission out of order: got %d, want %d", i, len(got))
		}
		got = append(got, info)
		resps = append(resps, resp)
	})
	wantCoal := []bool{false, true, true, false, false, false}
	wantSegs := []int{1, 1, 1, 1, 2, 1}
	for i := range reqs {
		if resps[i].Err != nil {
			t.Fatalf("req %d: %v", i, resps[i].Err)
		}
		if got[i].coalesced != wantCoal[i] || got[i].segments != wantSegs[i] {
			t.Fatalf("req %d: info %+v, want coalesced=%v segments=%d", i, got[i], wantCoal[i], wantSegs[i])
		}
	}
	if resps[1].Data != 0xBEEF {
		t.Fatalf("coalesced read missed the group's write: %#x", resps[1].Data)
	}
	if resps[5].Data != 0xBEEF {
		t.Fatalf("committed row lost the write: %#x", resps[5].Data)
	}
}
