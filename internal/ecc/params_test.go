package ecc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		p  Params
		ok bool
	}{
		{Params{N: 1020, M: 15}, true},
		{Params{N: 45, M: 15}, true},
		{Params{N: 9, M: 3}, true},
		{Params{N: 1020, M: 14}, false}, // even m
		{Params{N: 1000, M: 15}, false}, // m does not divide n
		{Params{N: 15, M: 1}, false},    // m too small
		{Params{N: 0, M: 3}, false},
		{Params{N: -9, M: 3}, false},
	}
	for _, c := range cases {
		err := c.p.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.p, err, c.ok)
		}
	}
}

func TestPaperParams(t *testing.T) {
	p := PaperParams()
	if p.N != 1020 || p.M != 15 {
		t.Fatalf("PaperParams = %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.BlocksPerSide() != 68 {
		t.Fatalf("BlocksPerSide = %d, want 68", p.BlocksPerSide())
	}
	if p.NumBlocks() != 68*68 {
		t.Fatalf("NumBlocks = %d", p.NumBlocks())
	}
	// Table II: check-bit count = 2·m·(n/m)² = 2·15·68² = 138720 ≈ 1.39e5.
	if p.TotalCheckBits() != 138720 {
		t.Fatalf("TotalCheckBits = %d, want 138720 (Table II)", p.TotalCheckBits())
	}
	if p.DataBitsPerBlock() != 225 || p.CheckBitsPerBlock() != 30 {
		t.Fatal("per-block bit counts wrong")
	}
}

func TestDiagonalIndexRanges(t *testing.T) {
	p := Params{N: 45, M: 15}
	for lr := 0; lr < p.M; lr++ {
		for lc := 0; lc < p.M; lc++ {
			if d := p.LeadIdx(lr, lc); d < 0 || d >= p.M {
				t.Fatalf("LeadIdx(%d,%d) = %d out of range", lr, lc, d)
			}
			if d := p.CounterIdx(lr, lc); d < 0 || d >= p.M {
				t.Fatalf("CounterIdx(%d,%d) = %d out of range", lr, lc, d)
			}
		}
	}
}

func TestDiagonalsAreWrapAround(t *testing.T) {
	// Each leading diagonal of a block contains exactly m cells, one per row
	// and one per column (it's a permutation) — same for counter diagonals.
	p := Params{N: 15, M: 15}
	for d := 0; d < p.M; d++ {
		rowsSeen := make(map[int]bool)
		colsSeen := make(map[int]bool)
		count := 0
		for lr := 0; lr < p.M; lr++ {
			for lc := 0; lc < p.M; lc++ {
				if p.LeadIdx(lr, lc) == d {
					count++
					rowsSeen[lr] = true
					colsSeen[lc] = true
				}
			}
		}
		if count != p.M || len(rowsSeen) != p.M || len(colsSeen) != p.M {
			t.Fatalf("leading diagonal %d: count=%d rows=%d cols=%d", d, count, len(rowsSeen), len(colsSeen))
		}
	}
}

func TestIntersectUnique(t *testing.T) {
	// For odd m, Intersect(i,j) must return the one cell on both diagonals.
	for _, m := range []int{3, 5, 7, 15, 21} {
		p := Params{N: m, M: m}
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				lr, lc := p.Intersect(i, j)
				if lr < 0 || lr >= m || lc < 0 || lc >= m {
					t.Fatalf("m=%d Intersect(%d,%d) = (%d,%d) out of range", m, i, j, lr, lc)
				}
				if p.LeadIdx(lr, lc) != i || p.CounterIdx(lr, lc) != j {
					t.Fatalf("m=%d Intersect(%d,%d) = (%d,%d) not on both diagonals", m, i, j, lr, lc)
				}
			}
		}
		// And it is a bijection: m² (i,j) pairs map to m² distinct cells.
		seen := make(map[[2]int]bool)
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				lr, lc := p.Intersect(i, j)
				seen[[2]int{lr, lc}] = true
			}
		}
		if len(seen) != m*m {
			t.Fatalf("m=%d: Intersect not a bijection (%d distinct cells)", m, len(seen))
		}
	}
}

func TestIntersectRoundTripProperty(t *testing.T) {
	// cell → (lead, counter) → Intersect → same cell.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 3 + 2*rng.Intn(10)
		p := Params{N: m, M: m}
		lr, lc := rng.Intn(m), rng.Intn(m)
		gr, gc := p.Intersect(p.LeadIdx(lr, lc), p.CounterIdx(lr, lc))
		return gr == lr && gc == lc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEvenMBreaksUniqueness(t *testing.T) {
	// Documented failure mode: with even m two diagonals can intersect in
	// two cells (the paper's footnote 1 — why m must be odd).
	m := 4
	found := false
	for i := 0; i < m && !found; i++ {
		for j := 0; j < m && !found; j++ {
			count := 0
			for lr := 0; lr < m; lr++ {
				for lc := 0; lc < m; lc++ {
					if (lr+lc)%m == i && ((lr-lc)%m+m)%m == j {
						count++
					}
				}
			}
			if count > 1 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("expected some diagonal pair to intersect twice for even m")
	}
}

func TestBlockOf(t *testing.T) {
	p := Params{N: 30, M: 15}
	br, bc, lr, lc := p.BlockOf(17, 29)
	if br != 1 || bc != 1 || lr != 2 || lc != 14 {
		t.Fatalf("BlockOf(17,29) = (%d,%d,%d,%d)", br, bc, lr, lc)
	}
}

func TestOverhead(t *testing.T) {
	p := PaperParams()
	if got := p.Overhead(); got != 2.0/15.0 {
		t.Fatalf("Overhead = %g", got)
	}
}
