package ecc

// The DEC backend: a true double-error-correcting, triple-error-detecting
// horizontal code over M-bit words, the "what if one correction per word
// is not enough" comparison point the PRM-style lightweight multi-error
// decoders motivate. Each M-bit word of a row is one codeword of a
// shortened extended BCH(31,21) code over GF(2⁵): the parity-check matrix
// stacks [α^j ; α^{3j} ; 1] for the BCH positions plus the overall-parity
// extension column, giving minimum distance ≥ 6 — any double error is
// corrected, any triple is detected, and no ≤3-bit error is ever
// miscorrected (a triple aliasing a ≤2-bit pattern would need five
// linearly dependent H columns, which d ≥ 6 forbids).
//
// The matrix is brought to systematic form at construction by
// Gauss-Jordan elimination, pivoting from the highest position down: the
// 11 pivot positions become the stored check bits (pure unit columns),
// the remaining M positions carry the data in order, and each data bit's
// 11-bit column pattern drives Θ(changed-bits) delta updates exactly like
// the Hamming backend. Decoding is a syndrome lookup over all ≤2-position
// error patterns, verified collision-free when the table is built.
//
// Like every horizontal word code, a line-parallel MAGIC operation
// changes one bit of each crossed word, and with in-place overwrites the
// word must be re-encoded from all M data bits — LineUpdateReads is
// lines·M, the update asymmetry the diagonal placement avoids.

import (
	"fmt"
	mathbits "math/bits"
	"sort"
	"sync"

	"repro/internal/bitmat"
)

// decCheckBits is the fixed redundancy of the shortened extended
// BCH(31,21): 10 BCH syndrome bits plus the overall parity.
const decCheckBits = 11

// validateDECGeometry: the word tiling of the horizontal schemes, with
// the word width capped by the mother code length (m + 11 positions must
// fit the 31 BCH columns plus the extension column).
func validateDECGeometry(p Params) error {
	if p.M < 2 {
		return fmt.Errorf("ecc: word width m=%d too small (need m ≥ 2)", p.M)
	}
	if p.M > 21 {
		return fmt.Errorf("ecc: word width m=%d too wide for shortened BCH(31,21) (need m ≤ 21)", p.M)
	}
	if p.N <= 0 || p.N%p.M != 0 {
		return fmt.Errorf("ecc: crossbar size n=%d must be a positive multiple of m=%d", p.N, p.M)
	}
	return nil
}

// gf32Pow returns α^e in GF(32) with primitive polynomial x⁵+x²+1.
func gf32Pow(e int) uint16 {
	v := uint16(1)
	for i := 0; i < e%31; i++ {
		v <<= 1
		if v&0x20 != 0 {
			v ^= 0x25
		}
	}
	return v
}

// decCode is the geometry-independent code table for one word width:
// per-data-bit column patterns and the syndrome → error-pattern map.
type decCode struct {
	m       int
	pattern []uint16           // pattern[i] = data bit i's 11-bit H column
	decode  map[uint16][]uint8 // syndrome → sorted logical positions (<m data, ≥m check)
}

// buildDECCode constructs the systematic shortened code for data width m.
func buildDECCode(m int) *decCode {
	n := m + decCheckBits
	cols := make([]uint16, n)
	for j := 0; j < n-1; j++ {
		cols[j] = gf32Pow(j) | gf32Pow(3*j)<<5 | 1<<10
	}
	cols[n-1] = 1 << 10 // the extension (overall-parity) column

	// Transpose to row vectors over the n positions and Gauss-Jordan with
	// row operations only (row ops change the syndrome basis, never the
	// code), pivoting from the highest position down: the 11 pivot
	// positions become the stored check bits.
	rows := make([]uint32, decCheckBits)
	for b := range rows {
		for pos, col := range cols {
			if col&(1<<uint(b)) != 0 {
				rows[b] |= 1 << uint(pos)
			}
		}
	}
	isPivot := make([]bool, n)
	var pivots []int  // pivot positions, in pick order
	var pivRows []int // the row reduced at each pivot
	usedRow := make([]bool, decCheckBits)
	for pos := n - 1; pos >= 0 && len(pivots) < decCheckBits; pos-- {
		pr := -1
		for ri := range rows {
			if !usedRow[ri] && rows[ri]&(1<<uint(pos)) != 0 {
				pr = ri
				break
			}
		}
		if pr < 0 {
			continue
		}
		usedRow[pr], isPivot[pos] = true, true
		pivots, pivRows = append(pivots, pos), append(pivRows, pr)
		for ri := range rows {
			if ri != pr && rows[ri]&(1<<uint(pos)) != 0 {
				rows[ri] ^= rows[pr]
			}
		}
	}
	if len(pivots) != decCheckBits {
		panic(fmt.Sprintf("ecc: dec code rank %d < %d at m=%d", len(pivots), decCheckBits, m))
	}

	// Stored check bit j = the j-th pivot; syndrome bit j is its reduced
	// row. A data position's 11-bit pattern reads those rows column-wise.
	c := &decCode{m: m, pattern: make([]uint16, 0, m), decode: make(map[uint16][]uint8)}
	for pos := 0; pos < n; pos++ {
		if isPivot[pos] {
			continue
		}
		var pat uint16
		for j := 0; j < decCheckBits; j++ {
			if rows[pivRows[j]]&(1<<uint(pos)) != 0 {
				pat |= 1 << uint(j)
			}
		}
		c.pattern = append(c.pattern, pat)
	}
	if len(c.pattern) != m {
		panic(fmt.Sprintf("ecc: dec code has %d data positions at m=%d", len(c.pattern), m))
	}

	// Error-pattern table over logical positions: i < m flips data bit i
	// (syndrome delta pattern[i]), i ≥ m flips stored check bit i−m
	// (syndrome delta e_{i−m}). Distance ≥ 6 makes every ≤2-position
	// syndrome unique and nonzero; the build verifies that.
	synOf := func(pos int) uint16 {
		if pos < m {
			return c.pattern[pos]
		}
		return 1 << uint(pos-m)
	}
	add := func(syn uint16, positions ...uint8) {
		if syn == 0 {
			panic(fmt.Sprintf("ecc: dec error pattern %v has zero syndrome at m=%d", positions, m))
		}
		if prev, dup := c.decode[syn]; dup {
			panic(fmt.Sprintf("ecc: dec syndrome collision %v vs %v at m=%d", prev, positions, m))
		}
		c.decode[syn] = positions
	}
	for i := 0; i < n; i++ {
		add(synOf(i), uint8(i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			add(synOf(i)^synOf(j), uint8(i), uint8(j))
		}
	}
	return c
}

// decCodes caches the code tables per word width; schemes of the same
// width share one immutable table. Fleet workers construct machines
// concurrently, so the cache is mutex-guarded.
var decCodes = struct {
	sync.Mutex
	byWidth map[int]*decCode
}{byWidth: map[int]*decCode{}}

func decCodeFor(m int) *decCode {
	decCodes.Lock()
	defer decCodes.Unlock()
	if c, ok := decCodes.byWidth[m]; ok {
		return c
	}
	c := buildDECCode(m)
	decCodes.byWidth[m] = c
	return c
}

// decScheme is the stored state: 11 check bits per M-bit word.
type decScheme struct {
	p     Params
	code  *decCode
	check [][]uint16 // [row][word]

	delta *bitmat.Vec // scratch for the line-delta updates
}

// newDECScheme implements SchemeSpec.New.
func newDECScheme(p Params, mem *bitmat.Mat) Scheme {
	if err := validateDECGeometry(p); err != nil {
		panic(err)
	}
	words := p.N / p.M
	s := &decScheme{
		p:     p,
		code:  decCodeFor(p.M),
		check: make([][]uint16, p.N),
		delta: bitmat.NewVec(p.N),
	}
	for r := range s.check {
		s.check[r] = make([]uint16, words)
	}
	if mem != nil {
		for r := 0; r < p.N; r++ {
			for g := 0; g < words; g++ {
				s.check[r][g] = s.encodeWord(s.dataWord(mem, r, g))
			}
		}
	}
	return s
}

func (s *decScheme) Name() string   { return SchemeDEC }
func (s *decScheme) Params() Params { return s.p }

func (s *decScheme) Clone() Scheme {
	out := &decScheme{
		p:     s.p,
		code:  s.code, // immutable, shared
		check: make([][]uint16, len(s.check)),
		delta: bitmat.NewVec(s.p.N),
	}
	for r := range s.check {
		out.check[r] = append([]uint16(nil), s.check[r]...)
	}
	return out
}

func (s *decScheme) Equal(o Scheme) bool {
	od, ok := o.(*decScheme)
	if !ok || s.p != od.p {
		return false
	}
	for r := range s.check {
		for g := range s.check[r] {
			if s.check[r][g] != od.check[r][g] {
				return false
			}
		}
	}
	return true
}

// dataWord reads the M data bits of word g in row r, LSB = lowest column.
func (s *decScheme) dataWord(mem *bitmat.Mat, r, g int) uint64 {
	return mem.Row(r).Uint64At(g*s.p.M, s.p.M)
}

// encodeWord computes the 11 check bits of a data word.
func (s *decScheme) encodeWord(w uint64) uint16 {
	var c uint16
	for w != 0 {
		i := mathbits.TrailingZeros64(w)
		w &= w - 1
		c ^= s.code.pattern[i]
	}
	return c
}

// flipBit applies the Θ(1) delta update for one changed data bit.
func (s *decScheme) flipBit(r, c int) {
	s.check[r][c/s.p.M] ^= s.code.pattern[c%s.p.M]
}

func (s *decScheme) UpdateWrite(r, c int, oldVal, newVal bool) {
	if oldVal != newVal {
		s.flipBit(r, c)
	}
}

func (s *decScheme) UpdateRowWrite(r int, oldRow, newRow, cols *bitmat.Vec) {
	s.delta.Xor(oldRow, newRow)
	s.delta.And(s.delta, cols)
	s.delta.ForEachOne(func(c int) { s.flipBit(r, c) })
}

func (s *decScheme) UpdateColumnWrite(c int, oldCol, newCol, rows *bitmat.Vec) {
	s.delta.Xor(oldCol, newCol)
	s.delta.And(s.delta, rows)
	s.delta.ForEachOne(func(r int) { s.flipBit(r, c) })
}

// checkBitID packs (word row, check bit) into Diagnosis.Diag.
func (s *decScheme) checkBitID(lr, j int) int { return lr*decCheckBits + j }

// diagnoseWord decodes word g of row r into zero, one, or two diagnoses
// (a corrected double names both positions), sorted data-before-check by
// ascending position.
func (s *decScheme) diagnoseWord(mem *bitmat.Mat, r, g, lr int) []Diagnosis {
	syn := s.check[r][g] ^ s.encodeWord(s.dataWord(mem, r, g))
	if syn == 0 {
		return nil
	}
	positions, ok := s.code.decode[syn]
	if !ok {
		// ≥3 errors: a nonzero syndrome matching no ≤2-position pattern.
		return []Diagnosis{{Kind: Uncorrectable, LR: lr}}
	}
	out := make([]Diagnosis, 0, len(positions))
	for _, pos := range positions {
		if int(pos) < s.p.M {
			out = append(out, Diagnosis{Kind: DataError, LR: lr, LC: int(pos)})
		} else {
			out = append(out, Diagnosis{Kind: CheckError, LR: lr, Diag: s.checkBitID(lr, int(pos)-s.p.M)})
		}
	}
	return out
}

func (s *decScheme) CheckBlock(mem *bitmat.Mat, br, bc int) []Diagnosis {
	var out []Diagnosis
	for lr := 0; lr < s.p.M; lr++ {
		out = append(out, s.diagnoseWord(mem, br*s.p.M+lr, bc, lr)...)
	}
	return out
}

func (s *decScheme) CorrectBlock(mem *bitmat.Mat, br, bc int) []Diagnosis {
	var out []Diagnosis
	for lr := 0; lr < s.p.M; lr++ {
		r := br*s.p.M + lr
		ds := s.diagnoseWord(mem, r, bc, lr)
		for _, d := range ds {
			switch d.Kind {
			case DataError:
				mem.Flip(r, bc*s.p.M+d.LC)
			case CheckError:
				s.check[r][bc] ^= 1 << uint(d.Diag-s.checkBitID(lr, 0))
			}
		}
		out = append(out, ds...)
	}
	return out
}

func (s *decScheme) RebuildBlock(mem *bitmat.Mat, br, bc int) {
	for lr := 0; lr < s.p.M; lr++ {
		r := br*s.p.M + lr
		s.check[r][bc] = s.encodeWord(s.dataWord(mem, r, bc))
	}
}

// RebuildRowWords: the codeword is one horizontal word, fully contained
// in its row — re-encode the single crossed word.
func (s *decScheme) RebuildRowWords(mem *bitmat.Mat, r, bc int) bool {
	s.check[r][bc] = s.encodeWord(s.dataWord(mem, r, bc))
	return true
}

// ReferenceCheck re-derives each word's diagnosis bit-serially: every
// syndrome bit is recomputed by looping the data positions one at a time,
// and decoding is a brute-force search over all ≤2-position error
// patterns instead of the production lookup table.
func (s *decScheme) ReferenceCheck(mem *bitmat.Mat, br, bc int) []Diagnosis {
	m := s.p.M
	n := m + decCheckBits
	synOf := func(pos int) uint16 {
		if pos < m {
			return s.code.pattern[pos]
		}
		return 1 << uint(pos-m)
	}
	var out []Diagnosis
	for lr := 0; lr < m; lr++ {
		r := br*m + lr
		var syn uint16
		for b := 0; b < decCheckBits; b++ {
			parity := s.check[r][bc]&(1<<uint(b)) != 0
			for i := 0; i < m; i++ {
				if s.code.pattern[i]&(1<<uint(b)) != 0 && mem.Get(r, bc*m+i) {
					parity = !parity
				}
			}
			if parity {
				syn |= 1 << uint(b)
			}
		}
		if syn == 0 {
			continue
		}
		var positions []int
		found := false
		for i := 0; i < n && !found; i++ {
			if synOf(i) == syn {
				positions, found = []int{i}, true
			}
		}
		for i := 0; i < n && !found; i++ {
			for j := i + 1; j < n && !found; j++ {
				if synOf(i)^synOf(j) == syn {
					positions, found = []int{i, j}, true
				}
			}
		}
		if !found {
			out = append(out, Diagnosis{Kind: Uncorrectable, LR: lr})
			continue
		}
		sort.Ints(positions)
		for _, pos := range positions {
			if pos < m {
				out = append(out, Diagnosis{Kind: DataError, LR: lr, LC: pos})
			} else {
				out = append(out, Diagnosis{Kind: CheckError, LR: lr, Diag: s.checkBitID(lr, pos-m)})
			}
		}
	}
	return out
}

// CoversCell: the code unit is one word row.
func (s *decScheme) CoversCell(d Diagnosis, lr, _ int) bool { return d.LR == lr }

// UnitOf: the codeword lives in the cell's own block, word row sub.
func (s *decScheme) UnitOf(r, c int) (ubr, ubc, sub int) {
	return r / s.p.M, c / s.p.M, r % s.p.M
}

// HomeColumns: words are block-column-local.
func (s *decScheme) HomeColumns(firstBC, lastBC int) (int, int) { return firstBC, lastBC }

// OverheadBits: 11 bits per M-bit word, N/M words per row, N rows.
func (s *decScheme) OverheadBits() int {
	return s.p.N * (s.p.N / s.p.M) * decCheckBits
}

// LineUpdateReads: every crossed word re-encodes from all M data bits.
func (s *decScheme) LineUpdateReads(lines int) int { return lines * s.p.M }
