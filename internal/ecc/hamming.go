package ecc

import "repro/internal/bitmat"

// This file implements the conventional alternative the paper's
// introduction dismisses for PIM: a Hamming SEC code over horizontal
// data words, the scheme used when "ECC can be implemented along data
// transfer" in ordinary memories. It exists to make the comparison
// quantitative:
//
//   - Correction power per word is comparable to the diagonal code's
//     per-block power (single-error correction).
//   - But the update cost under stateful-logic parallelism is not: a
//     column-parallel MAGIC operation changes one bit of *every* word it
//     crosses, and each changed bit requires recomputing that word's
//     check bits from all its data bits — Θ(w) work per word, Θ(n·w)
//     overall — because Hamming check bits are not a per-bit delta code
//     over the geometry MAGIC writes in.
//
// The diagonal code exists precisely to make every parallel write a
// single-bit delta per check bit.

// HammingCode protects each w-bit horizontal word of a matrix with
// ⌈log2(w)⌉+1 check bits (SEC via syndrome, plus overall parity for a
// distinct zero-vs-check-bit-error signature is omitted — plain SEC).
type HammingCode struct {
	W      int // data word width
	nCheck int
	check  [][]uint32 // [row][word] packed check bits
}

// hammingCheckBits returns the number of check bits for w data bits:
// smallest r with 2^r ≥ w + r + 1.
func hammingCheckBits(w int) int {
	r := 1
	for (1 << uint(r)) < w+r+1 {
		r++
	}
	return r
}

// NewHammingCode builds the code state for mem with word width w (w must
// divide the column count).
func NewHammingCode(mem *bitmat.Mat, w int) *HammingCode {
	if w <= 0 || mem.Cols()%w != 0 {
		panic("ecc: hamming word width must divide the column count")
	}
	h := &HammingCode{W: w, nCheck: hammingCheckBits(w)}
	words := mem.Cols() / w
	h.check = make([][]uint32, mem.Rows())
	for r := range h.check {
		h.check[r] = make([]uint32, words)
		for g := 0; g < words; g++ {
			h.check[r][g] = h.encode(mem, r, g)
		}
	}
	return h
}

// encode computes the check bits of word g in row r: check bit j is the
// parity of data positions whose (1-based, check-position-skipping)
// Hamming index has bit j set.
func (h *HammingCode) encode(mem *bitmat.Mat, r, g int) uint32 {
	var c uint32
	for i := 0; i < h.W; i++ {
		if mem.Get(r, g*h.W+i) {
			c ^= uint32(hammingIndex(i))
		}
	}
	return c
}

// hammingIndex maps data-bit position i (0-based) to its codeword index:
// the (i+1)-th positive integer that is not a power of two.
func hammingIndex(i int) int {
	idx := 0
	seen := -1
	for seen < i {
		idx++
		if idx&(idx-1) != 0 { // not a power of two
			seen++
		}
	}
	return idx
}

// dataPosOf inverts hammingIndex, returning −1 for check positions.
func dataPosOf(idx int) int {
	if idx&(idx-1) == 0 {
		return -1
	}
	pos := -1
	for k := 1; k <= idx; k++ {
		if k&(k-1) != 0 {
			pos++
		}
	}
	return pos
}

// Syndrome returns the syndrome of word g in row r (0 = clean, assuming
// check bits themselves are intact).
func (h *HammingCode) Syndrome(mem *bitmat.Mat, r, g int) uint32 {
	return h.check[r][g] ^ h.encode(mem, r, g)
}

// CorrectWord repairs a single data-bit error in word g of row r,
// returning whether a correction was applied.
func (h *HammingCode) CorrectWord(mem *bitmat.Mat, r, g int) bool {
	s := h.Syndrome(mem, r, g)
	if s == 0 {
		return false
	}
	if pos := dataPosOf(int(s)); pos >= 0 && pos < h.W {
		mem.Flip(r, g*h.W+pos)
		return true
	}
	// Syndrome points at a check position: the stored check bits erred.
	h.check[r][g] = h.encode(mem, r, g)
	return true
}

// UpdateWrite brings the check bits of the word containing (r,c) up to
// date after that single bit changed. Θ(1): XOR the bit's column pattern.
func (h *HammingCode) UpdateWrite(r, c int) {
	g := c / h.W
	h.check[r][g] ^= uint32(hammingIndex(c % h.W))
}

// ColParallelUpdateCost returns the number of data-bit reads a Hamming
// update needs after a column-parallel MAGIC operation across nRows rows
// — the quantity that disqualifies horizontal codes for PIM. Each
// affected row needs only its changed bit's pattern XORed (Θ(1)) *if the
// old value is known*; but MAGIC overwrites in place, so without a prior
// read the word must be re-encoded from all W bits: W reads per row.
func (h *HammingCode) ColParallelUpdateCost(nRows int) int {
	return nRows * h.W
}

// Verify reports whether all stored check bits match mem.
func (h *HammingCode) Verify(mem *bitmat.Mat) bool {
	for r := range h.check {
		for g := range h.check[r] {
			if h.Syndrome(mem, r, g) != 0 {
				return false
			}
		}
	}
	return true
}

// CheckOverheadBits returns the storage overhead in check bits per row.
func (h *HammingCode) CheckOverheadBits(cols int) int {
	return (cols / h.W) * h.nCheck
}
