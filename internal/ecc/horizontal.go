package ecc

import "repro/internal/bitmat"

// This file implements the strawman the paper rejects in Section III /
// Fig 2(a): parity check-bits computed over horizontal groups of data
// bits. It exists so the update-cost asymmetry — the reason the diagonal
// placement was invented — can be demonstrated and tested quantitatively.

// HorizontalCode keeps one parity bit per horizontal group of W data bits
// per row. Group g of row r covers columns [g·W, (g+1)·W).
type HorizontalCode struct {
	N, W  int
	check *bitmat.Mat // rows × (N/W) parity bits
}

// NewHorizontalCode builds the horizontal parity state for mem with group
// width w (w must divide the column count).
func NewHorizontalCode(mem *bitmat.Mat, w int) *HorizontalCode {
	if w <= 0 || mem.Cols()%w != 0 {
		panic("ecc: horizontal group width must divide the column count")
	}
	h := &HorizontalCode{N: mem.Cols(), W: w, check: bitmat.NewMat(mem.Rows(), mem.Cols()/w)}
	for r := 0; r < mem.Rows(); r++ {
		r := r
		mem.Row(r).ForEachOne(func(c int) { h.check.Flip(r, c/w) })
	}
	return h
}

// Verify reports whether every group parity matches mem.
func (h *HorizontalCode) Verify(mem *bitmat.Mat) bool {
	for r := 0; r < mem.Rows(); r++ {
		got := bitmat.NewVec(h.check.Cols())
		mem.Row(r).ForEachOne(func(c int) { got.Flip(c / h.W) })
		if !got.Equal(h.check.Row(r)) {
			return false
		}
	}
	return true
}

// TouchProfile describes how a parallel write maps onto a code's check
// bits: for each affected check bit, how many of its covered data bits
// changed. MaxPerCheck is the quantity that determines update cost — a
// code supports Θ(1) continuous update only if it is ≤ 1 for every
// parallel operation the substrate can perform.
type TouchProfile struct {
	ChecksTouched int // number of check bits with ≥1 changed data bit
	MaxPerCheck   int // worst-case changed data bits for a single check bit
}

// HorizontalTouchRowOp profiles a row-parallel MAGIC op writing column c
// across nRows rows under a horizontal code of width w: each row's group
// c/w sees exactly one changed bit → Θ(1) per check.
func HorizontalTouchRowOp(nRows int) TouchProfile {
	return TouchProfile{ChecksTouched: nRows, MaxPerCheck: 1}
}

// HorizontalTouchColOp profiles a column-parallel op writing row r across
// nCols columns under a horizontal code of width w: every group of that
// row has all w of its data bits changed → Θ(w) per check, the failure
// mode shown in Fig 2(a).
func HorizontalTouchColOp(nCols, w int) TouchProfile {
	return TouchProfile{ChecksTouched: nCols / w, MaxPerCheck: w}
}

// DiagonalTouchProfile profiles any single row- or column-parallel
// operation under the diagonal code: a parallel op writes at most one cell
// per row and per column, hence at most one cell per wrap-around diagonal,
// hence at most one changed data bit per check bit — always.
func DiagonalTouchProfile(cellsWritten int) TouchProfile {
	return TouchProfile{ChecksTouched: 2 * cellsWritten, MaxPerCheck: 1}
}

// MeasureDiagonalTouch empirically computes the touch profile of an
// arbitrary set of written cells under geometry p, counting changed data
// bits per (family, plane, block) check bit. Used by tests to prove the
// MaxPerCheck ≤ 1 guarantee for real operation shapes.
func MeasureDiagonalTouch(p Params, cells [][2]int) TouchProfile {
	type key struct {
		family, d, br, bc int
	}
	counts := make(map[key]int)
	for _, rc := range cells {
		br, bc, lr, lc := p.BlockOf(rc[0], rc[1])
		counts[key{0, p.LeadIdx(lr, lc), br, bc}]++
		counts[key{1, p.CounterIdx(lr, lc), br, bc}]++
	}
	prof := TouchProfile{ChecksTouched: len(counts)}
	for _, n := range counts {
		if n > prof.MaxPerCheck {
			prof.MaxPerCheck = n
		}
	}
	return prof
}
