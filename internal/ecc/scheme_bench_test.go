package ecc

// Scheme-tagged benchmarks: every sub-benchmark carries a `/scheme=NAME`
// component, which cmd/benchjson parses into a `scheme` field so the
// BENCH_<date>.json snapshots compare backends by name. The custom
// check-bits metric records each scheme's storage overhead alongside its
// time — the E10 table's raw numbers.

import (
	"testing"

	"repro/internal/bitmat"
)

// benchScheme builds a scheme over a random 60×60 image — a geometry
// every registered scheme accepts (60 is divisible by the x2/x4
// interleave widths and m=15 fits the DEC word decoder).
func benchScheme(b *testing.B, name string) (Scheme, *bitmat.Mat, Params) {
	b.Helper()
	p := Params{N: 60, M: 15}
	mem := randomMemory(1, p)
	spec, err := SchemeByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return spec.New(p, mem), mem, p
}

// BenchmarkSchemeScrub: full-crossbar check-and-correct sweep per scheme
// (the scrub cost of the E10 table), on a clean image.
func BenchmarkSchemeScrub(b *testing.B) {
	for _, name := range SchemeNames() {
		b.Run("scheme="+name, func(b *testing.B) {
			s, mem, p := benchScheme(b, name)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for br := 0; br < p.BlocksPerSide(); br++ {
					for bc := 0; bc < p.BlocksPerSide(); bc++ {
						s.CorrectBlock(mem, br, bc)
					}
				}
			}
			// After the loop: ResetTimer discards earlier ReportMetric calls.
			b.ReportMetric(float64(s.OverheadBits()), "check-bits")
		})
	}
}

// BenchmarkSchemeUpdateRow: the continuous delta update for one whole-row
// write (the serving layer's hot commit path) per scheme.
func BenchmarkSchemeUpdateRow(b *testing.B) {
	for _, name := range SchemeNames() {
		b.Run("scheme="+name, func(b *testing.B) {
			s, mem, p := benchScheme(b, name)
			cols := bitmat.NewVec(p.N)
			cols.Fill(true)
			old := mem.Row(7).Clone()
			cur := old.Clone()
			for i := 0; i < p.N; i += 3 {
				cur.Flip(i)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Two symmetric updates return the state to its start, so
				// the loop is steady-state.
				s.UpdateRowWrite(7, old, cur, cols)
				s.UpdateRowWrite(7, cur, old, cols)
			}
			b.ReportMetric(float64(s.LineUpdateReads(p.N)), "line-update-reads")
		})
	}
}

// BenchmarkSchemeCorrectSingle: locate-and-repair latency for one flipped
// cell per scheme (parity only detects; it measures the detect path).
func BenchmarkSchemeCorrectSingle(b *testing.B) {
	for _, name := range SchemeNames() {
		b.Run("scheme="+name, func(b *testing.B) {
			s, mem, _ := benchScheme(b, name)
			// The covering unit's home block — block (1,2) itself for
			// column-local schemes, the stripe's home for interleaved.
			ubr, ubc, _ := s.UnitOf(17, 31)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mem.Flip(17, 31)
				s.CorrectBlock(mem, ubr, ubc)
				if name == SchemeParity {
					mem.Flip(17, 31) // detect-only: undo by hand
				}
			}
		})
	}
}
