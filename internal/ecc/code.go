package ecc

import (
	"fmt"
	mathbits "math/bits"

	"repro/internal/bitmat"
)

// CheckBits holds the diagonal parity state for an N×N crossbar: for each
// diagonal family (leading, counter) there are M planes of (N/M)×(N/M)
// bits. Plane d, cell (br,bc) is the parity of diagonal d of block
// (br,bc) — the logical content of the paper's m check-bit crossbars
// (Section IV-A1), kept here as a pure data structure so both the analytic
// models and the cycle-accurate CMEM can share it.
type CheckBits struct {
	p       Params
	lead    []*bitmat.Mat // [M] planes indexed (blockRow, blockCol)
	counter []*bitmat.Mat
}

// NewCheckBits returns all-zero check bits for geometry p (the correct
// state for an all-zero crossbar).
func NewCheckBits(p Params) *CheckBits {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	s := p.BlocksPerSide()
	cb := &CheckBits{p: p, lead: make([]*bitmat.Mat, p.M), counter: make([]*bitmat.Mat, p.M)}
	for d := 0; d < p.M; d++ {
		cb.lead[d] = bitmat.NewMat(s, s)
		cb.counter[d] = bitmat.NewMat(s, s)
	}
	return cb
}

// Build computes the check bits for an existing memory image — the state a
// controller would establish when data is first written into a protected
// crossbar.
func Build(p Params, mem *bitmat.Mat) *CheckBits {
	cb := NewCheckBits(p)
	if mem.Rows() != p.N || mem.Cols() != p.N {
		panic(fmt.Sprintf("ecc: memory is %dx%d, geometry wants %dx%d", mem.Rows(), mem.Cols(), p.N, p.N))
	}
	for r := 0; r < p.N; r++ {
		r := r
		mem.Row(r).ForEachOne(func(c int) { cb.flipFor(r, c) })
	}
	return cb
}

// Params returns the geometry this check-bit state is built for.
func (cb *CheckBits) Params() Params { return cb.p }

// Lead returns the parity bit of leading diagonal d of block (br,bc).
func (cb *CheckBits) Lead(d, br, bc int) bool { return cb.lead[d].Get(br, bc) }

// Counter returns the parity bit of counter diagonal d of block (br,bc).
func (cb *CheckBits) Counter(d, br, bc int) bool { return cb.counter[d].Get(br, bc) }

// SetLead writes the parity bit of leading diagonal d of block (br,bc).
func (cb *CheckBits) SetLead(d, br, bc int, v bool) { cb.lead[d].Set(br, bc, v) }

// SetCounter writes the parity bit of counter diagonal d of block (br,bc).
func (cb *CheckBits) SetCounter(d, br, bc int, v bool) { cb.counter[d].Set(br, bc, v) }

// FlipLead injects a soft error into a leading check bit.
func (cb *CheckBits) FlipLead(d, br, bc int) { cb.lead[d].Flip(br, bc) }

// FlipCounter injects a soft error into a counter check bit.
func (cb *CheckBits) FlipCounter(d, br, bc int) { cb.counter[d].Flip(br, bc) }

// flipFor toggles the two check bits covering global data cell (r,c).
func (cb *CheckBits) flipFor(r, c int) {
	br, bc, lr, lc := cb.p.BlockOf(r, c)
	cb.lead[cb.p.LeadIdx(lr, lc)].Flip(br, bc)
	cb.counter[cb.p.CounterIdx(lr, lc)].Flip(br, bc)
}

// UpdateWrite performs the paper's continuous-parity update for a single
// data cell transitioning old→new: the delta old⊕new is XORed into the
// covering leading and counter check bits. This is the "cancel the old
// effect, add the new effect" protocol collapsed to its logical essence.
func (cb *CheckBits) UpdateWrite(r, c int, oldVal, newVal bool) {
	if oldVal != newVal {
		cb.flipFor(r, c)
	}
}

// UpdateColumnWrite updates check bits after a column-parallel MAGIC
// operation wrote column c in every row selected by rows, with the given
// old and new column contents (length N each). Because the write touches
// one cell per row, it touches at most one cell per diagonal — the Θ(1)
// per-check-bit property the diagonal placement guarantees.
func (cb *CheckBits) UpdateColumnWrite(c int, oldCol, newCol, rows *bitmat.Vec) {
	delta := bitmat.NewVec(oldCol.Len())
	delta.Xor(oldCol, newCol)
	delta.And(delta, rows)
	delta.ForEachOne(func(r int) { cb.flipFor(r, c) })
}

// UpdateRowWrite is the row-parallel dual of UpdateColumnWrite: row r was
// written in every column selected by cols.
func (cb *CheckBits) UpdateRowWrite(r int, oldRow, newRow, cols *bitmat.Vec) {
	delta := bitmat.NewVec(oldRow.Len())
	delta.Xor(oldRow, newRow)
	delta.And(delta, cols)
	delta.ForEachOne(func(c int) { cb.flipFor(r, c) })
}

// ResetBlock zeroes the check bits of block (br,bc) — the corner-case
// optimization the paper notes for whole-block resets (footnote 3).
func (cb *CheckBits) ResetBlock(br, bc int) {
	for d := 0; d < cb.p.M; d++ {
		cb.lead[d].Set(br, bc, false)
		cb.counter[d].Set(br, bc, false)
	}
}

// Clone deep-copies the check-bit state.
func (cb *CheckBits) Clone() *CheckBits {
	out := NewCheckBits(cb.p)
	for d := 0; d < cb.p.M; d++ {
		out.lead[d] = cb.lead[d].Clone()
		out.counter[d] = cb.counter[d].Clone()
	}
	return out
}

// Equal reports whether two check-bit states are identical.
func (cb *CheckBits) Equal(o *CheckBits) bool {
	if cb.p != o.p {
		return false
	}
	for d := 0; d < cb.p.M; d++ {
		if !cb.lead[d].Equal(o.lead[d]) || !cb.counter[d].Equal(o.counter[d]) {
			return false
		}
	}
	return true
}

// Syndrome computes the 2m-bit syndrome of block (br,bc): the XOR of the
// stored check bits with parities recomputed from the current memory
// image. A zero syndrome means the block is consistent.
func (cb *CheckBits) Syndrome(mem *bitmat.Mat, br, bc int) (lead, counter *bitmat.Vec) {
	p := cb.p
	lead = bitmat.NewVec(p.M)
	counter = bitmat.NewVec(p.M)
	for d := 0; d < p.M; d++ {
		lead.Set(d, cb.lead[d].Get(br, bc))
		counter.Set(d, cb.counter[d].Get(br, bc))
	}
	// Walk each block row in word windows and visit only the set bits.
	r0, c0 := br*p.M, bc*p.M
	for lr := 0; lr < p.M; lr++ {
		row := mem.Row(r0 + lr)
		for base := 0; base < p.M; base += 64 {
			k := p.M - base
			if k > 64 {
				k = 64
			}
			w := row.Uint64At(c0+base, k)
			for w != 0 {
				lc := base + mathbits.TrailingZeros64(w)
				w &= w - 1
				lead.Flip(p.LeadIdx(lr, lc))
				counter.Flip(p.CounterIdx(lr, lc))
			}
		}
	}
	return lead, counter
}
