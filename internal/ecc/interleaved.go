package ecc

// The interleaved-diagonal backend: k independent diagonal codes striped
// across the crossbar columns, so a clustered line fault — the plain
// diagonal code's detected-uncorrectable worst case — decomposes into at
// most one error per sub-code and becomes k correctable singles.
//
// Striping: global cell (r,c) belongs to sub-code s = (r+c) mod k. Along
// any row the sub-code index cycles with the column, and along any column
// it cycles with the row, so a contiguous burst of span ≤ k on either a
// wordline or a bitline touches k *distinct* sub-codes — each sees a
// single error and corrects it independently.
//
// Each sub-code is a plain diagonal code over its own logical array: for
// fixed s the cells of row r with (r+c) mod k == s are c = k·j + ((s−r)
// mod k) for j = 0..N/k−1, giving a logical N×(N/k) array addressed by
// (r, j=c/k). That logical array tiles into M×M logical blocks exactly as
// the paper's code does, with the same per-diagonal parity bits and the
// same decode rule; M must divide N/k.
//
// The Θ(1) update property survives interleaving: a line-parallel MAGIC
// operation writes one cell per crossed line, and within one logical
// block the changed cells of a single physical row (or column) have
// distinct logical columns (rows) — hence distinct diagonals. So each
// check bit still sees at most one changed bit per operation and
// LineUpdateReads stays 2·lines, while total check-bit storage equals the
// plain diagonal code's 2·m·(n/m)².
//
// Home blocks: the physical block grid is (N/M)×(N/M); the code has
// k · (N/M) · (N/(k·M)) = (N/M)² logical units. Unit (s, lbr, lbc) is
// homed at physical block (br=lbr, bc=lbc·k+s) — a bijection, so every
// physical block is home to exactly one unit and per-block scrub loops
// visit each unit exactly once. A unit's diagnoses use the home block's
// frame: LR is the physical row offset within the home block row, LC the
// physical column minus bc·M (which may fall outside [0,M) — the unit
// spans the whole column group — but BR·m+LR / BC·m+LC still name the
// exact physical cell).
import (
	"fmt"
	mathbits "math/bits"

	"repro/internal/bitmat"
)

// validateInterleavedGeometry checks the striped-diagonal constraints:
// the base diagonal geometry, k columns groups tiling the row, and M
// logical blocks tiling each sub-code's N/k logical columns. M ≤ 63 keeps
// each diagonal-parity family of a unit in one machine word.
func validateInterleavedGeometry(p Params, k int) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if k < 2 {
		return fmt.Errorf("ecc: interleave width k=%d too small (need k ≥ 2)", k)
	}
	if p.M > 63 {
		return fmt.Errorf("ecc: block size m=%d too large for interleaving (need m ≤ 63)", p.M)
	}
	if p.N%k != 0 {
		return fmt.Errorf("ecc: crossbar size n=%d must be a multiple of the interleave width k=%d", p.N, k)
	}
	if (p.N/k)%p.M != 0 {
		return fmt.Errorf("ecc: logical width n/k=%d must be a multiple of m=%d", p.N/k, p.M)
	}
	return nil
}

// interleavedScheme stores, per logical unit, one M-bit parity mask per
// diagonal family. Units are indexed by home block (br,bc) in row-major
// order over the physical block grid.
type interleavedScheme struct {
	p    Params
	k    int
	side int      // N/M, physical blocks per side
	lead []uint64 // [side*side] leading-diagonal parity masks, bit d = diagonal d
	ctr  []uint64 // counter-diagonal parity masks

	delta *bitmat.Vec // scratch for the line-delta updates
}

// newInterleavedScheme implements SchemeSpec.New for width k.
func newInterleavedScheme(p Params, mem *bitmat.Mat, k int) Scheme {
	if err := validateInterleavedGeometry(p, k); err != nil {
		panic(err)
	}
	side := p.N / p.M
	s := &interleavedScheme{
		p: p, k: k, side: side,
		lead:  make([]uint64, side*side),
		ctr:   make([]uint64, side*side),
		delta: bitmat.NewVec(p.N),
	}
	if mem != nil {
		for r := 0; r < p.N; r++ {
			mem.Row(r).ForEachOne(func(c int) { s.flipFor(r, c) })
		}
	}
	return s
}

func (s *interleavedScheme) Name() string   { return fmt.Sprintf("%s%d", interleavedPrefix, s.k) }
func (s *interleavedScheme) Params() Params { return s.p }

func (s *interleavedScheme) Clone() Scheme {
	out := &interleavedScheme{
		p: s.p, k: s.k, side: s.side,
		lead:  append([]uint64(nil), s.lead...),
		ctr:   append([]uint64(nil), s.ctr...),
		delta: bitmat.NewVec(s.p.N),
	}
	return out
}

func (s *interleavedScheme) Equal(o Scheme) bool {
	oi, ok := o.(*interleavedScheme)
	if !ok || s.p != oi.p || s.k != oi.k {
		return false
	}
	for i := range s.lead {
		if s.lead[i] != oi.lead[i] || s.ctr[i] != oi.ctr[i] {
			return false
		}
	}
	return true
}

// unitAt maps physical cell (r,c) to the index of its covering unit (its
// home block, row-major) and the cell's logical in-block coordinates.
func (s *interleavedScheme) unitAt(r, c int) (u, lr, lj int) {
	j := c / s.k // logical column within sub-code (r+c) mod k
	br, bc := r/s.p.M, (j/s.p.M)*s.k+(r+c)%s.k
	return br*s.side + bc, r % s.p.M, j % s.p.M
}

// flipFor toggles the two diagonal parity bits covering cell (r,c).
func (s *interleavedScheme) flipFor(r, c int) {
	u, lr, lj := s.unitAt(r, c)
	s.lead[u] ^= 1 << uint(s.p.LeadIdx(lr, lj))
	s.ctr[u] ^= 1 << uint(s.p.CounterIdx(lr, lj))
}

func (s *interleavedScheme) UpdateWrite(r, c int, oldVal, newVal bool) {
	if oldVal != newVal {
		s.flipFor(r, c)
	}
}

func (s *interleavedScheme) UpdateRowWrite(r int, oldRow, newRow, cols *bitmat.Vec) {
	s.delta.Xor(oldRow, newRow)
	s.delta.And(s.delta, cols)
	s.delta.ForEachOne(func(c int) { s.flipFor(r, c) })
}

func (s *interleavedScheme) UpdateColumnWrite(c int, oldCol, newCol, rows *bitmat.Vec) {
	s.delta.Xor(oldCol, newCol)
	s.delta.And(s.delta, rows)
	s.delta.ForEachOne(func(r int) { s.flipFor(r, c) })
}

// unitHome decodes home block (br,bc) into the unit's sub-code and
// logical block coordinates.
func (s *interleavedScheme) unitHome(br, bc int) (sub, lbr, lbc int) {
	return bc % s.k, br, bc / s.k
}

// physCol returns the physical column of logical cell (r, j) within
// sub-code sub: the unique column of group j whose stripe index matches.
func (s *interleavedScheme) physCol(sub, r, j int) int {
	return s.k*j + ((sub-r)%s.k+s.k)%s.k
}

// syndrome computes the unit's lead/counter syndrome masks: the stored
// parities XORed with parities recomputed from the memory image.
func (s *interleavedScheme) syndrome(mem *bitmat.Mat, br, bc int) (lead, ctr uint64) {
	u := br*s.side + bc
	lead, ctr = s.lead[u], s.ctr[u]
	sub, lbr, lbc := s.unitHome(br, bc)
	m := s.p.M
	for lr := 0; lr < m; lr++ {
		r := lbr*m + lr
		row := mem.Row(r)
		// The unit's cells in this row sit k columns apart starting at
		// the stripe offset of the block's first column group.
		c0 := s.physCol(sub, r, lbc*m)
		for lj := 0; lj < m; lj++ {
			if row.Get(c0 + lj*s.k) {
				lead ^= 1 << uint(s.p.LeadIdx(lr, lj))
				ctr ^= 1 << uint(s.p.CounterIdx(lr, lj))
			}
		}
	}
	return lead, ctr
}

// diagnose decodes the unit's syndrome into home-block-frame diagnoses.
func (s *interleavedScheme) diagnose(mem *bitmat.Mat, br, bc int) []Diagnosis {
	lead, ctr := s.syndrome(mem, br, bc)
	if lead == 0 && ctr == 0 {
		return nil
	}
	sub, lbr, lbc := s.unitHome(br, bc)
	m := s.p.M
	switch ln, cn := mathbits.OnesCount64(lead), mathbits.OnesCount64(ctr); {
	case ln == 1 && cn == 1:
		lr, lj := s.p.Intersect(mathbits.TrailingZeros64(lead), mathbits.TrailingZeros64(ctr))
		r := lbr*m + lr
		c := s.physCol(sub, r, lbc*m+lj)
		return []Diagnosis{{Kind: DataError, LR: lr, LC: c - bc*m}}
	case ln == 1 && cn == 0:
		return []Diagnosis{{Kind: LeadCheckError, Diag: mathbits.TrailingZeros64(lead)}}
	case ln == 0 && cn == 1:
		return []Diagnosis{{Kind: CounterCheckError, Diag: mathbits.TrailingZeros64(ctr)}}
	default:
		return []Diagnosis{{Kind: Uncorrectable}}
	}
}

func (s *interleavedScheme) CheckBlock(mem *bitmat.Mat, br, bc int) []Diagnosis {
	return s.diagnose(mem, br, bc)
}

func (s *interleavedScheme) CorrectBlock(mem *bitmat.Mat, br, bc int) []Diagnosis {
	ds := s.diagnose(mem, br, bc)
	for _, d := range ds {
		u := br*s.side + bc
		switch d.Kind {
		case DataError:
			mem.Flip(br*s.p.M+d.LR, bc*s.p.M+d.LC)
		case LeadCheckError:
			s.lead[u] ^= 1 << uint(d.Diag)
		case CounterCheckError:
			s.ctr[u] ^= 1 << uint(d.Diag)
		}
	}
	return ds
}

func (s *interleavedScheme) RebuildBlock(mem *bitmat.Mat, br, bc int) {
	u := br*s.side + bc
	s.lead[u], s.ctr[u] = 0, 0
	sub, lbr, lbc := s.unitHome(br, bc)
	m := s.p.M
	for lr := 0; lr < m; lr++ {
		r := lbr*m + lr
		c0 := s.physCol(sub, r, lbc*m)
		for lj := 0; lj < m; lj++ {
			if mem.Get(r, c0+lj*s.k) {
				s.lead[u] ^= 1 << uint(s.p.LeadIdx(lr, lj))
				s.ctr[u] ^= 1 << uint(s.p.CounterIdx(lr, lj))
			}
		}
	}
}

// RebuildRowWords: like the plain diagonal code, no unit fits inside one
// row — there is nothing row-scoped to re-encode.
func (s *interleavedScheme) RebuildRowWords(*bitmat.Mat, int, int) bool { return false }

// ReferenceCheck re-derives the unit's diagnosis bit-serially from the
// striping definition: every physical cell of the home block's column
// group is tested for membership ((r+c) mod k) and folded into vector
// syndromes one at a time, then decoded by the shared Decode rule.
func (s *interleavedScheme) ReferenceCheck(mem *bitmat.Mat, br, bc int) []Diagnosis {
	sub, lbr, lbc := s.unitHome(br, bc)
	m := s.p.M
	u := br*s.side + bc
	lead := bitmat.NewVec(m)
	ctr := bitmat.NewVec(m)
	for d := 0; d < m; d++ {
		lead.Set(d, s.lead[u]&(1<<uint(d)) != 0)
		ctr.Set(d, s.ctr[u]&(1<<uint(d)) != 0)
	}
	for r := lbr * m; r < (lbr+1)*m; r++ {
		for c := lbc * m * s.k; c < (lbc+1)*m*s.k; c++ {
			if (r+c)%s.k != sub || !mem.Get(r, c) {
				continue
			}
			lr, lj := r%m, (c/s.k)%m
			lead.Flip(s.p.LeadIdx(lr, lj))
			ctr.Flip(s.p.CounterIdx(lr, lj))
		}
	}
	d := Decode(s.p, lead, ctr)
	if d.Kind == NoError {
		return nil
	}
	if d.Kind == DataError {
		// Decode's intersection is logical; translate to the home frame.
		r := lbr*m + d.LR
		c := s.physCol(sub, r, lbc*m+d.LC)
		d.LC = c - bc*m
	}
	return []Diagnosis{d}
}

// CoversCell: the unit spans its whole column group, and consumers reach
// it through UnitOf — every diagnosis pertains to every covered cell.
func (s *interleavedScheme) CoversCell(Diagnosis, int, int) bool { return true }

// UnitOf: the covering unit is homed at block (r/M, (c/k/M)·k + (r+c)%k).
func (s *interleavedScheme) UnitOf(r, c int) (ubr, ubc, sub int) {
	u, _, _ := s.unitAt(r, c)
	return u / s.side, u % s.side, 0
}

// HomeColumns: a unit covers k·M contiguous physical columns, so the
// covering units of any block-column range are homed across its enclosing
// column groups.
func (s *interleavedScheme) HomeColumns(firstBC, lastBC int) (int, int) {
	return (firstBC / s.k) * s.k, (lastBC/s.k)*s.k + s.k - 1
}

// OverheadBits: identical storage to the plain diagonal code — the same
// 2·m parity bits per unit, (n/m)² units.
func (s *interleavedScheme) OverheadBits() int { return s.p.TotalCheckBits() }

// LineUpdateReads: striping preserves the one-changed-cell-per-diagonal
// property, so only the old/new copy of each written cell is read.
func (s *interleavedScheme) LineUpdateReads(lines int) int { return 2 * lines }
