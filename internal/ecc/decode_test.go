package ecc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDecodeNoError(t *testing.T) {
	mem := randomMemory(10, testParams)
	cb := Build(testParams, mem)
	if d := cb.CheckBlock(mem, 0, 0); d.Kind != NoError {
		t.Fatalf("clean block diagnosed as %v", d.Kind)
	}
}

func TestSingleDataErrorCorrectedExhaustive(t *testing.T) {
	// Every single data-cell flip in one block must be located exactly.
	p := Params{N: 15, M: 15} // one block, all 225 cells
	for lr := 0; lr < p.M; lr++ {
		for lc := 0; lc < p.M; lc++ {
			mem := randomMemory(int64(lr*100+lc), p)
			cb := Build(p, mem)
			want := mem.Clone()
			mem.Flip(lr, lc)
			d := cb.CorrectBlock(mem, 0, 0)
			if d.Kind != DataError || d.LR != lr || d.LC != lc {
				t.Fatalf("flip (%d,%d) diagnosed as %+v", lr, lc, d)
			}
			if !mem.Equal(want) {
				t.Fatalf("flip (%d,%d) not repaired", lr, lc)
			}
			// Post-correction the block must be clean.
			if cb.CheckBlock(mem, 0, 0).Kind != NoError {
				t.Fatalf("block dirty after correcting (%d,%d)", lr, lc)
			}
		}
	}
}

func TestSingleDataErrorCorrectedProperty(t *testing.T) {
	// Random geometry, random block, random cell.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 3 + 2*rng.Intn(7)
		blocks := 1 + rng.Intn(4)
		p := Params{N: m * blocks, M: m}
		mem := randomMemory(seed, p)
		cb := Build(p, mem)
		want := mem.Clone()
		r, c := rng.Intn(p.N), rng.Intn(p.N)
		mem.Flip(r, c)
		br, bc, _, _ := p.BlockOf(r, c)
		d := cb.CorrectBlock(mem, br, bc)
		return d.Kind == DataError && mem.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLeadCheckBitErrorCorrected(t *testing.T) {
	p := testParams
	mem := randomMemory(20, p)
	cb := Build(p, mem)
	ref := cb.Clone()
	cb.FlipLead(7, 2, 1)
	d := cb.CorrectBlock(mem, 2, 1)
	if d.Kind != LeadCheckError || d.Diag != 7 {
		t.Fatalf("diagnosis = %+v, want lead-check-error diag 7", d)
	}
	if !cb.Equal(ref) {
		t.Fatal("check-bit error not repaired")
	}
}

func TestCounterCheckBitErrorCorrected(t *testing.T) {
	p := testParams
	mem := randomMemory(21, p)
	cb := Build(p, mem)
	ref := cb.Clone()
	cb.FlipCounter(3, 0, 2)
	d := cb.CorrectBlock(mem, 0, 2)
	if d.Kind != CounterCheckError || d.Diag != 3 {
		t.Fatalf("diagnosis = %+v, want counter-check-error diag 3", d)
	}
	if !cb.Equal(ref) {
		t.Fatal("check-bit error not repaired")
	}
}

func TestDoubleDataErrorDetectedNotMissed(t *testing.T) {
	// Two distinct data flips in the same block must never decode as
	// NoError — the multi-error detection guarantee.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Params{N: 15, M: 15}
		mem := randomMemory(seed+5000, p)
		cb := Build(p, mem)
		r1, c1 := rng.Intn(15), rng.Intn(15)
		r2, c2 := rng.Intn(15), rng.Intn(15)
		if r1 == r2 && c1 == c2 {
			return true // same cell would cancel; skip
		}
		mem.Flip(r1, c1)
		mem.Flip(r2, c2)
		return cb.CheckBlock(mem, 0, 0).Kind != NoError
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleErrorDistinctDiagonalsUncorrectable(t *testing.T) {
	// When the two errors share neither diagonal the signature is (2,2) —
	// explicitly uncorrectable, no silent miscorrection of a third cell.
	p := Params{N: 15, M: 15}
	mem := randomMemory(33, p)
	cb := Build(p, mem)
	mem.Flip(0, 0) // lead 0, counter 0
	mem.Flip(1, 3) // lead 4, counter 13 (mod 15)
	d := cb.CheckBlock(mem, 0, 0)
	if d.Kind != Uncorrectable {
		t.Fatalf("diagnosis = %v, want uncorrectable", d.Kind)
	}
}

func TestErrorsInDifferentBlocksBothCorrected(t *testing.T) {
	// Per-block independence: one error per block is still fully correctable
	// even with many erroneous blocks (the basis of the reliability model).
	p := testParams
	mem := randomMemory(40, p)
	cb := Build(p, mem)
	want := mem.Clone()
	rng := rand.New(rand.NewSource(41))
	for br := 0; br < p.BlocksPerSide(); br++ {
		for bc := 0; bc < p.BlocksPerSide(); bc++ {
			mem.Flip(br*p.M+rng.Intn(p.M), bc*p.M+rng.Intn(p.M))
		}
	}
	rep := cb.Scrub(mem)
	if rep.DataCorrected != p.NumBlocks() {
		t.Fatalf("corrected %d blocks, want %d", rep.DataCorrected, p.NumBlocks())
	}
	if rep.Uncorrectable != 0 {
		t.Fatalf("%d uncorrectable blocks", rep.Uncorrectable)
	}
	if !mem.Equal(want) {
		t.Fatal("scrub did not restore memory")
	}
}

func TestScrubCleanMemory(t *testing.T) {
	p := testParams
	mem := randomMemory(50, p)
	cb := Build(p, mem)
	rep := cb.Scrub(mem)
	if rep.BlocksChecked != p.NumBlocks() || rep.DataCorrected != 0 ||
		rep.CheckCorrected != 0 || rep.Uncorrectable != 0 {
		t.Fatalf("clean scrub report: %+v", rep)
	}
}

func TestScrubMixedErrors(t *testing.T) {
	p := testParams
	mem := randomMemory(60, p)
	cb := Build(p, mem)
	want := mem.Clone()
	wantCB := cb.Clone()
	mem.Flip(2, 2)          // data error in block (0,0)
	cb.FlipLead(4, 1, 1)    // check error in block (1,1)
	cb.FlipCounter(0, 2, 0) // check error in block (2,0)
	rep := cb.Scrub(mem)
	if rep.DataCorrected != 1 || rep.CheckCorrected != 2 || rep.Uncorrectable != 0 {
		t.Fatalf("report %+v", rep)
	}
	if !mem.Equal(want) || !cb.Equal(wantCB) {
		t.Fatal("scrub did not fully repair state")
	}
}

func TestCheckBlockRow(t *testing.T) {
	p := testParams
	mem := randomMemory(70, p)
	cb := Build(p, mem)
	want := mem.Clone()
	// Inject one error in two different blocks of block-row 1.
	mem.Flip(p.M+3, 4)       // block (1,0)
	mem.Flip(p.M+7, 2*p.M+8) // block (1,2)
	diags := cb.CheckBlockRow(mem, 1)
	if len(diags) != 2 {
		t.Fatalf("got %d dirty blocks, want 2: %v", len(diags), diags)
	}
	if !mem.Equal(want) {
		t.Fatal("input check did not repair the block row")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		NoError:           "no-error",
		DataError:         "data-error",
		LeadCheckError:    "lead-check-error",
		CounterCheckError: "counter-check-error",
		Uncorrectable:     "uncorrectable",
		Kind(99):          "Kind(99)",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}
