package ecc

import (
	"testing"

	"repro/internal/bitmat"
)

// Native fuzz targets. Under plain `go test` the seed corpus runs as
// regression tests; `go test -fuzz=FuzzX ./internal/ecc` explores further.

// FuzzSingleErrorCorrection: any (seed, position) pair must round-trip
// through inject→decode→correct exactly.
func FuzzSingleErrorCorrection(f *testing.F) {
	f.Add(int64(1), uint16(0))
	f.Add(int64(2), uint16(224))
	f.Add(int64(99), uint16(113))
	f.Fuzz(func(t *testing.T, seed int64, posRaw uint16) {
		p := Params{N: 15, M: 15}
		mem := randomMemory(seed, p)
		cb := Build(p, mem)
		want := mem.Clone()
		pos := int(posRaw) % 225
		mem.Flip(pos/15, pos%15)
		d := cb.CorrectBlock(mem, 0, 0)
		if d.Kind != DataError {
			t.Fatalf("diagnosis %v", d.Kind)
		}
		if !mem.Equal(want) {
			t.Fatal("not repaired")
		}
	})
}

// FuzzDecodeNeverPanics: arbitrary syndrome bit patterns must decode to
// *some* diagnosis without panicking, and (1,1)-weight syndromes must
// return in-range cells.
func FuzzDecodeNeverPanics(f *testing.F) {
	f.Add(uint32(0), uint32(0))
	f.Add(uint32(1), uint32(1))
	f.Add(uint32(0x7FFF), uint32(0x7FFF))
	f.Fuzz(func(t *testing.T, leadRaw, counterRaw uint32) {
		p := Params{N: 15, M: 15}
		lead := bitmat.NewVec(15)
		counter := bitmat.NewVec(15)
		for i := 0; i < 15; i++ {
			lead.Set(i, leadRaw&(1<<uint(i)) != 0)
			counter.Set(i, counterRaw&(1<<uint(i)) != 0)
		}
		d := Decode(p, lead, counter)
		if d.Kind == DataError {
			if d.LR < 0 || d.LR >= 15 || d.LC < 0 || d.LC >= 15 {
				t.Fatalf("decoded cell out of range: %+v", d)
			}
			if p.LeadIdx(d.LR, d.LC) != lead.OnesIndices()[0] {
				t.Fatal("decoded cell not on the flagged leading diagonal")
			}
		}
	})
}

// FuzzDeltaUpdateEquivalence: any write sequence encoded in the fuzz
// bytes keeps continuous updates equal to a rebuild.
func FuzzDeltaUpdateEquivalence(f *testing.F) {
	f.Add(int64(3), []byte{0x00, 0x12, 0xFF})
	f.Add(int64(4), []byte{7, 7, 7, 7})
	f.Fuzz(func(t *testing.T, seed int64, script []byte) {
		p := Params{N: 15, M: 15}
		mem := randomMemory(seed, p)
		cb := Build(p, mem)
		for i := 0; i+1 < len(script) && i < 64; i += 2 {
			r := int(script[i]) % 15
			c := int(script[i+1]) % 15
			old := mem.Get(r, c)
			newV := script[i]&0x80 != 0
			cb.UpdateWrite(r, c, old, newV)
			mem.Set(r, c, newV)
		}
		if !cb.Equal(Build(p, mem)) {
			t.Fatal("delta updates diverged from rebuild")
		}
	})
}
