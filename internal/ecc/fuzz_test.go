package ecc

import (
	"testing"

	"repro/internal/bitmat"
)

// Native fuzz targets. Under plain `go test` the seed corpus runs as
// regression tests; `go test -fuzz=FuzzX ./internal/ecc` explores further.

// FuzzSingleErrorCorrection: any (seed, position) pair must round-trip
// through inject→decode→correct exactly.
func FuzzSingleErrorCorrection(f *testing.F) {
	f.Add(int64(1), uint16(0))
	f.Add(int64(2), uint16(224))
	f.Add(int64(99), uint16(113))
	f.Fuzz(func(t *testing.T, seed int64, posRaw uint16) {
		p := Params{N: 15, M: 15}
		mem := randomMemory(seed, p)
		cb := Build(p, mem)
		want := mem.Clone()
		pos := int(posRaw) % 225
		mem.Flip(pos/15, pos%15)
		d := cb.CorrectBlock(mem, 0, 0)
		if d.Kind != DataError {
			t.Fatalf("diagnosis %v", d.Kind)
		}
		if !mem.Equal(want) {
			t.Fatal("not repaired")
		}
	})
}

// FuzzDecodeNeverPanics: arbitrary syndrome bit patterns must decode to
// *some* diagnosis without panicking, and (1,1)-weight syndromes must
// return in-range cells.
func FuzzDecodeNeverPanics(f *testing.F) {
	f.Add(uint32(0), uint32(0))
	f.Add(uint32(1), uint32(1))
	f.Add(uint32(0x7FFF), uint32(0x7FFF))
	f.Fuzz(func(t *testing.T, leadRaw, counterRaw uint32) {
		p := Params{N: 15, M: 15}
		lead := bitmat.NewVec(15)
		counter := bitmat.NewVec(15)
		for i := 0; i < 15; i++ {
			lead.Set(i, leadRaw&(1<<uint(i)) != 0)
			counter.Set(i, counterRaw&(1<<uint(i)) != 0)
		}
		d := Decode(p, lead, counter)
		if d.Kind == DataError {
			if d.LR < 0 || d.LR >= 15 || d.LC < 0 || d.LC >= 15 {
				t.Fatalf("decoded cell out of range: %+v", d)
			}
			if p.LeadIdx(d.LR, d.LC) != lead.OnesIndices()[0] {
				t.Fatal("decoded cell not on the flagged leading diagonal")
			}
		}
	})
}

// FuzzDeltaUpdateEquivalence: any write sequence encoded in the fuzz
// bytes keeps continuous updates equal to a rebuild.
func FuzzDeltaUpdateEquivalence(f *testing.F) {
	f.Add(int64(3), []byte{0x00, 0x12, 0xFF})
	f.Add(int64(4), []byte{7, 7, 7, 7})
	f.Fuzz(func(t *testing.T, seed int64, script []byte) {
		p := Params{N: 15, M: 15}
		mem := randomMemory(seed, p)
		cb := Build(p, mem)
		for i := 0; i+1 < len(script) && i < 64; i += 2 {
			r := int(script[i]) % 15
			c := int(script[i+1]) % 15
			old := mem.Get(r, c)
			newV := script[i]&0x80 != 0
			cb.UpdateWrite(r, c, old, newV)
			mem.Set(r, c, newV)
		}
		if !cb.Equal(Build(p, mem)) {
			t.Fatal("delta updates diverged from rebuild")
		}
	})
}

// FuzzECCRoundTripUnderFaults is the conformance fuzz target behind the
// campaign engine's guarantee: on random memory images across word-
// unaligned geometries, any single flip at any codeword position is
// corrected exactly, and any double flip is detected — same-block doubles
// are flagged uncorrectable with the memory left untouched (never
// miscorrected into silent corruption), different-block doubles are two
// independent single errors and both repaired.
func FuzzECCRoundTripUnderFaults(f *testing.F) {
	f.Add(int64(1), uint8(0), uint16(0), uint16(1), false)
	f.Add(int64(2), uint8(1), uint16(224), uint16(225), true)
	f.Add(int64(3), uint8(2), uint16(100), uint16(100), true)
	f.Add(int64(4), uint8(3), uint16(44), uint16(1980), true)
	f.Fuzz(func(t *testing.T, seed int64, geomSel uint8, p1Raw, p2Raw uint16, double bool) {
		// Row lengths 45, 33, 27, 75 all straddle 64-bit word boundaries
		// mid-block; 64 hits alignment edge cases on the word itself.
		geoms := []Params{{N: 45, M: 15}, {N: 33, M: 11}, {N: 27, M: 9}, {N: 75, M: 15}, {N: 45, M: 9}}
		p := geoms[int(geomSel)%len(geoms)]
		mem := randomMemory(seed, p)
		cb := Build(p, mem)
		want := mem.Clone()

		total := p.N * p.N
		pos1 := int(p1Raw) % total
		r1, c1 := pos1/p.N, pos1%p.N
		mem.Flip(r1, c1)

		if !double || int(p2Raw)%total == pos1 {
			if double {
				mem.Flip(r1, c1) // double hit on one cell: no error at all
			}
			rep := cb.Scrub(mem)
			wantData := 1
			if double {
				wantData = 0
			}
			if rep.DataCorrected != wantData || rep.CheckCorrected != 0 || rep.Uncorrectable != 0 {
				t.Fatalf("scrub report %+v, want %d data corrections only", rep, wantData)
			}
			if !mem.Equal(want) {
				t.Fatal("single error not repaired exactly")
			}
			if !cb.Equal(Build(p, mem)) {
				t.Fatal("check bits inconsistent after repair")
			}
			return
		}

		pos2 := int(p2Raw) % total
		r2, c2 := pos2/p.N, pos2%p.N
		mem.Flip(r2, c2)
		sameBlock := r1/p.M == r2/p.M && c1/p.M == c2/p.M
		rep := cb.Scrub(mem)
		if sameBlock {
			if rep.Uncorrectable != 1 || rep.DataCorrected != 0 || rep.CheckCorrected != 0 {
				t.Fatalf("same-block double: report %+v, want exactly 1 uncorrectable", rep)
			}
			// Never miscorrected: the two flipped cells are untouched and
			// no third cell was "repaired" into silent corruption.
			check := mem.Clone()
			check.Flip(r1, c1)
			check.Flip(r2, c2)
			if !check.Equal(want) {
				t.Fatal("uncorrectable block was mutated — miscorrection")
			}
		} else {
			if rep.DataCorrected != 2 || rep.Uncorrectable != 0 || rep.CheckCorrected != 0 {
				t.Fatalf("cross-block double: report %+v, want 2 data corrections", rep)
			}
			if !mem.Equal(want) {
				t.Fatal("cross-block double not fully repaired")
			}
		}
		// Detection invariant: memory differs from truth after a scrub only
		// if something was flagged uncorrectable.
		if !mem.Equal(want) && rep.Uncorrectable == 0 {
			t.Fatal("silent corruption: memory wrong and nothing flagged")
		}
	})
}
