package ecc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitmat"
)

func TestHorizontalCodeBuildVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mem := bitmat.NewMat(16, 32)
	mem.Randomize(rng)
	h := NewHorizontalCode(mem, 8)
	if !h.Verify(mem) {
		t.Fatal("freshly built horizontal code does not verify")
	}
	mem.Flip(3, 17)
	if h.Verify(mem) {
		t.Fatal("horizontal code missed a flip")
	}
}

func TestHorizontalCodeBadWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-dividing width")
		}
	}()
	NewHorizontalCode(bitmat.NewMat(4, 10), 3)
}

func TestHorizontalVsDiagonalUpdateCost(t *testing.T) {
	// E5 / Fig 2: a column-parallel op across n columns forces a horizontal
	// code to recompute check bits from w changed data bits each, while the
	// diagonal code never sees more than one changed bit per check bit.
	const n, w = 1020, 8
	hRow := HorizontalTouchRowOp(n)
	hCol := HorizontalTouchColOp(n, w)
	if hRow.MaxPerCheck != 1 {
		t.Fatalf("horizontal row-op MaxPerCheck = %d, want 1", hRow.MaxPerCheck)
	}
	if hCol.MaxPerCheck != w {
		t.Fatalf("horizontal col-op MaxPerCheck = %d, want %d (the Θ(n) failure)", hCol.MaxPerCheck, w)
	}
	d := DiagonalTouchProfile(n)
	if d.MaxPerCheck != 1 {
		t.Fatalf("diagonal MaxPerCheck = %d, want 1", d.MaxPerCheck)
	}
}

func TestMeasureDiagonalTouchRowParallelOp(t *testing.T) {
	// A row-parallel MAGIC op writes one fixed column in every row:
	// measured per-check-bit touch must be ≤ 1 (the paper's key lemma).
	p := testParams
	c := 7
	cells := make([][2]int, p.N)
	for r := 0; r < p.N; r++ {
		cells[r] = [2]int{r, c}
	}
	prof := MeasureDiagonalTouch(p, cells)
	if prof.MaxPerCheck != 1 {
		t.Fatalf("row-parallel op touches a check bit %d times, want 1", prof.MaxPerCheck)
	}
	// n cells, two families → 2n distinct check bits touched.
	if prof.ChecksTouched != 2*p.N {
		t.Fatalf("ChecksTouched = %d, want %d", prof.ChecksTouched, 2*p.N)
	}
}

func TestMeasureDiagonalTouchColParallelOp(t *testing.T) {
	p := testParams
	r := 31
	cells := make([][2]int, p.N)
	for c := 0; c < p.N; c++ {
		cells[c] = [2]int{r, c}
	}
	prof := MeasureDiagonalTouch(p, cells)
	if prof.MaxPerCheck != 1 {
		t.Fatalf("column-parallel op touches a check bit %d times, want 1", prof.MaxPerCheck)
	}
}

func TestMeasureDiagonalTouchAnyParallelOpProperty(t *testing.T) {
	// A single parallel MAGIC op writes one fixed column across an arbitrary
	// subset of rows, or one fixed row across an arbitrary subset of
	// columns. Either shape touches each check bit at most once. (Note an
	// arbitrary permutation does NOT have this property — two cells in
	// different rows and columns can share a block diagonal — which is why
	// the guarantee is stated per MAGIC operation.)
	f := func(seed int64, colOp bool) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Params{N: 45, M: 15}
		fixed := rng.Intn(p.N)
		var cells [][2]int
		for i := 0; i < p.N; i++ {
			if rng.Intn(2) == 0 {
				continue
			}
			if colOp {
				cells = append(cells, [2]int{i, fixed})
			} else {
				cells = append(cells, [2]int{fixed, i})
			}
		}
		return MeasureDiagonalTouch(p, cells).MaxPerCheck <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestMeasureDiagonalTouchDetectsViolation(t *testing.T) {
	// Sanity: two cells on the same diagonal of the same block DO produce
	// MaxPerCheck = 2, proving the measurement isn't vacuous.
	p := Params{N: 15, M: 15}
	cells := [][2]int{{0, 5}, {1, 4}} // both on leading diagonal 5
	if prof := MeasureDiagonalTouch(p, cells); prof.MaxPerCheck != 2 {
		t.Fatalf("MaxPerCheck = %d, want 2", prof.MaxPerCheck)
	}
}
