package ecc

import (
	"testing"

	"repro/internal/bitmat"
)

// FuzzSchemeContract drives every registered scheme through the budget
// contract its SchemeSpec declares, on geometries that exercise striped
// stripes and word-unaligned rows alike: any ≤Corrects-bit error within
// one code unit is repaired exactly; any error beyond Corrects but within
// Detects is flagged uncorrectable and nothing — data or stored check
// bits — is mutated (never miscorrect, no check-bit laundering); and the
// delta-update paths stay equivalent to a from-scratch rebuild. The unit
// membership itself comes from UnitOf, so the harness needs no per-scheme
// knowledge and automatically covers future registry entries.
func FuzzSchemeContract(f *testing.F) {
	f.Add(int64(1), []byte{0x00, 0x01, 0x02})
	f.Add(int64(2), []byte{0x10, 0x20, 0x01, 0x33, 0x05, 0x02})
	f.Add(int64(3), []byte{0x3B, 0x3B, 0x00, 0x07, 0x2C, 0x01, 0x15, 0x16, 0x02})
	f.Add(int64(7), []byte{0xFF, 0xFE, 0xFD, 0x01, 0x02, 0x03})
	f.Fuzz(func(t *testing.T, seed int64, script []byte) {
		// All geometries keep n % m == 0; beyond that they stress
		// different corners: 45 rejects the even interleave widths, 66
		// has words straddling uint64 boundaries (m=11), 30/3 is the
		// minimal odd block.
		geoms := []Params{{N: 60, M: 15}, {N: 45, M: 15}, {N: 66, M: 11}, {N: 30, M: 3}}
		p := geoms[int(uint64(seed)%uint64(len(geoms)))]
		for _, name := range SchemeNames() {
			spec, err := SchemeByName(name)
			if err != nil {
				t.Fatal(err)
			}
			if spec.Validate(p) != nil {
				continue // geometry gates are their own tests
			}
			mem := randomMemory(seed, p)
			s := spec.New(p, mem)
			want := mem.Clone()
			for i := 0; i+2 < len(script) && i < 30; i += 3 {
				r0, c0 := int(script[i])%p.N, int(script[i+1])%p.N
				ubr, ubc, usub := s.UnitOf(r0, c0)
				var cells [][2]int
				for r := 0; r < p.N; r++ {
					for c := 0; c < p.N; c++ {
						if br, bc, sub := s.UnitOf(r, c); br == ubr && bc == ubc && sub == usub {
							cells = append(cells, [2]int{r, c})
						}
					}
				}
				budget := spec.Detects
				if budget < 1 {
					budget = 1
				}
				if budget > len(cells) {
					budget = len(cells)
				}
				nf := 1 + int(script[i+2])%budget
				// Deterministically pick nf distinct cells of the unit.
				picked := make(map[int]bool, nf)
				var flips [][2]int
				h := uint64(seed) ^ uint64(script[i+2])<<8 ^ uint64(i)<<17
				for len(flips) < nf {
					h = h*6364136223846793005 + 1442695040888963407
					idx := int((h >> 33) % uint64(len(cells)))
					if picked[idx] {
						continue
					}
					picked[idx] = true
					flips = append(flips, cells[idx])
				}
				for _, fc := range flips {
					mem.Flip(fc[0], fc[1])
				}
				if nf <= spec.Corrects {
					ds := s.CorrectBlock(mem, ubr, ubc)
					if len(ds) != nf {
						t.Fatalf("%s %v: %d diagnoses for %d in-budget flips: %v", name, p, len(ds), nf, ds)
					}
					for _, d := range ds {
						if d.Kind != DataError {
							t.Fatalf("%s %v: in-budget flip diagnosed %v", name, p, d.Kind)
						}
					}
					if !mem.Equal(want) {
						t.Fatalf("%s %v: %d-bit unit error not repaired exactly", name, p, nf)
					}
					if ds := s.CheckBlock(mem, ubr, ubc); len(ds) != 0 {
						t.Fatalf("%s %v: unit dirty after repair: %v", name, p, ds)
					}
				} else {
					dirty := mem.Clone()
					ds := s.CorrectBlock(mem, ubr, ubc)
					unc := false
					for _, d := range ds {
						if d.Kind == Uncorrectable {
							unc = true
						}
					}
					if !unc {
						t.Fatalf("%s %v: %d flips (budget %d) not flagged uncorrectable: %v",
							name, p, nf, spec.Corrects, ds)
					}
					if !mem.Equal(dirty) {
						t.Fatalf("%s %v: uncorrectable unit was mutated — miscorrection", name, p)
					}
					for _, fc := range flips {
						mem.Flip(fc[0], fc[1])
					}
					if !mem.Equal(want) {
						t.Fatalf("%s %v: undo bookkeeping bug", name, p)
					}
					if ds := s.CheckBlock(mem, ubr, ubc); len(ds) != 0 {
						t.Fatalf("%s %v: stored bits laundered on uncorrectable unit: %v", name, p, ds)
					}
				}
			}
			// Closing invariant: a delta row write leaves the stored state
			// identical to a from-scratch rebuild.
			r := int(uint64(seed)>>8) % p.N
			old := mem.Row(r).Clone()
			cur := old.Clone()
			cols := bitmat.NewVec(p.N)
			for j := 0; j < p.N; j += 3 {
				cols.Set(j, true)
				cur.Set(j, (uint32(j)*2654435761)>>16&1 != 0)
			}
			s.UpdateRowWrite(r, old, cur, cols)
			mem.SetRow(r, cur)
			if !s.Equal(spec.New(p, mem)) {
				t.Fatalf("%s %v: delta update diverged from rebuild", name, p)
			}
		}
	})
}

// FuzzSchemeEquivalence is the scheme layer's anchor: the diagonal code
// driven through the generic Scheme interface must match the legacy
// CheckBits delta-update and syndrome paths bit for bit under arbitrary
// interleavings of single-cell writes, row-/column-parallel writes,
// fault flips, and scrubs. The script bytes are decoded three at a time
// into (op, line, payload); both worlds execute the identical sequence on
// their own memory image and are compared block by block after every
// scrub and in full at the end.
func FuzzSchemeEquivalence(f *testing.F) {
	f.Add(int64(1), []byte{0x00, 0x01, 0x02})
	f.Add(int64(2), []byte{0x03, 0x10, 0xFF, 0x01, 0x2C, 0x80})
	f.Add(int64(3), []byte{0x02, 0x07, 0x55, 0x04, 0x00, 0x00, 0x01, 0x08, 0x18})
	f.Add(int64(9), []byte{4, 4, 4, 4, 4, 4, 0, 0, 0, 3, 3, 3})
	f.Fuzz(func(t *testing.T, seed int64, script []byte) {
		p := Params{N: 45, M: 15}
		memA := randomMemory(seed, p)
		memB := memA.Clone()
		legacy := Build(p, memA)
		spec, err := SchemeByName(SchemeDiagonal)
		if err != nil {
			t.Fatal(err)
		}
		sch := spec.New(p, memB)

		compareBlocks := func(stage string) {
			t.Helper()
			if !memA.Equal(memB) {
				t.Fatalf("%s: memories diverged", stage)
			}
			for br := 0; br < p.BlocksPerSide(); br++ {
				for bc := 0; bc < p.BlocksPerSide(); bc++ {
					want := legacy.CheckBlock(memA, br, bc)
					got := sch.CheckBlock(memB, br, bc)
					if want.Kind == NoError {
						if len(got) != 0 {
							t.Fatalf("%s: block (%d,%d): scheme %v, legacy clean", stage, br, bc, got)
						}
						continue
					}
					if len(got) != 1 || got[0] != want {
						t.Fatalf("%s: block (%d,%d): scheme %v, legacy %+v", stage, br, bc, got, want)
					}
				}
			}
			if !sch.Equal(&diagonalScheme{cb: legacy}) {
				t.Fatalf("%s: check-bit states diverged", stage)
			}
		}

		for i := 0; i+2 < len(script) && i < 60; i += 3 {
			op, line, payload := script[i]%5, int(script[i+1])%p.N, script[i+2]
			switch op {
			case 0: // single-cell write
				r, c := line, int(payload)%p.N
				oldA := memA.Get(r, c)
				v := payload&0x80 != 0
				legacy.UpdateWrite(r, c, oldA, v)
				memA.Set(r, c, v)
				sch.UpdateWrite(r, c, memB.Get(r, c), v)
				memB.Set(r, c, v)
			case 1: // row-parallel write: payload seeds mask and values
				oldA := memA.Row(line).Clone()
				cur := oldA.Clone()
				cols := bitmat.NewVec(p.N)
				for j := 0; j < p.N; j++ {
					h := uint32(j)*2654435761 + uint32(payload)
					if h>>13&3 == 0 {
						cols.Set(j, true)
						cur.Set(j, h>>17&1 != 0)
					}
				}
				legacy.UpdateRowWrite(line, oldA, cur, cols)
				memA.SetRow(line, cur)
				oldB := memB.Row(line).Clone()
				sch.UpdateRowWrite(line, oldB, cur, cols)
				memB.SetRow(line, cur)
			case 2: // column-parallel write
				oldA := memA.Col(line)
				cur := oldA.Clone()
				rows := bitmat.NewVec(p.N)
				for j := 0; j < p.N; j++ {
					h := uint32(j)*40503 + uint32(payload)*97
					if h>>11&3 == 0 {
						rows.Set(j, true)
						cur.Set(j, h>>15&1 != 0)
					}
				}
				legacy.UpdateColumnWrite(line, oldA, cur, rows)
				memA.SetCol(line, cur)
				oldB := memB.Col(line)
				sch.UpdateColumnWrite(line, oldB, cur, rows)
				memB.SetCol(line, cur)
			case 3: // soft-error flip (no delta update — the codes must see it)
				r, c := line, int(payload)%p.N
				memA.Flip(r, c)
				memB.Flip(r, c)
			default: // scrub both worlds and compare every diagnosis
				repA := legacy.Scrub(memA)
				for br := 0; br < p.BlocksPerSide(); br++ {
					for bc := 0; bc < p.BlocksPerSide(); bc++ {
						sch.CorrectBlock(memB, br, bc)
					}
				}
				_ = repA
				compareBlocks("post-scrub")
			}
		}
		compareBlocks("final")
	})
}
