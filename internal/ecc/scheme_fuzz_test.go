package ecc

import (
	"testing"

	"repro/internal/bitmat"
)

// FuzzSchemeEquivalence is the scheme layer's anchor: the diagonal code
// driven through the generic Scheme interface must match the legacy
// CheckBits delta-update and syndrome paths bit for bit under arbitrary
// interleavings of single-cell writes, row-/column-parallel writes,
// fault flips, and scrubs. The script bytes are decoded three at a time
// into (op, line, payload); both worlds execute the identical sequence on
// their own memory image and are compared block by block after every
// scrub and in full at the end.
func FuzzSchemeEquivalence(f *testing.F) {
	f.Add(int64(1), []byte{0x00, 0x01, 0x02})
	f.Add(int64(2), []byte{0x03, 0x10, 0xFF, 0x01, 0x2C, 0x80})
	f.Add(int64(3), []byte{0x02, 0x07, 0x55, 0x04, 0x00, 0x00, 0x01, 0x08, 0x18})
	f.Add(int64(9), []byte{4, 4, 4, 4, 4, 4, 0, 0, 0, 3, 3, 3})
	f.Fuzz(func(t *testing.T, seed int64, script []byte) {
		p := Params{N: 45, M: 15}
		memA := randomMemory(seed, p)
		memB := memA.Clone()
		legacy := Build(p, memA)
		spec, err := SchemeByName(SchemeDiagonal)
		if err != nil {
			t.Fatal(err)
		}
		sch := spec.New(p, memB)

		compareBlocks := func(stage string) {
			t.Helper()
			if !memA.Equal(memB) {
				t.Fatalf("%s: memories diverged", stage)
			}
			for br := 0; br < p.BlocksPerSide(); br++ {
				for bc := 0; bc < p.BlocksPerSide(); bc++ {
					want := legacy.CheckBlock(memA, br, bc)
					got := sch.CheckBlock(memB, br, bc)
					if want.Kind == NoError {
						if len(got) != 0 {
							t.Fatalf("%s: block (%d,%d): scheme %v, legacy clean", stage, br, bc, got)
						}
						continue
					}
					if len(got) != 1 || got[0] != want {
						t.Fatalf("%s: block (%d,%d): scheme %v, legacy %+v", stage, br, bc, got, want)
					}
				}
			}
			if !sch.Equal(&diagonalScheme{cb: legacy}) {
				t.Fatalf("%s: check-bit states diverged", stage)
			}
		}

		for i := 0; i+2 < len(script) && i < 60; i += 3 {
			op, line, payload := script[i]%5, int(script[i+1])%p.N, script[i+2]
			switch op {
			case 0: // single-cell write
				r, c := line, int(payload)%p.N
				oldA := memA.Get(r, c)
				v := payload&0x80 != 0
				legacy.UpdateWrite(r, c, oldA, v)
				memA.Set(r, c, v)
				sch.UpdateWrite(r, c, memB.Get(r, c), v)
				memB.Set(r, c, v)
			case 1: // row-parallel write: payload seeds mask and values
				oldA := memA.Row(line).Clone()
				cur := oldA.Clone()
				cols := bitmat.NewVec(p.N)
				for j := 0; j < p.N; j++ {
					h := uint32(j)*2654435761 + uint32(payload)
					if h>>13&3 == 0 {
						cols.Set(j, true)
						cur.Set(j, h>>17&1 != 0)
					}
				}
				legacy.UpdateRowWrite(line, oldA, cur, cols)
				memA.SetRow(line, cur)
				oldB := memB.Row(line).Clone()
				sch.UpdateRowWrite(line, oldB, cur, cols)
				memB.SetRow(line, cur)
			case 2: // column-parallel write
				oldA := memA.Col(line)
				cur := oldA.Clone()
				rows := bitmat.NewVec(p.N)
				for j := 0; j < p.N; j++ {
					h := uint32(j)*40503 + uint32(payload)*97
					if h>>11&3 == 0 {
						rows.Set(j, true)
						cur.Set(j, h>>15&1 != 0)
					}
				}
				legacy.UpdateColumnWrite(line, oldA, cur, rows)
				memA.SetCol(line, cur)
				oldB := memB.Col(line)
				sch.UpdateColumnWrite(line, oldB, cur, rows)
				memB.SetCol(line, cur)
			case 3: // soft-error flip (no delta update — the codes must see it)
				r, c := line, int(payload)%p.N
				memA.Flip(r, c)
				memB.Flip(r, c)
			default: // scrub both worlds and compare every diagnosis
				repA := legacy.Scrub(memA)
				for br := 0; br < p.BlocksPerSide(); br++ {
					for bc := 0; bc < p.BlocksPerSide(); bc++ {
						sch.CorrectBlock(memB, br, bc)
					}
				}
				_ = repA
				compareBlocks("post-scrub")
			}
		}
		compareBlocks("final")
	})
}
