package ecc

import (
	"fmt"

	"repro/internal/bitmat"
)

// Kind classifies what a block syndrome says happened.
type Kind int

const (
	// NoError: zero syndrome, block consistent.
	NoError Kind = iota
	// DataError: exactly one leading and one counter syndrome bit set —
	// a single flipped data cell at their unique intersection.
	DataError
	// LeadCheckError: exactly one leading bit, no counter bits — the
	// leading check bit itself flipped.
	LeadCheckError
	// CounterCheckError: exactly one counter bit, no leading bits.
	CounterCheckError
	// Uncorrectable: any other signature; at least two errors landed in
	// the block. Detected but not correctable by per-block parity.
	Uncorrectable
	// CheckError: a stored check bit itself erred, for schemes that do not
	// distinguish diagonal families (the generic scheme layer's analogue
	// of Lead/CounterCheckError). Diag identifies the check bit.
	CheckError
)

// String names the diagnosis kind.
func (k Kind) String() string {
	switch k {
	case NoError:
		return "no-error"
	case DataError:
		return "data-error"
	case LeadCheckError:
		return "lead-check-error"
	case CounterCheckError:
		return "counter-check-error"
	case Uncorrectable:
		return "uncorrectable"
	case CheckError:
		return "check-error"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Diagnosis is the decoded meaning of one block syndrome.
type Diagnosis struct {
	Kind   Kind
	LR, LC int // local data cell, valid when Kind == DataError
	Diag   int // diagonal index, valid for the two check-error kinds
}

// Decode interprets a block syndrome. This is the logical function the
// CMEM controller evaluates after the checking crossbar flags a non-zero
// syndrome (Section IV-A4).
func Decode(p Params, lead, counter *bitmat.Vec) Diagnosis {
	ln, cn := lead.Popcount(), counter.Popcount()
	switch {
	case ln == 0 && cn == 0:
		return Diagnosis{Kind: NoError}
	case ln == 1 && cn == 1:
		lr, lc := p.Intersect(lead.NextOne(0), counter.NextOne(0))
		return Diagnosis{Kind: DataError, LR: lr, LC: lc}
	case ln == 1 && cn == 0:
		return Diagnosis{Kind: LeadCheckError, Diag: lead.NextOne(0)}
	case ln == 0 && cn == 1:
		return Diagnosis{Kind: CounterCheckError, Diag: counter.NextOne(0)}
	default:
		return Diagnosis{Kind: Uncorrectable}
	}
}

// CheckBlock computes and decodes the syndrome of block (br,bc).
func (cb *CheckBits) CheckBlock(mem *bitmat.Mat, br, bc int) Diagnosis {
	lead, counter := cb.Syndrome(mem, br, bc)
	return Decode(cb.p, lead, counter)
}

// CorrectBlock checks block (br,bc) and repairs a single error in place —
// flipping the faulty data memristor or check bit. It returns the
// diagnosis that was acted on.
func (cb *CheckBits) CorrectBlock(mem *bitmat.Mat, br, bc int) Diagnosis {
	d := cb.CheckBlock(mem, br, bc)
	switch d.Kind {
	case DataError:
		mem.Flip(br*cb.p.M+d.LR, bc*cb.p.M+d.LC)
	case LeadCheckError:
		cb.lead[d.Diag].Flip(br, bc)
	case CounterCheckError:
		cb.counter[d.Diag].Flip(br, bc)
	}
	return d
}

// ScrubReport summarizes a full-memory periodic check (the paper's
// T-hour scrub that bounds error accumulation).
type ScrubReport struct {
	BlocksChecked  int
	DataCorrected  int
	CheckCorrected int
	Uncorrectable  int
}

// Scrub checks and corrects every block, returning a summary. It models
// the periodic full-memory ECC check the reliability analysis assumes.
func (cb *CheckBits) Scrub(mem *bitmat.Mat) ScrubReport {
	var rep ScrubReport
	s := cb.p.BlocksPerSide()
	for br := 0; br < s; br++ {
		for bc := 0; bc < s; bc++ {
			rep.BlocksChecked++
			switch cb.CorrectBlock(mem, br, bc).Kind {
			case DataError:
				rep.DataCorrected++
			case LeadCheckError, CounterCheckError:
				rep.CheckCorrected++
			case Uncorrectable:
				rep.Uncorrectable++
			}
		}
	}
	return rep
}

// CheckBlockRow checks all blocks in block-row br (the paper's
// before-execution input check covers the row/column of blocks holding the
// function inputs) and corrects single errors. It returns the diagnoses of
// the non-clean blocks keyed by block column.
func (cb *CheckBits) CheckBlockRow(mem *bitmat.Mat, br int) map[int]Diagnosis {
	out := make(map[int]Diagnosis)
	for bc := 0; bc < cb.p.BlocksPerSide(); bc++ {
		if d := cb.CorrectBlock(mem, br, bc); d.Kind != NoError {
			out[bc] = d
		}
	}
	return out
}
