package ecc

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bitmat"
)

// buildScheme instantiates a registered scheme over a memory image.
func buildScheme(t *testing.T, name string, p Params, mem *bitmat.Mat) Scheme {
	t.Helper()
	spec, err := SchemeByName(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Validate(p); err != nil {
		t.Fatal(err)
	}
	return spec.New(p, mem)
}

// TestSchemeRegistry: the registry lists all six backends and unknown
// names fail with the known-scheme list in the message.
func TestSchemeRegistry(t *testing.T) {
	want := []string{"dec", "diagonal", "diagonal-x2", "diagonal-x4", "hamming", "parity"}
	got := SchemeNames()
	if len(got) != len(want) {
		t.Fatalf("SchemeNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SchemeNames() = %v, want %v", got, want)
		}
	}
	for _, name := range want {
		spec, err := SchemeByName(name)
		if err != nil || spec.Name != name {
			t.Fatalf("SchemeByName(%q) = %+v, %v", name, spec, err)
		}
	}
	_, err := SchemeByName("sec-ded-deluxe")
	if err == nil {
		t.Fatal("unknown scheme did not error")
	}
	for _, name := range want {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list scheme %q", err, name)
		}
	}

	// Unregistered interleave widths synthesize a spec on the fly…
	spec, err := SchemeByName("diagonal-x3")
	if err != nil || spec.Name != "diagonal-x3" || spec.Corrects != 1 {
		t.Fatalf("SchemeByName(diagonal-x3) = %+v, %v", spec, err)
	}
	// …but malformed widths do not.
	for _, bad := range []string{"diagonal-x", "diagonal-x1", "diagonal-x0", "diagonal-xk"} {
		if _, err := SchemeByName(bad); err == nil {
			t.Fatalf("malformed interleave name %q accepted", bad)
		}
	}

	// Every registered spec declares its correction/detection budget.
	budgets := map[string][2]int{
		"dec": {2, 3}, "diagonal": {1, 2}, "diagonal-x2": {1, 2},
		"diagonal-x4": {1, 2}, "hamming": {1, 2}, "parity": {0, 1},
	}
	for name, b := range budgets {
		spec, err := SchemeByName(name)
		if err != nil || spec.Corrects != b[0] || spec.Detects != b[1] {
			t.Fatalf("%s budget = (%d,%d), %v; want (%d,%d)",
				name, spec.Corrects, spec.Detects, err, b[0], b[1])
		}
	}
}

// TestParseSchemeFlag: the CLI flag keeps its boolean spellings and
// resolves registered names.
func TestParseSchemeFlag(t *testing.T) {
	cases := []struct {
		in      string
		name    string
		enabled bool
		wantErr bool
	}{
		{"", SchemeDiagonal, true, false},
		{"true", SchemeDiagonal, true, false},
		{"t", SchemeDiagonal, true, false},
		{"1", SchemeDiagonal, true, false},
		{"TRUE", SchemeDiagonal, true, false},
		{"diagonal", SchemeDiagonal, true, false},
		{"hamming", SchemeHamming, true, false},
		{"parity", SchemeParity, true, false},
		{"dec", SchemeDEC, true, false},
		{"diagonal-x4", "diagonal-x4", true, false},
		{"diagonal-x8", "diagonal-x8", true, false},
		{"diagonal-x1", "", false, true},
		{"false", "", false, false},
		{"f", "", false, false},
		{"0", "", false, false},
		{"FALSE", "", false, false},
		{"none", "", false, false},
		{"off", "", false, false},
		{"bogus", "", false, true},
	}
	for _, c := range cases {
		name, enabled, err := ParseSchemeFlag(c.in)
		if (err != nil) != c.wantErr || name != c.name || enabled != c.enabled {
			t.Errorf("ParseSchemeFlag(%q) = (%q, %v, %v), want (%q, %v, err=%v)",
				c.in, name, enabled, err, c.name, c.enabled, c.wantErr)
		}
	}
}

// TestSchemeOverheadOrdering: the storage-overhead comparison of the E10
// table — parity is the cheapest, the diagonal code undercuts horizontal
// Hamming SEC-DED (the paper's headline overhead claim), interleaving is
// storage-free (the same check bits, re-striped), DEC pays for its
// double-correction, and the concrete counts match the closed forms.
func TestSchemeOverheadOrdering(t *testing.T) {
	p := Params{N: 60, M: 15}
	overhead := map[string]int{}
	for _, name := range SchemeNames() {
		overhead[name] = buildScheme(t, name, p, nil).OverheadBits()
	}
	if overhead["diagonal"] != p.TotalCheckBits() {
		t.Fatalf("diagonal overhead %d, want %d", overhead["diagonal"], p.TotalCheckBits())
	}
	// Interleaving re-stripes the same per-unit bits: storage is identical.
	for _, name := range []string{"diagonal-x2", "diagonal-x4"} {
		if overhead[name] != overhead["diagonal"] {
			t.Fatalf("%s overhead %d, want diagonal's %d", name, overhead[name], overhead["diagonal"])
		}
	}
	// Hamming: 5 SEC bits + 1 overall parity per 15-bit word.
	if want := 60 * 4 * 6; overhead["hamming"] != want {
		t.Fatalf("hamming overhead %d, want %d", overhead["hamming"], want)
	}
	// DEC: 10 BCH bits + 1 overall parity per 15-bit word.
	if want := 60 * 4 * 11; overhead["dec"] != want {
		t.Fatalf("dec overhead %d, want %d", overhead["dec"], want)
	}
	if want := 60 * 4; overhead["parity"] != want {
		t.Fatalf("parity overhead %d, want %d", overhead["parity"], want)
	}
	if !(overhead["parity"] < overhead["diagonal"] &&
		overhead["diagonal"] < overhead["hamming"] &&
		overhead["hamming"] < overhead["dec"]) {
		t.Fatalf("overhead ordering violated: %v", overhead)
	}
}

// TestSchemeLineUpdateReads: the update-cost hook captures the asymmetry
// the diagonal placement was invented for — delta codes pay Θ(1) per
// written cell while Hamming re-encodes every crossed word.
func TestSchemeLineUpdateReads(t *testing.T) {
	p := Params{N: 60, M: 15}
	want := map[string]int{
		"diagonal":    2 * 60, // Θ(1) per written cell: old/new copy only
		"diagonal-x2": 2 * 60, // striping preserves the delta property
		"diagonal-x4": 2 * 60,
		"parity":      2 * 60,
		"hamming":     60 * 15, // re-encode every crossed word
		"dec":         60 * 15,
	}
	for name, w := range want {
		if got := buildScheme(t, name, p, nil).LineUpdateReads(60); got != w {
			t.Fatalf("%s LineUpdateReads(60) = %d, want %d", name, got, w)
		}
	}
}

// TestSchemeSingleErrorRoundTrip: for every correcting scheme, a single
// flipped data bit anywhere is located and repaired exactly, leaving the
// state consistent; for parity it is detected.
func TestSchemeSingleErrorRoundTrip(t *testing.T) {
	p := Params{N: 60, M: 15}
	for _, name := range SchemeNames() {
		mem := randomMemory(7, p)
		s := buildScheme(t, name, p, mem)
		want := mem.Clone()
		rng := rand.New(rand.NewSource(11))
		for trial := 0; trial < 50; trial++ {
			r, c := rng.Intn(p.N), rng.Intn(p.N)
			mem.Flip(r, c)
			// The covering unit's findings live under its *home* block —
			// the cell's own block for column-local schemes, the sub-code's
			// home for interleaved stripes.
			br, bc, _ := s.UnitOf(r, c)
			ds := s.CorrectBlock(mem, br, bc)
			if len(ds) != 1 {
				t.Fatalf("%s: %d diagnoses for one flip", name, len(ds))
			}
			if name == SchemeParity {
				if ds[0].Kind != Uncorrectable {
					t.Fatalf("parity: diagnosis %v, want detect-only uncorrectable", ds[0].Kind)
				}
				mem.Flip(r, c) // parity never repairs; undo by hand
			} else {
				if ds[0].Kind != DataError || br*p.M+ds[0].LR != r || bc*p.M+ds[0].LC != c {
					t.Fatalf("%s: diagnosis %+v for flip at (%d,%d)", name, ds[0], r, c)
				}
				if !mem.Equal(want) {
					t.Fatalf("%s: flip at (%d,%d) not repaired exactly", name, r, c)
				}
			}
			if ds := s.CheckBlock(mem, br, bc); len(ds) != 0 {
				t.Fatalf("%s: block still dirty after repair: %v", name, ds)
			}
		}
		if !s.Equal(buildScheme(t, name, p, mem)) {
			t.Fatalf("%s: state inconsistent with rebuild after repairs", name)
		}
	}
}

// TestHammingDoubleFlipDetected: two flips in one word are flagged
// uncorrectable and the word is left untouched (DED, never miscorrected);
// two flips in different words of a block are both corrected.
func TestHammingDoubleFlipDetected(t *testing.T) {
	p := Params{N: 45, M: 15}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		mem := randomMemory(int64(trial), p)
		s := buildScheme(t, SchemeHamming, p, mem)
		want := mem.Clone()
		r := rng.Intn(p.N)
		bc := rng.Intn(p.N / p.M)
		c1 := bc*p.M + rng.Intn(p.M)
		c2 := bc*p.M + rng.Intn(p.M)
		for c2 == c1 {
			c2 = bc*p.M + rng.Intn(p.M)
		}
		mem.Flip(r, c1)
		mem.Flip(r, c2)
		ds := s.CorrectBlock(mem, r/p.M, bc)
		if len(ds) != 1 || ds[0].Kind != Uncorrectable {
			t.Fatalf("same-word double: diagnoses %v, want one uncorrectable", ds)
		}
		check := mem.Clone()
		check.Flip(r, c1)
		check.Flip(r, c2)
		if !check.Equal(want) {
			t.Fatal("uncorrectable word was mutated — miscorrection")
		}
	}

	// Cross-word double inside one block: two independent singles.
	mem := randomMemory(42, p)
	s := buildScheme(t, SchemeHamming, p, mem)
	want := mem.Clone()
	mem.Flip(0, 3)  // word 0 of row 0
	mem.Flip(14, 8) // word 0 of row 14 — same block (0,0), different word
	ds := s.CorrectBlock(mem, 0, 0)
	if len(ds) != 2 || ds[0].Kind != DataError || ds[1].Kind != DataError {
		t.Fatalf("cross-word double: diagnoses %v, want two data errors", ds)
	}
	if !mem.Equal(want) {
		t.Fatal("cross-word double not fully repaired")
	}
}

// TestHammingCheckBitErrors: flips in the stored SEC check bits and the
// overall parity bit are located, classified CheckError, and repaired.
func TestHammingCheckBitErrors(t *testing.T) {
	p := Params{N: 45, M: 15}
	mem := randomMemory(9, p)
	h := buildScheme(t, SchemeHamming, p, mem).(*hammingScheme)
	clean := h.Clone()

	// SEC check bit 2 of word 1 in row 20.
	h.check[20][1] ^= 1 << 2
	ds := h.CorrectBlock(mem, 20/p.M, 1)
	if len(ds) != 1 || ds[0].Kind != CheckError {
		t.Fatalf("check-bit flip: diagnoses %v", ds)
	}
	if !h.Equal(clean) {
		t.Fatal("check-bit flip not repaired")
	}

	// Overall parity bit of word 2 in row 5.
	h.par.Flip(5, 2)
	ds = h.CorrectBlock(mem, 5/p.M, 2)
	if len(ds) != 1 || ds[0].Kind != CheckError {
		t.Fatalf("parity-bit flip: diagnoses %v", ds)
	}
	if !h.Equal(clean) {
		t.Fatal("parity-bit flip not repaired")
	}
}

// TestSchemeDeltaUpdatesMatchRebuild: for every scheme, a random sequence
// of single-cell, row-parallel and column-parallel delta updates leaves
// the state identical to a from-scratch rebuild — the continuous-parity
// contract the machine's write paths rely on.
func TestSchemeDeltaUpdatesMatchRebuild(t *testing.T) {
	p := Params{N: 60, M: 15}
	for _, name := range SchemeNames() {
		mem := randomMemory(5, p)
		s := buildScheme(t, name, p, mem)
		rng := rand.New(rand.NewSource(13))
		for step := 0; step < 200; step++ {
			switch rng.Intn(3) {
			case 0: // single cell
				r, c := rng.Intn(p.N), rng.Intn(p.N)
				old := mem.Get(r, c)
				v := rng.Intn(2) == 0
				s.UpdateWrite(r, c, old, v)
				mem.Set(r, c, v)
			case 1: // row-parallel write of a random column mask
				r := rng.Intn(p.N)
				old := mem.Row(r).Clone()
				cur := old.Clone()
				cols := bitmat.NewVec(p.N)
				for i := 0; i < p.N; i++ {
					if rng.Intn(4) == 0 {
						cols.Set(i, true)
						cur.Set(i, rng.Intn(2) == 0)
					}
				}
				s.UpdateRowWrite(r, old, cur, cols)
				mem.SetRow(r, cur)
			default: // column-parallel write of a random row mask
				c := rng.Intn(p.N)
				old := mem.Col(c)
				cur := old.Clone()
				rows := bitmat.NewVec(p.N)
				for i := 0; i < p.N; i++ {
					if rng.Intn(4) == 0 {
						rows.Set(i, true)
						cur.Set(i, rng.Intn(2) == 0)
					}
				}
				s.UpdateColumnWrite(c, old, cur, rows)
				mem.SetCol(c, cur)
			}
		}
		if !s.Equal(buildScheme(t, name, p, mem)) {
			t.Fatalf("%s: delta updates diverged from rebuild", name)
		}
		for br := 0; br < p.BlocksPerSide(); br++ {
			for bc := 0; bc < p.BlocksPerSide(); bc++ {
				if ds := s.CheckBlock(mem, br, bc); len(ds) != 0 {
					t.Fatalf("%s: clean state flags block (%d,%d): %v", name, br, bc, ds)
				}
			}
		}
	}
}

// TestSchemeCloneIndependence: Clone is a deep copy — mutating the
// original never leaks into the clone.
func TestSchemeCloneIndependence(t *testing.T) {
	p := Params{N: 60, M: 15}
	for _, name := range SchemeNames() {
		mem := randomMemory(21, p)
		s := buildScheme(t, name, p, mem)
		snap := s.Clone()
		if !snap.Equal(s) {
			t.Fatalf("%s: clone not equal", name)
		}
		s.UpdateWrite(7, 7, mem.Get(7, 7), !mem.Get(7, 7))
		if snap.Equal(s) {
			t.Fatalf("%s: clone shares state with original", name)
		}
	}
}

// TestSchemeReferenceCheckAgrees: on random corrupted states, the
// bit-serial reference decoder and the production CheckBlock path agree
// on every block — the invariant the campaign's cross-check enforces.
func TestSchemeReferenceCheckAgrees(t *testing.T) {
	p := Params{N: 60, M: 15}
	for _, name := range SchemeNames() {
		rng := rand.New(rand.NewSource(31))
		for trial := 0; trial < 30; trial++ {
			mem := randomMemory(int64(trial), p)
			s := buildScheme(t, name, p, mem)
			for f := 0; f < rng.Intn(6); f++ {
				mem.Flip(rng.Intn(p.N), rng.Intn(p.N))
			}
			for br := 0; br < p.BlocksPerSide(); br++ {
				for bc := 0; bc < p.BlocksPerSide(); bc++ {
					got := s.CheckBlock(mem, br, bc)
					want := s.ReferenceCheck(mem, br, bc)
					if len(got) != len(want) {
						t.Fatalf("%s block (%d,%d): production %v, reference %v", name, br, bc, got, want)
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("%s block (%d,%d): production %v, reference %v", name, br, bc, got, want)
						}
					}
				}
			}
		}
	}
}

// TestSchemeRebuildBlock: corrupt one block's data underneath the scheme;
// the home blocks of the affected units flag the damage, and rebuilding
// exactly those home blocks restores consistency without touching the
// rest. (For column-local schemes the home block is block (1,2) itself;
// interleaved stripes spread the flips over several homes in the group.)
func TestSchemeRebuildBlock(t *testing.T) {
	p := Params{N: 60, M: 15}
	for _, name := range SchemeNames() {
		mem := randomMemory(17, p)
		s := buildScheme(t, name, p, mem)
		// Desynchronize block (1,2) by mutating data underneath the scheme.
		homes := make(map[[2]int]bool)
		for i := 0; i < 5; i++ {
			r, c := 1*p.M+i, 2*p.M+(i*3)%p.M
			mem.Flip(r, c)
			ubr, ubc, _ := s.UnitOf(r, c)
			homes[[2]int{ubr, ubc}] = true
		}
		flagged := 0
		for h := range homes {
			flagged += len(s.CheckBlock(mem, h[0], h[1]))
		}
		if flagged == 0 {
			t.Fatalf("%s: five flips went unnoticed", name)
		}
		for h := range homes {
			s.RebuildBlock(mem, h[0], h[1])
		}
		if !s.Equal(buildScheme(t, name, p, mem)) {
			t.Fatalf("%s: RebuildBlock did not restore consistency", name)
		}
	}
}
