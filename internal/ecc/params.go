// Package ecc implements the paper's primary contribution: an
// error-correcting code maintained along wrap-around diagonals of m×m
// blocks of a memristive crossbar array.
//
// Every cell (r,c) of a block belongs to exactly one leading diagonal,
// index (r+c) mod m, and one counter diagonal, index (r−c) mod m. A parity
// check-bit is kept per diagonal per block, for both families. Because a
// parallel MAGIC operation writes at most one cell per row and per column,
// it changes at most one cell per diagonal — so every check-bit has at
// most one altered data bit and can be updated continuously in Θ(1)
// operations (Section III of the paper; contrast with horizontal codes,
// which need Θ(n) updates after a column-parallel operation).
//
// With m odd, a (leading, counter) index pair identifies a unique block
// cell — the intersection solves 2r ≡ i+j (mod m) — which gives the code
// single-error correction per block: a data error flips exactly one
// leading and one counter check, a check-bit error flips only its own
// family, and anything else is flagged uncorrectable.
package ecc

import "fmt"

// Params describes the geometry of the protected crossbar: an N×N data
// array divided into an (N/M)×(N/M) grid of M×M blocks.
type Params struct {
	N int // crossbar side length (data bits per row)
	M int // block side length; must be odd so diagonals intersect uniquely
}

// PaperParams returns the case-study geometry used throughout the paper's
// evaluation: n = 1020, m = 15.
func PaperParams() Params { return Params{N: 1020, M: 15} }

// Validate checks the geometric constraints the code requires.
func (p Params) Validate() error {
	if p.M < 3 {
		return fmt.Errorf("ecc: block size m=%d too small (need m ≥ 3)", p.M)
	}
	if p.M%2 == 0 {
		return fmt.Errorf("ecc: block size m=%d must be odd for diagonals to intersect uniquely", p.M)
	}
	if p.N <= 0 || p.N%p.M != 0 {
		return fmt.Errorf("ecc: crossbar size n=%d must be a positive multiple of m=%d", p.N, p.M)
	}
	return nil
}

// BlocksPerSide returns N/M, the number of blocks along one side.
func (p Params) BlocksPerSide() int { return p.N / p.M }

// NumBlocks returns the total number of blocks in the crossbar.
func (p Params) NumBlocks() int { s := p.BlocksPerSide(); return s * s }

// DataBitsPerBlock returns m².
func (p Params) DataBitsPerBlock() int { return p.M * p.M }

// CheckBitsPerBlock returns 2m (one parity bit per leading and per counter
// diagonal).
func (p Params) CheckBitsPerBlock() int { return 2 * p.M }

// TotalCheckBits returns the CMEM capacity: 2·m·(n/m)², matching the
// check-bit row of Table II.
func (p Params) TotalCheckBits() int { return p.CheckBitsPerBlock() * p.NumBlocks() }

// Overhead returns the storage overhead ratio check-bits/data-bits = 2/m.
func (p Params) Overhead() float64 { return 2.0 / float64(p.M) }

// BlockOf maps a global cell (r,c) to its block coordinates (br,bc) and
// local in-block coordinates (lr,lc).
func (p Params) BlockOf(r, c int) (br, bc, lr, lc int) {
	return r / p.M, c / p.M, r % p.M, c % p.M
}

// LeadIdx returns the leading wrap-around diagonal index of local cell
// (lr,lc): (lr+lc) mod m.
func (p Params) LeadIdx(lr, lc int) int { return (lr + lc) % p.M }

// CounterIdx returns the counter wrap-around diagonal index of local cell
// (lr,lc): (lr−lc) mod m.
func (p Params) CounterIdx(lr, lc int) int { return ((lr-lc)%p.M + p.M) % p.M }

// Intersect returns the unique local cell lying on leading diagonal i and
// counter diagonal j. It relies on m being odd: 2r ≡ i+j (mod m) has the
// single solution r = (i+j)·(m+1)/2 mod m (footnote 1 in the paper).
func (p Params) Intersect(i, j int) (lr, lc int) {
	inv2 := (p.M + 1) / 2 // multiplicative inverse of 2 modulo odd m
	lr = ((i + j) * inv2) % p.M
	lc = ((i-lr)%p.M + p.M) % p.M
	return lr, lc
}
