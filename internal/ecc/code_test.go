package ecc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitmat"
)

// testParams is a small geometry that keeps exhaustive tests fast while
// exercising multiple blocks: 45×45 crossbar, 3×3 grid of 15×15 blocks.
var testParams = Params{N: 45, M: 15}

func randomMemory(seed int64, p Params) *bitmat.Mat {
	rng := rand.New(rand.NewSource(seed))
	m := bitmat.NewMat(p.N, p.N)
	m.Randomize(rng)
	return m
}

func TestBuildZeroSyndrome(t *testing.T) {
	mem := randomMemory(1, testParams)
	cb := Build(testParams, mem)
	for br := 0; br < testParams.BlocksPerSide(); br++ {
		for bc := 0; bc < testParams.BlocksPerSide(); bc++ {
			lead, counter := cb.Syndrome(mem, br, bc)
			if lead.Any() || counter.Any() {
				t.Fatalf("block (%d,%d) has non-zero syndrome on freshly built code", br, bc)
			}
		}
	}
}

func TestZeroMemoryZeroCheckBits(t *testing.T) {
	mem := bitmat.NewMat(testParams.N, testParams.N)
	cb := Build(testParams, mem)
	if !cb.Equal(NewCheckBits(testParams)) {
		t.Fatal("all-zero memory should give all-zero check bits")
	}
}

func TestSingleDataFlipSyndromeSignature(t *testing.T) {
	mem := randomMemory(2, testParams)
	cb := Build(testParams, mem)
	p := testParams

	mem.Flip(20, 33) // block (1,2), local (5,3)
	br, bc, lr, lc := p.BlockOf(20, 33)
	lead, counter := cb.Syndrome(mem, br, bc)
	if lead.Popcount() != 1 || counter.Popcount() != 1 {
		t.Fatalf("syndrome popcounts = (%d,%d), want (1,1)", lead.Popcount(), counter.Popcount())
	}
	if !lead.Get(p.LeadIdx(lr, lc)) || !counter.Get(p.CounterIdx(lr, lc)) {
		t.Fatal("syndrome bits at wrong diagonal indices")
	}
	// Other blocks remain clean — errors are contained per block.
	for obr := 0; obr < p.BlocksPerSide(); obr++ {
		for obc := 0; obc < p.BlocksPerSide(); obc++ {
			if obr == br && obc == bc {
				continue
			}
			l, c := cb.Syndrome(mem, obr, obc)
			if l.Any() || c.Any() {
				t.Fatalf("unrelated block (%d,%d) shows syndrome", obr, obc)
			}
		}
	}
}

func TestUpdateWriteMatchesRebuild(t *testing.T) {
	// Continuous (delta) update over a random write sequence must equal
	// rebuilding check bits from scratch — the core continuous-parity claim.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mem := randomMemory(seed, testParams)
		cb := Build(testParams, mem)
		for i := 0; i < 200; i++ {
			r, c := rng.Intn(testParams.N), rng.Intn(testParams.N)
			oldV := mem.Get(r, c)
			newV := rng.Intn(2) == 0
			cb.UpdateWrite(r, c, oldV, newV)
			mem.Set(r, c, newV)
		}
		return cb.Equal(Build(testParams, mem))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateColumnWriteMatchesRebuild(t *testing.T) {
	// Column-parallel MAGIC op: column c rewritten across a random row mask.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := testParams
		mem := randomMemory(seed+1000, p)
		cb := Build(p, mem)
		c := rng.Intn(p.N)
		rows := bitmat.NewVec(p.N)
		for r := 0; r < p.N; r++ {
			rows.Set(r, rng.Intn(2) == 0)
		}
		oldCol := mem.Col(c)
		newCol := oldCol.Clone()
		for _, r := range rows.OnesIndices() {
			newCol.Set(r, rng.Intn(2) == 0)
		}
		cb.UpdateColumnWrite(c, oldCol, newCol, rows)
		for _, r := range rows.OnesIndices() {
			mem.Set(r, c, newCol.Get(r))
		}
		return cb.Equal(Build(p, mem))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateRowWriteMatchesRebuild(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := testParams
		mem := randomMemory(seed+2000, p)
		cb := Build(p, mem)
		r := rng.Intn(p.N)
		cols := bitmat.NewVec(p.N)
		for c := 0; c < p.N; c++ {
			cols.Set(c, rng.Intn(2) == 0)
		}
		oldRow := mem.Row(r).Clone()
		newRow := oldRow.Clone()
		for _, c := range cols.OnesIndices() {
			newRow.Set(c, rng.Intn(2) == 0)
		}
		cb.UpdateRowWrite(r, oldRow, newRow, cols)
		for _, c := range cols.OnesIndices() {
			mem.Set(r, c, newRow.Get(c))
		}
		return cb.Equal(Build(p, mem))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateWriteNoChangeIsNoop(t *testing.T) {
	mem := randomMemory(3, testParams)
	cb := Build(testParams, mem)
	snap := cb.Clone()
	cb.UpdateWrite(5, 5, true, true)
	cb.UpdateWrite(5, 5, false, false)
	if !cb.Equal(snap) {
		t.Fatal("no-change update altered check bits")
	}
}

func TestResetBlock(t *testing.T) {
	p := testParams
	mem := randomMemory(4, p)
	cb := Build(p, mem)
	// Zero block (1,1)'s data and reset its check bits directly.
	for lr := 0; lr < p.M; lr++ {
		for lc := 0; lc < p.M; lc++ {
			mem.Set(p.M+lr, p.M+lc, false)
		}
	}
	cb.ResetBlock(1, 1)
	if d := cb.CheckBlock(mem, 1, 1); d.Kind != NoError {
		t.Fatalf("after block reset, diagnosis = %v", d.Kind)
	}
}

func TestCloneAndEqual(t *testing.T) {
	mem := randomMemory(5, testParams)
	cb := Build(testParams, mem)
	cp := cb.Clone()
	if !cb.Equal(cp) {
		t.Fatal("clone differs")
	}
	cp.FlipLead(0, 0, 0)
	if cb.Equal(cp) {
		t.Fatal("Equal missed a flipped check bit")
	}
}

func TestBuildRejectsWrongSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Build with mismatched memory size did not panic")
		}
	}()
	Build(testParams, bitmat.NewMat(10, 10))
}

func TestNewCheckBitsRejectsBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCheckBits with invalid params did not panic")
		}
	}()
	NewCheckBits(Params{N: 16, M: 4})
}
