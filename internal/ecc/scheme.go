package ecc

// This file is the scheme layer: the protection code becomes a pluggable
// backend instead of a hard-wired diagonal implementation. A Scheme is one
// code instance bound to an N×N crossbar geometry — it owns the stored
// check-bit state and exposes exactly the operations the rest of the stack
// (machine, pmem, campaign, serve, fleet) needs:
//
//   - continuous delta updates matching the substrate's write shapes
//     (single cell, row-parallel, column-parallel), the paper's
//     "cancel the old effect, add the new effect" protocol;
//   - per-block check / correct over the shared M×M block grid, reporting
//     Diagnosis values the scrub and the fault-campaign adjudicator
//     consume generically;
//   - a bit-serial ReferenceCheck used adversarially against the
//     production path (the campaign's conformance cross-check);
//   - overhead and update-cost hooks, so the paper's comparison —
//     diagonal lead/counter block code vs. conventional horizontal
//     Hamming SEC-DED vs. bare parity — runs head-to-head through one
//     pipeline instead of in isolated unit benchmarks.
//
// Registered backends (SchemeByName, mirroring faults.ModelByName):
//
//   - "diagonal": the paper's code, adapting the word-parallel CheckBits
//     with zero hot-path change (the cycle-accurate CMEM keeps driving the
//     same CheckBits math; this adapter is the logical image of it).
//   - "hamming": horizontal Hamming SEC-DED over M-bit words, promoted
//     from the bench-only strawman in hamming.go to a full scrubbing and
//     correcting backend.
//   - "parity": one parity bit per M-bit word — the cheap detect-only
//     baseline.

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/bitmat"
)

// Registered scheme names.
const (
	SchemeDiagonal = "diagonal"
	SchemeHamming  = "hamming"
	SchemeParity   = "parity"
	SchemeDEC      = "dec"
)

// interleavedPrefix is the name family of the striped diagonal codes:
// "diagonal-x<K>" runs K independent diagonal codes interleaved across
// the crossbar columns.
const interleavedPrefix = "diagonal-x"

// Scheme is one protection-code instance bound to an N×N crossbar divided
// into M×M blocks (Params). Implementations are not safe for concurrent
// use; each protected crossbar owns its own instance.
type Scheme interface {
	// Name returns the registered scheme name.
	Name() string
	// Params returns the geometry the state is built for.
	Params() Params
	// Clone deep-copies the check-bit state.
	Clone() Scheme
	// Equal reports whether o is the same scheme with identical state.
	Equal(o Scheme) bool

	// UpdateWrite is the single-cell delta update: data cell (r,c)
	// transitioned oldVal→newVal through the protected write path.
	UpdateWrite(r, c int, oldVal, newVal bool)
	// UpdateRowWrite updates check bits after row r was written in every
	// column selected by cols, with the given old and new row contents.
	UpdateRowWrite(r int, oldRow, newRow, cols *bitmat.Vec)
	// UpdateColumnWrite is the column dual: column c was written in every
	// row selected by rows.
	UpdateColumnWrite(c int, oldCol, newCol, rows *bitmat.Vec)

	// CheckBlock diagnoses block (br,bc) against mem without repairing,
	// returning the non-clean diagnoses in a deterministic order (empty =
	// clean). Schemes with sub-block structure (Hamming words) may return
	// several diagnoses for one block.
	CheckBlock(mem *bitmat.Mat, br, bc int) []Diagnosis
	// CorrectBlock checks block (br,bc) and repairs every single error it
	// can, in place (data cells in mem, check bits in the scheme state).
	// It returns the diagnoses acted on, in the same order as CheckBlock.
	CorrectBlock(mem *bitmat.Mat, br, bc int) []Diagnosis
	// RebuildBlock re-establishes the check bits of block (br,bc) from the
	// memory image — the controller maintenance path used after unprotected
	// scratch regions are reclaimed.
	RebuildBlock(mem *bitmat.Mat, br, bc int)
	// RebuildRowWords re-establishes, from the memory image, the check
	// bits of every code unit that lies entirely within data row r of
	// block column bc, and reports whether the scheme has such units.
	// Word-based codes re-encode the one crossed word; the diagonal code's
	// unit is the whole block, which no single row spans, so it does
	// nothing and returns false. This is the narrowest sound maintenance
	// action after a row's data has been independently verified: it can
	// never absorb an error in a row it did not touch.
	RebuildRowWords(mem *bitmat.Mat, r, bc int) bool
	// ReferenceCheck recomputes the diagnoses of block (br,bc) bit-serially
	// from first principles — obviously correct, allowed to be slow, and
	// implemented independently of the production check path so the
	// campaign's conformance cross-check can adversarially verify it.
	ReferenceCheck(mem *bitmat.Mat, br, bc int) []Diagnosis
	// CoversCell reports whether diagnosis d pertains to the code unit
	// containing local block cell (lr,lc) — the join the fault-campaign
	// adjudicator uses to match findings to fault cells. The diagonal
	// code's unit is the whole block (always true); word schemes cover
	// only their own word row.
	CoversCell(d Diagnosis, lr, lc int) bool
	// UnitOf maps global data cell (r,c) to the home block (ubr,ubc)
	// under which the covering code unit's diagnoses are reported, plus
	// the sub-unit index within that block (the word row for word-based
	// codes, 0 for whole-block codes). For every existing scheme the home
	// block is the cell's own physical block; the interleaved diagonal
	// codes report a striped unit under one home block of its column
	// group, so consumers joining findings to cells must go through this
	// hook rather than dividing by M.
	UnitOf(r, c int) (ubr, ubc, sub int)
	// HomeColumns returns the smallest home block-column range
	// [first,last] such that checking (or rebuilding) the units homed
	// there covers every cell of physical block-columns [firstBC,lastBC].
	// Identity for column-local schemes; the interleaved codes widen to
	// the enclosing column-group boundary.
	HomeColumns(firstBC, lastBC int) (first, last int)

	// OverheadBits returns the total check-bit storage the scheme needs
	// for its geometry.
	OverheadBits() int
	// LineUpdateReads is the update-cost hook: the number of stored
	// data-bit reads needed to bring check bits current after a single
	// line-parallel MAGIC operation crossing `lines` lines. The diagonal
	// placement guarantees Θ(1) changed bits per check bit, so it pays
	// only the old/new copy of the written cells (2·lines); a horizontal
	// Hamming word must be re-encoded from all M data bits of every
	// crossed word (M·lines) — the asymmetry the code was invented for.
	LineUpdateReads(lines int) int
}

// SchemeSpec describes one registered scheme: geometry validation, a
// state factory, and the code's declared error budget. New builds the
// check-bit state for memory image mem; a nil mem means an all-zero
// crossbar. Corrects/Detects are per code unit between scrubs: the
// scheme guarantees correction of any ≤Corrects-bit error and detection
// (never miscorrection) of any ≤Detects-bit error — the contract the
// registry-generic fuzz harness and the comparison matrix consume.
type SchemeSpec struct {
	Name     string
	Validate func(p Params) error
	New      func(p Params, mem *bitmat.Mat) Scheme
	Corrects int
	Detects  int
}

// schemes is the registry. Keyed by name; listed sorted for stable errors.
var schemes = map[string]SchemeSpec{
	SchemeDiagonal: {
		Name:     SchemeDiagonal,
		Validate: func(p Params) error { return p.Validate() },
		New:      newDiagonalScheme,
		Corrects: 1, Detects: 2,
	},
	SchemeHamming: {
		Name:     SchemeHamming,
		Validate: validateWordGeometry,
		New:      newHammingScheme,
		Corrects: 1, Detects: 2,
	},
	SchemeParity: {
		Name:     SchemeParity,
		Validate: validateParityGeometry,
		New:      newParityScheme,
		Corrects: 0, Detects: 1,
	},
	SchemeDEC: {
		Name:     SchemeDEC,
		Validate: validateDECGeometry,
		New:      newDECScheme,
		Corrects: 2, Detects: 3,
	},
	interleavedPrefix + "2": interleavedSpec(2),
	interleavedPrefix + "4": interleavedSpec(4),
}

// interleavedSpec builds the registry entry for a k-way interleaved
// diagonal code. The concretely registered widths (x2, x4) appear in
// SchemeNames; SchemeByName additionally synthesizes any other
// "diagonal-x<K>" on demand.
func interleavedSpec(k int) SchemeSpec {
	return SchemeSpec{
		Name:     fmt.Sprintf("%s%d", interleavedPrefix, k),
		Validate: func(p Params) error { return validateInterleavedGeometry(p, k) },
		New: func(p Params, mem *bitmat.Mat) Scheme {
			return newInterleavedScheme(p, mem, k)
		},
		Corrects: 1, Detects: 2,
	}
}

// SchemeNames lists the registered schemes, sorted, for CLI usage text.
func SchemeNames() []string {
	names := make([]string, 0, len(schemes))
	for n := range schemes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SchemeByName resolves a registered scheme. Beyond the registry map,
// any "diagonal-x<K>" with K ≥ 2 resolves to a synthesized k-way
// interleaved spec, so unusual interleave widths need no registration.
// Unknown names list what is available, so a CLI typo tells the user
// their options.
func SchemeByName(name string) (SchemeSpec, error) {
	if s, ok := schemes[name]; ok {
		return s, nil
	}
	if k, ok := parseInterleavedName(name); ok {
		return interleavedSpec(k), nil
	}
	return SchemeSpec{}, fmt.Errorf("ecc: unknown scheme %q (known schemes: %v)", name, SchemeNames())
}

// IsDiagonalFamily reports whether name is the diagonal code or one of
// its interleaved variants — the schemes whose checks are computed by the
// in-array CMEM pipelines rather than a controller-side word decoder.
func IsDiagonalFamily(name string) bool {
	if name == SchemeDiagonal {
		return true
	}
	_, ok := parseInterleavedName(name)
	return ok
}

// parseInterleavedName extracts K from "diagonal-x<K>", K ≥ 2.
func parseInterleavedName(name string) (k int, ok bool) {
	if len(name) <= len(interleavedPrefix) || name[:len(interleavedPrefix)] != interleavedPrefix {
		return 0, false
	}
	k, err := strconv.Atoi(name[len(interleavedPrefix):])
	if err != nil || k < 2 {
		return 0, false
	}
	return k, true
}

// ParseSchemeFlag resolves a CLI -ecc flag value into (scheme, enabled).
// The historical boolean *values* keep working — true/t/1/TRUE/… select
// the default diagonal code, false/f/0/FALSE/… the unprotected baseline,
// plus "on"/"off"/"none" — and any other value must name a registered
// scheme. (The bare `-ecc` form of the old boolean flag is gone: a
// string flag must be `-ecc=VALUE` or `-ecc VALUE`.)
func ParseSchemeFlag(v string) (name string, enabled bool, err error) {
	switch v {
	case "", "on":
		return SchemeDiagonal, true, nil
	case "none", "off":
		return "", false, nil
	}
	if b, perr := strconv.ParseBool(v); perr == nil {
		if b {
			return SchemeDiagonal, true, nil
		}
		return "", false, nil
	}
	if _, err := SchemeByName(v); err != nil {
		return "", false, err
	}
	return v, true, nil
}

// --- diagonal adapter --------------------------------------------------------

// diagonalScheme adapts the word-parallel CheckBits to the Scheme
// interface. It is a thin wrapper: every hot operation delegates straight
// to the existing delta-update and syndrome paths, so driving the diagonal
// code through the interface is bit-for-bit the legacy behavior
// (FuzzSchemeEquivalence pins this).
type diagonalScheme struct {
	cb *CheckBits
}

// newDiagonalScheme implements SchemeSpec.New for the diagonal code.
func newDiagonalScheme(p Params, mem *bitmat.Mat) Scheme {
	if mem == nil {
		return &diagonalScheme{cb: NewCheckBits(p)}
	}
	return &diagonalScheme{cb: Build(p, mem)}
}

// DiagonalFromCheckBits wraps an existing check-bit state (e.g. the CMEM's
// exported logical image) as a Scheme, so scheme-generic consumers — the
// campaign's reference decoder above all — can treat the cycle-accurate
// diagonal pipeline like any other backend.
func DiagonalFromCheckBits(cb *CheckBits) Scheme { return &diagonalScheme{cb: cb} }

func (s *diagonalScheme) Name() string   { return SchemeDiagonal }
func (s *diagonalScheme) Params() Params { return s.cb.Params() }

func (s *diagonalScheme) Clone() Scheme { return &diagonalScheme{cb: s.cb.Clone()} }

func (s *diagonalScheme) Equal(o Scheme) bool {
	od, ok := o.(*diagonalScheme)
	return ok && s.cb.Equal(od.cb)
}

func (s *diagonalScheme) UpdateWrite(r, c int, oldVal, newVal bool) {
	s.cb.UpdateWrite(r, c, oldVal, newVal)
}

func (s *diagonalScheme) UpdateRowWrite(r int, oldRow, newRow, cols *bitmat.Vec) {
	s.cb.UpdateRowWrite(r, oldRow, newRow, cols)
}

func (s *diagonalScheme) UpdateColumnWrite(c int, oldCol, newCol, rows *bitmat.Vec) {
	s.cb.UpdateColumnWrite(c, oldCol, newCol, rows)
}

func (s *diagonalScheme) CheckBlock(mem *bitmat.Mat, br, bc int) []Diagnosis {
	if d := s.cb.CheckBlock(mem, br, bc); d.Kind != NoError {
		return []Diagnosis{d}
	}
	return nil
}

func (s *diagonalScheme) CorrectBlock(mem *bitmat.Mat, br, bc int) []Diagnosis {
	if d := s.cb.CorrectBlock(mem, br, bc); d.Kind != NoError {
		return []Diagnosis{d}
	}
	return nil
}

// RebuildRowWords: the diagonal code unit is the whole block — no unit
// fits inside one row, so there is nothing row-scoped to re-encode.
func (s *diagonalScheme) RebuildRowWords(*bitmat.Mat, int, int) bool { return false }

func (s *diagonalScheme) RebuildBlock(mem *bitmat.Mat, br, bc int) {
	p := s.cb.p
	s.cb.ResetBlock(br, bc)
	for lr := 0; lr < p.M; lr++ {
		r := br*p.M + lr
		row := mem.Row(r)
		for lc := 0; lc < p.M; lc++ {
			if row.Get(bc*p.M + lc) {
				s.cb.flipFor(r, bc*p.M+lc)
			}
		}
	}
}

// ReferenceCheck walks the block one cell at a time straight from the
// code's definition — cell (lr,lc) belongs to leading diagonal (lr+lc)
// mod m and counter diagonal (lr−lc) mod m — so any divergence from the
// word-parallel production path pins a bug in the pipeline, not in the
// mathematics. (Moved here from the campaign's diagonal-only ref.go.)
func (s *diagonalScheme) ReferenceCheck(mem *bitmat.Mat, br, bc int) []Diagnosis {
	p := s.cb.p
	lead := bitmat.NewVec(p.M)
	counter := bitmat.NewVec(p.M)
	for d := 0; d < p.M; d++ {
		lead.Set(d, s.cb.Lead(d, br, bc))
		counter.Set(d, s.cb.Counter(d, br, bc))
	}
	for lr := 0; lr < p.M; lr++ {
		for lc := 0; lc < p.M; lc++ {
			if mem.Get(br*p.M+lr, bc*p.M+lc) {
				lead.Flip(p.LeadIdx(lr, lc))
				counter.Flip(p.CounterIdx(lr, lc))
			}
		}
	}
	if d := Decode(p, lead, counter); d.Kind != NoError {
		return []Diagnosis{d}
	}
	return nil
}

// CoversCell: the diagonal code's unit is the whole block — every
// diagnosis of a block pertains to every cell of it.
func (s *diagonalScheme) CoversCell(Diagnosis, int, int) bool { return true }

// UnitOf: the code unit is the cell's own block.
func (s *diagonalScheme) UnitOf(r, c int) (ubr, ubc, sub int) {
	return r / s.cb.p.M, c / s.cb.p.M, 0
}

// HomeColumns: block-column-local — the covering units are home.
func (s *diagonalScheme) HomeColumns(firstBC, lastBC int) (int, int) { return firstBC, lastBC }

func (s *diagonalScheme) OverheadBits() int { return s.cb.p.TotalCheckBits() }

func (s *diagonalScheme) LineUpdateReads(lines int) int { return 2 * lines }
