package ecc

// The Hamming backend of the scheme layer: the conventional horizontal
// code promoted from the bench-only strawman (hamming.go) to a full
// scrubbing and correcting Scheme, so the paper's comparison runs through
// the whole pipeline instead of isolated unit benchmarks.
//
// Layout: each M-bit horizontal word of a row is one SEC-DED codeword —
// word g of row r covers columns [g·M, (g+1)·M), so block (br,bc) contains
// exactly the M words {row br·M+lr, word bc}. Per word the state stores
// ⌈log2⌉-style SEC check bits plus one overall parity bit covering the
// data AND the stored check bits (the DED extension): a single flipped
// data bit, check bit, or parity bit is located and repaired; any double
// is detected and flagged uncorrectable; nothing in a clean double is ever
// "corrected" into silent corruption.
//
// The delta-update methods are functionally Θ(changed bits) — Hamming is
// a linear code too — but LineUpdateReads reports the honest hardware
// cost: a column-parallel MAGIC operation changes one bit of *every* word
// it crosses, and with in-place overwrites the old value is gone, so each
// crossed word must be re-encoded from all M data bits.

import (
	"fmt"
	mathbits "math/bits"

	"repro/internal/bitmat"
)

// validateWordGeometry checks the geometry shared by the horizontal word
// schemes: M-bit words must tile the row and fit one machine word.
func validateWordGeometry(p Params) error {
	if p.M < 2 {
		return fmt.Errorf("ecc: word width m=%d too small (need m ≥ 2)", p.M)
	}
	if p.M > 64 {
		return fmt.Errorf("ecc: word width m=%d too wide (need m ≤ 64)", p.M)
	}
	if p.N <= 0 || p.N%p.M != 0 {
		return fmt.Errorf("ecc: crossbar size n=%d must be a positive multiple of m=%d", p.N, p.M)
	}
	return nil
}

// hammingScheme is the SEC-DED state: check[r][g] holds word g's SEC check
// bits, par holds its overall parity bit.
type hammingScheme struct {
	p       Params
	nCheck  int      // SEC check bits per word
	pattern []uint32 // pattern[i] = Hamming index of data bit i
	check   [][]uint32
	par     *bitmat.Mat // rows × words overall-parity plane

	delta *bitmat.Vec // scratch for the line-delta updates
}

// newHammingScheme implements SchemeSpec.New.
func newHammingScheme(p Params, mem *bitmat.Mat) Scheme {
	if err := validateWordGeometry(p); err != nil {
		panic(err)
	}
	words := p.N / p.M
	h := &hammingScheme{
		p:       p,
		nCheck:  hammingCheckBits(p.M),
		pattern: make([]uint32, p.M),
		check:   make([][]uint32, p.N),
		par:     bitmat.NewMat(p.N, words),
		delta:   bitmat.NewVec(p.N),
	}
	for i := 0; i < p.M; i++ {
		h.pattern[i] = uint32(hammingIndex(i))
	}
	for r := range h.check {
		h.check[r] = make([]uint32, words)
	}
	if mem != nil {
		for r := 0; r < p.N; r++ {
			for g := 0; g < words; g++ {
				h.rebuildWord(mem, r, g)
			}
		}
	}
	return h
}

func (h *hammingScheme) Name() string   { return SchemeHamming }
func (h *hammingScheme) Params() Params { return h.p }

func (h *hammingScheme) Clone() Scheme {
	out := &hammingScheme{
		p:       h.p,
		nCheck:  h.nCheck,
		pattern: h.pattern, // immutable after construction
		check:   make([][]uint32, len(h.check)),
		par:     h.par.Clone(),
		delta:   bitmat.NewVec(h.p.N),
	}
	for r := range h.check {
		out.check[r] = append([]uint32(nil), h.check[r]...)
	}
	return out
}

func (h *hammingScheme) Equal(o Scheme) bool {
	oh, ok := o.(*hammingScheme)
	if !ok || h.p != oh.p {
		return false
	}
	for r := range h.check {
		for g := range h.check[r] {
			if h.check[r][g] != oh.check[r][g] {
				return false
			}
		}
	}
	return h.par.Equal(oh.par)
}

// dataWord reads the M data bits of word g in row r, LSB = lowest column.
func (h *hammingScheme) dataWord(mem *bitmat.Mat, r, g int) uint64 {
	return mem.Row(r).Uint64At(g*h.p.M, h.p.M)
}

// encodeWord computes the SEC check bits of a data word.
func (h *hammingScheme) encodeWord(w uint64) uint32 {
	var c uint32
	for w != 0 {
		i := mathbits.TrailingZeros64(w)
		w &= w - 1
		c ^= h.pattern[i]
	}
	return c
}

// rebuildWord recomputes word g of row r's stored state from mem.
func (h *hammingScheme) rebuildWord(mem *bitmat.Mat, r, g int) {
	w := h.dataWord(mem, r, g)
	c := h.encodeWord(w)
	h.check[r][g] = c
	h.par.Set(r, g, (mathbits.OnesCount64(w)+mathbits.OnesCount32(c))&1 != 0)
}

// flipBit applies the Θ(1) delta update for one changed data bit: XOR the
// bit's column pattern into the SEC check bits and re-balance the overall
// parity (which covers data and check bits alike).
func (h *hammingScheme) flipBit(r, c int) {
	g, i := c/h.p.M, c%h.p.M
	pat := h.pattern[i]
	h.check[r][g] ^= pat
	if (1+mathbits.OnesCount32(pat))&1 != 0 {
		h.par.Flip(r, g)
	}
}

func (h *hammingScheme) UpdateWrite(r, c int, oldVal, newVal bool) {
	if oldVal != newVal {
		h.flipBit(r, c)
	}
}

func (h *hammingScheme) UpdateRowWrite(r int, oldRow, newRow, cols *bitmat.Vec) {
	h.delta.Xor(oldRow, newRow)
	h.delta.And(h.delta, cols)
	h.delta.ForEachOne(func(c int) { h.flipBit(r, c) })
}

func (h *hammingScheme) UpdateColumnWrite(c int, oldCol, newCol, rows *bitmat.Vec) {
	h.delta.Xor(oldCol, newCol)
	h.delta.And(h.delta, rows)
	h.delta.ForEachOne(func(r int) { h.flipBit(r, c) })
}

// diagnoseWord decodes word g of row r. lr is the in-block row used in the
// reported Diagnosis.
func (h *hammingScheme) diagnoseWord(mem *bitmat.Mat, r, g, lr int) (Diagnosis, bool) {
	w := h.dataWord(mem, r, g)
	stored := h.check[r][g]
	syn := stored ^ h.encodeWord(w)
	parMismatch := ((mathbits.OnesCount64(w)+mathbits.OnesCount32(stored))&1 != 0) != h.par.Get(r, g)
	switch {
	case syn == 0 && !parMismatch:
		return Diagnosis{}, false
	case syn == 0: // the overall parity bit itself erred
		return Diagnosis{Kind: CheckError, LR: lr, Diag: h.checkBitID(lr, h.nCheck)}, true
	case !parMismatch: // non-zero syndrome, even parity: a double — detected
		return Diagnosis{Kind: Uncorrectable, LR: lr}, true
	}
	if pos := dataPosOf(int(syn)); pos >= 0 && pos < h.p.M {
		return Diagnosis{Kind: DataError, LR: lr, LC: pos}, true
	}
	if syn&(syn-1) == 0 { // syndrome names a check position: stored bit j erred
		if j := mathbits.TrailingZeros32(syn); j < h.nCheck {
			return Diagnosis{Kind: CheckError, LR: lr, Diag: h.checkBitID(lr, j)}, true
		}
	}
	// Odd parity but the syndrome points nowhere valid: ≥3 errors.
	return Diagnosis{Kind: Uncorrectable, LR: lr}, true
}

// checkBitID packs (word row, check bit) into the Diagnosis.Diag field:
// j in [0,nCheck) is a SEC check bit, j == nCheck the overall parity bit.
func (h *hammingScheme) checkBitID(lr, j int) int { return lr*(h.nCheck+1) + j }

func (h *hammingScheme) CheckBlock(mem *bitmat.Mat, br, bc int) []Diagnosis {
	var out []Diagnosis
	for lr := 0; lr < h.p.M; lr++ {
		if d, bad := h.diagnoseWord(mem, br*h.p.M+lr, bc, lr); bad {
			out = append(out, d)
		}
	}
	return out
}

func (h *hammingScheme) CorrectBlock(mem *bitmat.Mat, br, bc int) []Diagnosis {
	var out []Diagnosis
	for lr := 0; lr < h.p.M; lr++ {
		r := br*h.p.M + lr
		d, bad := h.diagnoseWord(mem, r, bc, lr)
		if !bad {
			continue
		}
		switch d.Kind {
		case DataError:
			mem.Flip(r, bc*h.p.M+d.LC)
		case CheckError:
			// Flipping the erred stored bit restores consistency on its
			// own: the overall parity already covers the corrected value.
			if j := d.Diag - h.checkBitID(lr, 0); j == h.nCheck {
				h.par.Flip(r, bc)
			} else {
				h.check[r][bc] ^= 1 << uint(j)
			}
		}
		out = append(out, d)
	}
	return out
}

func (h *hammingScheme) RebuildBlock(mem *bitmat.Mat, br, bc int) {
	for lr := 0; lr < h.p.M; lr++ {
		h.rebuildWord(mem, br*h.p.M+lr, bc)
	}
}

// RebuildRowWords: the Hamming unit is one horizontal word, fully
// contained in its row — re-encode the single crossed word.
func (h *hammingScheme) RebuildRowWords(mem *bitmat.Mat, r, bc int) bool {
	h.rebuildWord(mem, r, bc)
	return true
}

// ReferenceCheck re-derives each word's diagnosis bit-serially: every SEC
// check bit's parity is recomputed by looping over its covered data
// positions one at a time (no packed XOR of precomputed patterns), and the
// classification logic is written out independently of diagnoseWord.
func (h *hammingScheme) ReferenceCheck(mem *bitmat.Mat, br, bc int) []Diagnosis {
	var out []Diagnosis
	for lr := 0; lr < h.p.M; lr++ {
		r := br*h.p.M + lr
		// Recompute each check bit j as the parity of the data positions
		// whose Hamming index has bit j set.
		var syn uint32
		ones := 0
		for j := 0; j < h.nCheck; j++ {
			parity := false
			for i := 0; i < h.p.M; i++ {
				if hammingIndex(i)&(1<<uint(j)) != 0 && mem.Get(r, bc*h.p.M+i) {
					parity = !parity
				}
			}
			if parity != (h.check[r][bc]&(1<<uint(j)) != 0) {
				syn |= 1 << uint(j)
			}
		}
		for i := 0; i < h.p.M; i++ {
			if mem.Get(r, bc*h.p.M+i) {
				ones++
			}
		}
		for j := 0; j < h.nCheck; j++ {
			if h.check[r][bc]&(1<<uint(j)) != 0 {
				ones++
			}
		}
		parMismatch := (ones&1 != 0) != h.par.Get(r, bc)
		switch {
		case syn == 0 && !parMismatch:
			continue
		case syn == 0:
			out = append(out, Diagnosis{Kind: CheckError, LR: lr, Diag: h.checkBitID(lr, h.nCheck)})
		case !parMismatch:
			out = append(out, Diagnosis{Kind: Uncorrectable, LR: lr})
		default:
			if pos := dataPosOf(int(syn)); pos >= 0 && pos < h.p.M {
				out = append(out, Diagnosis{Kind: DataError, LR: lr, LC: pos})
			} else if syn&(syn-1) == 0 && int(syn) < 1<<uint(h.nCheck) {
				out = append(out, Diagnosis{Kind: CheckError, LR: lr,
					Diag: h.checkBitID(lr, mathbits.TrailingZeros32(syn))})
			} else {
				out = append(out, Diagnosis{Kind: Uncorrectable, LR: lr})
			}
		}
	}
	return out
}

// CoversCell: the codeword is one M-bit word — a diagnosis pertains only
// to cells of its own word row (every Diagnosis this scheme emits sets
// LR to the in-block word row).
func (h *hammingScheme) CoversCell(d Diagnosis, lr, _ int) bool { return d.LR == lr }

// UnitOf: the codeword is word bc of row r — reported under the cell's
// own block with the word row as the sub-unit index.
func (h *hammingScheme) UnitOf(r, c int) (ubr, ubc, sub int) {
	return r / h.p.M, c / h.p.M, r % h.p.M
}

// HomeColumns: words are block-column-local.
func (h *hammingScheme) HomeColumns(firstBC, lastBC int) (int, int) { return firstBC, lastBC }

// OverheadBits: (nCheck+1) bits per M-bit word, N/M words per row, N rows.
func (h *hammingScheme) OverheadBits() int {
	return h.p.N * (h.p.N / h.p.M) * (h.nCheck + 1)
}

// LineUpdateReads: every crossed word re-encodes from all M data bits.
func (h *hammingScheme) LineUpdateReads(lines int) int { return lines * h.p.M }
