package ecc

// The parity backend of the scheme layer: one parity bit per M-bit
// horizontal word — the cheapest protection the comparison table admits.
// It detects every odd-weight error in a word and corrects nothing; an
// even-weight error (a double hit in one word) passes silently. Its value
// is as a baseline: half the diagonal code's overhead per word, but no
// correction and no double-error guarantee, which the fault campaign
// quantifies head-to-head.

import (
	"fmt"
	mathbits "math/bits"

	"repro/internal/bitmat"
)

// validateParityGeometry: parity shares the word tiling but has no
// machine-word width limit (words are folded in ≤64-bit windows).
func validateParityGeometry(p Params) error {
	if p.M < 1 {
		return fmt.Errorf("ecc: word width m=%d too small (need m ≥ 1)", p.M)
	}
	if p.N <= 0 || p.N%p.M != 0 {
		return fmt.Errorf("ecc: crossbar size n=%d must be a positive multiple of m=%d", p.N, p.M)
	}
	return nil
}

// parityScheme stores one parity bit per word: par[r][g] is the XOR of the
// data bits of word g in row r.
type parityScheme struct {
	p     Params
	par   *bitmat.Mat // rows × words
	delta *bitmat.Vec // scratch for the line-delta updates
}

// newParityScheme implements SchemeSpec.New.
func newParityScheme(p Params, mem *bitmat.Mat) Scheme {
	if err := validateParityGeometry(p); err != nil {
		panic(err)
	}
	s := &parityScheme{p: p, par: bitmat.NewMat(p.N, p.N/p.M), delta: bitmat.NewVec(p.N)}
	if mem != nil {
		for r := 0; r < p.N; r++ {
			for g := 0; g < p.N/p.M; g++ {
				s.par.Set(r, g, s.wordParity(mem, r, g))
			}
		}
	}
	return s
}

func (s *parityScheme) Name() string   { return SchemeParity }
func (s *parityScheme) Params() Params { return s.p }

func (s *parityScheme) Clone() Scheme {
	return &parityScheme{p: s.p, par: s.par.Clone(), delta: bitmat.NewVec(s.p.N)}
}

func (s *parityScheme) Equal(o Scheme) bool {
	op, ok := o.(*parityScheme)
	return ok && s.p == op.p && s.par.Equal(op.par)
}

// wordParity folds word g of row r in ≤64-bit windows.
func (s *parityScheme) wordParity(mem *bitmat.Mat, r, g int) bool {
	row := mem.Row(r)
	ones := 0
	for base := 0; base < s.p.M; base += 64 {
		k := s.p.M - base
		if k > 64 {
			k = 64
		}
		ones += mathbits.OnesCount64(row.Uint64At(g*s.p.M+base, k))
	}
	return ones&1 != 0
}

func (s *parityScheme) UpdateWrite(r, c int, oldVal, newVal bool) {
	if oldVal != newVal {
		s.par.Flip(r, c/s.p.M)
	}
}

func (s *parityScheme) UpdateRowWrite(r int, oldRow, newRow, cols *bitmat.Vec) {
	s.delta.Xor(oldRow, newRow)
	s.delta.And(s.delta, cols)
	s.delta.ForEachOne(func(c int) { s.par.Flip(r, c/s.p.M) })
}

func (s *parityScheme) UpdateColumnWrite(c int, oldCol, newCol, rows *bitmat.Vec) {
	s.delta.Xor(oldCol, newCol)
	s.delta.And(s.delta, rows)
	g := c / s.p.M
	s.delta.ForEachOne(func(r int) { s.par.Flip(r, g) })
}

func (s *parityScheme) CheckBlock(mem *bitmat.Mat, br, bc int) []Diagnosis {
	var out []Diagnosis
	for lr := 0; lr < s.p.M; lr++ {
		r := br*s.p.M + lr
		if s.wordParity(mem, r, bc) != s.par.Get(r, bc) {
			// Detected, never located: parity cannot tell which bit (or
			// whether the check bit itself) erred.
			out = append(out, Diagnosis{Kind: Uncorrectable, LR: lr})
		}
	}
	return out
}

// CorrectBlock is CheckBlock: a detect-only code repairs nothing.
func (s *parityScheme) CorrectBlock(mem *bitmat.Mat, br, bc int) []Diagnosis {
	return s.CheckBlock(mem, br, bc)
}

// RebuildRowWords: the parity unit is one horizontal word, fully
// contained in its row — recompute the single crossed parity bit.
func (s *parityScheme) RebuildRowWords(mem *bitmat.Mat, r, bc int) bool {
	s.par.Set(r, bc, s.wordParity(mem, r, bc))
	return true
}

func (s *parityScheme) RebuildBlock(mem *bitmat.Mat, br, bc int) {
	for lr := 0; lr < s.p.M; lr++ {
		r := br*s.p.M + lr
		s.par.Set(r, bc, s.wordParity(mem, r, bc))
	}
}

// ReferenceCheck recomputes each word's parity one cell at a time.
func (s *parityScheme) ReferenceCheck(mem *bitmat.Mat, br, bc int) []Diagnosis {
	var out []Diagnosis
	for lr := 0; lr < s.p.M; lr++ {
		r := br*s.p.M + lr
		parity := false
		for i := 0; i < s.p.M; i++ {
			if mem.Get(r, bc*s.p.M+i) {
				parity = !parity
			}
		}
		if parity != s.par.Get(r, bc) {
			out = append(out, Diagnosis{Kind: Uncorrectable, LR: lr})
		}
	}
	return out
}

// CoversCell: like Hamming, the code unit is one word row.
func (s *parityScheme) CoversCell(d Diagnosis, lr, _ int) bool { return d.LR == lr }

// UnitOf: the parity word lives in the cell's own block, word row sub.
func (s *parityScheme) UnitOf(r, c int) (ubr, ubc, sub int) {
	return r / s.p.M, c / s.p.M, r % s.p.M
}

// HomeColumns: words are block-column-local.
func (s *parityScheme) HomeColumns(firstBC, lastBC int) (int, int) { return firstBC, lastBC }

// OverheadBits: one bit per M-bit word.
func (s *parityScheme) OverheadBits() int { return s.p.N * (s.p.N / s.p.M) }

// LineUpdateReads: parity is a per-bit delta code like the diagonal
// placement — the old and new value of each written cell suffice.
func (s *parityScheme) LineUpdateReads(lines int) int { return 2 * lines }
