package ecc

import (
	"math/rand"
	"testing"
)

// TestFalsePositiveCornerCase reproduces the rare scenario Section III of
// the paper documents and defers to future work (locally decodable
// codes): continuous parity updates compute the delta from the *stored*
// old value. If a bit suffered a soft error and is then overwritten
// before any check runs, the erroneous old value is cancelled instead of
// the true one — the error migrates into the check bits. The data is now
// correct, but the next check sees a data-error signature at that cell
// and "corrects" a perfectly good bit (false positive).
func TestFalsePositiveCornerCase(t *testing.T) {
	p := Params{N: 15, M: 15}
	mem := randomMemory(77, p)
	cb := Build(p, mem)

	r, c := 4, 9
	// A soft error flips the stored bit...
	mem.Flip(r, c)
	// ...and before any check, a critical operation overwrites the cell.
	// The protocol reads the *stored* (erroneous) old value.
	staleOld := mem.Get(r, c)
	newVal := !staleOld // the write changes the cell
	cb.UpdateWrite(r, c, staleOld, newVal)
	mem.Set(r, c, newVal)

	// The data cell now holds the intended new value, but the check bits
	// absorbed the error: the block decodes as a data error at (r,c).
	d := cb.CheckBlock(mem, 0, 0)
	if d.Kind != DataError || d.LR != r || d.LC != c {
		t.Fatalf("expected the documented false positive at (%d,%d), got %+v", r, c, d)
	}

	// And correction makes the (correct) data bit wrong — the documented
	// failure mode motivating the paper's future-work citation.
	want := mem.Clone()
	cb.CorrectBlock(mem, 0, 0)
	if mem.Equal(want) {
		t.Fatal("false positive unexpectedly left data intact")
	}
}

// TestNoFalsePositiveWhenCheckedFirst shows the paper's mitigation:
// specific checks before function execution bound the window. If the
// block is checked (and the error corrected) before the overwrite, the
// continuous update is computed from a clean old value and no false
// positive occurs.
func TestNoFalsePositiveWhenCheckedFirst(t *testing.T) {
	p := Params{N: 15, M: 15}
	mem := randomMemory(78, p)
	cb := Build(p, mem)

	r, c := 4, 9
	mem.Flip(r, c)
	// Pre-execution input check repairs the error first.
	if d := cb.CorrectBlock(mem, 0, 0); d.Kind != DataError {
		t.Fatalf("setup: %v", d.Kind)
	}
	// Now the overwrite uses a truthful old value.
	oldVal := mem.Get(r, c)
	cb.UpdateWrite(r, c, oldVal, !oldVal)
	mem.Set(r, c, !oldVal)

	if d := cb.CheckBlock(mem, 0, 0); d.Kind != NoError {
		t.Fatalf("block dirty after checked-then-write sequence: %v", d.Kind)
	}
}

// TestErrorMigrationIsDetectableNotSilent confirms the corner case never
// *silently* corrupts: the stale-delta update leaves a non-zero syndrome
// (a flagged, if misattributed, condition) rather than a clean one.
func TestErrorMigrationIsDetectableNotSilent(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 50; trial++ {
		p := Params{N: 15, M: 15}
		mem := randomMemory(int64(trial), p)
		cb := Build(p, mem)
		r, c := rng.Intn(15), rng.Intn(15)
		mem.Flip(r, c)
		stale := mem.Get(r, c)
		newVal := rng.Intn(2) == 0
		cb.UpdateWrite(r, c, stale, newVal)
		mem.Set(r, c, newVal)
		if cb.CheckBlock(mem, 0, 0).Kind == NoError {
			t.Fatal("stale-delta update produced a clean syndrome — error went silent")
		}
	}
}
