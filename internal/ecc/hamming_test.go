package ecc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitmat"
)

func TestHammingCheckBitCounts(t *testing.T) {
	// Classic Hamming parameters: 4 data → 3 check, 11 → 4, 26 → 5, 57 → 6.
	for _, tc := range [][2]int{{4, 3}, {8, 4}, {11, 4}, {26, 5}, {57, 6}, {64, 7}} {
		if got := hammingCheckBits(tc[0]); got != tc[1] {
			t.Errorf("hammingCheckBits(%d) = %d, want %d", tc[0], got, tc[1])
		}
	}
}

func TestHammingIndexInverse(t *testing.T) {
	for i := 0; i < 64; i++ {
		idx := hammingIndex(i)
		if idx&(idx-1) == 0 {
			t.Fatalf("data bit %d mapped to power-of-two index %d", i, idx)
		}
		if got := dataPosOf(idx); got != i {
			t.Fatalf("dataPosOf(hammingIndex(%d)) = %d", i, got)
		}
	}
}

func TestHammingBuildVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mem := bitmat.NewMat(8, 32)
	mem.Randomize(rng)
	h := NewHammingCode(mem, 8)
	if !h.Verify(mem) {
		t.Fatal("fresh code does not verify")
	}
}

func TestHammingSingleErrorCorrection(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mem := bitmat.NewMat(6, 48)
		mem.Randomize(rng)
		h := NewHammingCode(mem, 8)
		want := mem.Clone()
		r, c := rng.Intn(6), rng.Intn(48)
		mem.Flip(r, c)
		if !h.CorrectWord(mem, r, c/8) {
			return false
		}
		return mem.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHammingUpdateWriteDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	mem := bitmat.NewMat(4, 64)
	mem.Randomize(rng)
	h := NewHammingCode(mem, 16)
	for i := 0; i < 200; i++ {
		r, c := rng.Intn(4), rng.Intn(64)
		mem.Flip(r, c)
		h.UpdateWrite(r, c)
	}
	if !h.Verify(mem) {
		t.Fatal("delta updates diverged from memory")
	}
}

// TestHammingVsDiagonalUpdateCost is the quantitative version of the
// paper's introduction: under a column-parallel MAGIC operation the
// Hamming-per-word scheme needs Θ(n·w) data reads to restore its check
// bits, while the diagonal scheme needs exactly one delta per check bit.
func TestHammingVsDiagonalUpdateCost(t *testing.T) {
	const n, w = 1020, 64
	mem := bitmat.NewMat(4, w) // only used to size the code
	h := NewHammingCode(mem, w)
	hammingCost := h.ColParallelUpdateCost(n)
	if hammingCost != n*w {
		t.Fatalf("hamming col-parallel cost = %d, want %d", hammingCost, n*w)
	}
	d := DiagonalTouchProfile(n)
	if d.MaxPerCheck != 1 {
		t.Fatal("diagonal cost should be one delta per check bit")
	}
	// The diagonal scheme's total work is one delta per touched check bit
	// (2n deltas); Hamming needs w/2× more than that.
	if hammingCost <= 10*2*n {
		t.Fatalf("hamming cost %d not clearly worse than 2n=%d diagonal deltas", hammingCost, 2*n)
	}
}

func TestHammingStorageOverheadComparable(t *testing.T) {
	// Fairness check for the comparison: at w=64 the Hamming overhead
	// (7/64 ≈ 11%) is in the same class as the diagonal code's 2/m
	// (13.3% at m=15) — the difference is update cost, not storage.
	mem := bitmat.NewMat(1, 1024)
	h := NewHammingCode(mem, 64)
	hammingOvh := float64(h.CheckOverheadBits(1024)) / 1024
	diagOvh := PaperParams().Overhead()
	if hammingOvh > 2*diagOvh || diagOvh > 2*hammingOvh {
		t.Fatalf("storage overheads not comparable: hamming %.3f vs diagonal %.3f",
			hammingOvh, diagOvh)
	}
}

func TestHammingCheckBitErrorRepaired(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mem := bitmat.NewMat(2, 16)
	mem.Randomize(rng)
	h := NewHammingCode(mem, 16)
	h.check[0][0] ^= 0b100 // flip a stored check bit (power-of-two index)
	if !h.CorrectWord(mem, 0, 0) {
		t.Fatal("check-bit error not noticed")
	}
	if !h.Verify(mem) {
		t.Fatal("check-bit error not repaired")
	}
}

func TestHammingBadWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHammingCode(bitmat.NewMat(2, 10), 4)
}
