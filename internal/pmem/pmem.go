// Package pmem assembles protected crossbars (internal/machine) into a
// byte-addressable memory following the mMPU organization
// (internal/mmpu): banks of n×n crossbars, each with its own CMEM. It is
// the level at which the paper's Fig 6 experiment is *performed* rather
// than modeled: data lives across many crossbars, soft errors arrive per
// the SER, periodic scrubs run, and the memory either survives (all
// errors corrected) or reports uncorrectable damage.
//
// # Concurrency
//
// Memory is safe for concurrent use through its exported access methods:
// every bank is guarded by its own mutex, so accesses to different banks
// proceed in parallel (the serving layer's per-bank workers never
// contend) while accesses to the same bank serialize. Range operations
// spanning several banks lock one bank at a time, segment by segment in
// ascending address order — each segment is applied atomically, the range
// as a whole is not. Crossbar hands out the raw machine with no
// synchronization; it is for single-threaded setup and inspection only.
package pmem

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/bitmat"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/mmpu"
	"repro/internal/repair"
	"repro/internal/synth"
	"repro/internal/telemetry"
)

// ErrRange flags an address or span outside the memory's data capacity.
var ErrRange = errors.New("address out of range")

// ErrSpan flags a malformed span: negative width, a word wider than 64
// bits, or a source buffer too short for the requested bits.
var ErrSpan = errors.New("malformed span")

// Config sizes a protected memory.
type Config struct {
	Org        mmpu.Organization
	M          int // ECC block side
	K          int // processing crossbars per crossbar array
	ECCEnabled bool

	// Scheme selects the protection code for every crossbar
	// (ecc.SchemeByName; empty = the paper's diagonal code).
	Scheme string

	// Repair configures each crossbar's self-healing layer (write-verify,
	// spare remapping, scrub-triggered retirement — internal/repair). With
	// it enabled every crossbar gets its own defect set, so stuck-at
	// faults injected through InjectModel re-assert on writes and can be
	// retired online. The zero value is off.
	Repair repair.Config
}

// Memory is a bank-organized set of protected crossbars.
type Memory struct {
	cfg   Config
	xbs   []*machine.Machine // flattened [bank*PerBank + crossbar]
	banks []sync.Mutex       // one lock per bank, guarding its crossbars

	// tel holds per-bank probes (nil slice = telemetry off); ring is the
	// shared event trace. Attached by Instrument.
	tel  []bankProbes
	ring *telemetry.Ring
}

// bankProbes is one bank's counter set. All handles no-op when nil, so
// the access paths update them unconditionally.
type bankProbes struct {
	reads         *telemetry.Counter // row-segment reads served
	writes        *telemetry.Counter // row-segment writes committed
	rmw           *telemetry.Counter // coalesced AccessRow read-modify-writes
	scrubs        *telemetry.Counter // crossbar scrubs run
	corrected     *telemetry.Counter // scrub corrections applied
	uncorrectable *telemetry.Counter // scrub uncorrectable blocks
	injected      *telemetry.Counter // fault-overlay bit flips
	computes      *telemetry.Counter // SIMD pipelines executed
}

// Instrument attaches a telemetry registry: per-bank access/RMW/scrub
// counter series (labeled bank="i"), scrub and injection events on the
// registry's ring, and the per-scheme machine probes (ecc_*_total) on
// every crossbar. Call before serving traffic — attaching is not
// synchronized with concurrent access. A nil registry detaches.
func (m *Memory) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		m.tel, m.ring = nil, nil
		for _, xb := range m.xbs {
			xb.Instrument(machine.Telemetry{})
		}
		return
	}
	m.tel = make([]bankProbes, m.cfg.Org.Banks)
	m.ring = reg.Events()
	for b := range m.tel {
		id := fmt.Sprint(b)
		m.tel[b] = bankProbes{
			reads:         reg.Counter("pmem_reads_total", "bank", id),
			writes:        reg.Counter("pmem_writes_total", "bank", id),
			rmw:           reg.Counter("pmem_rmw_total", "bank", id),
			scrubs:        reg.Counter("pmem_scrubs_total", "bank", id),
			corrected:     reg.Counter("pmem_scrub_corrected_total", "bank", id),
			uncorrectable: reg.Counter("pmem_scrub_uncorrectable_total", "bank", id),
			injected:      reg.Counter("pmem_injected_total", "bank", id),
			computes:      reg.Counter("pmem_compute_total", "bank", id),
		}
	}
	scheme := "none"
	if m.cfg.ECCEnabled {
		scheme = (machine.Config{Scheme: m.cfg.Scheme}).SchemeName()
	}
	m.cfg.Org.ForEachCrossbar(func(bank, xb int) {
		t := machine.TelemetryFor(reg, scheme)
		t.Bank, t.Xbar = bank, xb
		m.at(bank, xb).Instrument(t)
	})
}

// probe returns the bank's probe set (the zero value when detached).
func (m *Memory) probe(bank int) bankProbes {
	if m.tel == nil {
		return bankProbes{}
	}
	return m.tel[bank]
}

// New builds the memory. All crossbars start zeroed with consistent ECC.
func New(cfg Config) (*Memory, error) {
	if err := cfg.Org.Validate(); err != nil {
		return nil, err
	}
	if cfg.ECCEnabled && cfg.Org.CrossbarN%cfg.M != 0 {
		return nil, fmt.Errorf("pmem: block side %d does not divide crossbar side %d", cfg.M, cfg.Org.CrossbarN)
	}
	m := &Memory{
		cfg:   cfg,
		xbs:   make([]*machine.Machine, cfg.Org.Crossbars()),
		banks: make([]sync.Mutex, cfg.Org.Banks),
	}
	for i := range m.xbs {
		xb, err := machine.New(machine.Config{
			N: cfg.Org.CrossbarN, M: cfg.M, K: cfg.K, ECCEnabled: cfg.ECCEnabled,
			Scheme: cfg.Scheme, Repair: cfg.Repair,
		})
		if err != nil {
			return nil, err
		}
		// Each crossbar owns a defect set: stuck-at faults injected by
		// the model-based overlay land here and re-assert on every write
		// (an empty set costs nothing). With repair enabled, write-verify
		// observes them and retirement evicts them.
		xb.AttachDefects(faults.NewStuckSet())
		m.xbs[i] = xb
	}
	return m, nil
}

// RepairStats aggregates the repair-layer activity of every crossbar
// (zero with the repair policy off).
func (m *Memory) RepairStats() repair.Stats {
	var s repair.Stats
	for b := 0; b < m.cfg.Org.Banks; b++ {
		m.banks[b].Lock()
		for x := 0; x < m.cfg.Org.PerBank; x++ {
			s = s.Add(m.at(b, x).RepairStats())
		}
		m.banks[b].Unlock()
	}
	return s
}

// Config returns the memory configuration.
func (m *Memory) Config() Config { return m.cfg }

// Crossbar returns the machine holding the given flat crossbar index.
// The machine is returned without synchronization — callers own the
// coordination (single-threaded setup, or an externally quiesced memory).
func (m *Memory) Crossbar(i int) *machine.Machine { return m.xbs[i] }

// at returns the machine at (bank, crossbar-in-bank).
func (m *Memory) at(bank, xb int) *machine.Machine {
	return m.xbs[m.cfg.Org.CrossbarID(bank, xb)]
}

// checkSpan validates the bit range [bit, bit+nbits) against the memory.
func (m *Memory) checkSpan(bit, nbits int64) error {
	if nbits < 0 {
		return fmt.Errorf("pmem: span of %d bits at %d: %w", nbits, bit, ErrSpan)
	}
	// bit > DataBits()-nbits is the overflow-safe form of bit+nbits >
	// DataBits(): near-MaxInt64 starts must not wrap negative and pass.
	if bit < 0 || nbits > m.cfg.Org.DataBits() || bit > m.cfg.Org.DataBits()-nbits {
		return fmt.Errorf("pmem: range %d+%d outside [0,%d): %w",
			bit, nbits, m.cfg.Org.DataBits(), ErrRange)
	}
	return nil
}

// locate maps a flat bit address to (crossbar, bank, row, col).
func (m *Memory) locate(bit int64) (xb *machine.Machine, bank, row, col int, err error) {
	if err := m.checkSpan(bit, 1); err != nil {
		return nil, 0, 0, 0, err
	}
	a, err := m.cfg.Org.Locate(bit)
	if err != nil {
		return nil, 0, 0, 0, fmt.Errorf("pmem: locate bit %d: %w", bit, err)
	}
	return m.at(a.Bank, a.Crossbar), a.Bank, a.Row, a.Col, nil
}

// AccessRow locks the owning bank and passes a copy of the addressed
// crossbar row to fn; if fn reports the row dirty, the row is committed
// through the protected write path — one ECC delta update for the whole
// coalesced mutation. It is the primitive the serving layer batches
// same-row requests into. With a repair policy active the committed row
// is write-verified; a persistent mismatch surfaces as a
// machine.VerifyError (errors.Is-able against machine.ErrVerify) after
// the write has been escalated per policy.
func (m *Memory) AccessRow(bank, xb, row int, fn func(v *bitmat.Vec) (dirty bool)) error {
	if bank < 0 || bank >= m.cfg.Org.Banks || xb < 0 || xb >= m.cfg.Org.PerBank ||
		row < 0 || row >= m.cfg.Org.CrossbarN {
		return fmt.Errorf("pmem: row (bank %d, crossbar %d, row %d) outside organization: %w",
			bank, xb, row, ErrRange)
	}
	m.banks[bank].Lock()
	defer m.banks[bank].Unlock()
	_, err := m.at(bank, xb).UpdateRow(row, fn)
	m.probe(bank).rmw.Inc()
	return err
}

// ExecuteSIMD runs a SIMPLER mapping on one crossbar with MAGIC row
// parallelism, under the owning bank's lock — the online compute
// primitive the serving layer routes OpCompute requests to. The
// crossbar's cells [0, mapping.RowSize) in every selected row become the
// pipeline's working region (inputs are whatever the rows currently
// hold; intermediate cells are scratch); with ECC enabled the machine
// checks input block-columns first, keeps check bits current through the
// critical-update protocol, and reconciles the working region afterward,
// so a subsequent scrub finds the crossbar clean.
func (m *Memory) ExecuteSIMD(bank, xb int, mp *synth.Mapping, rows *bitmat.Vec) error {
	if bank < 0 || bank >= m.cfg.Org.Banks || xb < 0 || xb >= m.cfg.Org.PerBank {
		return fmt.Errorf("pmem: compute target (bank %d, crossbar %d) outside organization: %w",
			bank, xb, ErrRange)
	}
	m.banks[bank].Lock()
	defer m.banks[bank].Unlock()
	mach := m.at(bank, xb)
	if err := mach.ExecuteSIMD(mp, rows); err != nil {
		return err
	}
	m.probe(bank).computes.Inc()
	m.ring.Emit(telemetry.EvCompute, int64(mach.MEM().Stats().Cycles),
		bank, xb, int64(mp.Latency()), int64(mp.CriticalOps()))
	return nil
}

// WriteBit stores one bit, keeping the owning crossbar's check bits
// current (the write path computes ECC, as in conventional memories).
func (m *Memory) WriteBit(bit int64, v bool) error {
	xb, bank, row, col, err := m.locate(bit)
	if err != nil {
		return err
	}
	m.banks[bank].Lock()
	defer m.banks[bank].Unlock()
	_, err = xb.UpdateRow(row, func(r *bitmat.Vec) bool {
		r.Set(col, v)
		return true
	})
	m.probe(bank).writes.Inc()
	return err
}

// ReadBit returns one stored bit (no correction on the read path; the
// scrub and pre-compute checks handle errors, per the paper's model).
func (m *Memory) ReadBit(bit int64) (bool, error) {
	xb, bank, row, col, err := m.locate(bit)
	if err != nil {
		return false, err
	}
	m.banks[bank].Lock()
	defer m.banks[bank].Unlock()
	m.probe(bank).reads.Inc()
	return xb.MEM().Get(row, col), nil
}

// checkWord validates a word access of the given width.
func (m *Memory) checkWord(bit int64, width int) error {
	if width < 0 || width > 64 {
		return fmt.Errorf("pmem: word width %d not in [0,64]: %w", width, ErrSpan)
	}
	return m.checkSpan(bit, int64(width))
}

// WriteWord stores up to 64 bits (LSB first) starting at a bit address.
func (m *Memory) WriteWord(bit int64, w uint64, width int) error {
	if err := m.checkWord(bit, width); err != nil {
		return err
	}
	return m.writeSegments(bit, int64(width), []uint64{w})
}

// ReadWord reads up to 64 bits (LSB first) starting at a bit address.
func (m *Memory) ReadWord(bit int64, width int) (uint64, error) {
	if err := m.checkWord(bit, width); err != nil {
		return 0, err
	}
	dst := []uint64{0}
	if err := m.readSegments(bit, int64(width), dst); err != nil {
		return 0, err
	}
	return dst[0], nil
}

// WriteRange stores nbits from src (LSB-first within each word) starting
// at a bit address. The range may span rows, crossbars, and banks; each
// crossbar-row segment commits as one protected write.
func (m *Memory) WriteRange(bit int64, src []uint64, nbits int64) error {
	if err := m.checkSpan(bit, nbits); err != nil {
		return err
	}
	if int64(len(src))*64 < nbits {
		return fmt.Errorf("pmem: %d source words hold fewer than %d bits: %w", len(src), nbits, ErrSpan)
	}
	return m.writeSegments(bit, nbits, src)
}

// ReadRange reads nbits starting at a bit address into a fresh LSB-first
// word slice.
func (m *Memory) ReadRange(bit int64, nbits int64) ([]uint64, error) {
	if err := m.checkSpan(bit, nbits); err != nil {
		return nil, err
	}
	dst := make([]uint64, (nbits+63)/64)
	if err := m.readSegments(bit, nbits, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// writeSegments applies a validated range write segment by segment, taking
// each owning bank's lock in ascending address order.
func (m *Memory) writeSegments(bit, nbits int64, src []uint64) error {
	return m.cfg.Org.ForEachSegment(bit, nbits, func(s mmpu.Segment) error {
		m.banks[s.Bank].Lock()
		defer m.banks[s.Bank].Unlock()
		_, err := m.at(s.Bank, s.Crossbar).UpdateRow(s.Row, func(r *bitmat.Vec) bool {
			for i := 0; i < s.Bits; i++ {
				j := s.Off + int64(i)
				r.Set(s.Col+i, src[j>>6]>>(uint(j)&63)&1 != 0)
			}
			return true
		})
		m.probe(s.Bank).writes.Inc()
		return err
	})
}

// readSegments fills dst from a validated range, segment by segment.
func (m *Memory) readSegments(bit, nbits int64, dst []uint64) error {
	return m.cfg.Org.ForEachSegment(bit, nbits, func(s mmpu.Segment) error {
		m.banks[s.Bank].Lock()
		defer m.banks[s.Bank].Unlock()
		row := m.at(s.Bank, s.Crossbar).MEM().Mat().Row(s.Row)
		for got := 0; got < s.Bits; {
			k := s.Bits - got
			if k > 64 {
				k = 64
			}
			w := row.Uint64At(s.Col+got, k)
			j := s.Off + int64(got)
			dst[j>>6] |= w << (uint(j) & 63)
			if spill := int(uint(j)&63) + k - 64; spill > 0 {
				dst[j>>6+1] |= w >> uint(k-spill)
			}
			got += k
		}
		m.probe(s.Bank).reads.Inc()
		return nil
	})
}

// LoadPattern fills the memory's first `bits` positions from a seeded
// generator (for campaign setup) and returns a verifier closure.
func (m *Memory) LoadPattern(bits int64, seed int64) (verify func() (bad int64), err error) {
	// A cheap deterministic pattern: bit i = mixed hash of (i, seed).
	val := func(i int64) bool {
		x := uint64(i)*2654435761 + uint64(seed)
		x ^= x >> 33
		return x&1 != 0
	}
	for i := int64(0); i < bits; i++ {
		if err := m.WriteBit(i, val(i)); err != nil {
			return nil, err
		}
	}
	return func() (bad int64) {
		for i := int64(0); i < bits; i++ {
			got, err := m.ReadBit(i)
			if err != nil || got != val(i) {
				bad++
			}
		}
		return bad
	}, nil
}

// ScrubCrossbar runs the periodic check over one crossbar, holding its
// bank's lock — the unit the serving layer's scrub scheduler admits
// between request batches.
func (m *Memory) ScrubCrossbar(bank, xb int) (corrected, uncorrectable int) {
	m.banks[bank].Lock()
	defer m.banks[bank].Unlock()
	return m.scrubOne(bank, xb)
}

// scrubOne scrubs one crossbar (bank lock held) and tallies the result.
func (m *Memory) scrubOne(bank, xb int) (corrected, uncorrectable int) {
	mach := m.at(bank, xb)
	corrected, uncorrectable = mach.Scrub()
	p := m.probe(bank)
	p.scrubs.Inc()
	p.corrected.Add(int64(corrected))
	p.uncorrectable.Add(int64(uncorrectable))
	m.ring.Emit(telemetry.EvScrub, int64(mach.MEM().Stats().Cycles),
		bank, xb, int64(corrected), int64(uncorrectable))
	return corrected, uncorrectable
}

// ScrubBank runs the periodic check over every crossbar of one bank.
func (m *Memory) ScrubBank(bank int) (corrected, uncorrectable int) {
	m.banks[bank].Lock()
	defer m.banks[bank].Unlock()
	for x := 0; x < m.cfg.Org.PerBank; x++ {
		c, u := m.scrubOne(bank, x)
		corrected += c
		uncorrectable += u
	}
	return corrected, uncorrectable
}

// ScrubAll runs the periodic full-memory check over every crossbar.
func (m *Memory) ScrubAll() (corrected, uncorrectable int) {
	for b := 0; b < m.cfg.Org.Banks; b++ {
		c, u := m.ScrubBank(b)
		corrected += c
		uncorrectable += u
	}
	return corrected, uncorrectable
}

// InjectWindow exposes one crossbar to the injector's soft-error stream
// for `hours`, under the bank lock, and returns the number of flips — the
// fault-overlay primitive of the serving layer.
func (m *Memory) InjectWindow(bank, xb int, inj *faults.Injector, hours float64) int {
	m.banks[bank].Lock()
	defer m.banks[bank].Unlock()
	mach := m.at(bank, xb)
	flips := len(inj.Inject(mach.MEM(), hours))
	if flips > 0 {
		m.probe(bank).injected.Add(int64(flips))
		m.ring.Emit(telemetry.EvInject, int64(mach.MEM().Stats().Cycles),
			bank, xb, int64(flips), 0)
	}
	return flips
}

// InjectModel exposes one crossbar to a fault model for `hours` under the
// bank lock — the model-based generalization of InjectWindow. Transient
// models flip bits exactly as the Injector-based overlay does (identical
// rng stream given the same seed); stuck-at models additionally land in
// the crossbar's defect set, so the cells re-assert on every write and the
// repair layer can observe and retire them. Returns the number of
// affected cells.
func (m *Memory) InjectModel(bank, xb int, model faults.Model, rng *rand.Rand, hours float64) int {
	m.banks[bank].Lock()
	defer m.banks[bank].Unlock()
	mach := m.at(bank, xb)
	cells := 0
	for _, f := range model.Apply(mach.MEM(), mach.Defects(), rng, hours) {
		f.Cells(func(r, c int) { cells++ })
	}
	if cells > 0 {
		m.probe(bank).injected.Add(int64(cells))
		m.ring.Emit(telemetry.EvInject, int64(mach.MEM().Stats().Cycles),
			bank, xb, int64(cells), 0)
	}
	return cells
}

// CampaignResult summarizes one error-injection window.
type CampaignResult struct {
	Injected      int
	Corrected     int
	Uncorrectable int
	DataIntact    bool
}

// RunWindow models one checking period: soft errors are injected across
// the whole memory at the given SER for `hours` of exposure, then the
// periodic scrub runs. verify (from LoadPattern) is used to confirm data
// integrity afterwards.
func (m *Memory) RunWindow(ser, hours float64, seed int64, verify func() int64) CampaignResult {
	inj := faults.NewInjector(ser, seed)
	injected := 0
	m.cfg.Org.ForEachCrossbar(func(bank, xb int) {
		injected += m.InjectWindow(bank, xb, inj, hours)
	})
	corrected, unc := m.ScrubAll()
	res := CampaignResult{
		Injected: injected, Corrected: corrected, Uncorrectable: unc,
	}
	if verify != nil {
		res.DataIntact = verify() == 0
	}
	return res
}
