// Package pmem assembles protected crossbars (internal/machine) into a
// byte-addressable memory following the mMPU organization
// (internal/mmpu): banks of n×n crossbars, each with its own CMEM. It is
// the level at which the paper's Fig 6 experiment is *performed* rather
// than modeled: data lives across many crossbars, soft errors arrive per
// the SER, periodic scrubs run, and the memory either survives (all
// errors corrected) or reports uncorrectable damage.
package pmem

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/mmpu"
)

// Config sizes a protected memory.
type Config struct {
	Org        mmpu.Organization
	M          int // ECC block side
	K          int // processing crossbars per crossbar array
	ECCEnabled bool
}

// Memory is a bank-organized set of protected crossbars.
type Memory struct {
	cfg Config
	xbs []*machine.Machine // flattened [bank*PerBank + crossbar]
}

// New builds the memory. All crossbars start zeroed with consistent ECC.
func New(cfg Config) (*Memory, error) {
	if err := cfg.Org.Validate(); err != nil {
		return nil, err
	}
	if cfg.ECCEnabled && cfg.Org.CrossbarN%cfg.M != 0 {
		return nil, fmt.Errorf("pmem: block side %d does not divide crossbar side %d", cfg.M, cfg.Org.CrossbarN)
	}
	m := &Memory{cfg: cfg, xbs: make([]*machine.Machine, cfg.Org.Crossbars())}
	for i := range m.xbs {
		xb, err := machine.New(machine.Config{
			N: cfg.Org.CrossbarN, M: cfg.M, K: cfg.K, ECCEnabled: cfg.ECCEnabled,
		})
		if err != nil {
			return nil, err
		}
		m.xbs[i] = xb
	}
	return m, nil
}

// Config returns the memory configuration.
func (m *Memory) Config() Config { return m.cfg }

// Crossbar returns the machine holding the given flat crossbar index.
func (m *Memory) Crossbar(i int) *machine.Machine { return m.xbs[i] }

// locate maps a flat bit address to (crossbar, row, col).
func (m *Memory) locate(bit int64) (xb *machine.Machine, row, col int, err error) {
	a, err := m.cfg.Org.Locate(bit)
	if err != nil {
		return nil, 0, 0, err
	}
	return m.xbs[a.Bank*m.cfg.Org.PerBank+a.Crossbar], a.Row, a.Col, nil
}

// WriteBit stores one bit, keeping the owning crossbar's check bits
// current (the write path computes ECC, as in conventional memories).
func (m *Memory) WriteBit(bit int64, v bool) error {
	xb, row, col, err := m.locate(bit)
	if err != nil {
		return err
	}
	rowVec := xb.MEM().Mat().Row(row).Clone()
	rowVec.Set(col, v)
	xb.LoadRow(row, rowVec)
	return nil
}

// ReadBit returns one stored bit (no correction on the read path; the
// scrub and pre-compute checks handle errors, per the paper's model).
func (m *Memory) ReadBit(bit int64) (bool, error) {
	xb, row, col, err := m.locate(bit)
	if err != nil {
		return false, err
	}
	return xb.MEM().Get(row, col), nil
}

// WriteWord stores up to 64 bits starting at a bit address.
func (m *Memory) WriteWord(bit int64, w uint64, width int) error {
	for i := 0; i < width; i++ {
		if err := m.WriteBit(bit+int64(i), w&(1<<uint(i)) != 0); err != nil {
			return err
		}
	}
	return nil
}

// ReadWord reads up to 64 bits starting at a bit address.
func (m *Memory) ReadWord(bit int64, width int) (uint64, error) {
	var w uint64
	for i := 0; i < width; i++ {
		b, err := m.ReadBit(bit + int64(i))
		if err != nil {
			return 0, err
		}
		if b {
			w |= 1 << uint(i)
		}
	}
	return w, nil
}

// LoadPattern fills the memory's first `bits` positions from a seeded
// generator (for campaign setup) and returns a verifier closure.
func (m *Memory) LoadPattern(bits int64, seed int64) (verify func() (bad int64), err error) {
	// A cheap deterministic pattern: bit i = mixed hash of (i, seed).
	val := func(i int64) bool {
		x := uint64(i)*2654435761 + uint64(seed)
		x ^= x >> 33
		return x&1 != 0
	}
	for i := int64(0); i < bits; i++ {
		if err := m.WriteBit(i, val(i)); err != nil {
			return nil, err
		}
	}
	return func() (bad int64) {
		for i := int64(0); i < bits; i++ {
			got, err := m.ReadBit(i)
			if err != nil || got != val(i) {
				bad++
			}
		}
		return bad
	}, nil
}

// ScrubAll runs the periodic full-memory check over every crossbar.
func (m *Memory) ScrubAll() (corrected, uncorrectable int) {
	for _, xb := range m.xbs {
		c, u := xb.Scrub()
		corrected += c
		uncorrectable += u
	}
	return corrected, uncorrectable
}

// CampaignResult summarizes one error-injection window.
type CampaignResult struct {
	Injected      int
	Corrected     int
	Uncorrectable int
	DataIntact    bool
}

// RunWindow models one checking period: soft errors are injected across
// the whole memory at the given SER for `hours` of exposure, then the
// periodic scrub runs. verify (from LoadPattern) is used to confirm data
// integrity afterwards.
func (m *Memory) RunWindow(ser, hours float64, seed int64, verify func() int64) CampaignResult {
	inj := faults.NewInjector(ser, seed)
	injected := 0
	for _, xb := range m.xbs {
		injected += len(inj.Inject(xb.MEM(), hours))
	}
	corrected, unc := m.ScrubAll()
	res := CampaignResult{
		Injected: injected, Corrected: corrected, Uncorrectable: unc,
	}
	if verify != nil {
		res.DataIntact = verify() == 0
	}
	return res
}
