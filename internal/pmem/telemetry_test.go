package pmem

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/telemetry"
)

// TestInstrumentCountsPerBank: the per-bank access, scrub, and injection
// series tick exactly with the operations performed, attributed to the
// right bank, and the machine-level ECC series appear under the scheme
// label.
func TestInstrumentCountsPerBank(t *testing.T) {
	mem, err := New(smallCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	mem.Instrument(reg)

	// Bank 0: one bit write + one bit read. Bank 1: a word write.
	if err := mem.WriteBit(0, true); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.ReadBit(0); err != nil {
		t.Fatal(err)
	}
	bank1 := mem.Config().Org.BankBits() // first bit of bank 1
	if err := mem.WriteWord(bank1, 0xff, 8); err != nil {
		t.Fatal(err)
	}
	c, u := mem.ScrubCrossbar(0, 1)
	if c != 0 || u != 0 {
		t.Fatalf("clean scrub found c=%d u=%d", c, u)
	}
	inj := faults.NewInjector(1e9, 7)
	flips := mem.InjectWindow(1, 0, inj, 1)

	snap := reg.Snapshot()
	checks := []struct {
		key  string
		want int64
	}{
		{`pmem_writes_total{bank="0"}`, 1},
		{`pmem_reads_total{bank="0"}`, 1},
		{`pmem_writes_total{bank="1"}`, 1},
		{`pmem_scrubs_total{bank="0"}`, 1},
		{`pmem_scrubs_total{bank="1"}`, 0},
		{`pmem_scrub_corrected_total{bank="0"}`, 0},
		{`pmem_injected_total{bank="1"}`, int64(flips)},
	}
	for _, c := range checks {
		if got := snap.Counter(c.key); got != c.want {
			t.Errorf("%s = %d, want %d", c.key, got, c.want)
		}
	}
	// Protected writes charge the diagonal code's 2-reads-per-line update
	// cost on the scheme-labeled machine series.
	if got := snap.Counter(`ecc_update_reads_total{scheme="diagonal"}`); got < 4 {
		t.Errorf("ecc_update_reads_total = %d, want >= 4 (2 protected writes x 2 reads)", got)
	}
	// Scrub and injection landed on the event ring with bank attribution.
	var sawScrub, sawInject bool
	for _, e := range reg.Events().Recent(0) {
		switch e.Kind {
		case telemetry.EvScrub:
			sawScrub = e.Bank == 0 && e.Xbar == 1
		case telemetry.EvInject:
			sawInject = e.Bank == 1 && e.Xbar == 0 && e.A == int64(flips)
		}
	}
	if !sawScrub || !sawInject {
		t.Errorf("event trace incomplete: scrub=%v inject=%v", sawScrub, sawInject)
	}

	// Detaching restores the uninstrumented path.
	mem.Instrument(nil)
	if err := mem.WriteBit(1, true); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counter(`pmem_writes_total{bank="0"}`); got != 1 {
		t.Errorf("detached memory still counted: %d", got)
	}
}
