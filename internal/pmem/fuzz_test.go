package pmem

import (
	"testing"
)

// fuzzMem is the shared memory under fuzz: building crossbars is the
// dominant cost, so the round-trip property is checked against one
// instance. Each fuzz case owns a disjoint verification (the property is
// local to the span it touches plus its guard bits), so reuse is sound.
var fuzzMem *Memory

func fuzzMemory(t testing.TB) *Memory {
	if fuzzMem == nil {
		m, err := New(smallCfg(true))
		if err != nil {
			t.Fatal(err)
		}
		fuzzMem = m
	}
	return fuzzMem
}

// splitmix steps a splitmix64 state — a tiny deterministic word stream.
func splitmix(x *uint64) uint64 {
	*x += 0x9E3779B97F4A7C15
	z := *x
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

// FuzzPmemAddressRoundTrip fuzzes the flat-address mapping through range
// writes and reads: any span — word-unaligned, row-crossing,
// crossbar-crossing, bank-crossing — must round-trip exactly, agree with
// the bit-granular path, leave its guard bits untouched, and keep every
// locate consistent with mmpu's FlatIndex inverse.
func FuzzPmemAddressRoundTrip(f *testing.F) {
	per := int64(45 * 45)
	f.Add(int64(0), 1, uint64(1))
	f.Add(int64(40), 10, uint64(2))       // row boundary
	f.Add(per-3, 70, uint64(3))           // crossbar boundary
	f.Add(2*per-5, 130, uint64(4))        // bank boundary
	f.Add(4*per-64, 64, uint64(5))        // end of memory
	f.Add(int64(17), 3, uint64(6))        // sub-word
	f.Add(per-1, int(2*per+2), uint64(7)) // three crossbars
	f.Fuzz(func(t *testing.T, addr int64, nbits int, seed uint64) {
		m := fuzzMemory(t)
		total := m.Config().Org.DataBits()
		// Clamp the fuzzed span into the memory.
		if addr < 0 {
			addr = -addr
		}
		addr %= total
		if nbits < 0 {
			nbits = -nbits
		}
		nbits %= 4 * 45 * 45
		if int64(nbits) > total-addr {
			nbits = int(total - addr)
		}
		span := int64(nbits)

		// Locate/FlatIndex must be exact inverses across the span edges.
		org := m.Config().Org
		for _, bit := range []int64{addr, addr + span - 1} {
			if bit < 0 || bit >= total {
				continue
			}
			a, err := org.Locate(bit)
			if err != nil {
				t.Fatalf("Locate(%d): %v", bit, err)
			}
			if back := org.FlatIndex(a); back != bit {
				t.Fatalf("FlatIndex(Locate(%d)) = %d", bit, back)
			}
		}

		// Snapshot guard bits just outside the span.
		guards := []int64{addr - 1, addr + span}
		guardVals := make([]bool, len(guards))
		for i, g := range guards {
			if g < 0 || g >= total {
				continue
			}
			v, err := m.ReadBit(g)
			if err != nil {
				t.Fatal(err)
			}
			guardVals[i] = v
		}

		src := make([]uint64, (nbits+63)/64)
		state := seed
		for i := range src {
			src[i] = splitmix(&state)
		}
		if err := m.WriteRange(addr, src, span); err != nil {
			t.Fatalf("WriteRange(%d,%d): %v", addr, nbits, err)
		}
		got, err := m.ReadRange(addr, span)
		if err != nil {
			t.Fatalf("ReadRange(%d,%d): %v", addr, nbits, err)
		}
		for i := int64(0); i < span; i++ {
			want := src[i>>6]>>(uint(i)&63)&1 != 0
			if got[i>>6]>>(uint(i)&63)&1 != 0 != want {
				t.Fatalf("addr=%d nbits=%d: bit %d corrupted in range read", addr, nbits, i)
			}
		}
		// Bit-granular path agrees with the range path on a sample.
		step := span/17 + 1
		for i := int64(0); i < span; i += step {
			want := src[i>>6]>>(uint(i)&63)&1 != 0
			b, err := m.ReadBit(addr + i)
			if err != nil || b != want {
				t.Fatalf("addr=%d nbits=%d: ReadBit(+%d) = %v, %v, want %v", addr, nbits, i, b, err, want)
			}
		}
		// Guard bits outside the span are untouched.
		for i, g := range guards {
			if g < 0 || g >= total {
				continue
			}
			v, err := m.ReadBit(g)
			if err != nil {
				t.Fatal(err)
			}
			if v != guardVals[i] {
				t.Fatalf("addr=%d nbits=%d: guard bit %d clobbered", addr, nbits, g)
			}
		}
	})
}
