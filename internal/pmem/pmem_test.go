package pmem

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/mmpu"
)

// smallCfg is a 4-crossbar memory of 45×45 arrays (2×2 banks).
func smallCfg(ecc bool) Config {
	return Config{
		Org:        mmpu.Organization{CrossbarN: 45, Banks: 2, PerBank: 2},
		M:          15,
		K:          2,
		ECCEnabled: ecc,
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	m, err := New(smallCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	addrs := []int64{0, 1, 44, 45, 1000, 45*45 - 1, 45 * 45, 3*45*45 + 17}
	for i, a := range addrs {
		if err := m.WriteBit(a, i%2 == 0); err != nil {
			t.Fatal(err)
		}
	}
	for i, a := range addrs {
		got, err := m.ReadBit(a)
		if err != nil {
			t.Fatal(err)
		}
		if got != (i%2 == 0) {
			t.Fatalf("bit %d round trip failed", a)
		}
	}
}

func TestWordRoundTrip(t *testing.T) {
	m, err := New(smallCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	// Straddles a crossbar boundary (45*45 = 2025).
	if err := m.WriteWord(2000, 0xDEADBEEF, 48); err != nil {
		t.Fatal(err)
	}
	w, err := m.ReadWord(2000, 48)
	if err != nil {
		t.Fatal(err)
	}
	if w != 0xDEADBEEF {
		t.Fatalf("word = %#x", w)
	}
}

func TestOutOfRangeAddress(t *testing.T) {
	m, err := New(smallCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteBit(m.Config().Org.DataBits(), true); err == nil {
		t.Fatal("out-of-range write accepted")
	}
	if _, err := m.ReadBit(-1); err == nil {
		t.Fatal("negative read accepted")
	}
}

func TestCampaignWindowSurvivesSparseErrors(t *testing.T) {
	// One checking window at an SER low enough that blocks see ≤1 error:
	// all errors corrected, data intact — the per-window success event of
	// the Fig 6 model, executed for real.
	m, err := New(smallCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	const bits = 4 * 45 * 45
	verify, err := m.LoadPattern(bits, 7)
	if err != nil {
		t.Fatal(err)
	}
	// ser·hours/1e9 ≈ 5e-4 per bit → ~4 errors over 8100 bits, spread
	// across the 36 blocks (seeded deterministically so no two errors
	// share a block).
	res := m.RunWindow(5e2, 1e3, 42, verify)
	if res.Injected == 0 {
		t.Fatal("campaign injected nothing — not meaningful")
	}
	if !res.DataIntact {
		t.Fatalf("data corrupted despite sparse errors: %+v", res)
	}
	if res.Uncorrectable != 0 {
		t.Fatalf("unexpected uncorrectable blocks: %+v", res)
	}
	if res.Corrected < res.Injected-1 { // two hits may cancel on one cell
		t.Fatalf("corrected %d of %d injected", res.Corrected, res.Injected)
	}
}

func TestCampaignWindowBaselineCorrupts(t *testing.T) {
	m, err := New(smallCfg(false))
	if err != nil {
		t.Fatal(err)
	}
	const bits = 4 * 45 * 45
	verify, err := m.LoadPattern(bits, 7)
	if err != nil {
		t.Fatal(err)
	}
	res := m.RunWindow(1e3, 1e3, 42, verify)
	if res.Injected == 0 {
		t.Fatal("nothing injected")
	}
	if res.DataIntact {
		t.Fatal("baseline memory survived — injection broken?")
	}
	if res.Corrected != 0 {
		t.Fatal("baseline corrected something without ECC")
	}
}

func TestDenseErrorsFlaggedUncorrectable(t *testing.T) {
	// Crank the rate until blocks collect multiple errors: the protected
	// memory must flag uncorrectable damage rather than pretend success.
	m, err := New(smallCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	verify, err := m.LoadPattern(4*45*45, 3)
	if err != nil {
		t.Fatal(err)
	}
	// ~5% of bits flip: nearly every block has ≥2 errors.
	res := m.RunWindow(5e7, 1e3, 9, verify)
	if res.Uncorrectable == 0 {
		t.Fatalf("dense damage not flagged: %+v", res)
	}
	if res.DataIntact {
		t.Fatal("dense damage cannot leave data intact")
	}
}

func TestRepeatedWindowsStayConsistent(t *testing.T) {
	m, err := New(smallCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	verify, err := m.LoadPattern(4*45*45, 11)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 5; w++ {
		res := m.RunWindow(5e2, 1e3, int64(100+w), verify)
		if !res.DataIntact || res.Uncorrectable != 0 {
			t.Fatalf("window %d: %+v", w, res)
		}
		for i := 0; i < m.Config().Org.Crossbars(); i++ {
			if !m.Crossbar(i).CheckConsistent() {
				t.Fatalf("window %d: crossbar %d inconsistent", w, i)
			}
		}
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	bad := smallCfg(true)
	bad.M = 14
	if _, err := New(bad); err == nil {
		t.Fatal("even block size accepted")
	}
	bad = smallCfg(true)
	bad.Org.CrossbarN = 0
	if _, err := New(bad); err == nil {
		t.Fatal("zero crossbar accepted")
	}
}

// TestErrorPaths pins the contract of every validating entry point: out of
// range wraps ErrRange, malformed spans wrap ErrSpan, and every message
// carries the "pmem:" prefix so wrapped errors stay attributable.
func TestErrorPaths(t *testing.T) {
	m, err := New(smallCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	end := m.Config().Org.DataBits()
	cases := []struct {
		name string
		call func() error
		want error
	}{
		{"ReadBit negative", func() error { _, err := m.ReadBit(-1); return err }, ErrRange},
		{"ReadBit past end", func() error { _, err := m.ReadBit(end); return err }, ErrRange},
		{"WriteBit past end", func() error { return m.WriteBit(end, true) }, ErrRange},
		{"ReadWord width 65", func() error { _, err := m.ReadWord(0, 65); return err }, ErrSpan},
		{"ReadWord negative width", func() error { _, err := m.ReadWord(0, -1); return err }, ErrSpan},
		{"WriteWord width 65", func() error { return m.WriteWord(0, 1, 65) }, ErrSpan},
		{"WriteWord overruns end", func() error { return m.WriteWord(end-10, 1, 11) }, ErrRange},
		{"ReadWord overruns end", func() error { _, err := m.ReadWord(end-10, 11); return err }, ErrRange},
		{"ReadRange negative width", func() error { _, err := m.ReadRange(5, -3); return err }, ErrSpan},
		{"ReadRange overruns end", func() error { _, err := m.ReadRange(end-1, 2); return err }, ErrRange},
		{"WriteRange negative start", func() error { return m.WriteRange(-1, []uint64{0}, 1) }, ErrRange},
		{"WriteRange short buffer", func() error { return m.WriteRange(0, []uint64{0}, 65) }, ErrSpan},
		{"AccessRow bad bank", func() error { return m.AccessRow(9, 0, 0, nil) }, ErrRange},
		{"AccessRow bad row", func() error { return m.AccessRow(0, 0, 45, nil) }, ErrRange},
		// bit+nbits near MaxInt64 must not wrap negative past the guard.
		{"ReadRange overflowing span", func() error { _, err := m.ReadRange(math.MaxInt64-4, 8); return err }, ErrRange},
		{"WriteRange overflowing span", func() error { return m.WriteRange(math.MaxInt64-4, []uint64{0}, 8) }, ErrRange},
		{"ExecuteSIMD bad bank", func() error { return m.ExecuteSIMD(9, 0, nil, nil) }, ErrRange},
		{"ExecuteSIMD bad crossbar", func() error { return m.ExecuteSIMD(0, 9, nil, nil) }, ErrRange},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.call()
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
			if !strings.HasPrefix(err.Error(), "pmem:") {
				t.Fatalf("message %q lacks pmem: prefix", err)
			}
		})
	}
	// Width-0 accesses are valid no-ops, not errors.
	if err := m.WriteWord(0, 1, 0); err != nil {
		t.Fatalf("zero-width write: %v", err)
	}
	if w, err := m.ReadWord(end-1, 0); err != nil || w != 0 {
		t.Fatalf("zero-width read = %d, %v", w, err)
	}
}

// TestRangeRoundTripAcrossBoundaries drives WriteRange/ReadRange over a
// span covering three crossbars in two banks and cross-checks per bit.
func TestRangeRoundTripAcrossBoundaries(t *testing.T) {
	m, err := New(smallCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	const start, nbits = 45*45 - 30, 2*45*45 + 60 // crossbar 0 into crossbar 3
	src := make([]uint64, (nbits+63)/64)
	for i := range src {
		src[i] = 0x9E3779B97F4A7C15 * uint64(i+1)
	}
	if err := m.WriteRange(start, src, nbits); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadRange(start, nbits)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < nbits; i++ {
		want := src[i>>6]>>(uint(i)&63)&1 != 0
		if got[i>>6]>>(uint(i)&63)&1 != 0 != want {
			t.Fatalf("bit %d mismatched after range round trip", i)
		}
		b, err := m.ReadBit(start + i)
		if err != nil || b != want {
			t.Fatalf("ReadBit(%d) = %v, %v, want %v", start+i, b, err, want)
		}
	}
	// Trailing garbage must not leak into the tail word.
	if tail := got[len(got)-1] >> (uint(nbits) & 63); nbits%64 != 0 && tail != 0 {
		t.Fatalf("tail bits set: %#x", tail)
	}
	// Every crossbar's check bits survived the segment writes.
	for i := 0; i < m.Config().Org.Crossbars(); i++ {
		if !m.Crossbar(i).CheckConsistent() {
			t.Fatalf("crossbar %d ECC stale after range write", i)
		}
	}
}
