package pmem

import (
	"testing"

	"repro/internal/mmpu"
)

// smallCfg is a 4-crossbar memory of 45×45 arrays (2×2 banks).
func smallCfg(ecc bool) Config {
	return Config{
		Org:        mmpu.Organization{CrossbarN: 45, Banks: 2, PerBank: 2},
		M:          15,
		K:          2,
		ECCEnabled: ecc,
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	m, err := New(smallCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	addrs := []int64{0, 1, 44, 45, 1000, 45*45 - 1, 45 * 45, 3*45*45 + 17}
	for i, a := range addrs {
		if err := m.WriteBit(a, i%2 == 0); err != nil {
			t.Fatal(err)
		}
	}
	for i, a := range addrs {
		got, err := m.ReadBit(a)
		if err != nil {
			t.Fatal(err)
		}
		if got != (i%2 == 0) {
			t.Fatalf("bit %d round trip failed", a)
		}
	}
}

func TestWordRoundTrip(t *testing.T) {
	m, err := New(smallCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	// Straddles a crossbar boundary (45*45 = 2025).
	if err := m.WriteWord(2000, 0xDEADBEEF, 48); err != nil {
		t.Fatal(err)
	}
	w, err := m.ReadWord(2000, 48)
	if err != nil {
		t.Fatal(err)
	}
	if w != 0xDEADBEEF {
		t.Fatalf("word = %#x", w)
	}
}

func TestOutOfRangeAddress(t *testing.T) {
	m, err := New(smallCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteBit(m.Config().Org.DataBits(), true); err == nil {
		t.Fatal("out-of-range write accepted")
	}
	if _, err := m.ReadBit(-1); err == nil {
		t.Fatal("negative read accepted")
	}
}

func TestCampaignWindowSurvivesSparseErrors(t *testing.T) {
	// One checking window at an SER low enough that blocks see ≤1 error:
	// all errors corrected, data intact — the per-window success event of
	// the Fig 6 model, executed for real.
	m, err := New(smallCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	const bits = 4 * 45 * 45
	verify, err := m.LoadPattern(bits, 7)
	if err != nil {
		t.Fatal(err)
	}
	// ser·hours/1e9 ≈ 5e-4 per bit → ~4 errors over 8100 bits, spread
	// across the 36 blocks (seeded deterministically so no two errors
	// share a block).
	res := m.RunWindow(5e2, 1e3, 42, verify)
	if res.Injected == 0 {
		t.Fatal("campaign injected nothing — not meaningful")
	}
	if !res.DataIntact {
		t.Fatalf("data corrupted despite sparse errors: %+v", res)
	}
	if res.Uncorrectable != 0 {
		t.Fatalf("unexpected uncorrectable blocks: %+v", res)
	}
	if res.Corrected < res.Injected-1 { // two hits may cancel on one cell
		t.Fatalf("corrected %d of %d injected", res.Corrected, res.Injected)
	}
}

func TestCampaignWindowBaselineCorrupts(t *testing.T) {
	m, err := New(smallCfg(false))
	if err != nil {
		t.Fatal(err)
	}
	const bits = 4 * 45 * 45
	verify, err := m.LoadPattern(bits, 7)
	if err != nil {
		t.Fatal(err)
	}
	res := m.RunWindow(1e3, 1e3, 42, verify)
	if res.Injected == 0 {
		t.Fatal("nothing injected")
	}
	if res.DataIntact {
		t.Fatal("baseline memory survived — injection broken?")
	}
	if res.Corrected != 0 {
		t.Fatal("baseline corrected something without ECC")
	}
}

func TestDenseErrorsFlaggedUncorrectable(t *testing.T) {
	// Crank the rate until blocks collect multiple errors: the protected
	// memory must flag uncorrectable damage rather than pretend success.
	m, err := New(smallCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	verify, err := m.LoadPattern(4*45*45, 3)
	if err != nil {
		t.Fatal(err)
	}
	// ~5% of bits flip: nearly every block has ≥2 errors.
	res := m.RunWindow(5e7, 1e3, 9, verify)
	if res.Uncorrectable == 0 {
		t.Fatalf("dense damage not flagged: %+v", res)
	}
	if res.DataIntact {
		t.Fatal("dense damage cannot leave data intact")
	}
}

func TestRepeatedWindowsStayConsistent(t *testing.T) {
	m, err := New(smallCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	verify, err := m.LoadPattern(4*45*45, 11)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 5; w++ {
		res := m.RunWindow(5e2, 1e3, int64(100+w), verify)
		if !res.DataIntact || res.Uncorrectable != 0 {
			t.Fatalf("window %d: %+v", w, res)
		}
		for i := 0; i < m.Config().Org.Crossbars(); i++ {
			if !m.Crossbar(i).CheckConsistent() {
				t.Fatalf("window %d: crossbar %d inconsistent", w, i)
			}
		}
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	bad := smallCfg(true)
	bad.M = 14
	if _, err := New(bad); err == nil {
		t.Fatal("even block size accepted")
	}
	bad = smallCfg(true)
	bad.Org.CrossbarN = 0
	if _, err := New(bad); err == nil {
		t.Fatal("zero crossbar accepted")
	}
}
