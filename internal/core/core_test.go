package core

import (
	"testing"

	"repro/internal/bitmat"
)

func TestNewProtectedMachine(t *testing.T) {
	m, err := NewProtectedMachine(45, 15, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.CMEM() == nil {
		t.Fatal("protected machine lacks a CMEM")
	}
	v := bitmat.NewVec(45)
	v.Set(3, true)
	m.LoadRow(0, v)
	if !m.CheckConsistent() {
		t.Fatal("inconsistent after load")
	}
	m.InjectDataFault(10, 10)
	corrected, unc := m.Scrub()
	if corrected != 1 || unc != 0 {
		t.Fatalf("scrub corrected=%d unc=%d", corrected, unc)
	}
}

func TestNewBaselineMachine(t *testing.T) {
	m, err := NewBaselineMachine(45)
	if err != nil {
		t.Fatal(err)
	}
	if m.CMEM() != nil {
		t.Fatal("baseline machine has a CMEM")
	}
	if c, u := m.Scrub(); c != 0 || u != 0 {
		t.Fatal("baseline scrub should be a no-op")
	}
}

func TestFig6Facade(t *testing.T) {
	pts := Fig6(1)
	if len(pts) != 9 {
		t.Fatalf("Fig6(1) returned %d points, want 9", len(pts))
	}
	for _, p := range pts {
		if p.ProposedMTTF <= p.BaselineMTTF {
			t.Fatal("proposed not better")
		}
	}
}

func TestTable1Facade(t *testing.T) {
	rs, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 11 {
		t.Fatalf("%d rows", len(rs))
	}
}

func TestTable2Facade(t *testing.T) {
	units := Table2()
	if len(units) != 7 {
		t.Fatalf("%d units", len(units))
	}
	if units[len(units)-1].Memristors != 1248480 {
		t.Fatalf("total memristors = %d", units[len(units)-1].Memristors)
	}
}
