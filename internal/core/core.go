// Package core is the top-level façade of the reproduction: one import
// that reaches the paper's primary contribution (diagonal in-memory ECC
// for MAGIC-based processing-in-memory) and each of its evaluation
// harnesses.
//
// Layering underneath:
//
//	bitmat    packed bit vectors/matrices (numeric substrate)
//	xbar      MAGIC crossbar simulator (NOR/NOT, row/col parallelism)
//	faults    soft-error model (SER in FIT/bit)
//	ecc       diagonal parity code: update, syndrome, decode, correct
//	shifter   barrel shifters routing MEM lines to diagonal order
//	cmem      check memory: check-bit crossbars, XOR3 processing
//	          crossbars, checking crossbar
//	machine   integrated protected PIM unit (MEM+CMEM+controllers)
//	netlist   gate-level IR and NOR lowering
//	synth     SIMPLER single-row mapper (baseline latency)
//	eccsched  ECC-extended greedy scheduler (Table I)
//	circuits  EPFL-style benchmark generators
//	reliability  analytic + Monte Carlo MTTF (Fig 6)
//	area      device-count model (Table II)
//	mmpu      multi-crossbar memory organization
package core

import (
	"repro/internal/area"
	"repro/internal/eccsched"
	"repro/internal/machine"
	"repro/internal/reliability"
)

// NewProtectedMachine returns a crossbar PIM unit with the proposed
// diagonal-ECC mechanism attached (n×n array, m×m blocks, k processing
// crossbars). Invalid geometry is reported as an error.
func NewProtectedMachine(n, m, k int) (*machine.Machine, error) {
	return machine.New(machine.Config{N: n, M: m, K: k, ECCEnabled: true})
}

// NewBaselineMachine returns the unprotected control design.
func NewBaselineMachine(n int) (*machine.Machine, error) {
	return machine.New(machine.Config{N: n, ECCEnabled: false})
}

// Fig6 computes the paper's Figure 6 sensitivity sweep (1GB memory MTTF
// versus memristor soft-error rate) at the given resolution.
func Fig6(pointsPerDecade int) []reliability.Point {
	return reliability.PaperModel().Fig6Sweep(pointsPerDecade)
}

// Table1 regenerates the paper's Table I (latency per benchmark).
func Table1() ([]eccsched.Result, error) {
	return eccsched.RunTable1(eccsched.DefaultTable1Config())
}

// Table2 regenerates the paper's Table II (device counts).
func Table2() []area.Unit {
	return area.PaperConfig().Table()
}
