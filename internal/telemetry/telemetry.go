// Package telemetry is the repo's unified observability layer: a
// dependency-free metrics registry (atomic counters, gauges, and the
// log-linear histogram the fleet's latency accounting promoted here) plus
// a bounded structured event trace, shared by pmem, machine, serve,
// fleet, and campaign.
//
// # Design constraints
//
// The layer exists to watch the paper's cost/reliability tradeoffs while
// the memory runs, so it must not perturb what it measures:
//
//   - Zero allocations on the hot path. Handles (Counter, Gauge,
//     Histogram) are resolved once at setup — name and labels are
//     rendered then — and every subsequent Inc/Add/Observe is an atomic
//     word operation.
//   - Nil-safe when disabled. Every handle method no-ops on a nil
//     receiver, and a nil *Registry resolves nil handles, so
//     instrumented code never branches on "is telemetry on" — it just
//     calls through, and the disabled cost is one predictable nil check
//     (BenchmarkTelemetryOverhead pins this at 0 allocs/op).
//   - Deterministic snapshots. Counter adds and histogram merges are
//     commutative, and Snapshot sorts series by rendered name, so the
//     snapshot of a run is a pure function of the work performed — the
//     same at any worker count, byte-reproducible through MarshalJSON.
//     Gauges are last-write-wins and the event ring is arrival-ordered;
//     both are live-introspection views (the /metrics and /trace
//     endpoints), deliberately excluded from the determinism contract —
//     deterministic report paths use counters and histograms only.
//
// # Label model
//
// Series identity is the metric family name plus a sorted set of label
// pairs (Prometheus-style): Counter("pmem_scrubs_total", "bank", "3")
// and a second resolve with the same name and labels return the *same*
// handle, so per-bank/per-scheme/per-outcome series can be resolved
// independently by every component that contributes to them.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic series. The nil Counter
// discards observations, so disabled telemetry costs one nil check.
type Counter struct {
	meta
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds d (negative deltas are a caller bug; they are not checked on
// the hot path and will show up as a non-monotone series).
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins atomic series for instantaneous values
// (queue depths, in-flight work). Nil-safe like Counter.
type Gauge struct {
	meta
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is the concurrent counterpart of Hist: the same log-linear
// buckets, updated with atomic adds so any number of workers can observe
// into one series. Nil-safe like Counter.
type Histogram struct {
	meta
	n, sum, max atomic.Int64
	buckets     [histBuckets]atomic.Int64
}

// Observe records one value (negatives clamp to zero, as in Hist).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.n.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[histBucket(v)].Add(1)
}

// Hist snapshots the histogram into its mergeable value form. Under
// concurrent observation the fields are individually — not jointly —
// consistent; quiesce writers for an exact snapshot.
func (h *Histogram) Hist() Hist {
	var out Hist
	if h == nil {
		return out
	}
	out.N = h.n.Load()
	out.Sum = h.sum.Load()
	out.Max = h.max.Load()
	for i := range out.Buckets {
		out.Buckets[i] = h.buckets[i].Load()
	}
	return out
}

// meta is a series' resolved identity: family name, sorted label pairs,
// and the fully rendered key used for registry lookup and snapshot order.
type meta struct {
	name   string
	labels []LabelPair
	key    string
}

// LabelPair is one rendered label dimension.
type LabelPair struct {
	Key, Value string
}

// renderKey builds the canonical series key: name{k1="v1",k2="v2"}.
func renderKey(name string, labels []LabelPair) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel applies Prometheus label-value escaping (backslash, quote,
// newline). Our label values are digits and identifiers, but the
// exposition stays well-formed for any value.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// sortLabels canonicalizes variadic "k1", "v1", "k2", "v2" pairs.
func sortLabels(kv []string) []LabelPair {
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("telemetry: odd label list %q", kv))
	}
	if len(kv) == 0 {
		return nil
	}
	ls := make([]LabelPair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		ls = append(ls, LabelPair{Key: kv[i], Value: kv[i+1]})
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

// Registry holds the live series and the event ring. The zero value is
// not used directly — New builds one — and a nil *Registry is the
// disabled layer: every resolve returns a nil handle.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	ring     *Ring
}

// DefaultTraceDepth is the event ring capacity New allocates.
const DefaultTraceDepth = 1024

// New builds an empty registry with a DefaultTraceDepth event ring.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		ring:     NewRing(DefaultTraceDepth),
	}
}

// Counter resolves (creating on first use) the counter for name and the
// alternating key/value label pairs. Nil registry resolves nil.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	ls := sortLabels(labels)
	key := renderKey(name, ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{meta: meta{name: name, labels: ls, key: key}}
		r.counters[key] = c
	}
	return c
}

// Gauge resolves the gauge for name and label pairs. Nil registry
// resolves nil.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	ls := sortLabels(labels)
	key := renderKey(name, ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[key]
	if !ok {
		g = &Gauge{meta: meta{name: name, labels: ls, key: key}}
		r.gauges[key] = g
	}
	return g
}

// Histogram resolves the histogram for name and label pairs. Nil
// registry resolves nil.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	ls := sortLabels(labels)
	key := renderKey(name, ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[key]
	if !ok {
		h = &Histogram{meta: meta{name: name, labels: ls, key: key}}
		r.hists[key] = h
	}
	return h
}

// Events returns the registry's event ring (nil for a nil registry, and
// the nil Ring discards appends).
func (r *Registry) Events() *Ring {
	if r == nil {
		return nil
	}
	return r.ring
}
