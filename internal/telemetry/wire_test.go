package telemetry

import (
	"encoding/json"
	"testing"
)

// buildRegistry populates a registry the way a fleet node would: per-bank
// counters, a gauge, and latency histograms with enough spread to make
// quantiles sensitive to lost buckets.
func buildRegistry(t *testing.T, seedBias int64) *Registry {
	t.Helper()
	reg := New()
	for bank := 0; bank < 4; bank++ {
		c := reg.Counter("pmem_reads_total", "bank", string(rune('0'+bank)))
		c.Add(100 + int64(bank)*7 + seedBias)
	}
	reg.Counter("serve_requests_total").Add(4096 + seedBias)
	reg.Gauge("serve_queue_depth").Set(3 + seedBias)
	h := reg.Histogram("serve_latency_ns")
	for i := int64(1); i < 2000; i += 13 {
		h.Observe(i * i % 100000)
	}
	reg.Histogram("serve_wait_ns", "tenant", "batch").Observe(77 + seedBias)
	return reg
}

func TestWireSnapshotRoundTrip(t *testing.T) {
	snap := buildRegistry(t, 0).Snapshot()
	raw, err := json.Marshal(snap.Wire())
	if err != nil {
		t.Fatal(err)
	}
	var w WireSnapshot
	if err := json.Unmarshal(raw, &w); err != nil {
		t.Fatal(err)
	}
	back := w.Snapshot()

	a, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("wire round trip changed the snapshot:\n%s\nvs\n%s", a, b)
	}
	// The rebuilt snapshot must still merge exactly: identity keys and
	// full histogram buckets survived the trip.
	merged := snap.Merge(back)
	if got, want := merged.Counter("serve_requests_total"), int64(2*4096); got != want {
		t.Fatalf("merged counter %d want %d", got, want)
	}
	for _, h := range merged.Hists {
		if h.Name == "serve_latency_ns" && h.Count != 2*snap.Hists[0].full.N && h.Count == 0 {
			t.Fatalf("merged hist lost observations: %+v", h.HistSummary)
		}
	}
}

func TestWireSnapshotMergeOrderIndependentAcrossNetwork(t *testing.T) {
	// Three "nodes" snapshot independently, ship their snapshots through
	// the wire codec, and a gateway merges them. The merged bytes must not
	// depend on arrival order — the fleet-wide aggregation contract.
	var shipped []Snapshot
	for n := 0; n < 3; n++ {
		snap := buildRegistry(t, int64(n)*31).Snapshot()
		raw, err := json.Marshal(snap.Wire())
		if err != nil {
			t.Fatal(err)
		}
		var w WireSnapshot
		if err := json.Unmarshal(raw, &w); err != nil {
			t.Fatal(err)
		}
		shipped = append(shipped, w.Snapshot())
	}
	orders := [][]int{{0, 1, 2}, {2, 1, 0}, {1, 0, 2}, {2, 0, 1}}
	var want []byte
	for _, ord := range orders {
		m := shipped[ord[0]].Merge(shipped[ord[1]]).Merge(shipped[ord[2]])
		got, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if string(got) != string(want) {
			t.Fatalf("merge order %v changed the fleet snapshot", ord)
		}
	}
	// Histogram merge across the network is exact, not summary-level: the
	// merged quantiles equal those of one registry observing everything.
	m := shipped[0].Merge(shipped[1]).Merge(shipped[2])
	var total Hist
	for _, s := range shipped {
		for _, h := range s.Hists {
			if h.Name == "serve_latency_ns" {
				total = total.Merge(h.full)
			}
		}
	}
	for _, h := range m.Hists {
		if h.Name == "serve_latency_ns" {
			if h.P99 != total.Quantile(0.99) || h.Count != total.N {
				t.Fatalf("network-merged hist %+v != in-process merge %+v", h.HistSummary, total.Summary())
			}
		}
	}
}

func TestWireSnapshotFoldsDuplicates(t *testing.T) {
	// A corrupted or adversarial peer may repeat series and scramble label
	// order; decoding must canonicalize rather than produce unmergeable
	// duplicates.
	w := WireSnapshot{
		Counters: []WirePoint{
			{Name: "x_total", Labels: []LabelPair{{Key: "b", Value: "2"}, {Key: "a", Value: "1"}}, Value: 5},
			{Name: "x_total", Labels: []LabelPair{{Key: "a", Value: "1"}, {Key: "b", Value: "2"}}, Value: 7},
		},
		Hists: []WireHist{
			{Name: "h", Hist: func() Hist { var h Hist; h.Observe(10); return h }()},
			{Name: "h", Hist: func() Hist { var h Hist; h.Observe(20); return h }()},
		},
	}
	s := w.Snapshot()
	if len(s.Counters) != 1 || s.Counters[0].Value != 12 {
		t.Fatalf("duplicate counters not folded: %+v", s.Counters)
	}
	if got := s.Counter(`x_total{a="1",b="2"}`); got != 12 {
		t.Fatalf("canonical key lookup got %d", got)
	}
	if len(s.Hists) != 1 || s.Hists[0].Count != 2 || s.Hists[0].Max != 20 {
		t.Fatalf("duplicate hists not folded: %+v", s.Hists)
	}
}
