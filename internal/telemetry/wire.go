package telemetry

import "sort"

// WirePoint is one counter or gauge series in transportable form: name
// plus raw label pairs, with none of the unexported identity state a
// Snapshot carries.
type WirePoint struct {
	Name   string      `json:"name"`
	Labels []LabelPair `json:"labels,omitempty"`
	Value  int64       `json:"value"`
}

// WireHist is one histogram series in transportable form. Unlike
// HistPoint — whose JSON digest drops the bucket counts — it carries the
// full Hist, so decoded snapshots keep merging exactly.
type WireHist struct {
	Name   string      `json:"name"`
	Labels []LabelPair `json:"labels,omitempty"`
	Hist   Hist        `json:"hist"`
}

// WireSnapshot is the network form of a Snapshot. Snapshot itself does
// not survive an encode/decode round trip: its JSON digest omits the
// series keys and the histogram buckets that Merge depends on. The wire
// form carries everything, so per-node snapshots shipped across a fleet
// reassemble into Snapshots that merge as if taken in-process —
// commutatively, to the same bytes in any arrival order.
type WireSnapshot struct {
	Counters []WirePoint `json:"counters,omitempty"`
	Gauges   []WirePoint `json:"gauges,omitempty"`
	Hists    []WireHist  `json:"hists,omitempty"`
}

// wireLabels renders a snapshot label map back into sorted pairs.
func wireLabels(m map[string]string) []LabelPair {
	if len(m) == 0 {
		return nil
	}
	ls := make([]LabelPair, 0, len(m))
	for k, v := range m {
		ls = append(ls, LabelPair{Key: k, Value: v})
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

// Wire converts the snapshot to its transportable form.
func (s Snapshot) Wire() WireSnapshot {
	var w WireSnapshot
	for _, p := range s.Counters {
		w.Counters = append(w.Counters, WirePoint{Name: p.Name, Labels: wireLabels(p.Labels), Value: p.Value})
	}
	for _, p := range s.Gauges {
		w.Gauges = append(w.Gauges, WirePoint{Name: p.Name, Labels: wireLabels(p.Labels), Value: p.Value})
	}
	for _, p := range s.Hists {
		w.Hists = append(w.Hists, WireHist{Name: p.Name, Labels: wireLabels(p.Labels), Hist: p.full})
	}
	return w
}

// canonLabels sorts label pairs by key, canonicalizing whatever order a
// peer (or an adversarial byte stream) sent them in.
func canonLabels(ls []LabelPair) []LabelPair {
	if len(ls) == 0 {
		return nil
	}
	out := append([]LabelPair(nil), ls...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Snapshot rebuilds a full Snapshot from the wire form, recomputing the
// series keys and histogram summaries. Duplicate series — which a
// well-formed peer never sends but a corrupted stream can — fold together
// the same way Merge would, so the result is always canonical: sorted,
// deduplicated, and ready to merge with local snapshots.
func (w WireSnapshot) Snapshot() Snapshot {
	var s Snapshot

	cs := make(map[string]*CounterPoint, len(w.Counters))
	for _, p := range w.Counters {
		ls := canonLabels(p.Labels)
		key := renderKey(p.Name, ls)
		if got, ok := cs[key]; ok {
			got.Value += p.Value
			continue
		}
		cs[key] = &CounterPoint{Name: p.Name, Labels: labelMap(ls), Value: p.Value, key: key}
	}
	for _, p := range cs {
		s.Counters = append(s.Counters, *p)
	}

	gs := make(map[string]*GaugePoint, len(w.Gauges))
	for _, p := range w.Gauges {
		ls := canonLabels(p.Labels)
		key := renderKey(p.Name, ls)
		if got, ok := gs[key]; ok {
			got.Value += p.Value
			continue
		}
		gs[key] = &GaugePoint{Name: p.Name, Labels: labelMap(ls), Value: p.Value, key: key}
	}
	for _, p := range gs {
		s.Gauges = append(s.Gauges, *p)
	}

	hs := make(map[string]*HistPoint, len(w.Hists))
	for _, p := range w.Hists {
		ls := canonLabels(p.Labels)
		key := renderKey(p.Name, ls)
		if got, ok := hs[key]; ok {
			got.full = got.full.Merge(p.Hist)
			continue
		}
		hs[key] = &HistPoint{Name: p.Name, Labels: labelMap(ls), key: key, full: p.Hist}
	}
	for _, p := range hs {
		p.HistSummary = p.full.Summary()
		s.Hists = append(s.Hists, *p)
	}

	s.sortSeries()
	return s
}
