package telemetry

import "math/bits"

// histSub is the number of sub-buckets per octave: values within one
// power of two are resolved into histSub linear steps, bounding the
// relative quantile error at 1/histSub (12.5%) while keeping the
// histogram a small fixed-size value type.
const histSub = 8

// histBuckets spans int64 values: 8 exact buckets below histSub plus
// histSub log-linear buckets for each of the 60 remaining octaves.
const histBuckets = histSub + histSub*(63-3)

// Hist is a mergeable log-linear histogram — promoted here from the
// fleet's latency accounting (fleet.Hist is now an alias) so one
// implementation backs shard results, replay latency digests, and
// registry Histograms: observations are pure counts, Merge is
// commutative and associative, and quantiles are a deterministic
// function of the merged counts — so per-shard histograms combine into
// the same distribution under any worker count and any merge order.
// The zero Hist is empty and ready to use. It is a single-writer value
// type; for concurrent observation use Registry.Histogram.
type Hist struct {
	N       int64 // observations
	Sum     int64 // sum of observed values
	Max     int64 // largest observed value (0 when empty)
	Buckets [histBuckets]int64
}

// histBucket maps a non-negative value to its bucket index.
func histBucket(v int64) int {
	if v < histSub {
		return int(v)
	}
	oct := 63 - bits.LeadingZeros64(uint64(v)) // v in [2^oct, 2^oct+1)
	sub := int((v - 1<<uint(oct)) >> uint(oct-3))
	return histSub + (oct-3)*histSub + sub
}

// histUpper returns the largest value that lands in bucket i — the value
// Quantile reports for ranks falling inside the bucket.
func histUpper(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	oct := 3 + (i-histSub)/histSub
	sub := int64((i - histSub) % histSub)
	step := int64(1) << uint(oct-3)
	return 1<<uint(oct) + (sub+1)*step - 1
}

// Observe records one value. Negative values clamp to zero.
func (h *Hist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.N++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
	h.Buckets[histBucket(v)]++
}

// Merge returns the combination of two histograms. It is commutative and
// associative, so shard aggregation order does not affect the outcome.
func (h Hist) Merge(o Hist) Hist {
	m := h
	m.N += o.N
	m.Sum += o.Sum
	if o.Max > m.Max {
		m.Max = o.Max
	}
	for i, c := range o.Buckets {
		m.Buckets[i] += c
	}
	return m
}

// Quantile returns an upper bound for the q-th quantile (q in [0,1]) with
// relative error bounded by the bucket resolution. Empty histograms
// report 0; q ≥ 1 reports the bucket ceiling of the maximum.
func (h Hist) Quantile(q float64) int64 {
	if h.N == 0 {
		return 0
	}
	rank := int64(q * float64(h.N))
	if rank >= h.N {
		rank = h.N - 1
	}
	if rank < 0 {
		rank = 0
	}
	var seen int64
	for i, c := range h.Buckets {
		seen += c
		if seen > rank {
			u := histUpper(i)
			if u > h.Max {
				u = h.Max // tighten the last bucket to the true maximum
			}
			return u
		}
	}
	return h.Max
}

// Mean returns the exact average of the observed values (0 when empty).
func (h Hist) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.N)
}

// HistSummary is the fixed digest of a histogram for reports: quantiles
// are bucket upper bounds, so the digest is deterministic from the
// observation multiset alone.
type HistSummary struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	Max   int64   `json:"max"`
	P50   int64   `json:"p50"`
	P99   int64   `json:"p99"`
	P999  int64   `json:"p999"`
}

// Summary digests the histogram into its report form.
func (h Hist) Summary() HistSummary {
	return HistSummary{
		Count: h.N,
		Mean:  h.Mean(),
		Max:   h.Max,
		P50:   h.Quantile(0.50),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
	}
}
