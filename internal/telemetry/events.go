package telemetry

import (
	"encoding/json"
	"fmt"
	"sync"
)

// EventKind classifies one traced occurrence. The set mirrors the
// decisions and findings the paper's tradeoffs hinge on: what the scrub
// found, what the code corrected or only detected, what the serving
// layer admitted or coalesced, and what the fault overlay injected.
type EventKind uint8

const (
	// EvScrub is one crossbar scrub: A = corrections applied,
	// B = uncorrectable blocks found.
	EvScrub EventKind = iota
	// EvCorrection is one repaired single error: A = block row,
	// B = block column of the finding.
	EvCorrection
	// EvDetection is one detected-uncorrectable finding: A = block row,
	// B = block column.
	EvDetection
	// EvAdmission is one background-scrub admission decision by a serve
	// worker: A = the admitting worker's clock (ticks or ns).
	EvAdmission
	// EvCoalesce is one row-buffer coalescing merge: A = requests served
	// by the single row activation, B = the crossbar row.
	EvCoalesce
	// EvInject is one fault-overlay exposure window: A = bit flips
	// injected.
	EvInject
	// EvVerifyMismatch is one persistent write-verify failure: a committed
	// cell read back differing from the intended data after a rewrite
	// retry. A = row, B = column.
	EvVerifyMismatch
	// EvCellRetired is one cell remapped onto a spare (write-verify or
	// scrub-triggered retirement). A = row, B = column.
	EvCellRetired
	// EvSpareExhausted is one retirement refused because the crossbar's
	// spare budget ran out. A = row, B = column.
	EvSpareExhausted
	// EvCompute is one SIMD compute pipeline executed on a crossbar:
	// A = the mapping's gate-cycle latency, B = its critical-op count.
	// Appended after the PR-7 kinds so persisted traces keep their values.
	EvCompute

	numEventKinds
)

// String names the kind (used by the JSON trace view).
func (k EventKind) String() string {
	switch k {
	case EvScrub:
		return "scrub"
	case EvCorrection:
		return "correction"
	case EvDetection:
		return "detection"
	case EvAdmission:
		return "admission"
	case EvCoalesce:
		return "coalesce"
	case EvInject:
		return "inject"
	case EvVerifyMismatch:
		return "verify_mismatch"
	case EvCellRetired:
		return "cell_retired"
	case EvSpareExhausted:
		return "spare_exhausted"
	case EvCompute:
		return "compute"
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// MarshalJSON renders the kind as its name.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON parses a kind name back (trace consumers round-trip).
func (k *EventKind) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	for c := EventKind(0); c < numEventKinds; c++ {
		if c.String() == name {
			*k = c
			return nil
		}
	}
	return fmt.Errorf("telemetry: unknown event kind %q", name)
}

// Event is one fixed-size trace record. Tick is the emitter's time base
// (model ticks for deterministic replay, unix nanoseconds for the live
// server); A and B are kind-specific (see the EventKind docs).
type Event struct {
	Seq  uint64    `json:"seq"`
	Kind EventKind `json:"kind"`
	Tick int64     `json:"tick"`
	Bank int32     `json:"bank"`
	Xbar int32     `json:"xbar"`
	A    int64     `json:"a"`
	B    int64     `json:"b"`
}

// Ring is the bounded structured event trace: a fixed-capacity ring
// buffer that overwrites its oldest record, so tracing is O(1) memory
// however long the run. Appends are mutex-serialized slot writes — no
// allocation — and a nil *Ring discards events, so disabled tracing
// costs one nil check.
type Ring struct {
	mu  sync.Mutex
	seq uint64
	buf []Event
}

// NewRing builds a ring holding the last `capacity` events (min 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Append records one event, stamping its sequence number (1-based, total
// over the ring's lifetime — Seq therefore also counts dropped events).
func (g *Ring) Append(e Event) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.seq++
	e.Seq = g.seq
	if len(g.buf) < cap(g.buf) {
		g.buf = append(g.buf, e)
	} else {
		g.buf[int((g.seq-1)%uint64(cap(g.buf)))] = e
	}
	g.mu.Unlock()
}

// Emit is Append without constructing the Event at the call site.
func (g *Ring) Emit(kind EventKind, tick int64, bank, xbar int, a, b int64) {
	if g == nil {
		return
	}
	g.Append(Event{Kind: kind, Tick: tick, Bank: int32(bank), Xbar: int32(xbar), A: a, B: b})
}

// Total returns the lifetime number of appended events (including those
// already overwritten).
func (g *Ring) Total() uint64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.seq
}

// Recent returns up to n of the newest events, oldest first. n <= 0
// returns everything retained.
func (g *Ring) Recent(n int) []Event {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	held := len(g.buf)
	if n <= 0 || n > held {
		n = held
	}
	out := make([]Event, n)
	if held < cap(g.buf) {
		copy(out, g.buf[held-n:])
		return out
	}
	// Full ring: the oldest slot is the one seq would overwrite next.
	start := int(g.seq % uint64(cap(g.buf)))
	for i := 0; i < n; i++ {
		out[i] = g.buf[(start+held-n+i)%held]
	}
	return out
}
