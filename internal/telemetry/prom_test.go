package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
)

// promSample matches one well-formed Prometheus text sample line.
var promSample = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? -?\d+$`)

// fixtureRegistry builds a registry exercising all three metric types
// plus events.
func fixtureRegistry() *Registry {
	reg := New()
	reg.Counter("pmem_scrubs_total", "bank", "0").Add(4)
	reg.Counter("pmem_scrubs_total", "bank", "1").Add(6)
	reg.Counter("ecc_corrections_total", "scheme", "diagonal").Add(9)
	reg.Gauge("serve_queue_depth").Set(3)
	h := reg.Histogram("serve_latency_ticks")
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	reg.Events().Emit(EvScrub, 17, 0, 1, 2, 0)
	return reg
}

// TestPromExposition: every line is a TYPE comment or a well-formed
// sample, families appear once, and the expected series are present.
func TestPromExposition(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMetrics(&buf, fixtureRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	types := map[string]int{}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if name, ok := strings.CutPrefix(line, "# TYPE "); ok {
			parts := strings.Fields(name)
			if len(parts) != 2 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			switch parts[1] {
			case "counter", "gauge", "summary":
			default:
				t.Fatalf("unknown type in %q", line)
			}
			types[parts[0]]++
			continue
		}
		if !promSample.MatchString(line) {
			t.Fatalf("malformed sample line %q", line)
		}
	}
	for fam, n := range types {
		if n != 1 {
			t.Fatalf("family %s has %d TYPE lines", fam, n)
		}
	}
	for _, want := range []string{
		"# TYPE pmem_scrubs_total counter",
		`pmem_scrubs_total{bank="0"} 4`,
		`pmem_scrubs_total{bank="1"} 6`,
		`ecc_corrections_total{scheme="diagonal"} 9`,
		"# TYPE serve_queue_depth gauge",
		"serve_queue_depth 3",
		"# TYPE serve_latency_ticks summary",
		`serve_latency_ticks{quantile="0.5"}`,
		"serve_latency_ticks_sum 5050",
		"serve_latency_ticks_count 100",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Deterministic: a second render is byte-identical.
	var again bytes.Buffer
	if err := WriteMetrics(&again, fixtureRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("exposition not deterministic")
	}
}

// TestPromLabelEscaping: quotes, backslashes, and newlines in label
// values stay inside the quoted value.
func TestPromLabelEscaping(t *testing.T) {
	reg := New()
	reg.Counter("odd_total", "k", "a\"b\\c\nd").Inc()
	var buf bytes.Buffer
	if err := WriteMetrics(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if want := `odd_total{k="a\"b\\c\nd"} 1`; !strings.Contains(buf.String(), want) {
		t.Fatalf("escaping wrong:\n%s", buf.String())
	}
}

// TestHandlerEndpoints: /metrics serves the exposition, /trace serves
// recent events as JSON, and the pprof index answers.
func TestHandlerEndpoints(t *testing.T) {
	srv := httptest.NewServer(Handler(fixtureRegistry()))
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	metrics, ct := get("/metrics")
	if !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	if !strings.Contains(metrics, `pmem_scrubs_total{bank="0"} 4`) {
		t.Fatalf("/metrics missing series:\n%s", metrics)
	}

	trace, ct := get("/trace?n=10")
	if !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/trace content type %q", ct)
	}
	var doc struct {
		Total  uint64  `json:"total"`
		Events []Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(trace), &doc); err != nil {
		t.Fatalf("/trace not JSON: %v\n%s", err, trace)
	}
	if doc.Total != 1 || len(doc.Events) != 1 || doc.Events[0].Kind != EvScrub {
		t.Fatalf("/trace content wrong: %+v", doc)
	}

	if idx, _ := get("/debug/pprof/"); !strings.Contains(idx, "pprof") {
		t.Fatal("/debug/pprof/ not serving")
	}
}

// TestListenAndServe: the -listen plumbing binds, serves, and shuts down.
func TestListenAndServe(t *testing.T) {
	reg := fixtureRegistry()
	addr, stop, err := ListenAndServe("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "ecc_corrections_total") {
		t.Fatalf("live endpoint missing series:\n%s", body)
	}
}
