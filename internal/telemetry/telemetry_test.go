package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// TestNilRegistryIsDisabledLayer: a nil registry resolves nil handles,
// and every handle method no-ops without allocating — the contract that
// lets instrumented hot paths call through unconditionally.
func TestNilRegistryIsDisabledLayer(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x_total", "bank", "0")
	g := reg.Gauge("depth")
	h := reg.Histogram("lat")
	ring := reg.Events()
	if c != nil || g != nil || h != nil || ring != nil {
		t.Fatal("nil registry resolved live handles")
	}
	if allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		g.Set(7)
		g.Add(1)
		h.Observe(42)
		ring.Emit(EvScrub, 1, 2, 3, 4, 5)
	}); allocs != 0 {
		t.Fatalf("disabled path allocates %v per op bundle", allocs)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Hist().N != 0 || ring.Total() != 0 {
		t.Fatal("nil handles reported state")
	}
	if !reg.Snapshot().Empty() {
		t.Fatal("nil registry snapshot not empty")
	}
}

// TestEnabledHotPathZeroAllocs: resolved handles update without
// allocating — telemetry on must not add garbage to the serve loop.
func TestEnabledHotPathZeroAllocs(t *testing.T) {
	reg := New()
	c := reg.Counter("x_total", "bank", "0")
	g := reg.Gauge("depth")
	h := reg.Histogram("lat")
	ring := reg.Events()
	if allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Set(9)
		h.Observe(1 << 20)
		ring.Emit(EvCoalesce, 10, 1, 0, 4, 7)
	}); allocs != 0 {
		t.Fatalf("enabled path allocates %v per op bundle", allocs)
	}
}

// TestRegistryResolvesSameHandle: series identity is name plus the
// sorted label set — label order at the call site must not matter.
func TestRegistryResolvesSameHandle(t *testing.T) {
	reg := New()
	a := reg.Counter("s_total", "bank", "3", "scheme", "diagonal")
	b := reg.Counter("s_total", "scheme", "diagonal", "bank", "3")
	if a != b {
		t.Fatal("label order changed series identity")
	}
	if c := reg.Counter("s_total", "bank", "4", "scheme", "diagonal"); c == a {
		t.Fatal("different label value resolved the same series")
	}
	if reg.Histogram("s_total") == nil || reg.Gauge("s_total") == nil {
		t.Fatal("family name can back different metric types")
	}
	a.Inc()
	b.Add(2)
	if got := reg.Snapshot().Counter(`s_total{bank="3",scheme="diagonal"}`); got != 3 {
		t.Fatalf("shared handle counted %d, want 3", got)
	}
}

// TestSnapshotDeterministicUnderConcurrency: counters and histograms are
// commutative, so however the same work is scattered across goroutines
// the snapshot marshals to identical bytes.
func TestSnapshotDeterministicUnderConcurrency(t *testing.T) {
	run := func(workers int) []byte {
		reg := New()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				// Every worker owns a slice of one fixed observation
				// stream: the total work is worker-count invariant.
				for i := w; i < 8000; i += workers {
					reg.Counter("ops_total", "bank", fmt.Sprint(i%4)).Inc()
					reg.Histogram("lat_ticks").Observe(int64(i % 977))
				}
			}(w)
		}
		wg.Wait()
		out, err := json.Marshal(reg.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	base := run(1)
	for _, w := range []int{2, 8, 32} {
		if got := run(w); !bytes.Equal(base, got) {
			t.Fatalf("snapshot at %d workers diverged:\n%s\n---\n%s", w, base, got)
		}
	}
}

// TestSnapshotMergeOrderIndependent: per-shard snapshots roll up into
// the same total in any merge order (the fleet aggregation property).
func TestSnapshotMergeOrderIndependent(t *testing.T) {
	shard := func(seed int64) Snapshot {
		reg := New()
		for i := int64(0); i < 100; i++ {
			reg.Counter("c_total", "bank", fmt.Sprint((seed+i)%3)).Add(i)
			reg.Histogram("h").Observe(seed*37 + i)
		}
		reg.Gauge("g").Set(seed)
		return reg.Snapshot()
	}
	a, b, c := shard(1), shard(2), shard(3)
	ab := a.Merge(b).Merge(c)
	cb := c.Merge(b).Merge(a)
	// Keys are unexported; compare the canonical JSON forms.
	ja, _ := json.Marshal(ab)
	jb, _ := json.Marshal(cb)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("merge order changed snapshot:\n%s\n---\n%s", ja, jb)
	}
	if ab.CounterFamily("c_total") != a.CounterFamily("c_total")+b.CounterFamily("c_total")+c.CounterFamily("c_total") {
		t.Fatal("merged counters lost mass")
	}
	var wantH Hist
	for _, s := range []Snapshot{a, b, c} {
		wantH = wantH.Merge(s.Hists[0].Hist())
	}
	if !reflect.DeepEqual(ab.Hists[0].Hist(), wantH) {
		t.Fatal("merged histogram diverged from direct merge")
	}
}

// TestRingBounded: the ring retains exactly its capacity of newest
// events, keeps Seq monotone across overwrites, and returns them oldest
// first.
func TestRingBounded(t *testing.T) {
	g := NewRing(8)
	for i := 1; i <= 20; i++ {
		g.Emit(EvInject, int64(i), i, 0, int64(i), 0)
	}
	if g.Total() != 20 {
		t.Fatalf("total %d, want 20", g.Total())
	}
	events := g.Recent(0)
	if len(events) != 8 {
		t.Fatalf("retained %d, want capacity 8", len(events))
	}
	for i, e := range events {
		if want := uint64(13 + i); e.Seq != want {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, want)
		}
	}
	if last2 := g.Recent(2); len(last2) != 2 || last2[1].Seq != 20 {
		t.Fatalf("Recent(2) = %+v", last2)
	}
	// Before wrap-around: a partially filled ring returns what it holds.
	small := NewRing(16)
	small.Emit(EvScrub, 1, 0, 0, 0, 0)
	small.Emit(EvScrub, 2, 0, 0, 0, 0)
	if got := small.Recent(0); len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("partial ring Recent = %+v", got)
	}
}

// TestEventKindJSON: kinds marshal as their names (what /trace serves).
func TestEventKindJSON(t *testing.T) {
	for k := EventKind(0); k < numEventKinds; k++ {
		out, err := json.Marshal(Event{Kind: k})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Contains(out, []byte(`"kind":"`+k.String()+`"`)) {
			t.Fatalf("kind %d marshaled as %s", k, out)
		}
	}
}
