package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// Handler serves the live introspection endpoints over a registry:
//
//	/metrics          Prometheus text exposition of the current series
//	/trace            JSON of the most recent events (?n= caps the count)
//	/debug/pprof/...  the standard Go profiling handlers
//
// The handler reads the registry live — scraping during a run sees the
// counters mid-flight, which is the point.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteMetrics(w, reg.Snapshot())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		n := 256
		if v := r.URL.Query().Get("n"); v != "" {
			if p, err := strconv.Atoi(v); err == nil {
				n = p
			}
		}
		events := reg.Events().Recent(n)
		if events == nil {
			events = []Event{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Total  uint64  `json:"total"`
			Events []Event `json:"events"`
		}{Total: reg.Events().Total(), Events: events})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ListenAndServe starts the introspection endpoints on addr in a
// background goroutine, returning the bound address (useful with a :0
// port) and a shutdown function. The CLIs' -listen flag lands here.
func ListenAndServe(addr string, reg *Registry) (net.Addr, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: Handler(reg)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr(), srv.Close, nil
}
