package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteMetrics renders the snapshot as Prometheus text exposition
// (version 0.0.4): counters and gauges as their native types, histograms
// as summaries (quantile series plus _sum and _count). Families are
// grouped under one # TYPE line each and emitted in sorted order, so the
// output is deterministic from the snapshot.
func WriteMetrics(w io.Writer, s Snapshot) error {
	type family struct {
		typ   string
		lines []string
	}
	fams := make(map[string]*family)
	get := func(name, typ string) *family {
		f, ok := fams[name]
		if !ok {
			f = &family{typ: typ}
			fams[name] = f
		}
		return f
	}
	for _, p := range s.Counters {
		f := get(p.Name, "counter")
		f.lines = append(f.lines, fmt.Sprintf("%s %d", renderSeries(p.Name, p.Labels, ""), p.Value))
	}
	for _, p := range s.Gauges {
		f := get(p.Name, "gauge")
		f.lines = append(f.lines, fmt.Sprintf("%s %d", renderSeries(p.Name, p.Labels, ""), p.Value))
	}
	for _, p := range s.Hists {
		f := get(p.Name, "summary")
		for _, q := range [...]struct {
			q string
			v int64
		}{{"0.5", p.P50}, {"0.99", p.P99}, {"0.999", p.P999}} {
			f.lines = append(f.lines,
				fmt.Sprintf("%s %d", renderSeries(p.Name, p.Labels, `quantile="`+q.q+`"`), q.v))
		}
		f.lines = append(f.lines,
			fmt.Sprintf("%s %d", renderSeries(p.Name+"_sum", p.Labels, ""), p.full.Sum),
			fmt.Sprintf("%s %d", renderSeries(p.Name+"_count", p.Labels, ""), p.Count))
	}
	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fams[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", n, f.typ); err != nil {
			return err
		}
		sort.Strings(f.lines)
		for _, l := range f.lines {
			if _, err := io.WriteString(w, l+"\n"); err != nil {
				return err
			}
		}
	}
	return nil
}

// renderSeries rebuilds a sample name from the snapshot's label map plus
// an optional extra rendered label (the summary quantile).
func renderSeries(name string, labels map[string]string, extra string) string {
	if len(labels) == 0 && extra == "" {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteString(`"`)
	}
	if extra != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}
