package telemetry

import "testing"

// BenchmarkTelemetryOverhead measures the instrumentation bundle a
// served request pays on the serve hot loop — three counter bumps, one
// histogram observation, one event append — with telemetry disabled
// (nil handles, the default) and enabled (live atomic series).
//
// The disabled variant is the acceptance gate: it must run at ~0 ns and
// 0 allocs/op, proving that default-off telemetry does not perturb the
// benchmarks or reports. cmd/benchjson parses the /telemetry= tag into
// its own field so snapshots compare the two by field.
func BenchmarkTelemetryOverhead(b *testing.B) {
	run := func(b *testing.B, c *Counter, g *Gauge, h *Histogram, ring *Ring) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
			c.Add(2)
			g.Set(int64(i & 127))
			h.Observe(int64(i % 4093))
			ring.Emit(EvCoalesce, int64(i), 1, 0, 4, int64(i&63))
		}
	}
	b.Run("telemetry=off", func(b *testing.B) {
		run(b, nil, nil, nil, nil)
	})
	b.Run("telemetry=on", func(b *testing.B) {
		reg := New()
		run(b,
			reg.Counter("bench_requests_total", "bank", "0"),
			reg.Gauge("bench_queue_depth"),
			reg.Histogram("bench_latency_ticks"),
			reg.Events())
	})
}
