package telemetry

import "sort"

// CounterPoint is one counter series in a snapshot.
type CounterPoint struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`

	key string // rendered identity, for ordering and merging
}

// GaugePoint is one gauge series in a snapshot.
type GaugePoint struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`

	key string
}

// HistPoint is one histogram series: the report-facing digest plus the
// full bucket state (unexported) so snapshots stay mergeable.
type HistPoint struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	HistSummary

	key  string
	full Hist
}

// Hist returns the point's full mergeable histogram.
func (p HistPoint) Hist() Hist { return p.full }

// Snapshot is the deterministic, mergeable digest of a registry: every
// series sorted by rendered name, counters and histograms a pure
// function of the observations made (commutative adds and merges), so
// the same work snapshots to the same bytes at any worker count.
// Gauges are included for completeness but are last-write-wins under
// concurrency — deterministic report paths avoid them. The event ring
// is deliberately absent: its ordering is arrival time, a live-view
// concern served by the /trace endpoint instead.
type Snapshot struct {
	Counters []CounterPoint `json:"counters,omitempty"`
	Gauges   []GaugePoint   `json:"gauges,omitempty"`
	Hists    []HistPoint    `json:"hists,omitempty"`
}

// labelMap renders sorted pairs into the JSON label map (encoding/json
// marshals map keys in sorted order, keeping the bytes deterministic).
func labelMap(ls []LabelPair) map[string]string {
	if len(ls) == 0 {
		return nil
	}
	m := make(map[string]string, len(ls))
	for _, l := range ls {
		m[l.Key] = l.Value
	}
	return m
}

// Snapshot digests the registry's current series. Safe to call
// concurrently with updates; for an exact cut, quiesce writers first
// (the CLIs snapshot after their run completes).
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		s.Counters = append(s.Counters, CounterPoint{
			Name: c.name, Labels: labelMap(c.labels), Value: c.v.Load(), key: c.key,
		})
	}
	for _, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugePoint{
			Name: g.name, Labels: labelMap(g.labels), Value: g.v.Load(), key: g.key,
		})
	}
	for _, h := range r.hists {
		full := h.Hist()
		s.Hists = append(s.Hists, HistPoint{
			Name: h.name, Labels: labelMap(h.labels), HistSummary: full.Summary(),
			key: h.key, full: full,
		})
	}
	s.sortSeries()
	return s
}

func (s *Snapshot) sortSeries() {
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].key < s.Counters[j].key })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].key < s.Gauges[j].key })
	sort.Slice(s.Hists, func(i, j int) bool { return s.Hists[i].key < s.Hists[j].key })
}

// Merge combines two snapshots series-wise: counters and gauges sum,
// histograms merge bucket-wise (summaries recomputed). Commutative and
// associative, like the underlying types, so per-shard snapshots roll up
// into one total in any order.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	var m Snapshot

	cs := make(map[string]*CounterPoint, len(s.Counters)+len(o.Counters))
	for _, list := range [][]CounterPoint{s.Counters, o.Counters} {
		for _, p := range list {
			if got, ok := cs[p.key]; ok {
				got.Value += p.Value
				continue
			}
			cp := p
			cs[p.key] = &cp
		}
	}
	for _, p := range cs {
		m.Counters = append(m.Counters, *p)
	}

	gs := make(map[string]*GaugePoint, len(s.Gauges)+len(o.Gauges))
	for _, list := range [][]GaugePoint{s.Gauges, o.Gauges} {
		for _, p := range list {
			if got, ok := gs[p.key]; ok {
				got.Value += p.Value
				continue
			}
			gp := p
			gs[p.key] = &gp
		}
	}
	for _, p := range gs {
		m.Gauges = append(m.Gauges, *p)
	}

	hs := make(map[string]*HistPoint, len(s.Hists)+len(o.Hists))
	for _, list := range [][]HistPoint{s.Hists, o.Hists} {
		for _, p := range list {
			if got, ok := hs[p.key]; ok {
				got.full = got.full.Merge(p.full)
				continue
			}
			hp := p
			hs[p.key] = &hp
		}
	}
	for _, p := range hs {
		p.HistSummary = p.full.Summary()
		m.Hists = append(m.Hists, *p)
	}

	m.sortSeries()
	return m
}

// Empty reports whether the snapshot holds no series at all.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Hists) == 0
}

// Counter returns the value of the counter with the given rendered key
// (e.g. `pmem_scrubs_total{bank="0"}`), or 0 — a test and assertion
// convenience.
func (s Snapshot) Counter(key string) int64 {
	for _, p := range s.Counters {
		if p.key == key {
			return p.Value
		}
	}
	return 0
}

// CounterFamily sums every counter series of the given family name.
func (s Snapshot) CounterFamily(name string) int64 {
	var total int64
	for _, p := range s.Counters {
		if p.Name == name {
			total += p.Value
		}
	}
	return total
}
