package telemetry

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestHistMergeOrderIndependent is the histogram property the serving
// layer's sharding depends on (mirroring the TestCampaignScenario
// determinism pattern): scattering one observation stream across any
// number of shard histograms and merging them back in any order yields
// exactly the single-shard histogram.
func TestHistMergeOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	values := make([]int64, 5000)
	for i := range values {
		switch rng.Intn(3) {
		case 0:
			values[i] = rng.Int63n(16) // exact buckets
		case 1:
			values[i] = rng.Int63n(1 << 20)
		default:
			values[i] = rng.Int63() // full range
		}
	}
	var single Hist
	for _, v := range values {
		single.Observe(v)
	}
	for _, shards := range []int{1, 2, 8, 32, 99} {
		parts := make([]Hist, shards)
		for _, v := range values {
			parts[rng.Intn(shards)].Observe(v)
		}
		perm := rng.Perm(shards)
		var merged Hist
		for _, p := range perm {
			merged = merged.Merge(parts[p])
		}
		if !reflect.DeepEqual(single, merged) {
			t.Fatalf("shards=%d: merged histogram diverged from single-shard run", shards)
		}
		// Associativity: pairwise tree merge equals the linear fold.
		for len(parts) > 1 {
			var next []Hist
			for i := 0; i < len(parts); i += 2 {
				if i+1 < len(parts) {
					next = append(next, parts[i].Merge(parts[i+1]))
				} else {
					next = append(next, parts[i])
				}
			}
			parts = next
		}
		if !reflect.DeepEqual(single, parts[0]) {
			t.Fatalf("shards=%d: tree merge diverged", shards)
		}
	}
}

// TestHistQuantileBounds: quantiles come back within one bucket of the
// true order statistics, and the digest fields are exact where promised.
func TestHistQuantileBounds(t *testing.T) {
	var h Hist
	const n = 10000
	var sum int64
	for i := int64(1); i <= n; i++ {
		h.Observe(i)
		sum += i
	}
	s := h.Summary()
	if s.Count != n || s.Max != n || h.Sum != sum {
		t.Fatalf("digest counts wrong: %+v", s)
	}
	checks := []struct {
		q    float64
		want int64
	}{{0.5, n / 2}, {0.99, 99 * n / 100}, {0.999, 999 * n / 1000}}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if got < c.want || float64(got) > float64(c.want)*1.2 {
			t.Fatalf("q=%g: got %d, want within [%d, %d]", c.q, got, c.want, c.want*12/10)
		}
	}
	if h.Quantile(1) != n || h.Quantile(0) == 0 {
		t.Fatalf("extreme quantiles: q1=%d q0=%d", h.Quantile(1), h.Quantile(0))
	}
}

// TestHistZeroAndNegative: the zero value is usable and negatives clamp.
func TestHistZeroAndNegative(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram not zero")
	}
	h.Observe(-5)
	if h.N != 1 || h.Max != 0 || h.Quantile(0.99) != 0 {
		t.Fatalf("negative observation mishandled: %+v", h.Summary())
	}
}

// TestHistBucketInverse: every bucket's upper bound maps back to itself,
// and bucket indices are monotone in the value.
func TestHistBucketInverse(t *testing.T) {
	for i := 0; i < histBuckets; i++ {
		if got := histBucket(histUpper(i)); got != i {
			t.Fatalf("histBucket(histUpper(%d)) = %d", i, got)
		}
	}
	prev := -1
	for _, v := range []int64{0, 1, 7, 8, 15, 16, 100, 1 << 20, 1<<62 + 1, 1<<63 - 1} {
		b := histBucket(v)
		if b < prev {
			t.Fatalf("bucket not monotone at %d", v)
		}
		prev = b
		if up := histUpper(b); up < v {
			t.Fatalf("upper(%d)=%d below value %d", b, up, v)
		}
	}
}
