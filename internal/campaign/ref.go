package campaign

// The bit-serial golden reference for block diagnosis, in the spirit of
// bitmat/ref.go and the xbar reference crossbar: obviously correct, allowed
// to be slow, and used only to adversarially verify the fast path. The
// production pipeline computes syndromes through shifters, XOR3 processing
// crossbars, and word-parallel vector ops (cmem.CheckLine); this reference
// walks the block one cell at a time straight from the code's definition —
// cell (lr,lc) belongs to leading diagonal (lr+lc) mod m and counter
// diagonal (lr−lc) mod m — so any divergence pins a bug in the pipeline,
// not in the mathematics.

import (
	"repro/internal/bitmat"
	"repro/internal/ecc"
)

// refCheckBlock recomputes the syndrome of block (br,bc) bit-serially from
// a memory image and stored check bits, and decodes it.
func refCheckBlock(p ecc.Params, mem *bitmat.Mat, cb *ecc.CheckBits, br, bc int) ecc.Diagnosis {
	lead := bitmat.NewVec(p.M)
	counter := bitmat.NewVec(p.M)
	for d := 0; d < p.M; d++ {
		lead.Set(d, cb.Lead(d, br, bc))
		counter.Set(d, cb.Counter(d, br, bc))
	}
	for lr := 0; lr < p.M; lr++ {
		for lc := 0; lc < p.M; lc++ {
			if mem.Get(br*p.M+lr, bc*p.M+lc) {
				lead.Flip(p.LeadIdx(lr, lc))
				counter.Flip(p.CounterIdx(lr, lc))
			}
		}
	}
	return ecc.Decode(p, lead, counter)
}
