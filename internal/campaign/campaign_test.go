package campaign

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bitmat"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/netlist"
	"repro/internal/synth"
	"repro/internal/xbar"
)

var testMachine = machine.Config{N: 45, M: 15, K: 2, ECCEnabled: true}

// fixedFaults injects the same fault list every round — the controlled
// adversary for exact-outcome assertions.
type fixedFaults struct{ faults []faults.Fault }

func (m fixedFaults) Name() string { return "fixed" }
func (m fixedFaults) Apply(x *xbar.Crossbar, stuck *faults.StuckSet, _ *rand.Rand, _ float64) []faults.Fault {
	for _, f := range m.faults {
		switch f.Kind {
		case faults.Stuck0, faults.Stuck1:
			if stuck.Add(f.Row, f.Col, f.Kind == faults.Stuck1) {
				x.Set(f.Row, f.Col, f.Kind == faults.Stuck1)
			}
			continue
		default:
			f.Cells(func(r, c int) { x.Flip(r, c) })
		}
	}
	return m.faults
}

func newRunner(t *testing.T, cfg Config, seed int64) *Runner {
	t.Helper()
	r, err := New(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestSingleFlipAlwaysCorrected: a lone flip anywhere is repaired and the
// verdict agrees with the bit-serial reference, round after round.
func TestSingleFlipAlwaysCorrected(t *testing.T) {
	for _, cell := range [][2]int{{0, 0}, {3, 20}, {44, 44}, {22, 7}} {
		r := newRunner(t, Config{
			Machine: testMachine, Verify: true,
			Model: fixedFaults{[]faults.Fault{{Kind: faults.TransientFlip, Row: cell[0], Col: cell[1], Span: 1}}},
		}, 9)
		for round := 0; round < 20; round++ {
			rep := r.Round()
			if rep.Injected != 1 {
				t.Fatalf("cell %v round %d: injected %d, want 1", cell, round, rep.Injected)
			}
			if rep.Counts[Corrected] != 1 {
				t.Fatalf("cell %v round %d: counts %+v, want 1 corrected", cell, round, rep.Counts)
			}
		}
		tl := r.Tally()
		if !tl.Conformant() || tl.RefChecks == 0 {
			t.Fatalf("cell %v: tally not conformant: %+v", cell, tl)
		}
		if tl.Positions[Corrected] == nil {
			t.Fatal("no position histogram recorded")
		}
		pos := (cell[0]%15)*15 + cell[1]%15
		if tl.Positions[Corrected][pos] != 20 {
			t.Fatalf("cell %v: position %d histogram = %d, want 20", cell, pos, tl.Positions[Corrected][pos])
		}
	}
}

// TestDoubleFlipSameBlockDetectedNeverMiscorrected: two errors in one
// block must flag uncorrectable — and must never be "repaired" into
// silent corruption.
func TestDoubleFlipSameBlockDetected(t *testing.T) {
	r := newRunner(t, Config{
		Machine: testMachine, Verify: true,
		Model: fixedFaults{[]faults.Fault{
			{Kind: faults.TransientFlip, Row: 16, Col: 16, Span: 1},
			{Kind: faults.TransientFlip, Row: 18, Col: 22, Span: 1},
		}},
	}, 4)
	for round := 0; round < 10; round++ {
		rep := r.Round()
		if rep.Counts[DetectedUncorrectable] != 2 {
			t.Fatalf("round %d: counts %+v, want 2 detected-uncorrectable", round, rep.Counts)
		}
	}
	tl := r.Tally()
	if tl.Counts[SilentCorruption] != 0 || tl.Counts[Miscorrected] != 0 || tl.RefMismatches != 0 {
		t.Fatalf("double flips escaped detection: %+v", tl)
	}
}

// TestDoubleFlipDifferentBlocksBothCorrected: one error per block is
// within the code's envelope even when two blocks are hit at once.
func TestDoubleFlipDifferentBlocksBothCorrected(t *testing.T) {
	r := newRunner(t, Config{
		Machine: testMachine, Verify: true,
		Model: fixedFaults{[]faults.Fault{
			{Kind: faults.TransientFlip, Row: 2, Col: 2, Span: 1},
			{Kind: faults.TransientFlip, Row: 30, Col: 40, Span: 1},
		}},
	}, 4)
	rep := r.Round()
	if rep.Counts[Corrected] != 2 {
		t.Fatalf("counts %+v, want 2 corrected", rep.Counts)
	}
}

// TestStuckCellLifecycle: a permanently stuck cell re-asserts after every
// repair and overwrite, so it is re-adjudicated every round. A lone stuck
// cell is at most a single error per block, so it is never flagged
// uncorrectable — but unlike transients it is NOT always conformant: host
// writes through the delta-update protocol can launder the check bits into
// agreeing with the defect (see TestStuckWriteLaunderingEscapesECC).
func TestStuckCellLifecycle(t *testing.T) {
	r := newRunner(t, Config{
		Machine: testMachine, Verify: true,
		Model: fixedFaults{[]faults.Fault{{Kind: faults.Stuck1, Row: 7, Col: 9, Span: 1}}},
	}, 31)
	const rounds = 40
	for i := 0; i < rounds; i++ {
		if rep := r.Round(); rep.Injected != 1 {
			t.Fatalf("round %d: injected %d, want the 1 stuck cell", i, rep.Injected)
		}
	}
	tl := r.Tally()
	if tl.Injected != rounds {
		t.Fatalf("injected %d, want %d", tl.Injected, rounds)
	}
	if tl.Counts[DetectedUncorrectable] != 0 {
		t.Fatalf("a single stuck cell was flagged uncorrectable: %+v", tl.Counts)
	}
	// Most rounds the defect disagrees with all-fresh data and the scrub
	// repairs the image.
	if tl.Counts[Corrected] == 0 {
		t.Fatalf("stuck cell never corrected: %+v", tl.Counts)
	}
	if tl.RefMismatches != 0 {
		t.Fatalf("machine diagnosis diverged from the bit-serial reference: %+v", tl)
	}
	if tl.ByKind[faults.Stuck1] != rounds {
		t.Fatalf("kind histogram %+v, want %d stuck1", tl.ByKind, rounds)
	}
}

// TestStuckCellMaskedWhenDataMatches: when the stored data equals the
// stuck value the defect is invisible — adjudicated masked.
func TestStuckCellMaskedWhenDataMatches(t *testing.T) {
	r := newRunner(t, Config{
		Machine: testMachine, Verify: true, Loads: -1,
		Model: fixedFaults{[]faults.Fault{{Kind: faults.Stuck1, Row: 7, Col: 9, Span: 1}}},
	}, 3)
	// Pre-seed both machines with a 1 at the stuck location.
	row := bitmat.NewVec(45)
	row.Set(9, true)
	r.golden.LoadRow(7, row)
	r.faulty.LoadRow(7, row)
	rep := r.Round()
	if rep.Injected != 1 || rep.Counts[Masked] != 1 {
		t.Fatalf("report %+v, want the stuck cell masked", rep)
	}
}

// TestStuckWriteLaunderingEscapesECC pins the taxonomy's headline finding:
// a write of the non-stuck value through the continuous delta-update
// protocol reads the stuck cell as "old", folds a phantom delta into the
// check bits, and leaves them consistent with the DEFECT instead of the
// data — true silent corruption that per-block parity cannot see. The
// campaign engine classifies it correctly (and the bit-serial reference
// agrees the block looks clean).
func TestStuckWriteLaunderingEscapesECC(t *testing.T) {
	r := newRunner(t, Config{
		Machine: testMachine, Verify: true, Loads: -1,
		Model: fixedFaults{[]faults.Fault{{Kind: faults.Stuck1, Row: 7, Col: 9, Span: 1}}},
	}, 3)
	// Round 1: data is 0, defect forces 1, checkbits say 0 → corrected.
	rep := r.Round()
	if rep.Counts[Corrected] != 1 {
		t.Fatalf("round 1 %+v, want the stuck cell corrected", rep)
	}
	// Host rewrites the row with zeros. The faulty machine's write path
	// reads old=1 (the re-asserted defect), new=0, and XORs the phantom
	// 1→0 delta into the check bits — which now encode "1" again.
	zeros := bitmat.NewVec(45)
	r.golden.LoadRow(7, zeros)
	r.faulty.LoadRow(7, zeros)
	// Round 2: the defect re-asserts 1, matching the laundered check bits.
	// Zero syndrome, data wrong: silent corruption, correctly adjudicated.
	rep = r.Round()
	if rep.Counts[SilentCorruption] != 1 {
		t.Fatalf("round 2 %+v, want silent corruption from write laundering", rep)
	}
	if tl := r.Tally(); tl.RefMismatches != 0 {
		t.Fatalf("reference decoder disagreed: %+v", tl)
	}
}

// TestFullLineFaultDetected: a wordline burst flips one cell per leading
// diagonal in each block it crosses — always detected, never miscorrected.
func TestFullLineFaultDetected(t *testing.T) {
	r := newRunner(t, Config{
		Machine: testMachine, Verify: true,
		Model: fixedFaults{[]faults.Fault{{Kind: faults.RowLine, Row: 17, Col: 0, Span: 45}}},
	}, 6)
	rep := r.Round()
	if rep.Injected != 45 {
		t.Fatalf("injected %d, want 45", rep.Injected)
	}
	if rep.Counts[DetectedUncorrectable] != 45 {
		t.Fatalf("counts %+v, want all 45 detected-uncorrectable", rep.Counts)
	}
	if !r.Tally().Conformant() {
		t.Fatalf("line campaign not conformant: %+v", r.Tally())
	}
}

// TestBaselineSilentlyCorrupts: with ECC off, every lasting flip is silent
// corruption — the unprotected baseline the paper improves on.
func TestBaselineSilentlyCorrupts(t *testing.T) {
	cfg := Config{
		Machine: machine.Config{N: 45, ECCEnabled: false},
		Model:   fixedFaults{[]faults.Fault{{Kind: faults.TransientFlip, Row: 10, Col: 10, Span: 1}}},
		Verify:  true,
	}
	r := newRunner(t, cfg, 2)
	for i := 0; i < 5; i++ {
		r.Round()
	}
	tl := r.Tally()
	if tl.Counts[SilentCorruption] != 5 {
		t.Fatalf("baseline counts %+v, want 5 silent corruptions", tl.Counts)
	}
	if tl.Conformant() {
		t.Fatal("unprotected baseline reported as conformant")
	}
	if tl.M != 0 || tl.Positions[SilentCorruption] != nil {
		t.Fatal("baseline campaign recorded block positions without a block geometry")
	}
}

// TestRandomizedTransientCampaignConformant: the statistical campaign at a
// single-error-per-block rate upholds the guarantee — no silent
// corruption, no miscorrection, verdicts agree with the reference.
func TestRandomizedTransientCampaignConformant(t *testing.T) {
	r := newRunner(t, Config{
		Machine: testMachine, Verify: true,
		Model: faults.Transient{SER: 3e5}, // p ≈ 3e-4/bit/round
		Hours: 1,
	}, 1234)
	for i := 0; i < 300; i++ {
		r.Round()
	}
	tl := r.Tally()
	if tl.Injected == 0 {
		t.Fatal("campaign injected nothing — raise SER")
	}
	if !tl.Conformant() {
		t.Fatalf("transient campaign violated the guarantee: %+v", tl)
	}
	if tl.Counts[Corrected] == 0 {
		t.Fatalf("nothing corrected: %+v", tl.Counts)
	}
	if got := tl.Counts[Corrected] + tl.Counts[Masked] + tl.Counts[DetectedUncorrectable]; got != tl.Injected {
		t.Fatalf("outcomes %+v do not account for all %d faults", tl.Counts, tl.Injected)
	}
}

// TestKernelCampaignConformant: interleaving SIMD execution with the
// inject→scrub window keeps the guarantee (injection happens between
// executions, when every block is re-protected).
func TestKernelCampaignConformant(t *testing.T) {
	b := netlist.NewBuilder("adder4")
	a := b.InputBus(4)
	x := b.InputBus(4)
	carry := b.Const(false)
	for i := 0; i < 4; i++ {
		axb := b.Xor(a[i], x[i])
		b.Output(b.Xor(axb, carry))
		carry = b.Or(b.And(a[i], x[i]), b.And(axb, carry))
	}
	b.Output(carry)
	kernel, err := synth.Map(b.Build().LowerToNOR(), 45)
	if err != nil {
		t.Fatal(err)
	}
	r := newRunner(t, Config{
		Machine: testMachine, Verify: true, Kernel: kernel,
		Model: faults.Transient{SER: 3e5},
	}, 77)
	for i := 0; i < 40; i++ {
		r.Round()
	}
	tl := r.Tally()
	if tl.Injected == 0 {
		t.Fatal("kernel campaign injected nothing")
	}
	if !tl.Conformant() {
		t.Fatalf("kernel campaign violated the guarantee: %+v", tl)
	}
}

// TestRunnerDeterministic: identical (config, seed) replays identically.
func TestRunnerDeterministic(t *testing.T) {
	run := func(seed int64) Tally {
		r := newRunner(t, Config{
			Machine: testMachine, Verify: true,
			Model: faults.LineCluster{SER: 2e6, Span: 5},
		}, seed)
		for i := 0; i < 30; i++ {
			r.Round()
		}
		return r.Tally()
	}
	if a, b := run(5), run(5); !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	if a, b := run(5), run(6); reflect.DeepEqual(a, b) {
		t.Fatal("different seeds produced identical campaigns")
	}
}

func TestTallyAdd(t *testing.T) {
	a := Tally{Rounds: 1, Injected: 2, M: 15}
	a.Counts[Corrected] = 2
	a.Positions[Corrected] = make([]int64, 225)
	a.Positions[Corrected][7] = 2
	b := Tally{Rounds: 3, Injected: 1, RefChecks: 4}
	b.Counts[Masked] = 1

	ab, ba := a.Add(b), b.Add(a)
	if !reflect.DeepEqual(ab, ba) {
		t.Fatalf("Add not commutative:\n%+v\n%+v", ab, ba)
	}
	if ab.Rounds != 4 || ab.Injected != 3 || ab.M != 15 || ab.Counts[Corrected] != 2 || ab.Counts[Masked] != 1 {
		t.Fatalf("bad merge: %+v", ab)
	}
	if ab.Positions[Corrected][7] != 2 {
		t.Fatal("position histogram lost in merge")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("merging different geometries did not panic")
		}
	}()
	c := Tally{M: 9}
	a.Add(c)
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Machine: testMachine}, 1); err == nil {
		t.Fatal("nil model accepted")
	}
	bad := testMachine
	bad.M = 14
	if _, err := New(Config{Machine: bad, Model: faults.Transient{SER: 1}}, 1); err == nil {
		t.Fatal("invalid machine geometry accepted")
	}
}

func TestOutcomeNames(t *testing.T) {
	names := OutcomeNames()
	if len(names) != NumOutcomes {
		t.Fatalf("%d names for %d outcomes", len(names), NumOutcomes)
	}
	want := []string{"corrected", "detected-uncorrectable", "masked", "silent-corruption", "miscorrected", "repaired"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("names %v, want %v", names, want)
	}
}
