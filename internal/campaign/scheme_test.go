package campaign

// Campaign adjudication under the non-diagonal backends: the scheme layer
// must keep the adjudicator honest for codes with different guarantee
// shapes — Hamming SEC-DED corrects singles per *word* (so one block can
// legitimately host several corrections) and detects same-word doubles;
// parity only ever detects. "No miscorrected regressions" is the bar.

import (
	"reflect"
	"testing"

	"repro/internal/ecc"
	"repro/internal/faults"
	"repro/internal/machine"
)

var hammingMachineCfg = machine.Config{N: 45, M: 15, K: 2, ECCEnabled: true, Scheme: ecc.SchemeHamming}

// TestHammingSingleFlipCorrected: a lone flip anywhere is repaired under
// the Hamming backend, with full bit-serial reference agreement.
func TestHammingSingleFlipCorrected(t *testing.T) {
	for _, cell := range [][2]int{{0, 0}, {3, 20}, {44, 44}, {22, 7}} {
		r := newRunner(t, Config{
			Machine: hammingMachineCfg, Verify: true,
			Model: fixedFaults{[]faults.Fault{{Kind: faults.TransientFlip, Row: cell[0], Col: cell[1], Span: 1}}},
		}, 9)
		for round := 0; round < 10; round++ {
			rep := r.Round()
			if rep.Counts[Corrected] != 1 || rep.Injected != 1 {
				t.Fatalf("cell %v round %d: report %+v, want 1 corrected", cell, round, rep)
			}
		}
		tl := r.Tally()
		if !tl.Conformant() || tl.RefChecks == 0 {
			t.Fatalf("cell %v: tally not conformant: %+v", cell, tl)
		}
	}
}

// TestHammingSameWordDoubleDetected: two flips in one 15-bit word are
// flagged detected-uncorrectable — never silently corrupted, never
// miscorrected — while two flips in different words of the same block are
// both corrected (the per-word granularity the finding lists exist for).
func TestHammingSameWordDoubleDetected(t *testing.T) {
	r := newRunner(t, Config{
		Machine: hammingMachineCfg, Verify: true,
		Model: fixedFaults{[]faults.Fault{
			{Kind: faults.TransientFlip, Row: 8, Col: 16, Span: 1},
			{Kind: faults.TransientFlip, Row: 8, Col: 22, Span: 1},
		}},
	}, 4)
	for round := 0; round < 10; round++ {
		rep := r.Round()
		if rep.Counts[DetectedUncorrectable] != 2 || rep.Counts[Miscorrected] != 0 || rep.Counts[SilentCorruption] != 0 {
			t.Fatalf("round %d: %+v, want 2 detected-uncorrectable", round, rep.Counts)
		}
	}
	if tl := r.Tally(); tl.RefMismatches != 0 {
		t.Fatalf("reference decoder disagreed: %+v", tl)
	}

	r = newRunner(t, Config{
		Machine: hammingMachineCfg, Verify: true,
		Model: fixedFaults{[]faults.Fault{
			{Kind: faults.TransientFlip, Row: 0, Col: 3, Span: 1},
			{Kind: faults.TransientFlip, Row: 14, Col: 8, Span: 1},
		}},
	}, 4)
	for round := 0; round < 10; round++ {
		rep := r.Round()
		if rep.Counts[Corrected] != 2 {
			t.Fatalf("cross-word double round %d: %+v, want 2 corrected", round, rep.Counts)
		}
	}
	if tl := r.Tally(); !tl.Conformant() {
		t.Fatalf("cross-word campaign not conformant: %+v", tl)
	}
}

// TestHammingTransientCampaignNoMiscorrection: a randomized transient
// campaign at moderate rate stays free of miscorrections and silent
// corruption, and the production decoder never disagrees with the
// bit-serial reference — the -ecc hamming adjudication regression gate.
func TestHammingTransientCampaignNoMiscorrection(t *testing.T) {
	r := newRunner(t, Config{
		Machine: hammingMachineCfg, Verify: true,
		Model: faults.Transient{SER: 1e-3}, Hours: 1e9,
	}, 11)
	for round := 0; round < 40; round++ {
		r.Round()
	}
	tl := r.Tally()
	if tl.Injected == 0 || tl.RefChecks == 0 {
		t.Fatalf("vacuous campaign: %+v", tl)
	}
	if tl.Counts[Miscorrected] != 0 || tl.Counts[SilentCorruption] != 0 || tl.RefMismatches != 0 {
		t.Fatalf("hamming campaign regressed: %+v", tl)
	}
	if tl.Counts[Corrected] == 0 {
		t.Fatalf("campaign never exercised correction: %+v", tl)
	}
}

// TestAdjudicationIsWordGranular: a silently corrupted word must be
// classified silent-corruption even when a *different* word of the same
// block was flagged — findings join to fault cells by code unit
// (ecc.Scheme.CoversCell), not by block. An even-weight double in one
// parity word stays invisible; a loud single in another word of the
// block must not launder it into "detected".
func TestAdjudicationIsWordGranular(t *testing.T) {
	cfg := hammingMachineCfg
	cfg.Scheme = ecc.SchemeParity
	r := newRunner(t, Config{
		Machine: cfg, Verify: true,
		Model: fixedFaults{[]faults.Fault{
			{Kind: faults.TransientFlip, Row: 8, Col: 16, Span: 1},
			{Kind: faults.TransientFlip, Row: 8, Col: 22, Span: 1}, // same word: silent
			{Kind: faults.TransientFlip, Row: 9, Col: 17, Span: 1}, // same block, loud word
		}},
	}, 6)
	rep := r.Round()
	if rep.Counts[SilentCorruption] != 2 || rep.Counts[DetectedUncorrectable] != 1 {
		t.Fatalf("counts %+v, want 2 silent (invisible double) + 1 detected", rep.Counts)
	}

	// The hamming dual: a zero-syndrome quad in one word next to a
	// corrected single in another word — the quad's cells must stay
	// silent-corruption, not ride the neighbor's correction as
	// "miscorrected". (Data bits 0,1,4,10 carry Hamming patterns
	// 3,5,9,15: they XOR to zero and the flip count is even, so the quad
	// is invisible to SEC-DED.)
	hc := hammingMachineCfg
	rh := newRunner(t, Config{
		Machine: hc, Verify: true,
		Model: fixedFaults{[]faults.Fault{
			{Kind: faults.TransientFlip, Row: 3, Col: 0, Span: 1},
			{Kind: faults.TransientFlip, Row: 3, Col: 1, Span: 1},
			{Kind: faults.TransientFlip, Row: 3, Col: 4, Span: 1},
			{Kind: faults.TransientFlip, Row: 3, Col: 10, Span: 1},
			{Kind: faults.TransientFlip, Row: 4, Col: 7, Span: 1}, // loud neighbor word
		}},
	}, 6)
	reph := rh.Round()
	if reph.Counts[Corrected] != 1 {
		t.Fatalf("hamming counts %+v, want the neighbor single corrected", reph.Counts)
	}
	if reph.Counts[Miscorrected] != 0 || reph.Counts[DetectedUncorrectable] != 0 {
		t.Fatalf("hamming counts %+v: invisible quad misattributed to the neighbor's finding", reph.Counts)
	}
	if reph.Counts[SilentCorruption] != 4 {
		t.Fatalf("hamming counts %+v, want the quad's 4 cells silent", reph.Counts)
	}
}

// TestParityCampaignDetectOnly: the parity baseline detects lone flips
// (detected-uncorrectable), corrects nothing, and never miscorrects.
func TestParityCampaignDetectOnly(t *testing.T) {
	cfg := hammingMachineCfg
	cfg.Scheme = ecc.SchemeParity
	r := newRunner(t, Config{
		Machine: cfg, Verify: true,
		Model: fixedFaults{[]faults.Fault{{Kind: faults.TransientFlip, Row: 22, Col: 7, Span: 1}}},
	}, 2)
	for round := 0; round < 10; round++ {
		rep := r.Round()
		if rep.Counts[DetectedUncorrectable] != 1 {
			t.Fatalf("round %d: %+v, want detected-uncorrectable", round, rep.Counts)
		}
	}
	tl := r.Tally()
	if tl.Counts[Corrected] != 0 || tl.Counts[Miscorrected] != 0 || tl.RefMismatches != 0 {
		t.Fatalf("parity campaign: %+v", tl)
	}
}

// TestSchemeCampaignDeterministic: same seed, same tally for the Hamming
// backend — the property the fleet merges rely on.
func TestSchemeCampaignDeterministic(t *testing.T) {
	run := func(seed int64) Tally {
		r := newRunner(t, Config{
			Machine: hammingMachineCfg, Verify: true,
			Model: faults.Transient{SER: 1e-3}, Hours: 1e9,
		}, seed)
		for round := 0; round < 10; round++ {
			r.Round()
		}
		return r.Tally()
	}
	if a, b := run(5), run(5); !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}
