// Package campaign is the fault-campaign conformance engine: it proves the
// paper's ECC guarantee — every single error per block between scrubs is
// corrected, every double is detected, and nothing is ever silently
// miscorrected — end-to-end, by injecting faults from an adversarial model
// (internal/faults), running the full protected machine (MEM + CMEM +
// shifters + controller), and adjudicating every injected fault against a
// golden fault-free reference machine driven by the identical workload.
//
// Each adjudicated fault lands in exactly one outcome bucket:
//
//   - Corrected: the scrub diagnosed a data error at exactly the faulty
//     cell and repaired it — the paper's headline guarantee.
//   - DetectedUncorrectable: the block was flagged uncorrectable and left
//     untouched — the honest failure mode for multi-error blocks.
//   - Masked: the fault had no lasting effect (double hit on one cell, a
//     stuck value matching the data, overlapping line events).
//   - SilentCorruption: the faulty cell differs from golden after the
//     scrub and nothing was flagged — the outcome the mechanism must
//     never produce within its single-error-per-block envelope.
//   - Miscorrected: the scrub acted on the wrong cell or a check bit
//     while the injected error persisted.
//
// The taxonomy earns its keep: transient campaigns within the single-
// error-per-block envelope are fully conformant, but stuck-at defects can
// defeat the continuous delta-update protocol — a host write of the
// non-stuck value reads the stuck cell as "old", XORs a phantom delta into
// the check bits, and leaves them consistent with the defect instead of
// the data (see TestStuckWriteLaunderingEscapesECC). Pure per-block parity
// cannot see this; real controllers pair delta ECC with write-verify and
// sparing for exactly this reason.
//
// Verdicts are additionally cross-checked against each scheme's bit-serial
// reference decoder (ecc.Scheme.ReferenceCheck) over the pre-scrub state —
// tying the production check path (the word-parallel, pipelined CMEM for
// the diagonal code; the packed word decoders for the generic backends)
// back to the mathematical code, in the same spirit as bitmat/ref.go and
// the xbar bit-serial reference model.
//
// The engine is scheme-generic: the machine configuration names any
// registered protection code (ecc.SchemeByName), and adjudication works
// off per-block finding *lists*, since codes with sub-block structure
// (horizontal Hamming words) can repair several independent errors in one
// block where the diagonal code reports at most one diagnosis.
package campaign

import (
	"fmt"
	"math/rand"

	"repro/internal/bitmat"
	"repro/internal/ecc"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/repair"
	"repro/internal/synth"
)

// Outcome classifies what happened to one injected fault.
type Outcome int

const (
	Corrected Outcome = iota
	DetectedUncorrectable
	Masked
	SilentCorruption
	Miscorrected
	// Repaired is the self-healing outcome: the faulty cell was remapped
	// onto a spare this round (write-verify or scrub-triggered
	// retirement) and its data matches golden — the defect is out of the
	// data path for good. Only produced with a repair policy active.
	Repaired

	// NumOutcomes is the number of outcome buckets (for histogram sizing).
	NumOutcomes int = iota
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Corrected:
		return "corrected"
	case DetectedUncorrectable:
		return "detected-uncorrectable"
	case Masked:
		return "masked"
	case SilentCorruption:
		return "silent-corruption"
	case Miscorrected:
		return "miscorrected"
	case Repaired:
		return "repaired"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// OutcomeNames lists the outcome buckets in enum order.
func OutcomeNames() []string {
	names := make([]string, NumOutcomes)
	for o := 0; o < NumOutcomes; o++ {
		names[o] = Outcome(o).String()
	}
	return names
}

// Tally is the mergeable result of campaign rounds. Every field is a pure
// function of (configuration, model, seed), so fleet shards can tally
// locally and merge in any order.
type Tally struct {
	Rounds   int64
	Injected int64 // adjudicated fault cells

	Counts [NumOutcomes]int64     // per-outcome fault counts
	ByKind [faults.NumKinds]int64 // injected fault cells per fault kind

	// Positions are per-outcome histograms over the in-block codeword
	// position lr·M+lc of each adjudicated data cell — the codeword-
	// spectrum view: *where* in the m×m block faults land and how each
	// position fares. Nil until the first ECC-protected adjudication; M=0
	// means no position data (baseline campaigns).
	M         int
	Positions [NumOutcomes][]int64

	// RefChecks counts bit-serial reference cross-checks performed;
	// RefMismatches counts disagreements between the machine's diagnosis
	// and the reference decoder. Conformance demands it stays zero.
	RefChecks     int64
	RefMismatches int64

	// Repair-layer activity (all zero with the repair policy off):
	// persistent write-verify mismatches reported, cells retired onto
	// spares, and retirements refused for lack of budget.
	VerifyMismatches int64
	CellsRetired     int64
	SparesExhausted  int64
}

// Add returns the field-wise sum of two tallies. It is commutative and
// associative; tallies with different block geometries cannot be merged.
func (t Tally) Add(o Tally) Tally {
	if t.M == 0 {
		t.M = o.M
	} else if o.M != 0 && o.M != t.M {
		panic(fmt.Sprintf("campaign: merging tallies with block sides %d and %d", t.M, o.M))
	}
	sum := Tally{
		Rounds:        t.Rounds + o.Rounds,
		Injected:      t.Injected + o.Injected,
		M:             t.M,
		RefChecks:     t.RefChecks + o.RefChecks,
		RefMismatches: t.RefMismatches + o.RefMismatches,

		VerifyMismatches: t.VerifyMismatches + o.VerifyMismatches,
		CellsRetired:     t.CellsRetired + o.CellsRetired,
		SparesExhausted:  t.SparesExhausted + o.SparesExhausted,
	}
	for i := range sum.Counts {
		sum.Counts[i] = t.Counts[i] + o.Counts[i]
	}
	for i := range sum.ByKind {
		sum.ByKind[i] = t.ByKind[i] + o.ByKind[i]
	}
	for i := range sum.Positions {
		sum.Positions[i] = addHist(t.Positions[i], o.Positions[i])
	}
	return sum
}

func addHist(a, b []int64) []int64 {
	if a == nil && b == nil {
		return nil
	}
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make([]int64, n)
	copy(out, a)
	for i, v := range b {
		out[i] += v
	}
	return out
}

// Conformant reports whether the tally upholds the paper's guarantee: no
// silent corruption, no miscorrection, and full agreement with the
// bit-serial reference decoder.
func (t Tally) Conformant() bool {
	return t.Counts[SilentCorruption] == 0 && t.Counts[Miscorrected] == 0 && t.RefMismatches == 0
}

// Config sizes one crossbar's campaign.
type Config struct {
	Machine machine.Config
	Model   faults.Model
	Hours   float64 // exposure per round (default 1)

	// Loads is the number of pseudo-random row loads per round through the
	// controller write path, applied identically to the golden and faulty
	// machines so data keeps churning (0 defaults to 2; negative disables
	// loads entirely).
	Loads int

	// Kernel optionally executes a SIMPLER mapping across all rows each
	// round. Note the paper leaves intermediate working cells unprotected
	// ("left for future work"): with a kernel active, faults landing in
	// the working region during execution can legitimately escape the
	// code, so conformance campaigns default to loads only.
	Kernel *synth.Mapping

	// Verify cross-checks the diagnosis of every suspect block against
	// the bit-serial reference decoder.
	Verify bool
}

// RoundReport summarizes one campaign round.
type RoundReport struct {
	Injected int
	Counts   [NumOutcomes]int64
}

// Runner drives the campaign of one crossbar: a faulty machine under
// injection and a golden fault-free twin executing the same workload.
// Deterministic in (Config, seed).
type Runner struct {
	cfg            Config
	faulty, golden *machine.Machine
	stuck          *faults.StuckSet
	repairOn       bool
	loadRNG        *rand.Rand
	faultRNG       *rand.Rand
	tally          Tally

	// probe is a zero-state instance of the machine's scheme, used only
	// for CoversCell: matching scrub findings to the code unit a fault
	// cell belongs to (the whole block for the diagonal code, the word
	// row for word schemes). Nil for unprotected baselines.
	probe ecc.Scheme
}

// New builds a campaign runner. The two machines start identical and
// all-zero; randomness is split into independent load and fault streams
// derived from seed.
func New(cfg Config, seed int64) (*Runner, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("campaign: no fault model configured")
	}
	if cfg.Hours <= 0 {
		cfg.Hours = 1
	}
	if cfg.Loads == 0 {
		cfg.Loads = 2
	} else if cfg.Loads < 0 {
		cfg.Loads = 0
	}
	if cfg.Kernel != nil && cfg.Kernel.RowSize > cfg.Machine.N {
		return nil, fmt.Errorf("campaign: kernel needs %d cells, crossbar row has %d", cfg.Kernel.RowSize, cfg.Machine.N)
	}
	faulty, err := machine.New(cfg.Machine)
	if err != nil {
		return nil, err
	}
	gcfg := cfg.Machine
	gcfg.Repair = repair.Config{}   // the golden twin is fault-free: no repair layer
	golden := machine.MustNew(gcfg) // same geometry already validated
	r := &Runner{
		cfg:      cfg,
		faulty:   faulty,
		golden:   golden,
		stuck:    faults.NewStuckSet(),
		loadRNG:  rand.New(rand.NewSource(seed)),
		faultRNG: rand.New(rand.NewSource(faults.DeriveSeed(seed, 0, 1))),
	}
	if cfg.Machine.Repair.Enabled() {
		// With a repair policy active the machine owns the defect physics:
		// stuck cells re-assert inside every LoadRow commit, so write-verify
		// observes the defect the instant a laundering write lands instead
		// of only at round boundaries. Repair reports are recorded for
		// adjudication (drained each round).
		r.faulty.AttachDefects(r.stuck)
		r.faulty.RecordRepairs(true)
		r.repairOn = true
	}
	if cfg.Machine.ECCEnabled {
		r.tally.M = cfg.Machine.M
		spec, err := ecc.SchemeByName(cfg.Machine.SchemeName())
		if err != nil {
			return nil, fmt.Errorf("campaign: %w", err)
		}
		r.probe = spec.New(ecc.Params{N: cfg.Machine.N, M: cfg.Machine.M}, nil)
	}
	return r, nil
}

// Tally returns the accumulated campaign tally.
func (r *Runner) Tally() Tally { return r.tally }

// Stats returns the faulty (simulated-hardware) machine's statistics; the
// golden twin is reference software and is excluded.
func (r *Runner) Stats() machine.Stats { return r.faulty.Stats() }

// activeFault is one fault cell awaiting adjudication this round.
type activeFault struct {
	row, col int
	kind     faults.Kind
}

// Round executes one campaign round: identical workload step on both
// machines, stuck-cell re-assertion, model injection, scrub, per-fault
// adjudication against the golden image, then healing the faulty machine
// back to golden (stuck cells never heal). Rounds are therefore
// independent trials of the inject→scrub window the paper's reliability
// analysis reasons about.
func (r *Runner) Round() RoundReport {
	n := r.cfg.Machine.N

	// 1. Identical workload step on golden and faulty.
	row := bitmat.NewVec(n)
	for i := 0; i < r.cfg.Loads; i++ {
		for j := 0; j < n; j++ {
			row.Set(j, r.loadRNG.Intn(2) == 0)
		}
		idx := r.loadRNG.Intn(n)
		r.golden.LoadRow(idx, row)
		r.faulty.LoadRow(idx, row)
	}
	if r.cfg.Kernel != nil {
		// Geometry was validated in New; ExecuteSIMD cannot fail here.
		if err := r.golden.ExecuteSIMD(r.cfg.Kernel, r.golden.MEM().AllRows()); err != nil {
			panic(err)
		}
		if err := r.faulty.ExecuteSIMD(r.cfg.Kernel, r.faulty.MEM().AllRows()); err != nil {
			panic(err)
		}
	}

	// 2. Stuck defects swallow the step's writes.
	r.stuck.Reassert(r.faulty.MEM())

	// 3. Inject this round's faults.
	injected := r.cfg.Model.Apply(r.faulty.MEM(), r.stuck, r.faultRNG, r.cfg.Hours)

	// 4. Collect the distinct fault cells to adjudicate: every stuck cell
	// is an active fault each round, plus this round's injections.
	seen := make(map[[2]int]bool)
	var active []activeFault
	add := func(row, col int, k faults.Kind) {
		key := [2]int{row, col}
		if seen[key] {
			return
		}
		seen[key] = true
		active = append(active, activeFault{row: row, col: col, kind: k})
	}
	for _, sc := range r.stuck.Cells() {
		k := faults.Stuck0
		if sc.Value {
			k = faults.Stuck1
		}
		add(sc.Row, sc.Col, k)
	}
	for _, f := range injected {
		f := f
		f.Cells(func(row, col int) { add(row, col, f.Kind) })
	}

	// 5. Snapshot the pre-scrub state for the bit-serial reference: the
	// memory image plus the scheme's logical check-bit image.
	var preMem *bitmat.Mat
	var preImg ecc.Scheme
	if r.cfg.Verify {
		if preImg = r.faulty.ECCImage(); preImg != nil {
			preMem = r.faulty.MEM().Snapshot()
		}
	}

	// 6. Scrub and index the findings by block. Schemes with sub-block
	// structure may yield several findings per block, in scrub order.
	findings := r.faulty.ScrubFindings()
	byBlock := make(map[[2]int][]machine.Finding, len(findings))
	for _, f := range findings {
		key := [2]int{f.BR, f.BC}
		byBlock[key] = append(byBlock[key], f)
	}

	// 7. Bit-serial reference cross-check on every suspect block.
	if preMem != nil {
		r.verifyFindings(preMem, preImg, active, findings, byBlock)
	}

	// 7b. Drain the round's repair reports: write-verify mismatches from
	// the workload step plus retirements, write-time or scrub-triggered.
	// A retired cell left r.stuck the moment it was evicted, so it is put
	// back into the adjudication set here; reported-but-unrepaired cells
	// count as detected at write time even when the scrub stays silent.
	var retired, reported map[[2]int]bool
	if r.repairOn {
		retired = make(map[[2]int]bool)
		reported = make(map[[2]int]bool)
		for _, rp := range r.faulty.DrainRepairs() {
			key := [2]int{rp.Row, rp.Col}
			switch rp.Kind {
			case machine.RepairMismatch:
				reported[key] = true
				r.tally.VerifyMismatches++
			case machine.RepairRetired:
				retired[key] = true
				k := faults.Stuck0
				if rp.Stuck {
					k = faults.Stuck1
				}
				add(rp.Row, rp.Col, k)
				r.tally.CellsRetired++
			case machine.RepairExhausted:
				r.tally.SparesExhausted++
			}
		}
	}

	// 8. Adjudicate every active fault cell against the golden image.
	rep := RoundReport{Injected: len(active)}
	m := r.cfg.Machine.M
	for _, a := range active {
		out := r.adjudicate(a, byBlock, retired, reported)
		rep.Counts[out]++
		r.tally.Injected++
		r.tally.Counts[out]++
		r.tally.ByKind[a.kind]++
		if r.tally.M > 0 {
			if r.tally.Positions[out] == nil {
				r.tally.Positions[out] = make([]int64, r.tally.M*r.tally.M)
			}
			r.tally.Positions[out][(a.row%m)*m+a.col%m]++
		}
	}

	// 9. Heal: copy the golden image back and rebuild the check bits, so
	// the next round starts from a consistent state; stuck cells re-assert
	// immediately — the defect outlives every repair.
	fm, gm := r.faulty.MEM().Mat(), r.golden.MEM().Mat()
	for i := 0; i < n; i++ {
		fm.Row(i).CopyFrom(gm.Row(i))
	}
	r.faulty.RebuildChecks()
	r.stuck.Reassert(r.faulty.MEM())

	r.tally.Rounds++
	return rep
}

// adjudicate classifies one fault cell using the post-scrub memory images,
// the scrub's block findings, and the round's repair reports (retired and
// reported cells; nil maps with the repair policy off).
func (r *Runner) adjudicate(a activeFault, byBlock map[[2]int][]machine.Finding, retired, reported map[[2]int]bool) Outcome {
	g := r.golden.MEM().Get(a.row, a.col)
	f := r.faulty.MEM().Get(a.row, a.col)
	if !r.faulty.Protected() {
		// Baseline machine: nothing is ever detected or corrected.
		if f == g {
			return Masked
		}
		return SilentCorruption
	}
	m := r.cfg.Machine.M
	lr, lc := a.row%m, a.col%m
	// Join on the *home* block of the code unit covering this cell: for
	// column-local schemes that is the cell's own block, but striped codes
	// (interleaved diagonal) report a unit's diagnoses under the home block
	// of the sub-code, which is generally a different block-column.
	ubr, ubc, _ := r.probe.UnitOf(a.row, a.col)
	blockFindings := byBlock[[2]int{ubr, ubc}]
	if f == g {
		if retired[[2]int{a.row, a.col}] {
			// Remapped onto a spare this round with data intact: the defect
			// is permanently out of the data path, stronger than Corrected.
			return Repaired
		}
		for _, fd := range blockFindings {
			if fd.Diag.Kind == ecc.DataError && r.probe.CoversCell(fd.Diag, lr, lc) {
				if fr, fc := fd.DataCell(m); fr == a.row && fc == a.col {
					return Corrected
				}
			}
		}
		return Masked
	}
	// Only findings whose code unit covers this cell count: a flag on a
	// *different* word of the block says nothing about this fault — a
	// persisting error whose own word stayed silent is silent corruption,
	// however loud its neighbors were.
	relevant, uncorrectable := 0, false
	for _, fd := range blockFindings {
		if !r.probe.CoversCell(fd.Diag, lr, lc) {
			continue
		}
		relevant++
		if fd.Diag.Kind == ecc.Uncorrectable {
			uncorrectable = true
		}
	}
	switch {
	case relevant == 0:
		if reported[[2]int{a.row, a.col}] {
			// The scrub's checks were laundered, but write-verify flagged
			// the mismatch at write time — detected, not silent.
			return DetectedUncorrectable
		}
		return SilentCorruption
	case uncorrectable:
		return DetectedUncorrectable
	default:
		// The scrub repaired a different cell or a check bit of this
		// unit while the error persisted — an aliased syndrome steered
		// it wrong.
		return Miscorrected
	}
}

// verifyFindings recomputes the diagnoses of every suspect block (blocks
// holding active faults plus blocks the scrub flagged) with the scheme's
// bit-serial reference decoder over the pre-scrub state and compares.
func (r *Runner) verifyFindings(preMem *bitmat.Mat, preImg ecc.Scheme,
	active []activeFault, findings []machine.Finding, byBlock map[[2]int][]machine.Finding) {
	suspect := make(map[[2]int]bool)
	var order [][2]int
	mark := func(br, bc int) {
		key := [2]int{br, bc}
		if !suspect[key] {
			suspect[key] = true
			order = append(order, key)
		}
	}
	m := r.cfg.Machine.M
	for _, a := range active {
		// Suspect both the cell's own block and the home block of its
		// covering code unit — distinct for striped schemes.
		mark(a.row/m, a.col/m)
		ubr, ubc, _ := r.probe.UnitOf(a.row, a.col)
		mark(ubr, ubc)
	}
	for _, f := range findings {
		mark(f.BR, f.BC)
	}
	for _, key := range order {
		want := preImg.ReferenceCheck(preMem, key[0], key[1])
		got := byBlock[key]
		r.tally.RefChecks++
		if len(got) != len(want) {
			r.tally.RefMismatches++
			continue
		}
		for i := range want {
			if !sameDiagnosis(got[i].Diag, want[i]) {
				r.tally.RefMismatches++
				break
			}
		}
	}
}

// sameDiagnosis compares two diagnoses on the fields their kind defines.
func sameDiagnosis(a, b ecc.Diagnosis) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case ecc.DataError:
		return a.LR == b.LR && a.LC == b.LC
	case ecc.LeadCheckError, ecc.CounterCheckError, ecc.CheckError:
		return a.Diag == b.Diag
	case ecc.Uncorrectable:
		// Word schemes set LR to the flagged word row (adjudication joins
		// on it); flagging the wrong word must count as a mismatch. The
		// diagonal code's unit is the block — LR is zero on both sides.
		return a.LR == b.LR
	}
	return true
}
