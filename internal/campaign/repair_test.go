package campaign

import (
	"errors"
	"testing"

	"repro/internal/bitmat"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/repair"
)

// repairMachine returns the test geometry with a repair policy attached.
func repairMachine(p repair.Policy, spares int) machine.Config {
	cfg := testMachine
	cfg.Repair = repair.Config{Policy: p, Spares: spares}
	return cfg
}

// TestStuckLaunderingRepairedByWriteVerify is the closing of the loop: the
// exact TestStuckWriteLaunderingEscapesECC scenario — the one silent
// corruption the campaign engine ever produces — run again with the
// verify+spare policy. The laundering write is caught at write time, the
// cell is retired onto a spare, and the round adjudicates Repaired with
// zero silent corruptions.
func TestStuckLaunderingRepairedByWriteVerify(t *testing.T) {
	r := newRunner(t, Config{
		Machine: repairMachine(repair.VerifySpare, 4), Verify: true, Loads: -1,
		Model: fixedFaults{[]faults.Fault{{Kind: faults.Stuck1, Row: 7, Col: 9, Span: 1}}},
	}, 3)
	// Round 1: data is 0, defect forces 1, checkbits say 0 → corrected.
	rep := r.Round()
	if rep.Counts[Corrected] != 1 {
		t.Fatalf("round 1 %+v, want the stuck cell corrected", rep)
	}
	// The laundering write: host rewrites the row with zeros. With repair
	// off this folds the phantom delta and corrupts silently; with
	// verify+spare the read-back sees the defect win, retires the cell,
	// rebuilds the block's checks, and the write lands clean.
	zeros := bitmat.NewVec(45)
	r.golden.LoadRow(7, zeros)
	if err := r.faulty.LoadRow(7, zeros); err != nil {
		t.Fatalf("write-verify retirement within budget should succeed: %v", err)
	}
	// Round 2: where the unrepaired machine adjudicated SilentCorruption,
	// the self-healing machine adjudicates Repaired.
	rep = r.Round()
	if rep.Counts[SilentCorruption] != 0 {
		t.Fatalf("round 2 %+v: silent corruption with repair active", rep.Counts)
	}
	if rep.Counts[Repaired] != 1 {
		t.Fatalf("round 2 %+v, want the laundered cell repaired", rep.Counts)
	}
	tl := r.Tally()
	if tl.CellsRetired != 1 || tl.VerifyMismatches == 0 {
		t.Fatalf("tally %+v, want 1 retirement from ≥1 verify mismatch", tl)
	}
	if !tl.Conformant() {
		t.Fatalf("repaired campaign not conformant: %+v", tl)
	}
}

// TestStuckLaunderingDetectedByVerifyOnly: without spares the laundered
// write cannot be healed, but verify still closes the silent hole twice
// over — the write returns an explicit VerifyError, and the pre-write
// metadata sync keeps the checks honest about the defect, so the next
// scrub corrects it like any visible error instead of being misled by a
// laundered image.
func TestStuckLaunderingDetectedByVerifyOnly(t *testing.T) {
	r := newRunner(t, Config{
		Machine: repairMachine(repair.Verify, 0), Verify: true, Loads: -1,
		Model: fixedFaults{[]faults.Fault{{Kind: faults.Stuck1, Row: 7, Col: 9, Span: 1}}},
	}, 3)
	if rep := r.Round(); rep.Counts[Corrected] != 1 {
		t.Fatalf("round 1 %+v, want the stuck cell corrected", rep)
	}
	zeros := bitmat.NewVec(45)
	r.golden.LoadRow(7, zeros)
	err := r.faulty.LoadRow(7, zeros)
	var ve *machine.VerifyError
	if !errors.As(err, &ve) || ve.Row != 7 || len(ve.Cols) != 1 || ve.Cols[0] != 9 {
		t.Fatalf("laundering write err = %v, want VerifyError{Row:7, Cols:[9]}", err)
	}
	rep := r.Round()
	if rep.Counts[SilentCorruption] != 0 {
		t.Fatalf("round 2 %+v: reported mismatch still counted silent", rep.Counts)
	}
	if rep.Counts[Corrected] != 1 {
		t.Fatalf("round 2 %+v, want the un-laundered defect scrub-corrected", rep.Counts)
	}
	tl := r.Tally()
	if tl.CellsRetired != 0 {
		t.Fatalf("verify-only policy retired a cell: %+v", tl)
	}
	if tl.VerifyMismatches == 0 {
		t.Fatalf("no verify mismatch tallied: %+v", tl)
	}
}

// TestRepairSoakSilentZero soaks the randomized stuck campaign — the
// workload whose laundering writes produce silent corruption with repair
// off — and pins that verify+spare drives silent corruptions to zero
// while actually exercising the retirement path (seeded, deterministic).
func TestRepairSoakSilentZero(t *testing.T) {
	r := newRunner(t, Config{
		Machine: repairMachine(repair.VerifySpare, 8), Verify: true,
		Model: fixedFaults{[]faults.Fault{{Kind: faults.Stuck1, Row: 7, Col: 9, Span: 1}}},
	}, 5)
	for i := 0; i < 60; i++ {
		r.Round()
	}
	tl := r.Tally()
	if tl.Counts[SilentCorruption] != 0 || tl.Counts[Miscorrected] != 0 {
		t.Fatalf("soak with repair on: %+v", tl.Counts)
	}
	if tl.CellsRetired == 0 {
		t.Fatalf("soak never exercised retirement (reseed?): %+v", tl)
	}
	if tl.Counts[Repaired] == 0 {
		t.Fatalf("retirements never adjudicated repaired: %+v", tl.Counts)
	}
	if tl.RefMismatches != 0 {
		t.Fatalf("reference decoder disagreed under repair: %+v", tl)
	}
}

// TestRepairOffTallyUnchanged pins byte-identity of the default path: with
// the zero repair config the repair tallies stay zero and the outcome
// counts of the stuck campaign match the unrepaired engine exactly.
func TestRepairOffTallyUnchanged(t *testing.T) {
	run := func(mcfg machine.Config) Tally {
		r := newRunner(t, Config{
			Machine: mcfg, Verify: true,
			Model: fixedFaults{[]faults.Fault{{Kind: faults.Stuck1, Row: 7, Col: 9, Span: 1}}},
		}, 5)
		for i := 0; i < 30; i++ {
			r.Round()
		}
		return r.Tally()
	}
	base := run(testMachine)
	off := run(repairMachine(repair.Off, 0))
	if !tallyEqual(base, off) {
		t.Fatalf("repair-off tally diverged:\n  base: %+v\n  off:  %+v", base, off)
	}
	if off.VerifyMismatches != 0 || off.CellsRetired != 0 || off.SparesExhausted != 0 {
		t.Fatalf("repair-off produced repair activity: %+v", off)
	}
	if off.Counts[Repaired] != 0 {
		t.Fatalf("repair-off adjudicated repaired: %+v", off.Counts)
	}
}

// tallyEqual compares tallies field-wise including position histograms
// (Tally contains slices, so == only works when they are nil).
func tallyEqual(a, b Tally) bool {
	if a.Rounds != b.Rounds || a.Injected != b.Injected || a.Counts != b.Counts ||
		a.ByKind != b.ByKind || a.M != b.M || a.RefChecks != b.RefChecks ||
		a.RefMismatches != b.RefMismatches || a.VerifyMismatches != b.VerifyMismatches ||
		a.CellsRetired != b.CellsRetired || a.SparesExhausted != b.SparesExhausted {
		return false
	}
	for o := range a.Positions {
		x, y := a.Positions[o], b.Positions[o]
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
	}
	return true
}
