package campaign

// The clustered-fault story of the interleaved diagonal family, pinned as
// exact tallies: striping k independent diagonal codes across the columns
// turns a k-cell line burst into k single errors — one per sub-code — so
// the interleaved scheme corrects what the plain diagonal code can only
// detect. The DEC word code's double-correction guarantee is pinned the
// same way.

import (
	"testing"

	"repro/internal/ecc"
	"repro/internal/faults"
	"repro/internal/machine"
)

// clusterMachineCfg is a 60×60 geometry every registered scheme accepts
// (60 is divisible by the x2/x4 interleave widths).
func clusterMachineCfg(scheme string) machine.Config {
	return machine.Config{N: 60, M: 15, K: 2, ECCEnabled: true, Scheme: scheme}
}

// TestInterleavedLineClusterCorrected: a span-4 burst lands one flip in
// each of diagonal-x4's four sub-codes, so all four cells are corrected —
// along rows and along columns alike — with full bit-serial reference
// agreement. This is the acceptance scenario the interleaved family
// exists for.
func TestInterleavedLineClusterCorrected(t *testing.T) {
	bursts := []faults.Fault{
		{Kind: faults.RowLine, Row: 7, Col: 16, Span: 4},
		{Kind: faults.ColLine, Row: 16, Col: 7, Span: 4},
		{Kind: faults.RowLine, Row: 59, Col: 56, Span: 4}, // last block, edge
	}
	for _, burst := range bursts {
		r := newRunner(t, Config{
			Machine: clusterMachineCfg("diagonal-x4"), Verify: true,
			Model: fixedFaults{[]faults.Fault{burst}},
		}, 3)
		for round := 0; round < 5; round++ {
			rep := r.Round()
			if rep.Injected != 4 || rep.Counts[Corrected] != 4 {
				t.Fatalf("burst %+v round %d: %+v, want all 4 cells corrected", burst, round, rep)
			}
		}
		tl := r.Tally()
		if !tl.Conformant() || tl.RefChecks == 0 {
			t.Fatalf("burst %+v: tally not conformant: %+v", burst, tl)
		}
	}
}

// TestPlainDiagonalLineClusterDetected: the same span-4 burst overwhelms
// the plain diagonal code — four errors in one block decode to a single
// uncorrectable verdict, so every cell lands in detected-uncorrectable.
// Honest, but the head-to-head motivation for interleaving.
func TestPlainDiagonalLineClusterDetected(t *testing.T) {
	r := newRunner(t, Config{
		Machine: clusterMachineCfg(ecc.SchemeDiagonal), Verify: true,
		Model: fixedFaults{[]faults.Fault{
			{Kind: faults.RowLine, Row: 7, Col: 16, Span: 4},
		}},
	}, 3)
	for round := 0; round < 5; round++ {
		rep := r.Round()
		if rep.Injected != 4 || rep.Counts[DetectedUncorrectable] != 4 {
			t.Fatalf("round %d: %+v, want all 4 cells detected-uncorrectable", round, rep)
		}
	}
	tl := r.Tally()
	if !tl.Conformant() || tl.Counts[Corrected] != 0 {
		t.Fatalf("plain diagonal burst campaign: %+v", tl)
	}
}

// TestInterleavedX2SplitsPairs: at k=2, a span-2 burst splits into two
// corrected singles, while a span-4 burst puts two errors into each
// sub-code and is detected, never miscorrected.
func TestInterleavedX2SplitsPairs(t *testing.T) {
	r := newRunner(t, Config{
		Machine: clusterMachineCfg("diagonal-x2"), Verify: true,
		Model:   fixedFaults{[]faults.Fault{{Kind: faults.RowLine, Row: 20, Col: 30, Span: 2}}},
	}, 5)
	rep := r.Round()
	if rep.Injected != 2 || rep.Counts[Corrected] != 2 {
		t.Fatalf("span-2 at k=2: %+v, want 2 corrected", rep)
	}

	r = newRunner(t, Config{
		Machine: clusterMachineCfg("diagonal-x2"), Verify: true,
		Model:   fixedFaults{[]faults.Fault{{Kind: faults.RowLine, Row: 20, Col: 30, Span: 4}}},
	}, 5)
	rep = r.Round()
	if rep.Injected != 4 || rep.Counts[DetectedUncorrectable] != 4 {
		t.Fatalf("span-4 at k=2: %+v, want 4 detected-uncorrectable", rep)
	}
	if tl := r.Tally(); !tl.Conformant() {
		t.Fatalf("x2 overload campaign: %+v", tl)
	}
}

// TestDECDoubleCorrected: the DEC word code repairs any two flips in one
// word — the budget neither the diagonal family nor SEC-DED Hamming has —
// and flags triples uncorrectable without ever acting on them.
func TestDECDoubleCorrected(t *testing.T) {
	r := newRunner(t, Config{
		Machine: clusterMachineCfg(ecc.SchemeDEC), Verify: true,
		Model: fixedFaults{[]faults.Fault{
			{Kind: faults.TransientFlip, Row: 8, Col: 16, Span: 1},
			{Kind: faults.TransientFlip, Row: 8, Col: 22, Span: 1}, // same word
		}},
	}, 4)
	for round := 0; round < 5; round++ {
		rep := r.Round()
		if rep.Injected != 2 || rep.Counts[Corrected] != 2 {
			t.Fatalf("same-word double round %d: %+v, want both corrected", round, rep)
		}
	}
	if tl := r.Tally(); !tl.Conformant() || tl.RefChecks == 0 {
		t.Fatalf("dec double campaign: %+v", tl)
	}

	r = newRunner(t, Config{
		Machine: clusterMachineCfg(ecc.SchemeDEC), Verify: true,
		Model: fixedFaults{[]faults.Fault{
			{Kind: faults.TransientFlip, Row: 8, Col: 16, Span: 1},
			{Kind: faults.TransientFlip, Row: 8, Col: 22, Span: 1},
			{Kind: faults.TransientFlip, Row: 8, Col: 27, Span: 1},
		}},
	}, 4)
	for round := 0; round < 5; round++ {
		rep := r.Round()
		if rep.Injected != 3 || rep.Counts[DetectedUncorrectable] != 3 {
			t.Fatalf("triple round %d: %+v, want 3 detected-uncorrectable", round, rep)
		}
	}
	if tl := r.Tally(); !tl.Conformant() {
		t.Fatalf("dec triple campaign: %+v", tl)
	}
}

// TestNewSchemeTransientCampaignsConformant: randomized transient
// campaigns under both new families stay free of silent corruption and
// miscorrection, with the production decoders in full agreement with
// their bit-serial references.
func TestNewSchemeTransientCampaignsConformant(t *testing.T) {
	for _, scheme := range []string{"diagonal-x4", ecc.SchemeDEC} {
		r := newRunner(t, Config{
			Machine: clusterMachineCfg(scheme), Verify: true,
			Model: faults.Transient{SER: 1e-3}, Hours: 1e9,
		}, 11)
		for round := 0; round < 25; round++ {
			r.Round()
		}
		tl := r.Tally()
		if tl.Injected == 0 || tl.RefChecks == 0 {
			t.Fatalf("%s: vacuous campaign: %+v", scheme, tl)
		}
		if !tl.Conformant() {
			t.Fatalf("%s campaign regressed: %+v", scheme, tl)
		}
		if tl.Counts[Corrected] == 0 {
			t.Fatalf("%s: campaign never exercised correction: %+v", scheme, tl)
		}
	}
}
