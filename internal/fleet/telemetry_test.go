package fleet

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/mmpu"
	"repro/internal/telemetry"
)

// telemetrySnapshotJSON runs an ECC-active scenario over a 32-bank fleet
// with the given worker count and renders the telemetry snapshot.
func telemetrySnapshotJSON(t *testing.T, workers int, w Workload) []byte {
	t.Helper()
	reg := telemetry.New()
	cfg := Config{
		Org: mmpu.Custom(45, 32, 1), M: 15, K: 2, ECCEnabled: true,
		Workers: workers, Seed: 42, Telemetry: reg,
	}
	if _, err := Run(cfg, w); err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestTelemetrySnapshotWorkerInvariant extends the fleet's determinism
// contract to the telemetry layer: because every series update commutes
// (atomic counter adds, histogram bucket increments), one shared
// registry yields a byte-identical snapshot at any worker count — the
// same property Result already guarantees for the report.
func TestTelemetrySnapshotWorkerInvariant(t *testing.T) {
	scenarios := []Workload{
		MixedScrub{Rounds: 2, SIMDPerRound: 1},
		FaultStorm{Bursts: 2, SER: 1e6, Hours: 1},
		Campaign{Rounds: 2, Model: "transient", SER: 1e-3, Hours: 1e9},
	}
	for _, w := range scenarios {
		t.Run(w.Name(), func(t *testing.T) {
			ref := telemetrySnapshotJSON(t, 1, w)
			for _, workers := range []int{8, 32} {
				if got := telemetrySnapshotJSON(t, workers, w); !bytes.Equal(ref, got) {
					t.Fatalf("telemetry snapshot diverged at workers=%d:\n1:  %s\n%d: %s",
						workers, ref, workers, got)
				}
			}
		})
	}
}

// TestTelemetrySeriesMatchResult cross-checks the live series against the
// Result the same run reports: the counters are a second, independently
// accumulated account of the identical work, so any disagreement means an
// instrumentation point is missing or double-counted.
func TestTelemetrySeriesMatchResult(t *testing.T) {
	reg := telemetry.New()
	cfg := Config{
		Org: testOrg(), M: 15, K: 2, ECCEnabled: true,
		Workers: 3, Seed: 42, Telemetry: reg,
	}
	res, err := Run(cfg, MixedScrub{Rounds: 2, SIMDPerRound: 1})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	checks := []struct {
		key  string
		want int64
	}{
		{"fleet_scrubs_total", res.Scrubs},
		{"fleet_simd_ops_total", res.SIMDOps},
		{"fleet_corrected_total", res.Corrected},
		{"fleet_uncorrectable_total", res.Uncorrectable},
		{`ecc_critical_ops_total{scheme="diagonal"}`, int64(res.Machine.CriticalOps)},
		{`ecc_input_checks_total{scheme="diagonal"}`, int64(res.Machine.InputChecks)},
		{`ecc_corrections_total{scheme="diagonal"}`, int64(res.Machine.Corrections)},
	}
	for _, c := range checks {
		if got := snap.Counter(c.key); got != c.want {
			t.Errorf("%s = %d, want %d (from Result)", c.key, got, c.want)
		}
	}
	if jobs := snap.CounterFamily("fleet_jobs_total"); jobs != res.Jobs {
		t.Errorf("sum fleet_jobs_total = %d, want %d", jobs, res.Jobs)
	}
}
