package fleet

import (
	"strconv"

	"repro/internal/campaign"
	"repro/internal/machine"
	"repro/internal/telemetry"
)

// fleetProbes is the fleet engine's telemetry handle set. The zero value
// is the disabled layer (nil handles no-op). One set is shared by every
// shard: counter adds commute, so snapshot totals are invariant to the
// worker count — the same property Result.Merge already guarantees for
// the report, extended to the live series.
type fleetProbes struct {
	enabled bool

	jobs []*telemetry.Counter // per bank: fleet_jobs_total{bank="i"}

	simdOps       *telemetry.Counter
	loads         *telemetry.Counter
	scrubs        *telemetry.Counter
	corrected     *telemetry.Counter
	uncorrectable *telemetry.Counter
	injected      *telemetry.Counter

	campaignRounds *telemetry.Counter
	outcomes       [campaign.NumOutcomes]*telemetry.Counter
}

// fleetProbesFor resolves the fleet series (nil registry resolves the
// disabled zero value).
func fleetProbesFor(reg *telemetry.Registry, banks int) fleetProbes {
	if reg == nil {
		return fleetProbes{}
	}
	p := fleetProbes{
		enabled:        true,
		jobs:           make([]*telemetry.Counter, banks),
		simdOps:        reg.Counter("fleet_simd_ops_total"),
		loads:          reg.Counter("fleet_loads_total"),
		scrubs:         reg.Counter("fleet_scrubs_total"),
		corrected:      reg.Counter("fleet_corrected_total"),
		uncorrectable:  reg.Counter("fleet_uncorrectable_total"),
		injected:       reg.Counter("fleet_injected_total"),
		campaignRounds: reg.Counter("campaign_rounds_total"),
	}
	for b := 0; b < banks; b++ {
		p.jobs[b] = reg.Counter("fleet_jobs_total", "bank", strconv.Itoa(b))
	}
	for o := 0; o < campaign.NumOutcomes; o++ {
		p.outcomes[o] = reg.Counter("campaign_outcomes_total", "outcome", campaign.Outcome(o).String())
	}
	return p
}

// machineTelemetry resolves the probe set a shard attaches to a lazily
// created machine: per-scheme ECC counters plus the crossbar's identity
// for event attribution. Unprotected fleets label their (all-zero)
// series scheme="none".
func machineTelemetry(reg *telemetry.Registry, cfg Config, bank, xb int) machine.Telemetry {
	if reg == nil {
		return machine.Telemetry{}
	}
	scheme := "none"
	if cfg.ECCEnabled {
		scheme = cfg.machineConfig().SchemeName()
	}
	t := machine.TelemetryFor(reg, scheme)
	t.Bank, t.Xbar = bank, xb
	return t
}
