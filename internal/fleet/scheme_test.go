package fleet

// Fleet execution with non-diagonal protection schemes: the worker-count
// determinism contract and the campaign scenario must hold unchanged when
// fleet.Config names the Hamming or parity backend.

import (
	"reflect"
	"testing"

	"repro/internal/campaign"
	"repro/internal/ecc"
	"repro/internal/mmpu"
)

// TestSchemeDeterministicAcrossWorkers: the Hamming-backed campaign
// scenario yields an identical Result at every worker count.
func TestSchemeDeterministicAcrossWorkers(t *testing.T) {
	w := Campaign{Rounds: 3, Model: "transient", SER: 1e5}
	cfg := testCfg(1)
	cfg.Scheme = ecc.SchemeHamming
	ref, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Campaign.Injected == 0 {
		t.Fatalf("vacuous campaign: %+v", ref.Campaign)
	}
	for _, workers := range []int{2, 3, 7} {
		cfg := testCfg(workers)
		cfg.Scheme = ecc.SchemeHamming
		got, err := Run(cfg, w)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("workers=%d diverged:\n  1: %+v\n  %d: %+v", workers, ref, workers, got)
		}
	}
}

// TestSchemeCampaignOutcomes: fleet-wide transient campaigns per scheme —
// hamming corrects and never miscorrects; parity detects and never
// corrects; both agree with their bit-serial references.
func TestSchemeCampaignOutcomes(t *testing.T) {
	for _, scheme := range []string{ecc.SchemeHamming, ecc.SchemeParity} {
		cfg := testCfg(2)
		cfg.Scheme = scheme
		res, err := Run(cfg, Campaign{Rounds: 4, Model: "transient", SER: 1e5})
		if err != nil {
			t.Fatal(err)
		}
		tl := res.Campaign
		if tl.Injected == 0 || tl.RefChecks == 0 {
			t.Fatalf("%s: vacuous campaign %+v", scheme, tl)
		}
		if tl.RefMismatches != 0 || tl.Counts[campaign.Miscorrected] != 0 {
			t.Fatalf("%s: miscorrection or reference mismatch: %+v", scheme, tl)
		}
		switch scheme {
		case ecc.SchemeHamming:
			if tl.Counts[campaign.Corrected] == 0 {
				t.Fatalf("hamming never corrected: %+v", tl)
			}
		case ecc.SchemeParity:
			if tl.Counts[campaign.Corrected] != 0 {
				t.Fatalf("parity claims corrections: %+v", tl)
			}
			if tl.Counts[campaign.DetectedUncorrectable] == 0 {
				t.Fatalf("parity never detected: %+v", tl)
			}
		}
	}
}

// TestNewSchemeDeterministicAcrossWorkers: the DEC and interleaved
// campaigns yield identical results at 1, 8, and 32 workers on a
// geometry every scheme accepts (60 is divisible by the interleave
// widths) — the merge contract extended to the new families.
func TestNewSchemeDeterministicAcrossWorkers(t *testing.T) {
	for _, scheme := range []string{ecc.SchemeDEC, "diagonal-x4"} {
		w := Campaign{Rounds: 3, Model: "transient", SER: 1e5}
		cfg := newSchemeCfg(scheme, 1)
		ref, err := Run(cfg, w)
		if err != nil {
			t.Fatal(err)
		}
		if ref.Campaign.Injected == 0 {
			t.Fatalf("%s: vacuous campaign: %+v", scheme, ref.Campaign)
		}
		if ref.Campaign.Counts[campaign.Miscorrected] != 0 ||
			ref.Campaign.Counts[campaign.SilentCorruption] != 0 {
			t.Fatalf("%s: non-conformant fleet campaign: %+v", scheme, ref.Campaign)
		}
		for _, workers := range []int{8, 32} {
			got, err := Run(newSchemeCfg(scheme, workers), w)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ref, got) {
				t.Fatalf("%s workers=%d diverged:\n  1: %+v\n  %d: %+v", scheme, workers, ref, workers, got)
			}
		}
	}
}

// newSchemeCfg sizes a fleet of 60×60 crossbars for the schemes the
// 45×45 default geometry rejects.
func newSchemeCfg(scheme string, workers int) Config {
	return Config{
		Org: mmpu.Custom(60, 4, 2), M: 15, K: 2, ECCEnabled: true,
		Scheme: scheme, Workers: workers, Seed: 42,
	}
}

// TestSchemeMixedScrubRuns: the non-campaign scenarios (SIMD + scrub)
// execute cleanly on a Hamming-protected fleet.
func TestSchemeMixedScrubRuns(t *testing.T) {
	cfg := testCfg(3)
	cfg.Scheme = ecc.SchemeHamming
	res, err := Run(cfg, MixedScrub{Rounds: 1, SIMDPerRound: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.SIMDOps == 0 || res.Scrubs == 0 {
		t.Fatalf("mixedscrub inert: %+v", res)
	}
	// No faults were injected, so the scrubs must stay silent.
	if res.Corrected != 0 || res.Uncorrectable != 0 {
		t.Fatalf("phantom ECC activity: %+v", res)
	}
}
