package fleet

import (
	"repro/internal/campaign"
	"repro/internal/machine"
)

// BankTally is the per-bank slice of a fleet result, letting skewed
// scenarios (hot-bank traffic, localized fault storms) show where the
// activity and the ECC work actually landed.
type BankTally struct {
	Jobs          int64
	Ops           int64
	Injected      int64
	Corrected     int64
	Uncorrectable int64
}

// Add returns the field-wise sum of two tallies.
func (t BankTally) Add(o BankTally) BankTally {
	return BankTally{
		Jobs:          t.Jobs + o.Jobs,
		Ops:           t.Ops + o.Ops,
		Injected:      t.Injected + o.Injected,
		Corrected:     t.Corrected + o.Corrected,
		Uncorrectable: t.Uncorrectable + o.Uncorrectable,
	}
}

// Result aggregates a fleet run. Every field is a pure function of the
// organization, scenario, and seed — never of scheduling — so runs with
// different worker counts produce identical Results. Wall-clock timing is
// deliberately excluded; measure it around Run.
type Result struct {
	Scenario string

	Jobs int64 // jobs executed
	Ops  int64 // total ops across all jobs

	SIMDOps        int64 // SIMD executions
	Scrubs         int64 // periodic full-crossbar checks
	Loads          int64 // row loads through the write path
	FaultBursts    int64 // soft-error exposure windows
	CampaignRounds int64 // fault-campaign conformance rounds

	Injected      int64 // soft errors injected by fault bursts and campaigns
	Corrected     int64 // corrections applied by scrubs / adjudicated corrected
	Uncorrectable int64 // uncorrectable blocks flagged / adjudicated detected-uncorrectable

	// CrossbarsTouched counts distinct crossbars that executed at least
	// one job within one Run (shards own disjoint crossbar sets). Merging
	// results of separate Runs sums the counts — over repeated passes it
	// reads as crossbar-activations, not distinct crossbars.
	CrossbarsTouched int

	Machine  machine.Stats  // merged per-machine statistics
	Campaign campaign.Tally // merged fault-campaign adjudications
	PerBank  []BankTally    // indexed by bank
}

// Merge combines two results field-wise. Merge is commutative and
// associative (per-bank slices align by index), so shard aggregation order
// does not affect the outcome.
func (r Result) Merge(o Result) Result {
	m := Result{
		Scenario:         r.Scenario,
		Jobs:             r.Jobs + o.Jobs,
		Ops:              r.Ops + o.Ops,
		SIMDOps:          r.SIMDOps + o.SIMDOps,
		Scrubs:           r.Scrubs + o.Scrubs,
		Loads:            r.Loads + o.Loads,
		FaultBursts:      r.FaultBursts + o.FaultBursts,
		CampaignRounds:   r.CampaignRounds + o.CampaignRounds,
		Injected:         r.Injected + o.Injected,
		Corrected:        r.Corrected + o.Corrected,
		Uncorrectable:    r.Uncorrectable + o.Uncorrectable,
		CrossbarsTouched: r.CrossbarsTouched + o.CrossbarsTouched,
		Machine:          r.Machine.Add(o.Machine),
		Campaign:         r.Campaign.Add(o.Campaign),
	}
	if m.Scenario == "" {
		m.Scenario = o.Scenario
	}
	n := len(r.PerBank)
	if len(o.PerBank) > n {
		n = len(o.PerBank)
	}
	if n > 0 {
		m.PerBank = make([]BankTally, n)
		copy(m.PerBank, r.PerBank)
		for i, t := range o.PerBank {
			m.PerBank[i] = m.PerBank[i].Add(t)
		}
	}
	return m
}
