package fleet

import (
	"fmt"
	"math/rand"

	"repro/internal/mmpu"
)

// OpKind enumerates the primitive operations a fleet job can issue against
// one crossbar.
type OpKind int

const (
	// OpSIMD executes the run's SIMPLER-mapped kernel across all rows of
	// the crossbar (MAGIC row parallelism), with the ECC input-check and
	// critical-operation protocol when protection is on.
	OpSIMD OpKind = iota
	// OpScrub runs the periodic full-crossbar ECC check.
	OpScrub
	// OpLoad writes one pseudo-random row through the controller write
	// path (check bits maintained along the write).
	OpLoad
	// OpFaultBurst exposes the crossbar to soft errors at an elevated SER
	// for a window of time.
	OpFaultBurst
)

// Op is one primitive operation.
type Op struct {
	Kind  OpKind
	Row   int     // OpLoad: target row (taken modulo the crossbar side)
	SER   float64 // OpFaultBurst: rate during the burst [FIT/bit]
	Hours float64 // OpFaultBurst: exposure window length
}

// Job is a batch of ops bound for one crossbar. Jobs addressed to the same
// crossbar execute in plan order; jobs addressed to different crossbars may
// run concurrently.
type Job struct {
	Bank, Crossbar int
	Ops            []Op
}

// Workload produces the deterministic job stream of a scenario. Plan must
// be a pure function of the organization and seed — the engine replays the
// same plan across any worker count and demands identical Results.
type Workload interface {
	Name() string
	Plan(org mmpu.Organization, seed int64) []Job
}

// --- built-in scenarios ------------------------------------------------------

// Uniform streams the same number of SIMD executions to every crossbar —
// the evenly-loaded memory every scaling estimate assumes.
type Uniform struct {
	OpsPerCrossbar int // default 1
}

// Name implements Workload.
func (u Uniform) Name() string { return "uniform" }

// Plan implements Workload.
func (u Uniform) Plan(org mmpu.Organization, seed int64) []Job {
	per := u.OpsPerCrossbar
	if per <= 0 {
		per = 1
	}
	jobs := make([]Job, 0, org.Crossbars())
	org.ForEachCrossbar(func(bank, xb int) {
		ops := make([]Op, per)
		for i := range ops {
			ops[i] = Op{Kind: OpSIMD}
		}
		jobs = append(jobs, Job{Bank: bank, Crossbar: xb, Ops: ops})
	})
	return jobs
}

// HotBank draws each job's bank from a Zipfian distribution, concentrating
// traffic on a few hot banks — the skewed access pattern under which
// reliability-mechanism overheads stop hiding behind idle banks.
type HotBank struct {
	Jobs      int     // total jobs (default: 4 per crossbar)
	OpsPerJob int     // SIMD ops per job (default 1)
	Skew      float64 // Zipf exponent s > 1 (default 1.5)
}

// Name implements Workload.
func (h HotBank) Name() string { return "hotbank" }

// Plan implements Workload.
func (h HotBank) Plan(org mmpu.Organization, seed int64) []Job {
	total := h.Jobs
	if total <= 0 {
		total = 4 * org.Crossbars()
	}
	per := h.OpsPerJob
	if per <= 0 {
		per = 1
	}
	s := h.Skew
	if s <= 1 {
		s = 1.5
	}
	rng := rand.New(rand.NewSource(seed))
	var zipf *rand.Zipf
	if org.Banks > 1 {
		zipf = rand.NewZipf(rng, s, 1, uint64(org.Banks-1))
	}
	jobs := make([]Job, 0, total)
	for j := 0; j < total; j++ {
		bank := 0
		if zipf != nil {
			bank = int(zipf.Uint64())
		}
		xb := rng.Intn(org.PerBank)
		ops := make([]Op, per)
		for i := range ops {
			ops[i] = Op{Kind: OpSIMD}
		}
		jobs = append(jobs, Job{Bank: bank, Crossbar: xb, Ops: ops})
	}
	return jobs
}

// MixedScrub interleaves compute with the periodic scrub on every crossbar:
// each round loads a fresh row, executes SIMD work, then runs the check —
// the steady-state duty cycle of a protected memory.
type MixedScrub struct {
	Rounds       int // rounds per crossbar (default 1)
	SIMDPerRound int // SIMD ops per round (default 2)
}

// Name implements Workload.
func (ms MixedScrub) Name() string { return "mixedscrub" }

// Plan implements Workload.
func (ms MixedScrub) Plan(org mmpu.Organization, seed int64) []Job {
	rounds := ms.Rounds
	if rounds <= 0 {
		rounds = 1
	}
	per := ms.SIMDPerRound
	if per <= 0 {
		per = 2
	}
	jobs := make([]Job, 0, org.Crossbars()*rounds)
	org.ForEachCrossbar(func(bank, xb int) {
		for r := 0; r < rounds; r++ {
			ops := make([]Op, 0, per+2)
			ops = append(ops, Op{Kind: OpLoad, Row: r})
			for i := 0; i < per; i++ {
				ops = append(ops, Op{Kind: OpSIMD})
			}
			ops = append(ops, Op{Kind: OpScrub})
			jobs = append(jobs, Job{Bank: bank, Crossbar: xb, Ops: ops})
		}
	})
	return jobs
}

// FaultStorm exposes every crossbar to bursts of a strongly elevated SER,
// each followed by a scrub — the stress regime that drives the correction
// and uncorrectable counters the Fig 6 reliability model reasons about.
// Injection randomness is drawn per crossbar from seeds derived with
// faults.DeriveSeed, so the storm replays exactly under any worker count.
type FaultStorm struct {
	Bursts int     // bursts per crossbar (default 1)
	SER    float64 // burst rate [FIT/bit] (default 1e6 — an accelerated test)
	Hours  float64 // exposure per burst (default 1h)
}

// Name implements Workload.
func (fs FaultStorm) Name() string { return "faultstorm" }

// Plan implements Workload.
func (fs FaultStorm) Plan(org mmpu.Organization, seed int64) []Job {
	bursts := fs.Bursts
	if bursts <= 0 {
		bursts = 1
	}
	ser := fs.SER
	if ser <= 0 {
		ser = 1e6
	}
	hours := fs.Hours
	if hours <= 0 {
		hours = 1
	}
	jobs := make([]Job, 0, org.Crossbars())
	org.ForEachCrossbar(func(bank, xb int) {
		ops := make([]Op, 0, 2*bursts)
		for b := 0; b < bursts; b++ {
			ops = append(ops,
				Op{Kind: OpFaultBurst, SER: ser, Hours: hours},
				Op{Kind: OpScrub})
		}
		jobs = append(jobs, Job{Bank: bank, Crossbar: xb, Ops: ops})
	})
	return jobs
}

// ScenarioNames lists the built-in scenarios for CLI usage text.
func ScenarioNames() []string {
	return []string{"uniform", "hotbank", "mixedscrub", "faultstorm"}
}

// ScenarioByName returns a built-in scenario sized by an intensity knob:
// SIMD ops per crossbar for uniform, total jobs for hotbank, rounds per
// crossbar for mixedscrub (each round is one load, SIMDPerRound SIMD ops,
// and one scrub), bursts per crossbar for faultstorm. Zero picks each
// scenario's default.
func ScenarioByName(name string, intensity int) (Workload, error) {
	switch name {
	case "uniform":
		return Uniform{OpsPerCrossbar: intensity}, nil
	case "hotbank":
		return HotBank{Jobs: intensity}, nil
	case "mixedscrub":
		return MixedScrub{Rounds: intensity}, nil
	case "faultstorm":
		return FaultStorm{Bursts: intensity}, nil
	}
	return nil, fmt.Errorf("fleet: unknown scenario %q (have %v)", name, ScenarioNames())
}
