package fleet

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/faults"
	"repro/internal/mmpu"
)

// OpKind enumerates the primitive operations a fleet job can issue against
// one crossbar.
type OpKind int

const (
	// OpSIMD executes the run's SIMPLER-mapped kernel across all rows of
	// the crossbar (MAGIC row parallelism), with the ECC input-check and
	// critical-operation protocol when protection is on.
	OpSIMD OpKind = iota
	// OpScrub runs the periodic full-crossbar ECC check.
	OpScrub
	// OpLoad writes one pseudo-random row through the controller write
	// path (check bits maintained along the write).
	OpLoad
	// OpFaultBurst exposes the crossbar to soft errors at an elevated SER
	// for a window of time.
	OpFaultBurst
	// OpCampaign runs one fault-campaign conformance round
	// (internal/campaign): inject per a named fault model, scrub, and
	// adjudicate every fault against a golden reference machine.
	OpCampaign
)

// Op is one primitive operation.
type Op struct {
	Kind  OpKind
	Row   int     // OpLoad: target row (taken modulo the crossbar side)
	SER   float64 // OpFaultBurst/OpCampaign: injection rate [FIT/bit or FIT/line]
	Hours float64 // OpFaultBurst/OpCampaign: exposure window length
	Model string  // OpCampaign: fault model name (faults.ModelByName)
}

// Campaign ops carry the model spec on every op, but a crossbar's campaign
// runner (and its persistent defect state) is seeded once from the first
// such op — Run rejects plans that change a crossbar's (Model, SER, Hours)
// spec mid-run rather than silently ignoring the change.

// Job is a batch of ops bound for one crossbar. Jobs addressed to the same
// crossbar execute in plan order; jobs addressed to different crossbars may
// run concurrently.
type Job struct {
	Bank, Crossbar int
	Ops            []Op
}

// Workload produces the deterministic job stream of a scenario. Plan must
// be a pure function of the organization and seed — the engine replays the
// same plan across any worker count and demands identical Results.
type Workload interface {
	Name() string
	Plan(org mmpu.Organization, seed int64) []Job
}

// --- built-in scenarios ------------------------------------------------------

// Uniform streams the same number of SIMD executions to every crossbar —
// the evenly-loaded memory every scaling estimate assumes.
type Uniform struct {
	OpsPerCrossbar int // default 1
}

// Name implements Workload.
func (u Uniform) Name() string { return "uniform" }

// Plan implements Workload.
func (u Uniform) Plan(org mmpu.Organization, seed int64) []Job {
	per := u.OpsPerCrossbar
	if per <= 0 {
		per = 1
	}
	jobs := make([]Job, 0, org.Crossbars())
	org.ForEachCrossbar(func(bank, xb int) {
		ops := make([]Op, per)
		for i := range ops {
			ops[i] = Op{Kind: OpSIMD}
		}
		jobs = append(jobs, Job{Bank: bank, Crossbar: xb, Ops: ops})
	})
	return jobs
}

// HotBank draws each job's bank from a Zipfian distribution, concentrating
// traffic on a few hot banks — the skewed access pattern under which
// reliability-mechanism overheads stop hiding behind idle banks.
type HotBank struct {
	Jobs      int     // total jobs (default: 4 per crossbar)
	OpsPerJob int     // SIMD ops per job (default 1)
	Skew      float64 // Zipf exponent s > 1 (default 1.5)
}

// Name implements Workload.
func (h HotBank) Name() string { return "hotbank" }

// Plan implements Workload.
func (h HotBank) Plan(org mmpu.Organization, seed int64) []Job {
	total := h.Jobs
	if total <= 0 {
		total = 4 * org.Crossbars()
	}
	per := h.OpsPerJob
	if per <= 0 {
		per = 1
	}
	s := h.Skew
	if s <= 1 {
		s = 1.5
	}
	rng := rand.New(rand.NewSource(seed))
	var zipf *rand.Zipf
	if org.Banks > 1 {
		zipf = rand.NewZipf(rng, s, 1, uint64(org.Banks-1))
	}
	jobs := make([]Job, 0, total)
	for j := 0; j < total; j++ {
		bank := 0
		if zipf != nil {
			bank = int(zipf.Uint64())
		}
		xb := rng.Intn(org.PerBank)
		ops := make([]Op, per)
		for i := range ops {
			ops[i] = Op{Kind: OpSIMD}
		}
		jobs = append(jobs, Job{Bank: bank, Crossbar: xb, Ops: ops})
	}
	return jobs
}

// MixedScrub interleaves compute with the periodic scrub on every crossbar:
// each round loads a fresh row, executes SIMD work, then runs the check —
// the steady-state duty cycle of a protected memory.
type MixedScrub struct {
	Rounds       int // rounds per crossbar (default 1)
	SIMDPerRound int // SIMD ops per round (default 2)
}

// Name implements Workload.
func (ms MixedScrub) Name() string { return "mixedscrub" }

// Plan implements Workload.
func (ms MixedScrub) Plan(org mmpu.Organization, seed int64) []Job {
	rounds := ms.Rounds
	if rounds <= 0 {
		rounds = 1
	}
	per := ms.SIMDPerRound
	if per <= 0 {
		per = 2
	}
	jobs := make([]Job, 0, org.Crossbars()*rounds)
	org.ForEachCrossbar(func(bank, xb int) {
		for r := 0; r < rounds; r++ {
			ops := make([]Op, 0, per+2)
			ops = append(ops, Op{Kind: OpLoad, Row: r})
			for i := 0; i < per; i++ {
				ops = append(ops, Op{Kind: OpSIMD})
			}
			ops = append(ops, Op{Kind: OpScrub})
			jobs = append(jobs, Job{Bank: bank, Crossbar: xb, Ops: ops})
		}
	})
	return jobs
}

// FaultStorm exposes every crossbar to bursts of a strongly elevated SER,
// each followed by a scrub — the stress regime that drives the correction
// and uncorrectable counters the Fig 6 reliability model reasons about.
// Injection randomness is drawn per crossbar from seeds derived with
// faults.DeriveSeed, so the storm replays exactly under any worker count.
type FaultStorm struct {
	Bursts int     // bursts per crossbar (default 1)
	SER    float64 // burst rate [FIT/bit] (default 1e6 — an accelerated test)
	Hours  float64 // exposure per burst (default 1h)
}

// Name implements Workload.
func (fs FaultStorm) Name() string { return "faultstorm" }

// Plan implements Workload.
func (fs FaultStorm) Plan(org mmpu.Organization, seed int64) []Job {
	bursts := fs.Bursts
	if bursts <= 0 {
		bursts = 1
	}
	ser := fs.SER
	if ser <= 0 {
		ser = 1e6
	}
	hours := fs.Hours
	if hours <= 0 {
		hours = 1
	}
	jobs := make([]Job, 0, org.Crossbars())
	org.ForEachCrossbar(func(bank, xb int) {
		ops := make([]Op, 0, 2*bursts)
		for b := 0; b < bursts; b++ {
			ops = append(ops,
				Op{Kind: OpFaultBurst, SER: ser, Hours: hours},
				Op{Kind: OpScrub})
		}
		jobs = append(jobs, Job{Bank: bank, Crossbar: xb, Ops: ops})
	})
	return jobs
}

// Campaign is the fifth scenario family: the fault-campaign conformance
// engine run fleet-wide. Every crossbar executes Rounds independent
// inject→scrub→adjudicate trials (internal/campaign) under the named
// fault model, with per-crossbar randomness derived from faults.DeriveSeed
// so results merge identically under any worker count. Skew models
// process variation: each crossbar's exposure is scaled by a deterministic
// per-crossbar factor 2^u·Skew with u uniform on [−1,1], so some crossbars
// see up to 2^Skew times the nominal rate.
type Campaign struct {
	Rounds int     // campaign rounds per crossbar (default 2)
	Model  string  // fault model (faults.ModelByName; default "transient")
	SER    float64 // injection rate [FIT/bit, FIT/line for "lines"] (default 1e5)
	Hours  float64 // exposure per round (default 1)
	Skew   float64 // per-crossbar rate-skew exponent (0 = uniform fleet)
}

// Name implements Workload.
func (c Campaign) Name() string { return "campaign" }

// Plan implements Workload.
func (c Campaign) Plan(org mmpu.Organization, seed int64) []Job {
	rounds := c.Rounds
	if rounds <= 0 {
		rounds = 2
	}
	model := c.Model
	if model == "" {
		model = "transient"
	}
	ser := c.SER
	if ser <= 0 {
		ser = 1e5
	}
	hours := c.Hours
	if hours <= 0 {
		hours = 1
	}
	jobs := make([]Job, 0, org.Crossbars())
	org.ForEachCrossbar(func(bank, xb int) {
		h := hours
		if c.Skew > 0 {
			h *= skewFactor(seed, bank, xb, c.Skew)
		}
		ops := make([]Op, rounds)
		for i := range ops {
			ops[i] = Op{Kind: OpCampaign, Model: model, SER: ser, Hours: h}
		}
		jobs = append(jobs, Job{Bank: bank, Crossbar: xb, Ops: ops})
	})
	return jobs
}

// skewFactor derives this crossbar's exposure multiplier 2^(u·skew),
// u uniform on [−1,1] — a pure function of (seed, position), so plans stay
// reproducible.
func skewFactor(seed int64, bank, xb int, skew float64) float64 {
	u := float64(uint64(faults.DeriveSeed(seed^0x5e11, bank, xb))>>11) / (1 << 53) // [0,1)
	return math.Exp2((2*u - 1) * skew)
}

// ScenarioNames lists the built-in scenarios for CLI usage text.
func ScenarioNames() []string {
	return []string{"uniform", "hotbank", "mixedscrub", "faultstorm", "campaign"}
}

// ScenarioOptions tunes a named scenario beyond its intensity knob; zero
// values pick each scenario's defaults.
type ScenarioOptions struct {
	Intensity int     // uniform: ops/crossbar, hotbank: jobs, mixedscrub: rounds, faultstorm: bursts, campaign: rounds
	SER       float64 // faultstorm burst rate / campaign injection rate
	Hours     float64 // faultstorm/campaign exposure per burst/round
	Model     string  // campaign fault model
	Skew      float64 // campaign per-crossbar rate skew
}

// ScenarioWithOptions resolves a built-in scenario with full tuning — the
// CLI plumbing that makes fault runs reproducible from flags alone.
func ScenarioWithOptions(name string, o ScenarioOptions) (Workload, error) {
	switch name {
	case "uniform":
		return Uniform{OpsPerCrossbar: o.Intensity}, nil
	case "hotbank":
		return HotBank{Jobs: o.Intensity}, nil
	case "mixedscrub":
		return MixedScrub{Rounds: o.Intensity}, nil
	case "faultstorm":
		return FaultStorm{Bursts: o.Intensity, SER: o.SER, Hours: o.Hours}, nil
	case "campaign":
		return Campaign{Rounds: o.Intensity, Model: o.Model, SER: o.SER, Hours: o.Hours, Skew: o.Skew}, nil
	}
	return nil, fmt.Errorf("fleet: unknown scenario %q (have %v)", name, ScenarioNames())
}

// ScenarioByName returns a built-in scenario sized by an intensity knob:
// SIMD ops per crossbar for uniform, total jobs for hotbank, rounds per
// crossbar for mixedscrub (each round is one load, SIMDPerRound SIMD ops,
// and one scrub), bursts per crossbar for faultstorm, campaign rounds per
// crossbar for campaign. Zero picks each scenario's default.
func ScenarioByName(name string, intensity int) (Workload, error) {
	return ScenarioWithOptions(name, ScenarioOptions{Intensity: intensity})
}
