package fleet

import "repro/internal/telemetry"

// Hist is the mergeable log-linear latency histogram, re-homed into
// internal/telemetry (PR 6) so the fleet's shard results, the serving
// layer's latency accounting, and the metrics registry all share one
// implementation — the merge order-independence tests now live there and
// cover every consumer at once. The alias keeps fleet.Result and
// serve.Stats source-compatible.
type Hist = telemetry.Hist

// HistSummary is the report digest of a Hist (see telemetry.HistSummary).
type HistSummary = telemetry.HistSummary
