// Package fleet executes workloads across a fleet of protected crossbar
// machines organized as a full mMPU (internal/mmpu): the paper evaluates
// its diagonal-ECC mechanism at the scale of a 1GB memory built from
// thousands of n×n crossbars (Fig 6), and this package is the engine that
// actually runs multi-bank traffic against that organization.
//
// Execution is sharded per bank: banks are partitioned across workers
// (mmpu.ShardBanks), one goroutine per shard, each owning every crossbar
// of its banks — so no machine is ever shared between goroutines and no
// locking is needed. Job batches flow to shards over channels; each shard
// tallies a local Result and the engine merges them.
//
// Determinism is a hard guarantee: a Workload's plan is a pure function of
// (organization, seed), per-crossbar randomness comes from seeds derived
// with faults.DeriveSeed, jobs for one crossbar execute in plan order, and
// Result.Merge is commutative — so the same run produces an identical
// Result under any worker count.
package fleet

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/bitmat"
	"repro/internal/campaign"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/mmpu"
	"repro/internal/netlist"
	"repro/internal/repair"
	"repro/internal/synth"
	"repro/internal/telemetry"
)

// Config sizes a fleet run.
type Config struct {
	Org        mmpu.Organization
	M          int  // ECC block side
	K          int  // processing crossbars per machine
	ECCEnabled bool // false = the paper's unprotected baseline

	// Scheme selects the protection code for every machine in the fleet
	// (ecc.SchemeByName; empty = the paper's diagonal code).
	Scheme string

	// Repair is the self-healing policy applied to every machine in the
	// fleet (write-verify, spare remap, retirement); the zero value is off.
	Repair repair.Config

	Workers   int   // shard count; <=0 uses GOMAXPROCS, capped at Banks
	Seed      int64 // campaign base seed
	BatchSize int   // jobs per channel send; <=0 uses 16

	// KernelWidth selects the SIMD kernel: a ripple-carry adder of this
	// width, SIMPLER-mapped into one crossbar row. <=0 uses 8 bits (fits
	// the 45-cell minimum geometry).
	KernelWidth int

	// Telemetry, when non-nil, receives the fleet series (per-bank job
	// counters, scrub/correction/injection totals, campaign outcome
	// counters) and instruments every lazily created machine with its
	// per-scheme ECC probes. Because all updates commute, the resulting
	// snapshot — like the Result — is identical for every worker count.
	Telemetry *telemetry.Registry
}

// EffectiveWorkers resolves the shard count actually used: Workers,
// defaulted to GOMAXPROCS and capped at the bank count (a bank is never
// split across shards).
func (c Config) EffectiveWorkers() int {
	w := c.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > c.Org.Banks {
		w = c.Org.Banks
	}
	if w < 1 {
		w = 1
	}
	return w
}

// machineConfig is the per-crossbar machine geometry.
func (c Config) machineConfig() machine.Config {
	return machine.Config{N: c.Org.CrossbarN, M: c.M, K: c.K, ECCEnabled: c.ECCEnabled, Scheme: c.Scheme, Repair: c.Repair}
}

// AdderKernel builds the fleet's SIMD kernel: a width-bit ripple-carry
// adder lowered to NOR and SIMPLER-mapped into a rowSize-cell row.
func AdderKernel(width, rowSize int) (*synth.Mapping, error) {
	b := netlist.NewBuilder(fmt.Sprintf("fleetadder%d", width))
	a := b.InputBus(width)
	x := b.InputBus(width)
	carry := b.Const(false)
	for i := 0; i < width; i++ {
		axb := b.Xor(a[i], x[i])
		b.Output(b.Xor(axb, carry))
		carry = b.Or(b.And(a[i], x[i]), b.And(axb, carry))
	}
	b.Output(carry)
	return synth.Map(b.Build().LowerToNOR(), rowSize)
}

// xbarState is a worker's lazily-created per-crossbar execution state.
// The machine and the campaign runner are each created on first use, so a
// campaign-only job stream does not pay for an idle protected machine and
// vice versa.
type xbarState struct {
	bank, xb int
	m        *machine.Machine
	inj      *faults.Injector  // fault-burst stream, seeded per crossbar
	rng      *rand.Rand        // load-pattern stream, seeded per crossbar
	camp     *campaign.Runner  // fault-campaign conformance state
	tel      machine.Telemetry // attached at machine creation (zero = off)
}

// machine returns the crossbar's machine, creating it on first use. mcfg
// was validated in Run, so MustNew cannot panic here.
func (st *xbarState) machine(mcfg machine.Config) *machine.Machine {
	if st.m == nil {
		st.m = machine.MustNew(mcfg)
		st.m.Instrument(st.tel)
	}
	return st.m
}

// runner returns the crossbar's campaign runner, creating it on first use
// from the op's model spec. Model names and rates were validated in Run.
func (st *xbarState) runner(cfg Config, mcfg machine.Config, op Op) *campaign.Runner {
	if st.camp == nil {
		model, err := faults.ModelByName(op.Model, op.SER)
		if err != nil {
			panic(err)
		}
		r, err := campaign.New(campaign.Config{
			Machine: mcfg, Model: model, Hours: op.Hours, Verify: true,
		}, faults.DeriveSeed(cfg.Seed^0xca3b, st.bank, st.xb))
		if err != nil {
			panic(err)
		}
		st.camp = r
	}
	return st.camp
}

// Run executes the workload across the fleet and returns the merged
// result. With the same configuration, workload, and seed the Result is
// identical for every worker count.
func Run(cfg Config, w Workload) (Result, error) {
	if err := cfg.Org.Validate(); err != nil {
		return Result{}, err
	}
	mcfg := cfg.machineConfig()
	if err := mcfg.Validate(); err != nil {
		return Result{}, err
	}
	width := cfg.KernelWidth
	if width <= 0 {
		width = 8
	}
	kernel, err := AdderKernel(width, cfg.Org.CrossbarN)
	if err != nil {
		return Result{}, fmt.Errorf("fleet: kernel does not fit crossbar: %w", err)
	}

	jobs := w.Plan(cfg.Org, cfg.Seed)
	// A crossbar's campaign runner is seeded once, from its first
	// OpCampaign; defect state (stuck cells) persists across its rounds,
	// so one crossbar cannot switch model or rate mid-campaign. Reject
	// heterogeneous specs up front instead of silently ignoring them.
	campaignSpec := make(map[int]Op)
	for i, j := range jobs {
		if j.Bank < 0 || j.Bank >= cfg.Org.Banks || j.Crossbar < 0 || j.Crossbar >= cfg.Org.PerBank {
			return Result{}, fmt.Errorf("fleet: job %d addresses (bank %d, crossbar %d) outside %dx%d organization",
				i, j.Bank, j.Crossbar, cfg.Org.Banks, cfg.Org.PerBank)
		}
		for _, op := range j.Ops {
			if op.Kind != OpCampaign {
				continue
			}
			if _, err := faults.ModelByName(op.Model, op.SER); err != nil {
				return Result{}, fmt.Errorf("fleet: job %d: %w", i, err)
			}
			id := cfg.Org.CrossbarID(j.Bank, j.Crossbar)
			spec := Op{Kind: OpCampaign, Model: op.Model, SER: op.SER, Hours: op.Hours}
			if first, seen := campaignSpec[id]; !seen {
				campaignSpec[id] = spec
			} else if first != spec {
				return Result{}, fmt.Errorf("fleet: job %d changes crossbar (%d,%d) campaign spec from %s/%g/%gh to %s/%g/%gh mid-run",
					i, j.Bank, j.Crossbar, first.Model, first.SER, first.Hours, op.Model, op.SER, op.Hours)
			}
		}
	}

	workers := cfg.EffectiveWorkers()
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 16
	}

	// bankShard maps each bank to the one shard that owns it.
	bankShard := make([]int, cfg.Org.Banks)
	for s, banks := range cfg.Org.ShardBanks(workers) {
		for _, b := range banks {
			bankShard[b] = s
		}
	}

	chans := make([]chan []Job, workers)
	results := make([]Result, workers)
	tel := fleetProbesFor(cfg.Telemetry, cfg.Org.Banks)
	var wg sync.WaitGroup
	for s := 0; s < workers; s++ {
		chans[s] = make(chan []Job, 4)
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			results[s] = runShard(cfg, mcfg, kernel, chans[s], tel)
		}(s)
	}

	// Feed job batches to the owning shards in plan order, preserving
	// per-crossbar ordering (all of a bank's jobs go to one shard).
	pending := make([][]Job, workers)
	for _, j := range jobs {
		s := bankShard[j.Bank]
		pending[s] = append(pending[s], j)
		if len(pending[s]) >= batch {
			chans[s] <- pending[s]
			pending[s] = nil
		}
	}
	for s := 0; s < workers; s++ {
		if len(pending[s]) > 0 {
			chans[s] <- pending[s]
		}
		close(chans[s])
	}
	wg.Wait()

	total := Result{Scenario: w.Name(), PerBank: make([]BankTally, cfg.Org.Banks)}
	for _, r := range results {
		total = total.Merge(r)
	}
	return total, nil
}

// runShard owns a subset of banks: it executes every job batch sent to it,
// creating machines lazily, and tallies a shard-local result.
func runShard(cfg Config, mcfg machine.Config, kernel *synth.Mapping, in <-chan []Job, tel fleetProbes) Result {
	res := Result{PerBank: make([]BankTally, cfg.Org.Banks)}
	states := make(map[int]*xbarState)
	for batch := range in {
		for _, job := range batch {
			id := cfg.Org.CrossbarID(job.Bank, job.Crossbar)
			st := states[id]
			if st == nil {
				st = &xbarState{
					bank: job.Bank, xb: job.Crossbar,
					inj: faults.NewInjector(0, faults.DeriveSeed(cfg.Seed, job.Bank, job.Crossbar)),
					rng: rand.New(rand.NewSource(faults.DeriveSeed(cfg.Seed^0x10ad, job.Bank, job.Crossbar))),
					tel: machineTelemetry(cfg.Telemetry, cfg, job.Bank, job.Crossbar),
				}
				states[id] = st
			}
			execJob(cfg, mcfg, kernel, st, job, &res, tel)
		}
	}
	res.CrossbarsTouched = len(states)
	for _, st := range states {
		if st.m != nil {
			res.Machine = res.Machine.Add(st.m.Stats())
		}
		if st.camp != nil {
			res.Machine = res.Machine.Add(st.camp.Stats())
			res.Campaign = res.Campaign.Add(st.camp.Tally())
		}
	}
	return res
}

// execJob runs one job's ops in order on its crossbar.
func execJob(cfg Config, mcfg machine.Config, kernel *synth.Mapping, st *xbarState, job Job, res *Result, tel fleetProbes) {
	bank := &res.PerBank[job.Bank]
	res.Jobs++
	bank.Jobs++
	if tel.enabled {
		tel.jobs[job.Bank].Inc()
	}
	for _, op := range job.Ops {
		res.Ops++
		bank.Ops++
		switch op.Kind {
		case OpSIMD:
			m := st.machine(mcfg)
			// Geometry is pre-validated; ExecuteSIMD cannot fail here.
			if err := m.ExecuteSIMD(kernel, m.MEM().AllRows()); err != nil {
				panic(err)
			}
			res.SIMDOps++
			tel.simdOps.Inc()
		case OpScrub:
			c, u := st.machine(mcfg).Scrub()
			res.Scrubs++
			res.Corrected += int64(c)
			res.Uncorrectable += int64(u)
			bank.Corrected += int64(c)
			bank.Uncorrectable += int64(u)
			tel.scrubs.Inc()
			tel.corrected.Add(int64(c))
			tel.uncorrectable.Add(int64(u))
		case OpLoad:
			n := cfg.Org.CrossbarN
			row := bitmat.NewVec(n)
			for i := 0; i < n; i++ {
				row.Set(i, st.rng.Intn(2) == 0)
			}
			st.machine(mcfg).LoadRow(((op.Row%n)+n)%n, row)
			res.Loads++
			tel.loads.Inc()
		case OpFaultBurst:
			st.inj.SER = op.SER
			m := st.machine(mcfg)
			flips := st.inj.Inject(m.MEM(), op.Hours)
			res.FaultBursts++
			res.Injected += int64(len(flips))
			bank.Injected += int64(len(flips))
			tel.injected.Add(int64(len(flips)))
		case OpCampaign:
			rep := st.runner(cfg, mcfg, op).Round()
			res.CampaignRounds++
			res.Injected += int64(rep.Injected)
			bank.Injected += int64(rep.Injected)
			res.Corrected += rep.Counts[campaign.Corrected]
			bank.Corrected += rep.Counts[campaign.Corrected]
			res.Uncorrectable += rep.Counts[campaign.DetectedUncorrectable]
			bank.Uncorrectable += rep.Counts[campaign.DetectedUncorrectable]
			tel.campaignRounds.Inc()
			tel.injected.Add(int64(rep.Injected))
			if tel.enabled {
				for o := 0; o < campaign.NumOutcomes; o++ {
					tel.outcomes[o].Add(rep.Counts[o])
				}
			}
		}
	}
}
